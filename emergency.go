package ras

import (
	"fmt"
	"sort"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// EmergencyGrant implements the out-of-band capacity path of paper §5.4:
// when capacity is needed to handle an urgent site outage, waiting up to an
// hour for the next solve is not acceptable. EmergencyGrant writes server
// assignments directly to the resource broker, granting immediate capacity
// WITHOUT obeying the placement guarantees — no spread optimization, no
// affinity, no buffer sizing. Future solves correct whatever this breaks.
//
// Servers are taken in order of increasing disruption: the free pool first,
// then idle shared-buffer servers (shrinking the random-failure buffer —
// the risk §5.3 warns about, so the caller must hold that pager), then
// loaned-out buffer servers (revoking elastic work).
//
// It returns the servers granted. If fewer than the requested RRUs could be
// found, the remainder is reported in the error while the partial grant
// stays in place — exactly what an emergency wants.
func (s *System) EmergencyGrant(id ReservationID, rrus float64) ([]ServerID, error) {
	r, err := s.store.Get(id)
	if err != nil {
		return nil, err
	}
	value := func(sid topology.ServerID) float64 {
		ty := s.region.Servers[sid].Type
		v := hardware.RRU(s.region.Catalog.Type(ty), r.Class)
		if !r.Eligible(ty, v) {
			return 0
		}
		if r.CountBased {
			return 1
		}
		return v
	}

	type cand struct {
		id   topology.ServerID
		v    float64
		tier int // 0 free, 1 idle buffer, 2 loaned buffer
	}
	var cands []cand
	snap := s.broker.Snapshot()
	for i := range snap {
		st := &snap[i]
		if st.Unavail != broker.Available {
			continue
		}
		v := value(st.ID)
		if v <= 0 {
			continue
		}
		switch {
		case st.Current == reservation.Unassigned:
			cands = append(cands, cand{st.ID, v, 0})
		case st.Current == reservation.SharedBuffer && st.LoanedTo == reservation.Unassigned:
			cands = append(cands, cand{st.ID, v, 1})
		case st.Current == reservation.SharedBuffer:
			cands = append(cands, cand{st.ID, v, 2})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tier != cands[j].tier {
			return cands[i].tier < cands[j].tier
		}
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v // biggest servers first: fewer moves
		}
		return cands[i].id < cands[j].id
	})

	var granted []topology.ServerID
	need := rrus
	for _, c := range cands {
		if need <= 0 {
			break
		}
		if c.tier == 2 {
			// Revoke the elastic loan before reassigning.
			s.mover.RevokeAllLoansFor(c.id)
		}
		s.broker.SetCurrent(c.id, id)
		// Leave Target untouched: the next solve sees the emergency binding
		// as current state and re-optimizes around (or away from) it.
		granted = append(granted, c.id)
		need -= c.v
	}
	if need > 0 {
		return granted, fmt.Errorf("ras: emergency grant short by %.1f RRUs (granted %d servers)",
			need, len(granted))
	}
	return granted, nil
}
