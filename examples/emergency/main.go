// Emergency capacity (paper §5.4): the async solver's one-hour cadence is
// too slow when capacity is needed to absorb an urgent site event. The
// out-of-band path writes server assignments directly to the resource
// broker — immediately, without placement guarantees — and the next solve
// repairs whatever that broke.
package main

import (
	"context"
	"fmt"
	"log"

	"ras"
	"ras/internal/sim"
)

func main() {
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "emergency", DCs: 2, MSBsPerDC: 3,
		RacksPerMSB: 6, ServersPerRack: 10, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{})

	// Steady state: one service plus elastic batch riding the buffers.
	web, err := sys.CreateReservation(ras.Reservation{
		Name: "web", Class: ras.Web, RRUs: float64(len(region.Servers)) * 0.55,
		CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		log.Fatal(err)
	}
	sys.LoanBuffersToElastic()

	// 02:13 — traffic failover doubles load on this region. Engineers need
	// capacity NOW; the next solve is ~an hour away.
	surge, err := sys.CreateReservation(ras.Reservation{
		Name: "web-surge", Class: ras.Web, RRUs: 40,
		CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	granted, err := sys.EmergencyGrant(surge, 40)
	fmt.Printf("emergency grant: %d servers immediately (err: %v)\n", len(granted), err)

	perMSB := map[int]int{}
	for _, sid := range granted {
		perMSB[region.Server(sid).MSB]++
	}
	fmt.Printf("grant spread (unoptimized, as expected): %v\n", perMSB)
	_, surviving, _ := sys.GuaranteedRRUs(surge)
	fmt.Printf("surge capacity surviving a worst-case MSB loss: %.0f of 40 requested\n", surviving)

	// 03:00 — the hourly solve runs and repairs the placement guarantees
	// the emergency path ignored.
	if _, err := sys.Solve(context.Background(), sim.Hour); err != nil {
		log.Fatal(err)
	}
	_, surviving, _ = sys.GuaranteedRRUs(surge)
	fmt.Printf("after the next hourly solve: %.0f of 40 survive any MSB loss\n", surviving)

	_, webSurv, _ := sys.GuaranteedRRUs(web)
	webRes, _ := sys.Reservations().Get(web)
	fmt.Printf("and %q still holds its guarantee: %.0f vs %.0f requested\n",
		"web", webSurv, webRes.RRUs)
}
