// Quickstart: build a synthetic region, request guaranteed capacity, run
// one continuous-optimization round, and place containers — the minimal
// end-to-end tour of the two-level RAS architecture.
package main

import (
	"context"
	"fmt"
	"log"

	"ras"
)

func main() {
	// A small region: 2 datacenters × 3 MSBs, 432 servers.
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "quickstart", DCs: 2, MSBsPerDC: 3,
		RacksPerMSB: 6, ServersPerRack: 12, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{})
	fmt.Printf("region %q: %d servers across %d MSBs in %d DCs\n",
		region.Name, len(region.Servers), region.NumMSBs, region.NumDCs)

	// A capacity request: 150 relative resource units for a Web service.
	// RRUs abstract hardware generations — the solver may fulfill this with
	// any mix of eligible hardware whose aggregate throughput matches.
	webID, err := sys.CreateReservation(ras.Reservation{
		Name:   "web-frontend",
		Owner:  "web-team",
		Class:  ras.Web,
		RRUs:   150,
		Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// One async-solver round: snapshot → two-phase MIP → targets → mover.
	res, err := sys.Solve(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve[%s]: %d assignment variables over %d symmetry groups in %v (status %v)\n",
		res.Backend, res.MIP.Phase1.AssignVars, res.MIP.Phase1.Groups,
		res.Elapsed.Round(1e6), res.Status)

	// The capacity guarantee: requested RRUs survive the loss of ANY MSB.
	total, surviving, err := sys.GuaranteedRRUs(webID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web-frontend: %.1f RRUs allocated, %.1f survive a worst-case MSB failure (requested %.0f)\n",
		total, surviving, 150.0)

	// Level 2: the container allocator places within the reservation in
	// real time — no server acquisition on this path.
	for i := 0; i < 5; i++ {
		cid, err := sys.PlaceContainer(webID, "web-frontend/job", 2)
		if err != nil {
			log.Fatal(err)
		}
		c, _ := sys.Allocator().Get(cid)
		srv := region.Server(c.Server)
		fmt.Printf("container %d → server %d (type %s, MSB %d)\n",
			cid, c.Server, region.Catalog.Type(srv.Type).ID, srv.MSB)
	}
}
