// Elastic reservations (paper §3.4): when failure buffers are not actively
// absorbing failures or maintenance, the online mover loans them to elastic
// reservations — opportunistic compute like async batch or offline ML
// training — and revokes them the moment failure handling needs the
// capacity back.
package main

import (
	"context"
	"fmt"
	"log"

	"ras"
	"ras/internal/broker"
	"ras/internal/sim"
)

func main() {
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "elastic", DCs: 2, MSBsPerDC: 2,
		RacksPerMSB: 6, ServersPerRack: 10, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{})

	// A guaranteed service plus an elastic batch platform. The elastic
	// reservation gets NO solver capacity: it lives entirely off loans.
	web, err := sys.CreateReservation(ras.Reservation{
		Name: "web", Class: ras.Web, RRUs: float64(len(region.Servers)) * 0.5,
		CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := sys.CreateReservation(ras.Reservation{
		Name: "async-batch", Class: ras.FleetAvg, RRUs: 0,
		Elastic: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Solve(context.Background(), 0); err != nil {
		log.Fatal(err)
	}
	bufServers := sys.Broker().ServersIn(ras.SharedBuffer)
	fmt.Printf("after solve: %d servers in the shared random-failure buffer (2%% of fleet)\n", len(bufServers))

	// Idle buffers are loaned out to the elastic platform.
	loans := sys.LoanBuffersToElastic()
	fmt.Printf("loaned %d idle buffer servers to %q\n", loans, "async-batch")

	// The elastic platform runs containers on borrowed capacity.
	placed := 0
	for i := 0; i < loans*2; i++ {
		if _, err := sys.PlaceContainer(batch, "async-batch/crunch", 2); err != nil {
			break
		}
		placed++
	}
	fmt.Printf("elastic platform placed %d containers on borrowed servers\n", placed)

	// A random failure in the guaranteed service: the mover revokes a loan
	// (evicting the preemptible elastic work) and moves the buffer server in.
	victim := sys.Broker().ServersIn(web)[3]
	before := sys.Mover().Stats()
	sys.Broker().SetUnavailable(victim, broker.RandomFailure, sim.Hour, sim.Day)
	after := sys.Mover().Stats()
	fmt.Printf("\nrandom failure of server %d in %q:\n", victim, "web")
	fmt.Printf("  replacements %d → %d, loan revocations %d → %d\n",
		before.Replacements, after.Replacements, before.Revocations, after.Revocations)

	_, _, running := sys.Allocator().Stats()
	fmt.Printf("  elastic containers still running: %d (evicted work is preemptible by contract)\n", running)

	total, _, _ := sys.GuaranteedRRUs(web)
	r, _ := sys.Reservations().Get(web)
	fmt.Printf("\n%q capacity after replacement: %.0f RRUs vs %.0f requested\n", "web", total, r.RRUs)
}
