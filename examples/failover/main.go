// Failover drill: reproduce the scenario the embedded buffers exist for
// (paper §3.3.1) — a correlated failure takes down a whole MSB, and the
// reservations absorb it with zero mover action because the replacement
// capacity was allocated into each reservation ahead of time. Random
// single-server failures, by contrast, are replaced from the shared buffer
// by the online mover within a minute.
package main

import (
	"context"
	"fmt"
	"log"

	"ras"
	"ras/internal/broker"
	"ras/internal/sim"
)

func main() {
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "failover", DCs: 2, MSBsPerDC: 3,
		RacksPerMSB: 6, ServersPerRack: 10, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{})

	ids := make([]ras.ReservationID, 0, 4)
	for i, name := range []string{"web", "feed", "datastore", "batch"} {
		id, err := sys.CreateReservation(ras.Reservation{
			Name:       name,
			Class:      []ras.Class{ras.Web, ras.Feed1, ras.DataStore, ras.FleetAvg}[i],
			RRUs:       float64(len(region.Servers)) * 0.16,
			CountBased: true,
			Policy:     ras.DefaultPolicy(),
		})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	if _, err := sys.Solve(context.Background(), 0); err != nil {
		log.Fatal(err)
	}
	report := func(tag string) bool {
		allOK := true
		for _, id := range ids {
			r, _ := sys.Reservations().Get(id)
			// Capacity actually usable right now (available servers only).
			usable := 0.0
			for _, sid := range sys.Broker().ServersIn(id) {
				if sys.Broker().State(sid).Unavail == broker.Available {
					usable++
				}
			}
			ok := usable >= r.RRUs
			allOK = allOK && ok
			fmt.Printf("  [%s] %-10s usable %.0f vs requested %.0f → %v\n",
				tag, r.Name, usable, r.RRUs, ok)
		}
		return allOK
	}

	fmt.Println("after initial solve (embedded buffers in place):")
	report("steady")

	// Random failure: the mover replaces from the shared 2% buffer.
	victim := sys.Broker().ServersIn(ids[0])[0]
	before := sys.Mover().Stats().Replacements
	sys.Broker().SetUnavailable(victim, broker.RandomFailure, sim.Hour, 2*sim.Day)
	fmt.Printf("\nrandom failure of server %d: mover replacements %d → %d (sub-minute path)\n",
		victim, before, sys.Mover().Stats().Replacements)

	// The mover's quick pick is not placement-aware — the replacement may
	// itself sit in a crowded MSB. The next hourly solve re-optimizes it
	// (Figure 6 step 8), restoring the single-MSB-loss guarantee before the
	// next correlated failure can stack on top.
	if _, err := sys.Solve(context.Background(), 90*sim.Minute); err != nil {
		log.Fatal(err)
	}

	// The drill: fail MSB 2 entirely.
	msb := 2
	n := sys.Health().FailMSB(msb, 2*sim.Hour, 12*sim.Hour)
	fmt.Printf("\ncorrelated failure: MSB %d down, %d servers lost\n", msb, n)
	fmt.Println("capacity immediately after (no solver, no mover action):")
	if report("failed") {
		fmt.Println("\nall reservations survived a full MSB loss — the §3.3.1 guarantee")
	} else {
		fmt.Println("\nsome reservation is short — buffers were insufficient")
	}

	// Recovery and re-optimization.
	sys.Health().RecoverMSB(msb, 14*sim.Hour)
	if _, err := sys.Solve(context.Background(), 15*sim.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter recovery and the next hourly solve:")
	report("healed")
}
