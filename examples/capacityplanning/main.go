// Capacity planning with relative resource units (RRUs): the same request
// can be fulfilled by different hardware generations with equivalent
// aggregate throughput (paper §3.1, Figure 3). This example plans capacity
// for services with very different hardware affinities and shows how RAS
// composes heterogeneous servers per reservation — plus what happens when a
// service constrains itself to a single hardware type or datacenter.
package main

import (
	"context"
	"fmt"
	"log"

	"ras"
	"ras/internal/hardware"
)

func main() {
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "planning", DCs: 3, MSBsPerDC: 3,
		RacksPerMSB: 6, ServersPerRack: 8, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{})

	fmt.Println("relative value per processor generation (Figure 3):")
	for _, c := range []ras.Class{ras.DataStore, ras.Feed1, ras.Feed2, ras.Web} {
		fmt.Printf("  %-10v GenI %.2f  GenII %.2f  GenIII %.2f\n", c,
			hardware.RelativeValue(c, hardware.GenI),
			hardware.RelativeValue(c, hardware.GenII),
			hardware.RelativeValue(c, hardware.GenIII))
	}

	// Web gains a lot from new generations: 100 RRUs may be ~55 GenIII
	// servers or ~100 GenI servers; the solver picks the efficient mix.
	web, err := sys.CreateReservation(ras.Reservation{
		Name: "web", Class: ras.Web, RRUs: 100, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// DataStore is generation-agnostic but needs flash: restrict to the
	// storage types.
	var flashTypes []int
	for i := 0; i < region.Catalog.Len(); i++ {
		if region.Catalog.Type(i).FlashTB > 0 {
			flashTypes = append(flashTypes, i)
		}
	}
	store, err := sys.CreateReservation(ras.Reservation{
		Name: "datastore", Class: ras.DataStore, RRUs: 40,
		EligibleTypes: flashTypes, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// ML training wants accelerators and single-DC locality (bandwidth).
	mlPolicy := ras.DefaultPolicy()
	mlPolicy.SingleDC = 2
	ml, err := sys.CreateReservation(ras.Reservation{
		Name: "ml-train", Class: ras.BatchML, RRUs: 30, Policy: mlPolicy,
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Solve(context.Background(), 0); err != nil {
		log.Fatal(err)
	}

	for _, id := range []ras.ReservationID{web, store, ml} {
		r, _ := sys.Reservations().Get(id)
		servers := sys.Broker().ServersIn(id)
		byType := map[string]int{}
		byDC := map[int]int{}
		for _, sid := range servers {
			srv := region.Server(sid)
			byType[region.Catalog.Type(srv.Type).ID]++
			byDC[srv.DC]++
		}
		total, surviving, _ := sys.GuaranteedRRUs(id)
		fmt.Printf("\n%s: requested %.0f RRUs → %d servers delivering %.1f RRUs (%.1f after worst MSB loss)\n",
			r.Name, r.RRUs, len(servers), total, surviving)
		fmt.Printf("  hardware mix: %v\n", byType)
		fmt.Printf("  datacenters:  %v\n", byDC)
	}
}
