// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark baseline on stdout.
//
// Each benchmark line becomes a record with the parsed per-op metrics keyed
// by unit (ns/op, B/op, allocs/op, plus any b.ReportMetric units such as
// objective). The original text lines are preserved verbatim under
// "benchfmt_lines" so the Go benchmark format can be reconstructed for
// benchstat:
//
//	jq -r '.benchfmt_lines[]' BENCH_solver.json > old.txt
//	benchstat old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the full converted report.
type Baseline struct {
	Goos          string   `json:"goos,omitempty"`
	Goarch        string   `json:"goarch,omitempty"`
	Pkg           string   `json:"pkg,omitempty"`
	CPU           string   `json:"cpu,omitempty"`
	Benchmarks    []Bench  `json:"benchmarks"`
	BenchfmtLines []string `json:"benchfmt_lines"`
}

func main() {
	var out Baseline
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			out.Benchmarks = append(out.Benchmarks, b)
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  N  v1 unit1  v2 unit2 ...".
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
