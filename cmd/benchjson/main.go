// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark baseline on stdout.
//
// Each benchmark line becomes a record with the parsed per-op metrics keyed
// by unit (ns/op, B/op, allocs/op, plus any b.ReportMetric units such as
// objective). The original text lines are preserved verbatim under
// "benchfmt_lines" so the Go benchmark format can be reconstructed for
// benchstat:
//
//	jq -r '.benchfmt_lines[]' BENCH_solver.json > old.txt
//	benchstat old.txt new.txt
//
// With -compare FILE, the stdin results are instead diffed against the
// baseline JSON in FILE and printed as an aligned per-metric delta table
// (negative deltas are improvements for cost metrics like ns/op, B/op, and
// allocs/op). The comparison is informational — it never fails — because
// absolute numbers are machine-dependent; it exists so perf PRs have a
// one-command report and CI keeps the bench + tooling path compiling and
// parsing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the full converted report.
type Baseline struct {
	Goos          string            `json:"goos,omitempty"`
	Goarch        string            `json:"goarch,omitempty"`
	Pkg           string            `json:"pkg,omitempty"`
	CPU           string            `json:"cpu,omitempty"`
	Benchmarks    []Bench           `json:"benchmarks"`
	POPKSweep     []POPSweep        `json:"pop_ksweep,omitempty"`
	RoundIncr     *RoundIncremental `json:"round_incremental,omitempty"`
	BenchfmtLines []string          `json:"benchfmt_lines"`
}

// POPSweep is one row of the derived partitioned-backend ablation: the pop
// backend at k partitions against the serial MIP baseline on the same large
// workload (BenchmarkBackendMIPLarge/workers=1). Speedup is the MIP ns/op
// over the pop ns/op; ObjectiveDeltaPct is the allocation-quality price of
// partitioning ((pop−mip)/mip·100, positive = worse).
type POPSweep struct {
	Partitions        int     `json:"partitions"`
	NsPerOp           float64 `json:"ns_per_op"`
	Speedup           float64 `json:"speedup_vs_mip"`
	Objective         float64 `json:"objective"`
	ObjectiveDeltaPct float64 `json:"objective_delta_pct"`
}

// RoundIncremental is the derived incremental-model-build summary: the
// multi-round steady-state benchmark (BenchmarkRoundIncremental) with broker
// deltas feeding the solver's model cache (mode=patch) against the same
// mutation stream rebuilt cold every round (mode=cold). BuildSpeedup is the
// cold model-build time over the patch time — the ISSUE's ≥5× target —
// and ObjectiveDelta must be 0: patching is only taken when the patched
// model is bit-for-bit identical to a rebuild.
type RoundIncremental struct {
	PatchBuildNs   float64 `json:"patch_build_ns"`
	ColdBuildNs    float64 `json:"cold_build_ns"`
	BuildSpeedup   float64 `json:"build_speedup"`
	PatchRounds    float64 `json:"patch_rounds_frac"`
	ObjectiveDelta float64 `json:"objective_delta"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON file to diff the stdin results against")
	flag.Parse()

	var out Baseline
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			out.Benchmarks = append(out.Benchmarks, b)
			out.BenchfmtLines = append(out.BenchfmtLines, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		if err := printComparison(os.Stdout, *compare, out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	out.POPKSweep = derivePOPKSweep(out.Benchmarks)
	out.RoundIncr = deriveRoundIncremental(out.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// printComparison diffs cur against the baseline JSON at path and writes an
// aligned per-metric delta table. Benchmarks present on only one side are
// listed so renames don't vanish silently.
func printComparison(w *os.File, path string, cur Baseline) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	baseBy := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	fmt.Fprintf(w, "baseline: %s (%s)\n", path, base.CPU)
	fmt.Fprintf(w, "%-50s %-12s %14s %14s %9s\n", "benchmark", "metric", "baseline", "current", "delta")
	matched := make(map[string]bool, len(cur.Benchmarks))
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-50s (not in baseline)\n", c.Name)
			continue
		}
		matched[b.Name] = true
		units := make([]string, 0, len(c.Metrics))
		for u := range c.Metrics {
			if _, both := b.Metrics[u]; both {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			bv, cv := b.Metrics[u], c.Metrics[u]
			delta := "n/a"
			if bv != 0 {
				delta = fmt.Sprintf("%+.1f%%", (cv-bv)/math.Abs(bv)*100)
			}
			fmt.Fprintf(w, "%-50s %-12s %14.5g %14.5g %9s\n", c.Name, u, bv, cv, delta)
		}
	}
	for _, b := range base.Benchmarks {
		if !matched[b.Name] {
			fmt.Fprintf(w, "%-50s (baseline only: not run)\n", b.Name)
		}
	}
	return nil
}

// derivePOPKSweep computes the pop-vs-mip ablation rows from the parsed
// benchmarks: every BenchmarkBackendPOPLarge/partitions=K result paired with
// the serial BenchmarkBackendMIPLarge/workers=1 baseline. Returns nil when
// either side is absent (e.g. a bench run filtered to other benchmarks).
func derivePOPKSweep(benches []Bench) []POPSweep {
	var mip *Bench
	for i := range benches {
		if trimProcs(benches[i].Name) == "BenchmarkBackendMIPLarge/workers=1" {
			mip = &benches[i]
			break
		}
	}
	if mip == nil {
		return nil
	}
	var rows []POPSweep
	for _, b := range benches {
		name := trimProcs(b.Name)
		const prefix = "BenchmarkBackendPOPLarge/partitions="
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		k, err := strconv.Atoi(name[len(prefix):])
		if err != nil {
			continue
		}
		row := POPSweep{
			Partitions: k,
			NsPerOp:    b.Metrics["ns/op"],
			Objective:  b.Metrics["objective"],
		}
		if row.NsPerOp > 0 {
			row.Speedup = mip.Metrics["ns/op"] / row.NsPerOp
		}
		if mo := mip.Metrics["objective"]; mo != 0 {
			row.ObjectiveDeltaPct = (row.Objective - mo) / math.Abs(mo) * 100
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Partitions < rows[j].Partitions })
	return rows
}

// deriveRoundIncremental pairs BenchmarkRoundIncremental's patch and cold
// modes into the incremental-build summary. Returns nil when either mode is
// absent (filtered bench run).
func deriveRoundIncremental(benches []Bench) *RoundIncremental {
	var patch, cold *Bench
	for i := range benches {
		switch trimProcs(benches[i].Name) {
		case "BenchmarkRoundIncremental/mode=patch":
			patch = &benches[i]
		case "BenchmarkRoundIncremental/mode=cold":
			cold = &benches[i]
		}
	}
	if patch == nil || cold == nil {
		return nil
	}
	r := &RoundIncremental{
		PatchBuildNs:   patch.Metrics["buildns/op"],
		ColdBuildNs:    cold.Metrics["buildns/op"],
		PatchRounds:    patch.Metrics["patchrounds/op"],
		ObjectiveDelta: patch.Metrics["objective"] - cold.Metrics["objective"],
	}
	if r.PatchBuildNs > 0 {
		r.BuildSpeedup = r.ColdBuildNs / r.PatchBuildNs
	}
	return r
}

// trimProcs strips the "-N" GOMAXPROCS suffix go test appends to benchmark
// names, so lookups are stable across machines.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchLine parses "BenchmarkName-8  N  v1 unit1  v2 unit2 ...".
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
