package main

// End-to-end driver test: run() against throwaway modules, asserting the
// exit-code contract (0 clean / 1 findings / 2 usage / 3 internal) and the
// shape of -json output, fingerprints included. The determinism rule's
// module-wide global-math/rand check is the finding generator: it fires
// regardless of import path, so the synthetic module needs no solve-stack
// layout.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"ras/internal/lint"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module demo\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCLI invokes run() with captured stdout/stderr.
func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	readBack := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, readBack(outF), readBack(errF)
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package demo\n\nfunc OK() int { return 1 }\n",
	})
	code, stdout, stderr := runCLI(t, []string{"-C", dir, "./..."})
	if code != 0 {
		t.Fatalf("clean module: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean module: unexpected output %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"dirty.go": "package demo\n\nimport \"math/rand\"\n\nfunc Draw() int { return rand.Int() }\n",
	})
	code, stdout, _ := runCLI(t, []string{"-C", dir, "./..."})
	if code != 1 {
		t.Fatalf("module with findings: exit %d, want 1 (stdout %q)", code, stdout)
	}
	if !regexp.MustCompile(`determinism`).MatchString(stdout) {
		t.Fatalf("expected a determinism finding, got %q", stdout)
	}
}

func TestExitCodeUsage(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-no-such-flag"})
	if code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestExitCodeInternal(t *testing.T) {
	t.Run("missing module", func(t *testing.T) {
		code, _, stderr := runCLI(t, []string{"-C", filepath.Join(t.TempDir(), "nowhere"), "./..."})
		if code != 3 {
			t.Fatalf("missing go.mod: exit %d, want 3 (stderr %q)", code, stderr)
		}
	})
	t.Run("type error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"broken.go": "package demo\n\nfunc Broken() int { return undefinedName }\n",
		})
		code, _, stderr := runCLI(t, []string{"-C", dir, "./..."})
		if code != 3 {
			t.Fatalf("type-broken module: exit %d, want 3 (stderr %q)", code, stderr)
		}
	})
}

func TestJSONFingerprints(t *testing.T) {
	const src = "package demo\n\nimport \"math/rand\"\n\nfunc Draw() int { return rand.Int() }\n"
	dir := writeModule(t, map[string]string{"dirty.go": src})
	code, stdout, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one diagnostic")
	}
	fpRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, d := range diags {
		if !fpRe.MatchString(d.Fingerprint) {
			t.Errorf("diagnostic %s: fingerprint %q is not 16 hex digits", d, d.Fingerprint)
		}
	}

	// Stability: an identical second module (different temp path) must
	// produce... different file paths, so fingerprints differ; but a rerun
	// over the SAME tree must reproduce them exactly.
	code2, stdout2, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code2 != 1 || stdout2 != stdout {
		t.Fatalf("rerun over the same tree changed output:\n%s\nvs\n%s", stdout, stdout2)
	}
}

func TestBaseline(t *testing.T) {
	const src = "package demo\n\nimport \"math/rand\"\n\nfunc Draw() int { return rand.Int() }\n"
	dir := writeModule(t, map[string]string{"dirty.go": src})

	// Harvest the real fingerprints first.
	code, stdout, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code != 1 {
		t.Fatalf("seed run: exit %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("seed run produced no findings")
	}
	var fps []string
	for _, d := range diags {
		fps = append(fps, d.Fingerprint)
	}

	writeBaseline := func(fps []string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "baseline.json")
		data, err := json.Marshal(map[string][]string{"fingerprints": fps})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("suppresses known findings", func(t *testing.T) {
		path := writeBaseline(fps)
		code, stdout, stderr := runCLI(t, []string{"-C", dir, "-baseline", path, "./..."})
		if code != 0 {
			t.Fatalf("baselined run: exit %d, want 0 (stdout %q, stderr %q)", code, stdout, stderr)
		}
		if stdout != "" {
			t.Fatalf("baselined run: unexpected output %q", stdout)
		}
	})

	t.Run("stale entry fails the run", func(t *testing.T) {
		path := writeBaseline(append(append([]string{}, fps...), "deadbeefdeadbeef"))
		code, stdout, _ := runCLI(t, []string{"-C", dir, "-baseline", path, "./..."})
		if code != 1 {
			t.Fatalf("stale baseline: exit %d, want 1 (stdout %q)", code, stdout)
		}
		if !regexp.MustCompile(`baseline_stale`).MatchString(stdout) {
			t.Fatalf("expected a baseline_stale diagnostic, got %q", stdout)
		}
		if !regexp.MustCompile(`deadbeefdeadbeef`).MatchString(stdout) {
			t.Fatalf("stale diagnostic should name the fingerprint, got %q", stdout)
		}
	})

	t.Run("unreadable baseline is a usage error", func(t *testing.T) {
		code, _, _ := runCLI(t, []string{"-C", dir, "-baseline", filepath.Join(t.TempDir(), "nope.json"), "./..."})
		if code != 2 {
			t.Fatalf("missing baseline file: exit %d, want 2", code)
		}
	})
}

func TestBudgetExceeded(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package demo\n\nfunc OK() int { return 1 }\n",
	})
	// 1ns is unreachable: any real analysis overruns it.
	code, _, stderr := runCLI(t, []string{"-C", dir, "-budget", "1ns", "./..."})
	if code != 3 {
		t.Fatalf("over-budget run: exit %d, want 3 (stderr %q)", code, stderr)
	}
	if !regexp.MustCompile(`-budget`).MatchString(stderr) {
		t.Fatalf("expected a budget message on stderr, got %q", stderr)
	}
}

func TestWorkersByteIdenticalOutput(t *testing.T) {
	const src = "package demo\n\nimport \"math/rand\"\n\nfunc Draw() int { return rand.Int() }\n"
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"math/rand\"\n\nfunc A() int { return rand.Int() }\n",
		"b/b.go": "package b\n\nimport \"math/rand\"\n\nfunc B() int { return rand.Int() }\n",
		"c.go":   src,
	})
	var first string
	for i, j := range []string{"1", "2", "8"} {
		code, stdout, _ := runCLI(t, []string{"-C", dir, "-json", "-j", j, "./..."})
		if code != 1 {
			t.Fatalf("-j %s: exit %d, want 1", j, code)
		}
		if i == 0 {
			first = stdout
		} else if stdout != first {
			t.Fatalf("-j %s changed output:\n%s\nvs\n%s", j, first, stdout)
		}
	}
}

func TestJSONTimingsOnStderr(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package demo\n\nfunc OK() int { return 1 }\n",
	})
	code, stdout, stderr := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var stats lint.RunStats
	if err := json.Unmarshal([]byte(stderr), &stats); err != nil {
		t.Fatalf("stderr should carry a RunStats JSON object: %v\n%s", err, stderr)
	}
	if len(stats.Rules) == 0 {
		t.Fatal("expected per-rule timings for the default-enabled rules")
	}
	if regexp.MustCompile(`total_nanos`).MatchString(stdout) {
		t.Fatalf("timings leaked onto stdout: %q", stdout)
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package demo\n\nfunc OK() int { return 1 }\n",
	})
	code, stdout, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("clean -json output must be a JSON array: %v\n%s", err, stdout)
	}
	if diags == nil || len(diags) != 0 {
		t.Fatalf("clean run must emit [], got %q", stdout)
	}
}
