package main

// End-to-end driver test: run() against throwaway modules, asserting the
// exit-code contract (0 clean / 1 findings / 2 usage / 3 internal) and the
// shape of -json output, fingerprints included. The determinism rule's
// module-wide global-math/rand check is the finding generator: it fires
// regardless of import path, so the synthetic module needs no solve-stack
// layout.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"ras/internal/lint"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module demo\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCLI invokes run() with captured stdout/stderr.
func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	readBack := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, readBack(outF), readBack(errF)
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package demo\n\nfunc OK() int { return 1 }\n",
	})
	code, stdout, stderr := runCLI(t, []string{"-C", dir, "./..."})
	if code != 0 {
		t.Fatalf("clean module: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean module: unexpected output %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"dirty.go": "package demo\n\nimport \"math/rand\"\n\nfunc Draw() int { return rand.Int() }\n",
	})
	code, stdout, _ := runCLI(t, []string{"-C", dir, "./..."})
	if code != 1 {
		t.Fatalf("module with findings: exit %d, want 1 (stdout %q)", code, stdout)
	}
	if !regexp.MustCompile(`determinism`).MatchString(stdout) {
		t.Fatalf("expected a determinism finding, got %q", stdout)
	}
}

func TestExitCodeUsage(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-no-such-flag"})
	if code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestExitCodeInternal(t *testing.T) {
	t.Run("missing module", func(t *testing.T) {
		code, _, stderr := runCLI(t, []string{"-C", filepath.Join(t.TempDir(), "nowhere"), "./..."})
		if code != 3 {
			t.Fatalf("missing go.mod: exit %d, want 3 (stderr %q)", code, stderr)
		}
	})
	t.Run("type error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"broken.go": "package demo\n\nfunc Broken() int { return undefinedName }\n",
		})
		code, _, stderr := runCLI(t, []string{"-C", dir, "./..."})
		if code != 3 {
			t.Fatalf("type-broken module: exit %d, want 3 (stderr %q)", code, stderr)
		}
	})
}

func TestJSONFingerprints(t *testing.T) {
	const src = "package demo\n\nimport \"math/rand\"\n\nfunc Draw() int { return rand.Int() }\n"
	dir := writeModule(t, map[string]string{"dirty.go": src})
	code, stdout, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one diagnostic")
	}
	fpRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, d := range diags {
		if !fpRe.MatchString(d.Fingerprint) {
			t.Errorf("diagnostic %s: fingerprint %q is not 16 hex digits", d, d.Fingerprint)
		}
	}

	// Stability: an identical second module (different temp path) must
	// produce... different file paths, so fingerprints differ; but a rerun
	// over the SAME tree must reproduce them exactly.
	code2, stdout2, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code2 != 1 || stdout2 != stdout {
		t.Fatalf("rerun over the same tree changed output:\n%s\nvs\n%s", stdout, stdout2)
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"clean.go": "package demo\n\nfunc OK() int { return 1 }\n",
	})
	code, stdout, _ := runCLI(t, []string{"-C", dir, "-json", "./..."})
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("clean -json output must be a JSON array: %v\n%s", err, stdout)
	}
	if diags == nil || len(diags) != 0 {
		t.Fatalf("clean run must emit [], got %q", stdout)
	}
}
