// Command raslint runs the project's static-analysis pass (internal/lint)
// over the module: determinism, mapiter, ctxflow, floatcmp, errdrop, the
// flow-sensitive rules lockcheck, leakcheck, and calldeterminism, and the
// summary-driven rules globalwrite, aliascheck, and sharedwrite.
// It is part of the pre-merge gate (`make lint`, inside `make check`).
//
// Usage:
//
//	raslint [flags] [patterns...]
//
// Patterns are module-relative directories ("internal/mip") or subtree
// patterns ("./..."); the default is "./...". Every rule has an enable flag
// (-determinism=false disables it); -json emits machine-readable
// diagnostics, each carrying a stable fingerprint (a hash of rule, file,
// line, and message) so CI baselines can track findings across runs; -stale
// additionally reports //raslint:allow directives that no longer suppress
// anything (on in `make lint`).
//
// Exit status separates a red tree from a broken linter: 0 clean, 1
// findings, 2 usage errors, 3 analyzer internal errors (a package failed to
// load or type-check, or output could not be written).
//
// Intentional exceptions are annotated in the source:
//
//	//raslint:allow <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"ras/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("raslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("C", ".", "module root directory")
	stale := fs.Bool("stale", false, "report //raslint:allow directives that suppress nothing")

	docs := lint.RuleDocs()
	ruleFlags := map[string]*bool{}
	names := lint.RuleNames()
	sort.Strings(names)
	for _, name := range names {
		if name == "directive" {
			continue // malformed directives are always errors
		}
		ruleFlags[name] = fs.Bool(name, true, "enable the "+name+" rule: "+docs[name])
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := &lint.Config{Disabled: map[string]bool{}, Stale: *stale}
	for name, enabled := range ruleFlags {
		if !*enabled {
			cfg.Disabled[name] = true
		}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 3
	}
	pkgs, err := loader.LoadDirs(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 3
	}
	diags := lint.Run(cfg, pkgs)

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 3
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "raslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
