// Command raslint runs the project's static-analysis pass (internal/lint)
// over the module: determinism, mapiter, ctxflow, floatcmp, errdrop, the
// flow-sensitive rules lockcheck, leakcheck, and calldeterminism, the
// summary-driven rules globalwrite, aliascheck, and sharedwrite, and the
// value-dataflow rules nanguard, deadstore, and boundsproof.
// It is part of the pre-merge gate (`make lint`, inside `make check`).
//
// Usage:
//
//	raslint [flags] [patterns...]
//
// Patterns are module-relative directories ("internal/mip") or subtree
// patterns ("./..."); the default is "./...". Every rule has an enable flag
// (-determinism=false disables it); -json emits machine-readable
// diagnostics, each carrying a stable fingerprint (a hash of rule, file,
// line, and message) so CI baselines can track findings across runs; -stale
// additionally reports //raslint:allow directives that no longer suppress
// anything (on in `make lint`).
//
// -baseline <file> suppresses diagnostics whose fingerprint appears in a
// committed baseline (JSON: {"fingerprints": ["...", ...]}); baseline
// entries that no longer match any finding are reported as baseline_stale
// diagnostics so the baseline only ever shrinks. -j caps the per-package
// analyzer concurrency (0 = GOMAXPROCS) — output is byte-identical at any
// setting. Under -json, per-rule analysis timings are written to stderr as
// one JSON object (stdout must stay byte-identical across runs); -budget
// fails the run (exit 3) when total analysis wall-clock exceeds the given
// duration, keeping the CI lint step's latency honest.
//
// Exit status separates a red tree from a broken linter: 0 clean, 1
// findings, 2 usage errors, 3 analyzer internal errors (a package failed to
// load or type-check, output could not be written, or the -budget was
// exceeded).
//
// Intentional exceptions are annotated in the source:
//
//	//raslint:allow <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"ras/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("raslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("C", ".", "module root directory")
	stale := fs.Bool("stale", false, "report //raslint:allow directives that suppress nothing")
	baseline := fs.String("baseline", "", "JSON file of known-finding fingerprints to suppress; entries that no longer fire are reported as baseline_stale")
	budget := fs.Duration("budget", 0, "fail with exit 3 when total analysis wall-clock exceeds this duration (0 disables)")
	workers := fs.Int("j", 0, "per-package analyzer concurrency (0 = GOMAXPROCS); output is byte-identical at any setting")

	docs := lint.RuleDocs()
	ruleFlags := map[string]*bool{}
	names := lint.RuleNames()
	sort.Strings(names)
	for _, name := range names {
		if name == "directive" {
			continue // malformed directives are always errors
		}
		ruleFlags[name] = fs.Bool(name, true, "enable the "+name+" rule: "+docs[name])
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := &lint.Config{Disabled: map[string]bool{}, Stale: *stale, Workers: *workers}
	for name, enabled := range ruleFlags {
		if !*enabled {
			cfg.Disabled[name] = true
		}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 3
	}
	pkgs, err := loader.LoadDirs(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 3
	}
	diags, stats := lint.RunWithStats(cfg, pkgs)

	if *baseline != "" {
		fps, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = applyBaseline(diags, fps, *baseline)
	}

	if *jsonOut {
		// Timings vary run to run, so they go to stderr: the stdout JSON
		// must stay byte-identical for identical trees.
		if err := json.NewEncoder(stderr).Encode(stats); err != nil {
			fmt.Fprintln(stderr, err)
			return 3
		}
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 3
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *budget > 0 && stats.Total > *budget {
		// An over-budget run is an infrastructure failure, not a finding:
		// it outranks exit 1 so CI cannot mask a slow linter behind a red
		// tree.
		fmt.Fprintf(stderr, "raslint: analysis took %s, exceeding the -budget of %s\n", stats.Total, *budget)
		return 3
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "raslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}

// baselineFile is the on-disk format accepted by -baseline: the fingerprint
// strings of known findings, as emitted in the -json output.
type baselineFile struct {
	Fingerprints []string `json:"fingerprints"`
}

func readBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("raslint: reading -baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("raslint: parsing -baseline %s: %w", path, err)
	}
	return bf.Fingerprints, nil
}

// applyBaseline drops diagnostics whose fingerprint the baseline lists and
// appends a baseline_stale diagnostic for every listed fingerprint that no
// longer matches anything, so the baseline can only ever shrink. Stale
// entries are reported in sorted order to keep output deterministic.
func applyBaseline(diags []lint.Diagnostic, fps []string, path string) []lint.Diagnostic {
	have := map[string]bool{}
	for _, d := range diags {
		have[d.Fingerprint] = true
	}
	suppress := map[string]bool{}
	for _, fp := range fps {
		suppress[fp] = true
	}
	out := diags[:0:0]
	for _, d := range diags {
		if !suppress[d.Fingerprint] {
			out = append(out, d)
		}
	}
	var stale []string
	seen := map[string]bool{}
	for _, fp := range fps {
		if !have[fp] && !seen[fp] {
			seen[fp] = true
			stale = append(stale, fp)
		}
	}
	sort.Strings(stale)
	for _, fp := range stale {
		out = append(out, lint.Diagnostic{
			File:    path,
			Rule:    "baseline_stale",
			Message: fmt.Sprintf("baseline fingerprint %s matches no current finding; remove it from the baseline", fp),
		})
	}
	return out
}
