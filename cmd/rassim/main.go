// Command rassim runs an end-to-end region simulation: a synthetic region,
// a set of reservations, hourly async solves, health-check failure
// injection, minute-level mover reactions, periodic maintenance waves, and
// a correlated MSB failure drill — the full two-level RAS control loop over
// virtual time, with a live event log.
//
// Usage:
//
//	rassim -days 3 -dcs 2 -msbs 4 -reservations 6
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"ras"
	"ras/internal/backend"
	"ras/internal/metrics"
	"ras/internal/sim"
	"ras/internal/workload"
)

func main() {
	var (
		days     = flag.Int("days", 2, "virtual days to simulate")
		dcs      = flag.Int("dcs", 2, "datacenters")
		msbs     = flag.Int("msbs", 4, "MSBs per datacenter")
		racks    = flag.Int("racks", 6, "racks per MSB")
		servers  = flag.Int("servers", 6, "servers per rack")
		nres     = flag.Int("reservations", 6, "guaranteed reservations")
		seed     = flag.Int64("seed", 1, "generator seed")
		failMSB  = flag.Int("fail-msb", 1, "MSB to fail mid-simulation (-1 disables the drill)")
		failDay  = flag.Int("fail-day", 1, "virtual day of the correlated-failure drill")
		quiet    = flag.Bool("q", false, "suppress the hourly log")
		fillFrac = flag.Float64("fill", 0.7, "fraction of the region requested as capacity")
		workers  = flag.Int("workers", runtime.NumCPU(),
			"solve parallelism for the hourly rounds: branch-and-bound workers (mip) or climb starts (localsearch); 1 = serial")
		beName = flag.String("backend", backend.DefaultName,
			"solver backend for the hourly rounds ("+strings.Join(backend.Names(), ", ")+")")
		partitions = flag.Int("partitions", 0,
			"pop backend: sub-region count k (0 = default; other backends ignore it)")
		growHour = flag.Int("grow-hour", -1,
			"virtual hour at which one extra reservation arrives (-1 disables); a mid-run create exercises the model cache's structural fallback")
		requireCache = flag.Bool("require-cache", false,
			"exit nonzero unless the run exercised both the model-cache patch path and the fallback-rebuild path")
	)
	flag.Parse()
	logger := log.New(os.Stdout, "", 0)

	// Ctrl-C cancels any in-flight solve; the round persists its incumbent
	// and the simulation stops at the next event boundary.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "sim", DCs: *dcs, MSBsPerDC: *msbs,
		RacksPerMSB: *racks, ServersPerRack: *servers, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{Backend: *beName, Workers: *workers, Partitions: *partitions})
	logger.Printf("region: %d DCs, %d MSBs, %d racks, %d servers",
		region.NumDCs, region.NumMSBs, region.NumRacks, len(region.Servers))

	// Capacity requests from the synthetic workload generator.
	gen := workload.NewRequestGen(region.Catalog, len(region.Servers) / *nres, *seed)
	per := float64(len(region.Servers)) * *fillFrac / float64(*nres)
	var resIDs []ras.ReservationID
	for i := 0; i < *nres; i++ {
		req := gen.Next()
		req.RRUs = per
		req.CountBased = true
		req.EligibleTypes = nil
		id, err := sys.CreateReservation(req)
		if err != nil {
			log.Fatal(err)
		}
		resIDs = append(resIDs, id)
		logger.Printf("capacity request: %-12s class=%-9v rrus=%.0f → reservation %d",
			req.Name, req.Class, req.RRUs, id)
	}

	engine := ras.NewEngine()
	// Hourly continuous optimization (Figure 6 step 8).
	engine.Every(sim.Hour, func(now sim.Time) {
		if ctx.Err() != nil {
			return // interrupted: stop solving, let the run wind down
		}
		res, err := sys.Solve(ctx, now)
		if err != nil {
			logger.Printf("[%s] solve failed: %v", clock(now), err)
			return
		}
		if !*quiet {
			line := fmt.Sprintf("[%s] solve[%s]: %s in %v, moves in-use=%d idle=%d",
				clock(now), res.Backend, res.Status, res.Elapsed.Round(1e6),
				res.Moves.InUse, res.Moves.Unused)
			if res.MIP != nil {
				line += fmt.Sprintf(", %d assign vars, gap=%.1f preemptions",
					res.MIP.Phase1.AssignVars, res.MIP.Phase1.GapPreemptions)
			}
			logger.Print(line)
		}
	})
	// Hourly health tick + maintenance every 6 hours.
	engine.Every(sim.Hour, func(now sim.Time) {
		st := sys.Health().Tick(now)
		if st.RandomFailures > 0 && !*quiet {
			logger.Printf("[%s] health: %d random failures (mover replaces within a minute)",
				clock(now), st.RandomFailures)
		}
	})
	engine.Every(6*sim.Hour, func(now sim.Time) {
		msb, n := sys.Health().StartMaintenanceWave(now)
		if !*quiet {
			logger.Printf("[%s] maintenance wave: MSB %d, %d servers (≤25%%)", clock(now), msb, n)
		}
	})

	// Mid-run growth: a new reservation is a structural delta, so the next
	// hourly solve must fall back to a cold model rebuild while steady-state
	// hours keep patching.
	if *growHour >= 0 {
		engine.At(sim.Time(*growHour)*sim.Hour, func(now sim.Time) {
			req := gen.Next()
			req.RRUs = per / 2
			req.CountBased = true
			req.EligibleTypes = nil
			id, err := sys.CreateReservation(req)
			if err != nil {
				logger.Printf("[%s] growth request failed: %v", clock(now), err)
				return
			}
			logger.Printf("[%s] growth: new reservation %d (%s, %.0f RRUs)",
				clock(now), id, req.Name, req.RRUs)
		})
	}

	// The correlated-failure drill.
	if *failMSB >= 0 && *failDay <= *days {
		at := sim.Time(*failDay) * sim.Day
		engine.At(at, func(now sim.Time) {
			paused := sys.Health().PauseMaintenance(now)
			n := sys.Health().FailMSB(*failMSB, now, 12*sim.Hour)
			logger.Printf("[%s] *** CORRELATED FAILURE: MSB %d down (%d servers); %d maintenance servers returned ***",
				clock(now), *failMSB, n, paused)
			for _, id := range resIDs {
				total, after, _ := sys.GuaranteedRRUs(id)
				r, _ := sys.Reservations().Get(id)
				ok := "OK"
				if after < r.RRUs {
					ok = "SHORT"
				}
				logger.Printf("[%s]     reservation %d: %.0f allocated, %.0f surviving vs %.0f requested [%s]",
					clock(now), id, total, after, r.RRUs, ok)
			}
		})
	}

	engine.RunUntil(sim.Time(*days) * sim.Day)

	logger.Printf("simulation done: %d events over %d virtual days", engine.Processed(), *days)
	mv := sys.Mover().Stats()
	logger.Printf("mover: %d in-use moves, %d idle moves, %d replacements (%d missed), %d profile switches",
		mv.MovesInUse, mv.MovesUnused, mv.Replacements, mv.ReplacementMiss, mv.ProfileSwitches)
	planned, unplanned := sys.Broker().UnavailableCount()
	logger.Printf("final unavailability: %d planned, %d unplanned of %d servers",
		planned, unplanned, len(region.Servers))
	hits := metrics.Solver.ModelPatchHits.Value()
	misses := metrics.Solver.ModelPatchMisses.Value()
	falls := metrics.Solver.FallbackRebuilds.Value()
	logger.Printf("model cache: patch_hits=%d patch_misses=%d fallback_rebuilds=%d",
		hits, misses, falls)
	if *requireCache && (hits == 0 || falls == 0) {
		logger.Printf("FAIL: -require-cache wants patch_hits>0 and fallback_rebuilds>0")
		os.Exit(1)
	}
}

func clock(t sim.Time) string {
	d := t / sim.Day
	h := (t % sim.Day) / sim.Hour
	m := (t % sim.Hour) / sim.Minute
	return fmt.Sprintf("day %d %02d:%02d", d, h, m)
}
