// Command rassolve runs one async-solver round over a region description
// read from JSON (or a synthetic region) and writes the resulting
// server-to-reservation assignment as JSON, making the solver usable as a
// standalone tool.
//
// Usage:
//
//	rassolve -in region.json > assignment.json
//	rassolve -synthetic -dcs 2 -msbs 3 -reservations 4 > assignment.json
//	rassolve -synthetic -backend localsearch > assignment.json
//
// The -backend flag selects any registered solver backend (mip, localsearch,
// pop); -partitions sets the pop backend's sub-region count. SIGINT/SIGTERM
// cancel the solve cooperatively: the tool still writes the best incumbent
// assignment found before the signal.
//
// Input schema (JSON):
//
//	{
//	  "region": {"dcs": 2, "msbsPerDC": 3, "racksPerMSB": 4, "serversPerRack": 8, "seed": 1},
//	  "reservations": [
//	    {"name": "web", "class": "Web", "rrus": 120, "countBased": true}
//	  ]
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ras"
	"ras/internal/backend"
	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/metrics"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

type inputDoc struct {
	Region       topology.GenSpec `json:"region"`
	Reservations []resDoc         `json:"reservations"`
}

type resDoc struct {
	Name       string  `json:"name"`
	Class      string  `json:"class"`
	RRUs       float64 `json:"rrus"`
	CountBased bool    `json:"countBased"`
	SingleDC   *int    `json:"singleDC,omitempty"`
}

type outputDoc struct {
	Backend    string           `json:"backend"`
	Status     string           `json:"status"`
	Servers    []serverOut      `json:"servers"`
	Phase1     *statsOut        `json:"phase1,omitempty"`
	Phase2     *statsOut        `json:"phase2,omitempty"`
	Moves      solver.MoveStats `json:"moves"`
	ByRes      map[string]int   `json:"serversPerReservation"`
	ElapsedSec float64          `json:"elapsedSec"`
}

type serverOut struct {
	ID   int    `json:"id"`
	Type string `json:"type"`
	MSB  int    `json:"msb"`
	DC   int    `json:"dc"`
	Res  string `json:"reservation"`
}

type statsOut struct {
	AssignVars int    `json:"assignVars"`
	Groups     int    `json:"symmetryGroups"`
	Status     string `json:"status"`
	// GapPreemptions is omitted when no bound exists (solve cancelled
	// before the root relaxation finished): the gap is +Inf, which JSON
	// cannot represent.
	GapPreemptions *float64 `json:"gapPreemptions,omitempty"`
	SoftSlack      float64  `json:"softSlack"`
	TotalSec       float64  `json:"totalSec"`
}

func classByName(name string) (hardware.Class, bool) {
	for _, c := range hardware.Classes() {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func main() {
	var (
		in        = flag.String("in", "", "input JSON file ('-' or empty with -synthetic)")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic region and reservations")
		dcs       = flag.Int("dcs", 2, "synthetic: datacenters")
		msbs      = flag.Int("msbs", 3, "synthetic: MSBs per DC")
		nres      = flag.Int("reservations", 4, "synthetic: reservation count")
		timeLimit = flag.Duration("time-limit", 10*time.Second, "solve time limit")
		workers   = flag.Int("workers", runtime.NumCPU(),
			"solve parallelism: branch-and-bound workers (mip) or climb starts (localsearch); 1 = serial")
		beName = flag.String("backend", backend.DefaultName,
			"solver backend ("+strings.Join(backend.Names(), ", ")+")")
		partitions = flag.Int("partitions", 0,
			"pop backend: sub-region count k (0 = default; other backends ignore it)")
		verbose    = flag.Bool("v", false, "print solver and LP counters to stderr after the solve")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("rassolve: -cpuprofile: %v", err)
		}
		defer f.Close() //raslint:allow errdrop StopCPUProfile has flushed by the time this close runs; the profile is a best-effort diagnostic
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("rassolve: -cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("rassolve: -memprofile: %v", err)
			}
			defer f.Close() //raslint:allow errdrop WriteHeapProfile error-checks the write itself; a close failure can only truncate a best-effort diagnostic
			runtime.GC()    // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("rassolve: -memprofile: %v", err)
			}
		}()
	}

	var doc inputDoc
	switch {
	case *synthetic:
		doc.Region = topology.GenSpec{Name: "synthetic", DCs: *dcs, MSBsPerDC: *msbs,
			RacksPerMSB: 6, ServersPerRack: 6, Seed: 1}
		total := *dcs * *msbs * 36
		for i := 0; i < *nres; i++ {
			doc.Reservations = append(doc.Reservations, resDoc{
				Name:       fmt.Sprintf("svc-%d", i),
				Class:      hardware.Class(i % 5).String(),
				RRUs:       float64(total) * 0.7 / float64(*nres),
				CountBased: true,
			})
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() //raslint:allow errdrop file is opened read-only, so close cannot lose buffered writes
		if err := json.NewDecoder(f).Decode(&doc); err != nil {
			log.Fatalf("rassolve: parse %s: %v", *in, err)
		}
	default:
		if err := json.NewDecoder(os.Stdin).Decode(&doc); err != nil {
			log.Fatalf("rassolve: parse stdin: %v", err)
		}
	}

	region, err := ras.NewRegion(doc.Region)
	if err != nil {
		log.Fatal(err)
	}
	var rsvs []reservation.Reservation
	for i, rd := range doc.Reservations {
		cl, ok := classByName(rd.Class)
		if !ok {
			log.Fatalf("rassolve: unknown class %q (want one of %v)", rd.Class, hardware.Classes())
		}
		pol := reservation.DefaultPolicy()
		if rd.SingleDC != nil {
			pol.SingleDC = *rd.SingleDC
		}
		rsvs = append(rsvs, reservation.Reservation{
			ID: reservation.ID(i), Name: rd.Name, Class: cl,
			RRUs: rd.RRUs, CountBased: rd.CountBased, Policy: pol,
		})
	}

	// SIGINT/SIGTERM cancel the solve; the backend returns its best
	// incumbent, which is still written out below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	be, err := backend.New(*beName, backend.Config{})
	if err != nil {
		log.Fatal(err)
	}
	b := broker.New(region)
	res, err := be.Solve(ctx, solver.Input{
		Region: region, Reservations: rsvs, States: b.Snapshot(),
	}, backend.Options{TimeLimit: *timeLimit, Workers: *workers, Partitions: *partitions})
	if err != nil {
		log.Fatal(err)
	}

	out := outputDoc{
		Backend:    res.Backend,
		Status:     res.Status.String(),
		Servers:    []serverOut{},
		ByRes:      map[string]int{},
		ElapsedSec: res.Elapsed.Seconds(),
		Moves:      res.Moves,
	}
	if res.MIP != nil {
		s := toStats(res.MIP.Phase1)
		out.Phase1 = &s
		if res.MIP.RanPhase2 {
			s2 := toStats(res.MIP.Phase2)
			out.Phase2 = &s2
		}
	}
	nameOf := func(id reservation.ID) string {
		switch {
		case id == reservation.Unassigned:
			return ""
		case id == reservation.SharedBuffer:
			return "shared-buffer"
		case int(id) < len(rsvs):
			return rsvs[id].Name
		}
		return fmt.Sprintf("res-%d", id)
	}
	for i, tgt := range res.Targets {
		srv := region.Servers[i]
		name := nameOf(tgt)
		if name == "" {
			continue // free pool
		}
		out.Servers = append(out.Servers, serverOut{
			ID: i, Type: region.Catalog.Type(srv.Type).ID, MSB: srv.MSB, DC: srv.DC, Res: name,
		})
		out.ByRes[name]++
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
	if *verbose {
		printCounters(os.Stderr)
	}
}

// printCounters dumps the process-wide solver and LP counters — the solve
// hot-path instrumentation of internal/metrics — in a stable, greppable
// key=value layout.
func printCounters(w io.Writer) {
	s, l := &metrics.Solver, &metrics.LP
	fmt.Fprintf(w, "solver: solves=%d workers=%d nodes=%d incumbents=%d heuristic_wins=%d round_warm_hits=%d round_warm_misses=%d\n",
		s.Solves.Value(), s.WorkersUsed.Value(), s.NodesExplored.Value(),
		s.IncumbentUpdates.Value(), s.HeuristicWins.Value(),
		s.RoundWarmHits.Value(), s.RoundWarmMisses.Value())
	fmt.Fprintf(w, "model-cache: patch_hits=%d patch_misses=%d fallback_rebuilds=%d\n",
		s.ModelPatchHits.Value(), s.ModelPatchMisses.Value(), s.FallbackRebuilds.Value())
	fmt.Fprintf(w, "lp: solves=%d iters=%d dual_iters=%d refactorizations=%d workspace_reuses=%d warm_hits=%d warm_misses=%d\n",
		l.Solves.Value(), l.Iterations.Value(), l.DualIterations.Value(),
		l.Refactorizations.Value(), l.WorkspaceReuses.Value(),
		l.WarmHits.Value(), l.WarmMisses.Value())
	fmt.Fprintf(w, "lp-factor: update_etas=%d fill_ins=%d singular_repairs=%d factor_nnz=%d factor_rows=%d\n",
		l.UpdateEtas.Value(), l.FactorFillIns.Value(), l.SingularRepairs.Value(),
		l.FactorNnz.Value(), l.FactorRows.Value())
	fmt.Fprintf(w, "pop: partitions=%d partition_solves=%d repair_moves=%d partition_warm_hits=%d partition_warm_misses=%d\n",
		s.Partitions.Value(), s.PartitionSolves.Value(), s.RepairMoves.Value(),
		s.PartitionWarmHits.Value(), s.PartitionWarmMisses.Value())
}

func toStats(p solver.PhaseStats) statsOut {
	s := statsOut{
		AssignVars: p.AssignVars,
		Groups:     p.Groups,
		Status:     p.Status.String(),
		SoftSlack:  p.SoftSlack,
		TotalSec:   p.Total().Seconds(),
	}
	if !math.IsInf(p.GapPreemptions, 0) && !math.IsNaN(p.GapPreemptions) {
		g := p.GapPreemptions
		s.GapPreemptions = &g
	}
	return s
}
