// Command rasbench regenerates every table and figure of the paper's
// evaluation (§4) against the synthetic region substrate and prints
// paper-vs-measured reports. Its output is the source for EXPERIMENTS.md.
//
// Usage:
//
//	rasbench -all                 # run every experiment at the default scale
//	rasbench -run fig12,fig14     # run a subset
//	rasbench -scale large         # paper-like 36-MSB regions (slow)
//	rasbench -list                # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ras/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		run      = flag.String("run", "", "comma-separated experiment IDs (see -list)")
		scaleStr = flag.String("scale", "medium", "experiment scale: small, medium, large")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		md       = flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md body) instead of text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleStr {
	case "small":
		scale = experiments.ScaleSmall
	case "medium":
		scale = experiments.ScaleMedium
	case "large":
		scale = experiments.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "rasbench: unknown scale %q\n", *scaleStr)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	} else if !*all {
		fmt.Fprintln(os.Stderr, "rasbench: pass -all or -run <ids>; see -list")
		os.Exit(2)
	}

	start := time.Now()
	failures := 0
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		rep, err := e.Run(scale)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "rasbench: %s failed: %v\n", e.ID, err)
			continue
		}
		if *md {
			printMarkdown(rep)
		} else {
			fmt.Println(rep)
		}
		if !rep.ShapeHolds {
			failures++
		}
	}
	fmt.Fprintf(os.Stderr, "rasbench: %d experiments at scale %s in %.0fs, %d diverged\n",
		ran, scale, time.Since(start).Seconds(), failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func printMarkdown(r *experiments.Report) {
	fmt.Printf("### %s — %s\n\n", r.ID, r.Title)
	fmt.Printf("**Paper:** %s\n\n", r.PaperClaim)
	fmt.Printf("**Measured:**\n\n```\n")
	for _, m := range r.Measured {
		fmt.Println(m)
	}
	fmt.Printf("```\n\n")
	verdict := "shape holds"
	if !r.ShapeHolds {
		verdict = "shape diverges"
	}
	fmt.Printf("**Verdict:** %s (%.1fs)", verdict, r.Elapsed.Seconds())
	if r.Notes != "" {
		fmt.Printf(" — %s", r.Notes)
	}
	fmt.Printf("\n\n")
}
