// Package broker implements the Resource Broker: the highly-available store
// that virtualizes region capacity (paper §3.1, Figure 6). For every server
// it maintains the current reservation binding, the target binding written
// by the async solver, elastic-loan state, container occupancy, and
// unavailability events written by the health-check service. The Twine
// allocator and the online mover subscribe to unavailability events via
// callbacks.
package broker

import (
	"fmt"
	"sort"
	"sync"

	"ras/internal/reservation"
	"ras/internal/topology"
)

// UnavailKind classifies an unavailability event (paper §2.5).
type UnavailKind int8

// Unavailability kinds.
const (
	Available UnavailKind = iota
	// RandomFailure is a server-scope hardware/software failure.
	RandomFailure
	// ToRFailure is a top-of-rack switch failure taking out one rack.
	ToRFailure
	// CorrelatedFailure is an MSB-scope power/network failure.
	CorrelatedFailure
	// PlannedMaintenance is operator-scheduled downtime. Unlike failures,
	// maintenance capacity is treated as usable by the solver because the
	// embedded buffer already covers it (§3.3.1).
	PlannedMaintenance
)

func (k UnavailKind) String() string {
	switch k {
	case Available:
		return "available"
	case RandomFailure:
		return "random-failure"
	case ToRFailure:
		return "tor-failure"
	case CorrelatedFailure:
		return "correlated-failure"
	case PlannedMaintenance:
		return "planned-maintenance"
	}
	return fmt.Sprintf("UnavailKind(%d)", int8(k))
}

// Planned reports whether the kind is operator-controlled.
func (k UnavailKind) Planned() bool { return k == PlannedMaintenance }

// ServerState is the broker's record for one server. Times are virtual
// simulation seconds.
type ServerState struct {
	ID      topology.ServerID
	Current reservation.ID // reservation the server belongs to now
	Target  reservation.ID // binding intent written by the async solver
	// LoanedTo is the elastic reservation currently borrowing this server,
	// or reservation.Unassigned when not loaned (§3.4).
	LoanedTo   reservation.ID
	Containers int // running containers (allocator-maintained)
	Unavail    UnavailKind
	UnavailEnd int64 // virtual time when the event clears (0 = unknown)
	// FlashWear is the server's SSD wear level in [0,1] (1 = end of life),
	// reported by the fleet telemetry pipeline. The solver's IO-aware
	// placement (paper §5.2) steers write-heavy reservations away from
	// worn flash.
	FlashWear float64
}

// InUse reports whether the server hosts running containers.
func (s *ServerState) InUse() bool { return s.Containers > 0 }

// Event notifies subscribers of a server availability transition.
type Event struct {
	Server topology.ServerID
	Kind   UnavailKind // Available when the server recovered
	Prev   UnavailKind
	Time   int64
}

// Broker is the resource broker. All methods are safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	region *topology.Region
	states []ServerState
	subs   []func(Event)
	// version increments on every mutation, letting pollers detect change.
	version uint64
	// journal is the publish-time side of the snapshot/delta protocol: one
	// entry per solve-relevant mutation (current binding, loans, container
	// occupancy, availability, flash wear), tagged with the post-mutation
	// version, so ChangedSince can answer "which servers differ between
	// version v and now" without diffing snapshots. Target writes are
	// deliberately not journaled — targets are solver *output* and do not
	// feed the next solve's model. The journal is bounded: when it outgrows
	// its cap the oldest half is evicted and journalFloor rises, after which
	// ChangedSince reports history-lost for baselines at or below the floor.
	journal      []journalEntry
	journalFloor uint64
}

// journalEntry records that a solve-relevant mutation at the given version
// touched the given server.
type journalEntry struct {
	version uint64
	server  topology.ServerID
}

// minJournalCap is the journal's minimum entry cap; larger regions get
// 4 entries per server before eviction.
const minJournalCap = 1024

// New creates a broker over the region with every server unassigned and
// available.
func New(region *topology.Region) *Broker {
	b := &Broker{region: region, states: make([]ServerState, len(region.Servers))}
	for i := range b.states {
		b.states[i] = ServerState{
			ID:       topology.ServerID(i),
			Current:  reservation.Unassigned,
			Target:   reservation.Unassigned,
			LoanedTo: reservation.Unassigned,
		}
	}
	return b
}

// Region returns the physical topology the broker manages.
func (b *Broker) Region() *topology.Region { return b.region }

// Version reports the current mutation counter.
func (b *Broker) Version() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.version
}

// record journals a solve-relevant mutation of id at the current version and
// enforces the journal cap. Callers hold b.mu and have already bumped
// b.version.
func (b *Broker) record(id topology.ServerID) {
	b.journal = append(b.journal, journalEntry{version: b.version, server: id})
	limit := 4 * len(b.states)
	if limit < minJournalCap {
		limit = minJournalCap
	}
	if len(b.journal) > limit {
		drop := len(b.journal) / 2
		b.journalFloor = b.journal[drop-1].version
		b.journal = append(b.journal[:0], b.journal[drop:]...)
	}
}

// ChangedSince lists the servers whose solve-relevant state may have changed
// after version since (a value previously returned by Version or
// SnapshotAt), ascending and duplicate-free. The list can be a superset —
// a mutation that rewrote a field to its existing value still journals — but
// never misses a change. ok is false when the journal no longer reaches back
// to since (evicted history, or a version from a different broker); the
// caller must then treat every server as changed.
func (b *Broker) ChangedSince(since uint64) (ids []topology.ServerID, ok bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if since < b.journalFloor || since > b.version {
		return nil, false
	}
	// Journal versions ascend, so the relevant suffix starts at the first
	// entry past since.
	lo := sort.Search(len(b.journal), func(i int) bool { return b.journal[i].version > since })
	seen := make(map[topology.ServerID]bool, len(b.journal)-lo)
	for _, e := range b.journal[lo:] {
		if !seen[e.server] {
			seen[e.server] = true
			ids = append(ids, e.server)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// Subscribe registers a callback for availability transitions. Callbacks run
// synchronously on the mutating goroutine after the broker's lock has been
// released, so they may call back into the broker.
func (b *Broker) Subscribe(fn func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

// State returns a copy of the server's record.
func (b *Broker) State(id topology.ServerID) ServerState {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.states[id]
}

// SetCurrent records that the server now belongs to res, clearing any
// elastic loan.
func (b *Broker) SetCurrent(id topology.ServerID, res reservation.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states[id].Current = res
	b.states[id].LoanedTo = reservation.Unassigned
	b.version++
	b.record(id)
}

// SetTarget writes the solver's binding intent for the server.
func (b *Broker) SetTarget(id topology.ServerID, res reservation.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states[id].Target = res
	b.version++
}

// SetTargets writes many binding intents in one critical section. Solve
// outputs are applied atomically so the mover never sees a half-written
// assignment (Figure 6 step 3).
func (b *Broker) SetTargets(targets map[topology.ServerID]reservation.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, res := range targets {
		b.states[id].Target = res
	}
	b.version++
}

// SetLoan marks the server as loaned to an elastic reservation (or clears
// the loan with reservation.Unassigned).
func (b *Broker) SetLoan(id topology.ServerID, elastic reservation.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states[id].LoanedTo = elastic
	b.version++
	b.record(id)
}

// SetContainers records the number of running containers on the server.
func (b *Broker) SetContainers(id topology.ServerID, n int) {
	if n < 0 {
		panic(fmt.Sprintf("broker: negative container count %d", n))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states[id].Containers = n
	b.version++
	b.record(id)
}

// SetFlashWear records the server's SSD wear level in [0,1].
func (b *Broker) SetFlashWear(id topology.ServerID, wear float64) {
	if wear < 0 || wear > 1 {
		panic(fmt.Sprintf("broker: flash wear %v outside [0,1]", wear))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states[id].FlashWear = wear
	b.version++
	b.record(id)
}

// SetUnavailable records an unavailability event and notifies subscribers.
func (b *Broker) SetUnavailable(id topology.ServerID, kind UnavailKind, now, until int64) {
	if kind == Available {
		b.ClearUnavailable(id, now)
		return
	}
	b.mu.Lock()
	prev := b.states[id].Unavail
	b.states[id].Unavail = kind
	b.states[id].UnavailEnd = until
	b.version++
	b.record(id)
	subs := append([]func(Event){}, b.subs...)
	b.mu.Unlock()
	ev := Event{Server: id, Kind: kind, Prev: prev, Time: now}
	for _, fn := range subs {
		fn(ev)
	}
}

// ClearUnavailable marks the server available again and notifies
// subscribers.
func (b *Broker) ClearUnavailable(id topology.ServerID, now int64) {
	b.mu.Lock()
	prev := b.states[id].Unavail
	if prev == Available {
		b.mu.Unlock()
		return
	}
	b.states[id].Unavail = Available
	b.states[id].UnavailEnd = 0
	b.version++
	b.record(id)
	subs := append([]func(Event){}, b.subs...)
	b.mu.Unlock()
	ev := Event{Server: id, Kind: Available, Prev: prev, Time: now}
	for _, fn := range subs {
		fn(ev)
	}
}

// Snapshot returns a copy of every server state, indexed by ServerID. This
// is the solver's "Solve Input" read (Figure 6 step 2).
func (b *Broker) Snapshot() []ServerState {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]ServerState(nil), b.states...)
}

// SnapshotAt is Snapshot plus the version the copy corresponds to. Feed the
// version back to ChangedSince after further mutations to get the delta
// between this snapshot and a later one — the solver-facing half of the
// snapshot/delta protocol behind incremental model builds.
func (b *Broker) SnapshotAt() ([]ServerState, uint64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]ServerState(nil), b.states...), b.version
}

// ServersIn lists the servers currently bound to res, including loaned-out
// buffer servers (their Current still names the owning reservation).
func (b *Broker) ServersIn(res reservation.ID) []topology.ServerID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []topology.ServerID
	for i := range b.states {
		if b.states[i].Current == res {
			out = append(out, b.states[i].ID)
		}
	}
	return out
}

// CountByReservation reports how many servers are bound to each reservation.
func (b *Broker) CountByReservation() map[reservation.ID]int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[reservation.ID]int)
	for i := range b.states {
		out[b.states[i].Current]++
	}
	return out
}

// UnavailableCount reports the number of servers that are currently
// unavailable, split into planned and unplanned.
func (b *Broker) UnavailableCount() (planned, unplanned int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for i := range b.states {
		switch k := b.states[i].Unavail; {
		case k == Available:
		case k.Planned():
			planned++
		default:
			unplanned++
		}
	}
	return planned, unplanned
}

// ExpireUnavailability clears every unavailability event whose end time has
// passed, returning the servers that recovered.
func (b *Broker) ExpireUnavailability(now int64) []topology.ServerID {
	b.mu.Lock()
	var recovered []topology.ServerID
	var events []Event
	for i := range b.states {
		st := &b.states[i]
		if st.Unavail != Available && st.UnavailEnd > 0 && st.UnavailEnd <= now {
			events = append(events, Event{Server: st.ID, Kind: Available, Prev: st.Unavail, Time: now})
			st.Unavail = Available
			st.UnavailEnd = 0
			recovered = append(recovered, st.ID)
		}
	}
	if len(recovered) > 0 {
		b.version++
		for _, id := range recovered {
			b.record(id)
		}
	}
	subs := append([]func(Event){}, b.subs...)
	b.mu.Unlock()
	for _, ev := range events {
		for _, fn := range subs {
			fn(ev)
		}
	}
	return recovered
}
