package broker

import (
	"sync"
	"testing"

	"ras/internal/reservation"
	"ras/internal/topology"
)

func testBroker(t testing.TB) *Broker {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		DCs: 1, MSBsPerDC: 2, RacksPerMSB: 2, ServersPerRack: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(region)
}

func TestNewStartsUnassigned(t *testing.T) {
	b := testBroker(t)
	st := b.State(0)
	if st.Current != reservation.Unassigned || st.Target != reservation.Unassigned {
		t.Fatalf("fresh server bound: %+v", st)
	}
	if st.Unavail != Available {
		t.Fatalf("fresh server unavailable: %v", st.Unavail)
	}
}

func TestSetCurrentClearsLoan(t *testing.T) {
	b := testBroker(t)
	b.SetLoan(1, 42)
	if b.State(1).LoanedTo != 42 {
		t.Fatal("loan not recorded")
	}
	b.SetCurrent(1, 7)
	st := b.State(1)
	if st.Current != 7 || st.LoanedTo != reservation.Unassigned {
		t.Fatalf("SetCurrent: %+v", st)
	}
}

func TestSetTargetsAtomicVersion(t *testing.T) {
	b := testBroker(t)
	v0 := b.Version()
	b.SetTargets(map[topology.ServerID]reservation.ID{0: 1, 1: 1, 2: 2})
	if b.Version() != v0+1 {
		t.Fatalf("bulk target write must bump version once: %d → %d", v0, b.Version())
	}
	if b.State(2).Target != 2 {
		t.Fatal("target not written")
	}
}

func TestUnavailabilityEventsAndSubscription(t *testing.T) {
	b := testBroker(t)
	var events []Event
	b.Subscribe(func(ev Event) { events = append(events, ev) })

	b.SetUnavailable(3, RandomFailure, 100, 200)
	if got := b.State(3).Unavail; got != RandomFailure {
		t.Fatalf("unavail = %v", got)
	}
	b.ClearUnavailable(3, 150)
	if got := b.State(3).Unavail; got != Available {
		t.Fatalf("after clear: %v", got)
	}
	if len(events) != 2 || events[0].Kind != RandomFailure || events[1].Kind != Available {
		t.Fatalf("events: %+v", events)
	}
	if events[1].Prev != RandomFailure {
		t.Fatalf("recovery event must carry previous kind, got %v", events[1].Prev)
	}

	// Clearing an already-available server must not notify.
	b.ClearUnavailable(3, 160)
	if len(events) != 2 {
		t.Fatal("spurious event on double clear")
	}
}

func TestSetUnavailableAvailableKindClears(t *testing.T) {
	b := testBroker(t)
	b.SetUnavailable(0, ToRFailure, 1, 10)
	b.SetUnavailable(0, Available, 2, 0)
	if b.State(0).Unavail != Available {
		t.Fatal("Available kind must clear")
	}
}

func TestExpireUnavailability(t *testing.T) {
	b := testBroker(t)
	b.SetUnavailable(0, RandomFailure, 0, 100)
	b.SetUnavailable(1, PlannedMaintenance, 0, 300)
	recovered := b.ExpireUnavailability(200)
	if len(recovered) != 1 || recovered[0] != 0 {
		t.Fatalf("recovered = %v", recovered)
	}
	if b.State(1).Unavail != PlannedMaintenance {
		t.Fatal("unexpired event was cleared")
	}
}

func TestUnavailableCount(t *testing.T) {
	b := testBroker(t)
	b.SetUnavailable(0, RandomFailure, 0, 0)
	b.SetUnavailable(1, PlannedMaintenance, 0, 0)
	b.SetUnavailable(2, CorrelatedFailure, 0, 0)
	planned, unplanned := b.UnavailableCount()
	if planned != 1 || unplanned != 2 {
		t.Fatalf("planned=%d unplanned=%d", planned, unplanned)
	}
}

func TestServersInAndCounts(t *testing.T) {
	b := testBroker(t)
	b.SetCurrent(0, 5)
	b.SetCurrent(1, 5)
	b.SetCurrent(2, 6)
	if got := b.ServersIn(5); len(got) != 2 {
		t.Fatalf("ServersIn(5) = %v", got)
	}
	counts := b.CountByReservation()
	if counts[5] != 2 || counts[6] != 1 {
		t.Fatalf("counts: %v", counts)
	}
}

func TestContainersPanicOnNegative(t *testing.T) {
	b := testBroker(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative container count must panic")
		}
	}()
	b.SetContainers(0, -1)
}

func TestSnapshotIsCopy(t *testing.T) {
	b := testBroker(t)
	snap := b.Snapshot()
	snap[0].Current = 99
	if b.State(0).Current == 99 {
		t.Fatal("snapshot aliases broker state")
	}
}

func TestConcurrentMutation(t *testing.T) {
	b := testBroker(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := topology.ServerID(g % len(b.Snapshot()))
			for i := 0; i < 100; i++ {
				b.SetCurrent(id, reservation.ID(i%3))
				b.SetTarget(id, reservation.ID(i%3))
				b.SetUnavailable(id, RandomFailure, int64(i), int64(i+10))
				b.ExpireUnavailability(int64(i + 5))
				b.Snapshot()
				b.CountByReservation()
			}
		}(g)
	}
	wg.Wait()
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[UnavailKind]string{
		Available: "available", RandomFailure: "random-failure",
		ToRFailure: "tor-failure", CorrelatedFailure: "correlated-failure",
		PlannedMaintenance: "planned-maintenance",
	} {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
	if !PlannedMaintenance.Planned() || RandomFailure.Planned() {
		t.Error("Planned()")
	}
	if UnavailKind(9).String() == "" {
		t.Error("unknown kind must stringify")
	}
}
