package experiments

// Runner is one experiment entry point.
type Runner func(Scale) (*Report, error)

// Entry pairs an experiment ID with its runner.
type Entry struct {
	ID  string
	Run Runner
}

// All lists every experiment in paper order. cmd/rasbench iterates this to
// regenerate EXPERIMENTS.md; the root benchmarks bind one testing.B bench
// to each entry.
func All() []Entry {
	return []Entry{
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"buffers", BufferAccounting},
		{"pop", POPSweep},
	}
}
