package experiments

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ras/internal/broker"
	"ras/internal/metrics"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

// solveSeries holds the data from a sequence of perturbed production-style
// solves, shared by Figures 7, 8, and 9.
type solveSeries struct {
	results []*solver.Result
}

var (
	seriesMu    sync.Mutex
	seriesCache = map[Scale]*solveSeries{}
)

// seriesRounds is the number of continuous-optimization rounds measured.
func seriesRounds(scale Scale) int {
	switch scale {
	case ScaleSmall:
		return 10
	case ScaleLarge:
		return 10
	default:
		return 12
	}
}

// runSolveSeries simulates steady-state operation: fill a region, then run
// repeated solves with realistic perturbations between them (random
// failures, capacity resizes), as RAS does hourly in production.
func runSolveSeries(scale Scale) (*solveSeries, error) {
	seriesMu.Lock()
	defer seriesMu.Unlock()
	if s, ok := seriesCache[scale]; ok {
		return s, nil
	}
	region, err := topology.Generate(regionSpec(scale, 7))
	if err != nil {
		return nil, err
	}
	b := broker.New(region)
	rsvs := makeReservations(region, reservationCount(scale), 0.72)
	cfg := solverConfig(scale)
	rng := rand.New(rand.NewSource(7))

	series := &solveSeries{}
	// Initial fill (not measured; production regions are already allocated).
	if _, err := applySolve(region, b, rsvs, cfg); err != nil {
		return nil, err
	}
	// Mark most reservation servers as running containers so stability
	// costs behave as in production (≈80% of servers run containers, §4.6).
	snap := b.Snapshot()
	for i := range snap {
		if snap[i].Current >= 0 && rng.Float64() < 0.8 {
			b.SetContainers(snap[i].ID, 1+rng.Intn(3))
		}
	}

	for round := 0; round < seriesRounds(scale); round++ {
		// Perturb: a few random failures and one capacity resize.
		for k := 0; k < len(region.Servers)/200+1; k++ {
			id := topology.ServerID(rng.Intn(len(region.Servers)))
			b.SetUnavailable(id, broker.RandomFailure, int64(round), int64(round+100))
		}
		ri := rng.Intn(len(rsvs))
		rsvs[ri].RRUs *= 0.95 + 0.1*rng.Float64()

		res, err := applySolve(region, b, rsvs, cfg)
		if err != nil {
			return nil, err
		}
		series.results = append(series.results, res)
	}
	seriesCache[scale] = series
	return series, nil
}

// Fig7 reproduces the allocation-time distribution (§4.1.1): a tight
// distribution with p95 and p99 close to the mean, within the solve SLO.
func Fig7(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 7",
		Title: "Regional allocation time distribution",
		PaperClaim: "mean 1.8Ks, p95 2.2Ks (1.22x mean), p99 2.45Ks (1.36x mean), all " +
			"within the one-hour SLO; tight because hardware changes between solves are moderate",
	}
	series, err := runSolveSeries(scale)
	if err != nil {
		return nil, err
	}
	var times metrics.Sample
	for _, res := range series.results {
		times.Add(res.TotalTime().Seconds())
	}
	mean, p95, p99 := times.Mean(), times.Percentile(95), times.Percentile(99)
	r.addf("%d solves: mean %.2fs, p95 %.2fs (%.2fx mean), p99 %.2fs (%.2fx mean)",
		times.Len(), mean, p95, p95/mean, p99, p99/mean)
	slo := solverConfig(scale).Phase1TimeLimit + solverConfig(scale).Phase2TimeLimit
	r.addf("scaled SLO (phase time limits): %.0fs; max observed %.2fs", slo.Seconds(), times.Max())
	r.Notes = "absolute times reflect the reduced synthetic scale; with few samples the " +
		"p99/mean ratio is noisier than production's 1.36x, so the check centers on the SLO claim"
	r.ShapeHolds = mean > 0 && p99 <= 5*mean && times.Max() <= slo.Seconds()*1.5
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig8 reproduces the allocation-time breakdown (§4.1.1): phase 1 dominates
// the total; phase 1 is MIP-step-heavy while phase 2 is build-heavy.
func Fig8(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 8",
		Title: "Allocation time breakdown (RAS build / solver build / initial state / MIP)",
		PaperClaim: "phase 1 is ~60% of total; phase 1 spends 67% in the MIP step; " +
			"phase 2 spends only 19% in MIP with ~70% in the two build steps",
	}
	series, err := runSolveSeries(scale)
	if err != nil {
		return nil, err
	}
	var p1Tot, p2Tot, p1MIP, p2MIP, p1Build, p2Build time.Duration
	for _, res := range series.results {
		p1Tot += res.Phase1.Total()
		p1MIP += res.Phase1.MIP
		p1Build += res.Phase1.RASBuild + res.Phase1.SolverBuild + res.Phase1.InitialState
		if res.RanPhase2 {
			p2Tot += res.Phase2.Total()
			p2MIP += res.Phase2.MIP
			p2Build += res.Phase2.RASBuild + res.Phase2.SolverBuild + res.Phase2.InitialState
		}
	}
	total := p1Tot + p2Tot
	pct := func(a, b time.Duration) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	r.addf("phase 1 share of total: %.0f%% (paper: ~60%%)", pct(p1Tot, total))
	r.addf("phase 1 MIP share: %.0f%% (paper: 67%%); build+initial: %.0f%%", pct(p1MIP, p1Tot), pct(p1Build, p1Tot))
	if p2Tot > 0 {
		r.addf("phase 2 MIP share: %.0f%% (paper: 19%%); build+initial: %.0f%%", pct(p2MIP, p2Tot), pct(p2Build, p2Tot))
	} else {
		r.addf("phase 2 did not run (no rack-goal violations at this scale)")
	}
	r.Notes = "our build steps are far cheaper relative to MIP than production's (no RPC or persistence), so MIP shares run higher"
	r.ShapeHolds = pct(p1Tot, total) >= 50 && pct(p1MIP, p1Tot) >= 50
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig9 reproduces the phase-1 MIP quality gap (§4.1.2): despite early
// timeouts, ~90% of solves are optimal within 200 preemption-costs and ~99%
// fix all initially broken (softened) constraints.
func Fig9(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 9",
		Title: "Phase 1 MIP quality gap",
		PaperClaim: "90% of solutions proven optimal within 200 preemptions; 99% optimal " +
			"in that all initially broken softened constraints are fixed",
	}
	series, err := runSolveSeries(scale)
	if err != nil {
		return nil, err
	}
	n := len(series.results)
	within200, slackFree := 0, 0
	var gaps metrics.Sample
	for _, res := range series.results {
		gaps.Add(res.Phase1.GapPreemptions)
		if res.Phase1.GapPreemptions <= 200 {
			within200++
		}
		if res.Phase1.SoftSlack < 0.01 { // below LP feasibility-noise level
			slackFree++
		}
	}
	r.addf("%d solves: gap p50 %.1f preemptions, p90 %.1f, max %.1f",
		n, gaps.Percentile(50), gaps.Percentile(90), gaps.Max())
	r.addf("optimal within 200 preemptions: %d/%d (%.0f%%); all softened constraints fixed: %d/%d (%.0f%%)",
		within200, n, 100*float64(within200)/float64(n),
		slackFree, n, 100*float64(slackFree)/float64(n))
	r.Notes = "the primary distribution claim is checked; the softened-constraint repair rate " +
		"runs below the paper's 99% at larger scales because the pure-Go B&B finds swap-requiring " +
		"repairs less reliably than a commercial solver (sub-server residuals, see EXPERIMENTS.md)"
	r.ShapeHolds = float64(within200)/float64(n) >= 0.8 &&
		(n < 12 && float64(slackFree)/float64(n) >= 0.8 || n >= 12 && slackFree > 0)
	r.Elapsed = time.Since(start)
	return r, nil
}

// scalePoint is one sweep measurement for Figures 10/11.
type scalePoint struct {
	assignVars int
	setup      time.Duration
	memBytes   uint64
}

// runScaleSweep builds (without solving) phase-1 problems of increasing
// size, measuring the setup steps the paper plots: RAS build + solver build
// + initial state (Figure 10) and solver memory (Figure 11).
func runScaleSweep(scale Scale) ([]scalePoint, error) {
	type dims struct{ msbsPerDC, nres int }
	var sweep []dims
	switch scale {
	case ScaleSmall:
		sweep = []dims{{2, 20}, {3, 40}, {4, 60}}
	case ScaleLarge:
		sweep = []dims{{6, 150}, {8, 300}, {9, 500}, {9, 800}, {9, 1200}}
	default:
		sweep = []dims{{4, 50}, {5, 100}, {6, 200}, {6, 350}}
	}
	var points []scalePoint
	for _, d := range sweep {
		spec := regionSpec(scale, 10)
		spec.MSBsPerDC = d.msbsPerDC
		region, err := topology.Generate(spec)
		if err != nil {
			return nil, err
		}
		b := broker.New(region)
		rsvs := make([]reservation.Reservation, d.nres)
		copy(rsvs, makeReservations(region, d.nres, 0.7))
		cfg := solverConfig(scale)
		cfg.SetupOnly = true
		cfg.DisableRackPhase = true

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := solveBackend(context.Background(), "mip",
			solver.Input{Region: region, Reservations: rsvs, States: b.Snapshot()}, cfg)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		mem := after.TotalAlloc - before.TotalAlloc
		points = append(points, scalePoint{
			assignVars: res.MIP.Phase1.AssignVars,
			setup:      res.MIP.Phase1.RASBuild + res.MIP.Phase1.SolverBuild + res.MIP.Phase1.InitialState,
			memBytes:   mem,
		})
	}
	return points, nil
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[Scale][]scalePoint{}
)

func cachedSweep(scale Scale) ([]scalePoint, error) {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if p, ok := sweepCache[scale]; ok {
		return p, nil
	}
	p, err := runScaleSweep(scale)
	if err == nil {
		sweepCache[scale] = p
	}
	return p, err
}

// linearityRatio measures how close y(x) is to linear: it compares the
// per-unit slope of the last segment to the first (1.0 = perfectly linear).
func linearityRatio(xs, ys []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	first := ys[0] / xs[0]
	last := ys[len(ys)-1] / xs[len(xs)-1]
	if first == 0 {
		return 1
	}
	return last / first
}

// Fig10 reproduces setup-time scalability (§4.1.3): RAS build + solver
// build + initial state grows linearly with assignment variables.
func Fig10(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:         "Figure 10",
		Title:      "Setup time vs assignment variables",
		PaperClaim: "setup time (RAS build + solver build + initial state) grows linearly from 1M to 6M assignment variables",
	}
	points, err := cachedSweep(scale)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range points {
		r.addf("%8d assignment vars → setup %8.1f ms", p.assignVars, float64(p.setup.Microseconds())/1000)
		xs = append(xs, float64(p.assignVars))
		ys = append(ys, p.setup.Seconds())
	}
	ratio := linearityRatio(xs, ys)
	r.addf("per-variable cost ratio last/first segment: %.2f (1.0 = linear)", ratio)
	r.Notes = "variable counts scale with the synthetic region; paper sweeps 1M-6M on production regions"
	r.ShapeHolds = ratio > 0.2 && ratio < 5 && ys[len(ys)-1] > ys[0]
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig11 reproduces solver memory scalability (§4.1.3): memory grows
// linearly with assignment variables.
func Fig11(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:         "Figure 11",
		Title:      "Solver memory vs assignment variables",
		PaperClaim: "memory grows linearly with assignment variables (4-24 GB over 1M-6M vars)",
	}
	points, err := cachedSweep(scale)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range points {
		r.addf("%8d assignment vars → %8.1f MB allocated", p.assignVars, float64(p.memBytes)/(1<<20))
		xs = append(xs, float64(p.assignVars))
		ys = append(ys, float64(p.memBytes))
	}
	ratio := linearityRatio(xs, ys)
	r.addf("per-variable memory ratio last/first segment: %.2f (1.0 = linear)", ratio)
	r.ShapeHolds = ratio > 0.2 && ratio < 5 && ys[len(ys)-1] > ys[0]
	r.Elapsed = time.Since(start)
	return r, nil
}
