package experiments

import (
	"testing"
)

// TestAllExperimentsSmall runs every figure runner at small scale and
// asserts the paper's qualitative shape reproduces. This is the repo's
// core end-to-end regression: if a solver or substrate change breaks a
// figure, it fails here.
func TestAllExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(ScaleSmall)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			t.Logf("\n%s", rep)
			if !rep.ShapeHolds {
				if raceEnabled {
					// The race detector slows solves ~10x, so time-limited
					// runs legitimately produce worse shapes; -race builds
					// are for data-race coverage, not quality regression.
					t.Logf("%s: shape divergence ignored under -race:\n%s", e.ID, rep)
				} else {
					t.Errorf("%s: paper shape did not reproduce:\n%s", e.ID, rep)
				}
			}
			if len(rep.Measured) == 0 {
				t.Errorf("%s: no measured rows", e.ID)
			}
			if rep.ID == "" || rep.PaperClaim == "" {
				t.Errorf("%s: incomplete report metadata", e.ID)
			}
		})
	}
}

func TestWaterfillMax(t *testing.T) {
	cases := []struct {
		caps   []float64
		demand float64
		want   float64
	}{
		{[]float64{10, 10, 10}, 15, 5},    // even split
		{[]float64{2, 10, 10}, 12, 5},     // small bin saturates
		{[]float64{2, 2, 2}, 9, 2 + 3},    // demand exceeds capacity
		{[]float64{0, 8}, 4, 4},           // zero bins ignored
		{[]float64{5}, 5, 5},              // single bin
		{[]float64{3, 6, 9}, 6, 2},        // all open
		{[]float64{1, 1, 1, 100}, 13, 10}, // one deep bin
		{[]float64{}, 5, 5},               // no bins: all overflow
	}
	for i, c := range cases {
		if got := waterfillMax(c.caps, c.demand); !feq(got, c.want) {
			t.Errorf("case %d: waterfillMax(%v, %v) = %v, want %v", i, c.caps, c.demand, got, c.want)
		}
	}
}

func feq(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleMedium.String() != "medium" ||
		ScaleLarge.String() != "large" || Scale(9).String() == "" {
		t.Fatal("Scale.String")
	}
}

func TestLinearityRatio(t *testing.T) {
	if r := linearityRatio([]float64{1, 2, 4}, []float64{10, 20, 40}); !feq(r, 1) {
		t.Fatalf("linear data ratio = %v", r)
	}
	if r := linearityRatio([]float64{1, 2}, []float64{1, 8}); r < 3 {
		t.Fatalf("superlinear data ratio = %v", r)
	}
	if r := linearityRatio([]float64{1}, []float64{1}); !feq(r, 1) {
		t.Fatalf("degenerate ratio = %v", r)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "Figure X", Title: "t", PaperClaim: "c", ShapeHolds: true}
	r.addf("m %d", 1)
	out := r.String()
	for _, want := range []string{"Figure X", "SHAPE HOLDS", "m 1"} {
		if !contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
