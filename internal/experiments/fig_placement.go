package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"ras/internal/broker"
	"ras/internal/greedy"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

var debugFig = os.Getenv("RAS_DEBUG_FIG") != ""

// fig12Dims returns (total MSBs via spec, initially commissioned MSBs).
func fig12Spec(scale Scale) (topology.GenSpec, int) {
	spec := regionSpec(scale, 12)
	switch scale {
	case ScaleSmall:
		return spec, 6 // of 8
	case ScaleLarge:
		return spec, 24 // of 36, mirroring the paper's "additional MSBs added later"
	default:
		return spec, 9 // of 12
	}
}

// Fig12 reproduces the correlated-failure-buffer reduction (§4.2): starting
// from Twine's greedy assignment, enabling RAS for more reservations over
// time drives the fleet's "machines % in max MSB" from ~15% down toward the
// waterfill lower bound, and commissioning more MSBs lowers it further.
func Fig12(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 12",
		Title: "Correlated-failure buffers over time (machines % in max MSB)",
		PaperClaim: "greedy baseline 15.1% → 5.8% as RAS is enabled → 4.2% after new MSBs " +
			"are added; computed lower bound 4.06%; perfect-spread bound 2.8% (1/36)",
	}
	spec, commissioned := fig12Spec(scale)
	region, err := topology.Generate(spec)
	if err != nil {
		return nil, err
	}
	b := broker.New(region)
	rsvs := makeReservations(region, reservationCount(scale), 0.55)

	// MSBs beyond `commissioned` are not yet turned up.
	uncommissioned := func(id topology.ServerID) bool {
		return region.Servers[id].MSB >= commissioned
	}
	for i := range region.Servers {
		id := topology.ServerID(i)
		if uncommissioned(id) {
			b.SetUnavailable(id, broker.RandomFailure, 0, 0)
		}
	}

	// Stage 0: the Twine-greedy baseline fulfills every reservation.
	g := greedy.New(b)
	if missing := g.FulfillAll(rsvs); missing > 0 {
		return nil, fmt.Errorf("fig12: greedy left %.1f RRUs unfulfilled", missing)
	}
	stage := func(name string) float64 {
		share := fleetMaxMSBShare(region, assignOf(b), rsvs)
		r.addf("%-26s %5.1f%%", name, 100*share)
		return share
	}
	greedyShare := stage("greedy baseline:")

	// Stages 1..k: enable RAS for a growing subset of reservations. Frozen
	// reservations keep their greedy servers (masked from the solve).
	cfg := solverConfig(scale)
	cfg.SharedBufferFraction = -1 // isolate the spread effect
	steps := []float64{0.34, 0.67, 1.0}
	var rasShare float64
	for _, frac := range steps {
		enabled := rsvs[:int(math.Ceil(frac*float64(len(rsvs))))]
		frozen := map[reservation.ID]bool{}
		for _, rr := range rsvs[len(enabled):] {
			frozen[rr.ID] = true
		}
		states := b.Snapshot()
		for i := range states {
			if frozen[states[i].Current] {
				states[i].Unavail = broker.RandomFailure // mask from this solve
			}
		}
		res, err := solveBackend(context.Background(), "mip",
			solver.Input{Region: region, Reservations: enabled, States: states}, cfg)
		if err != nil {
			return nil, err
		}
		for i, tgt := range res.Targets {
			id := topology.ServerID(i)
			if frozen[b.State(id).Current] || uncommissioned(id) {
				continue
			}
			if b.State(id).Current != tgt {
				b.SetCurrent(id, tgt)
			}
		}
		rasShare = stage(fmt.Sprintf("RAS on %.0f%% of services:", 100*frac))
	}

	// Final stage: commission the remaining MSBs and re-solve.
	for i := range region.Servers {
		id := topology.ServerID(i)
		if uncommissioned(id) {
			b.ClearUnavailable(id, 1)
		}
	}
	if _, err := applySolve(region, b, rsvs, cfg); err != nil {
		return nil, err
	}
	finalShare := fleetMaxMSBShare(region, assignOf(b), rsvs)
	r.addf("%-26s %5.1f%%", "after new MSBs added:", 100*finalShare)

	bound := waterfillBound(region, rsvs, nil)
	ideal := 1.0 / float64(region.NumMSBs)
	r.addf("%-26s %5.1f%%  (perfect spread %.1f%%)", "waterfill lower bound:", 100*bound, 100*ideal)

	r.Notes = fmt.Sprintf("%d MSBs (%d commissioned initially), %d services; paper runs 36 MSBs",
		region.NumMSBs, commissioned, len(rsvs))
	r.ShapeHolds = greedyShare > 2.5*rasShare && // RAS shrinks buffers a lot
		finalShare <= rasShare+0.005 && // more MSBs help (or at least do not hurt)
		finalShare < 2.5*bound+0.02 // lands near the lower bound
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig13 reproduces the spread matrix (§4.3): most services spread across
// nearly all MSBs, with principled exceptions (hardware generations, ML
// datacenter affinity).
func Fig13(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 13",
		Title: "Spread of services across MSBs",
		PaperClaim: "top services spread near-uniformly across all MSBs; exceptions: " +
			"services needing new hardware skip old MSBs, services on discontinued hardware " +
			"skip new MSBs, and a bandwidth-bound ML service is pinned to one datacenter",
	}
	region, err := topology.Generate(regionSpec(scale, 13))
	if err != nil {
		return nil, err
	}
	cat := region.Catalog
	var newTypes, oldTypes []int
	for i := 0; i < cat.Len(); i++ {
		switch cat.Type(i).Generation {
		case hardware.GenIII:
			newTypes = append(newTypes, i)
		case hardware.GenI:
			oldTypes = append(oldTypes, i)
		}
	}

	n := reservationCount(scale) + 4
	per := float64(len(region.Servers)) * 0.5 / float64(n)
	var rsvs []reservation.Reservation
	for i := 0; i < n; i++ {
		rr := reservation.Reservation{
			ID:         reservation.ID(i),
			Name:       fmt.Sprintf("svc-%02d", i),
			Class:      defaultClasses[i%len(defaultClasses)],
			RRUs:       per,
			CountBased: true,
			Policy:     reservation.DefaultPolicy(),
		}
		switch i {
		case 0, 1: // newest hardware only (absent from oldest MSBs)
			rr.EligibleTypes = newTypes
		case n - 2, n - 1: // discontinued hardware (absent from newest MSBs)
			rr.EligibleTypes = oldTypes
			rr.RRUs = per / 2
		case n / 2: // the ML service: single DC, GPU-capable class
			rr.Class = hardware.BatchML
			rr.Policy.SingleDC = region.NumDCs - 1
			rr.RRUs = per / 2
		}
		rsvs = append(rsvs, rr)
	}

	b := broker.New(region)
	cfg := solverConfig(scale)
	if _, err := applySolve(region, b, rsvs, cfg); err != nil {
		return nil, err
	}
	assign := assignOf(b)

	uniform := 1.0 / float64(region.NumMSBs)
	wellSpread := 0
	for i := range rsvs {
		if maxMSBShare(region, assign, &rsvs[i]) <= 2.5*uniform {
			wellSpread++
		}
	}
	r.addf("%d/%d services spread with max-MSB share ≤ 2.5x uniform (uniform = %.1f%%)",
		wellSpread, n, 100*uniform)

	// Exception checks.
	mlOK := true
	for i := range region.Servers {
		if assign[i] == rsvs[n/2].ID && region.Servers[i].DC != region.NumDCs-1 {
			mlOK = false
		}
	}
	r.addf("ML service confined to DC %d: %v", region.NumDCs-1, mlOK)

	oldSvcInNewest := 0.0
	newestMSB := region.NumMSBs - 1
	load := perMSBLoad(region, assign, &rsvs[n-1])
	oldSvcInNewest = load[newestMSB]
	r.addf("discontinued-hardware service load in newest MSB: %.0f RRUs (expected ~0)", oldSvcInNewest)

	r.ShapeHolds = wellSpread >= (n*2)/3 && mlOK
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig14 reproduces the power-spread improvement (§4.4): normalized power
// variance across MSBs falls from ~0.9 under greedy to ~0.2 under RAS, and
// peak-MSB headroom improves.
func Fig14(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 14",
		Title: "Power variance across MSBs over four months",
		PaperClaim: "normalized power variance drops from ~0.9 (greedy) to ~0.2 as RAS " +
			"rolls out; peak-MSB power headroom improves from ~0 to 11%",
	}
	region, err := topology.Generate(regionSpec(scale, 14))
	if err != nil {
		return nil, err
	}
	b := broker.New(region)
	rsvs := makeReservations(region, reservationCount(scale), 0.6)

	g := greedy.New(b)
	if missing := g.FulfillAll(rsvs); missing > 0 {
		return nil, fmt.Errorf("fig14: greedy left %.1f RRUs unfulfilled", missing)
	}
	powerVariance := func() (float64, float64) {
		assigned := func(id topology.ServerID) bool { return b.State(id).Current >= 0 }
		per := region.PowerByMSB(assigned)
		mean := 0.0
		peak := 0.0
		for _, p := range per {
			mean += p
			if p > peak {
				peak = p
			}
		}
		mean /= float64(len(per))
		headroom := 0.0
		if peak > 0 {
			headroom = 1 - mean/peak
		}
		return normVariance(per), headroom
	}
	v0, _ := powerVariance()
	r.addf("month 0 (greedy):   normalized variance %.2f", v0)

	cfg := solverConfig(scale)
	var vLast float64
	for month := 1; month <= 4; month++ {
		if _, err := applySolve(region, b, rsvs, cfg); err != nil {
			return nil, err
		}
		var head float64
		vLast, head = powerVariance()
		r.addf("month %d (RAS):      normalized variance %.2f (peak headroom vs mean %.0f%%)", month, vLast, 100*head)
	}
	r.ShapeHolds = v0 > 2*vLast && vLast < 0.5
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig15 reproduces the cross-datacenter traffic reduction (§4.5): enabling
// the network-affinity constraint (expression 7) for two Presto-style
// services cuts their cross-DC traffic by 2.3x (batch) and 1.6x
// (interactive).
func Fig15(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 15",
		Title: "Cross-datacenter network traffic (Presto batch & interactive)",
		PaperClaim: "enabling DC-affinity constraints reduces cross-DC traffic by >2.3x for " +
			"batch and >1.6x for interactive Presto while other constraints are still met",
	}
	region, err := topology.Generate(regionSpec(scale, 15))
	if err != nil {
		return nil, err
	}
	// Storage ratios the compute should match (expression 7's A_{r,G}).
	// Storage is itself placed across DCs; compute misaligned with the
	// ratio reads remotely. (A single-DC ratio would conflict with the
	// embedded-buffer spread — the tension §4.5 describes — so the ratios
	// reflect a storage layer that is already DC-spread.)
	storageBatch := map[int]float64{0: 0.75, 1: 0.25}
	storageInter := map[int]float64{0: 0.55, 1: 0.45}
	if region.NumDCs < 2 {
		return nil, fmt.Errorf("fig15 needs ≥2 DCs")
	}

	base := makeReservations(region, reservationCount(scale)-2, 0.45)
	batch := reservation.Reservation{
		ID: reservation.ID(len(base)), Name: "presto-batch", Class: hardware.FleetAvg,
		RRUs: float64(len(region.Servers)) * 0.12, CountBased: true, Policy: reservation.DefaultPolicy(),
	}
	inter := reservation.Reservation{
		ID: reservation.ID(len(base) + 1), Name: "presto-interactive", Class: hardware.FleetAvg,
		RRUs: float64(len(region.Servers)) * 0.06, CountBased: true, Policy: reservation.DefaultPolicy(),
	}
	rsvs := append(append([]reservation.Reservation{}, base...), batch, inter)

	// crossDC estimates the fraction of a service's I/O that crosses
	// datacenters: compute placed in a DC beyond the storage ratio reads
	// remotely.
	crossDC := func(assign []reservation.ID, rr *reservation.Reservation, storage map[int]float64) float64 {
		perDC := make([]float64, region.NumDCs)
		total := 0.0
		for i := range region.Servers {
			if assign[i] != rr.ID {
				continue
			}
			v := rruFor(region, topology.ServerID(i), rr)
			perDC[region.Servers[i].DC] += v
			total += v
		}
		if total == 0 {
			return 0
		}
		local := 0.0
		for dc, frac := range storage {
			local += math.Min(perDC[dc]/total, frac)
		}
		return 1 - local
	}

	cfg := solverConfig(scale)
	b := broker.New(region)
	if _, err := applySolve(region, b, rsvs, cfg); err != nil {
		return nil, err
	}
	assign := assignOf(b)
	beforeBatch := crossDC(assign, &batch, storageBatch)
	beforeInter := crossDC(assign, &inter, storageInter)
	r.addf("weeks 1-2 (no affinity): batch cross-DC %.0f%%, interactive %.0f%%",
		100*beforeBatch, 100*beforeInter)

	// Enable expression 7 and re-solve (the paper's weeks 3+). The
	// measurement solves from a clean state: the paper's transition took
	// weeks of hourly re-solves, which a single warm solve under-represents.
	rsvs[len(base)].Policy.DCAffinity = storageBatch
	rsvs[len(base)].Policy.AffinityTheta = 0.05
	rsvs[len(base)+1].Policy.DCAffinity = storageInter
	rsvs[len(base)+1].Policy.AffinityTheta = 0.10
	b = broker.New(region)
	res2, err := applySolve(region, b, rsvs, cfg)
	if err != nil {
		return nil, err
	}
	if debugFig {
		fmt.Printf("FIG15: %+v\n", res2.Phase1)
	}

	assign = assignOf(b)
	afterBatch := crossDC(assign, &batch, storageBatch)
	afterInter := crossDC(assign, &inter, storageInter)
	factor := func(before, after float64) float64 {
		if after < 0.005 {
			after = 0.005 // avoid infinite factors on full elimination
		}
		return before / after
	}
	fb, fi := factor(beforeBatch, afterBatch), factor(beforeInter, afterInter)
	r.addf("weeks 3+ (affinity on): batch cross-DC %.0f%% (%.1fx reduction), interactive %.0f%% (%.1fx)",
		100*afterBatch, fb, 100*afterInter, fi)
	r.ShapeHolds = fb >= 1.5 && fi >= 1.2 && afterBatch < beforeBatch && afterInter <= beforeInter
	r.Elapsed = time.Since(start)
	return r, nil
}

// BufferAccounting reproduces the §1.2/§3.3.1 capacity split: ~94% of
// servers carry guaranteed capacity, ~2% shared random-failure buffer, and
// ~4% embedded correlated-failure buffer, against the waterfill bound and
// the 1/numMSBs perfect-spread bound.
func BufferAccounting(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "§3.3 buffer accounting",
		Title: "Region capacity split: guaranteed / random buffer / embedded buffer",
		PaperClaim: "94% guaranteed capacity, 2% random-failure buffer, 4.2% embedded " +
			"buffers (lower bound 4.06%; perfect-spread bound 2.8% = 1/36)",
	}
	region, err := topology.Generate(regionSpec(scale, 33))
	if err != nil {
		return nil, err
	}
	b := broker.New(region)
	rsvs := makeReservations(region, reservationCount(scale), 0.88)
	cfg := solverConfig(scale)
	cfg.SharedBufferFraction = 0.02
	// Greedy prefill gives the solver a strong incumbent, as in production.
	// Greedy may leave a shortfall at high fill (it cannot shuffle hardware
	// between reservations); the solver closes it.
	greedy.New(b).FulfillAll(rsvs)
	if _, err := applySolve(region, b, rsvs, cfg); err != nil {
		return nil, err
	}

	total := float64(len(region.Servers))
	counts := b.CountByReservation()
	buffer := float64(counts[reservation.SharedBuffer])
	assigned := 0.0
	for id, n := range counts {
		if id >= 0 {
			assigned += float64(n)
		}
	}
	// Embedded buffer: allocated capacity beyond the requested C_r, held
	// inside reservations to survive an MSB loss.
	assign := assignOf(b)
	embedded := 0.0
	for i := range rsvs {
		have := 0.0
		for s := range region.Servers {
			if assign[s] == rsvs[i].ID {
				have += rruFor(region, topology.ServerID(s), &rsvs[i])
			}
		}
		if over := have - rsvs[i].RRUs; over > 0 {
			embedded += over // count-based ⇒ RRUs are servers
		}
	}
	guaranteed := assigned - embedded
	r.addf("guaranteed %.1f%%, shared random buffer %.1f%%, embedded buffers %.1f%%, free %.1f%%",
		100*guaranteed/total, 100*buffer/total, 100*embedded/total,
		100*(total-assigned-buffer)/total)
	bound := waterfillBound(region, rsvs, nil)
	r.addf("embedded buffer vs bounds: measured max-MSB share %.1f%%, waterfill bound %.1f%%, perfect spread %.1f%%",
		100*fleetMaxMSBShare(region, assign, rsvs), 100*bound, 100/float64(region.NumMSBs))
	r.ShapeHolds = buffer/total >= 0.015 && buffer/total <= 0.035 &&
		guaranteed/total > 0.6 &&
		fleetMaxMSBShare(region, assign, rsvs) < 3*bound+0.03
	r.Elapsed = time.Since(start)
	return r, nil
}
