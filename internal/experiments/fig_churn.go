package experiments

import (
	"context"
	"math/rand"
	"time"

	"ras/internal/broker"
	"ras/internal/metrics"
	"ras/internal/sim"
	"ras/internal/solver"
	"ras/internal/topology"
	"ras/internal/workload"
)

// Fig16 reproduces the weekly server-movement churn (§4.6): unused-server
// moves dominate in-use moves (paper: 10.6x more), and move activity spikes
// during weekday working hours when engineers submit capacity requests.
func Fig16(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 16",
		Title: "Weekly in-use vs unused server moves",
		PaperClaim: "hourly unused-server moves average 10.6x the in-use moves (~80% of " +
			"servers run containers; RAS picks moves from the idle 20%); weekday working-hour spikes",
	}
	// Churn needs many cheap solves; run it one scale down from the rest.
	solveScale := ScaleSmall
	if scale == ScaleLarge {
		solveScale = ScaleMedium
	}
	region, err := topology.Generate(regionSpec(solveScale, 16))
	if err != nil {
		return nil, err
	}
	b := broker.New(region)
	rsvs := makeReservations(region, reservationCount(solveScale), 0.7)
	cfg := solverConfig(solveScale)
	rng := rand.New(rand.NewSource(16))

	// Initial fill, then mark ~80% of reservation servers in-use.
	if _, err := applySolve(region, b, rsvs, cfg); err != nil {
		return nil, err
	}
	refreshContainers := func() {
		snap := b.Snapshot()
		for i := range snap {
			switch {
			case snap[i].Unavail != broker.Available:
				if snap[i].Containers > 0 {
					b.SetContainers(snap[i].ID, 0) // crashed with the server
				}
			case snap[i].Current >= 0:
				if snap[i].Containers == 0 && rng.Float64() < 0.8 {
					b.SetContainers(snap[i].ID, 1+rng.Intn(3))
				}
			case snap[i].Containers > 0:
				b.SetContainers(snap[i].ID, 0)
			}
		}
	}
	refreshContainers()

	engine := sim.NewEngine()
	type hourStat struct {
		inUse, unused int
		hourOfWeek    int64
	}
	var hourly []hourStat

	engine.Every(sim.Hour, func(now sim.Time) {
		// Diurnal capacity churn: engineers resize reservations during
		// working hours (Figure 16's spikes).
		rate := workload.DiurnalRate(now, 4)
		for k := 0.0; k < rate; k++ {
			if rng.Float64() > rate-k {
				break
			}
			ri := rng.Intn(len(rsvs))
			rsvs[ri].RRUs *= 0.97 + 0.06*rng.Float64()
		}
		// Background random failures (~0.1% of fleet per day).
		if rng.Float64() < float64(len(region.Servers))/2000 {
			id := topology.ServerID(rng.Intn(len(region.Servers)))
			b.SetUnavailable(id, broker.RandomFailure, now, now+48*sim.Hour)
		}
		b.ExpireUnavailability(now)

		res, err := solveBackend(context.Background(), "mip",
			solver.Input{Region: region, Reservations: rsvs, States: b.Snapshot()}, cfg)
		if err != nil {
			return
		}
		for i, tgt := range res.Targets {
			id := topology.ServerID(i)
			if b.State(id).Current != tgt {
				b.SetCurrent(id, tgt)
			}
		}
		refreshContainers()
		hourly = append(hourly, hourStat{
			inUse: res.Moves.InUse, unused: res.Moves.Unused,
			hourOfWeek: now % sim.Week,
		})
	})
	engine.RunUntil(7 * sim.Day)

	totalInUse, totalUnused := 0, 0
	var workHours, offHours metrics.Sample
	for _, h := range hourly {
		totalInUse += h.inUse
		totalUnused += h.unused
		day := h.hourOfWeek / sim.Day
		hr := (h.hourOfWeek % sim.Day) / sim.Hour
		if day < 5 && hr >= 9 && hr < 18 {
			workHours.Add(float64(h.inUse + h.unused))
		} else {
			offHours.Add(float64(h.inUse + h.unused))
		}
	}
	ratio := float64(totalUnused) / float64(max(totalInUse, 1))
	r.addf("one week, %d hourly solves: %d unused moves vs %d in-use moves (ratio %.1fx)",
		len(hourly), totalUnused, totalInUse, ratio)
	r.addf("avg moves/hour: working hours %.1f vs off hours %.1f",
		workHours.Mean(), offHours.Mean())
	r.Notes = "run at reduced scale (hourly solves for a simulated week)"
	r.ShapeHolds = ratio >= 3 && workHours.Mean() > offHours.Mean()
	r.Elapsed = time.Since(start)
	return r, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
