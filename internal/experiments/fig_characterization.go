package experiments

import (
	"fmt"
	"math"
	"time"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/health"
	"ras/internal/metrics"
	"ras/internal/topology"
	"ras/internal/workload"
)

// Fig2 reproduces the hardware-heterogeneity characterization (§2.2): nine
// hardware categories, twelve subtypes, and large per-MSB mixture variance.
func Fig2(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 2",
		Title: "Hardware heterogeneity across MSBs",
		PaperClaim: "9 hardware categories / 12 subtypes; hardware mixtures vary " +
			"strongly across MSBs (old MSBs carry old generations, new MSBs the newest)",
	}
	region, err := topology.Generate(regionSpec(scale, 2))
	if err != nil {
		return nil, err
	}
	cat := region.Catalog
	cats := map[int]bool{}
	subs := 0
	for i := 0; i < cat.Len(); i++ {
		cats[cat.Type(i).Category] = true
		if cat.Type(i).Subtype > 0 {
			subs++
		}
	}
	r.addf("catalog: %d categories, %d types (%d subtyped)", len(cats), cat.Len(), subs)

	mix := region.TypeMixByMSB()
	// Per-type share variance across MSBs, averaged over types.
	var perTypeVar metrics.Sample
	for t := 0; t < cat.Len(); t++ {
		var s metrics.Sample
		for m := range mix {
			s.Add(mix[m][t])
		}
		perTypeVar.Add(s.StdDev())
	}
	r.addf("avg per-type share stddev across MSBs: %.3f (0 would be homogeneous)", perTypeVar.Mean())

	// Generation skew old → new MSB.
	genShare := func(msb int, g hardware.Generation) float64 {
		total, n := 0, 0
		for i := range region.Servers {
			if region.Servers[i].MSB != msb {
				continue
			}
			total++
			if cat.Type(region.Servers[i].Type).Generation == g {
				n++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(n) / float64(total)
	}
	oldest, newest := 0, region.NumMSBs-1
	r.addf("GenI share: oldest MSB %.0f%%, newest MSB %.0f%%; GenIII share: oldest %.0f%%, newest %.0f%%",
		100*genShare(oldest, hardware.GenI), 100*genShare(newest, hardware.GenI),
		100*genShare(oldest, hardware.GenIII), 100*genShare(newest, hardware.GenIII))

	r.ShapeHolds = len(cats) == 9 && cat.Len() >= 12 &&
		perTypeVar.Mean() > 0.01 &&
		genShare(oldest, hardware.GenI) > genShare(newest, hardware.GenI)
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig3 reproduces the Relative Value table (§2.3): per-service gains across
// three processor generations.
func Fig3(Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 3",
		Title: "Relative value across processor generations",
		PaperClaim: "Web gains 1.47x (GenII) and 1.82x (GenIII); DataStore is flat; " +
			"Feed gains on one generation but not the other; fleet average rises steadily",
	}
	tbl := &metrics.Table{Header: []string{"service", "Gen I", "Gen II", "Gen III"}}
	for _, c := range []hardware.Class{hardware.DataStore, hardware.Feed1, hardware.Feed2, hardware.Web, hardware.FleetAvg} {
		tbl.AddRow(c.String(),
			fmt.Sprintf("%.2f", hardware.RelativeValue(c, hardware.GenI)),
			fmt.Sprintf("%.2f", hardware.RelativeValue(c, hardware.GenII)),
			fmt.Sprintf("%.2f", hardware.RelativeValue(c, hardware.GenIII)))
	}
	for _, line := range splitLines(tbl.String()) {
		r.addf("%s", line)
	}
	r.ShapeHolds = hardware.RelativeValue(hardware.Web, hardware.GenII) == 1.47 &&
		hardware.RelativeValue(hardware.Web, hardware.GenIII) == 1.82 &&
		hardware.RelativeValue(hardware.DataStore, hardware.GenIII) < 1.1
	r.Elapsed = time.Since(start)
	return r, nil
}

// Fig4 reproduces the capacity-request characterization (§2.4): request
// sizes span 1 to ~30k units and the number of fulfilling hardware types is
// bimodal at 1 and ~8.
func Fig4(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 4",
		Title: "Requested capacity vs fulfilling hardware types",
		PaperClaim: "sizes 1..30k units (most a few hundred to a few thousand); many " +
			"requests want exactly 1 type, a large mode accepts ~8 types, a small tail 10-12",
	}
	n := 2000
	gen := workload.NewRequestGen(hardware.DefaultCatalog(), 30000, 4)
	byTypes := map[int]int{}
	var sizes metrics.Sample
	minSize, maxSize := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		req := gen.Next()
		byTypes[len(req.EligibleTypes)]++
		sizes.Add(req.RRUs)
		minSize = math.Min(minSize, req.RRUs)
		maxSize = math.Max(maxSize, req.RRUs)
	}
	r.addf("%d requests: sizes [%d, %d], p50=%d p90=%d",
		n, int(minSize), int(maxSize), int(sizes.Percentile(50)), int(sizes.Percentile(90)))
	mid := byTypes[7] + byTypes[8] + byTypes[9]
	tail := byTypes[10] + byTypes[11] + byTypes[12]
	r.addf("fulfilling types: exactly 1 → %d, 7-9 → %d, 10-12 → %d", byTypes[1], mid, tail)
	r.ShapeHolds = minSize <= 2 && maxSize >= 10000 &&
		byTypes[1] > n/10 && mid > n/5 && tail > 0 && tail < byTypes[1]
	r.Elapsed = time.Since(start)
	_ = scale
	return r, nil
}

// Fig5 reproduces the unavailability characterization (§2.5): planned
// maintenance dominates steady-state unavailability, unplanned stays under
// ~0.5% baseline, and one correlated MSB failure causes a ~4% spike.
func Fig5(scale Scale) (*Report, error) {
	start := time.Now()
	r := &Report{
		ID:    "Figure 5",
		Title: "Server unavailability events over one month",
		PaperClaim: "combined unavailability can exceed 5%; planned maintenance accounts " +
			"for the majority; unplanned baseline <0.5% with spikes; one correlated MSB failure ≈4% loss",
	}
	region, err := topology.Generate(regionSpec(scale, 5))
	if err != nil {
		return nil, err
	}
	b := broker.New(region)
	cfg := health.DefaultConfig()
	cfg.MSBFailureRate = 0 // injected deterministically below
	svc := health.New(b, cfg)

	total := float64(len(region.Servers))
	hours := 28 * 24
	failHour := 14 * 24 // correlated failure mid-month
	var weekly [4]struct {
		planned, unplanned metrics.Sample
	}
	spike := 0.0
	for h := 1; h <= hours; h++ {
		now := int64(h) * 3600
		svc.Tick(now)
		if h%6 == 0 {
			svc.StartMaintenanceWave(now)
		}
		if h == failHour {
			svc.FailMSB(region.NumMSBs/2, now, 12*3600)
		}
		planned, unplanned := b.UnavailableCount()
		w := (h - 1) / (7 * 24)
		weekly[w].planned.Add(float64(planned) / total)
		weekly[w].unplanned.Add(float64(unplanned) / total)
		if frac := float64(unplanned) / total; frac > spike {
			spike = frac
		}
	}
	for w := range weekly {
		r.addf("week %d: planned avg %.2f%%, unplanned avg %.2f%% (max %.2f%%)",
			w+1, 100*weekly[w].planned.Mean(), 100*weekly[w].unplanned.Mean(),
			100*weekly[w].unplanned.Max())
	}
	r.addf("correlated-failure spike: %.2f%% of region (one MSB = %.2f%%)",
		100*spike, 100/float64(region.NumMSBs))

	baselineOK := weekly[0].unplanned.Mean() < 0.02
	plannedDominates := weekly[0].planned.Mean() > weekly[0].unplanned.Mean()
	spikeOK := spike > 0.5/float64(region.NumMSBs)
	r.ShapeHolds = baselineOK && plannedDominates && spikeOK
	r.Elapsed = time.Since(start)
	return r, nil
}

func splitLines(s string) []string {
	var out []string
	for _, l := range splitOn(s, '\n') {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func splitOn(s string, sep byte) []string {
	var out []string
	startIdx := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			out = append(out, s[startIdx:i])
			startIdx = i + 1
		}
	}
	out = append(out, s[startIdx:])
	return out
}
