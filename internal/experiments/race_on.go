//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race detector.
// Its ~10x slowdown makes time-limited solver quality unrepresentative, so
// quality-shape assertions are advisory under -race (data-race coverage is
// the point of that build).
const raceEnabled = true
