// Package experiments contains one runner per table/figure of the paper's
// evaluation (§4). Each runner builds its workload, drives the relevant
// modules, and returns a Report with the measured rows next to the paper's
// claim so cmd/rasbench and the root benchmark suite can print
// paper-vs-measured comparisons (recorded in EXPERIMENTS.md).
//
// Runners accept a Scale so the same experiment can run as a quick test
// (ScaleSmall), a default benchmark (ScaleMedium), or a paper-like run
// (ScaleLarge, 36 MSBs as in §3.3.1).
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ras/internal/backend"
	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/metrics"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

// Scale selects an experiment size.
type Scale int

// Experiment scales.
const (
	// ScaleSmall is for unit tests: ~seconds per experiment.
	ScaleSmall Scale = iota
	// ScaleMedium is the default benchmark scale: tens of seconds.
	ScaleMedium
	// ScaleLarge approaches the paper's region shapes (36 MSBs): minutes.
	ScaleLarge
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleLarge:
		return "large"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// regionSpec returns the synthetic region dimensions for a scale.
func regionSpec(s Scale, seed int64) topology.GenSpec {
	switch s {
	case ScaleSmall:
		return topology.GenSpec{Name: "small", DCs: 2, MSBsPerDC: 4, RacksPerMSB: 6, ServersPerRack: 6, Seed: seed}
	case ScaleLarge:
		return topology.GenSpec{Name: "large", DCs: 4, MSBsPerDC: 9, RacksPerMSB: 12, ServersPerRack: 12, Seed: seed}
	default:
		return topology.GenSpec{Name: "medium", DCs: 3, MSBsPerDC: 4, RacksPerMSB: 8, ServersPerRack: 8, Seed: seed}
	}
}

// reservationCount returns how many synthetic reservations a scale carries.
func reservationCount(s Scale) int {
	switch s {
	case ScaleSmall:
		return 6
	case ScaleLarge:
		return 16
	default:
		return 8
	}
}

// solverConfig returns solve limits appropriate to a scale. The node budgets
// are sized against per-node LP cost: with the sparse factorization kernel a
// node is cheap enough that a several-fold larger budget still solves well
// under the old wall-clock, and the extra depth lets the weekly churn trace
// find preemption-free optima every hour instead of stranding bad incumbents
// at the node limit. The stall rule bounds the other tail — a solve that has
// its answer but cannot prove it against a flat bound stops after 128
// stagnant nodes instead of grinding out the rest of the budget.
func solverConfig(s Scale) solver.Config {
	stall := func(c solver.Config) solver.Config {
		c.StallNodes = 128
		// Below one in-use preemption (MoveCostInUse = 10): a stalled stop
		// may strand idle-move-scale slack but never an unredeemed preemption.
		c.StallGap = 5
		return c
	}
	switch s {
	case ScaleSmall:
		return stall(solver.Config{Phase1TimeLimit: 8 * time.Second, Phase2TimeLimit: 2 * time.Second, MaxNodes: 600})
	case ScaleLarge:
		return stall(solver.Config{Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 15 * time.Second, MaxNodes: 400})
	default:
		return stall(solver.Config{Phase1TimeLimit: 25 * time.Second, Phase2TimeLimit: 5 * time.Second, MaxNodes: 500})
	}
}

// Report is the outcome of one experiment.
type Report struct {
	// ID names the paper artifact, e.g. "Figure 12".
	ID string
	// Title is the experiment's subject.
	Title string
	// PaperClaim summarizes the result the paper reports (the shape to
	// reproduce, not absolute numbers).
	PaperClaim string
	// Measured holds the reproduced rows/series as printable lines.
	Measured []string
	// ShapeHolds reports whether the qualitative claim reproduced.
	ShapeHolds bool
	// Notes explains scale substitutions or deviations.
	Notes string
	// Elapsed is the experiment wall-clock time.
	Elapsed time.Duration
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper:    %s\n", r.PaperClaim)
	for _, m := range r.Measured {
		fmt.Fprintf(&b, "measured: %s\n", m)
	}
	verdict := "SHAPE HOLDS"
	if !r.ShapeHolds {
		verdict = "SHAPE DIVERGES"
	}
	fmt.Fprintf(&b, "verdict:  %s (%.1fs)\n", verdict, r.Elapsed.Seconds())
	if r.Notes != "" {
		fmt.Fprintf(&b, "notes:    %s\n", r.Notes)
	}
	return b.String()
}

// addf appends a formatted measured line.
func (r *Report) addf(format string, args ...interface{}) {
	r.Measured = append(r.Measured, fmt.Sprintf(format, args...))
}

// defaultClasses is the service-class rotation for synthetic reservations.
var defaultClasses = []hardware.Class{
	hardware.Web, hardware.Feed1, hardware.Feed2, hardware.DataStore, hardware.FleetAvg,
}

// makeReservations builds n reservations filling `fill` of the region's
// servers (count-based for predictable geometry).
func makeReservations(region *topology.Region, n int, fill float64) []reservation.Reservation {
	per := float64(len(region.Servers)) * fill / float64(n)
	out := make([]reservation.Reservation, n)
	for i := range out {
		out[i] = reservation.Reservation{
			ID:         reservation.ID(i),
			Name:       fmt.Sprintf("svc-%02d", i),
			Class:      defaultClasses[i%len(defaultClasses)],
			RRUs:       per,
			CountBased: true,
			Policy:     reservation.DefaultPolicy(),
		}
	}
	return out
}

// rruFor computes the value one server contributes to a reservation.
func rruFor(region *topology.Region, id topology.ServerID, r *reservation.Reservation) float64 {
	t := region.Servers[id].Type
	v := hardware.RRU(region.Catalog.Type(t), r.Class)
	if v <= 0 || !r.Eligible(t, v) {
		return 0
	}
	if r.CountBased {
		return 1
	}
	return v
}

// perMSBLoad computes a reservation's RRU load per MSB under an assignment.
func perMSBLoad(region *topology.Region, assign []reservation.ID, r *reservation.Reservation) []float64 {
	out := make([]float64, region.NumMSBs)
	for i := range region.Servers {
		if assign[i] != r.ID {
			continue
		}
		out[region.Servers[i].MSB] += rruFor(region, topology.ServerID(i), r)
	}
	return out
}

// maxMSBShare reports the fraction of a reservation's allocated capacity in
// its most-loaded MSB (the quantity Figure 12 tracks).
func maxMSBShare(region *topology.Region, assign []reservation.ID, r *reservation.Reservation) float64 {
	load := perMSBLoad(region, assign, r)
	total, max := 0.0, 0.0
	for _, v := range load {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return max / total
}

// fleetMaxMSBShare is the capacity-weighted average of per-service max-MSB
// shares — the paper's "Machines % in Max MSB".
func fleetMaxMSBShare(region *topology.Region, assign []reservation.ID, rsvs []reservation.Reservation) float64 {
	num, den := 0.0, 0.0
	for i := range rsvs {
		r := &rsvs[i]
		load := perMSBLoad(region, assign, r)
		total, max := 0.0, 0.0
		for _, v := range load {
			total += v
			if v > max {
				max = v
			}
		}
		num += max
		den += total
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// waterfillBound computes the minimal achievable fleet max-MSB share given
// each reservation's eligible capacity per MSB — the paper's "minimal
// required buffer capacity" lower bound (4.06% in §3.3.1). For each
// reservation it waterfills C_r across MSBs proportionally to eligible
// capacity, which minimizes the max share.
func waterfillBound(region *topology.Region, rsvs []reservation.Reservation, usable func(topology.ServerID) bool) float64 {
	num, den := 0.0, 0.0
	for i := range rsvs {
		r := &rsvs[i]
		capPerMSB := make([]float64, region.NumMSBs)
		for s := range region.Servers {
			id := topology.ServerID(s)
			if usable != nil && !usable(id) {
				continue
			}
			capPerMSB[region.Servers[s].MSB] += rruFor(region, id, r)
		}
		max := waterfillMax(capPerMSB, r.RRUs)
		num += max
		den += r.RRUs
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// waterfillMax distributes demand across bins with the given capacities so
// the maximum bin load is minimized, and returns that maximum.
func waterfillMax(caps []float64, demand float64) float64 {
	remaining := demand
	level := 0.0
	open := make([]float64, 0, len(caps))
	for _, c := range caps {
		if c > 0 {
			open = append(open, c)
		}
	}
	for remaining > 1e-12 && len(open) > 0 {
		// Raise the level uniformly until the next bin saturates.
		minCap := open[0]
		for _, c := range open {
			if c < minCap {
				minCap = c
			}
		}
		step := minCap - level
		need := remaining / float64(len(open))
		if need <= step {
			level += need
			remaining = 0
			break
		}
		remaining -= step * float64(len(open))
		level = minCap
		next := open[:0]
		for _, c := range open {
			if c > minCap+1e-12 {
				next = append(next, c)
			}
		}
		open = next
	}
	if remaining > 1e-12 {
		// Demand exceeds capacity: everything saturates.
		return level + remaining
	}
	return level
}

// applySolve runs the MIP backend (via the backend registry, like every
// production caller) on the current broker state and applies the targets
// directly (experiment-local; the full System path is exercised by the
// end-to-end simulations).
func applySolve(region *topology.Region, b *broker.Broker, rsvs []reservation.Reservation, cfg solver.Config) (*solver.Result, error) {
	res, err := solveBackend(context.Background(), "mip",
		solver.Input{Region: region, Reservations: rsvs, States: b.Snapshot()}, cfg)
	if err != nil {
		return nil, err
	}
	for i, tgt := range res.Targets {
		id := topology.ServerID(i)
		b.SetTarget(id, tgt)
		if b.State(id).Current != tgt {
			b.SetCurrent(id, tgt)
		}
	}
	return res.MIP, nil
}

// solveBackend resolves a backend by name and runs one solve — the single
// entry point every experiment uses, so figure code never hard-wires a
// solver package. Experiments pin Workers to 1: the reproductions are keyed
// to the deterministic serial search (see DESIGN.md "Parallel solving" —
// with Workers > 1 the trajectory is scheduler-dependent, and figures like
// the weekly churn trace fork chaotically on which equally-optimal incumbent
// a race happens to keep), so the suite must not inherit the backend's
// NumCPU default.
func solveBackend(ctx context.Context, name string, in solver.Input, cfg solver.Config) (*backend.Result, error) {
	be, err := backend.New(name, backend.Config{Solver: cfg})
	if err != nil {
		return nil, err
	}
	return be.Solve(ctx, in, backend.Options{Workers: 1})
}

// assignOf snapshots current reservation bindings as a slice.
func assignOf(b *broker.Broker) []reservation.ID {
	snap := b.Snapshot()
	out := make([]reservation.ID, len(snap))
	for i := range snap {
		out[i] = snap[i].Current
	}
	return out
}

// normVariance is re-exported for experiment code brevity.
func normVariance(xs []float64) float64 { return metrics.NormalizedVariance(xs) }
