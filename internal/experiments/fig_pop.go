package experiments

import (
	"context"
	"fmt"
	"time"

	"ras/internal/backend"
	"ras/internal/broker"
	"ras/internal/solver"
	"ras/internal/topology"
)

// popSweepKs is the partition-count sweep the ablation runs — the POP paper's
// headline configurations. The partitioner clamps each k to the region's MSB
// geometry (every sub-region needs ≥ 2 MSBs), so the effective k is reported
// per row.
var popSweepKs = []int{1, 2, 4, 8}

// POPSweep reproduces the POP-paper claim on the RAS MIP: partitioning a
// granular allocation problem into k sub-problems cuts solve time
// superlinearly while costing little allocation quality ("Solving Large-Scale
// Granular Resource Allocation Problems Efficiently with POP", PAPERS.md —
// and §6 of the RAS paper, where ReBalancer swaps backends per user). Each
// row solves one fresh region with the pop backend at a different partition
// count and compares wall-clock and region-wide objective against the serial
// MIP backend on the identical snapshot.
func POPSweep(scale Scale) (*Report, error) {
	start := time.Now()
	rep := &Report{
		ID:    "POP k-sweep",
		Title: "partitioned solving: speedup vs allocation quality",
		PaperClaim: "solving k sub-problems is superlinearly faster than one " +
			"global solve, with near-identical allocation quality at moderate k",
	}
	region, err := topology.Generate(regionSpec(scale, 11))
	if err != nil {
		return nil, err
	}
	rsvs := makeReservations(region, reservationCount(scale), 0.7)
	in := solver.Input{
		Region: region, Reservations: rsvs, States: broker.New(region).Snapshot(),
	}
	cfg := solverConfig(scale)

	// The serial MIP is the quality and wall-clock baseline (Workers pinned
	// to 1 like every experiment; see solveBackend).
	mipRes, err := solveBackend(context.Background(), "mip", in, cfg)
	if err != nil {
		return nil, err
	}
	mipSec := mipRes.Elapsed.Seconds()
	rep.addf("mip   baseline: %.2fs objective %.1f", mipSec, mipRes.Objective)

	shapeChecked := false
	for _, k := range popSweepKs {
		be, err := backend.New("pop", backend.Config{Solver: cfg})
		if err != nil {
			return nil, err
		}
		res, err := be.Solve(context.Background(), in,
			backend.Options{Workers: 1, Partitions: k})
		if err != nil {
			return nil, err
		}
		popSec := res.Elapsed.Seconds()
		speedup := 0.0
		if popSec > 0 {
			speedup = mipSec / popSec
		}
		delta := 0.0
		if mipRes.Objective != 0 {
			delta = (res.Objective - mipRes.Objective) / mipRes.Objective * 100
		}
		eff := ""
		if res.POP != nil && res.POP.Partitions != k {
			eff = fmt.Sprintf(" (clamped to %d)", res.POP.Partitions)
		}
		rep.addf("pop k=%d%s: %.2fs objective %.1f — %.2fx speedup, %+.1f%% objective",
			k, eff, popSec, res.Objective, speedup, delta)
		// The headline configuration (k=4, after any clamp) carries the
		// verdict: within 5% quality, and no slower than the global solve
		// once that solve is expensive enough for partitioning to pay —
		// on a sub-300ms baseline the k sub-solve setups are pure overhead
		// and the wall-clock ratio is noise.
		if k == 4 {
			shapeChecked = true
			rep.ShapeHolds = delta <= 5 && (mipSec < 0.3 || speedup >= 1)
		}
	}
	if !shapeChecked {
		rep.ShapeHolds = false
	}
	rep.Notes = "pop divides the serial budget across sub-solves; speedups on one " +
		"machine come from superlinear MIP cost reduction, not parallelism"
	rep.Elapsed = time.Since(start)
	return rep, nil
}
