package clock

import (
	"testing"
	"time"
)

func TestSystemClockAdvances(t *testing.T) {
	a := Now()
	b := Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
	if d := Since(a); d < 0 {
		t.Fatalf("negative Since: %v", d)
	}
}

func TestOverrideAndFake(t *testing.T) {
	base := time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC) // SOSP'21
	f := NewFake(base)
	restore := Override(f)
	defer restore()

	if got := Now(); !got.Equal(base) {
		t.Fatalf("Now() = %v, want %v", got, base)
	}
	f.Advance(90 * time.Second)
	if got := Since(base); got != 90*time.Second {
		t.Fatalf("Since(base) = %v, want 90s", got)
	}
	// Two reads with no Advance are identical: the seam makes timing
	// deterministic under test.
	if a, b := Now(), Now(); !a.Equal(b) {
		t.Fatalf("fake clock drifted: %v vs %v", a, b)
	}

	restore()
	if got := Now(); got.Year() == 2021 {
		t.Fatalf("restore did not reinstall the previous clock: %v", got)
	}
	// Calling restore twice must not clobber a later Override.
	f2 := NewFake(base.Add(time.Hour))
	defer Override(f2)()
}

func TestFakeSinceConcurrent(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Advance(time.Millisecond)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Since(time.Unix(0, 0))
	}
	<-done
	if got := f.Since(time.Unix(0, 0)); got != time.Second {
		t.Fatalf("after 1000×1ms advances Since = %v, want 1s", got)
	}
}
