package clock

import (
	"testing"
	"time"
)

func TestSystemClockAdvances(t *testing.T) {
	a := Now()
	b := Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
	if d := Since(a); d < 0 {
		t.Fatalf("negative Since: %v", d)
	}
}

func TestOverrideAndFake(t *testing.T) {
	base := time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC) // SOSP'21
	f := NewFake(base)
	restore := Override(f)
	defer restore()

	if got := Now(); !got.Equal(base) {
		t.Fatalf("Now() = %v, want %v", got, base)
	}
	f.Advance(90 * time.Second)
	if got := Since(base); got != 90*time.Second {
		t.Fatalf("Since(base) = %v, want 90s", got)
	}
	// Two reads with no Advance are identical: the seam makes timing
	// deterministic under test.
	if a, b := Now(), Now(); !a.Equal(b) {
		t.Fatalf("fake clock drifted: %v vs %v", a, b)
	}

	restore()
	if got := Now(); got.Year() == 2021 {
		t.Fatalf("restore did not reinstall the previous clock: %v", got)
	}
	// Calling restore twice must not clobber a later Override.
	f2 := NewFake(base.Add(time.Hour))
	defer Override(f2)()
}

func TestStepperAdvancesPerRead(t *testing.T) {
	base := time.Unix(1000, 0)
	s := NewStepper(base, time.Millisecond)
	defer Override(s)()

	if got := Now(); !got.Equal(base) {
		t.Fatalf("first read = %v, want %v", got, base)
	}
	if got := Now(); !got.Equal(base.Add(time.Millisecond)) {
		t.Fatalf("second read = %v, want start+1ms", got)
	}
	// Since is a pure read: it must not advance the clock.
	before := Since(base)
	if after := Since(base); after != before {
		t.Fatalf("Since advanced the stepper: %v then %v", before, after)
	}
	if before != 2*time.Millisecond {
		t.Fatalf("Since(base) = %v after two reads, want 2ms", before)
	}
	if got := s.Reads(); got != 2 {
		t.Fatalf("Reads() = %d, want 2", got)
	}
}

// TestStepperDeadlineLoop is the pattern the MIP time-limit test relies on:
// a poll loop against a deadline terminates after a deterministic number of
// reads, with no sleeping.
func TestStepperDeadlineLoop(t *testing.T) {
	s := NewStepper(time.Unix(0, 0), time.Millisecond)
	defer Override(s)()

	deadline := Now().Add(50 * time.Millisecond) // read 1
	polls := 0
	for !Now().After(deadline) {
		polls++
		if polls > 1000 {
			t.Fatal("deadline loop did not terminate")
		}
	}
	// Reads 2..52 report 1ms..51ms; the read reporting 51ms is the first
	// after the 51ms deadline (50ms past the post-advance base of read 1).
	if polls != 50 {
		t.Fatalf("polls = %d, want 50", polls)
	}
}

func TestFakeSinceConcurrent(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Advance(time.Millisecond)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Since(time.Unix(0, 0))
	}
	<-done
	if got := f.Since(time.Unix(0, 0)); got != time.Second {
		t.Fatalf("after 1000×1ms advances Since = %v, want 1s", got)
	}
}
