// Package clock is the single place the solve stack reads wall-clock time.
//
// The paper's promise — a continuous optimizer whose runs are reproducible
// enough to trust (Workers ≤ 1 bit-for-bit, parallel runs
// objective-deterministic) — rests on solve paths never consulting ambient
// nondeterministic state directly. raslint's determinism rule forbids
// time.Now/time.Since in internal/lp, internal/mip, internal/localsearch,
// internal/solver, and internal/backend; those packages route every timing
// read through this seam instead. Production uses the real clock; tests
// inject a fake one and get identical phase timings run-to-run.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the two readings the solve stack needs: the current instant
// (phase stamps, deadline checks) and the elapsed time since an instant
// (phase statistics).
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// systemClock is the production clock: the process wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time                  { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration { return time.Since(t) }

// System is the real wall clock.
var System Clock = systemClock{}

var (
	mu     sync.RWMutex
	active Clock = System
)

// Now reports the active clock's current instant.
func Now() time.Time {
	mu.RLock()
	c := active
	mu.RUnlock()
	return c.Now()
}

// Since reports the elapsed time since t on the active clock.
func Since(t time.Time) time.Duration {
	mu.RLock()
	c := active
	mu.RUnlock()
	return c.Since(t)
}

// Override installs c as the active clock and returns a restore function.
// Tests use it to freeze or script time; restore in a defer:
//
//	defer clock.Override(fake)()
func Override(c Clock) (restore func()) {
	mu.Lock()
	prev := active
	active = c
	mu.Unlock()
	return func() {
		mu.Lock()
		active = prev
		mu.Unlock()
	}
}

// Fake is a manually advanced clock for tests. The zero value starts at the
// zero time; use Advance to move it forward.
type Fake struct {
	mu sync.Mutex
	t  time.Time
}

// NewFake returns a Fake frozen at start.
func NewFake(start time.Time) *Fake { return &Fake{t: start} }

// Now reports the fake's current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Since reports elapsed fake time since t.
func (f *Fake) Since(t time.Time) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t.Sub(t)
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// Stepper is a self-advancing test clock: every Now read returns the current
// instant and then steps the clock forward by a fixed amount. Deadline-polling
// loops — the MIP engine checks clock.Now() against its deadline once per
// node — therefore time out after a deterministic number of reads, with no
// real time passing and no goroutine needed to drive the clock. Since is a
// pure read and does not advance.
type Stepper struct {
	mu    sync.Mutex
	t     time.Time
	step  time.Duration
	reads int
}

// NewStepper returns a Stepper whose first Now read reports start and which
// advances by step per read.
func NewStepper(start time.Time, step time.Duration) *Stepper {
	return &Stepper{t: start, step: step}
}

// Now reports the current instant and advances the clock by one step.
func (s *Stepper) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.t
	s.t = s.t.Add(s.step)
	s.reads++
	return t
}

// Since reports elapsed stepper time since t, without advancing.
func (s *Stepper) Since(t time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Sub(t)
}

// Reads reports how many Now reads the stepper has served.
func (s *Stepper) Reads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads
}
