package solver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// TestQuickSolveInvariants is the randomized end-to-end check on the async
// solver: for random regions, reservation mixes, and broker states, every
// structural invariant of the output must hold —
//
//  1. each server is assigned to at most one reservation;
//  2. unplanned-unavailable servers are never assigned;
//  3. assigned servers are always hardware-eligible for their reservation;
//  4. SingleDC policies are never violated;
//  5. for every reservation, either the embedded-buffer capacity guarantee
//     holds (expression 6) or the solver reported soft slack.
func TestQuickSolveInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized solver invariants in -short mode")
	}
	// Fixed seed range: deterministic, debuggable, and still diverse.
	for seed := int64(1); seed <= 15; seed++ {
		if !invariantCheck(t, seed) {
			t.Fatalf("invariants violated at seed %d", seed)
		}
	}
}

// invariantCheck builds one randomized instance from the seed, solves it,
// and verifies the structural invariants. Shared with TestInvariantSweep.
func invariantCheck(t *testing.T, seed int64) bool {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		region, err := topology.Generate(topology.GenSpec{
			Name:           "quick",
			DCs:            1 + rng.Intn(3),
			MSBsPerDC:      1 + rng.Intn(3),
			RacksPerMSB:    2 + rng.Intn(3),
			ServersPerRack: 3 + rng.Intn(4),
			Seed:           seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		b := broker.New(region)
		in := Input{Region: region, States: b.Snapshot()}

		classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.Feed2, hardware.DataStore, hardware.FleetAvg}
		nres := 1 + rng.Intn(5)
		for i := 0; i < nres; i++ {
			r := reservation.Reservation{
				ID:         reservation.ID(i),
				Name:       "q",
				Class:      classes[rng.Intn(len(classes))],
				RRUs:       1 + rng.Float64()*float64(len(region.Servers))/float64(nres)*0.5,
				CountBased: rng.Intn(2) == 0,
				Policy:     reservation.DefaultPolicy(),
			}
			if rng.Intn(4) == 0 {
				r.Policy.SingleDC = rng.Intn(region.NumDCs)
			}
			in.Reservations = append(in.Reservations, r)
		}
		// Random current assignments, failures, and containers.
		for i := range in.States {
			switch rng.Intn(6) {
			case 0:
				in.States[i].Current = reservation.ID(rng.Intn(nres))
				in.States[i].Containers = rng.Intn(3)
			case 1:
				in.States[i].Unavail = broker.RandomFailure
			case 2:
				in.States[i].Unavail = broker.PlannedMaintenance
			}
		}

		res, err := Solve(context.Background(), in, Config{
			Phase1TimeLimit: 3 * time.Second, Phase2TimeLimit: time.Second,
			MaxNodes: 40, SharedBufferFraction: -1,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}

		// (1) is structural (Targets is a single slice); check (2)-(4).
		for i := range in.States {
			tgt := res.Targets[i]
			if tgt < 0 {
				continue
			}
			if int(tgt) >= nres {
				t.Logf("seed %d: server %d assigned to unknown reservation %d", seed, i, tgt)
				return false
			}
			st := &in.States[i]
			if st.Unavail != broker.Available && st.Unavail != broker.PlannedMaintenance {
				t.Logf("seed %d: failed server %d assigned", seed, i)
				return false
			}
			r := &in.Reservations[tgt]
			ty := region.Servers[i].Type
			v := hardware.RRU(region.Catalog.Type(ty), r.Class)
			if v <= 0 || !r.Eligible(ty, v) {
				t.Logf("seed %d: ineligible server %d (type %d) in reservation %d", seed, i, ty, tgt)
				return false
			}
			if r.Policy.SingleDC >= 0 && region.Servers[i].DC != r.Policy.SingleDC {
				t.Logf("seed %d: SingleDC violated for server %d", seed, i)
				return false
			}
		}

		// (5): capacity guarantee or reported slack.
		totalSlack := res.Phase1.SoftSlack + res.Phase2.SoftSlack
		shortfall := 0.0
		for ri := range in.Reservations {
			r := &in.Reservations[ri]
			perMSB := make([]float64, region.NumMSBs)
			total := 0.0
			for i := range region.Servers {
				if res.Targets[i] != r.ID {
					continue
				}
				v := rruValue(region.Catalog, region.Servers[i].Type, &resSpec{res: *r, countBased: r.CountBased})
				perMSB[region.Servers[i].MSB] += v
				total += v
			}
			worst := 0.0
			for _, v := range perMSB {
				if v > worst {
					worst = v
				}
			}
			if short := r.RRUs - (total - worst); short > 0 {
				shortfall += short
			}
		}
		if shortfall > totalSlack+1 { // +1: phase-2 refinements may shift sub-server amounts
			t.Logf("seed %d: shortfall %.2f exceeds reported slack %.2f", seed, shortfall, totalSlack)
			return false
		}
		return true
	}
	return check(seed)
}

// TestStorageQuorumSpread exercises the §3.3.2 storage-service contract:
// a replication-based storage service sets SpreadMSB so that no MSB holds
// enough replicas to break quorum, and the solver must deliver that spread.
func TestStorageQuorumSpread(t *testing.T) {
	region := testRegion(t, 2, 3, 6, 8, 31) // 6 MSBs
	// 3-way replication: quorum (2 of 3) survives as long as no single MSB
	// holds ≥ 1/3 of the capacity. Cap per-MSB share at 25% for margin.
	storage := reservation.Reservation{
		ID: 0, Name: "storage", Class: hardware.DataStore,
		RRUs: 60, CountBased: true,
		Policy: reservation.Policy{SingleDC: -1, SpreadMSB: 0.25},
	}
	res, err := Solve(context.Background(), freshInput(region, []reservation.Reservation{storage}),
		Config{Phase1TimeLimit: 6 * time.Second, Phase2TimeLimit: time.Second,
			MaxNodes: 120, SharedBufferFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	share := maxMSBShare(region, res.Targets, &storage)
	if share > 1.0/3 {
		t.Fatalf("max MSB share %.2f ≥ 1/3: an MSB failure could break a 3-replica quorum", share)
	}
}
