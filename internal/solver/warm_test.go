package solver

import (
	"context"
	"testing"

	"ras/internal/hardware"
	"ras/internal/reservation"
)

// applyRound mimics the online mover between rounds: every server's broker
// state is rebound to its solved target, so the next round's snapshot starts
// from the applied assignment exactly as the continuous loop does.
func applyRound(in *Input, targets []reservation.ID) {
	for i := range in.States {
		in.States[i].Current = targets[i]
	}
}

// TestCrossRoundWarmStart drives consecutive rounds of one world and checks
// the cross-round warm start engages once the assignment settles and then
// pays: the first warm-started round's root LP must finish in strictly fewer
// simplex iterations than the cold root of the round whose basis seeded it.
func TestCrossRoundWarmStart(t *testing.T) {
	region := testRegion(t, 2, 2, 4, 6, 7)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 25, Policy: reservation.DefaultPolicy()},
		{ID: 1, Name: "feed", Class: hardware.Feed1, RRUs: 15, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	cfg := fastCfg()

	// The assignment — and with it the symmetry grouping that fixes the
	// model shape — settles after a few rounds: once a round keeps every
	// server in place, the next round rebuilds the exact same model and the
	// warm basis applies. Early rounds still churn (the grouping keys on the
	// servers' current bindings), so those legitimately fall back to cold.
	var warmRound, coldBefore *Result
	prev, err := SolveWarm(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 2; round <= 8; round++ {
		applyRound(&in, prev.Targets)
		cur, err := SolveWarm(context.Background(), in, cfg, prev.Warm)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Phase1.WarmRoot {
			warmRound, coldBefore = cur, prev
			break
		}
		prev = cur
	}
	if warmRound == nil {
		t.Fatal("no round warm-started within 8 rounds: the assignment never settled")
	}
	if warmRound.Phase1.RootLPIters >= coldBefore.Phase1.RootLPIters {
		t.Fatalf("warm root LP took %d iterations, the prior cold root took %d — warm start saved nothing",
			warmRound.Phase1.RootLPIters, coldBefore.Phase1.RootLPIters)
	}
	// The warm round must still deliver the same capacity guarantees.
	for i := range rsvs {
		if got := rruOf(region, warmRound.Targets, &rsvs[i]); got < rsvs[i].RRUs-1e-6 {
			t.Fatalf("%s: warm round delivered %.1f of %.1f RRUs", rsvs[i].Name, got, rsvs[i].RRUs)
		}
	}
	t.Logf("warm root: %d iterations (prior cold root: %d)",
		warmRound.Phase1.RootLPIters, coldBefore.Phase1.RootLPIters)
}

// TestCrossRoundWarmShapeFallback changes the problem between rounds — a new
// reservation appears — and checks the stale basis is rejected by the shape
// check, the round solves cold, and the outcome is still a full allocation.
func TestCrossRoundWarmShapeFallback(t *testing.T) {
	region := testRegion(t, 2, 2, 4, 6, 11)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 25, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	cfg := fastCfg()

	r1, err := SolveWarm(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyRound(&in, r1.Targets)

	// Steady-state round to obtain a basis for the settled shape.
	r2, err := SolveWarm(context.Background(), in, cfg, r1.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Warm.Phase1.Basis == nil {
		t.Fatal("round 2 exported no phase-1 root basis")
	}
	applyRound(&in, r2.Targets)

	// Shape change: a new reservation adds variables and rows.
	in.Reservations = append(in.Reservations,
		reservation.Reservation{ID: 1, Name: "feed", Class: hardware.Feed1, RRUs: 10, Policy: reservation.DefaultPolicy()})
	r3, err := SolveWarm(context.Background(), in, cfg, r2.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Phase1.WarmRoot {
		t.Fatal("round 3 claimed a warm root despite a shape change")
	}
	for i := range in.Reservations {
		r := &in.Reservations[i]
		if got := rruOf(region, r3.Targets, r); got < r.RRUs-1e-6 {
			t.Fatalf("%s: fallback round delivered %.1f of %.1f RRUs", r.Name, got, r.RRUs)
		}
	}
}
