package solver

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ras/internal/reservation"
)

// TestEvaluateMatchesSolverObjective pins the contract the pop backend's
// quality comparison rests on: Evaluate is an exact replica of the phase-1
// MIP objective, so evaluating the MIP's own targets reproduces the MIP's
// own reported objective (not merely a correlated score).
func TestEvaluateMatchesSolverObjective(t *testing.T) {
	region := testRegion(t, 2, 3, 4, 6, 21)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: 0, RRUs: 40, CountBased: true, Policy: reservation.DefaultPolicy()},
		{ID: 1, Name: "feed", Class: 1, RRUs: 25, CountBased: true, Policy: reservation.DefaultPolicy()},
		{ID: 2, Name: "store", Class: 3, RRUs: 30, CountBased: true, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	cfg := fastCfg()
	res, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(in, cfg, res.Targets)
	if diff := math.Abs(ev.Objective - res.Phase1.Objective); diff > 1e-6 {
		t.Fatalf("Evaluate = %v, phase-1 objective = %v (diff %g): the functional drifted from the MIP",
			ev.Objective, res.Phase1.Objective, diff)
	}
	// The breakdown must reassemble into the total it claims to break down.
	sum := ev.Stability + ev.Spread + ev.Buffer + ev.CapSlack + ev.AffSlack + ev.Wear
	if diff := math.Abs(sum - ev.Objective); diff > 1e-9 {
		t.Fatalf("breakdown sums to %v, Objective says %v", sum, ev.Objective)
	}
}

// TestEvaluateReportsUnserviceable checks the §5.3 operability path:
// demand nothing in the region can serve shows up in Eval.Unserviceable and —
// matching the MIP's constraint-dropping behaviour — stays out of Objective.
func TestEvaluateReportsUnserviceable(t *testing.T) {
	region := testRegion(t, 2, 2, 3, 4, 22)
	impossible := reservation.Reservation{
		ID: 0, Name: "ghost", Class: 0, RRUs: 12, CountBased: true,
		Policy: reservation.Policy{SingleDC: 99},
	}
	in := freshInput(region, []reservation.Reservation{impossible})
	targets := make([]reservation.ID, len(region.Servers))
	for i := range targets {
		targets[i] = reservation.Unassigned
	}
	ev := Evaluate(in, fastCfg(), targets)
	if ev.Unserviceable != impossible.RRUs {
		t.Fatalf("Unserviceable = %v, want %v", ev.Unserviceable, impossible.RRUs)
	}
	if ev.Objective != 0 {
		t.Fatalf("unserviceable demand leaked into Objective: %v", ev.Objective)
	}
}

// concentratedTargets assigns the reservation's whole count-based demand to
// the lowest server IDs — all inside the first MSBs — leaving everything else
// free: maximal spread violation plus a starved embedded buffer, the shape a
// naive cross-partition merge can produce.
func concentratedTargets(in Input, r *reservation.Reservation) []reservation.ID {
	targets := make([]reservation.ID, len(in.Region.Servers))
	for i := range targets {
		targets[i] = reservation.Unassigned
	}
	n := int(r.RRUs)
	for i := 0; i < n && i < len(targets); i++ {
		targets[i] = r.ID
	}
	return targets
}

// TestRepairImprovesConcentratedAssignment drives RepairTargets over a
// deliberately bad merged assignment and checks it strictly improves the
// region-wide objective while staying deterministic: identical inputs give
// identical repaired targets and stats on every run.
func TestRepairImprovesConcentratedAssignment(t *testing.T) {
	region := testRegion(t, 2, 3, 4, 6, 23)
	r := reservation.Reservation{
		ID: 0, Name: "svc", Class: 4, RRUs: 36, CountBased: true,
		Policy: reservation.DefaultPolicy(),
	}
	in := freshInput(region, []reservation.Reservation{r})
	cfg := fastCfg()
	before := concentratedTargets(in, &r)
	costBefore := Evaluate(in, cfg, before).Objective

	type run struct {
		stats   RepairStats
		targets []reservation.ID
		cost    float64
	}
	var runs []run
	for i := 0; i < 3; i++ {
		targets := append([]reservation.ID(nil), before...)
		stats := RepairTargets(in, cfg, targets)
		runs = append(runs, run{stats, targets, Evaluate(in, cfg, targets).Objective})
	}
	if runs[0].stats.Moves() == 0 {
		t.Fatal("repair made no moves on a maximally concentrated assignment")
	}
	if runs[0].cost >= costBefore {
		t.Fatalf("repair did not improve the objective: %v → %v", costBefore, runs[0].cost)
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].stats != runs[0].stats || runs[i].cost != runs[0].cost ||
			!reflect.DeepEqual(runs[i].targets, runs[0].targets) {
			t.Fatalf("repair not deterministic: run %d %+v cost %v vs run 0 %+v cost %v",
				i, runs[i].stats, runs[i].cost, runs[0].stats, runs[0].cost)
		}
	}
	// Capacity must be preserved or improved, never repaired away.
	if got := rruOf(region, runs[0].targets, &r); got < r.RRUs {
		t.Fatalf("repair left reservation under-served: %v of %v RRUs", got, r.RRUs)
	}
}

// TestRepairLeavesSolverOutputAlone checks the fixed point: the solver's own
// phase-1-optimal assignment gives repair nothing profitable to do, so the
// objective never regresses (a few cost-neutral envelope-levelling moves are
// allowed).
func TestRepairLeavesSolverOutputAlone(t *testing.T) {
	region := testRegion(t, 2, 2, 4, 6, 24)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "a", Class: 0, RRUs: 30, CountBased: true, Policy: reservation.DefaultPolicy()},
		{ID: 1, Name: "b", Class: 2, RRUs: 20, CountBased: true, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	cfg := fastCfg()
	res, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := append([]reservation.ID(nil), res.Targets...)
	before := Evaluate(in, cfg, targets).Objective
	RepairTargets(in, cfg, targets)
	after := Evaluate(in, cfg, targets).Objective
	if after > before+1e-9 {
		t.Fatalf("repair regressed a solver-optimal assignment: %v → %v", before, after)
	}
}
