package solver

import (
	"context"
	"math"
	"testing"
	"time"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// testRegion builds a small region: dcs × msbsPerDC MSBs, racksPerMSB racks
// of serversPerRack servers.
func testRegion(t testing.TB, dcs, msbsPerDC, racksPerMSB, serversPerRack int, seed int64) *topology.Region {
	t.Helper()
	r, err := topology.Generate(topology.GenSpec{
		Name: "test", DCs: dcs, MSBsPerDC: msbsPerDC,
		RacksPerMSB: racksPerMSB, ServersPerRack: serversPerRack, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func freshInput(region *topology.Region, rsvs []reservation.Reservation) Input {
	b := broker.New(region)
	return Input{Region: region, Reservations: rsvs, States: b.Snapshot()}
}

func fastCfg() Config {
	return Config{
		Phase1TimeLimit:      2 * time.Second,
		Phase2TimeLimit:      2 * time.Second,
		MaxNodes:             100,
		SharedBufferFraction: -1, // off unless a test wants it
	}
}

// rruOf computes the RRU capacity a set of targets delivers to reservation r.
func rruOf(region *topology.Region, targets []reservation.ID, r *reservation.Reservation) float64 {
	total := 0.0
	for i := range region.Servers {
		if targets[i] != r.ID {
			continue
		}
		v := hardware.RRU(region.Catalog.Type(region.Servers[i].Type), r.Class)
		if r.CountBased {
			v = 1
		}
		total += v
	}
	return total
}

// maxMSBShare computes the largest per-MSB RRU share of a reservation.
func maxMSBShare(region *topology.Region, targets []reservation.ID, r *reservation.Reservation) float64 {
	perMSB := make([]float64, region.NumMSBs)
	total := 0.0
	for i := range region.Servers {
		if targets[i] != r.ID {
			continue
		}
		v := hardware.RRU(region.Catalog.Type(region.Servers[i].Type), r.Class)
		if r.CountBased {
			v = 1
		}
		perMSB[region.Servers[i].MSB] += v
		total += v
	}
	if total == 0 {
		return 0
	}
	m := 0.0
	for _, v := range perMSB {
		if v > m {
			m = v
		}
	}
	return m / total
}

func TestSolveFulfillsCapacityWithBuffer(t *testing.T) {
	region := testRegion(t, 2, 3, 4, 6, 1) // 6 MSBs, 144 servers
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 30, Policy: reservation.DefaultPolicy()},
		{ID: 1, Name: "feed", Class: hardware.Feed1, RRUs: 20, Policy: reservation.DefaultPolicy()},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rsvs {
		r := &rsvs[i]
		got := rruOf(region, res.Targets, r)
		// Expression 6: capacity must survive the loss of any one MSB.
		worstLoss := 0.0
		perMSB := make([]float64, region.NumMSBs)
		for s := range region.Servers {
			if res.Targets[s] == r.ID {
				v := hardware.RRU(region.Catalog.Type(region.Servers[s].Type), r.Class)
				perMSB[region.Servers[s].MSB] += v
			}
		}
		for _, v := range perMSB {
			if v > worstLoss {
				worstLoss = v
			}
		}
		if got-worstLoss < r.RRUs-1e-6 {
			t.Errorf("%s: post-failure capacity %.2f < requested %.2f (total %.2f, worst MSB %.2f)",
				r.Name, got-worstLoss, r.RRUs, got, worstLoss)
		}
	}
	if res.Phase1.SoftSlack > 1e-6 {
		t.Errorf("capacity slack remained: %v", res.Phase1.SoftSlack)
	}
}

func TestSolveStability(t *testing.T) {
	// Solve once, apply targets as current, solve again: second solve must
	// produce zero moves.
	region := testRegion(t, 1, 4, 4, 6, 2)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 25, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	res1, err := Solve(context.Background(), in, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.States {
		in.States[i].Current = res1.Targets[i]
		if res1.Targets[i] == 0 {
			in.States[i].Containers = 3 // now in use
		}
	}
	res2, err := Solve(context.Background(), in, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Moves.InUse != 0 {
		t.Errorf("re-solve preempted %d in-use servers, want 0", res2.Moves.InUse)
	}
}

func TestSolveExcludesUnavailable(t *testing.T) {
	region := testRegion(t, 1, 3, 3, 4, 3)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 10, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	// Fail a third of the servers (unplanned).
	for i := 0; i < len(in.States); i += 3 {
		in.States[i].Unavail = broker.RandomFailure
	}
	res, err := Solve(context.Background(), in, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.States {
		if in.States[i].Unavail == broker.RandomFailure && res.Targets[i] != reservation.Unassigned {
			t.Fatalf("unavailable server %d was assigned to %d", i, res.Targets[i])
		}
	}
}

func TestSolveTreatsMaintenanceAsUsable(t *testing.T) {
	region := testRegion(t, 1, 2, 3, 4, 4)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 8, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	for i := range in.States {
		in.States[i].Unavail = broker.PlannedMaintenance
	}
	res, err := Solve(context.Background(), in, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	assigned := 0
	for i := range res.Targets {
		if res.Targets[i] == 0 {
			assigned++
		}
	}
	if assigned == 0 {
		t.Fatal("maintenance servers must remain usable capacity (§3.3.1)")
	}
}

func TestSolveSpreadBeatsGreedyConcentration(t *testing.T) {
	// Start from a worst-case concentration (everything in MSB 0) and check
	// the solver spreads it out.
	region := testRegion(t, 1, 4, 4, 8, 5) // 4 MSBs, 128 servers
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 25, CountBased: true, Policy: reservation.DefaultPolicy()},
	}
	in := freshInput(region, rsvs)
	// Concentrate: bind every server of MSB 0 to the reservation (idle).
	for i := range region.Servers {
		if region.Servers[i].MSB == 0 {
			in.States[i].Current = 0
		}
	}
	res, err := Solve(context.Background(), in, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	share := maxMSBShare(region, res.Targets, &rsvs[0])
	if share > 0.55 {
		t.Errorf("max MSB share %.2f, want meaningful spread (≤0.55)", share)
	}
}

func TestSolveSingleDCPolicy(t *testing.T) {
	region := testRegion(t, 3, 2, 3, 4, 6)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "ml", Class: hardware.Web, RRUs: 6, CountBased: true,
			Policy: reservation.Policy{SingleDC: 1}},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := range region.Servers {
		if res.Targets[i] == 0 {
			if region.Servers[i].DC != 1 {
				t.Fatalf("server %d in DC %d assigned despite SingleDC=1", i, region.Servers[i].DC)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no servers assigned under SingleDC policy")
	}
}

func TestSolveDCAffinity(t *testing.T) {
	region := testRegion(t, 2, 2, 4, 8, 7)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "presto", Class: hardware.Web, RRUs: 20, CountBased: true,
			Policy: reservation.Policy{
				SingleDC:      -1,
				DCAffinity:    map[int]float64{0: 0.75, 1: 0.25},
				AffinityTheta: 0.1,
			}},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	perDC := make([]float64, region.NumDCs)
	total := 0.0
	for i := range region.Servers {
		if res.Targets[i] == 0 {
			perDC[region.Servers[i].DC]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("nothing assigned")
	}
	// Affinity is measured against requested capacity C_r (expression 7).
	cr := rsvs[0].RRUs
	if math.Abs(perDC[0]/cr-0.75) > 0.25 {
		t.Errorf("DC0 share %.2f of C_r, want ≈0.75±θ (soft)", perDC[0]/cr)
	}
}

func TestSolveElasticIgnored(t *testing.T) {
	region := testRegion(t, 1, 2, 2, 4, 8)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "batch", Class: hardware.FleetAvg, RRUs: 5, Elastic: true, Policy: reservation.DefaultPolicy()},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Targets {
		if res.Targets[i] == 0 {
			t.Fatal("elastic reservation must not receive solver capacity")
		}
	}
}

func TestSolveSharedBuffer(t *testing.T) {
	region := testRegion(t, 1, 3, 4, 6, 9)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 10, Policy: reservation.DefaultPolicy()},
	}
	cfg := fastCfg()
	cfg.SharedBufferFraction = 0.02
	res, err := Solve(context.Background(), freshInput(region, rsvs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := 0
	for _, tgt := range res.Targets {
		if tgt == reservation.SharedBuffer {
			buf++
		}
	}
	want := int(0.02 * float64(len(region.Servers)))
	if buf < want {
		t.Errorf("shared buffer has %d servers, want ≥ %d (2%% of fleet)", buf, want)
	}
}

func TestSolveInfeasibleSoftens(t *testing.T) {
	// Request far more than the region holds: solver must not fail, and
	// must report remaining soft slack.
	region := testRegion(t, 1, 2, 2, 3, 10) // 24 servers
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "huge", Class: hardware.Web, RRUs: 10000, CountBased: true, Policy: reservation.DefaultPolicy()},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase1.SoftSlack <= 0 {
		t.Errorf("soft slack = %v, want > 0 for an unfulfillable request", res.Phase1.SoftSlack)
	}
	// Everything assignable should still be assigned.
	n := 0
	for _, tgt := range res.Targets {
		if tgt == 0 {
			n++
		}
	}
	if n < len(region.Servers)/2 {
		t.Errorf("only %d servers assigned to the starving reservation", n)
	}
}

func TestSolveEmptyReservations(t *testing.T) {
	region := testRegion(t, 1, 2, 2, 2, 11)
	res, err := Solve(context.Background(), freshInput(region, nil), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range res.Targets {
		if tgt != reservation.Unassigned {
			t.Fatal("no reservations, but servers were assigned")
		}
	}
}

func TestSolveInputValidation(t *testing.T) {
	if _, err := Solve(context.Background(), Input{}, Config{}); err == nil {
		t.Fatal("nil region must error")
	}
	region := testRegion(t, 1, 1, 1, 2, 12)
	if _, err := Solve(context.Background(), Input{Region: region, States: make([]broker.ServerState, 1)}, Config{}); err == nil {
		t.Fatal("state/server count mismatch must error")
	}
}

func TestSolveSetupOnly(t *testing.T) {
	region := testRegion(t, 1, 3, 3, 4, 13)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 10, Policy: reservation.DefaultPolicy()},
	}
	cfg := fastCfg()
	cfg.SetupOnly = true
	res, err := Solve(context.Background(), freshInput(region, rsvs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase1.MIP != 0 {
		t.Errorf("SetupOnly ran the MIP step (%v)", res.Phase1.MIP)
	}
	if res.Phase1.AssignVars == 0 {
		t.Error("SetupOnly must still report assignment variables")
	}
}

func TestSolveBreakdownPopulated(t *testing.T) {
	region := testRegion(t, 1, 3, 3, 4, 14)
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 10, Policy: reservation.DefaultPolicy()},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Phase1
	if st.Total() <= 0 || st.MIP <= 0 {
		t.Errorf("breakdown not populated: %+v", st)
	}
	if st.Groups == 0 || st.ModelVars < st.AssignVars {
		t.Errorf("model stats inconsistent: %+v", st)
	}
}

func TestGroupSymmetryReduction(t *testing.T) {
	// A uniform region collapses to few groups: one per (type, MSB).
	region := testRegion(t, 1, 2, 10, 10, 15)
	in := freshInput(region, nil)
	pool := usableServers(in)
	groups, _ := groupServers(in, pool, false, false, false)
	if len(groups) >= len(region.Servers)/2 {
		t.Fatalf("grouping achieved no reduction: %d groups for %d servers",
			len(groups), len(region.Servers))
	}
	total := 0
	for _, g := range groups {
		total += len(g.servers)
	}
	if total != len(pool) {
		t.Fatalf("groups cover %d servers, want %d", total, len(pool))
	}
}

func TestGroupRackLevelFinerThanMSB(t *testing.T) {
	region := testRegion(t, 1, 2, 6, 4, 16)
	in := freshInput(region, nil)
	pool := usableServers(in)
	coarse, _ := groupServers(in, pool, false, false, false)
	fine, _ := groupServers(in, pool, true, false, false)
	if len(fine) < len(coarse) {
		t.Fatalf("rack-level grouping (%d) must be at least as fine as MSB-level (%d)",
			len(fine), len(coarse))
	}
}

func TestRealizeKeepsCurrentMembers(t *testing.T) {
	region := testRegion(t, 1, 1, 1, 6, 17)
	in := freshInput(region, nil)
	// All 6 servers in one group; 3 currently in reservation 5.
	for i := 0; i < 3; i++ {
		in.States[i].Current = 5
	}
	pool := usableServers(in)
	groups, _ := groupServers(in, pool, false, false, false)
	specs := []resSpec{{
		res:        reservation.Reservation{ID: 5, Name: "r", Class: hardware.Web, RRUs: 3, CountBased: true},
		outID:      5,
		countBased: true,
	}}
	// groupServers splits by current reservation: find the group with cur=5.
	counts := make([][]float64, len(groups))
	for gi, g := range groups {
		counts[gi] = make([]float64, 1)
		if g.cur == 5 {
			counts[gi][0] = 2 // shrink from 3 to 2
		}
	}
	targets := make([]reservation.ID, len(region.Servers))
	for i := range targets {
		targets[i] = reservation.Unassigned
	}
	realize(in, specs, &phaseOutput{groups: groups, specs: specs, counts: counts}, targets)
	kept := 0
	for i := 0; i < 3; i++ {
		if targets[i] == 5 {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("kept %d current members, want 2", kept)
	}
	for i := 3; i < 6; i++ {
		if targets[i] == 5 {
			t.Fatal("realize preferred a non-member over a current member")
		}
	}
}

func TestPhase2RunsAndImprovesRackSpread(t *testing.T) {
	region := testRegion(t, 1, 2, 8, 8, 18) // 16 racks
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 30, CountBased: true, Policy: reservation.DefaultPolicy()},
	}
	cfg := fastCfg()
	cfg.AlphaRack = 0.10 // forces rack goals to matter
	res, err := Solve(context.Background(), freshInput(region, rsvs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // phase 2 runs only when phase-1 leaves rack excess; both are valid
	if res.RanPhase2 && res.Phase2.AssignVars == 0 {
		t.Error("phase 2 ran with zero assignment variables")
	}
}
