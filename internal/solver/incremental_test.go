package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/metrics"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// mutator drives a seeded random change stream through a real broker and
// reservation store — the same write paths production rounds see — so the
// deltas the tests consume come from the journal protocol, not hand-built
// fixtures.
type mutator struct {
	rng    *rand.Rand
	b      *broker.Broker
	st     *reservation.Store
	region *topology.Region
	live   []reservation.ID
	now    int64
}

func newMutator(t *testing.T, region *topology.Region, seed int64, nRes int) *mutator {
	t.Helper()
	m := &mutator{
		rng:    rand.New(rand.NewSource(seed)),
		b:      broker.New(region),
		st:     reservation.NewStore(),
		region: region,
	}
	classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.DataStore}
	for i := 0; i < nRes; i++ {
		id, err := m.st.Create(reservation.Reservation{
			Name:   "res",
			Class:  classes[i%len(classes)],
			RRUs:   4 + float64(i%5)*3,
			Policy: reservation.DefaultPolicy(),
		})
		if err != nil {
			t.Fatal(err)
		}
		m.live = append(m.live, id)
	}
	// Seed a plausible current assignment so move hinges exist.
	for i := range region.Servers {
		if i%3 != 0 {
			m.b.SetCurrent(topology.ServerID(i), m.live[i%len(m.live)])
		}
		if i%4 == 0 {
			m.b.SetContainers(topology.ServerID(i), 2)
		}
	}
	return m
}

// step applies 1–3 random non-structural mutations (fail, revive, resize,
// container churn, rebinding). When structural is true it also creates or
// deletes a reservation, which must force a fallback rebuild.
func (m *mutator) step(structural bool) {
	m.now++
	n := 1 + m.rng.Intn(3)
	for i := 0; i < n; i++ {
		id := topology.ServerID(m.rng.Intn(len(m.region.Servers)))
		switch m.rng.Intn(5) {
		case 0:
			m.b.SetUnavailable(id, broker.RandomFailure, m.now, m.now+1000)
		case 1:
			m.b.ClearUnavailable(id, m.now)
		case 2:
			res := m.live[m.rng.Intn(len(m.live))]
			_ = m.st.Resize(res, 2+float64(m.rng.Intn(12)))
		case 3:
			if m.b.State(id).Containers > 0 {
				m.b.SetContainers(id, 0)
			} else {
				m.b.SetContainers(id, 2)
			}
		case 4:
			m.b.SetCurrent(id, m.live[m.rng.Intn(len(m.live))])
		}
	}
	if structural {
		if len(m.live) > 2 && m.rng.Intn(2) == 0 {
			k := m.rng.Intn(len(m.live))
			_ = m.st.Delete(m.live[k])
			m.live = append(m.live[:k], m.live[k+1:]...)
		} else {
			id, err := m.st.Create(reservation.Reservation{
				Name:   "grown",
				Class:  hardware.Web,
				RRUs:   5,
				Policy: reservation.DefaultPolicy(),
			})
			if err == nil {
				m.live = append(m.live, id)
			}
		}
	}
}

// deltaTracker mirrors ras.System's snapshot/delta bookkeeping.
type deltaTracker struct {
	lastStates uint64
	lastStore  int
	have       bool
}

func (dt *deltaTracker) input(m *mutator, withDelta bool) (Input, func()) {
	storeV := m.st.Version()
	states, v := m.b.SnapshotAt()
	in := Input{Region: m.region, Reservations: m.st.All(), States: states, StatesVersion: v}
	if withDelta && dt.have {
		if changed, ok := m.b.ChangedSince(dt.lastStates); ok {
			in.Delta = &Delta{
				Since:        dt.lastStates,
				Servers:      changed,
				Reservations: m.st.ChangesSince(dt.lastStore),
			}
		}
	}
	return in, func() { dt.lastStates = v; dt.lastStore = storeV; dt.have = true }
}

// TestPatchMatchesColdRebuild is the core incremental-build property: after
// every random delta, a cache patched in place must be bit-for-bit identical
// to a cold rebuild of the same input — model fingerprint, group structure,
// and initial counts. Rounds whose delta breaks structure must report so via
// patch() == false rather than produce a wrong model.
func TestPatchMatchesColdRebuild(t *testing.T) {
	for _, tc := range []struct {
		name      string
		rackLevel bool
		buffer    float64
	}{
		{"phase1", false, -1},
		{"phase1-buffer", false, 0.02},
		{"rack", true, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			region := testRegion(t, 2, 2, 4, 6, 41)
			m := newMutator(t, region, 42, 6)
			cfg := fastCfg()
			cfg.SharedBufferFraction = tc.buffer
			cfg = cfg.withDefaults(region)

			var cached *builtPhase
			patches, fallbacks := 0, 0
			for round := 0; round < 40; round++ {
				if round > 0 {
					m.step(round%7 == 3)
				}
				states, v := m.b.SnapshotAt()
				in := Input{Region: region, Reservations: m.st.All(), States: states, StatesVersion: v}
				specs := buildSpecs(in, cfg)
				pool := usableServers(in)
				targets := make([]reservation.ID, len(region.Servers))
				for i := range targets {
					targets[i] = reservation.Unassigned
					if tc.rackLevel && i%2 == 0 && !unusable(&states[i]) {
						targets[i] = states[i].Current
					}
				}

				var cold PhaseStats
				want := buildPhase(in, cfg, specs, pool, targets, tc.rackLevel, &cold)
				if cached != nil {
					if cached.patch(in, cfg, specs, pool, targets) {
						patches++
						if got, w := cached.m.Fingerprint(), want.m.Fingerprint(); got != w {
							t.Fatalf("round %d: patched fingerprint %x != cold %x", round, got, w)
						}
						compareStructure(t, round, cached, want)
						// Keep solving on the patched model to mimic real use.
					} else {
						fallbacks++
						cached = want
					}
				} else {
					cached = want
				}
				cached.statesVersion = v
			}
			if patches == 0 {
				t.Fatal("mutation stream never produced a patchable round")
			}
			if fallbacks == 0 {
				t.Fatal("mutation stream never produced a fallback round")
			}
			t.Logf("%s: %d patches, %d fallbacks", tc.name, patches, fallbacks)
		})
	}
}

func compareStructure(t *testing.T, round int, got, want *builtPhase) {
	t.Helper()
	if len(got.groups) != len(want.groups) {
		t.Fatalf("round %d: %d groups != cold %d", round, len(got.groups), len(want.groups))
	}
	for gi := range got.groups {
		a, b := got.groups[gi], want.groups[gi]
		if a.typeIdx != b.typeIdx || a.msb != b.msb || a.dc != b.dc || a.rack != b.rack ||
			a.cur != b.cur || a.inUse != b.inUse || a.wear != b.wear {
			t.Fatalf("round %d: group %d metadata diverged: %+v vs %+v", round, gi, a, b)
		}
		if len(a.servers) != len(b.servers) {
			t.Fatalf("round %d: group %d has %d servers, cold %d", round, gi, len(a.servers), len(b.servers))
		}
		for k := range a.servers {
			if a.servers[k] != b.servers[k] {
				t.Fatalf("round %d: group %d member %d: %d vs %d", round, gi, k, a.servers[k], b.servers[k])
			}
		}
		for si := range got.specs {
			if !exactEqual(got.initCount[gi][si], want.initCount[gi][si]) {
				t.Fatalf("round %d: initCount[%d][%d] = %v, cold %v",
					round, gi, si, got.initCount[gi][si], want.initCount[gi][si])
			}
		}
	}
}

// TestIncrementalSolveEquivalence runs two full SolveWarm sequences over the
// same mutation stream — one handing the solver deltas (patching), one not
// (rebuilding every round) — and requires identical objectives, targets, and
// move accounting every round at Workers=1, plus at least one patched and
// one fallback round so both paths are actually exercised.
func TestIncrementalSolveEquivalence(t *testing.T) {
	region := testRegion(t, 2, 2, 3, 5, 43)
	mA := newMutator(t, region, 44, 5)
	mB := newMutator(t, region, 44, 5)

	cfg := fastCfg()
	cfg.Workers = 1

	var dtA, dtB deltaTracker
	var warmA, warmB *WarmState

	hits0 := metrics.Solver.ModelPatchHits.Value()
	falls0 := metrics.Solver.FallbackRebuilds.Value()
	patchedRounds := 0
	for round := 0; round < 12; round++ {
		if round > 0 {
			mA.step(round == 6)
			mB.step(round == 6)
		}
		inA, commitA := dtA.input(mA, true)
		inB, commitB := dtB.input(mB, false)

		resA, err := SolveWarm(context.Background(), inA, cfg, warmA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := SolveWarm(context.Background(), inB, cfg, warmB)
		if err != nil {
			t.Fatal(err)
		}
		commitA()
		commitB()
		warmA, warmB = resA.Warm, resB.Warm

		if resA.Phase1.ModelPatched {
			patchedRounds++
		}
		if !exactEqual(resA.Phase1.Objective, resB.Phase1.Objective) {
			t.Fatalf("round %d: phase-1 objective %v (delta) != %v (cold)",
				round, resA.Phase1.Objective, resB.Phase1.Objective)
		}
		if !exactEqual(resA.Phase2.Objective, resB.Phase2.Objective) {
			t.Fatalf("round %d: phase-2 objective %v (delta) != %v (cold)",
				round, resA.Phase2.Objective, resB.Phase2.Objective)
		}
		if resA.Moves != resB.Moves {
			t.Fatalf("round %d: moves %+v (delta) != %+v (cold)", round, resA.Moves, resB.Moves)
		}
		for i := range resA.Targets {
			if resA.Targets[i] != resB.Targets[i] {
				t.Fatalf("round %d: target[%d] = %d (delta) != %d (cold)",
					round, i, resA.Targets[i], resB.Targets[i])
			}
		}
		// Both sequences must apply their targets the same way so the next
		// round's Current matches.
		for i, tgt := range resA.Targets {
			if mA.b.State(topology.ServerID(i)).Current != tgt && !unusable(ptrState(mA.b, i)) {
				mA.b.SetCurrent(topology.ServerID(i), tgt)
			}
			if mB.b.State(topology.ServerID(i)).Current != resB.Targets[i] && !unusable(ptrState(mB.b, i)) {
				mB.b.SetCurrent(topology.ServerID(i), resB.Targets[i])
			}
		}
	}
	if patchedRounds == 0 {
		t.Fatal("no round used the patch path")
	}
	if metrics.Solver.ModelPatchHits.Value() == hits0 {
		t.Fatal("ModelPatchHits counter did not move")
	}
	if metrics.Solver.FallbackRebuilds.Value() == falls0 {
		t.Fatal("FallbackRebuilds counter did not move (structural round missing)")
	}
	t.Logf("patched rounds: %d", patchedRounds)
}

func ptrState(b *broker.Broker, i int) *broker.ServerState {
	st := b.State(topology.ServerID(i))
	return &st
}

// TestParallelColdBuildDeterministic verifies the sharded cold build: the
// same input must produce fingerprint-identical models at every worker
// count, including on a matrix large enough to engage the parallel path.
func TestParallelColdBuildDeterministic(t *testing.T) {
	region := testRegion(t, 2, 2, 8, 16, 45)
	m := newMutator(t, region, 46, 8)
	states, v := m.b.SnapshotAt()
	in := Input{Region: region, Reservations: m.st.All(), States: states, StatesVersion: v}

	base := fastCfg()
	base.DisableSymmetry = true // one group per server: forces nG·nS past the parallel threshold
	targetsFor := func() []reservation.ID {
		targets := make([]reservation.ID, len(region.Servers))
		for i := range targets {
			targets[i] = reservation.Unassigned
		}
		return targets
	}

	var fp1 uint64
	for _, workers := range []int{1, 2, 4} {
		cfg := base
		cfg.Workers = workers
		cfg = cfg.withDefaults(region)
		specs := buildSpecs(in, cfg)
		pool := usableServers(in)
		if nG := len(pool); nG*len(specs) < parallelBuildMin && workers > 1 {
			t.Fatalf("test region too small to engage parallel build: %d cells", nG*len(specs))
		}
		var stats PhaseStats
		bp := buildPhase(in, cfg, specs, pool, targetsFor(), false, &stats)
		fp := bp.m.Fingerprint()
		if workers == 1 {
			fp1 = fp
		} else if fp != fp1 {
			t.Fatalf("workers=%d fingerprint %x != workers=1 %x", workers, fp, fp1)
		}
	}
}

// TestPatchRepeatDeterministic re-runs an identical patch sequence and
// requires bitwise-identical fingerprints run over run.
func TestPatchRepeatDeterministic(t *testing.T) {
	run := func() []uint64 {
		region := testRegion(t, 1, 2, 4, 6, 47)
		m := newMutator(t, region, 48, 5)
		cfg := fastCfg().withDefaults(region)
		var fps []uint64
		var cached *builtPhase
		for round := 0; round < 15; round++ {
			if round > 0 {
				m.step(false)
			}
			states, v := m.b.SnapshotAt()
			in := Input{Region: region, Reservations: m.st.All(), States: states, StatesVersion: v}
			specs := buildSpecs(in, cfg)
			pool := usableServers(in)
			targets := make([]reservation.ID, len(region.Servers))
			for i := range targets {
				targets[i] = reservation.Unassigned
			}
			if cached == nil || !cached.patch(in, cfg, specs, pool, targets) {
				var stats PhaseStats
				cached = buildPhase(in, cfg, specs, pool, targets, false, &stats)
			}
			fps = append(fps, cached.m.Fingerprint())
		}
		return fps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d fingerprint differs across runs: %x vs %x", i, a[i], b[i])
		}
	}
}

// TestPatchedModelSolves sanity-checks that a patched model actually solves
// and realizes a consistent assignment (capacity served, no overcounting).
func TestPatchedModelSolves(t *testing.T) {
	region := testRegion(t, 1, 2, 4, 8, 49)
	m := newMutator(t, region, 50, 4)
	cfg := fastCfg()
	cfg.Workers = 1
	var dt deltaTracker
	var warm *WarmState
	for round := 0; round < 6; round++ {
		if round > 0 {
			m.step(false)
		}
		in, commit := dt.input(m, true)
		res, err := SolveWarm(context.Background(), in, cfg, warm)
		if err != nil {
			t.Fatal(err)
		}
		commit()
		warm = res.Warm
		for _, r := range in.Reservations {
			got := rruOf(region, res.Targets, &r)
			if got+res.Phase1.SoftSlack+math.SmallestNonzeroFloat64 < r.RRUs &&
				res.Phase1.SoftSlack == 0 {
				t.Fatalf("round %d: reservation %d got %.1f of %.1f RRUs with no slack",
					round, r.ID, got, r.RRUs)
			}
		}
	}
}
