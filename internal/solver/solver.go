// Package solver implements the RAS Async Solver: the continuous,
// region-wide optimizer that assigns servers to reservations by solving a
// mixed-integer program (paper §3.5).
//
// The MIP model follows §3.5.3 exactly:
//
//	minimize  Σ M_s·max(0, X_{s,r} − x_{s,r})                    (1) stability
//	        + β·Σ max(0, Σ_G V·x − αK·C_r)  over racks G          (2) rack spread
//	        + β·Σ max(0, Σ_G V·x − αF·C_r)  over MSBs G           (3) MSB spread
//	        + τ·Σ_r max_G Σ_G V·x           over MSBs G           (4) buffer min
//	s.t.      Σ_r x_{s,r} ≤ 1                                     (5) assignment
//	          Σ V·x − max_G Σ_G V·x ≥ C_r                         (6) embedded buffer
//	          |Σ_G V·x − A_{r,G}·C_r| ≤ θ·C_r  over DCs G         (7) network affinity
//
// Two production techniques make the MIP tractable (§3.5.2):
//
//   - Symmetry exploitation: servers identical under the model (same
//     hardware type, same location scope, same current reservation, same
//     in-use state) are merged into a single integer count variable.
//   - Phased solving: phase 1 solves the whole region at MSB granularity;
//     phase 2 re-solves rack-level goals for the reservations with the worst
//     rack objectives, under an assignment-variable cap.
//
// Constraints 6 and 7 are softened with bounded slacks so that no constraint
// can regress below its violation in the incumbent assignment (§3.5.1), and
// unresolved slack carries a penalty far above every other objective.
package solver

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"ras/internal/broker"
	"ras/internal/clock"
	"ras/internal/hardware"
	"ras/internal/lp"
	"ras/internal/metrics"
	"ras/internal/mip"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// debugSlack logs residual soft-constraint slack per reservation when the
// RAS_DEBUG_SLACK environment variable is set — a production-style
// visibility hook (§5.3: explain capacity decisions to service owners).
var debugSlack = os.Getenv("RAS_DEBUG_SLACK") != ""

// exactZero reports whether v is exactly zero — the zero-value "knob unset"
// sentinel in Config and Policy fields. A raslint floatcmp designated
// helper.
func exactZero(v float64) bool { return v == 0 }

// exactEqual reports whether a and b are exactly equal, for values copied
// from the same store (per-reservation excess tallies used as sort keys).
// A raslint floatcmp designated helper.
func exactEqual(a, b float64) bool { return a == b }

// Config tunes the solver. Zero values select documented defaults.
type Config struct {
	// AlphaMSB is αF, the fraction of a reservation's capacity allowed in
	// one MSB before spread penalties accrue. Zero means 1.5/numMSBs
	// (clamped to [0.05, 1]).
	AlphaMSB float64
	// AlphaRack is αK, the rack-level analogue. Zero means 4/numRacks
	// (clamped to [0.01, 1]).
	AlphaRack float64
	// Beta is β, the penalty per RRU beyond a spread threshold. Zero = 3.
	Beta float64
	// Tau is τ, the penalty per RRU of correlated-failure buffer. Zero = 3.
	Tau float64
	// MoveCostInUse is M_s for servers with running containers. Zero = 10.
	MoveCostInUse float64
	// MoveCostIdle is M_s for idle servers ("virtually free", 10× smaller
	// in production). Zero = 1.
	MoveCostIdle float64
	// SoftPenalty prices one unit of softened-constraint slack. Zero = 1000.
	SoftPenalty float64
	// AffinityTheta is the default θ for expression 7. Zero = 0.05.
	AffinityTheta float64

	// Phase1TimeLimit / Phase2TimeLimit bound each phase's MIP step. Zero
	// means 10s each (production: a joint one-hour SLO).
	Phase1TimeLimit time.Duration
	Phase2TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes per phase. Zero = 400.
	MaxNodes int
	// StallNodes, when positive, stops a phase's search after that many
	// consecutive nodes with no incumbent or bound improvement while the
	// absolute gap is at most StallGap — cutting the long proving tail on
	// degenerate instances where the bound sits flat under a near-optimal
	// incumbent. Zero keeps the search running to MaxNodes. The stop is
	// keyed to node counts, so Workers=1 solves stay deterministic.
	StallNodes int
	// StallGap is the absolute-gap ceiling for the stall rule, in objective
	// units (one in-use preemption costs MoveCostInUse). Zero disables it.
	StallGap float64
	// Phase2MaxVars caps phase-2 assignment variables (production: 5M).
	// Zero = 20000.
	Phase2MaxVars int
	// Phase2ResFraction is the share of reservations refined in phase 2
	// (production: 10%). Zero = 0.1.
	Phase2ResFraction float64
	// DisableRackPhase skips phase 2 entirely.
	DisableRackPhase bool
	// DisableSymmetry turns off equivalence-class grouping: every server
	// becomes its own group, reproducing the raw per-server formulation
	// the paper's §3.5.2 symmetry exploitation exists to avoid (ablation).
	DisableSymmetry bool
	// RackGoalsInPhase1 folds rack-level goals into a single region-wide
	// phase instead of two-phase solving — the "without phasing, the full
	// problems would be at least 10x larger" configuration of §4.1.3
	// (ablation).
	RackGoalsInPhase1 bool
	// DisableWarmStart turns off LP warm starts inside the MIP search
	// (ablation for the branch-and-bound warm-start machinery).
	DisableWarmStart bool
	// Workers is the branch-and-bound worker count for each phase's MIP
	// solve. Zero or one keeps the exact serial search; values above one
	// enable the parallel engine (see mip.Options.Workers); negative means
	// runtime.NumCPU().
	Workers int
	// SetupOnly builds both phases (RAS build, solver build, initial state)
	// but skips the MIP step. Used by the Figure 10/11 scalability sweeps,
	// which measure exactly those three steps.
	SetupOnly bool

	// SharedBufferFraction sizes the shared random-failure buffer as a
	// fraction of total region capacity (§3.3.1; production: 2%).
	// Negative disables the buffer; zero means 0.02.
	SharedBufferFraction float64

	// WearPenalty enables IO-aware placement (paper §5.2, "SSD burnout
	// reduction through IO-aware server assignments"): assigning a flash
	// server to a flash-consuming reservation costs WearPenalty per wear
	// bucket (4 buckets over [0,1]), steering storage onto fresh drives.
	// Zero disables; wear buckets then do not split symmetry groups.
	WearPenalty float64
}

func (c Config) withDefaults(region *topology.Region) Config {
	if exactZero(c.AlphaMSB) {
		c.AlphaMSB = clamp(1.5/float64(max(region.NumMSBs, 1)), 0.05, 1)
	}
	if exactZero(c.AlphaRack) {
		c.AlphaRack = clamp(4/float64(max(region.NumRacks, 1)), 0.01, 1)
	}
	if exactZero(c.Beta) {
		c.Beta = 3
	}
	if exactZero(c.Tau) {
		c.Tau = 3
	}
	if exactZero(c.MoveCostInUse) {
		c.MoveCostInUse = 10
	}
	if exactZero(c.MoveCostIdle) {
		c.MoveCostIdle = 1
	}
	if exactZero(c.SoftPenalty) {
		c.SoftPenalty = 1000
	}
	if exactZero(c.AffinityTheta) {
		c.AffinityTheta = 0.05
	}
	if c.Phase1TimeLimit == 0 {
		c.Phase1TimeLimit = 10 * time.Second
	}
	if c.Phase2TimeLimit == 0 {
		c.Phase2TimeLimit = 10 * time.Second
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 400
	}
	if c.Phase2MaxVars == 0 {
		c.Phase2MaxVars = 20000
	}
	if exactZero(c.Phase2ResFraction) {
		c.Phase2ResFraction = 0.1
	}
	if exactZero(c.SharedBufferFraction) {
		c.SharedBufferFraction = 0.02
	}
	return c
}

// PhaseWarm is one phase's persisted cross-round warm-start state: the root
// relaxation basis exported at the end of round k together with the model
// shape it belongs to. Consecutive RAS rounds solve near-identical MIPs, so
// when the next round builds a model of the same shape the basis seeds its
// root LP (mip.Options.RootBasis); any shape drift — reservations added or
// removed, servers failing out of symmetry groups — falls back to a cold
// solve.
type PhaseWarm struct {
	Basis *lp.Basis
	// Vars and Rows record the model shape the basis was exported from.
	Vars, Rows int
}

// matches reports whether the warm state carries a basis usable for a model
// of the given shape.
func (w *PhaseWarm) matches(vars, rows int) bool {
	return w != nil && w.Basis != nil && w.Vars == vars && w.Rows == rows
}

// WarmState is the cross-round warm-start state of the two-phase solver.
// Feed a round's Result.Warm to the next round's SolveWarm; a nil WarmState
// (or a stale shape) solves cold. The zero value is ready to use.
type WarmState struct {
	Phase1 PhaseWarm
	Phase2 PhaseWarm
	// Cache holds the per-phase built models for the incremental build: when
	// the next round arrives with a Delta whose Since matches the cached
	// round's StatesVersion, each phase patches its cached model in place
	// instead of rebuilding it. The cache is mutated by every solve, so a
	// WarmState must feed at most one solve at a time.
	Cache *ModelCache
}

// Input is one solve's snapshot of the world (Figure 6 step 2).
type Input struct {
	Region *topology.Region
	// Reservations are the guaranteed reservations to satisfy. Elastic
	// reservations are ignored: they receive capacity from the online
	// mover's buffer loans, not from the solver.
	Reservations []reservation.Reservation
	// States is the broker snapshot, indexed by ServerID.
	States []broker.ServerState
	// Subset, when non-nil, restricts the solve to the listed servers (a
	// POP-style sub-region) without rebuilding Region or States: grouping,
	// buffer sizing, and move accounting consider only subset members, and
	// Targets outside the subset stay reservation.Unassigned. IDs must be
	// ascending and duplicate-free. nil solves the whole region.
	Subset []topology.ServerID
	// StatesVersion is the broker snapshot version States was taken at
	// (broker.SnapshotAt). Zero means "unversioned": the round solves fine
	// but its models cannot serve as a patch base for later deltas.
	StatesVersion uint64
	// Delta, when non-nil, describes what changed since the round whose
	// StatesVersion equals Delta.Since, opting this round into the
	// incremental model build: phases with a cached model from that round
	// patch it in place and fall back to a cold rebuild when the delta
	// breaks model structure. nil always rebuilds. Region topology must be
	// unchanged between the rounds (the same *Region pointer).
	Delta *Delta
}

// subsetMask materializes Subset as a per-server bitmap (nil when the whole
// region is in scope).
func (in Input) subsetMask() []bool {
	if in.Subset == nil {
		return nil
	}
	mask := make([]bool, len(in.Region.Servers))
	for _, id := range in.Subset {
		mask[id] = true
	}
	return mask
}

// validateSubset checks Subset is ascending, duplicate-free, and in range.
func (in Input) validateSubset() error {
	prev := topology.ServerID(-1)
	for _, id := range in.Subset {
		if id < 0 || int(id) >= len(in.Region.Servers) {
			return fmt.Errorf("solver: subset server %d out of range [0,%d)", id, len(in.Region.Servers))
		}
		if id <= prev {
			return fmt.Errorf("solver: subset not ascending/duplicate-free at server %d", id)
		}
		prev = id
	}
	return nil
}

// PhaseStats instruments one solve phase, mirroring the paper's
// Figure 8 breakdown (RAS build / solver build / initial state / MIP) and
// the Figure 9/10/11 metrics.
type PhaseStats struct {
	AssignVars   int // n_{g,r} count variables (the paper's x-axis metric)
	ModelVars    int // total MIP variables incl. auxiliaries
	ModelRows    int
	Groups       int // symmetry equivalence classes
	RASBuild     time.Duration
	SolverBuild  time.Duration
	InitialState time.Duration
	MIP          time.Duration
	Status       mip.Status
	Objective    float64
	Bound        float64
	// GapPreemptions expresses the optimality gap in units of in-use server
	// preemptions (Figure 9's "proven optimal within N preemptions").
	GapPreemptions float64
	// SoftSlack is the total remaining softened-constraint violation; zero
	// means all initially broken constraints were fixed. Unserviceable
	// requests contribute their full shortfall.
	SoftSlack float64
	// Unserviceable lists reservations no usable server can serve at all
	// (e.g. a SingleDC policy pointing at a datacenter with no eligible
	// hardware). Surfacing the reason is a §5.3 operability requirement:
	// "when a capacity request gets rejected ... the rejection message
	// needs to explain the reason".
	Unserviceable []string
	Nodes         int
	LPSolves      int
	LPIters       int
	LPLimited     int
	// RootLPIters counts the simplex iterations of the phase's root
	// relaxation alone, and WarmRoot reports whether that root LP was seeded
	// from a previous round's basis — together they quantify what the
	// cross-round warm start saved.
	RootLPIters int
	WarmRoot    bool
	// ModelPatched reports that this phase's model was patched in place
	// from the previous round's cache instead of rebuilt; RASBuild and
	// InitialState are then zero and SolverBuild is the patch time.
	ModelPatched bool
	// Workers is the resolved branch-and-bound worker count the phase ran
	// with; IncumbentUpdates and HeuristicWins break down where its
	// incumbents came from (see mip.Result).
	Workers          int
	IncumbentUpdates int
	HeuristicWins    int
}

// Total reports the phase's wall-clock total.
func (p PhaseStats) Total() time.Duration {
	return p.RASBuild + p.SolverBuild + p.InitialState + p.MIP
}

// MoveStats counts server moves produced by a solve (Figure 16).
type MoveStats struct {
	InUse  int // moves that preempt running containers
	Unused int // moves of idle or loaned-out servers
}

// Result is the output of one continuous-optimization round.
type Result struct {
	// Targets maps every server to its target reservation
	// (reservation.Unassigned for free-pool servers, reservation.SharedBuffer
	// for the shared random-failure buffer).
	Targets []reservation.ID
	Phase1  PhaseStats
	Phase2  PhaseStats
	Moves   MoveStats
	// RanPhase2 reports whether the rack phase executed.
	RanPhase2 bool
	// Phase2Reservations lists the reservations refined in phase 2.
	Phase2Reservations []reservation.ID
	// Cancelled reports that the solve context was cancelled before the
	// round completed. Targets still hold the best incumbent assignment
	// (falling back to the current assignment for phases that never produced
	// one), and the phase stats record how far the search got.
	Cancelled bool
	// Warm is the cross-round warm-start state to feed the next round's
	// SolveWarm (always non-nil; phases that exported no basis leave their
	// PhaseWarm basis nil, which the next round treats as a cold start).
	Warm *WarmState
}

// TotalTime reports the full allocation time across phases.
func (r *Result) TotalTime() time.Duration { return r.Phase1.Total() + r.Phase2.Total() }

// resSpec is an internal reservation: either a user reservation or one of
// the per-hardware-type shared-buffer reservations (§3.3.1, §3.5.3).
type resSpec struct {
	res        reservation.Reservation
	outID      reservation.ID // ID written to Targets
	countBased bool
	isBuffer   bool
}

// group is one symmetry equivalence class: servers indistinguishable to the
// model, merged into a single integer count variable per reservation.
type group struct {
	servers []topology.ServerID
	typeIdx int
	msb     int
	dc      int
	rack    int // -1 at MSB granularity (phase 1)
	cur     reservation.ID
	inUse   bool
	wear    int // SSD wear bucket (0 when wear-aware placement is off)
}

// wearBucket quantizes a wear level in [0,1] into 4 buckets.
func wearBucket(w float64) int {
	b := int(w * 4)
	if b > 3 {
		b = 3
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Solve runs one continuous-optimization round and returns target bindings
// for every server.
//
// ctx bounds the whole round: each phase derives its own deadline as the
// earlier of the phase time limit and the context deadline, and cancelling
// ctx aborts the running phase's branch-and-bound promptly. A cancelled
// round is not an error — the Result carries the best incumbent targets
// with Cancelled set.
func Solve(ctx context.Context, in Input, cfg Config) (*Result, error) {
	return SolveWarm(ctx, in, cfg, nil)
}

// SolveWarm is Solve with cross-round warm-start state: warm carries the
// previous round's final bases (pass Result.Warm from round k to round k+1;
// nil solves cold). Each phase seeds its root relaxation from the matching
// basis when the newly built model has the exact shape the basis was
// exported from, and silently falls back to a cold solve otherwise — so the
// continuous-optimization loop amortizes simplex work across rounds without
// changing what a round is allowed to return.
func SolveWarm(ctx context.Context, in Input, cfg Config, warm *WarmState) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //raslint:allow ctxflow nil ctx defaults to Background at the public API boundary
	}
	if in.Region == nil {
		return nil, fmt.Errorf("solver: nil region")
	}
	if len(in.States) != len(in.Region.Servers) {
		return nil, fmt.Errorf("solver: %d states for %d servers", len(in.States), len(in.Region.Servers))
	}
	if err := in.validateSubset(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(in.Region)

	res := &Result{Targets: make([]reservation.ID, len(in.Region.Servers))}
	for i := range res.Targets {
		res.Targets[i] = reservation.Unassigned
	}

	specs := buildSpecs(in, cfg)
	res.Warm = &WarmState{}
	var w1, w2 *PhaseWarm
	var cache *ModelCache
	if warm != nil {
		w1, w2 = &warm.Phase1, &warm.Phase2
		cache = warm.Cache
	}
	if cache == nil {
		cache = &ModelCache{}
	}
	res.Warm.Cache = cache

	// ---- Phase 1: whole region, MSB granularity (or rack granularity
	// when the single-phase ablation is on). ------------------------------
	pool := usableServers(in)
	p1, bp1 := solvePhase(ctx, in, cfg, specs, pool, res.Targets, cfg.RackGoalsInPhase1, cfg.Phase1TimeLimit, w1, cache.phase1)
	cache.phase1 = bp1
	res.Phase1 = p1.stats
	res.Warm.Phase1 = p1.warm
	realize(in, specs, p1, res.Targets)

	// ---- Phase 2: rack goals for the worst reservations. ----------------
	// A cancelled phase 1 skips it: the caller asked the whole round to stop.
	if !cfg.DisableRackPhase && !cfg.RackGoalsInPhase1 && ctx.Err() == nil {
		subset := pickPhase2(in, cfg, specs, res.Targets)
		if len(subset) > 0 {
			sub := make(map[reservation.ID]bool, len(subset))
			var specs2 []resSpec
			for _, s := range specs {
				if subset[s.outID] || (s.isBuffer && subset[reservation.SharedBuffer]) {
					sub[s.outID] = true
					specs2 = append(specs2, s)
				}
			}
			var pool2 []topology.ServerID
			for _, id := range pool {
				t := res.Targets[id]
				if t == reservation.Unassigned || sub[t] {
					pool2 = append(pool2, id)
				}
			}
			p2, bp2 := solvePhase(ctx, in, cfg, specs2, pool2, res.Targets, true, cfg.Phase2TimeLimit, w2, cache.phase2)
			cache.phase2 = bp2
			res.Phase2 = p2.stats
			res.Warm.Phase2 = p2.warm
			res.RanPhase2 = true
			for id := range subset {
				res.Phase2Reservations = append(res.Phase2Reservations, id)
			}
			sort.Slice(res.Phase2Reservations, func(i, j int) bool {
				return res.Phase2Reservations[i] < res.Phase2Reservations[j]
			})
			realize(in, specs2, p2, res.Targets)
		}
	}

	// Only explicit cancellation is reported as Cancelled: a ctx *deadline*
	// expiring is a time budget running out, which is the paper's ordinary
	// early-timeout path (Feasible result, measured gap — Figure 9).
	res.Cancelled = ctx.Err() == context.Canceled

	// ---- Move accounting (expression 1 / Figure 16). --------------------
	res.Moves = accountMoves(in, in.subsetMask(), res.Targets)
	return res, nil
}

// accountMoves tallies the moves an assignment implies over the masked
// servers (nil mask = whole region), fixing unusable servers' bindings in
// place: a failed server leaving its reservation is a casualty, not a move
// the mover executes, so it keeps its previous binding intent and returns
// home on recovery.
func accountMoves(in Input, mask []bool, targets []reservation.ID) MoveStats {
	var moves MoveStats
	for i := range in.States {
		if mask != nil && !mask[i] {
			continue
		}
		st := &in.States[i]
		if st.Current == targets[i] {
			continue
		}
		if st.Current == reservation.Unassigned {
			continue // acquiring a free server is not a move
		}
		if unusable(st) {
			targets[i] = st.Current
			continue
		}
		if st.Containers > 0 && st.LoanedTo == reservation.Unassigned {
			moves.InUse++
		} else {
			moves.Unused++
		}
	}
	return moves
}

// CountMoves recomputes the region-wide MoveStats for an externally
// assembled assignment (the pop backend's merged-and-repaired targets),
// applying the same unusable-server return-home rule as a direct solve —
// targets is fixed up in place.
func CountMoves(in Input, targets []reservation.ID) MoveStats {
	return accountMoves(in, nil, targets)
}

// buildSpecs assembles the internal reservation list: user reservations
// (minus elastic ones) plus per-hardware-type shared-buffer reservations.
func buildSpecs(in Input, cfg Config) []resSpec {
	var specs []resSpec
	for _, r := range in.Reservations {
		if r.Elastic {
			continue
		}
		specs = append(specs, resSpec{res: r, outID: r.ID, countBased: r.CountBased})
	}
	if cfg.SharedBufferFraction > 0 {
		// Size per-type buffers proportionally to the usable fleet mix,
		// using largest-remainder rounding so the total stays at the
		// configured fraction instead of inflating by one server per type.
		mask := in.subsetMask()
		counts := make([]int, in.Region.Catalog.Len())
		usableTotal := 0
		for i := range in.Region.Servers {
			if mask != nil && !mask[i] {
				continue
			}
			if unusable(&in.States[i]) {
				continue
			}
			counts[in.Region.Servers[i].Type]++
			usableTotal++
		}
		wantTotal := int(math.Round(float64(usableTotal) * cfg.SharedBufferFraction))
		wants := make([]float64, len(counts))
		floorSum := 0
		for t, n := range counts {
			wants[t] = float64(n) * cfg.SharedBufferFraction
			floorSum += int(wants[t])
		}
		// Distribute the remainder to the largest fractional parts.
		type rem struct {
			t    int
			frac float64
		}
		var rems []rem
		for t := range wants {
			rems = append(rems, rem{t, wants[t] - math.Floor(wants[t])})
		}
		sort.Slice(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
		extra := wantTotal - floorSum
		bufCount := make([]int, len(counts))
		for t := range wants {
			bufCount[t] = int(wants[t])
		}
		for i := 0; i < extra && i < len(rems); i++ {
			bufCount[rems[i].t]++
		}
		for t := range counts {
			want := float64(bufCount[t])
			if want <= 0 {
				continue
			}
			specs = append(specs, resSpec{
				res: reservation.Reservation{
					ID:            reservation.SharedBuffer,
					Name:          "shared-buffer/" + in.Region.Catalog.Type(t).ID,
					Class:         hardware.FleetAvg,
					RRUs:          want,
					EligibleTypes: []int{t},
					CountBased:    true,
					Policy:        reservation.DefaultPolicy(),
				},
				outID:      reservation.SharedBuffer,
				countBased: true,
				isBuffer:   true,
			})
		}
	}
	return specs
}

// unusable reports whether a server must be filtered out of the solve: the
// availability constraint excludes unplanned failures, while planned
// maintenance remains usable capacity covered by embedded buffers (§3.3.1).
func unusable(st *broker.ServerState) bool {
	switch st.Unavail {
	case broker.Available, broker.PlannedMaintenance:
		return false
	default:
		return true
	}
}

func usableServers(in Input) []topology.ServerID {
	mask := in.subsetMask()
	var pool []topology.ServerID
	for i := range in.States {
		if mask != nil && !mask[i] {
			continue
		}
		if !unusable(&in.States[i]) {
			pool = append(pool, topology.ServerID(i))
		}
	}
	return pool
}

// rruValue is V_{s,r} for one hardware type and spec.
func rruValue(cat *hardware.Catalog, typeIdx int, s *resSpec) float64 {
	base := hardware.RRU(cat.Type(typeIdx), s.res.Class)
	if base <= 0 {
		return 0
	}
	if !s.res.Eligible(typeIdx, base) {
		return 0
	}
	if s.countBased {
		return 1
	}
	return base
}

// phaseOutput carries a solved phase back to realization.
type phaseOutput struct {
	stats  PhaseStats
	groups []*group
	specs  []resSpec
	// counts[g][si] is the solved server count of group g for spec si
	// (indices into groups/specs).
	counts [][]float64
	// warm is the phase's exported cross-round warm-start state.
	warm PhaseWarm
}

// solvePhase builds (or patches) and solves one phase's MIP over the given
// server pool. rackLevel selects the grouping granularity and enables
// expression 2. targets carries phase-1 intent (used for warm starts in
// phase 2). cached is the phase's model from an earlier round (nil solves
// cold); the returned builtPhase is the cache to carry forward — the patched
// or freshly built model.
//
// The phase deadline is derived from the parent context: the MIP stops at
// the earlier of now+limit and the parent's own deadline, and parent
// cancellation aborts the search immediately.
func solvePhase(ctx context.Context, in Input, cfg Config, specs []resSpec, pool []topology.ServerID,
	targets []reservation.ID, rackLevel bool, limit time.Duration, pw *PhaseWarm,
	cached *builtPhase) (*phaseOutput, *builtPhase) {

	phaseCtx, cancel := context.WithTimeout(ctx, limit)
	defer cancel()

	out := &phaseOutput{specs: specs}

	// ---------------- Incremental build: patch or rebuild. ----------------
	bp := cached
	patched := false
	if in.Delta != nil {
		switch {
		case bp == nil || in.StatesVersion == 0 || bp.statesVersion != in.Delta.Since:
			metrics.Solver.ModelPatchMisses.Add(1)
		case in.Delta.structural():
			metrics.Solver.FallbackRebuilds.Add(1)
		default:
			t0 := clock.Now()
			patched = bp.patch(in, cfg, specs, pool, targets)
			if patched {
				out.stats.SolverBuild = clock.Since(t0)
				out.stats.ModelPatched = true
				metrics.Solver.ModelPatchHits.Add(1)
			} else {
				metrics.Solver.FallbackRebuilds.Add(1)
			}
		}
	}
	if !patched {
		bp = buildPhase(in, cfg, specs, pool, targets, rackLevel, &out.stats)
	}
	bp.statesVersion = in.StatesVersion

	m := bp.m
	nG, nS := len(bp.groups), len(specs)
	out.groups = bp.groups
	out.stats.AssignVars = bp.assignVars
	out.stats.Groups = nG
	out.stats.ModelVars = m.NumVars()
	out.stats.ModelRows = m.NumConstrs()
	for si := range bp.sp {
		if bp.sp[si].unserviceable {
			out.stats.SoftSlack += bp.specs[si].res.RRUs
			out.stats.Unserviceable = append(out.stats.Unserviceable, bp.sp[si].unservMsg)
		}
	}

	// ---------------- MIP step. -------------------------------------------
	// Fall back to "no change" if the MIP is skipped. This aliases the
	// cache's live count matrix, which stays untouched until the next
	// round's patch — realize consumes it within the current round.
	out.counts = bp.initCount
	if cfg.SetupOnly {
		out.stats.Status = mip.NoSolution
		return out, bp
	}
	t0 := clock.Now()
	// Cross-round warm start: a basis exported by the previous round seeds
	// this round's root relaxation, but only when the freshly built model has
	// the exact shape the basis belongs to; any drift falls back to cold.
	var rootBasis *lp.Basis
	if pw != nil && pw.Basis != nil {
		if pw.matches(m.NumVars(), m.NumConstrs()) {
			rootBasis = pw.Basis
			out.stats.WarmRoot = true
			metrics.Solver.RoundWarmHits.Add(1)
		} else {
			metrics.Solver.RoundWarmMisses.Add(1)
		}
	}
	// Gap tolerances: proving optimality below the cost of a single idle
	// move is pointless churn, so stop there (the paper likewise accepts
	// early timeouts and measures the remaining gap, Figure 9). The stall
	// rule passes through for callers with tight node budgets.
	r := m.Solve(phaseCtx, mip.Options{
		MaxNodes:    cfg.MaxNodes,
		AbsGap:      0.9 * cfg.MoveCostIdle,
		RelGap:      0.02,
		StallNodes:  cfg.StallNodes,
		StallGap:    cfg.StallGap,
		NoWarmStart: cfg.DisableWarmStart,
		Workers:     cfg.Workers,
		RootBasis:   rootBasis,
	})
	out.stats.MIP = clock.Since(t0)
	out.stats.Status = r.Status
	out.stats.Nodes = r.Nodes
	out.stats.LPSolves = r.LPSolves
	out.stats.LPIters = r.LPIters
	out.stats.LPLimited = r.LPLimited
	out.stats.RootLPIters = r.RootLPIters
	out.warm = PhaseWarm{Basis: r.RootBasis, Vars: m.NumVars(), Rows: m.NumConstrs()}
	out.stats.Workers = r.Workers
	out.stats.IncumbentUpdates = r.IncumbentUpdates
	out.stats.HeuristicWins = r.HeuristicWins
	if r.Status == mip.Optimal || r.Status == mip.Feasible || r.Status == mip.Cancelled {
		out.stats.Objective = r.Objective
		out.stats.Bound = r.Bound
		out.stats.GapPreemptions = r.Gap() / cfg.MoveCostInUse //raslint:allow nanguard withDefaults floors MoveCostInUse at 10 when zero; struct fields are outside SSA tracking
		counts := make([][]float64, nG)
		for gi := range out.groups {
			counts[gi] = make([]float64, nS)
			for si := range specs {
				if bp.nVar[gi][si] >= 0 {
					counts[gi][si] = math.Round(r.X[bp.nVar[gi][si]])
				}
			}
		}
		out.counts = counts
		for _, sv := range bp.capSlackVars {
			out.stats.SoftSlack += r.X[sv]
			if debugSlack && r.X[sv] > 1e-6 {
				fmt.Printf("SLACK %s = %.3f\n", m.VarName(sv), r.X[sv])
			}
		}
		for _, sv := range bp.affSlackVars {
			out.stats.SoftSlack += r.X[sv]
		}
	}
	return out, bp
}

// groupServers computes the symmetry equivalence classes of the pool,
// returning them in their deterministic model order plus the key → index
// map the incremental patch uses to route servers between classes.
func groupServers(in Input, pool []topology.ServerID, rackLevel, noSymmetry, wearAware bool) ([]*group, map[groupKey]int) {
	byKey := make(map[groupKey]*group, 256)
	var order []groupKey
	for _, id := range pool {
		k := serverKey(in, id, rackLevel, noSymmetry, wearAware)
		g, ok := byKey[k]
		if !ok {
			srv := &in.Region.Servers[id]
			g = &group{typeIdx: srv.Type, msb: srv.MSB, dc: srv.DC, rack: -1, cur: k.cur, inUse: k.inUse, wear: k.wear}
			if rackLevel {
				g.rack = srv.Rack
			}
			byKey[k] = g
			order = append(order, k)
		}
		g.servers = append(g.servers, id)
	}
	// The comparator is total over the key (wear and server break the
	// remaining ties), so the group order is a pure function of the key set:
	// a patched cache and a cold rebuild agree on group indices no matter
	// what order the pool produced the keys in.
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.scope != b.scope {
			return a.scope < b.scope
		}
		if a.typeIdx != b.typeIdx {
			return a.typeIdx < b.typeIdx
		}
		if a.cur != b.cur {
			return a.cur < b.cur
		}
		if a.inUse != b.inUse {
			return !a.inUse
		}
		if a.wear != b.wear {
			return a.wear < b.wear
		}
		return a.server < b.server
	})
	groups := make([]*group, 0, len(order))
	idx := make(map[groupKey]int, len(order))
	for _, k := range order {
		idx[k] = len(groups)
		groups = append(groups, byKey[k])
	}
	return groups, idx
}

// realize distributes solved group counts onto concrete servers, writing
// Targets. Within a group, servers already in the target reservation are
// kept first to minimize real-world churn.
func realize(in Input, specs []resSpec, p *phaseOutput, targets []reservation.ID) {
	for gi, g := range p.groups {
		// Order servers so that, for each spec in turn, ones already bound
		// to the spec's reservation come first.
		remaining := append([]topology.ServerID(nil), g.servers...)
		for si := range specs {
			want := int(p.counts[gi][si])
			if want <= 0 {
				continue
			}
			outID := specs[si].outID
			// Stable partition: current members first.
			sort.SliceStable(remaining, func(a, b int) bool {
				ca := in.States[remaining[a]].Current == outID
				cb := in.States[remaining[b]].Current == outID
				return ca && !cb
			})
			if want > len(remaining) {
				want = len(remaining)
			}
			for _, id := range remaining[:want] {
				targets[id] = outID
			}
			remaining = remaining[want:]
		}
		for _, id := range remaining {
			targets[id] = reservation.Unassigned
		}
	}
}

// pickPhase2 selects the reservations with the worst rack-level objectives
// for phase-2 refinement, under the variable cap (§3.5.2). It returns a set
// of output reservation IDs (possibly including reservation.SharedBuffer).
func pickPhase2(in Input, cfg Config, specs []resSpec, targets []reservation.ID) map[reservation.ID]bool {
	cat := in.Region.Catalog

	// Rack-level RRU load per output reservation from the phase-1 targets.
	type load struct {
		excess float64
		racks  int
	}
	perRes := make(map[reservation.ID]*load)
	rackSum := make(map[[2]int64]float64) // (res, rack) → RRU sum
	crByID := make(map[reservation.ID]float64)
	classByID := make(map[reservation.ID]hardware.Class)
	alphaByID := make(map[reservation.ID]float64)
	countBased := make(map[reservation.ID]bool)
	for si := range specs {
		s := &specs[si]
		if s.isBuffer {
			continue
		}
		crByID[s.outID] += s.res.RRUs
		classByID[s.outID] = s.res.Class
		countBased[s.outID] = s.countBased
		a := s.res.Policy.SpreadRack
		if exactZero(a) {
			a = cfg.AlphaRack
		}
		alphaByID[s.outID] = a
	}
	for i := range in.Region.Servers {
		id := targets[i]
		if _, ok := crByID[id]; !ok {
			continue
		}
		srv := &in.Region.Servers[i]
		v := 1.0
		if !countBased[id] {
			v = hardware.RRU(cat.Type(srv.Type), classByID[id])
		}
		rackSum[[2]int64{int64(id), int64(srv.Rack)}] += v
	}
	for k, sum := range rackSum {
		id := reservation.ID(k[0])
		l := perRes[id]
		if l == nil {
			l = &load{}
			perRes[id] = l
		}
		if over := sum - alphaByID[id]*crByID[id]; over > 0 {
			l.excess += over
		}
		l.racks++
	}

	type cand struct {
		id     reservation.ID
		excess float64
	}
	var cands []cand
	for id, l := range perRes {
		if l.excess > 0 {
			cands = append(cands, cand{id, l.excess})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !exactEqual(cands[i].excess, cands[j].excess) {
			return cands[i].excess > cands[j].excess
		}
		return cands[i].id < cands[j].id
	})

	maxRes := int(math.Ceil(cfg.Phase2ResFraction * float64(len(crByID))))
	if maxRes < 1 {
		maxRes = 1
	}
	// Estimated variables per reservation: one per (rack, type) pair it can
	// touch; a cheap over-estimate of racks × 2 keeps selection simple.
	varBudget := cfg.Phase2MaxVars
	out := make(map[reservation.ID]bool)
	for _, c := range cands {
		if len(out) >= maxRes {
			break
		}
		est := in.Region.NumRacks * 2
		if est > varBudget {
			break
		}
		varBudget -= est
		out[c.id] = true
	}
	return out
}

func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
