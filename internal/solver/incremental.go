// Incremental model build: the solver caches each phase's fully built MIP
// together with the bookkeeping needed to patch it in place when the next
// round's input differs only in ways that keep the model's structure — dead
// or revived servers moving between existing symmetry groups (bound and RHS
// flips) and resized demands C_r (RHS updates). Any structural drift — a
// reservation created or deleted, a symmetry group appearing or emptying, a
// move hinge appearing or vanishing — falls back to a cold rebuild, so a
// patched model is bit-for-bit identical to what the cold path would have
// built for the same input (the property tests compare mip.Fingerprint).
package solver

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ras/internal/broker"
	"ras/internal/clock"
	"ras/internal/mip"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// Delta describes what changed in a round's inputs relative to the snapshot
// an earlier round solved, letting the solver patch its cached phase models
// instead of rebuilding them. Callers assemble it from the broker's
// ChangedSince journal and the reservation store's ChangesSince log.
type Delta struct {
	// Since is the broker snapshot version the cached round solved
	// (Input.StatesVersion of that round). The patch path engages only when
	// it matches the cache.
	Since uint64
	// Servers lists the servers whose broker state changed since Since,
	// ascending. The patch path re-derives the exact change set by comparing
	// snapshots, so a superset is fine; the field exists for observability
	// and tests.
	Servers []topology.ServerID
	// Reservations are the capacity requests logged since the cached round.
	// Creates and deletes change the spec list itself and force a rebuild;
	// resizes arrive as RHS updates.
	Reservations []reservation.Request
}

// structural reports whether the delta is known to break model structure
// without attempting a patch: reservation creates and deletes change the
// spec list itself.
func (d *Delta) structural() bool {
	for i := range d.Reservations {
		if d.Reservations[i].Kind != reservation.Resize {
			return true
		}
	}
	return false
}

// ModelCache carries the per-phase built models across rounds inside
// WarmState. It is mutated in place by each solve, so a WarmState must feed
// at most one solve at a time (the same single-flight rule the rest of the
// warm-start state already follows).
type ModelCache struct {
	phase1 *builtPhase
	phase2 *builtPhase
}

// groupKey identifies one symmetry equivalence class (see groupServers).
type groupKey struct {
	typeIdx int
	scope   int // MSB or rack index
	cur     reservation.ID
	inUse   bool
	wear    int               // wear bucket; 0 unless wear-aware placement is on
	server  topology.ServerID // set only when symmetry is disabled
}

// serverKey computes the symmetry-class key of one server, mirroring the
// grouping pass of groupServers exactly.
func serverKey(in Input, id topology.ServerID, rackLevel, noSymmetry, wearAware bool) groupKey {
	srv := &in.Region.Servers[id]
	st := &in.States[id]
	inUse := st.Containers > 0 && st.LoanedTo == reservation.Unassigned
	scope := srv.MSB
	if rackLevel {
		scope = srv.Rack
	}
	k := groupKey{typeIdx: srv.Type, scope: scope, cur: st.Current, inUse: inUse, server: -1}
	if noSymmetry {
		k.server = id
	}
	if wearAware && in.Region.Catalog.Type(srv.Type).FlashTB > 0 {
		k.wear = wearBucket(st.FlashWear)
	}
	return k
}

// specRows records where one spec's rows and auxiliary variables landed in
// the model, so a patch can update exactly them. Absent entries are -1.
type specRows struct {
	// active means the spec got constraint rows (cr > 0 and serviceable).
	active bool
	// unserviceable means cr > 0 but no usable server can serve the spec.
	unserviceable bool
	unservMsg     string

	env       mip.Var // envelope z (expression 4/6); -1 for buffer specs
	capRow    int
	capSlack  mip.Var
	spreadRow []int // by position in msbs; -1 where the MSB has no terms
	spreadVar []mip.Var
	rackRow   []int // by position in racks (rack level only)
	rackVar   []mip.Var
	affRow    [][2]int  // by DC: {aff-hi row, aff-lo row}; {-1,-1} absent
	affSlack  []mip.Var // by DC; -1 absent
}

// builtPhase is one phase's cached model: the mip.Model plus every piece of
// bookkeeping needed to (a) run the MIP step, (b) patch the model in place
// for a compatible next-round input, and (c) prove the patch kept it
// identical to a cold rebuild. It is single-flight state: one solve at a
// time may read or mutate it.
type builtPhase struct {
	m   *mip.Model
	rev int // model revision at build; structural growth disables patching

	region    *topology.Region
	rackLevel bool
	cfg       Config
	nDCs      int

	// statesVersion is the broker snapshot version this model reflects.
	statesVersion uint64

	specs    []resSpec // copy; RRUs tracked through patches
	specByID map[reservation.ID][]int

	groups   []*group
	groupIdx map[groupKey]int

	vval      [][]float64 // V_{g,s}
	initCount [][]float64 // X_{g,s}, kept current through patches
	initX     []float64   // warm-start point, parallel to model variables

	nVar      [][]mip.Var
	assignRow []int
	moveVar   [][]mip.Var
	moveRow   [][]int

	sp      []specRows
	msbs    []int
	racks   []int
	msbIdx  map[int]int
	rackIdx map[int]int

	capSlackVars []mip.Var
	affSlackVars []mip.Var
	assignVars   int

	// Per-server bookkeeping (indexed by ServerID over the whole region).
	states      []broker.ServerState
	curRef      []reservation.ID // Current in phase 1, targets at rack level
	inPool      []bool
	serverGroup []int32 // group index; -1 outside the pool
	countSpec   []int32 // spec index the server's initCount charge went to; -1 none
	subset      []topology.ServerID
}

// parallelBuildMin is the group×spec matrix size below which the cold build
// stays serial: goroutine fan-out costs more than it saves on small models.
const parallelBuildMin = 4096

// buildWorkers resolves the cold build's parallelism from the config.
func buildWorkers(cfg Config, cells int) int {
	if cells < parallelBuildMin {
		return 1
	}
	w := cfg.Workers
	if w < 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor splits [0,n) into one contiguous shard per worker and runs f
// on each concurrently. f must only touch its own shard's slots.
func parallelFor(workers, n int, f func(lo, hi int)) {
	if workers <= 1 || n < 2 {
		f(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// buildPhase runs the cold path: grouping, initial state, and the full MIP
// build, returning the cached form. Group-sharded passes (eligibility
// values, variable names, initial counts) run on cfg.Workers goroutines;
// the shards are disjoint, so the result is identical at every worker count.
func buildPhase(in Input, cfg Config, specs []resSpec, pool []topology.ServerID,
	targets []reservation.ID, rackLevel bool, stats *PhaseStats) *builtPhase {

	// ---------------- RAS build: grouping & constants. -------------------
	t0 := clock.Now()
	groups, groupIdx := groupServers(in, pool, rackLevel, cfg.DisableSymmetry, cfg.WearPenalty > 0)
	cat := in.Region.Catalog
	nG, nS := len(groups), len(specs)
	workers := buildWorkers(cfg, nG*nS)

	// Per-(group, spec) RRU values, eligibility, and variable names.
	vval := make([][]float64, nG)
	names := make([][]string, nG)
	parallelFor(workers, nG, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			g := groups[gi]
			row := make([]float64, nS)
			nrow := make([]string, nS)
			for si := range specs {
				s := &specs[si]
				if s.res.Policy.SingleDC >= 0 && g.dc != s.res.Policy.SingleDC {
					continue
				}
				v := rruValue(cat, g.typeIdx, s)
				row[si] = v
				if v > 0 {
					nrow[si] = fmt.Sprintf("n[g%d,%s]", gi, s.res.Name)
				}
			}
			vval[gi] = row
			names[gi] = nrow
		}
	})
	stats.RASBuild = clock.Since(t0)

	// ---------------- Initial state. -------------------------------------
	t0 = clock.Now()
	n := len(in.States)
	// Initial count X[g][s]: servers of g currently in spec s. The "current"
	// reference is the broker's Current in phase 1 and the phase-1 target in
	// phase 2, so phase 2 warm-starts from the phase-1 solution.
	specByID := make(map[reservation.ID][]int, nS)
	for si := range specs {
		specByID[specs[si].outID] = append(specByID[specs[si].outID], si)
	}
	curRef := make([]reservation.ID, n)
	for i := range curRef {
		if rackLevel {
			curRef[i] = targets[i]
		} else {
			curRef[i] = in.States[i].Current
		}
	}
	initCount := make([][]float64, nG)
	serverGroup := make([]int32, n)
	countSpec := make([]int32, n)
	for i := range serverGroup {
		serverGroup[i] = -1
		countSpec[i] = -1
	}
	parallelFor(workers, nG, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			g := groups[gi]
			row := make([]float64, nS)
			for _, id := range g.servers {
				serverGroup[id] = int32(gi)
				// Buffer specs share an outID; pick the one matching the type.
				for _, si := range specByID[curRef[id]] {
					if vval[gi][si] > 0 {
						row[si]++
						countSpec[id] = int32(si)
						break
					}
				}
			}
			initCount[gi] = row
		}
	})
	stats.InitialState = clock.Since(t0)

	// ---------------- Solver build: the MIP. ------------------------------
	t0 = clock.Now()
	m := mip.NewModel()
	var initX []float64 // warm-start values, parallel to model variables
	addVar := func(v mip.Var, init float64) {
		if int(v) != len(initX) {
			panic("solver: variable/init bookkeeping out of sync")
		}
		initX = append(initX, init)
	}

	bp := &builtPhase{
		m:         m,
		region:    in.Region,
		rackLevel: rackLevel,
		cfg:       cfg,
		nDCs:      in.Region.NumDCs,
		specs:     append([]resSpec(nil), specs...),
		specByID:  specByID,
		groups:    groups,
		groupIdx:  groupIdx,
		vval:      vval,
		initCount: initCount,

		states:      append([]broker.ServerState(nil), in.States...),
		curRef:      curRef,
		serverGroup: serverGroup,
		countSpec:   countSpec,
		subset:      append([]topology.ServerID(nil), in.Subset...),
	}
	bp.inPool = make([]bool, n)
	for _, id := range pool {
		bp.inPool[id] = true
	}

	nVar := make([][]mip.Var, nG) // assignment count variables; -1 if absent
	moveVar := make([][]mip.Var, nG)
	moveRow := make([][]int, nG)
	for gi := range nVar {
		nVar[gi] = make([]mip.Var, nS)
		moveVar[gi] = make([]mip.Var, nS)
		moveRow[gi] = make([]int, nS)
		for si := range nVar[gi] {
			nVar[gi][si] = -1
			moveVar[gi][si] = -1
			moveRow[gi][si] = -1
		}
	}
	for gi, g := range groups {
		for si := range specs {
			if vval[gi][si] <= 0 {
				continue
			}
			// IO-aware placement (§5.2): worn flash assigned to a
			// flash-consuming reservation carries a per-server cost.
			wearCost := 0.0
			if cfg.WearPenalty > 0 && g.wear > 0 && cat.Type(g.typeIdx).FlashTB > 0 && !specs[si].isBuffer {
				wearCost = cfg.WearPenalty * float64(g.wear)
			}
			v := m.AddIntVar(names[gi][si], wearCost, 0, float64(len(g.servers)))
			addVar(v, initCount[gi][si])
			nVar[gi][si] = v
			bp.assignVars++
		}
	}
	bp.nVar = nVar

	// (5) assignment: Σ_s n_{g,s} ≤ |g|.
	assignRow := make([]int, nG)
	for gi, g := range groups {
		assignRow[gi] = -1
		var terms []mip.Term
		for si := range specs {
			if nVar[gi][si] >= 0 {
				terms = append(terms, mip.Term{Var: nVar[gi][si], Coef: 1})
			}
		}
		if terms != nil {
			assignRow[gi] = m.AddConstr(fmt.Sprintf("assign[g%d]", gi), terms, mip.LE, float64(len(g.servers)))
		}
	}
	bp.assignRow = assignRow

	// (1) stability: cost M · max(0, X − n) per (group, spec) with X > 0.
	for gi, g := range groups {
		mcost := cfg.MoveCostIdle
		if g.inUse {
			mcost = cfg.MoveCostInUse
		}
		for si := range specs {
			x0 := initCount[gi][si]
			if x0 <= 0 || nVar[gi][si] < 0 {
				continue
			}
			initVal := 0.0 // warm start keeps X servers, so max(0, X−n) = 0
			y := m.AddPosPart(fmt.Sprintf("move[g%d,s%d]", gi, si),
				[]mip.Term{{Var: nVar[gi][si], Coef: -1}}, x0, mcost)
			addVar(y, initVal)
			moveVar[gi][si] = y
			moveRow[gi][si] = m.NumConstrs() - 1
		}
	}
	bp.moveVar = moveVar
	bp.moveRow = moveRow

	// Per-spec structures: MSB sums, envelope, capacity, spread, affinity.
	msbGroups := make(map[int][]int, 64) // msb → group indices
	for gi, g := range groups {
		msbGroups[g.msb] = append(msbGroups[g.msb], gi)
	}
	rackGroups := make(map[int][]int, 256)
	if rackLevel {
		for gi, g := range groups {
			rackGroups[g.rack] = append(rackGroups[g.rack], gi)
		}
	}
	dcGroups := make(map[int][]int, 8)
	for gi, g := range groups {
		dcGroups[g.dc] = append(dcGroups[g.dc], gi)
	}
	bp.msbs = sortedKeys(msbGroups)
	bp.racks = sortedKeys(rackGroups)
	bp.msbIdx = make(map[int]int, len(bp.msbs))
	for k, msb := range bp.msbs {
		bp.msbIdx[msb] = k
	}
	bp.rackIdx = make(map[int]int, len(bp.racks))
	for k, rk := range bp.racks {
		bp.rackIdx[rk] = k
	}

	sp := make([]specRows, nS)
	for si := range sp {
		sp[si] = specRows{env: -1, capRow: -1, capSlack: -1}
	}

	for si := range specs {
		s := &specs[si]
		cr := s.res.RRUs
		if cr <= 0 {
			continue
		}

		// Terms and initial sums per scope.
		sumTerms := func(gis []int) ([]mip.Term, float64) {
			var terms []mip.Term
			initSum := 0.0
			for _, gi := range gis {
				if nVar[gi][si] < 0 {
					continue
				}
				terms = append(terms, mip.Term{Var: nVar[gi][si], Coef: vval[gi][si]})
				initSum += vval[gi][si] * initCount[gi][si]
			}
			return terms, initSum
		}

		var all []int
		for gi := range groups {
			all = append(all, gi)
		}
		totalTerms, initTotal := sumTerms(all)
		if totalTerms == nil {
			// Nothing in the region can serve this request: report the
			// rejection instead of silently dropping the constraint.
			sp[si].unserviceable = true
			sp[si].unservMsg = fmt.Sprintf("%s: no usable eligible server (class %v, %d eligible types, singleDC %d)",
				s.res.Name, s.res.Class, len(s.res.EligibleTypes), s.res.Policy.SingleDC)
			continue
		}
		sp[si].active = true

		// (4)+(6): envelope z ≥ per-MSB sum, cost τ; capacity row uses z.
		// Shared-buffer specs skip the embedded buffer (they *are* buffer).
		var env mip.Var = -1
		initEnv := 0.0
		alphaF := s.res.Policy.SpreadMSB
		if exactZero(alphaF) {
			alphaF = cfg.AlphaMSB
		}
		if !s.isBuffer {
			var groupsPerMSB [][]mip.Term
			for _, msb := range bp.msbs {
				terms, isum := sumTerms(msbGroups[msb])
				if terms == nil {
					continue
				}
				groupsPerMSB = append(groupsPerMSB, terms)
				if isum > initEnv {
					initEnv = isum
				}
			}
			if groupsPerMSB != nil {
				env = m.AddUpperEnvelope(fmt.Sprintf("maxmsb[s%d]", si), groupsPerMSB, cfg.Tau)
				addVar(env, initEnv)
			}
			sp[si].env = env

			// (3) MSB spread: β · max(0, Σ − αF·C).
			sp[si].spreadRow = make([]int, len(bp.msbs))
			sp[si].spreadVar = make([]mip.Var, len(bp.msbs))
			for k, msb := range bp.msbs {
				sp[si].spreadRow[k] = -1
				sp[si].spreadVar[k] = -1
				terms, isum := sumTerms(msbGroups[msb])
				if terms == nil {
					continue
				}
				y := m.AddPosPart(fmt.Sprintf("spreadF[s%d,m%d]", si, msb),
					terms, -alphaF*cr, cfg.Beta)
				addVar(y, math.Max(0, isum-alphaF*cr))
				sp[si].spreadVar[k] = y
				sp[si].spreadRow[k] = m.NumConstrs() - 1
			}

			// (2) rack spread, phase 2 only.
			if rackLevel {
				alphaK := s.res.Policy.SpreadRack
				if exactZero(alphaK) {
					alphaK = cfg.AlphaRack
				}
				sp[si].rackRow = make([]int, len(bp.racks))
				sp[si].rackVar = make([]mip.Var, len(bp.racks))
				for k, rk := range bp.racks {
					sp[si].rackRow[k] = -1
					sp[si].rackVar[k] = -1
					terms, isum := sumTerms(rackGroups[rk])
					if terms == nil {
						continue
					}
					y := m.AddPosPart(fmt.Sprintf("spreadK[s%d,r%d]", si, rk),
						terms, -alphaK*cr, cfg.Beta)
					addVar(y, math.Max(0, isum-alphaK*cr))
					sp[si].rackVar[k] = y
					sp[si].rackRow[k] = m.NumConstrs() - 1
				}
			}
		}

		// (6) capacity with embedded buffer, softened: Σ V·n − z + slack ≥ C.
		// The slack is always present (bounded to the initial violation, so a
		// clean incumbent pins it to [0,0]); keeping the column in place is
		// what lets a patch re-open it when a delta breaks the capacity.
		capTerms := append([]mip.Term(nil), totalTerms...)
		initLHS := initTotal
		if env >= 0 {
			capTerms = append(capTerms, mip.Term{Var: env, Coef: -1})
			initLHS -= initEnv
		}
		violation := math.Max(0, cr-initLHS)
		slack := m.AddVar(fmt.Sprintf("capslack[s%d]", si), cfg.SoftPenalty, 0, violation)
		m.MarkPenalty(slack)
		addVar(slack, violation)
		capTerms = append(capTerms, mip.Term{Var: slack, Coef: 1})
		bp.capSlackVars = append(bp.capSlackVars, slack)
		sp[si].capSlack = slack
		sp[si].capRow = m.AddConstr(fmt.Sprintf("capacity[s%d]", si), capTerms, mip.GE, cr)

		// (7) network affinity per DC, softened symmetrically.
		if len(s.res.Policy.DCAffinity) > 0 {
			theta := s.res.Policy.AffinityTheta
			if exactZero(theta) {
				theta = cfg.AffinityTheta
			}
			sp[si].affRow = make([][2]int, in.Region.NumDCs)
			sp[si].affSlack = make([]mip.Var, in.Region.NumDCs)
			for dc := 0; dc < in.Region.NumDCs; dc++ {
				sp[si].affRow[dc] = [2]int{-1, -1}
				sp[si].affSlack[dc] = -1
				a, ok := s.res.Policy.DCAffinity[dc]
				if !ok {
					a = 0
				}
				terms, isum := sumTerms(dcGroups[dc])
				if terms == nil {
					if a > theta {
						// Impossible affinity; leave to slack-free soft fail.
						continue
					}
					continue
				}
				hi := a*cr + theta*cr
				lo := a*cr - theta*cr
				viol := math.Max(math.Max(0, isum-hi), math.Max(0, lo-isum))
				// Soften with "no regress beyond the initial violation"
				// semantics (§3.5.1), plus a two-server allowance for the
				// discrete granularity of count variables: a hard row made
				// purely of integer variables would leave rounding
				// heuristics no room to breathe.
				slackUB := viol + 2
				sl := m.AddVar(fmt.Sprintf("affslack[s%d,d%d]", si, dc),
					cfg.SoftPenalty, 0, slackUB)
				m.MarkPenalty(sl)
				addVar(sl, viol)
				bp.affSlackVars = append(bp.affSlackVars, sl)
				sp[si].affSlack[dc] = sl
				up := append(append([]mip.Term(nil), terms...), mip.Term{Var: sl, Coef: -1})
				hiRow := m.AddConstr(fmt.Sprintf("aff-hi[s%d,d%d]", si, dc), up, mip.LE, hi)
				dn := append(append([]mip.Term(nil), terms...), mip.Term{Var: sl, Coef: 1})
				loRow := m.AddConstr(fmt.Sprintf("aff-lo[s%d,d%d]", si, dc), dn, mip.GE, lo)
				sp[si].affRow[dc] = [2]int{hiRow, loRow}
			}
		}
	}
	bp.sp = sp

	m.SetInitial(initX)
	bp.initX = initX
	bp.rev = m.Revision()
	stats.SolverBuild = clock.Since(t0)
	return bp
}

// specCompatible reports whether a cached spec and a fresh one differ at
// most in requested RRUs — the only per-spec change the patch path can
// absorb as an RHS update. Everything else (eligibility, class, policy,
// identity) shapes the model's rows and columns.
func specCompatible(old, cur *resSpec) bool {
	if old.outID != cur.outID || old.countBased != cur.countBased || old.isBuffer != cur.isBuffer {
		return false
	}
	a, b := &old.res, &cur.res
	if a.ID != b.ID || a.Name != b.Name || a.Owner != b.Owner || a.Class != b.Class ||
		a.HostProfile != b.HostProfile || a.Elastic != b.Elastic || a.CountBased != b.CountBased {
		return false
	}
	if len(a.EligibleTypes) != len(b.EligibleTypes) {
		return false
	}
	for i := range a.EligibleTypes {
		if a.EligibleTypes[i] != b.EligibleTypes[i] {
			return false
		}
	}
	p, q := &a.Policy, &b.Policy
	if !exactEqual(p.SpreadMSB, q.SpreadMSB) || !exactEqual(p.SpreadRack, q.SpreadRack) ||
		!exactEqual(p.AffinityTheta, q.AffinityTheta) || p.SingleDC != q.SingleDC {
		return false
	}
	if len(p.DCAffinity) != len(q.DCAffinity) {
		return false
	}
	for dc, f := range p.DCAffinity {
		g, ok := q.DCAffinity[dc]
		if !ok || !exactEqual(f, g) {
			return false
		}
	}
	return true
}

// serverIDsEqual reports whether two server lists are identical.
func serverIDsEqual(a, b []topology.ServerID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// removeSorted removes id from the ascending list, reporting success
// (insertion reuses repair.go's insertSorted).
func removeSorted(xs *[]topology.ServerID, id topology.ServerID) bool {
	s := *xs
	i := sort.Search(len(s), func(k int) bool { return s[k] >= id })
	if i >= len(s) || s[i] != id {
		return false
	}
	*xs = append(s[:i], s[i+1:]...)
	return true
}

// patch tries to bring the cached model forward to the given input in
// place, returning false when the change set breaks structure (the caller
// then cold-rebuilds and the half-mutated cache is discarded). On success
// the model is bit-for-bit what buildPhase would have produced: the change
// set is re-derived by comparing snapshots rather than trusted from the
// delta, and every mutation is either a bound flip, an RHS update, or a
// warm-start value — never a new row, column, or coefficient.
func (bp *builtPhase) patch(in Input, cfg Config, specs []resSpec, pool []topology.ServerID,
	targets []reservation.ID) bool {

	// Structural prechecks: same config, topology, subset, and spec list.
	if cfg != bp.cfg || in.Region != bp.region || bp.m.Revision() != bp.rev {
		return false
	}
	if len(in.States) != len(bp.states) || !serverIDsEqual(in.Subset, bp.subset) {
		return false
	}
	if len(specs) != len(bp.specs) {
		return false
	}
	touchedSpec := make([]bool, len(specs))
	for si := range specs {
		if !specCompatible(&bp.specs[si], &specs[si]) {
			return false
		}
		if !exactEqual(bp.specs[si].res.RRUs, specs[si].res.RRUs) {
			if (specs[si].res.RRUs > 0) != (bp.specs[si].res.RRUs > 0) {
				return false // active-spec flip changes which rows exist
			}
			bp.specs[si].res.RRUs = specs[si].res.RRUs
			touchedSpec[si] = true
		}
	}

	inPool := make([]bool, len(bp.states))
	for _, id := range pool {
		inPool[id] = true
	}

	// Move changed servers between existing groups. A server needing a group
	// that does not exist, or emptying the one it leaves, changes the
	// model's shape — bail to the cold path.
	wearAware := cfg.WearPenalty > 0
	groupTouched := make([]bool, len(bp.groups))
	var pairs [][2]int32 // (group, spec) cells whose initCount changed
	for i := range in.States {
		newSt := in.States[i]
		newCur := newSt.Current
		if bp.rackLevel {
			newCur = targets[i]
		}
		if newSt == bp.states[i] && inPool[i] == bp.inPool[i] && newCur == bp.curRef[i] {
			continue
		}
		id := topology.ServerID(i)
		if bp.inPool[i] {
			gi := int(bp.serverGroup[i])
			if gi < 0 || !removeSorted(&bp.groups[gi].servers, id) {
				return false
			}
			if si := bp.countSpec[i]; si >= 0 {
				bp.initCount[gi][si]--
				pairs = append(pairs, [2]int32{int32(gi), si})
			}
			groupTouched[gi] = true
			bp.serverGroup[i] = -1
			bp.countSpec[i] = -1
		}
		if inPool[i] {
			gi, ok := bp.groupIdx[serverKey(in, id, bp.rackLevel, cfg.DisableSymmetry, wearAware)]
			if !ok {
				return false
			}
			bp.groups[gi].servers = insertSorted(bp.groups[gi].servers, id)
			bp.serverGroup[i] = int32(gi)
			for _, si := range bp.specByID[newCur] {
				if bp.vval[gi][si] > 0 {
					bp.initCount[gi][si]++
					bp.countSpec[i] = int32(si)
					pairs = append(pairs, [2]int32{int32(gi), int32(si)})
					break
				}
			}
			groupTouched[gi] = true
		}
		bp.states[i] = newSt
		bp.curRef[i] = newCur
		bp.inPool[i] = inPool[i]
	}

	// Group-level patches: count-variable upper bounds and assignment RHS.
	for gi, touched := range groupTouched {
		if !touched {
			continue
		}
		g := bp.groups[gi]
		if len(g.servers) == 0 {
			return false // group vanished: cold build would drop it
		}
		live := float64(len(g.servers))
		for si := range bp.specs {
			if v := bp.nVar[gi][si]; v >= 0 {
				bp.m.SetVarBounds(v, 0, live)
			}
		}
		if r := bp.assignRow[gi]; r >= 0 {
			bp.m.SetRHS(r, live)
		}
	}

	// Cell-level patches: move-hinge RHS and warm-start counts. A hinge
	// appearing (X 0→positive) or vanishing (positive→0) is structural.
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	var prev [2]int32 = [2]int32{-1, -1}
	for _, p := range pairs {
		if p == prev {
			continue
		}
		prev = p
		gi, si := int(p[0]), int(p[1])
		x0 := bp.initCount[gi][si]
		if (x0 > 0) != (bp.moveVar[gi][si] >= 0) {
			return false
		}
		if r := bp.moveRow[gi][si]; r >= 0 {
			bp.m.SetRHS(r, x0)
		}
		bp.initX[bp.nVar[gi][si]] = x0
		touchedSpec[si] = true
	}

	// Spec-level patches: envelope/spread/capacity/affinity RHS, slack
	// bounds, and warm-start values for every spec whose demand or initial
	// counts moved.
	for si := range bp.specs {
		if touchedSpec[si] && bp.sp[si].active {
			bp.refreshSpec(si)
		}
	}
	bp.m.SetInitial(bp.initX)
	return true
}

// refreshSpec recomputes one active spec's demand-dependent rows exactly as
// the cold build would: per-scope initial sums are accumulated in ascending
// group order so every float matches bit-for-bit.
func (bp *builtPhase) refreshSpec(si int) {
	s := &bp.specs[si]
	sp := &bp.sp[si]
	cfg := bp.cfg
	cr := s.res.RRUs

	initTotal := 0.0
	msum := make([]float64, len(bp.msbs))
	rsum := make([]float64, len(bp.racks))
	dsum := make([]float64, bp.nDCs)
	for gi, g := range bp.groups {
		if bp.nVar[gi][si] < 0 {
			continue
		}
		v := bp.vval[gi][si] * bp.initCount[gi][si]
		initTotal += v
		msum[bp.msbIdx[g.msb]] += v
		if bp.rackLevel {
			rsum[bp.rackIdx[g.rack]] += v
		}
		dsum[g.dc] += v
	}

	initEnv := 0.0
	if sp.env >= 0 {
		for _, v := range msum {
			if v > initEnv {
				initEnv = v
			}
		}
		bp.initX[sp.env] = initEnv
	}
	if !s.isBuffer {
		alphaF := s.res.Policy.SpreadMSB
		if exactZero(alphaF) {
			alphaF = cfg.AlphaMSB
		}
		for k := range bp.msbs {
			row := sp.spreadRow[k]
			if row < 0 {
				continue
			}
			bp.m.SetRHS(row, -alphaF*cr)
			bp.initX[sp.spreadVar[k]] = math.Max(0, msum[k]-alphaF*cr)
		}
		if bp.rackLevel {
			alphaK := s.res.Policy.SpreadRack
			if exactZero(alphaK) {
				alphaK = cfg.AlphaRack
			}
			for k := range bp.racks {
				row := sp.rackRow[k]
				if row < 0 {
					continue
				}
				bp.m.SetRHS(row, -alphaK*cr)
				bp.initX[sp.rackVar[k]] = math.Max(0, rsum[k]-alphaK*cr)
			}
		}
	}

	initLHS := initTotal
	if sp.env >= 0 {
		initLHS -= initEnv
	}
	violation := math.Max(0, cr-initLHS)
	bp.m.SetRHS(sp.capRow, cr)
	bp.m.SetVarBounds(sp.capSlack, 0, violation)
	bp.initX[sp.capSlack] = violation

	if len(s.res.Policy.DCAffinity) > 0 {
		theta := s.res.Policy.AffinityTheta
		if exactZero(theta) {
			theta = cfg.AffinityTheta
		}
		for dc := 0; dc < bp.nDCs; dc++ {
			if sp.affRow[dc][0] < 0 {
				continue
			}
			a := s.res.Policy.DCAffinity[dc]
			hi := a*cr + theta*cr
			lo := a*cr - theta*cr
			viol := math.Max(math.Max(0, dsum[dc]-hi), math.Max(0, lo-dsum[dc]))
			bp.m.SetVarBounds(sp.affSlack[dc], 0, viol+2)
			bp.initX[sp.affSlack[dc]] = viol
			bp.m.SetRHS(sp.affRow[dc][0], hi)
			bp.m.SetRHS(sp.affRow[dc][1], lo)
		}
	}
}
