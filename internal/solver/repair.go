package solver

import (
	"math"
	"sort"

	"ras/internal/reservation"
	"ras/internal/topology"
)

// RepairStats counts the moves the cross-partition repair pass applied.
type RepairStats struct {
	// Acquired counts free servers pulled into a reservation (capacity
	// shortfalls, expression 6).
	Acquired int
	// Released counts surplus members returned to the free pool (embedded
	// buffers overshooting after recombination).
	Released int
	// Rebalanced counts paired release+acquire moves between MSBs (spread
	// and buffer goals, expressions 3–4).
	Rebalanced int
	// Stolen counts servers transferred directly from another reservation's
	// surplus: sub-MIPs split contested eligible capacity blindly, so after
	// the merge one reservation can starve while a same-class one holds
	// more than it needs.
	Stolen int
}

// Moves reports the total repair operations.
func (s RepairStats) Moves() int { return s.Acquired + s.Released + s.Rebalanced + s.Stolen }

// repairBudgetPerRes bounds the greedy steps spent on one reservation per
// sweep, and repairMaxSweeps bounds the sweeps, so a pathological instance
// cannot turn the cheap pass into a second solve.
const (
	repairBudgetPerRes = 64
	repairMaxSweeps    = 4
)

// RepairTargets is the pop backend's recombination pass: a deterministic
// greedy improvement of a merged multi-partition assignment against the
// phase-1 objective functional (the one Evaluate scores). Sub-problems
// satisfy their own spread and buffer rows, but the merged region can still
// be improved across partition boundaries — typically by trimming the k
// embedded buffers down to one region-wide one (each sub-MIP reserved its
// own max-MSB headroom, expression 6) and by draining MSBs that exceed the
// global αF·C_r spread threshold (expression 3).
//
// Per reservation (ascending ID), up to repairBudgetPerRes steps choose the
// best of four candidate moves — acquire a free eligible server in the
// least-loaded MSB, release a member from the most-loaded MSB, both at once
// (a rebalance), or steal an eligible server from another reservation's
// surplus (contested eligibility: partition-local solves can hand the same
// scarce server class to whichever reservation bid locally) — and apply it
// only if it strictly lowers the exact combined objective of the touched
// reservations (spread + buffer + capacity slack + stability + wear deltas).
// All scans run over index-sorted slices; the pass is a pure function of its
// inputs. Shared-buffer and unusable servers are never touched.
func RepairTargets(in Input, cfg Config, targets []reservation.ID) RepairStats {
	cfg = cfg.withDefaults(in.Region)
	var stats RepairStats

	// The repaired rows are the same specs Evaluate scores: user
	// reservations plus the per-type shared-buffer rows. The buffer rows
	// matter because their largest-remainder sizing is not additive — k
	// sub-solves each round their own sub-fleet, so the merged per-type
	// buffer counts miss the region-wide targets by ±1 per type, each miss
	// a full SoftPenalty.
	specs := buildSpecs(in, cfg)
	order := make([]int, 0, len(specs))
	for si := range specs {
		if specs[si].res.RRUs <= 0 {
			continue
		}
		order = append(order, si)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &specs[order[i]], &specs[order[j]]
		if a.isBuffer != b.isBuffer {
			// Reservations first: buffer shortfalls restock from whatever
			// the guaranteed rows just released.
			return !a.isBuffer
		}
		if a.isBuffer {
			return order[i] < order[j] // builder order: ascending hardware type
		}
		return a.res.ID < b.res.ID
	})

	// Sweep until a full pass applies nothing (bounded): a reservation
	// trimming its surplus frees servers an earlier-processed reservation's
	// shortfall can only pick up on the next sweep.
	free := usableFreeServers(in, targets)
	for sweep := 0; sweep < repairMaxSweeps; sweep++ {
		before := stats.Moves()
		for _, si := range order {
			free = repairSpec(in, cfg, targets, specs[si], free, &stats)
		}
		if stats.Moves() == before {
			break
		}
	}
	return stats
}

// resView is the mutable per-reservation state the greedy loop updates.
type resView struct {
	spec    resSpec
	cr      float64
	alphaF  float64
	sumMSB  []float64
	total   float64
	members [][]topology.ServerID // per MSB, ascending
}

// localCost is the reservation's share of the phase-1 objective (stability
// and wear are handled incrementally as move deltas). The second return is
// a strictly convex tiebreaker — the sum of squared MSB loads — compared
// lexicographically after the cost: when several MSBs tie at the envelope,
// a single move cannot lower τ·max (zero cost delta), but moves that
// equalize loads strictly shrink the squared sum and walk the plateau until
// the envelope can actually drop.
func (v *resView) localCost(cfg Config) (cost, sq float64) {
	if v.spec.isBuffer {
		// Buffer rows have no spread goals and no envelope subtraction
		// (expression 6 reduces to total ≥ C_r): cost is purely the
		// unmet-capacity penalty, and the plateau tiebreaker is pinned to
		// zero so cost-neutral churn is never accepted.
		return cfg.SoftPenalty * math.Max(0, v.cr-v.total), 0
	}
	env := 0.0
	spread := 0.0
	for _, s := range v.sumMSB {
		if s > env {
			env = s
		}
		spread += cfg.Beta * math.Max(0, s-v.alphaF*v.cr)
		sq += s * s
	}
	return spread + cfg.Tau*env + cfg.SoftPenalty*math.Max(0, v.cr-(v.total-env)), sq
}

// buildView assembles a spec's mutable repair state from the current
// targets: per-MSB loads and sorted member lists over usable servers the
// spec values. Every per-type shared-buffer spec shares the SharedBuffer
// target ID; the specValue filter keeps each view on its own type.
func buildView(in Input, cfg Config, targets []reservation.ID, spec resSpec) *resView {
	v := &resView{
		spec:   spec,
		cr:     spec.res.RRUs,
		alphaF: spec.res.Policy.SpreadMSB,
		sumMSB: make([]float64, in.Region.NumMSBs),
	}
	if exactZero(v.alphaF) {
		v.alphaF = cfg.AlphaMSB
	}
	v.members = make([][]topology.ServerID, in.Region.NumMSBs)
	for i := range in.Region.Servers {
		if targets[i] != spec.outID || unusable(&in.States[i]) {
			continue
		}
		srv := &in.Region.Servers[i]
		val := specValue(in, &v.spec, srv.Type, srv.DC)
		if val <= 0 {
			continue
		}
		v.sumMSB[srv.MSB] += val
		v.total += val
		v.members[srv.MSB] = append(v.members[srv.MSB], topology.ServerID(i))
	}
	return v
}

// repairSpec runs the greedy loop for one spec (a reservation or one
// per-type shared-buffer row) and returns the updated free pool.
func repairSpec(in Input, cfg Config, targets []reservation.ID,
	spec resSpec, free []topology.ServerID, stats *RepairStats) []topology.ServerID {

	v := buildView(in, cfg, targets, spec)

	// value/moveCost/wearCost of a single server under this reservation.
	value := func(id topology.ServerID) float64 {
		srv := &in.Region.Servers[id]
		return specValue(in, &v.spec, srv.Type, srv.DC)
	}
	moveDelta := func(id topology.ServerID, acquiring bool) float64 {
		st := &in.States[id]
		d := 0.0
		if st.Current == v.spec.outID {
			// Releasing a current member starts paying M_s; re-acquiring one
			// stops paying it. Servers current elsewhere already pay their
			// move either way.
			m := cfg.MoveCostIdle
			if st.Containers > 0 && st.LoanedTo == reservation.Unassigned {
				m = cfg.MoveCostInUse
			}
			if acquiring {
				d -= m
			} else {
				d += m
			}
		}
		if cfg.WearPenalty > 0 && !v.spec.isBuffer &&
			in.Region.Catalog.Type(in.Region.Servers[id].Type).FlashTB > 0 {
			if b := wearBucket(st.FlashWear); b > 0 {
				w := cfg.WearPenalty * float64(b)
				if acquiring {
					d += w
				} else {
					d -= w
				}
			}
		}
		return d
	}

	// Free servers grouped per MSB (ascending within each), maintained as
	// moves are applied so every pick scans only one MSB's list.
	freeByMSB := make([][]topology.ServerID, in.Region.NumMSBs)
	for _, id := range free {
		m := in.Region.Servers[id].MSB
		freeByMSB[m] = append(freeByMSB[m], id)
	}

	// pickAcquireFor selects the free server the view's spec values in its
	// least-loaded MSB (ties: lower MSB, then recover-own-current first, then
	// lower ID). Used for this reservation's acquires and for donor backfills
	// in compound steals.
	pickAcquireFor := func(view *resView) (topology.ServerID, int) {
		viewVal := func(id topology.ServerID) float64 {
			srv := &in.Region.Servers[id]
			return specValue(in, &view.spec, srv.Type, srv.DC)
		}
		bestMSB, found := -1, false
		for m := 0; m < in.Region.NumMSBs; m++ {
			has := false
			for _, id := range freeByMSB[m] {
				if viewVal(id) > 0 {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			if !found || view.sumMSB[m] < view.sumMSB[bestMSB] {
				bestMSB, found = m, true
			}
		}
		if !found {
			return -1, -1
		}
		best := topology.ServerID(-1)
		bestOwn := false
		for _, id := range freeByMSB[bestMSB] {
			if viewVal(id) <= 0 {
				continue
			}
			own := in.States[id].Current == view.spec.outID
			if best < 0 || (own && !bestOwn) {
				best, bestOwn = id, own
			}
		}
		return best, bestMSB
	}
	pickAcquire := func() (topology.ServerID, int) { return pickAcquireFor(v) }
	// pickRelease selects a member of the most-loaded MSB (ties: lower MSB;
	// within it, foreign-current members first so releases stay free, then
	// lower ID).
	pickRelease := func() (topology.ServerID, int) {
		bestMSB, found := -1, false
		for m := 0; m < in.Region.NumMSBs; m++ {
			if len(v.members[m]) == 0 {
				continue
			}
			if !found || v.sumMSB[m] > v.sumMSB[bestMSB] {
				bestMSB, found = m, true
			}
		}
		if !found {
			return -1, -1
		}
		best := topology.ServerID(-1)
		bestForeign := false
		for _, id := range v.members[bestMSB] {
			foreign := in.States[id].Current != v.spec.outID
			if best < 0 || (foreign && !bestForeign) {
				best, bestForeign = id, foreign
			}
		}
		return best, bestMSB
	}

	// Steal bookkeeping: servers assigned to other guaranteed reservations
	// that this spec could use, grouped per MSB (ascending). Donor views are
	// built lazily and kept in sync as steals are applied, so every steal's
	// delta includes the donor's exact cost change. Buffer rows use this
	// too: when a short type has no free stock, the compound variant takes
	// a member from a reservation that can backfill from the free pool with
	// a type the buffer row cannot use.
	donorOf := map[reservation.ID]*reservation.Reservation{}
	stealByMSB := make([][]topology.ServerID, in.Region.NumMSBs)
	for ri := range in.Reservations {
		d := &in.Reservations[ri]
		if d.Elastic || d.RRUs <= 0 || d.ID == spec.outID {
			continue
		}
		donorOf[d.ID] = d
	}
	for i := range in.Region.Servers {
		if donorOf[targets[i]] == nil || unusable(&in.States[i]) {
			continue
		}
		id := topology.ServerID(i)
		if value(id) <= 0 {
			continue
		}
		stealByMSB[in.Region.Servers[i].MSB] = append(stealByMSB[in.Region.Servers[i].MSB], id)
	}
	donorViews := map[reservation.ID]*resView{}
	donorView := func(id reservation.ID) *resView {
		dv := donorViews[id]
		if dv == nil {
			d := donorOf[id]
			dv = buildView(in, cfg, targets, resSpec{res: *d, outID: d.ID, countBased: d.CountBased})
			donorViews[id] = dv
		}
		return dv
	}

	applyAcquire := func(id topology.ServerID, msb int) {
		targets[id] = v.spec.outID
		val := value(id)
		v.sumMSB[msb] += val
		v.total += val
		v.members[msb] = insertSorted(v.members[msb], id)
		free = removeID(free, id)
		freeByMSB[msb] = removeID(freeByMSB[msb], id)
	}
	applyRelease := func(id topology.ServerID, msb int) {
		targets[id] = reservation.Unassigned
		val := value(id)
		v.sumMSB[msb] -= val
		v.total -= val
		v.members[msb] = removeID(v.members[msb], id)
		free = insertSorted(free, id)
		freeByMSB[msb] = insertSorted(freeByMSB[msb], id)
	}
	applySteal := func(id topology.ServerID, msb int) {
		dv := donorView(targets[id])
		srv := &in.Region.Servers[id]
		if dval := specValue(in, &dv.spec, srv.Type, srv.DC); dval > 0 {
			dv.sumMSB[msb] -= dval
			dv.total -= dval
			dv.members[msb] = removeID(dv.members[msb], id)
		}
		targets[id] = v.spec.outID
		val := value(id)
		v.sumMSB[msb] += val
		v.total += val
		v.members[msb] = insertSorted(v.members[msb], id)
		stealByMSB[msb] = removeID(stealByMSB[msb], id)
	}
	// applyDonorAcquire backfills the donor from the free pool after a
	// compound steal.
	applyDonorAcquire := func(id topology.ServerID, msb int, donorID reservation.ID) {
		dv := donorView(donorID)
		srv := &in.Region.Servers[id]
		bval := specValue(in, &dv.spec, srv.Type, srv.DC)
		dv.sumMSB[msb] += bval
		dv.total += bval
		dv.members[msb] = insertSorted(dv.members[msb], id)
		targets[id] = donorID
		free = removeID(free, id)
		freeByMSB[msb] = removeID(freeByMSB[msb], id)
		if value(id) > 0 {
			stealByMSB[msb] = insertSorted(stealByMSB[msb], id)
		}
	}

	for step := 0; step < repairBudgetPerRes; step++ {
		curCost, curSq := v.localCost(cfg)

		type candidate struct {
			kind    int // 0 acquire, 1 release, 2 rebalance, 3 steal, 4 steal+backfill
			acq     topology.ServerID
			acqMSB  int
			rel     topology.ServerID
			relMSB  int
			donor   reservation.ID    // kinds 3–4: reservation the server leaves
			bf      topology.ServerID // kind 4: free server the donor takes instead
			bfMSB   int
			delta   float64
			sqDelta float64
			counted *int
		}
		var cands []candidate
		// try scores one candidate by temporarily applying its load change:
		// delta is the exact local objective change (including the server
		// move/wear costs), sqDelta the plateau tiebreaker change.
		try := func(c candidate, moveCost float64, apply, undo func()) {
			apply()
			cost, sq := v.localCost(cfg)
			undo()
			c.delta = cost - curCost + moveCost
			c.sqDelta = sq - curSq
			cands = append(cands, c)
		}

		acqID, acqMSB := pickAcquire()
		relID, relMSB := pickRelease()
		if acqID >= 0 {
			av := value(acqID)
			try(candidate{kind: 0, acq: acqID, acqMSB: acqMSB, counted: &stats.Acquired},
				moveDelta(acqID, true),
				func() { v.sumMSB[acqMSB] += av; v.total += av },
				func() { v.sumMSB[acqMSB] -= av; v.total -= av })
		}
		if relID >= 0 {
			rv := value(relID)
			try(candidate{kind: 1, rel: relID, relMSB: relMSB, counted: &stats.Released},
				moveDelta(relID, false),
				func() { v.sumMSB[relMSB] -= rv; v.total -= rv },
				func() { v.sumMSB[relMSB] += rv; v.total += rv })
		}
		if acqID >= 0 && relID >= 0 && acqMSB != relMSB {
			av, rv := value(acqID), value(relID)
			try(candidate{kind: 2, acq: acqID, acqMSB: acqMSB, rel: relID, relMSB: relMSB, counted: &stats.Rebalanced},
				moveDelta(acqID, true)+moveDelta(relID, false),
				func() { v.sumMSB[acqMSB] += av; v.sumMSB[relMSB] -= rv; v.total += av - rv },
				func() { v.sumMSB[acqMSB] -= av; v.sumMSB[relMSB] += rv; v.total -= av - rv })
		}
		// bfPick caches each donor's backfill pick for this step: the free
		// pool and the donor views only change when a move is applied, so
		// one pickAcquireFor per donor covers every MSB's compound variant.
		bfOf := map[reservation.ID]topology.ServerID{}
		bfMSBOf := map[reservation.ID]int{}
		bfPick := func(donorID reservation.ID) (topology.ServerID, int) {
			if id, ok := bfOf[donorID]; ok {
				return id, bfMSBOf[donorID]
			}
			id, msb := pickAcquireFor(donorView(donorID))
			bfOf[donorID], bfMSBOf[donorID] = id, msb
			return id, msb
		}
		// Steal candidates: one per (MSB, donor) pair in the steal pool —
		// the donor's lowest-ID stealable server there — each scored with
		// the exact combined change of both touched reservations plus the
		// server's stability change (wear is per-assigned-server, so a
		// transfer leaves it unchanged). Scanning every pair matters: the
		// only acceptable steal is often one from the donor's most-loaded
		// MSB, where its total and envelope drop together and its
		// embedded-buffer row keeps its slack — a single least-loaded-MSB
		// pick never generates it. Each pair also offers a compound variant
		// where the donor immediately backfills from the free pool: the
		// chain that routes capacity across eligibility classes (the stolen
		// server's class is contested, the backfill's is not). The global
		// potential Σ(cost, Σ S²) still strictly decreases on acceptance,
		// so sweeps cannot cycle through mutual theft.
		var stealDonors []reservation.ID // per-step dedup, reset per MSB
		for stealMSB := 0; stealMSB < in.Region.NumMSBs; stealMSB++ {
			stealDonors = stealDonors[:0]
			for _, stealID := range stealByMSB[stealMSB] {
				donorID := targets[stealID]
				dup := false
				for _, d := range stealDonors {
					if d == donorID {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				stealDonors = append(stealDonors, donorID)
				dv := donorView(donorID)
				srv := &in.Region.Servers[stealID]
				dval := specValue(in, &dv.spec, srv.Type, srv.DC)
				av := value(stealID)
				dCost0, dSq0 := dv.localCost(cfg)
				dv.sumMSB[stealMSB] -= dval
				dv.total -= dval
				dCost1, dSq1 := dv.localCost(cfg)
				bfID, bfMSB := bfPick(donorID)
				dCost2, dSq2, bfMove := 0.0, 0.0, 0.0
				if bfID >= 0 {
					bsrv := &in.Region.Servers[bfID]
					bval := specValue(in, &dv.spec, bsrv.Type, bsrv.DC)
					dv.sumMSB[bfMSB] += bval
					dv.total += bval
					dCost2, dSq2 = dv.localCost(cfg)
					dv.sumMSB[bfMSB] -= bval
					dv.total -= bval
					bst := &in.States[bfID]
					if bst.Current == donorID {
						bm := cfg.MoveCostIdle
						if bst.Containers > 0 && bst.LoanedTo == reservation.Unassigned {
							bm = cfg.MoveCostInUse
						}
						bfMove -= bm // donor recovers its own server: move charge ends
					}
					if cfg.WearPenalty > 0 && in.Region.Catalog.Type(bsrv.Type).FlashTB > 0 {
						if b := wearBucket(bst.FlashWear); b > 0 {
							bfMove += cfg.WearPenalty * float64(b)
						}
					}
				}
				dv.sumMSB[stealMSB] += dval
				dv.total += dval
				st := &in.States[stealID]
				m := cfg.MoveCostIdle
				if st.Containers > 0 && st.LoanedTo == reservation.Unassigned {
					m = cfg.MoveCostInUse
				}
				stab := 0.0
				switch st.Current {
				case v.spec.outID:
					stab = -m // coming home: its move charge disappears
				case donorID:
					stab = +m // leaving its home reservation: a new move
				}
				try(candidate{kind: 3, acq: stealID, acqMSB: stealMSB, donor: donorID, counted: &stats.Stolen},
					(dCost1-dCost0)+stab,
					func() { v.sumMSB[stealMSB] += av; v.total += av },
					func() { v.sumMSB[stealMSB] -= av; v.total -= av })
				// Fold the donor's tiebreaker change in as well so plateau
				// comparisons stay globally consistent.
				cands[len(cands)-1].sqDelta += dSq1 - dSq0
				if bfID >= 0 {
					try(candidate{kind: 4, acq: stealID, acqMSB: stealMSB, donor: donorID,
						bf: bfID, bfMSB: bfMSB, counted: &stats.Stolen},
						(dCost2-dCost0)+stab+bfMove,
						func() { v.sumMSB[stealMSB] += av; v.total += av },
						func() { v.sumMSB[stealMSB] -= av; v.total -= av })
					cands[len(cands)-1].sqDelta += dSq2 - dSq0
				}
			}
		}

		// Lexicographic acceptance: a strict cost improvement, or a
		// cost-neutral move that strictly equalizes MSB loads (plateau
		// walking). Both strictly decrease (cost, Σ S²), so the loop cannot
		// cycle.
		best := -1
		for ci := range cands {
			c := &cands[ci]
			improving := c.delta < -1e-9 || (c.delta < 1e-9 && c.sqDelta < -1e-9)
			if !improving {
				continue
			}
			if best < 0 || c.delta < cands[best].delta-1e-9 ||
				(c.delta < cands[best].delta+1e-9 && c.sqDelta < cands[best].sqDelta-1e-9) {
				best = ci
			}
		}
		if best < 0 {
			return free
		}
		c := cands[best]
		switch c.kind {
		case 0:
			applyAcquire(c.acq, c.acqMSB)
		case 1:
			applyRelease(c.rel, c.relMSB)
		case 2:
			applyRelease(c.rel, c.relMSB)
			applyAcquire(c.acq, c.acqMSB)
		case 3:
			applySteal(c.acq, c.acqMSB)
		case 4:
			applySteal(c.acq, c.acqMSB)
			applyDonorAcquire(c.bf, c.bfMSB, c.donor)
			stats.Acquired++ // the backfill half of the compound move
		}
		*c.counted++
	}
	return free
}

// insertSorted inserts id into an ascending slice, keeping it ascending.
func insertSorted(s []topology.ServerID, id topology.ServerID) []topology.ServerID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// removeID removes id from an ascending slice (no-op if absent).
func removeID(s []topology.ServerID, id topology.ServerID) []topology.ServerID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
