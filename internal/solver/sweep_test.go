package solver

import (
	"os"
	"strconv"
	"testing"
)

// TestInvariantSweep runs the randomized invariant check over a wide seed
// range. It is gated behind RAS_SWEEP_SEEDS because the full sweep takes
// minutes; CI runs the fixed 1..15 range in TestQuickSolveInvariants.
func TestInvariantSweep(t *testing.T) {
	nStr := os.Getenv("RAS_SWEEP_SEEDS")
	if nStr == "" {
		t.Skip("set RAS_SWEEP_SEEDS=N to sweep N seeds")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		if !invariantCheck(t, seed) {
			t.Errorf("invariants violated at seed %d", seed)
			failures++
			if failures > 5 {
				t.Fatal("too many failures; stopping sweep")
			}
		}
	}
}
