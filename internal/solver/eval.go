package solver

import (
	"math"

	"ras/internal/reservation"
	"ras/internal/topology"
)

// Eval is the region-wide phase-1 objective of an assignment, broken down by
// the MIP's objective terms (§3.5.3 expressions 1, 3, 4, 6, 7 at MSB
// granularity — rack goals are a phase-2 refinement and not part of the
// phase-1 objective this mirrors).
type Eval struct {
	// Objective is the total: Stability + Spread + Buffer + CapSlack +
	// AffSlack + Wear. It is directly comparable to PhaseStats.Objective of
	// a phase-1 solve over the same input.
	Objective float64
	// Stability is Σ M_s over servers leaving their current reservation
	// (expression 1).
	Stability float64
	// Spread is β·Σ max(0, Σ_MSB − αF·C_r) (expression 3).
	Spread float64
	// Buffer is τ·Σ_r max_MSB Σ (expression 4).
	Buffer float64
	// CapSlack prices unmet capacity: SoftPenalty per RRU short of the
	// embedded-buffer capacity row (expression 6).
	CapSlack float64
	// AffSlack prices DC-affinity violations (expression 7).
	AffSlack float64
	// Wear is the IO-aware placement cost (§5.2); zero unless
	// Config.WearPenalty is set.
	Wear float64
	// Unserviceable is demand no usable server in the region can serve at
	// all. Like a direct solve's PhaseStats.SoftSlack bookkeeping it is NOT
	// part of Objective: the MIP drops such specs before pricing them.
	Unserviceable float64
}

// specValue is V_{s,r} for a server of the given hardware type and DC under
// spec s, honouring the SingleDC policy (the same eligibility the MIP bakes
// into vval).
func specValue(in Input, s *resSpec, typeIdx, dc int) float64 {
	if s.res.Policy.SingleDC >= 0 && dc != s.res.Policy.SingleDC {
		return 0
	}
	return rruValue(in.Region.Catalog, typeIdx, s)
}

// Evaluate scores a full-region assignment with the phase-1 objective
// functional — the yardstick the pop backend uses so that k recombined
// sub-solutions and one monolithic solve are compared on identical terms.
// Summing sub-problem objectives would overcount the per-reservation τ·max
// buffer terms; Evaluate recomputes everything from the merged Targets.
//
// Only usable servers count (the availability constraint), and every term
// replicates the MIP's construction: servers attribute to the first
// eligible spec sharing their target ID (buffer specs are per-type), specs
// with no eligible usable server anywhere are reported Unserviceable
// instead of priced, and affinity violations are priced only in DCs with
// eligible capacity.
func Evaluate(in Input, cfg Config, targets []reservation.ID) Eval {
	cfg = cfg.withDefaults(in.Region)
	specs := buildSpecs(in, cfg)
	nS := len(specs)
	var ev Eval

	specByID := make(map[reservation.ID][]int, nS)
	for si := range specs {
		specByID[specs[si].outID] = append(specByID[specs[si].outID], si)
	}
	// firstSpec resolves the spec a server of (type, dc) belongs to under
	// reservation id — the initCount attribution rule of solvePhase.
	firstSpec := func(id reservation.ID, typeIdx, dc int) int {
		for _, si := range specByID[id] {
			if specValue(in, &specs[si], typeIdx, dc) > 0 {
				return si
			}
		}
		return -1
	}

	// Eligible usable capacity per spec (region total and per DC) decides
	// which specs are serviceable and which DCs can carry affinity.
	eligTotal := make([]float64, nS)
	eligDC := make([][]float64, nS)
	for si := range specs {
		eligDC[si] = make([]float64, in.Region.NumDCs)
	}
	// Assignment sums per spec.
	sumMSB := make([][]float64, nS)
	for si := range specs {
		sumMSB[si] = make([]float64, in.Region.NumMSBs)
	}
	sumDC := make([][]float64, nS)
	for si := range specs {
		sumDC[si] = make([]float64, in.Region.NumDCs)
	}
	total := make([]float64, nS)

	for i := range in.Region.Servers {
		st := &in.States[i]
		if unusable(st) {
			continue
		}
		srv := &in.Region.Servers[i]
		for si := range specs {
			if v := specValue(in, &specs[si], srv.Type, srv.DC); v > 0 {
				eligTotal[si] += v
				eligDC[si][srv.DC] += v
			}
		}
		// Stability (expression 1): a server counted into its current spec
		// that the assignment moves elsewhere costs M_s.
		if cur := firstSpec(st.Current, srv.Type, srv.DC); cur >= 0 && targets[i] != specs[cur].outID {
			if st.Containers > 0 && st.LoanedTo == reservation.Unassigned {
				ev.Stability += cfg.MoveCostInUse
			} else {
				ev.Stability += cfg.MoveCostIdle
			}
		}
		si := firstSpec(targets[i], srv.Type, srv.DC)
		if si < 0 {
			continue
		}
		v := specValue(in, &specs[si], srv.Type, srv.DC)
		sumMSB[si][srv.MSB] += v
		sumDC[si][srv.DC] += v
		total[si] += v
		if cfg.WearPenalty > 0 && !specs[si].isBuffer &&
			in.Region.Catalog.Type(srv.Type).FlashTB > 0 {
			if b := wearBucket(st.FlashWear); b > 0 {
				ev.Wear += cfg.WearPenalty * float64(b)
			}
		}
	}

	for si := range specs {
		s := &specs[si]
		cr := s.res.RRUs
		if cr <= 0 {
			continue
		}
		if exactZero(eligTotal[si]) {
			ev.Unserviceable += cr
			continue
		}
		env := 0.0
		for _, v := range sumMSB[si] {
			if v > env {
				env = v
			}
		}
		capLHS := total[si]
		if !s.isBuffer {
			alphaF := s.res.Policy.SpreadMSB
			if exactZero(alphaF) {
				alphaF = cfg.AlphaMSB
			}
			for _, v := range sumMSB[si] {
				ev.Spread += cfg.Beta * math.Max(0, v-alphaF*cr)
			}
			ev.Buffer += cfg.Tau * env
			capLHS -= env
		}
		ev.CapSlack += cfg.SoftPenalty * math.Max(0, cr-capLHS)

		if len(s.res.Policy.DCAffinity) > 0 {
			theta := s.res.Policy.AffinityTheta
			if exactZero(theta) {
				theta = cfg.AffinityTheta
			}
			for dc := 0; dc < in.Region.NumDCs; dc++ {
				if exactZero(eligDC[si][dc]) {
					continue
				}
				a, ok := s.res.Policy.DCAffinity[dc]
				if !ok {
					a = 0
				}
				hi := a*cr + theta*cr
				lo := a*cr - theta*cr
				viol := math.Max(math.Max(0, sumDC[si][dc]-hi), math.Max(0, lo-sumDC[si][dc]))
				ev.AffSlack += cfg.SoftPenalty * viol
			}
		}
	}
	ev.Objective = ev.Stability + ev.Spread + ev.Buffer + ev.CapSlack + ev.AffSlack + ev.Wear
	return ev
}

// usableFreeServers lists the usable servers an assignment leaves in the
// free pool, ascending — the acquisition pool for the repair pass.
func usableFreeServers(in Input, targets []reservation.ID) []topology.ServerID {
	var out []topology.ServerID
	for i := range in.Region.Servers {
		if targets[i] == reservation.Unassigned && !unusable(&in.States[i]) {
			out = append(out, topology.ServerID(i))
		}
	}
	return out
}
