package solver

import (
	"context"
	"testing"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
)

// TestRRUvsCountSemantics: an RRU-based Web reservation needs fewer GenIII
// servers than GenI servers for the same capacity; a count-based one treats
// all eligible servers equally.
func TestRRUvsCountSemantics(t *testing.T) {
	region := testRegion(t, 1, 2, 6, 8, 21)
	rruRes := []reservation.Reservation{
		{ID: 0, Name: "rru", Class: hardware.Web, RRUs: 20, Policy: reservation.DefaultPolicy()},
	}
	res, err := Solve(context.Background(), freshInput(region, rruRes), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Check the RRU sum meets the requirement even though the server count
	// may be below 20 (new-generation servers are worth > 1 RRU each).
	servers, rrus := 0, 0.0
	for i, tgt := range res.Targets {
		if tgt == 0 {
			servers++
			rrus += hardware.RRU(region.Catalog.Type(region.Servers[i].Type), hardware.Web)
		}
	}
	if rrus < 20 {
		t.Fatalf("RRU capacity %f < 20", rrus)
	}
	if float64(servers) >= rrus*1.5 {
		t.Fatalf("server count %d implausibly high for %f RRUs", servers, rrus)
	}
}

// TestEligibleTypesRestriction: a reservation restricted to one hardware
// type only ever receives that type.
func TestEligibleTypesRestriction(t *testing.T) {
	region := testRegion(t, 1, 3, 6, 6, 22)
	// Pick the Web-eligible type most common in this region so the request
	// is trivially satisfiable.
	counts := make(map[int]int)
	for i := range region.Servers {
		counts[region.Servers[i].Type]++
	}
	want, best := -1, 0
	for _, tt := range region.Catalog.EligibleTypes(hardware.Web) {
		if counts[tt] > best {
			want, best = tt, counts[tt]
		}
	}
	if best < 10 {
		t.Skip("region lacks a well-populated Web-eligible type")
	}
	rsvs := []reservation.Reservation{
		{ID: 0, Name: "narrow", Class: hardware.Web, RRUs: 3, CountBased: true,
			EligibleTypes: []int{want}, Policy: reservation.DefaultPolicy()},
	}
	res, err := Solve(context.Background(), freshInput(region, rsvs), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i, tgt := range res.Targets {
		if tgt == 0 {
			if region.Servers[i].Type != want {
				t.Fatalf("server %d of type %d assigned; only type %d eligible",
					i, region.Servers[i].Type, want)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("nothing assigned under type restriction")
	}
}

// TestLoanedServersAreCheapToMove: servers loaned to elastic reservations
// count as unused moves even with containers running.
func TestLoanedServersAreCheapToMove(t *testing.T) {
	region := testRegion(t, 1, 2, 3, 4, 23)
	in := freshInput(region, []reservation.Reservation{
		{ID: 0, Name: "web", Class: hardware.Web, RRUs: 6, CountBased: true, Policy: reservation.DefaultPolicy()},
	})
	// One server currently in reservation 7 (absent from input → will be
	// reclaimed), loaned out with containers.
	in.States[0].Current = 7
	in.States[0].LoanedTo = 9
	in.States[0].Containers = 4
	res, err := Solve(context.Background(), in, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves.InUse != 0 {
		t.Fatalf("loaned server move counted as in-use: %+v", res.Moves)
	}
}

// TestSolverConfigDefaults: the zero config resolves to documented values.
func TestSolverConfigDefaults(t *testing.T) {
	region := testRegion(t, 1, 2, 2, 2, 24)
	cfg := Config{}.withDefaults(region)
	if cfg.MoveCostInUse != 10 || cfg.MoveCostIdle != 1 {
		t.Fatalf("move costs %v/%v, want 10/1 (the paper's 10x ratio)", cfg.MoveCostInUse, cfg.MoveCostIdle)
	}
	if cfg.SharedBufferFraction != 0.02 {
		t.Fatalf("shared buffer fraction %v, want 0.02", cfg.SharedBufferFraction)
	}
	if cfg.AlphaMSB <= 0 || cfg.AlphaMSB > 1 || cfg.AlphaRack <= 0 {
		t.Fatalf("alpha defaults: %v / %v", cfg.AlphaMSB, cfg.AlphaRack)
	}
	if cfg.SoftPenalty <= cfg.MoveCostInUse {
		t.Fatal("soft penalty must dominate move costs")
	}
}

// TestPhase2Selection: pickPhase2 prefers reservations with the worst
// rack-level concentration.
func TestPhase2Selection(t *testing.T) {
	region := testRegion(t, 1, 2, 6, 6, 25)
	in := freshInput(region, nil)
	cfg := Config{}.withDefaults(region)
	specs := []resSpec{
		{res: reservation.Reservation{ID: 0, Name: "concentrated", Class: hardware.Web, RRUs: 10, CountBased: true}, outID: 0, countBased: true},
		{res: reservation.Reservation{ID: 1, Name: "spread", Class: hardware.Web, RRUs: 10, CountBased: true}, outID: 1, countBased: true},
	}
	targets := make([]reservation.ID, len(region.Servers))
	for i := range targets {
		targets[i] = reservation.Unassigned
	}
	// Reservation 0: all in one rack. Reservation 1: one per rack.
	rack0 := 0
	placed0, lastRack := 0, -1
	for i := range region.Servers {
		if region.Servers[i].Rack == rack0 && placed0 < 10 {
			targets[i] = 0
			placed0++
		} else if region.Servers[i].Rack != lastRack && region.Servers[i].Rack != rack0 {
			targets[i] = 1
			lastRack = region.Servers[i].Rack
		}
	}
	subset := pickPhase2(in, cfg, specs, targets)
	if !subset[0] {
		t.Fatalf("phase 2 did not select the rack-concentrated reservation: %v", subset)
	}
}

// TestUnusableClassification verifies the §3.3.1 rule: unplanned events are
// filtered, planned maintenance stays usable.
func TestUnusableClassification(t *testing.T) {
	cases := map[broker.UnavailKind]bool{
		broker.Available:          false,
		broker.PlannedMaintenance: false,
		broker.RandomFailure:      true,
		broker.ToRFailure:         true,
		broker.CorrelatedFailure:  true,
	}
	for kind, want := range cases {
		st := broker.ServerState{Unavail: kind}
		if got := unusable(&st); got != want {
			t.Errorf("unusable(%v) = %v, want %v", kind, got, want)
		}
	}
}

// TestSharedBufferSizedByLargestRemainder: the per-type buffer totals match
// the configured fraction without per-type ceil inflation.
func TestSharedBufferSizedByLargestRemainder(t *testing.T) {
	region := testRegion(t, 1, 3, 6, 6, 26)
	in := freshInput(region, nil)
	cfg := Config{SharedBufferFraction: 0.02}.withDefaults(region)
	specs := buildSpecs(in, cfg)
	total := 0.0
	for _, s := range specs {
		if s.isBuffer {
			total += s.res.RRUs
		}
	}
	want := float64(len(region.Servers)) * 0.02
	if total < want-1 || total > want+1 {
		t.Fatalf("buffer total %v, want ≈ %v (2%% of %d servers)", total, want, len(region.Servers))
	}
}
