package solver

import (
	"context"
	"testing"
	"time"

	"ras/internal/hardware"
	"ras/internal/reservation"
)

// TestWearAwarePlacement exercises the §5.2 IO-aware extension: with
// WearPenalty set, a flash-consuming reservation must land on fresher
// drives; with it unset, wear must not split symmetry groups.
func TestWearAwarePlacement(t *testing.T) {
	region := testRegion(t, 1, 2, 6, 8, 41)
	cat := region.Catalog

	// Flash-only eligibility for a DataStore-style reservation.
	var flashTypes []int
	flashServers := 0
	for i := 0; i < cat.Len(); i++ {
		if cat.Type(i).FlashTB > 0 {
			flashTypes = append(flashTypes, i)
		}
	}
	for i := range region.Servers {
		if cat.Type(region.Servers[i].Type).FlashTB > 0 {
			flashServers++
		}
	}
	if flashServers < 8 {
		t.Skip("region lacks flash servers at this seed")
	}

	rsvs := []reservation.Reservation{{
		ID: 0, Name: "storage", Class: hardware.DataStore,
		RRUs: float64(flashServers) / 3, CountBased: true,
		EligibleTypes: flashTypes, Policy: reservation.DefaultPolicy(),
	}}

	in := freshInput(region, rsvs)
	// Mark half the flash fleet as heavily worn.
	worn := map[int]bool{}
	odd := false
	for i := range region.Servers {
		if cat.Type(region.Servers[i].Type).FlashTB > 0 {
			odd = !odd
			if odd {
				in.States[i].FlashWear = 0.9
				worn[i] = true
			}
		}
	}

	cfg := Config{
		Phase1TimeLimit: 6 * time.Second, Phase2TimeLimit: time.Second,
		MaxNodes: 120, SharedBufferFraction: -1,
		WearPenalty: 5, DisableRackPhase: true,
	}
	res, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assignedWorn, assignedFresh := 0, 0
	for i, tgt := range res.Targets {
		if tgt != 0 {
			continue
		}
		if worn[i] {
			assignedWorn++
		} else {
			assignedFresh++
		}
	}
	if assignedWorn+assignedFresh == 0 {
		t.Fatal("nothing assigned")
	}
	// With fresh capacity covering the request, worn drives should be
	// mostly avoided.
	if assignedWorn > assignedFresh/2 {
		t.Errorf("wear-aware placement used %d worn vs %d fresh flash servers", assignedWorn, assignedFresh)
	}

	// Control: with the penalty off, wear must not even enter the grouping.
	cfg.WearPenalty = 0
	res2, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Phase1.Groups > res.Phase1.Groups {
		t.Errorf("wear buckets leaked into grouping with WearPenalty=0: %d > %d groups",
			res2.Phase1.Groups, res.Phase1.Groups)
	}
}

func TestWearBucket(t *testing.T) {
	cases := map[float64]int{0: 0, 0.1: 0, 0.26: 1, 0.5: 2, 0.76: 3, 1.0: 3}
	for w, want := range cases {
		if got := wearBucket(w); got != want {
			t.Errorf("wearBucket(%v) = %d, want %d", w, got, want)
		}
	}
}
