package mip

import (
	"context"
	"testing"
)

// Repro: capacity row with penalty slack; adding one free integer unit
// should drive slack to zero.
func TestPenaltySlackRepaired(t *testing.T) {
	m := NewModel()
	x := m.AddIntVar("x", 0, 0, 10)   // count var, 10 available
	z := m.AddVar("z", 3, 0, Inf)     // envelope, tau=3
	s := m.AddVar("s", 1000, 0, 0.56) // penalty slack
	m.MarkPenalty(s)
	m.AddConstr("env", []Term{{z, 1}, {x, -0.5}}, GE, 0) // z >= x/2
	m.AddConstr("cap", []Term{{x, 1}, {z, -1}, {s, 1}}, GE, 4.56)
	m.AddConstr("assign", []Term{{x, 1}}, LE, 10)
	m.SetInitial([]float64{8, 4, 0.56}) // 8 - 4 = 4 < 4.56 → slack .56
	r := m.Solve(context.Background(), Options{MaxNodes: 100})
	t.Logf("status=%v obj=%v X=%v", r.Status, r.Objective, r.X)
	if r.X[s] > 1e-6 {
		t.Fatalf("slack not repaired: %v", r.X[s])
	}
}
