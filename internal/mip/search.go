package mip

// This file holds the solve engine shared by the serial and parallel
// branch-and-bound drivers: the per-solve shared state (incumbent, stop
// flags, statistics, root bounds) and the per-goroutine search scratch
// (problem copy, warm basis, heuristics). The serial driver solveSerial
// reproduces the pre-parallel algorithm exactly — same node order, same
// heuristic schedule, same LP sequence — so Workers=1 results are
// bit-for-bit identical to the historical single-threaded solver.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ras/internal/clock"
	"ras/internal/lp"
)

// engine is the state shared by every search goroutine of one Solve call.
// All fields set in newEngine are immutable for the duration of the solve;
// the incumbent is guarded by incMu, the statistics are atomics, and the
// stop flags are sticky atomics so any goroutine can observe an expiry
// another one detected.
type engine struct {
	m     *Model
	opt   Options
	ctx   context.Context
	lpOpt lp.Options

	n       int
	rootLo  []float64
	rootUp  []float64
	contMin []float64 // per-row reachable continuous activity, lower side
	contMax []float64 // upper side

	deadline time.Time

	timedOut  atomic.Bool
	cancelled atomic.Bool

	// Shared incumbent, published improve-only under incMu: offer only ever
	// replaces it with a strictly better point, so concurrent readers see a
	// monotonically improving bound and a worker racing a stale snapshot
	// can at worst miss a prune, never corrupt the incumbent.
	incMu      sync.Mutex
	incumbent  []float64
	incObj     float64 // objective without objOffset, +Inf when none
	incCopy    []float64
	incUpdates int
	heurWins   int

	nodes       atomic.Int64
	lpSolves    atomic.Int64
	lpIters     atomic.Int64
	lpDualIters atomic.Int64
	lpLimited   atomic.Int64

	// Stall-rule progress tracking: the node count at the last incumbent or
	// bound improvement, and the best bound seen so far (as float bits, -Inf
	// initially). Both are monotone, so stale reads only delay a stall stop.
	lastGain  atomic.Int64
	boundBits atomic.Uint64
}

func newEngine(ctx context.Context, m *Model, opt Options, start time.Time) *engine {
	e := &engine{
		m:      m,
		opt:    opt,
		ctx:    ctx,
		lpOpt:  lp.Options{MaxIter: opt.LPIterLimit},
		n:      m.prob.NumVars(),
		incObj: math.Inf(1),
	}

	// Save root bounds so the model is unchanged after Solve and so node
	// bound changes have a fixed base to apply against.
	e.rootLo = make([]float64, e.n)
	e.rootUp = make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		e.rootLo[j], e.rootUp[j] = m.prob.Bounds(j)
	}

	if opt.TimeLimit > 0 {
		e.deadline = start.Add(opt.TimeLimit)
	}

	// Build the lazy column index up front: parallel searches share it
	// read-only, so a lazy rebuild mid-search would race.
	m.buildColIndex()

	// Continuous contribution range per row: with integer variables pinned,
	// how much can the row's continuous members still move the activity?
	// Pure-integer rows have a zero range; rows with an unbounded envelope
	// or free slack have an infinite side and never bind the guard there.
	e.contMin = make([]float64, len(m.rows))
	e.contMax = make([]float64, len(m.rows))
	for i, row := range m.rows {
		for _, nz := range row {
			if m.integer[nz.Index] {
				continue
			}
			lo, up := m.prob.Bounds(nz.Index)
			a, b := nz.Value*lo, nz.Value*up
			if a > b {
				a, b = b, a
			}
			e.contMin[i] += a
			e.contMax[i] += b
		}
	}

	// Seed the incumbent from the warm-start point when valid.
	if m.initial != nil && m.feasibleIntegral(m.initial, opt.IntTol) {
		e.incumbent = append([]float64(nil), m.initial...)
		e.incObj = m.objective(e.incumbent)
	}
	e.boundBits.Store(math.Float64bits(math.Inf(-1)))
	return e
}

// noteBound records a global-bound observation for the stall rule: a strict
// improvement resets the stagnation counter. Monotone max under CAS.
func (e *engine) noteBound(bb float64) {
	for {
		old := e.boundBits.Load()
		if bb <= math.Float64frombits(old)+1e-9 {
			return
		}
		if e.boundBits.CompareAndSwap(old, math.Float64bits(bb)) {
			e.lastGain.Store(e.nodes.Load())
			return
		}
	}
}

// stalled reports whether the stall rule should stop the search: StallNodes
// nodes have passed since the last incumbent or bound improvement while the
// gap between them is already within StallGap. A search in this state is
// burning its node budget proving an answer it almost certainly has — on the
// massively degenerate RAS relaxations the bound can sit flat for hundreds
// of nodes below a near-optimal incumbent.
func (e *engine) stalled(bb float64) bool {
	opt := e.opt
	if opt.StallNodes <= 0 || opt.StallGap <= 0 {
		return false
	}
	inc := e.bestObj()
	if math.IsInf(inc, 1) || inc-bb > opt.StallGap {
		return false
	}
	return e.nodes.Load()-e.lastGain.Load() >= int64(opt.StallNodes)
}

// restoreRootBounds resets the model's own problem to its root bounds so the
// model is unchanged after Solve.
func (e *engine) restoreRootBounds() {
	for j := 0; j < e.n; j++ {
		e.m.prob.SetBounds(j, e.rootLo[j], e.rootUp[j])
	}
}

// expired reports whether the solve should stop, distinguishing a time
// budget running out (TimeLimit or ctx deadline → timedOut → Feasible) from
// an explicit cancellation (→ cancelled → Cancelled). Both flags are sticky.
func (e *engine) expired() bool {
	if e.timedOut.Load() || e.cancelled.Load() {
		return true
	}
	switch e.ctx.Err() {
	case nil:
	case context.DeadlineExceeded:
		e.timedOut.Store(true)
		return true
	default:
		e.cancelled.Store(true)
		return true
	}
	if !e.deadline.IsZero() && clock.Now().After(e.deadline) {
		e.timedOut.Store(true)
	}
	return e.timedOut.Load()
}

// bestObj reads the shared incumbent objective (+Inf when none).
func (e *engine) bestObj() float64 {
	e.incMu.Lock()
	v := e.incObj
	e.incMu.Unlock()
	return v
}

// offer publishes x as a candidate incumbent with objective obj
// (offset-free). Updates are monotone improve-only: a strictly better
// objective replaces the incumbent, anything else is discarded, so racing
// offers can never regress the shared solution. heuristic attributes the
// improvement to a primal heuristic (vs. an integral node LP) for the
// HeuristicWins statistic. Reports whether x became the incumbent.
func (e *engine) offer(x []float64, obj float64, heuristic bool) bool {
	e.incMu.Lock()
	defer e.incMu.Unlock()
	if obj >= e.incObj {
		return false
	}
	e.incObj = obj
	e.incumbent = append(e.incumbent[:0], x...)
	e.incUpdates++
	if heuristic {
		e.heurWins++
	}
	e.lastGain.Store(e.nodes.Load())
	return true
}

// incumbentCopy snapshots the shared incumbent (nil when none exists) into
// an engine-owned buffer that the next call overwrites. Call sites all sit
// in the serial phases of a solve (before workers fork, after they join), so
// at most one snapshot is live at a time; the final one may escape into
// Result.X, which is safe because the engine dies with the solve.
func (e *engine) incumbentCopy() ([]float64, float64) {
	e.incMu.Lock()
	defer e.incMu.Unlock()
	if e.incumbent == nil {
		return nil, e.incObj
	}
	e.incCopy = append(e.incCopy[:0], e.incumbent...)
	return e.incCopy, e.incObj
}

// fillStats copies the engine's accumulated statistics into res.
func (e *engine) fillStats(res *Result) {
	res.Nodes = int(e.nodes.Load())
	res.LPSolves = int(e.lpSolves.Load())
	res.LPIters = int(e.lpIters.Load())
	res.LPDualIters = int(e.lpDualIters.Load())
	res.LPLimited = int(e.lpLimited.Load())
	e.incMu.Lock()
	res.IncumbentUpdates = e.incUpdates
	res.HeuristicWins = e.heurWins
	e.incMu.Unlock()
}

// handleRootStatus maps a non-Optimal root relaxation status onto a final
// Result, shared verbatim by the serial and parallel drivers. It reports
// whether res is final.
func (e *engine) handleRootStatus(res *Result, rootSol lp.Solution) bool {
	switch rootSol.Status {
	case lp.Infeasible:
		if inc, incObj := e.incumbentCopy(); inc != nil {
			// The warm start satisfies every row by direct evaluation, so an
			// infeasible relaxation is numerical noise; keep the incumbent.
			res.Status = Feasible
			res.Objective = incObj + e.m.objOffset
			res.Bound = math.Inf(-1)
			res.X = inc
			return true
		}
		res.Status = Infeasible
		return true
	case lp.Unbounded:
		res.Status = Unbounded
		return true
	case lp.IterLimit, lp.Cancelled:
		inc, incObj := e.incumbentCopy()
		if inc == nil {
			res.Status = NoSolution
			return true
		}
		res.Status = Feasible
		if rootSol.Status == lp.Cancelled && e.ctx.Err() != context.DeadlineExceeded {
			res.Status = Cancelled
		}
		res.Objective = incObj + e.m.objOffset
		res.Bound = math.Inf(-1)
		res.X = inc
		return true
	}
	return false
}

// search is the per-goroutine solve scratch: a problem whose bounds this
// goroutine may mutate freely (the model's own problem for the serial
// driver and the root of the parallel one; a Clone for every worker and
// heuristic goroutine), the goroutine's LP workspace — which retains the
// simplex structure, all solver scratch, and the warm-start basis chain
// across every node and heuristic LP of this search — and reusable point
// buffers for the heuristics. Nothing in a search is shared across
// goroutines; everything shared lives in the engine.
type search struct {
	m          *Model
	e          *engine
	prob       *lp.Problem
	ws         *lp.Workspace
	seedBasis  *lp.Basis // imported seed for the first warm solves (root basis, cross-round basis)
	exportNext bool      // export the next LP's basis (root relaxations)
	forceCold  bool
	xbuf       []float64 // rounding-heuristic point
	xibuf      []float64 // roundRepairComplete working point
	divebuf    []float64 // dive working point
	checkbuf   []float64 // dive batch-rollback checkpoint
}

func newSearch(e *engine, prob *lp.Problem, seed *lp.Basis) *search {
	return &search{
		m: e.m, e: e, prob: prob,
		ws:        lp.NewWorkspace(),
		seedBasis: seed,
		xbuf:      make([]float64, e.n),
		xibuf:     make([]float64, e.n),
		divebuf:   make([]float64, e.n),
		checkbuf:  make([]float64, e.n),
	}
}

// solveLP solves the search's problem on the search-local workspace. The
// workspace retains the last good basis internally, so every subsequent LP
// of this search warm-starts from the most recent optimal one with no
// export/import copies; bound changes between solves are absorbed by
// dual-simplex repair in package lp. Until the workspace has a good basis of
// its own, the seed basis (the root relaxation's, or a previous round's)
// serves as the imported warm start.
func (s *search) solveLP() lp.Solution {
	o := s.e.lpOpt
	o.Start = s.seedBasis
	o.ReuseBasis = true
	if noWarm || s.forceCold || s.e.opt.NoWarmStart {
		o.Start = nil
		o.ReuseBasis = false
	}
	if s.exportNext {
		o.ExportBasis = true
		s.exportNext = false
	}
	sol := s.prob.SolveWith(s.e.ctx, o, s.ws)
	s.e.lpSolves.Add(1)
	s.e.lpIters.Add(int64(sol.Iterations))
	s.e.lpDualIters.Add(int64(sol.DualIters))
	if sol.Status == lp.IterLimit {
		s.e.lpLimited.Add(1)
	}
	return sol
}

// solveRootLP is solveLP with a basis export: the root relaxation's basis
// seeds the parallel workers and the next round's cross-round warm start.
func (s *search) solveRootLP() lp.Solution {
	s.exportNext = true
	return s.solveLP()
}

// newIntAct computes the integer-variable activity of every row at xi.
func (m *Model) newIntAct(xi []float64) []float64 {
	act := make([]float64, len(m.rows))
	for i, row := range m.rows {
		for _, nz := range row {
			if m.integer[nz.Index] {
				act[i] += nz.Value * xi[nz.Index]
			}
		}
	}
	return act
}

// guardBlocked reports the first row that changing integer variable j by
// delta would make unsatisfiable by ANY continuous completion, or -1: the
// completion LP cannot repair a row whose integer part has moved beyond the
// reach of its continuous members.
func (s *search) guardBlocked(act []float64, j int, delta float64) int {
	m, e := s.m, s.e
	for _, ri := range m.colRows[j] {
		i := ri.row
		na := act[i] + ri.coef*delta
		switch m.senses[i] {
		case LE:
			if na+e.contMin[i] > m.rhs[i]+1e-9 {
				return i
			}
		case GE:
			if na+e.contMax[i] < m.rhs[i]-1e-9 {
				return i
			}
		case EQ:
			if na+e.contMin[i] > m.rhs[i]+1e-9 || na+e.contMax[i] < m.rhs[i]-1e-9 {
				return i
			}
		}
	}
	return -1
}

func (s *search) guardOK(act []float64, j int, delta float64) bool {
	return s.guardBlocked(act, j, delta) == -1
}

func (s *search) applyDelta(act, xi []float64, j int, delta float64) {
	xi[j] += delta
	for _, ri := range s.m.colRows[j] {
		act[ri.row] += ri.coef * delta
	}
}

// guardedRound rounds integer variable j in xi to an integer, preferring
// the warm-start value when it brackets the fractional point (rounding
// toward the incumbent avoids gratuitous deviation — e.g. spurious server
// moves in the RAS model), then the nearest value, falling back to the
// other side when pure-integer rows would be violated.
func (s *search) guardedRound(act, xi []float64, j int) bool {
	m := s.m
	lo, up := s.prob.Bounds(j)
	floor, ceil := math.Floor(xi[j]), math.Ceil(xi[j])
	frac := xi[j] - floor
	first, second := floor, ceil
	if frac > 0.5 {
		first, second = second, first
	}
	// Anchor toward the warm start only when the fractional point is
	// genuinely ambiguous; strong fractional pulls (e.g. capacity fills)
	// must win over stability.
	if m.initial != nil && j < len(m.initial) && frac > 0.35 && frac < 0.65 {
		if iv := m.initial[j]; exactEqual(iv, floor) || exactEqual(iv, ceil) {
			first, second = iv, floor+ceil-iv
		}
	}
	for _, v := range [2]float64{first, second} {
		if v < lo-1e-9 || v > up+1e-9 {
			continue
		}
		if s.guardOK(act, j, v-xi[j]) {
			s.applyDelta(act, xi, j, v-xi[j])
			return true
		}
	}
	return false
}

// completeLP fixes every integer variable to the values in xi, solves the
// LP over the remaining continuous variables, and offers the result as an
// incumbent on success. It restores all bounds before returning.
func (s *search) completeLP(xi []float64) bool {
	m, e, n := s.m, s.e, s.e.n
	type saved struct {
		v      int
		lo, up float64
	}
	var undo []saved
	ok := true
	for j := 0; j < n && ok; j++ {
		if !m.integer[j] {
			continue
		}
		lo, up := s.prob.Bounds(j)
		v := math.Round(xi[j])
		if v < lo || v > up {
			ok = false
			break
		}
		undo = append(undo, saved{j, lo, up})
		s.prob.SetBounds(j, v, v)
	}
	improved := false
	if ok {
		sol := s.solveLP()
		if sol.Status == lp.Optimal {
			x := sol.X
			for j := 0; j < n; j++ {
				if m.integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			if m.feasibleIntegralIn(s.prob, x, e.opt.IntTol) {
				improved = e.offer(x, m.objective(x), true)
			}
		}
	}
	for i := len(undo) - 1; i >= 0; i-- {
		s.prob.SetBounds(undo[i].v, undo[i].lo, undo[i].up)
	}
	return improved
}

// roundRepairComplete is the primary primal heuristic: round integer
// variables to nearest, repair violated rows by nudging integer variables
// (guarding rows made purely of integer variables, like the RAS assignment
// constraints, whose feasibility the completion LP cannot restore), then
// let completeLP settle the continuous variables. Two LP solves total
// regardless of problem size.
func (s *search) roundRepairComplete(seed []float64) bool {
	m, n := s.m, s.e.n
	xi := s.xibuf
	copy(xi, seed)
	for v := range m.penalty {
		xi[v] = 0 // expose soft violations to the repair pass
	}
	act := m.newIntAct(xi)
	// Guarded rounding in order of decreasing value keeps big counts
	// stable and lets small fractional ones absorb the adjustment.
	order := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if m.integer[j] {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(a, b int) bool { return xi[order[a]] > xi[order[b]] })
	for _, j := range order {
		if !s.guardedRound(act, xi, j) {
			return false // pure-integer rows unsatisfiable by rounding
		}
	}

	// Repair pass over mixed rows: with continuous variables at seed
	// values, bump zero-cost integer variables (guarded) to close
	// violations that rounding introduced — e.g. refill capacity lost
	// to rounded-down counts.
	for pass := 0; pass < 4; pass++ {
		dirty := false
		for i, row := range m.rows {
			if m.intOnlyRows[i] {
				continue // kept feasible by the guard
			}
			lhs := 0.0
			for _, nz := range row {
				lhs += nz.Value * xi[nz.Index]
			}
			var need float64
			switch m.senses[i] {
			case LE:
				if lhs > m.rhs[i]+1e-7 {
					need = m.rhs[i] - lhs
				}
			case GE:
				if lhs < m.rhs[i]-1e-7 {
					need = m.rhs[i] - lhs
				}
			case EQ:
				if math.Abs(lhs-m.rhs[i]) > 1e-7 {
					need = m.rhs[i] - lhs
				}
			}
			if exactZero(need) {
				continue
			}
			// Round-robin unit bumps across DISTINCT row variables: the
			// members usually span fault domains, and spreading the
			// bumps avoids inflating a max-per-domain envelope variable
			// that would cancel the gain. For the same reason,
			// inequality repairs overshoot by one unit: a single bump
			// can be eaten entirely by an envelope in its own domain.
			if m.senses[i] != EQ {
				need += 2 * sign(need)
			}
			bumped := map[int]bool{}
			for cycle := 0; cycle < 64 && math.Abs(need) > 1e-9; cycle++ {
				moved := false
				for _, nz := range row {
					j := nz.Index
					if !m.integer[j] || exactZero(nz.Value) || !exactZero(m.cost[j]) || bumped[j] {
						continue
					}
					step := sign(need) * sign(nz.Value)
					lo, up := s.prob.Bounds(j)
					if xi[j]+step < lo-1e-9 || xi[j]+step > up+1e-9 || !s.guardOK(act, j, step) {
						continue
					}
					s.applyDelta(act, xi, j, step)
					bumped[j] = true
					need -= step * nz.Value
					dirty = true
					moved = true
					if math.Abs(need) <= 1e-9 || math.Signbit(need) != math.Signbit(need+step*nz.Value) {
						need = 0
						break
					}
				}
				if !moved {
					break
				}
				if len(bumped) >= len(row) {
					bumped = map[int]bool{}
				}
			}
		}
		if !dirty {
			break
		}
	}
	return s.completeLP(xi)
}

// dive runs the diving primal heuristic from an LP-feasible fractional
// point: repeatedly fix integer variables that are already (nearly)
// integral plus a batch of the most fractional ones to rounded values, then
// re-solve the LP until the point is integral or infeasible. It offers the
// incumbent on success and restores all bounds before returning.
func (s *search) dive(seed []float64, bias float64) {
	m, e, n := s.m, s.e, s.e.n
	x := s.divebuf
	copy(x, seed)
	// Temporary bound changes to undo afterwards.
	type saved struct {
		v      int
		lo, up float64
	}
	var undo []saved
	rollback := func(to int) {
		for i := len(undo) - 1; i >= to; i-- {
			s.prob.SetBounds(undo[i].v, undo[i].lo, undo[i].up)
		}
		undo = undo[:to]
	}
	defer func() { rollback(0) }()
	fixed := make([]bool, n)
	for depth := 0; depth < n+1; depth++ {
		if e.expired() {
			return
		}
		act := m.newIntAct(x)
		// fix pins variable j to a guarded rounding of its value.
		fix := func(j int) bool {
			lo, up := s.prob.Bounds(j)
			f := x[j] - math.Floor(x[j])
			if f > bias && f < 1 {
				x[j] = math.Min(up, math.Ceil(x[j])) - 1e-9
			}
			if !s.guardedRound(act, x, j) {
				return false
			}
			undo = append(undo, saved{j, lo, up})
			s.prob.SetBounds(j, x[j], x[j])
			fixed[j] = true
			return true
		}
		// Fix near-integral variables in bulk, then a batch of the most
		// fractional ones (warm-started dual repair keeps LP rounds
		// cheap). A per-variable guard cannot see joint effects through
		// coupled continuous variables (e.g. max-envelopes), so when a
		// batch lands infeasible we roll it back and retry one variable
		// at a time.
		type fc struct {
			j int
			d float64
		}
		var fracs []fc
		progress := false
		checkpoint := len(undo)
		var xcheck []float64
		for j := 0; j < n; j++ {
			if !m.integer[j] || fixed[j] {
				continue
			}
			f := x[j] - math.Floor(x[j])
			d := math.Min(f, 1-f)
			if d <= 0.01 {
				if fix(j) {
					progress = true
				}
			} else {
				fracs = append(fracs, fc{j, d})
			}
		}
		if len(fracs) == 0 {
			if !progress {
				break
			}
		} else {
			sort.Slice(fracs, func(a, b int) bool { return fracs[a].d > fracs[b].d })
			xcheck = s.checkbuf
			copy(xcheck, x)
			batch := len(fracs)/8 + 1
			fixedAny := false
			for _, f := range fracs[:batch] {
				if fix(f.j) {
					fixedAny = true
				}
			}
			if !fixedAny && !progress {
				if debugDive {
					fmt.Printf("DIVE stuck at depth %d (%d fracs)\n", depth, len(fracs))
				}
				return
			}
		}
		sol := s.solveLP()
		if sol.Status != lp.Optimal && len(fracs) > 0 {
			// Batch overshot a coupled constraint: retry with a single
			// most-fractional fix from the checkpoint.
			rollback(checkpoint)
			copy(x, xcheck)
			for _, f := range fracs {
				fixed[f.j] = false
			}
			act = m.newIntAct(x)
			if !fix(fracs[0].j) {
				return
			}
			sol = s.solveLP()
		}
		if sol.Status != lp.Optimal {
			if debugDive {
				fmt.Printf("DIVE abort: LP %v at depth %d\n", sol.Status, depth)
			}
			return // infeasible dive; give up
		}
		x = sol.X
		if m.mostFractional(x, e.opt.IntTol) == -1 {
			// Snap integers exactly and accept if feasible.
			for j := 0; j < n; j++ {
				if m.integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			if debugDive && !m.feasibleIntegralIn(s.prob, x, e.opt.IntTol) {
				fmt.Printf("DIVE end: integral but infeasible\n")
			}
			if m.feasibleIntegralIn(s.prob, x, e.opt.IntTol) {
				e.offer(x, m.objective(x), true)
			}
			return
		}
	}
}

// applyNodeBounds resets the search's problem to root bounds and applies
// nd's bound changes in order. It reports false when the changes cross
// (lo > up), i.e. the node is trivially infeasible.
func (s *search) applyNodeBounds(nd node) bool {
	e := s.e
	for j := 0; j < e.n; j++ {
		s.prob.SetBounds(j, e.rootLo[j], e.rootUp[j])
	}
	for _, bc := range nd.changes {
		if bc.up < bc.lo {
			return false
		}
		s.prob.SetBounds(bc.v, bc.lo, bc.up)
	}
	return true
}

// branch splits nd on its most fractional variable v at value fv, returning
// the two children ordered so that the near-integer side is LAST (pushed
// last = popped first under LIFO selection).
func (s *search) branch(nd node, v int, fv, objective float64) (first, second node) {
	e := s.e
	floorUp := math.Floor(fv + e.opt.IntTol)
	ceilLo := math.Ceil(fv - e.opt.IntTol)
	if ceilLo <= floorUp { // numerically integral; nudge
		ceilLo = floorUp + 1
	}
	loV, upV := nodeBounds(nd, v, e.rootLo[v], e.rootUp[v])

	up := node{
		changes: appendChange(nd.changes, boundChange{v, ceilLo, upV}),
		bound:   objective,
		depth:   nd.depth + 1,
	}
	down := node{
		changes: appendChange(nd.changes, boundChange{v, loV, floorUp}),
		bound:   objective,
		depth:   nd.depth + 1,
	}
	// Dive toward the nearer integer first.
	if fv-floorUp < ceilLo-fv {
		return up, down
	}
	return down, up
}

// rootHeuristics runs the serial root-node primal heuristic schedule from
// the fractional root relaxation: round/repair/complete, a nearest-rounding
// dive, then gap-dependent retries (an up-biased dive and a cold-started
// dive) and a final repair polish of the incumbent.
func (s *search) rootHeuristics(rootSol lp.Solution) {
	e := s.e
	s.roundRepairComplete(rootSol.X)
	s.dive(rootSol.X, 0.5)
	// A second, up-biased dive targets residual shortfalls that the
	// nearest-rounding dive strands (soft capacity slack).
	if e.bestObj()-rootSol.Objective > math.Max(10*e.opt.AbsGap, 0.05*math.Abs(e.bestObj())) {
		s.dive(rootSol.X, 0.3)
	}
	// Warm-started LPs revisit vertices whose roundings can be brittle
	// on tightly-coupled instances; if the dives have not closed most
	// of the gap, retry once with cold LPs, which reach different
	// (often friendlier) vertices.
	if e.bestObj()-rootSol.Objective > math.Max(10*e.opt.AbsGap, 0.05*math.Abs(e.bestObj())) {
		s.forceCold = true
		s.dive(rootSol.X, 0.5)
		s.forceCold = false
	}
	// Polish the incumbent with a repair pass; it can close residual
	// soft-penalty slack that greedy dives strand.
	if inc, _ := e.incumbentCopy(); inc != nil {
		s.roundRepairComplete(inc)
	}
}

// solveSerial is the Workers=1 branch-and-bound driver: the historical
// single-threaded algorithm, preserved move for move (node order, heuristic
// schedule, warm-basis chain) so serial results stay bit-for-bit identical.
func (m *Model) solveSerial(e *engine) Result {
	opt := e.opt
	res := Result{Status: NoSolution, Objective: math.Inf(1), Bound: math.Inf(-1)}
	s := newSearch(e, &m.prob, opt.RootBasis)

	// Root relaxation, warm-started from a previous round's basis when the
	// caller supplied one (a mismatched shape falls back to a cold start
	// inside package lp).
	rootSol := s.solveRootLP()
	res.RootBasis = rootSol.Basis
	res.RootLPIters = rootSol.Iterations
	if e.handleRootStatus(&res, rootSol) {
		return res
	}
	res.Bound = rootSol.Objective
	if m.mostFractional(rootSol.X, opt.IntTol) != -1 {
		s.rootHeuristics(rootSol)
	}

	// Open-node pool. Depth-first diving with periodic best-bound selection
	// keeps memory modest while still improving the global bound.
	open := []node{{bound: rootSol.Objective}}
	bestBound := func() float64 {
		if len(open) == 0 {
			return e.bestObj()
		}
		b := math.Inf(1)
		for i := range open {
			if open[i].bound < b {
				b = open[i].bound
			}
		}
		return b
	}

	for len(open) > 0 {
		if int(e.nodes.Load()) >= opt.MaxNodes || e.expired() {
			break
		}
		bb := bestBound()
		e.noteBound(bb)
		if e.stalled(bb) {
			break
		}
		// Node selection: mostly LIFO (dive), every 16th node best-bound.
		pick := len(open) - 1
		if int(e.nodes.Load())%16 == 15 {
			for i := range open {
				if open[i].bound < open[pick].bound {
					pick = i
				}
			}
		}
		nd := open[pick]
		open = append(open[:pick], open[pick+1:]...)

		// Prune against incumbent.
		if nd.bound >= e.bestObj()-opt.AbsGap {
			continue
		}

		if !s.applyNodeBounds(nd) {
			continue
		}

		sol := s.solveLP()
		e.nodes.Add(1)
		if sol.Status == lp.Cancelled {
			// Put the node back so the final bound still accounts for its
			// unexplored subtree; the loop exits via expired() above.
			open = append(open, nd)
			continue
		}
		if sol.Status == lp.Infeasible || sol.Status == lp.IterLimit {
			continue
		}
		if sol.Status == lp.Unbounded {
			// Integer restrictions cannot repair an unbounded relaxation
			// in this node's subtree in a way we can detect; skip it.
			continue
		}
		if sol.Objective >= e.bestObj()-opt.AbsGap {
			continue
		}

		frac := m.mostFractional(sol.X, opt.IntTol)
		if frac == -1 {
			// Integral: new incumbent.
			e.offer(sol.X, sol.Objective, false)
			continue
		}

		// Rounding heuristic: round to nearest integers, verify feasibility.
		copy(s.xbuf, sol.X)
		for j := 0; j < e.n; j++ {
			if m.integer[j] {
				s.xbuf[j] = math.Round(s.xbuf[j])
			}
		}
		if m.feasibleIntegralIn(s.prob, s.xbuf, opt.IntTol) {
			e.offer(s.xbuf, m.objective(s.xbuf), false)
		}
		// Periodic heuristics from this node's relaxation (bounds are still
		// the node's at this point) to refresh the incumbent.
		if int(e.nodes.Load())%16 == 1 {
			s.roundRepairComplete(sol.X)
		}
		if int(e.nodes.Load())%64 == 33 {
			s.dive(sol.X, 0.5)
		}

		// Branch on the most fractional variable.
		first, second := s.branch(nd, frac, sol.X[frac], sol.Objective)
		open = append(open, first, second)
	}

	// Final polish: restore root bounds and re-run the repair heuristic on
	// the incumbent. Node incumbents found mid-search never saw it, and it
	// often closes residual soft-penalty slack.
	if inc, _ := e.incumbentCopy(); inc != nil {
		for j := 0; j < e.n; j++ {
			s.prob.SetBounds(j, e.rootLo[j], e.rootUp[j])
		}
		s.roundRepairComplete(inc)
	}

	return e.finalResult(res, bestBound(), len(open))
}

// finalResult assembles the end-of-search Result from the best outstanding
// node bound and the number of unexplored open nodes, applying the shared
// Optimal/Feasible/Cancelled/Infeasible classification.
func (e *engine) finalResult(res Result, outstanding float64, openNodes int) Result {
	opt := e.opt
	incumbent, incObj := e.incumbentCopy()
	res.Bound = math.Min(outstanding, incObj)
	if incumbent == nil {
		if openNodes == 0 && !e.timedOut.Load() && !e.cancelled.Load() && int(e.nodes.Load()) < opt.MaxNodes {
			res.Status = Infeasible
		} else {
			res.Status = NoSolution
		}
		return res
	}
	res.Objective = incObj + e.m.objOffset
	res.Bound += e.m.objOffset
	res.X = incumbent
	gap := incObj + e.m.objOffset - res.Bound
	rel := gap / (1 + math.Abs(res.Objective))
	if openNodes == 0 || gap <= opt.AbsGap || (opt.RelGap > 0 && rel <= opt.RelGap) {
		res.Status = Optimal
		if openNodes == 0 {
			res.Bound = res.Objective
		}
	} else if e.cancelled.Load() {
		res.Status = Cancelled
	} else {
		res.Status = Feasible
	}
	return res
}
