// Package mip implements a mixed-integer-programming solver: a modeling API
// for linear objectives and constraints over continuous and integer
// variables, plus a branch-and-bound search that uses package lp for node
// relaxations.
//
// mip is the engine behind the RAS async solver (internal/solver). The RAS
// formulation uses three nonlinear constructs that mip linearizes with
// auxiliary variables:
//
//   - max(0, expr)   → AddPosPart
//   - max over group sums (the embedded correlated-failure buffer)
//     → AddUpperEnvelope
//   - |expr − a| ≤ θ (network affinity) → AddAbsRange
//
// Solve reports not only an incumbent but also the best proven bound and the
// absolute gap, mirroring the quality-gap methodology of the paper's
// Figure 9 ("90% of solutions proven optimal within 200 preemptions").
package mip

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"ras/internal/clock"
	"ras/internal/lp"
	"ras/internal/metrics"
)

// noWarm disables LP warm starts (debug toggle).
var noWarm = os.Getenv("MIP_NOWARM") != ""

// debugDive logs dive-heuristic exits (debug toggle).
var debugDive = os.Getenv("MIP_DEBUG_DIVE") != ""

// exactZero reports whether v is exactly zero — the zero-value "knob unset"
// sentinel in Options and the stored-exact sparsity convention shared with
// package lp. A raslint floatcmp designated helper.
func exactZero(v float64) bool { return v == 0 }

// exactEqual reports whether a and b are exactly equal, for values copied
// from the same store (warm-start points, floor/ceil anchors). A raslint
// floatcmp designated helper.
func exactEqual(a, b float64) bool { return a == b }

// Var identifies a variable within a Model.
type Var int

// Term is one linear coefficient Coef·Var.
type Term struct {
	Var  Var
	Coef float64
}

// Sense re-exports the constraint senses of package lp.
type Sense = lp.Sense

// Constraint senses.
const (
	LE = lp.LE
	EQ = lp.EQ
	GE = lp.GE
)

// Inf is the bound value representing "no upper bound".
var Inf = lp.Inf

// Model is a mixed-integer program under construction.
type Model struct {
	prob    lp.Problem
	integer []bool
	names   []string
	cost    []float64 // mirror of objective coefficients for evaluation

	rows      [][]lp.Nonzero
	senses    []Sense
	rhs       []float64
	rowNames  []string
	objOffset float64

	initial []float64    // optional warm-start point (may be partial: NaN = unset)
	penalty map[Var]bool // soft-constraint slack variables (see MarkPenalty)

	// revision counts structural growth (variables or constraints added).
	// In-place patches — SetVarBounds, SetRHS, SetInitial — leave it
	// untouched; see Revision.
	revision int

	// Column index caches for the repair heuristic, rebuilt lazily when the
	// model grows.
	colRows     [][]rowRef
	intOnlyRows []bool
	idxRows     int // row count when the caches were built
	idxVars     int
}

type rowRef struct {
	row  int
	coef float64
}

// buildColIndex (re)builds the column→rows index used by the repair
// heuristic. It is a no-op when the model has not grown since the last call.
func (m *Model) buildColIndex() {
	if m.idxRows == len(m.rows) && m.idxVars == m.prob.NumVars() {
		return
	}
	m.colRows = make([][]rowRef, m.prob.NumVars())
	m.intOnlyRows = make([]bool, len(m.rows))
	for i, row := range m.rows {
		pure := true
		for _, nz := range row {
			m.colRows[nz.Index] = append(m.colRows[nz.Index], rowRef{row: i, coef: nz.Value})
			if !m.integer[nz.Index] {
				pure = false
			}
		}
		m.intOnlyRows[i] = pure
	}
	m.idxRows = len(m.rows)
	m.idxVars = m.prob.NumVars()
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars reports the number of variables added so far.
func (m *Model) NumVars() int { return m.prob.NumVars() }

// NumIntVars reports the number of integer variables added so far.
func (m *Model) NumIntVars() int {
	n := 0
	for _, b := range m.integer {
		if b {
			n++
		}
	}
	return n
}

// NumConstrs reports the number of constraints added so far.
func (m *Model) NumConstrs() int { return len(m.rows) }

// VarName reports the name given to v at creation.
func (m *Model) VarName(v Var) string { return m.names[v] }

// AddVar adds a continuous variable and returns it. The lower bound must be
// finite; the upper bound may be mip.Inf.
func (m *Model) AddVar(name string, cost, lo, up float64) Var {
	j := m.prob.AddVar(cost, lo, up)
	m.integer = append(m.integer, false)
	m.names = append(m.names, name)
	m.cost = append(m.cost, cost)
	m.revision++
	return Var(j)
}

// AddIntVar adds an integer variable and returns it.
func (m *Model) AddIntVar(name string, cost, lo, up float64) Var {
	v := m.AddVar(name, cost, lo, up)
	m.integer[v] = true
	return v
}

// AddBinVar adds a {0,1} variable and returns it.
func (m *Model) AddBinVar(name string, cost float64) Var {
	return m.AddIntVar(name, cost, 0, 1)
}

// AddConstr adds the constraint Σ terms sense rhs and returns its row index.
func (m *Model) AddConstr(name string, terms []Term, sense Sense, rhs float64) int {
	nz := make([]lp.Nonzero, 0, len(terms))
	for _, t := range terms {
		nz = append(nz, lp.Nonzero{Index: int(t.Var), Value: t.Coef})
	}
	m.prob.AddRow(nz, sense, rhs)
	m.rows = append(m.rows, nz)
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	m.rowNames = append(m.rowNames, name)
	m.revision++
	return len(m.rows) - 1
}

// Revision reports the model's structural revision: it increments whenever a
// variable or constraint is added and is unchanged by the in-place patch
// calls (SetVarBounds, SetRHS, SetInitial). Cross-round warm-start state
// keyed to a revision therefore survives a patch — bound and RHS edits are
// absorbed by the dual-simplex repair on the retained basis — but never
// structural growth.
func (m *Model) Revision() int { return m.revision }

// SetVarBounds replaces v's root bounds in place (model-patching API): the
// next Solve snapshots the new bounds as its root bounds. The model's
// structure, and any warm-start basis exported for it, stays valid.
func (m *Model) SetVarBounds(v Var, lo, up float64) { m.prob.SetBounds(int(v), lo, up) }

// VarBounds reports v's current root bounds.
func (m *Model) VarBounds(v Var) (lo, up float64) { return m.prob.Bounds(int(v)) }

// SetRHS replaces the right-hand side of constraint row i in place
// (model-patching API), keeping the row's coefficients, sense, and name —
// the RAS incremental build's path for resized demands C_r.
func (m *Model) SetRHS(i int, rhs float64) {
	m.prob.SetRHS(i, rhs)
	m.rhs[i] = rhs // evaluation mirror (feasibleIntegral, heuristics)
}

// RHS reports the current right-hand side of constraint row i.
func (m *Model) RHS(i int) float64 { return m.rhs[i] }

// Fingerprint hashes the model's entire solve-relevant content — variables
// (bounds, costs, integrality, names), rows (coefficients, senses, RHS,
// names), objective offset, warm-start point, and penalty marks — into one
// uint64. Two models with equal fingerprints are interchangeable for Solve;
// the solver's incremental-build property tests compare a patched model
// against a cold rebuild this way.
func (m *Model) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf []byte
	w64 := func(u uint64) {
		buf = append(buf, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	ws := func(s string) { w64(uint64(len(s))); buf = append(buf, s...) }
	w64(uint64(m.prob.NumVars()))
	for j := 0; j < m.prob.NumVars(); j++ {
		lo, up := m.prob.Bounds(j)
		wf(lo)
		wf(up)
		wf(m.cost[j])
		if m.integer[j] {
			w64(1)
		} else {
			w64(0)
		}
		ws(m.names[j])
	}
	w64(uint64(len(m.rows)))
	for i, row := range m.rows {
		w64(uint64(len(row)))
		for _, nz := range row {
			w64(uint64(nz.Index))
			wf(nz.Value)
		}
		w64(uint64(m.senses[i]))
		wf(m.rhs[i])
		ws(m.rowNames[i])
	}
	wf(m.objOffset)
	w64(uint64(len(m.initial)))
	for _, v := range m.initial {
		wf(v)
	}
	pens := make([]int, 0, len(m.penalty))
	for v := range m.penalty {
		pens = append(pens, int(v))
	}
	sort.Ints(pens)
	for _, v := range pens {
		w64(uint64(v))
	}
	h.Write(buf) //raslint:allow errdrop hash.Hash documents that Write never returns an error
	return h.Sum64()
}

// AddObjOffset adds a constant to the objective (bookkeeping only).
func (m *Model) AddObjOffset(c float64) { m.objOffset += c }

// AddPosPart adds an auxiliary continuous variable y with objective
// coefficient cost, constrained by y ≥ Σ terms + constant and y ≥ 0, and
// returns y. When cost > 0 and the model is minimized, y takes the value
// max(0, Σ terms + constant), which linearizes the hinge penalties of the
// RAS stability and spread objectives (paper expressions 1–3).
func (m *Model) AddPosPart(name string, terms []Term, constant, cost float64) Var {
	y := m.AddVar(name, cost, 0, Inf)
	row := make([]Term, 0, len(terms)+1)
	row = append(row, Term{y, 1})
	for _, t := range terms {
		row = append(row, Term{t.Var, -t.Coef})
	}
	m.AddConstr(name, row, GE, constant)
	return y
}

// AddUpperEnvelope adds an auxiliary continuous variable z with objective
// coefficient cost and one constraint z ≥ Σ group per group, returning z.
// Under minimization pressure z equals the maximum group sum, linearizing
// the correlated-failure-buffer term (paper expression 4) and providing the
// left-hand max of the buffer constraint (expression 6).
func (m *Model) AddUpperEnvelope(name string, groups [][]Term, cost float64) Var {
	z := m.AddVar(name, cost, 0, Inf)
	for gi, g := range groups {
		row := make([]Term, 0, len(g)+1)
		row = append(row, Term{z, 1})
		for _, t := range g {
			row = append(row, Term{t.Var, -t.Coef})
		}
		m.AddConstr(fmt.Sprintf("%s[%d]", name, gi), row, GE, 0)
	}
	return z
}

// AddAbsRange adds |Σ terms − target| ≤ theta as two linear rows,
// linearizing the network-affinity constraint (paper expression 7).
func (m *Model) AddAbsRange(name string, terms []Term, target, theta float64) {
	m.AddConstr(name+"/hi", terms, LE, target+theta)
	m.AddConstr(name+"/lo", terms, GE, target-theta)
}

// MarkPenalty declares v to be a pure penalty slack: a continuous variable
// that exists only to absorb a soft-constraint violation. Primal heuristics
// zero such variables when evaluating constraint rows, so violations hidden
// behind slack become visible to integer repair moves.
func (m *Model) MarkPenalty(v Var) {
	if m.penalty == nil {
		m.penalty = make(map[Var]bool)
	}
	m.penalty[v] = true
}

// SetInitial supplies a warm-start point. If the point is feasible and
// integral it seeds the incumbent, which lets Solve report gaps relative to
// the previous assignment exactly as RAS does between consecutive solves.
// Use math.NaN for variables without a hint.
func (m *Model) SetInitial(x []float64) {
	m.initial = append([]float64(nil), x...)
}

// Status reports the outcome of a MIP solve.
type Status int8

// Solve outcomes.
const (
	// Optimal means the incumbent was proven optimal within tolerances.
	Optimal Status = iota
	// Feasible means an incumbent exists but the search stopped early
	// (time, node limit); Bound and Gap quantify remaining uncertainty.
	Feasible
	// Infeasible means the relaxation has no feasible point.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// NoSolution means the search stopped before finding any incumbent.
	NoSolution
	// Cancelled means the solve context was cancelled mid-search while an
	// incumbent existed: X, Objective, Bound, and Gap are all valid, exactly
	// as for Feasible, but the stop was externally requested rather than a
	// time or node limit. Cancellation without an incumbent reports
	// NoSolution instead.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NoSolution:
		return "no-solution"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Options tunes the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock solve time. Zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes. Zero means 100000.
	MaxNodes int
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// AbsGap stops the search once incumbent − bound ≤ AbsGap. Zero means 1e-6.
	AbsGap float64
	// RelGap stops the search once the relative gap falls below it.
	RelGap float64
	// StallNodes stops the search once this many consecutive nodes pass
	// with no incumbent improvement and no bound improvement while the
	// absolute gap is at most StallGap — the long tail of a solve that has
	// its answer but cannot prove it against a degenerate (flat) bound.
	// The rule is keyed to the global node counter, never wall-clock, so
	// serial solves stay deterministic. Zero disables the rule; it is also
	// inert unless StallGap > 0.
	StallNodes int
	// StallGap is the absolute-gap ceiling below which the stall rule may
	// fire. Zero disables the rule.
	StallGap float64
	// LPIterLimit bounds simplex iterations per node LP. Zero = lp default.
	LPIterLimit int
	// NoWarmStart disables LP warm starts between node/heuristic solves
	// (ablation: every LP solves from a cold crash basis).
	NoWarmStart bool
	// RootBasis warm-starts the root relaxation from a basis exported by a
	// previous solve's Result.RootBasis — the cross-round warm start of the
	// RAS async solver, whose consecutive rounds solve near-identical
	// problems. A basis whose shape no longer matches the problem silently
	// falls back to a cold root solve.
	RootBasis *lp.Basis
	// Workers is the number of parallel branch-and-bound workers. 0 or 1
	// run the exact serial algorithm — results are bit-for-bit reproducible
	// and identical to the historical single-threaded solver. Values > 1
	// run that many workers over a shared open list, with the root primal
	// heuristics racing concurrently to seed the incumbent; results remain
	// correct (same proven status and gap guarantees) but the incumbent
	// point may differ between runs. Negative means runtime.NumCPU().
	Workers int
}

// Result is the outcome of Solve.
type Result struct {
	Status      Status
	Objective   float64   // incumbent objective (valid unless NoSolution/Infeasible)
	Bound       float64   // best proven lower bound on the optimum
	X           []float64 // incumbent point, one entry per variable
	Nodes       int       // branch-and-bound nodes explored
	LPSolves    int       // LP relaxations solved
	LPIters     int       // total simplex iterations across all LP solves
	LPDualIters int       // dual-simplex warm-start repair iterations
	LPLimited   int       // LP solves that hit the iteration limit
	SolveTime   time.Duration
	// Workers is the resolved worker count the solve ran with (≥ 1).
	Workers int
	// IncumbentUpdates counts accepted improvements of the shared
	// incumbent, including the serial driver's.
	IncumbentUpdates int
	// HeuristicWins counts incumbent updates contributed by the primal
	// heuristics (round/repair/complete and diving) rather than by
	// integral node relaxations.
	HeuristicWins int
	// RootBasis is the root relaxation's exported basis when it solved to
	// optimality (nil otherwise). Feed it to the next solve's
	// Options.RootBasis to warm-start across rounds.
	RootBasis *lp.Basis
	// RootLPIters counts the simplex iterations of the root relaxation
	// alone — the quantity cross-round warm starts shrink.
	RootLPIters int
}

// Gap reports the absolute optimality gap incumbent − bound (0 when proven
// optimal; +Inf when no incumbent exists).
func (r Result) Gap() float64 {
	if r.Status == NoSolution || r.Status == Infeasible {
		return math.Inf(1)
	}
	g := r.Objective - r.Bound
	if g < 0 {
		return 0
	}
	return g
}

type node struct {
	// Bound changes relative to the root problem, applied in order.
	changes []boundChange
	bound   float64 // parent LP objective (lower bound for this node)
	depth   int
}

type boundChange struct {
	v      int
	lo, up float64
}

// Solve minimizes the model and returns the result. The model may be solved
// repeatedly and modified between solves.
//
// Cancelling ctx aborts the search cooperatively: the context is polled at
// every branch-and-bound node and inside every LP's simplex loop, and the
// best incumbent found so far is returned with Status Cancelled (NoSolution
// when no incumbent exists yet). A ctx deadline and Options.TimeLimit
// compose; whichever expires first stops the search.
func (m *Model) Solve(ctx context.Context, opt Options) Result {
	start := clock.Now()
	if ctx == nil {
		ctx = context.Background() //raslint:allow ctxflow nil ctx defaults to Background at the public API boundary
	}
	if exactZero(opt.IntTol) {
		opt.IntTol = 1e-6
	}
	if exactZero(opt.AbsGap) {
		opt.AbsGap = 1e-6
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 100000
	}
	if opt.Workers < 0 {
		opt.Workers = runtime.NumCPU()
	}
	if opt.Workers == 0 {
		opt.Workers = 1
	}

	e := newEngine(ctx, m, opt, start)
	defer e.restoreRootBounds()

	var res Result
	if opt.Workers > 1 {
		res = m.solveParallel(e)
	} else {
		res = m.solveSerial(e)
	}
	e.fillStats(&res)
	res.Workers = opt.Workers
	res.SolveTime = clock.Since(start)

	metrics.Solver.Solves.Add(1)
	metrics.Solver.WorkersUsed.Add(int64(opt.Workers))
	metrics.Solver.NodesExplored.Add(int64(res.Nodes))
	metrics.Solver.IncumbentUpdates.Add(int64(res.IncumbentUpdates))
	metrics.Solver.HeuristicWins.Add(int64(res.HeuristicWins))
	return res
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func appendChange(cs []boundChange, c boundChange) []boundChange {
	out := make([]boundChange, len(cs)+1)
	copy(out, cs)
	out[len(cs)] = c
	return out
}

// nodeBounds reports the effective bounds of v at node nd.
func nodeBounds(nd node, v int, rootLo, rootUp float64) (lo, up float64) {
	lo, up = rootLo, rootUp
	for _, bc := range nd.changes {
		if bc.v == v {
			lo, up = bc.lo, bc.up
		}
	}
	return lo, up
}

// mostFractional returns the integer variable with value farthest from an
// integer, or -1 if all integer variables are integral within tol.
func (m *Model) mostFractional(x []float64, tol float64) int {
	best := -1
	bestDist := tol
	for j, isInt := range m.integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// objective evaluates the model objective (without offset) at x.
func (m *Model) objective(x []float64) float64 {
	obj := 0.0
	for j, c := range m.cost {
		obj += c * x[j]
	}
	return obj
}

// feasibleIntegral reports whether x satisfies every constraint, the
// model's current bounds, and integrality within tol.
func (m *Model) feasibleIntegral(x []float64, tol float64) bool {
	return m.feasibleIntegralIn(&m.prob, x, tol)
}

// feasibleIntegralIn is feasibleIntegral evaluated against the bounds of an
// explicit problem copy — the worker-local scratch of a parallel search,
// whose bounds may be tightened independently of the model's own problem.
func (m *Model) feasibleIntegralIn(p *lp.Problem, x []float64, tol float64) bool {
	if len(x) != p.NumVars() {
		return false
	}
	ftol := 1e-6
	for j := range x {
		if math.IsNaN(x[j]) {
			return false
		}
		lo, up := p.Bounds(j)
		if x[j] < lo-ftol || x[j] > up+ftol {
			return false
		}
		if m.integer[j] {
			if d := math.Abs(x[j] - math.Round(x[j])); d > tol {
				return false
			}
		}
	}
	for i, row := range m.rows {
		lhs := 0.0
		for _, nz := range row {
			lhs += nz.Value * x[nz.Index]
		}
		scale := 1.0 + math.Abs(m.rhs[i])
		switch m.senses[i] {
		case LE:
			if lhs > m.rhs[i]+ftol*scale {
				return false
			}
		case GE:
			if lhs < m.rhs[i]-ftol*scale {
				return false
			}
		case EQ:
			if math.Abs(lhs-m.rhs[i]) > ftol*scale {
				return false
			}
		}
	}
	return true
}

// Fractionality returns the indices of integer variables with fractional
// values in x, sorted by decreasing distance from integrality. It is used by
// diagnostics and tests.
func (m *Model) Fractionality(x []float64, tol float64) []int {
	type fv struct {
		j int
		d float64
	}
	var fs []fv
	for j, isInt := range m.integer {
		if !isInt || j >= len(x) {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > tol {
			fs = append(fs, fv{j, d})
		}
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].d > fs[b].d })
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = f.j
	}
	return out
}
