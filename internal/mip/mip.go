// Package mip implements a mixed-integer-programming solver: a modeling API
// for linear objectives and constraints over continuous and integer
// variables, plus a branch-and-bound search that uses package lp for node
// relaxations.
//
// mip is the engine behind the RAS async solver (internal/solver). The RAS
// formulation uses three nonlinear constructs that mip linearizes with
// auxiliary variables:
//
//   - max(0, expr)   → AddPosPart
//   - max over group sums (the embedded correlated-failure buffer)
//     → AddUpperEnvelope
//   - |expr − a| ≤ θ (network affinity) → AddAbsRange
//
// Solve reports not only an incumbent but also the best proven bound and the
// absolute gap, mirroring the quality-gap methodology of the paper's
// Figure 9 ("90% of solutions proven optimal within 200 preemptions").
package mip

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"ras/internal/lp"
)

// noWarm disables LP warm starts (debug toggle).
var noWarm = os.Getenv("MIP_NOWARM") != ""

// debugDive logs dive-heuristic exits (debug toggle).
var debugDive = os.Getenv("MIP_DEBUG_DIVE") != ""

// Var identifies a variable within a Model.
type Var int

// Term is one linear coefficient Coef·Var.
type Term struct {
	Var  Var
	Coef float64
}

// Sense re-exports the constraint senses of package lp.
type Sense = lp.Sense

// Constraint senses.
const (
	LE = lp.LE
	EQ = lp.EQ
	GE = lp.GE
)

// Inf is the bound value representing "no upper bound".
var Inf = lp.Inf

// Model is a mixed-integer program under construction.
type Model struct {
	prob    lp.Problem
	integer []bool
	names   []string
	cost    []float64 // mirror of objective coefficients for evaluation

	rows      [][]lp.Nonzero
	senses    []Sense
	rhs       []float64
	rowNames  []string
	objOffset float64

	initial []float64    // optional warm-start point (may be partial: NaN = unset)
	penalty map[Var]bool // soft-constraint slack variables (see MarkPenalty)

	// Column index caches for the repair heuristic, rebuilt lazily when the
	// model grows.
	colRows     [][]rowRef
	intOnlyRows []bool
	idxRows     int // row count when the caches were built
	idxVars     int
}

type rowRef struct {
	row  int
	coef float64
}

// buildColIndex (re)builds the column→rows index used by the repair
// heuristic. It is a no-op when the model has not grown since the last call.
func (m *Model) buildColIndex() {
	if m.idxRows == len(m.rows) && m.idxVars == m.prob.NumVars() {
		return
	}
	m.colRows = make([][]rowRef, m.prob.NumVars())
	m.intOnlyRows = make([]bool, len(m.rows))
	for i, row := range m.rows {
		pure := true
		for _, nz := range row {
			m.colRows[nz.Index] = append(m.colRows[nz.Index], rowRef{row: i, coef: nz.Value})
			if !m.integer[nz.Index] {
				pure = false
			}
		}
		m.intOnlyRows[i] = pure
	}
	m.idxRows = len(m.rows)
	m.idxVars = m.prob.NumVars()
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars reports the number of variables added so far.
func (m *Model) NumVars() int { return m.prob.NumVars() }

// NumIntVars reports the number of integer variables added so far.
func (m *Model) NumIntVars() int {
	n := 0
	for _, b := range m.integer {
		if b {
			n++
		}
	}
	return n
}

// NumConstrs reports the number of constraints added so far.
func (m *Model) NumConstrs() int { return len(m.rows) }

// VarName reports the name given to v at creation.
func (m *Model) VarName(v Var) string { return m.names[v] }

// AddVar adds a continuous variable and returns it. The lower bound must be
// finite; the upper bound may be mip.Inf.
func (m *Model) AddVar(name string, cost, lo, up float64) Var {
	j := m.prob.AddVar(cost, lo, up)
	m.integer = append(m.integer, false)
	m.names = append(m.names, name)
	m.cost = append(m.cost, cost)
	return Var(j)
}

// AddIntVar adds an integer variable and returns it.
func (m *Model) AddIntVar(name string, cost, lo, up float64) Var {
	v := m.AddVar(name, cost, lo, up)
	m.integer[v] = true
	return v
}

// AddBinVar adds a {0,1} variable and returns it.
func (m *Model) AddBinVar(name string, cost float64) Var {
	return m.AddIntVar(name, cost, 0, 1)
}

// AddConstr adds the constraint Σ terms sense rhs and returns its row index.
func (m *Model) AddConstr(name string, terms []Term, sense Sense, rhs float64) int {
	nz := make([]lp.Nonzero, 0, len(terms))
	for _, t := range terms {
		nz = append(nz, lp.Nonzero{Index: int(t.Var), Value: t.Coef})
	}
	m.prob.AddRow(nz, sense, rhs)
	m.rows = append(m.rows, nz)
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	m.rowNames = append(m.rowNames, name)
	return len(m.rows) - 1
}

// AddObjOffset adds a constant to the objective (bookkeeping only).
func (m *Model) AddObjOffset(c float64) { m.objOffset += c }

// AddPosPart adds an auxiliary continuous variable y with objective
// coefficient cost, constrained by y ≥ Σ terms + constant and y ≥ 0, and
// returns y. When cost > 0 and the model is minimized, y takes the value
// max(0, Σ terms + constant), which linearizes the hinge penalties of the
// RAS stability and spread objectives (paper expressions 1–3).
func (m *Model) AddPosPart(name string, terms []Term, constant, cost float64) Var {
	y := m.AddVar(name, cost, 0, Inf)
	row := make([]Term, 0, len(terms)+1)
	row = append(row, Term{y, 1})
	for _, t := range terms {
		row = append(row, Term{t.Var, -t.Coef})
	}
	m.AddConstr(name, row, GE, constant)
	return y
}

// AddUpperEnvelope adds an auxiliary continuous variable z with objective
// coefficient cost and one constraint z ≥ Σ group per group, returning z.
// Under minimization pressure z equals the maximum group sum, linearizing
// the correlated-failure-buffer term (paper expression 4) and providing the
// left-hand max of the buffer constraint (expression 6).
func (m *Model) AddUpperEnvelope(name string, groups [][]Term, cost float64) Var {
	z := m.AddVar(name, cost, 0, Inf)
	for gi, g := range groups {
		row := make([]Term, 0, len(g)+1)
		row = append(row, Term{z, 1})
		for _, t := range g {
			row = append(row, Term{t.Var, -t.Coef})
		}
		m.AddConstr(fmt.Sprintf("%s[%d]", name, gi), row, GE, 0)
	}
	return z
}

// AddAbsRange adds |Σ terms − target| ≤ theta as two linear rows,
// linearizing the network-affinity constraint (paper expression 7).
func (m *Model) AddAbsRange(name string, terms []Term, target, theta float64) {
	m.AddConstr(name+"/hi", terms, LE, target+theta)
	m.AddConstr(name+"/lo", terms, GE, target-theta)
}

// MarkPenalty declares v to be a pure penalty slack: a continuous variable
// that exists only to absorb a soft-constraint violation. Primal heuristics
// zero such variables when evaluating constraint rows, so violations hidden
// behind slack become visible to integer repair moves.
func (m *Model) MarkPenalty(v Var) {
	if m.penalty == nil {
		m.penalty = make(map[Var]bool)
	}
	m.penalty[v] = true
}

// SetInitial supplies a warm-start point. If the point is feasible and
// integral it seeds the incumbent, which lets Solve report gaps relative to
// the previous assignment exactly as RAS does between consecutive solves.
// Use math.NaN for variables without a hint.
func (m *Model) SetInitial(x []float64) {
	m.initial = append([]float64(nil), x...)
}

// Status reports the outcome of a MIP solve.
type Status int8

// Solve outcomes.
const (
	// Optimal means the incumbent was proven optimal within tolerances.
	Optimal Status = iota
	// Feasible means an incumbent exists but the search stopped early
	// (time, node limit); Bound and Gap quantify remaining uncertainty.
	Feasible
	// Infeasible means the relaxation has no feasible point.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// NoSolution means the search stopped before finding any incumbent.
	NoSolution
	// Cancelled means the solve context was cancelled mid-search while an
	// incumbent existed: X, Objective, Bound, and Gap are all valid, exactly
	// as for Feasible, but the stop was externally requested rather than a
	// time or node limit. Cancellation without an incumbent reports
	// NoSolution instead.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NoSolution:
		return "no-solution"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Options tunes the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock solve time. Zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes. Zero means 100000.
	MaxNodes int
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// AbsGap stops the search once incumbent − bound ≤ AbsGap. Zero means 1e-6.
	AbsGap float64
	// RelGap stops the search once the relative gap falls below it.
	RelGap float64
	// LPIterLimit bounds simplex iterations per node LP. Zero = lp default.
	LPIterLimit int
	// NoWarmStart disables LP warm starts between node/heuristic solves
	// (ablation: every LP solves from a cold crash basis).
	NoWarmStart bool
}

// Result is the outcome of Solve.
type Result struct {
	Status      Status
	Objective   float64   // incumbent objective (valid unless NoSolution/Infeasible)
	Bound       float64   // best proven lower bound on the optimum
	X           []float64 // incumbent point, one entry per variable
	Nodes       int       // branch-and-bound nodes explored
	LPSolves    int       // LP relaxations solved
	LPIters     int       // total simplex iterations across all LP solves
	LPDualIters int       // dual-simplex warm-start repair iterations
	LPLimited   int       // LP solves that hit the iteration limit
	SolveTime   time.Duration
}

// Gap reports the absolute optimality gap incumbent − bound (0 when proven
// optimal; +Inf when no incumbent exists).
func (r Result) Gap() float64 {
	if r.Status == NoSolution || r.Status == Infeasible {
		return math.Inf(1)
	}
	g := r.Objective - r.Bound
	if g < 0 {
		return 0
	}
	return g
}

type node struct {
	// Bound changes relative to the root problem, applied in order.
	changes []boundChange
	bound   float64 // parent LP objective (lower bound for this node)
	depth   int
}

type boundChange struct {
	v      int
	lo, up float64
}

// Solve minimizes the model and returns the result. The model may be solved
// repeatedly and modified between solves.
//
// Cancelling ctx aborts the search cooperatively: the context is polled at
// every branch-and-bound node and inside every LP's simplex loop, and the
// best incumbent found so far is returned with Status Cancelled (NoSolution
// when no incumbent exists yet). A ctx deadline and Options.TimeLimit
// compose; whichever expires first stops the search.
func (m *Model) Solve(ctx context.Context, opt Options) Result {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.IntTol == 0 {
		opt.IntTol = 1e-6
	}
	if opt.AbsGap == 0 {
		opt.AbsGap = 1e-6
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 100000
	}

	res := Result{Status: NoSolution, Objective: math.Inf(1), Bound: math.Inf(-1)}
	defer func() { res.SolveTime = time.Since(start) }()

	n := m.prob.NumVars()

	// Save root bounds so the model is unchanged after Solve.
	rootLo := make([]float64, n)
	rootUp := make([]float64, n)
	for j := 0; j < n; j++ {
		rootLo[j], rootUp[j] = m.prob.Bounds(j)
	}
	defer func() {
		for j := 0; j < n; j++ {
			m.prob.SetBounds(j, rootLo[j], rootUp[j])
		}
	}()

	lpOpt := lp.Options{MaxIter: opt.LPIterLimit}

	// Warm-start bookkeeping: every optimal LP exports its basis, and every
	// subsequent LP of this Solve (heuristic completions, dives, nodes)
	// starts from the most recent one. Bound changes between solves are
	// absorbed by dual-simplex repair inside package lp.
	var warmBasis *lp.Basis
	forceCold := false
	solveLP := func() lp.Solution {
		o := lpOpt
		o.Start = warmBasis
		if noWarm || forceCold || opt.NoWarmStart {
			o.Start = nil
		}
		sol := m.prob.Solve(ctx, o)
		res.LPSolves++
		res.LPIters += sol.Iterations
		res.LPDualIters += sol.DualIters
		if sol.Status == lp.IterLimit {
			res.LPLimited++
		}
		if sol.Basis != nil {
			warmBasis = sol.Basis
		}
		return sol
	}

	// Seed the incumbent from the warm-start point when valid.
	var incumbent []float64
	incObj := math.Inf(1)
	if m.initial != nil && m.feasibleIntegral(m.initial, opt.IntTol) {
		incumbent = append([]float64(nil), m.initial...)
		incObj = m.objective(incumbent)
	}

	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	timedOut := false
	cancelled := false
	expired := func() bool {
		if timedOut || cancelled {
			return true
		}
		// A context deadline is a time budget like Options.TimeLimit and
		// reports Feasible; only an explicit cancellation reports Cancelled.
		switch ctx.Err() {
		case nil:
		case context.DeadlineExceeded:
			timedOut = true
			return true
		default:
			cancelled = true
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
		}
		return timedOut
	}

	m.buildColIndex()

	// Continuous contribution range per row: with integer variables pinned,
	// how much can the row's continuous members still move the activity?
	// Pure-integer rows have a zero range; rows with an unbounded envelope
	// or free slack have an infinite side and never bind the guard there.
	contMin := make([]float64, len(m.rows))
	contMax := make([]float64, len(m.rows))
	for i, row := range m.rows {
		for _, nz := range row {
			if m.integer[nz.Index] {
				continue
			}
			lo, up := m.prob.Bounds(nz.Index)
			a, b := nz.Value*lo, nz.Value*up
			if a > b {
				a, b = b, a
			}
			contMin[i] += a
			contMax[i] += b
		}
	}

	// intAct tracks the integer-variable activity of every row.
	newIntAct := func(xi []float64) []float64 {
		act := make([]float64, len(m.rows))
		for i, row := range m.rows {
			for _, nz := range row {
				if m.integer[nz.Index] {
					act[i] += nz.Value * xi[nz.Index]
				}
			}
		}
		return act
	}
	// guardOK reports whether changing integer variable j by delta leaves
	// every row of j satisfiable by SOME continuous completion: the
	// completion LP cannot repair a row whose integer part has moved beyond
	// the reach of its continuous members.
	guardBlocked := func(act []float64, j int, delta float64) int {
		for _, ri := range m.colRows[j] {
			i := ri.row
			na := act[i] + ri.coef*delta
			switch m.senses[i] {
			case LE:
				if na+contMin[i] > m.rhs[i]+1e-9 {
					return i
				}
			case GE:
				if na+contMax[i] < m.rhs[i]-1e-9 {
					return i
				}
			case EQ:
				if na+contMin[i] > m.rhs[i]+1e-9 || na+contMax[i] < m.rhs[i]-1e-9 {
					return i
				}
			}
		}
		return -1
	}
	guardOK := func(act []float64, j int, delta float64) bool {
		return guardBlocked(act, j, delta) == -1
	}
	applyDelta := func(act, xi []float64, j int, delta float64) {
		xi[j] += delta
		for _, ri := range m.colRows[j] {
			act[ri.row] += ri.coef * delta
		}
	}
	// guardedRound rounds integer variable j in xi to an integer, preferring
	// the warm-start value when it brackets the fractional point (rounding
	// toward the incumbent avoids gratuitous deviation — e.g. spurious
	// server moves in the RAS model), then the nearest value, falling back
	// to the other side when pure-integer rows would be violated.
	guardedRound := func(act, xi []float64, j int) bool {
		lo, up := m.prob.Bounds(j)
		floor, ceil := math.Floor(xi[j]), math.Ceil(xi[j])
		frac := xi[j] - floor
		first, second := floor, ceil
		if frac > 0.5 {
			first, second = second, first
		}
		// Anchor toward the warm start only when the fractional point is
		// genuinely ambiguous; strong fractional pulls (e.g. capacity fills)
		// must win over stability.
		if m.initial != nil && j < len(m.initial) && frac > 0.35 && frac < 0.65 {
			if iv := m.initial[j]; iv == floor || iv == ceil {
				first, second = iv, floor+ceil-iv
			}
		}
		for _, v := range [2]float64{first, second} {
			if v < lo-1e-9 || v > up+1e-9 {
				continue
			}
			if guardOK(act, j, v-xi[j]) {
				applyDelta(act, xi, j, v-xi[j])
				return true
			}
		}
		return false
	}

	// completeLP fixes every integer variable to the values in xi, solves
	// the LP over the remaining continuous variables, and updates the
	// incumbent on success. It restores all bounds before returning.
	completeLP := func(xi []float64) bool {
		type saved struct {
			v      int
			lo, up float64
		}
		var undo []saved
		ok := true
		for j := 0; j < n && ok; j++ {
			if !m.integer[j] {
				continue
			}
			lo, up := m.prob.Bounds(j)
			v := math.Round(xi[j])
			if v < lo || v > up {
				ok = false
				break
			}
			undo = append(undo, saved{j, lo, up})
			m.prob.SetBounds(j, v, v)
		}
		improved := false
		if ok {
			sol := solveLP()
			if sol.Status == lp.Optimal {
				x := sol.X
				for j := 0; j < n; j++ {
					if m.integer[j] {
						x[j] = math.Round(x[j])
					}
				}
				if m.feasibleIntegral(x, opt.IntTol) {
					if obj := m.objective(x); obj < incObj {
						incObj = obj
						incumbent = append(incumbent[:0], x...)
						improved = true
					}
				}
			}
		}
		for i := len(undo) - 1; i >= 0; i-- {
			m.prob.SetBounds(undo[i].v, undo[i].lo, undo[i].up)
		}
		return improved
	}

	// roundRepairComplete is the primary primal heuristic: round integer
	// variables to nearest, repair violated rows by nudging integer
	// variables (guarding rows made purely of integer variables, like the
	// RAS assignment constraints, whose feasibility the completion LP
	// cannot restore), then let completeLP settle the continuous variables.
	// Two LP solves total regardless of problem size.
	roundRepairComplete := func(seed []float64) bool {
		xi := append([]float64(nil), seed...)
		for v := range m.penalty {
			xi[v] = 0 // expose soft violations to the repair pass
		}
		act := newIntAct(xi)
		// Guarded rounding in order of decreasing value keeps big counts
		// stable and lets small fractional ones absorb the adjustment.
		order := make([]int, 0, n)
		for j := 0; j < n; j++ {
			if m.integer[j] {
				order = append(order, j)
			}
		}
		sort.Slice(order, func(a, b int) bool { return xi[order[a]] > xi[order[b]] })
		for _, j := range order {
			if !guardedRound(act, xi, j) {
				return false // pure-integer rows unsatisfiable by rounding
			}
		}

		// Repair pass over mixed rows: with continuous variables at seed
		// values, bump zero-cost integer variables (guarded) to close
		// violations that rounding introduced — e.g. refill capacity lost
		// to rounded-down counts.
		for pass := 0; pass < 4; pass++ {
			dirty := false
			for i, row := range m.rows {
				if m.intOnlyRows[i] {
					continue // kept feasible by the guard
				}
				lhs := 0.0
				for _, nz := range row {
					lhs += nz.Value * xi[nz.Index]
				}
				var need float64
				switch m.senses[i] {
				case LE:
					if lhs > m.rhs[i]+1e-7 {
						need = m.rhs[i] - lhs
					}
				case GE:
					if lhs < m.rhs[i]-1e-7 {
						need = m.rhs[i] - lhs
					}
				case EQ:
					if math.Abs(lhs-m.rhs[i]) > 1e-7 {
						need = m.rhs[i] - lhs
					}
				}
				if need == 0 {
					continue
				}
				// Round-robin unit bumps across DISTINCT row variables: the
				// members usually span fault domains, and spreading the
				// bumps avoids inflating a max-per-domain envelope variable
				// that would cancel the gain. For the same reason,
				// inequality repairs overshoot by one unit: a single bump
				// can be eaten entirely by an envelope in its own domain.
				if m.senses[i] != EQ {
					need += 2 * sign(need)
				}
				// Unit bumps across distinct row variables, spread widely:
				// the members span fault domains, and clustered bumps can
				// be absorbed by a max-per-domain envelope variable. GE/LE
				// repairs overshoot (the envelope can eat one bump).
				bumped := map[int]bool{}
				for cycle := 0; cycle < 64 && math.Abs(need) > 1e-9; cycle++ {
					moved := false
					for _, nz := range row {
						j := nz.Index
						if !m.integer[j] || nz.Value == 0 || m.cost[j] != 0 || bumped[j] {
							continue
						}
						step := sign(need) * sign(nz.Value)
						lo, up := m.prob.Bounds(j)
						if xi[j]+step < lo-1e-9 || xi[j]+step > up+1e-9 || !guardOK(act, j, step) {
							continue
						}
						applyDelta(act, xi, j, step)
						bumped[j] = true
						need -= step * nz.Value
						dirty = true
						moved = true
						if math.Abs(need) <= 1e-9 || math.Signbit(need) != math.Signbit(need+step*nz.Value) {
							need = 0
							break
						}
					}
					if !moved {
						break
					}
					if len(bumped) >= len(row) {
						bumped = map[int]bool{}
					}
				}
			}
			if !dirty {
				break
			}
		}
		return completeLP(xi)
	}

	// dive runs the diving primal heuristic from an LP-feasible fractional
	// point: repeatedly fix integer variables that are already (nearly)
	// integral plus the single most fractional one to a rounded value, then
	// re-solve the LP until the point is integral or infeasible. It updates
	// the incumbent on success.
	dive := func(seed []float64, bias float64) {
		x := append([]float64(nil), seed...)
		// Temporary bound changes to undo afterwards.
		type saved struct {
			v      int
			lo, up float64
		}
		var undo []saved
		rollback := func(to int) {
			for i := len(undo) - 1; i >= to; i-- {
				m.prob.SetBounds(undo[i].v, undo[i].lo, undo[i].up)
			}
			undo = undo[:to]
		}
		defer func() { rollback(0) }()
		fixed := make([]bool, n)
		for depth := 0; depth < n+1; depth++ {
			if expired() {
				return
			}
			act := newIntAct(x)
			// fix pins variable j to a guarded rounding of its value.
			fix := func(j int) bool {
				lo, up := m.prob.Bounds(j)
				f := x[j] - math.Floor(x[j])
				if f > bias && f < 1 {
					x[j] = math.Min(up, math.Ceil(x[j])) - 1e-9
				}
				if !guardedRound(act, x, j) {
					return false
				}
				undo = append(undo, saved{j, lo, up})
				m.prob.SetBounds(j, x[j], x[j])
				fixed[j] = true
				return true
			}
			// Fix near-integral variables in bulk, then a batch of the most
			// fractional ones (warm-started dual repair keeps LP rounds
			// cheap). A per-variable guard cannot see joint effects through
			// coupled continuous variables (e.g. max-envelopes), so when a
			// batch lands infeasible we roll it back and retry one variable
			// at a time.
			type fc struct {
				j int
				d float64
			}
			var fracs []fc
			progress := false
			checkpoint := len(undo)
			var xcheck []float64
			for j := 0; j < n; j++ {
				if !m.integer[j] || fixed[j] {
					continue
				}
				f := x[j] - math.Floor(x[j])
				d := math.Min(f, 1-f)
				if d <= 0.01 {
					if fix(j) {
						progress = true
					}
				} else {
					fracs = append(fracs, fc{j, d})
				}
			}
			if len(fracs) == 0 {
				if !progress {
					break
				}
			} else {
				sort.Slice(fracs, func(a, b int) bool { return fracs[a].d > fracs[b].d })
				xcheck = append([]float64(nil), x...)
				batch := len(fracs)/8 + 1
				fixedAny := false
				for _, f := range fracs[:batch] {
					if fix(f.j) {
						fixedAny = true
					}
				}
				if !fixedAny && !progress {
					if debugDive {
						fmt.Printf("DIVE stuck at depth %d (%d fracs)\n", depth, len(fracs))
					}
					return
				}
			}
			sol := solveLP()
			if sol.Status != lp.Optimal && len(fracs) > 0 {
				// Batch overshot a coupled constraint: retry with a single
				// most-fractional fix from the checkpoint.
				rollback(checkpoint)
				copy(x, xcheck)
				for _, f := range fracs {
					fixed[f.j] = false
				}
				act = newIntAct(x)
				if !fix(fracs[0].j) {
					return
				}
				sol = solveLP()
			}
			if sol.Status != lp.Optimal {
				if debugDive {
					fmt.Printf("DIVE abort: LP %v at depth %d\n", sol.Status, depth)
				}
				return // infeasible dive; give up
			}
			x = sol.X
			if m.mostFractional(x, opt.IntTol) == -1 {
				// Snap integers exactly and accept if feasible.
				for j := 0; j < n; j++ {
					if m.integer[j] {
						x[j] = math.Round(x[j])
					}
				}
				if debugDive && !m.feasibleIntegral(x, opt.IntTol) {
					fmt.Printf("DIVE end: integral but infeasible\n")
				}
				if m.feasibleIntegral(x, opt.IntTol) {
					if obj := m.objective(x); obj < incObj {
						incObj = obj
						incumbent = append(incumbent[:0], x...)
					}
				}
				return
			}
		}
	}

	// Root relaxation.
	rootSol := solveLP()
	switch rootSol.Status {
	case lp.Infeasible:
		if incumbent != nil {
			// The warm start satisfies every row by direct evaluation, so an
			// infeasible relaxation is numerical noise; keep the incumbent.
			res.Status = Feasible
			res.Objective = incObj + m.objOffset
			res.Bound = math.Inf(-1)
			res.X = incumbent
			return res
		}
		res.Status = Infeasible
		return res
	case lp.Unbounded:
		res.Status = Unbounded
		return res
	case lp.IterLimit, lp.Cancelled:
		if incumbent == nil {
			res.Status = NoSolution
			return res
		}
		res.Status = Feasible
		if rootSol.Status == lp.Cancelled && ctx.Err() != context.DeadlineExceeded {
			res.Status = Cancelled
		}
		res.Objective = incObj + m.objOffset
		res.Bound = math.Inf(-1)
		res.X = incumbent
		return res
	}
	res.Bound = rootSol.Objective
	if m.mostFractional(rootSol.X, opt.IntTol) != -1 {
		roundRepairComplete(rootSol.X)
		dive(rootSol.X, 0.5)
		// A second, up-biased dive targets residual shortfalls that the
		// nearest-rounding dive strands (soft capacity slack).
		if incObj-rootSol.Objective > math.Max(10*opt.AbsGap, 0.05*math.Abs(incObj)) {
			dive(rootSol.X, 0.3)
		}
		// Warm-started LPs revisit vertices whose roundings can be brittle
		// on tightly-coupled instances; if the dives have not closed most
		// of the gap, retry once with cold LPs, which reach different
		// (often friendlier) vertices.
		if incObj-rootSol.Objective > math.Max(10*opt.AbsGap, 0.05*math.Abs(incObj)) {
			forceCold = true
			dive(rootSol.X, 0.5)
			forceCold = false
		}
		// Polish the incumbent with a repair pass; it can close residual
		// soft-penalty slack that greedy dives strand.
		if incumbent != nil {
			roundRepairComplete(incumbent)
		}
	}

	// Open-node pool. Depth-first diving with periodic best-bound selection
	// keeps memory modest while still improving the global bound.
	open := []node{{bound: rootSol.Objective}}
	bestBound := func() float64 {
		if len(open) == 0 {
			return incObj
		}
		b := math.Inf(1)
		for i := range open {
			if open[i].bound < b {
				b = open[i].bound
			}
		}
		return b
	}

	xbuf := make([]float64, n)

	for len(open) > 0 {
		if res.Nodes >= opt.MaxNodes || expired() {
			break
		}
		// Node selection: mostly LIFO (dive), every 16th node best-bound.
		pick := len(open) - 1
		if res.Nodes%16 == 15 {
			for i := range open {
				if open[i].bound < open[pick].bound {
					pick = i
				}
			}
		}
		nd := open[pick]
		open = append(open[:pick], open[pick+1:]...)

		// Prune against incumbent.
		if nd.bound >= incObj-opt.AbsGap {
			continue
		}

		// Apply node bounds.
		for j := 0; j < n; j++ {
			m.prob.SetBounds(j, rootLo[j], rootUp[j])
		}
		infeasBound := false
		for _, bc := range nd.changes {
			lo, up := bc.lo, bc.up
			if up < lo {
				infeasBound = true
				break
			}
			m.prob.SetBounds(bc.v, lo, up)
		}
		if infeasBound {
			continue
		}

		sol := solveLP()
		res.Nodes++
		if sol.Status == lp.Cancelled {
			// Put the node back so the final bound still accounts for its
			// unexplored subtree; the loop exits via expired() above.
			open = append(open, nd)
			continue
		}
		if sol.Status == lp.Infeasible || sol.Status == lp.IterLimit {
			continue
		}
		if sol.Status == lp.Unbounded {
			// Integer restrictions cannot repair an unbounded relaxation
			// in this node's subtree in a way we can detect; skip it.
			continue
		}
		if sol.Objective >= incObj-opt.AbsGap {
			continue
		}

		frac := m.mostFractional(sol.X, opt.IntTol)
		if frac == -1 {
			// Integral: new incumbent.
			if sol.Objective < incObj {
				incObj = sol.Objective
				incumbent = append(incumbent[:0], sol.X...)
			}
			continue
		}

		// Rounding heuristic: round to nearest integers, verify feasibility.
		copy(xbuf, sol.X)
		for j := 0; j < n; j++ {
			if m.integer[j] {
				xbuf[j] = math.Round(xbuf[j])
			}
		}
		if m.feasibleIntegral(xbuf, opt.IntTol) {
			if obj := m.objective(xbuf); obj < incObj {
				incObj = obj
				incumbent = append(incumbent[:0], xbuf...)
			}
		}
		// Periodic heuristics from this node's relaxation (bounds are still
		// the node's at this point) to refresh the incumbent.
		if res.Nodes%16 == 1 {
			roundRepairComplete(sol.X)
		}
		if res.Nodes%64 == 33 {
			dive(sol.X, 0.5)
		}

		// Branch on the most fractional variable.
		v := frac
		fv := sol.X[v]
		floorUp := math.Floor(fv + opt.IntTol)
		ceilLo := math.Ceil(fv - opt.IntTol)
		if ceilLo <= floorUp { // numerically integral; nudge
			ceilLo = floorUp + 1
		}
		loV, upV := nodeBounds(nd, v, rootLo[v], rootUp[v])

		up := node{
			changes: appendChange(nd.changes, boundChange{v, ceilLo, upV}),
			bound:   sol.Objective,
			depth:   nd.depth + 1,
		}
		down := node{
			changes: appendChange(nd.changes, boundChange{v, loV, floorUp}),
			bound:   sol.Objective,
			depth:   nd.depth + 1,
		}
		// Dive toward the nearer integer first (pushed last = popped first).
		if fv-floorUp < ceilLo-fv {
			open = append(open, up, down)
		} else {
			open = append(open, down, up)
		}
	}

	// Final polish: restore root bounds and re-run the repair heuristic on
	// the incumbent. Node incumbents found mid-search never saw it, and it
	// often closes residual soft-penalty slack.
	if incumbent != nil {
		for j := 0; j < n; j++ {
			m.prob.SetBounds(j, rootLo[j], rootUp[j])
		}
		roundRepairComplete(incumbent)
	}

	res.Bound = math.Min(bestBound(), incObj)
	if incumbent == nil {
		if len(open) == 0 && !timedOut && !cancelled && res.Nodes < opt.MaxNodes {
			res.Status = Infeasible
		} else {
			res.Status = NoSolution
		}
		return res
	}
	res.Objective = incObj + m.objOffset
	res.Bound += m.objOffset
	res.X = incumbent
	gap := incObj + m.objOffset - res.Bound
	rel := gap / (1 + math.Abs(res.Objective))
	if len(open) == 0 || gap <= opt.AbsGap || (opt.RelGap > 0 && rel <= opt.RelGap) {
		res.Status = Optimal
		if len(open) == 0 {
			res.Bound = res.Objective
		}
	} else if cancelled {
		res.Status = Cancelled
	} else {
		res.Status = Feasible
	}
	return res
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func appendChange(cs []boundChange, c boundChange) []boundChange {
	out := make([]boundChange, len(cs)+1)
	copy(out, cs)
	out[len(cs)] = c
	return out
}

// nodeBounds reports the effective bounds of v at node nd.
func nodeBounds(nd node, v int, rootLo, rootUp float64) (lo, up float64) {
	lo, up = rootLo, rootUp
	for _, bc := range nd.changes {
		if bc.v == v {
			lo, up = bc.lo, bc.up
		}
	}
	return lo, up
}

// mostFractional returns the integer variable with value farthest from an
// integer, or -1 if all integer variables are integral within tol.
func (m *Model) mostFractional(x []float64, tol float64) int {
	best := -1
	bestDist := tol
	for j, isInt := range m.integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// objective evaluates the model objective (without offset) at x.
func (m *Model) objective(x []float64) float64 {
	obj := 0.0
	for j, c := range m.cost {
		obj += c * x[j]
	}
	return obj
}

// feasibleIntegral reports whether x satisfies every constraint, all bounds,
// and integrality within tol.
func (m *Model) feasibleIntegral(x []float64, tol float64) bool {
	if len(x) != m.prob.NumVars() {
		return false
	}
	ftol := 1e-6
	for j := range x {
		if math.IsNaN(x[j]) {
			return false
		}
		lo, up := m.prob.Bounds(j)
		if x[j] < lo-ftol || x[j] > up+ftol {
			return false
		}
		if m.integer[j] {
			if d := math.Abs(x[j] - math.Round(x[j])); d > tol {
				return false
			}
		}
	}
	for i, row := range m.rows {
		lhs := 0.0
		for _, nz := range row {
			lhs += nz.Value * x[nz.Index]
		}
		scale := 1.0 + math.Abs(m.rhs[i])
		switch m.senses[i] {
		case LE:
			if lhs > m.rhs[i]+ftol*scale {
				return false
			}
		case GE:
			if lhs < m.rhs[i]-ftol*scale {
				return false
			}
		case EQ:
			if math.Abs(lhs-m.rhs[i]) > ftol*scale {
				return false
			}
		}
	}
	return true
}

// Fractionality returns the indices of integer variables with fractional
// values in x, sorted by decreasing distance from integrality. It is used by
// diagnostics and tests.
func (m *Model) Fractionality(x []float64, tol float64) []int {
	type fv struct {
		j int
		d float64
	}
	var fs []fv
	for j, isInt := range m.integer {
		if !isInt || j >= len(x) {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > tol {
			fs = append(fs, fv{j, d})
		}
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].d > fs[b].d })
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = f.j
	}
	return out
}
