package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ras/internal/metrics"
)

// TestRefactorCadenceDeterministic pins the sparse kernel's refactorization
// cadence to counts, never wall-clock: two identical Workers=1 solves must
// produce bit-for-bit identical objectives AND identical refactorization /
// eta-update counter deltas. Under Workers∈{2,4} the node trajectory is
// scheduler-dependent (DESIGN.md "Parallel solving"), so the counters are
// only required to show the kernel was exercised while the objective stays
// within the proven-optimality tolerance of the serial result.
func TestRefactorCadenceDeterministic(t *testing.T) {
	build := func() *Model {
		rng := rand.New(rand.NewSource(42))
		m, _ := randomAssignment(rng, 10, 5)
		return m
	}
	type runStats struct {
		status  Status
		obj     float64
		refacts int64
		etas    int64
	}
	solveOnce := func(workers int) runStats {
		m := build()
		r0 := metrics.LP.Refactorizations.Value()
		e0 := metrics.LP.UpdateEtas.Value()
		res := m.Solve(context.Background(), Options{Workers: workers, MaxNodes: 400})
		return runStats{
			status:  res.Status,
			obj:     res.Objective,
			refacts: metrics.LP.Refactorizations.Value() - r0,
			etas:    metrics.LP.UpdateEtas.Value() - e0,
		}
	}

	serial := solveOnce(1)
	if serial.status != Optimal {
		t.Fatalf("serial solve status %v, want optimal", serial.status)
	}
	if serial.refacts == 0 {
		t.Fatal("serial solve performed no refactorizations; kernel not exercised")
	}
	again := solveOnce(1)
	if again != serial {
		t.Fatalf("Workers=1 not deterministic: run 1 %+v, run 2 %+v (refactorization cadence must be count-driven)", serial, again)
	}

	for _, w := range []int{2, 4} {
		p := solveOnce(w)
		if p.status != Optimal {
			t.Fatalf("workers=%d status %v, want optimal", w, p.status)
		}
		if p.refacts == 0 {
			t.Fatalf("workers=%d performed no refactorizations", w)
		}
		// Both runs proved optimality at the default AbsGap (1e-6), so the
		// objectives agree to that tolerance even though trajectories differ.
		if math.Abs(p.obj-serial.obj) > 1e-5 {
			t.Fatalf("workers=%d objective %v differs from serial %v", w, p.obj, serial.obj)
		}
	}
}
