package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const eps = 1e-5

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func solveOpt(t *testing.T, m *Model) Result {
	t.Helper()
	r := m.Solve(context.Background(), Options{})
	if r.Status != Optimal {
		t.Fatalf("status=%v, want optimal (obj=%v bound=%v nodes=%d)", r.Status, r.Objective, r.Bound, r.Nodes)
	}
	return r
}

func TestPureLPPassThrough(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", -3, 0, 4)
	y := m.AddVar("y", -2, 0, Inf)
	m.AddConstr("cap", []Term{{x, 1}, {y, 1}}, LE, 6)
	r := solveOpt(t, m)
	if !approx(r.Objective, -16) {
		t.Fatalf("obj=%v, want -16", r.Objective)
	}
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary → a=0,b=1,c=1 (20).
	m := NewModel()
	a := m.AddBinVar("a", -10)
	b := m.AddBinVar("b", -13)
	c := m.AddBinVar("c", -7)
	m.AddConstr("w", []Term{{a, 3}, {b, 4}, {c, 2}}, LE, 6)
	r := solveOpt(t, m)
	if !approx(r.Objective, -20) {
		t.Fatalf("obj=%v, want -20 (x=%v)", r.Objective, r.X)
	}
	if !approx(r.X[b], 1) || !approx(r.X[c], 1) || !approx(r.X[a], 0) {
		t.Fatalf("solution %v, want b=c=1, a=0", r.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x + y s.t. 2x + y ≤ 4.5, x + 2y ≤ 4.5, integer → (1,1) or (2,0):
	// LP optimum is fractional (1.5, 1.5); MIP must reach obj 3 at (1,1)...
	// check: (2,0): 2*2+0=4 ≤ 4.5 OK, 2+0 ≤ 4.5 OK, obj 2. (1,1): 3 ≤ 4.5, 3 ≤ 4.5, obj 2.
	// Hmm (1,1) obj = 2 as well. Best integer obj = 2.
	m := NewModel()
	x := m.AddIntVar("x", -1, 0, Inf)
	y := m.AddIntVar("y", -1, 0, Inf)
	m.AddConstr("c1", []Term{{x, 2}, {y, 1}}, LE, 4.5)
	m.AddConstr("c2", []Term{{x, 1}, {y, 2}}, LE, 4.5)
	r := solveOpt(t, m)
	if !approx(r.Objective, -3) {
		// (1,2): 2+2=4 ≤ 4.5, 1+4=5 > 4.5 no. (2,1): 5 > 4.5 no. (0,2) obj 2.
		// Actually (1.5,1.5) rounds invalid; try (2,0),(0,2),(1,1) all obj 2.
		// And (1,1) leaves headroom — can we do (2,0)? obj 2. So optimum -2? No wait:
		// x=0,y=2: c1: 2 ≤ 4.5 ok; c2: 4 ≤ 4.5 ok. obj 2.
		// x=1,y=1 obj 2. Is obj 3 achievable? x=2,y=1: c1=5 >4.5 no. x=1,y=2: c2=5 no.
		if !approx(r.Objective, -2) {
			t.Fatalf("obj=%v, want -2", r.Objective)
		}
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 4i + c s.t. i + c ≥ 3.5, c ≤ 1.2, i integer ≥ 0.
	// c=1.2 → i ≥ 2.3 → i=3 → obj 13.2; i=2,c=1.5 invalid. Try i=3,c=0.5: obj 12.5.
	// Minimize: want i small: i=3, c=0.5 → 12.5. i=2 needs c ≥ 1.5 > 1.2 infeasible.
	m := NewModel()
	i := m.AddIntVar("i", 4, 0, Inf)
	c := m.AddVar("c", 1, 0, 1.2)
	m.AddConstr("need", []Term{{i, 1}, {c, 1}}, GE, 3.5)
	r := solveOpt(t, m)
	if !approx(r.Objective, 12.5) {
		t.Fatalf("obj=%v, want 12.5 (i=%v c=%v)", r.Objective, r.X[i], r.X[c])
	}
}

func TestInfeasibleMIP(t *testing.T) {
	m := NewModel()
	x := m.AddBinVar("x", 1)
	m.AddConstr("c", []Term{{x, 1}}, GE, 2)
	r := m.Solve(context.Background(), Options{})
	if r.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", r.Status)
	}
	if !math.IsInf(r.Gap(), 1) {
		t.Fatalf("gap=%v, want +Inf", r.Gap())
	}
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 2x = 1 with x integer: LP feasible (x=0.5), integer infeasible.
	m := NewModel()
	x := m.AddIntVar("x", 0, 0, 1)
	m.AddConstr("c", []Term{{x, 2}}, EQ, 1)
	r := m.Solve(context.Background(), Options{})
	if r.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", r.Status)
	}
}

func TestUnboundedMIP(t *testing.T) {
	m := NewModel()
	m.AddIntVar("x", -1, 0, Inf)
	r := m.Solve(context.Background(), Options{})
	if r.Status != Unbounded {
		t.Fatalf("status=%v, want unbounded", r.Status)
	}
}

func TestPosPart(t *testing.T) {
	// y = max(0, x - 5); minimize 2y + 0.1x with x ≥ 7 fixed demand.
	m := NewModel()
	x := m.AddVar("x", 0.1, 7, 7)
	y := m.AddPosPart("y", []Term{{x, 1}}, -5, 2)
	r := solveOpt(t, m)
	if !approx(r.X[y], 2) {
		t.Fatalf("y=%v, want 2", r.X[y])
	}
	if !approx(r.Objective, 4.7) {
		t.Fatalf("obj=%v, want 4.7", r.Objective)
	}
}

func TestPosPartZeroWhenNegative(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 1, 1)
	y := m.AddPosPart("y", []Term{{x, 1}}, -5, 3) // max(0, 1-5) = 0
	r := solveOpt(t, m)
	if !approx(r.X[y], 0) {
		t.Fatalf("y=%v, want 0", r.X[y])
	}
}

func TestUpperEnvelope(t *testing.T) {
	// Three groups with fixed sums 3, 8, 5; z must equal 8 when minimized.
	m := NewModel()
	a := m.AddVar("a", 0, 3, 3)
	b := m.AddVar("b", 0, 8, 8)
	c := m.AddVar("c", 0, 5, 5)
	z := m.AddUpperEnvelope("z", [][]Term{{{a, 1}}, {{b, 1}}, {{c, 1}}}, 1)
	r := solveOpt(t, m)
	if !approx(r.X[z], 8) {
		t.Fatalf("z=%v, want 8", r.X[z])
	}
}

func TestAbsRange(t *testing.T) {
	// |x - 10| ≤ 2 with min x → x = 8.
	m := NewModel()
	x := m.AddVar("x", 1, 0, Inf)
	m.AddAbsRange("aff", []Term{{x, 1}}, 10, 2)
	r := solveOpt(t, m)
	if !approx(r.X[x], 8) {
		t.Fatalf("x=%v, want 8", r.X[x])
	}
}

func TestWarmStartSeedsIncumbent(t *testing.T) {
	// A knapsack where the warm start is optimal; solver should confirm it.
	m := NewModel()
	a := m.AddBinVar("a", -10)
	b := m.AddBinVar("b", -13)
	m.AddConstr("w", []Term{{a, 3}, {b, 4}}, LE, 4)
	m.SetInitial([]float64{0, 1})
	r := solveOpt(t, m)
	if !approx(r.Objective, -13) {
		t.Fatalf("obj=%v, want -13", r.Objective)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	m := NewModel()
	a := m.AddBinVar("a", -1)
	m.AddConstr("w", []Term{{a, 1}}, LE, 0)
	m.SetInitial([]float64{1}) // violates w
	r := solveOpt(t, m)
	if !approx(r.Objective, 0) {
		t.Fatalf("obj=%v, want 0", r.Objective)
	}
}

func TestTimeLimitReportsFeasibleOrOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := randomAssignment(rng, 12, 6)
	r := m.Solve(context.Background(), Options{TimeLimit: time.Millisecond})
	switch r.Status {
	case Optimal, Feasible, NoSolution:
	default:
		t.Fatalf("status=%v", r.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := randomAssignment(rng, 10, 5)
	r := m.Solve(context.Background(), Options{MaxNodes: 1})
	if r.Nodes > 1 {
		t.Fatalf("explored %d nodes with MaxNodes=1", r.Nodes)
	}
}

func TestModelReusableAfterSolve(t *testing.T) {
	m := NewModel()
	x := m.AddIntVar("x", -1, 0, 5)
	m.AddConstr("c", []Term{{x, 2}}, LE, 7)
	r1 := solveOpt(t, m)
	r2 := solveOpt(t, m)
	if r1.Objective != r2.Objective {
		t.Fatalf("resolve changed objective: %v vs %v", r1.Objective, r2.Objective)
	}
	if !approx(r1.X[x], 3) {
		t.Fatalf("x=%v, want 3", r1.X[x])
	}
}

func TestObjOffset(t *testing.T) {
	m := NewModel()
	m.AddIntVar("x", 1, 2, 5)
	m.AddObjOffset(100)
	r := solveOpt(t, m)
	if !approx(r.Objective, 102) {
		t.Fatalf("obj=%v, want 102", r.Objective)
	}
}

func TestCounts(t *testing.T) {
	m := NewModel()
	m.AddVar("c", 0, 0, 1)
	m.AddIntVar("i", 0, 0, 1)
	m.AddBinVar("b", 0)
	m.AddConstr("r", []Term{{0, 1}}, LE, 1)
	if m.NumVars() != 3 || m.NumIntVars() != 2 || m.NumConstrs() != 1 {
		t.Fatalf("counts: vars=%d ints=%d constrs=%d", m.NumVars(), m.NumIntVars(), m.NumConstrs())
	}
	if m.VarName(1) != "i" {
		t.Fatalf("VarName(1)=%q", m.VarName(1))
	}
}

func TestFractionality(t *testing.T) {
	m := NewModel()
	m.AddIntVar("a", 0, 0, 10)
	m.AddVar("c", 0, 0, 10)
	m.AddIntVar("b", 0, 0, 10)
	fr := m.Fractionality([]float64{1.5, 2.7, 3.1}, 1e-6)
	if len(fr) != 2 || fr[0] != 0 || fr[1] != 2 {
		t.Fatalf("Fractionality=%v, want [0 2]", fr)
	}
}

// randomAssignment builds a generalized-assignment-style MIP: n items to k
// bins with capacities, plus a known feasible assignment.
func randomAssignment(rng *rand.Rand, n, k int) (*Model, []float64) {
	m := NewModel()
	vars := make([][]Var, n)
	point := make([]float64, 0, n*k)
	capUsed := make([]float64, k)
	for i := 0; i < n; i++ {
		vars[i] = make([]Var, k)
		for j := 0; j < k; j++ {
			cost := 1 + rng.Float64()*9
			vars[i][j] = m.AddBinVar("x", cost)
			point = append(point, 0)
		}
	}
	caps := make([]float64, k)
	for j := range caps {
		caps[j] = float64(2 + rng.Intn(3))
	}
	for i := 0; i < n; i++ {
		row := make([]Term, k)
		for j := 0; j < k; j++ {
			row[j] = Term{vars[i][j], 1}
		}
		m.AddConstr("assign", row, EQ, 1)
		// Feasible point: first bin with room.
		for j := 0; j < k; j++ {
			if capUsed[j] < caps[j] {
				capUsed[j]++
				point[i*k+j] = 1
				break
			}
		}
	}
	for j := 0; j < k; j++ {
		row := make([]Term, n)
		for i := 0; i < n; i++ {
			row[i] = Term{vars[i][j], 1}
		}
		m.AddConstr("cap", row, LE, caps[j])
	}
	return m, point
}

// TestQuickAssignment: property test over random assignment MIPs — result
// must be feasible, integral, and no worse than the greedy feasible point.
func TestQuickAssignment(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		k := 2 + rng.Intn(3)
		m, point := randomAssignment(rng, n, k)
		if float64(n) > 0 {
			// Ensure the greedy point actually assigned everyone (enough cap).
			assigned := 0.0
			for _, v := range point {
				assigned += v
			}
			if int(assigned) != n {
				return true // capacity too small for greedy; skip
			}
		}
		r := m.Solve(context.Background(), Options{MaxNodes: 5000})
		if r.Status != Optimal && r.Status != Feasible {
			t.Logf("seed %d: status %v", seed, r.Status)
			return false
		}
		if !m.feasibleIntegral(r.X, 1e-6) {
			t.Logf("seed %d: solution not feasible/integral", seed)
			return false
		}
		ref := m.objective(point)
		if r.Objective > ref+eps {
			t.Logf("seed %d: obj %v worse than greedy %v", seed, r.Objective, ref)
			return false
		}
		if r.Status == Optimal && r.Gap() > 1e-4 {
			t.Logf("seed %d: optimal status but gap %v", seed, r.Gap())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundSandwich: for solved instances, Bound ≤ Objective always.
func TestQuickBoundSandwich(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, _ := randomAssignment(rng, 3+rng.Intn(5), 2+rng.Intn(3))
		r := m.Solve(context.Background(), Options{MaxNodes: 2000})
		if r.Status != Optimal && r.Status != Feasible {
			return true
		}
		return r.Bound <= r.Objective+eps
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Unbounded: "unbounded", NoSolution: "no-solution",
	} {
		if s.String() != want {
			t.Errorf("%d.String()=%q want %q", s, s.String(), want)
		}
	}
	if Status(42).String() == "" {
		t.Error("unknown status must stringify")
	}
}

func BenchmarkKnapsack30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	weights := make([]float64, 30)
	values := make([]float64, 30)
	for i := range weights {
		weights[i] = 1 + rng.Float64()*9
		values[i] = 1 + rng.Float64()*9
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewModel()
		terms := make([]Term, 30)
		for j := range weights {
			v := m.AddBinVar("x", -values[j])
			terms[j] = Term{v, weights[j]}
		}
		m.AddConstr("w", terms, LE, 60)
		if r := m.Solve(context.Background(), Options{MaxNodes: 20000}); r.Status != Optimal && r.Status != Feasible {
			b.Fatalf("status=%v", r.Status)
		}
	}
}
