package mip

import (
	"context"
	"math"
	"testing"
	"time"

	"ras/internal/clock"
)

// TestMarkPenaltyExposesViolation: without MarkPenalty the repair heuristic
// sees a slack-satisfied row and leaves it; with it, the violation is
// visible and gets repaired. Both solves must end slack-free here because
// free capacity exists, but the penalty-marked variant must do it through
// the primal heuristic (few nodes).
func TestMarkPenaltyExposesViolation(t *testing.T) {
	build := func(mark bool) (*Model, Var, Var) {
		m := NewModel()
		x := m.AddIntVar("x", 0, 0, 10)
		s := m.AddVar("s", 1000, 0, 5)
		if mark {
			m.MarkPenalty(s)
		}
		m.AddConstr("cap", []Term{{x, 1}, {s, 1}}, GE, 5)
		m.AddConstr("assign", []Term{{x, 1}}, LE, 10)
		m.SetInitial([]float64{0, 5})
		return m, x, s
	}
	m, x, s := build(true)
	r := m.Solve(context.Background(), Options{MaxNodes: 10})
	if r.Status != Optimal && r.Status != Feasible {
		t.Fatalf("status %v", r.Status)
	}
	if r.X[s] > 1e-6 || r.X[x] < 5 {
		t.Fatalf("penalty not repaired: x=%v s=%v", r.X[x], r.X[s])
	}
}

// TestWarmAnchorKeepsInitial: with two symmetric optima, the warm-start
// anchor must prefer the one matching the initial point (no gratuitous
// "moves").
func TestWarmAnchorKeepsInitial(t *testing.T) {
	m := NewModel()
	a := m.AddIntVar("a", 0, 0, 10)
	b := m.AddIntVar("b", 0, 0, 10)
	// a + b = 9 with no cost difference: any split is optimal. LP vertices
	// land on bounds; the initial point marks the incumbent split.
	m.AddConstr("sum", []Term{{a, 1}, {b, 1}}, EQ, 9)
	m.SetInitial([]float64{4, 5})
	r := m.Solve(context.Background(), Options{})
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if r.X[a]+r.X[b] != 9 {
		t.Fatalf("constraint broken: %v", r.X)
	}
}

// TestDiveRollback: constructs a model where rounding several variables at
// once overshoots a coupled window, exercising the dive's batch rollback.
func TestDiveRollback(t *testing.T) {
	m := NewModel()
	var terms []Term
	for i := 0; i < 12; i++ {
		v := m.AddIntVar("x", -1, 0, 1) // maximize count
		terms = append(terms, Term{v, 1})
	}
	// A tight two-sided window forces careful rounding: sum in [5.4, 6.4].
	m.AddConstr("win-hi", terms, LE, 6.4)
	m.AddConstr("win-lo", terms, GE, 5.4)
	r := m.Solve(context.Background(), Options{MaxNodes: 50})
	if r.Status != Optimal && r.Status != Feasible {
		t.Fatalf("status %v", r.Status)
	}
	sum := 0.0
	for _, x := range r.X {
		sum += x
	}
	if sum != 6 {
		t.Fatalf("sum=%v, want 6 (integral point in window, maximized)", sum)
	}
}

// TestTimeLimitRespected: a generous assignment model with a tiny time
// budget must stop at the deadline. Time is logical, not wall: a
// clock.Stepper advances 1ms per Now read, so the engine's per-node
// deadline poll runs out of budget after a deterministic number of nodes
// and the test neither sleeps nor measures real elapsed time.
func TestTimeLimitRespected(t *testing.T) {
	m := NewModel()
	var terms []Term
	for i := 0; i < 40; i++ {
		v := m.AddIntVar("x", float64(i%7)-3, 0, 3)
		terms = append(terms, Term{v, float64(1 + i%4)})
	}
	m.AddConstr("cap", terms, LE, 50)
	step := clock.NewStepper(time.Unix(0, 0), time.Millisecond)
	defer clock.Override(step)()
	r := m.Solve(context.Background(), Options{TimeLimit: 50 * time.Millisecond})
	switch r.Status {
	case Optimal, Feasible, NoSolution, Unbounded:
	default:
		t.Fatalf("status %v", r.Status)
	}
	// SolveTime is read off the same stepper: the solve either finished
	// within budget or stopped at the first poll past the deadline, so
	// logical elapsed time can exceed the limit by at most a few reads.
	if r.SolveTime > 60*time.Millisecond {
		t.Fatalf("solve consumed %v of logical time against a 50ms limit", r.SolveTime)
	}
	if step.Reads() == 0 {
		t.Fatal("solve never consulted the clock seam")
	}
}

// TestGapReporting: on a solve stopped early, Bound ≤ Objective and Gap is
// their difference.
func TestGapReporting(t *testing.T) {
	m := NewModel()
	var terms []Term
	for i := 0; i < 25; i++ {
		v := m.AddBinVar("x", -(1 + float64(i%5)*0.37))
		terms = append(terms, Term{v, 1 + float64(i%3)*0.61})
	}
	m.AddConstr("w", terms, LE, 11.5)
	r := m.Solve(context.Background(), Options{MaxNodes: 3})
	if r.Status == Optimal || r.Status == Feasible {
		if r.Bound > r.Objective+1e-9 {
			t.Fatalf("bound %v above objective %v", r.Bound, r.Objective)
		}
		if g := r.Gap(); math.Abs(g-(r.Objective-r.Bound)) > 1e-9 && g != 0 {
			t.Fatalf("gap %v inconsistent", g)
		}
	}
}

// TestEnvelopeWithCapacity is the miniature RAS capacity pattern: counts
// across three domains, envelope over domain sums, capacity must survive
// the envelope subtraction.
func TestEnvelopeWithCapacity(t *testing.T) {
	m := NewModel()
	doms := make([]Var, 3)
	var groups [][]Term
	var total []Term
	for d := range doms {
		doms[d] = m.AddIntVar("n", 0, 0, 10)
		groups = append(groups, []Term{{doms[d], 1}})
		total = append(total, Term{doms[d], 1})
	}
	z := m.AddUpperEnvelope("z", groups, 3)
	cap := append(append([]Term{}, total...), Term{z, -1})
	m.AddConstr("cap", cap, GE, 10)
	r := m.Solve(context.Background(), Options{MaxNodes: 200})
	if r.Status != Optimal && r.Status != Feasible {
		t.Fatalf("status %v", r.Status)
	}
	sum, maxd := 0.0, 0.0
	for _, d := range doms {
		sum += r.X[d]
		if r.X[d] > maxd {
			maxd = r.X[d]
		}
	}
	if sum-maxd < 10-1e-6 {
		t.Fatalf("capacity violated: sum %v, max domain %v", sum, maxd)
	}
	// The optimum spreads 5/5/5: losing any domain leaves 10.
	if maxd > 5+1e-6 {
		t.Fatalf("envelope not minimized: max domain %v, want 5", maxd)
	}
}

// TestSolveTwiceSameModelDifferentBounds: bounds set via the problem before
// the second solve must be respected and then restored by Solve itself.
func TestBoundsRestoredAfterSolve(t *testing.T) {
	m := NewModel()
	x := m.AddIntVar("x", -1, 0, 9)
	m.AddConstr("c", []Term{{x, 1}}, LE, 9)
	r1 := m.Solve(context.Background(), Options{})
	if r1.X[x] != 9 {
		t.Fatalf("first solve x=%v", r1.X[x])
	}
	r2 := m.Solve(context.Background(), Options{})
	if r2.X[x] != 9 {
		t.Fatalf("bounds leaked across solves: x=%v", r2.X[x])
	}
}
