package mip

// Parallel branch-and-bound driver (Options.Workers > 1): a shared open
// list feeds a pool of worker goroutines, each with its own lp.Problem
// clone and warm-basis chain, while the root primal heuristics race on
// separate clones to seed the shared incumbent. The incumbent publication
// protocol and bound-soundness argument are documented in DESIGN.md
// ("Parallel solving").

import (
	"math"
	"sync"

	"ras/internal/lp"
)

// nodePool is the shared open-node list of the parallel search. Selection
// follows the serial policy (LIFO dives with every-16th best-bound pick,
// keyed on the pop sequence number). The pool tracks the bound of every
// node a worker currently holds so the global bound — min over open nodes
// AND in-flight nodes — never overstates what has been proven: a popped
// node's subtree is unexplored until the worker pushes its children.
type nodePool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	open     []node
	inflight map[int]float64 // worker id → bound of the node being expanded
	popped   int             // pop sequence number (drives best-bound picks)
	closed   bool            // stop: node/time limit reached or cancelled
}

func newNodePool(root node) *nodePool {
	p := &nodePool{open: []node{root}, inflight: map[int]float64{}}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// pop hands worker w the next node, blocking while the list is empty but
// other workers still hold nodes whose children may arrive. It returns
// false when the search is over: limits hit, cancelled, or the tree is
// exhausted (no open nodes and no in-flight workers).
func (p *nodePool) pop(w int, e *engine) (node, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if !p.closed && (int(e.nodes.Load()) >= e.opt.MaxNodes || e.expired()) {
			p.closed = true
			p.cond.Broadcast()
		}
		if !p.closed && e.opt.StallNodes > 0 {
			bb := p.bestBoundLocked(e)
			e.noteBound(bb)
			if e.stalled(bb) {
				p.closed = true
				p.cond.Broadcast()
			}
		}
		if p.closed {
			return node{}, false
		}
		if len(p.open) > 0 {
			pick := len(p.open) - 1
			if p.popped%16 == 15 {
				for i := range p.open {
					if p.open[i].bound < p.open[pick].bound {
						pick = i
					}
				}
			}
			p.popped++
			nd := p.open[pick]
			p.open = append(p.open[:pick], p.open[pick+1:]...)
			p.inflight[w] = nd.bound
			return nd, true
		}
		if len(p.inflight) == 0 {
			p.cond.Broadcast() // drained: wake every waiter so all exit
			return node{}, false
		}
		p.cond.Wait()
	}
}

// finish returns worker w's results: its children join the open list (even
// after close, so the final bound accounts for their subtrees) and the
// worker's in-flight claim is released.
func (p *nodePool) finish(w int, children []node) {
	p.mu.Lock()
	p.open = append(p.open, children...)
	delete(p.inflight, w)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// bestBound reports the minimum bound over open and in-flight nodes — the
// best objective any unexplored subtree could still reach. With nothing
// outstanding it returns the incumbent objective, matching the serial
// driver's convention.
func (p *nodePool) bestBound(e *engine) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bestBoundLocked(e)
}

// bestBoundLocked is bestBound for callers already holding p.mu.
func (p *nodePool) bestBoundLocked(e *engine) float64 {
	b := math.Inf(1)
	for i := range p.open {
		if p.open[i].bound < b {
			b = p.open[i].bound
		}
	}
	for _, v := range p.inflight {
		if v < b {
			b = v
		}
	}
	if math.IsInf(b, 1) {
		return e.bestObj()
	}
	return b
}

// remaining reports the number of unexplored open nodes.
func (p *nodePool) remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.open)
}

// processNode expands one node on the worker's private search state: prune,
// solve the relaxation, offer integral/rounded incumbents, run the periodic
// node heuristics, and branch. It returns the children to push (nil when
// pruned or fathomed) and whether the node must be requeued because its LP
// was cancelled mid-solve (its subtree is unexplored and must stay in the
// bound).
func (s *search) processNode(nd node) (children []node, requeue bool) {
	m, e := s.m, s.e
	opt := e.opt

	// Prune against the shared incumbent. A stale read is harmless: the
	// incumbent only improves, so the worst case is one extra LP solve.
	if nd.bound >= e.bestObj()-opt.AbsGap {
		return nil, false
	}
	if !s.applyNodeBounds(nd) {
		return nil, false
	}

	sol := s.solveLP()
	myNode := e.nodes.Add(1)
	if sol.Status == lp.Cancelled {
		return nil, true
	}
	if sol.Status == lp.Infeasible || sol.Status == lp.IterLimit || sol.Status == lp.Unbounded {
		return nil, false
	}
	if sol.Objective >= e.bestObj()-opt.AbsGap {
		return nil, false
	}

	frac := m.mostFractional(sol.X, opt.IntTol)
	if frac == -1 {
		e.offer(sol.X, sol.Objective, false)
		return nil, false
	}

	// Rounding heuristic: round to nearest integers, verify feasibility.
	copy(s.xbuf, sol.X)
	for j := 0; j < e.n; j++ {
		if m.integer[j] {
			s.xbuf[j] = math.Round(s.xbuf[j])
		}
	}
	if m.feasibleIntegralIn(s.prob, s.xbuf, opt.IntTol) {
		e.offer(s.xbuf, m.objective(s.xbuf), false)
	}
	// Periodic heuristics, on the serial schedule keyed to the global node
	// counter (bounds are still the node's at this point).
	if myNode%16 == 1 {
		s.roundRepairComplete(sol.X)
	}
	if myNode%64 == 33 {
		s.dive(sol.X, 0.5)
	}

	first, second := s.branch(nd, frac, sol.X[frac], sol.Objective)
	return []node{first, second}, false
}

// solveParallel is the Workers>1 branch-and-bound driver. The root
// relaxation solves once on the model's own problem; its exported basis
// then warm-starts every worker and heuristic goroutine (package lp copies
// a Basis on import and export, so sharing the pointer read-only is safe).
// Root heuristics race the B&B workers to seed the shared incumbent.
func (m *Model) solveParallel(e *engine) Result {
	opt := e.opt
	res := Result{Status: NoSolution, Objective: math.Inf(1), Bound: math.Inf(-1)}
	root := newSearch(e, &m.prob, e.opt.RootBasis)

	rootSol := root.solveRootLP()
	res.RootBasis = rootSol.Basis
	res.RootLPIters = rootSol.Iterations
	if e.handleRootStatus(&res, rootSol) {
		return res
	}
	res.Bound = rootSol.Objective

	pool := newNodePool(node{bound: rootSol.Objective})
	var wg sync.WaitGroup

	if m.mostFractional(rootSol.X, opt.IntTol) != -1 {
		// The serial root schedule runs these one after another; here they
		// race each other and the workers. Each goroutine gets its own
		// problem clone, so its temporary bound fixes never leak. The dives
		// poll expired() per depth, so cancellation stays prompt.
		rootX := rootSol.X
		heuristics := []func(hs *search){
			func(hs *search) { hs.roundRepairComplete(rootX) },
			func(hs *search) { hs.dive(rootX, 0.5) },
			func(hs *search) { hs.dive(rootX, 0.3) },
			func(hs *search) {
				// The serial schedule retries with cold LPs only when the
				// warm dives leave a large gap; racing, the cold dive is
				// simply a fourth independent shot at a different vertex.
				hs.forceCold = true
				hs.dive(rootX, 0.5)
			},
		}
		for _, h := range heuristics {
			hs := newSearch(e, m.prob.Clone(), rootSol.Basis)
			wg.Add(1)
			go func(h func(*search), hs *search) {
				defer wg.Done()
				h(hs)
			}(h, hs)
		}
	}

	for w := 0; w < opt.Workers; w++ {
		ws := newSearch(e, m.prob.Clone(), rootSol.Basis)
		wg.Add(1)
		go func(w int, ws *search) {
			defer wg.Done()
			for {
				nd, ok := pool.pop(w, e)
				if !ok {
					return
				}
				children, requeue := ws.processNode(nd)
				if requeue {
					children = append(children, nd)
				}
				pool.finish(w, children)
			}
		}(w, ws)
	}
	wg.Wait()

	// Final polish at root bounds on the model's own problem (all workers
	// have joined; no clone can race it). The root search's workspace still
	// holds the root basis as its warm-start seed.
	if inc, _ := e.incumbentCopy(); inc != nil {
		for j := 0; j < e.n; j++ {
			root.prob.SetBounds(j, e.rootLo[j], e.rootUp[j])
		}
		root.roundRepairComplete(inc)
	}

	return e.finalResult(res, pool.bestBound(e), pool.remaining())
}
