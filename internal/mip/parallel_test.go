package mip

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// fixedAssignment builds a deterministic assignment model large enough that
// the parallel driver actually runs several workers' worth of nodes.
func fixedAssignment(t *testing.T, seed int64, n, k int) (*Model, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, point := randomAssignment(rng, n, k)
	assigned := 0.0
	for _, v := range point {
		assigned += v
	}
	if int(assigned) != n {
		t.Fatalf("seed %d: greedy point assigned %v of %d tasks; pick another seed", seed, assigned, n)
	}
	if !m.feasibleIntegral(point, 1e-6) {
		t.Fatalf("seed %d: greedy point infeasible; pick another seed", seed)
	}
	return m, point
}

func TestParallelDeterministicObjective(t *testing.T) {
	// Identical objective (within gap tolerance) and structurally valid
	// assignments at every worker count, per-run and across runs.
	var ref Result
	for _, workers := range []int{1, 2, 4} {
		m, _ := fixedAssignment(t, 11, 12, 5)
		r := m.Solve(context.Background(), Options{Workers: workers, MaxNodes: 20000})
		if r.Status != Optimal {
			t.Fatalf("workers=%d: status=%v, want optimal (nodes=%d)", workers, r.Status, r.Nodes)
		}
		if r.Workers != workers {
			t.Fatalf("workers=%d: Result.Workers=%d", workers, r.Workers)
		}
		if !m.feasibleIntegral(r.X, 1e-6) {
			t.Fatalf("workers=%d: solution not feasible/integral", workers)
		}
		if got := m.objective(r.X); !approx(got, r.Objective) {
			t.Fatalf("workers=%d: reported obj %v but point evaluates to %v", workers, r.Objective, got)
		}
		if workers == 1 {
			ref = r
			continue
		}
		// Both runs proved optimality within AbsGap (1e-6 default), so the
		// objectives must agree to within twice that.
		if math.Abs(r.Objective-ref.Objective) > 2e-6 {
			t.Fatalf("workers=%d: obj %v differs from serial %v", workers, r.Objective, ref.Objective)
		}
	}
}

func TestParallelRepeatedSolveSameObjective(t *testing.T) {
	m, _ := fixedAssignment(t, 7, 10, 4)
	r1 := m.Solve(context.Background(), Options{Workers: 4, MaxNodes: 20000})
	r2 := m.Solve(context.Background(), Options{Workers: 4, MaxNodes: 20000})
	if r1.Status != Optimal || r2.Status != Optimal {
		t.Fatalf("status %v / %v, want optimal", r1.Status, r2.Status)
	}
	if math.Abs(r1.Objective-r2.Objective) > 2e-6 {
		t.Fatalf("repeated parallel solve: obj %v then %v", r1.Objective, r2.Objective)
	}
}

func TestParallelStatsPopulated(t *testing.T) {
	m, _ := fixedAssignment(t, 11, 12, 5)
	r := m.Solve(context.Background(), Options{Workers: 2, MaxNodes: 20000})
	if r.Status != Optimal && r.Status != Feasible {
		t.Fatalf("status=%v", r.Status)
	}
	if r.Nodes <= 0 || r.LPSolves <= 0 {
		t.Fatalf("stats not populated: nodes=%d lpSolves=%d", r.Nodes, r.LPSolves)
	}
	if r.IncumbentUpdates <= 0 {
		t.Fatalf("an optimal solve must have published at least one incumbent, got %d", r.IncumbentUpdates)
	}
}

// hardBinaryModel builds a market-split-style model whose LP relaxation is
// highly fractional, so branch-and-bound runs long enough to cancel
// mid-search. The returned point is feasible by construction.
func hardBinaryModel(seed int64, n, rows int) (*Model, []float64) {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	vars := make([]Var, n)
	point := make([]float64, n)
	for j := 0; j < n; j++ {
		vars[j] = m.AddBinVar("x", rng.Float64())
		if rng.Intn(2) == 1 {
			point[j] = 1
		}
	}
	for i := 0; i < rows; i++ {
		terms := make([]Term, n)
		rhs := 0.0
		for j := 0; j < n; j++ {
			a := float64(rng.Intn(100))
			terms[j] = Term{vars[j], a}
			rhs += a * point[j]
		}
		m.AddConstr("split", terms, EQ, rhs)
	}
	return m, point
}

func TestParallelCancelReturnsIncumbentNoLeak(t *testing.T) {
	// Slow enough that cancellation lands mid-search; the warm-start point
	// guarantees an incumbent exists from node zero.
	m, point := hardBinaryModel(17, 40, 5)
	m.SetInitial(point)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := m.Solve(ctx, Options{Workers: 4, MaxNodes: 1 << 30})
	elapsed := time.Since(start)

	if r.Status != Cancelled {
		t.Fatalf("status=%v, want cancelled", r.Status)
	}
	if r.X == nil {
		t.Fatalf("no incumbent returned despite warm start")
	}
	if !m.feasibleIntegral(r.X, 1e-6) {
		t.Fatalf("returned incumbent not feasible/integral")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: solve ran %v", elapsed)
	}
	// All workers and heuristic goroutines must have joined. Poll briefly:
	// unrelated runtime goroutines may take a moment to retire.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before solve, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParallelBoundsRestoredAfterSolve(t *testing.T) {
	m, _ := fixedAssignment(t, 7, 10, 4)
	type b struct{ lo, up float64 }
	orig := make([]b, m.NumVars())
	for j := range orig {
		orig[j].lo, orig[j].up = m.prob.Bounds(j)
	}
	if r := m.Solve(context.Background(), Options{Workers: 4, MaxNodes: 20000}); r.Status != Optimal {
		t.Fatalf("status=%v", r.Status)
	}
	for j := range orig {
		lo, up := m.prob.Bounds(j)
		if lo != orig[j].lo || up != orig[j].up {
			t.Fatalf("var %d bounds [%v,%v] after solve, want [%v,%v]", j, lo, up, orig[j].lo, orig[j].up)
		}
	}
}

func TestParallelNegativeWorkersMeansNumCPU(t *testing.T) {
	m, _ := fixedAssignment(t, 7, 10, 4)
	r := m.Solve(context.Background(), Options{Workers: -1, MaxNodes: 20000})
	if r.Workers != runtime.NumCPU() {
		t.Fatalf("Workers=-1 resolved to %d, want NumCPU=%d", r.Workers, runtime.NumCPU())
	}
}

// Regression tests from the serial-assumption bug sweep. The parallel driver
// shares node.changes slices between sibling nodes and between goroutines, so
// appendChange must never alias its input's backing array.
func TestAppendChangeDoesNotAliasParent(t *testing.T) {
	parent := make([]boundChange, 1, 8) // spare capacity invites aliasing bugs
	parent[0] = boundChange{v: 0, lo: 0, up: 1}
	c1 := appendChange(parent, boundChange{v: 1, lo: 0, up: 0})
	c2 := appendChange(parent, boundChange{v: 2, lo: 1, up: 1})
	c1[0] = boundChange{v: 9, lo: 9, up: 9}
	c1[1] = boundChange{v: 9, lo: 9, up: 9}
	if parent[0].v != 0 {
		t.Fatalf("mutating child corrupted parent: %+v", parent[0])
	}
	if c2[1].v != 2 || c2[1].lo != 1 {
		t.Fatalf("sibling shares backing array: %+v", c2[1])
	}
}

func TestSetInitialCopiesCallerSlice(t *testing.T) {
	m := NewModel()
	x := m.AddBinVar("x", -1)
	m.AddConstr("c", []Term{{x, 1}}, LE, 1)
	point := []float64{1}
	m.SetInitial(point)
	point[0] = 123 // caller reuses its buffer; the model must not see this
	r := m.Solve(context.Background(), Options{})
	if r.Status != Optimal || !approx(r.Objective, -1) {
		t.Fatalf("status=%v obj=%v, want optimal -1", r.Status, r.Objective)
	}
	if m.initial[0] != 1 {
		t.Fatalf("SetInitial aliased the caller's slice: %v", m.initial)
	}
}

func TestConcurrentSolvesOnSeparateModels(t *testing.T) {
	// Two models solving at once (each with internal parallelism) must not
	// interfere — guards against hidden package-level mutable state.
	done := make(chan Result, 2)
	for _, seed := range []int64{7, 11} {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			m, _ := randomAssignment(rng, 10, 4)
			done <- m.Solve(context.Background(), Options{Workers: 2, MaxNodes: 20000})
		}(seed)
	}
	for i := 0; i < 2; i++ {
		r := <-done
		if r.Status != Optimal && r.Status != Feasible {
			t.Fatalf("concurrent solve %d: status=%v", i, r.Status)
		}
	}
}
