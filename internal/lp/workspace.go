package lp

import (
	"context"
	"math"

	"ras/internal/metrics"
)

// Workspace holds every piece of solver state that survives between solves:
// the simplex structure derived from a Problem's rows (sparse columns, the
// slack/artificial layout, the constant phase-1 cost vector), the basis
// state of the previous solve (basis, statuses, the sparse factorization),
// and all pricing/ratio-test scratch vectors. Building the structure is
// O(nnz + m), and every retained buffer — including the factorization — is
// O(nnz + m) of memory; re-entering a workspace for a problem of the same
// shape reuses all of it, which makes steady-state re-solves
// allocation-free apart from the Solution's X vector.
//
// A Workspace is owned by one goroutine at a time. It retargets itself
// automatically when handed a different Problem or a Problem whose shape
// (variable or row count) changed since the last solve; retained basis
// state is discarded on retarget.
//
// Variables are indexed 0..nStruct-1 structural, then slacks, then one
// artificial per row starting at artStart.
type Workspace struct {
	// Per-solve context, reset on every entry.
	ctx    context.Context
	opt    Options
	iters  int
	diters int

	// Structure, rebuilt by reshape when the owner or shape changes.
	owner    *Problem
	m        int // rows
	n        int // total columns (structural + slacks + artificials)
	nStruct  int // structural variable count
	cols     [][]Nonzero
	artStart int       // first artificial column index
	slackOf  []int     // row → slack column, or -1 for equality rows
	phase1   []float64 // phase-1 cost vector: 1 on artificials, else 0

	// Numeric inputs, refreshed from the Problem on every entry.
	cost []float64 // phase-2 costs (structural section copied per solve)
	lo   []float64
	up   []float64
	b    []float64 // row RHS (equalities)

	// Working basis state, mutated freely during a solve.
	basis    []int  // basis[i] = column basic in row i
	inRow    []int  // inRow[j] = row where j is basic, or -1
	atUp     []bool // nonbasic at upper bound (else at lower)
	x        []float64
	fact     *factor // sparse basis factorization (LU + eta file)
	repaired bool    // last refactorization swapped artificials into the basis

	// Retained good basis: a snapshot of the most recent optimal,
	// artificial-free basis, the warm-start seed for ReuseBasis solves. The
	// snapshot is an index set only — basis columns and bound statuses — and
	// is re-factorized on entry (O(nnz + fill), not O(m³)); when the live
	// factorization still belongs to the snapshot basis even that is
	// skipped. The advance rule is exactly the one the historical Basis
	// export/import chain followed — non-optimal or artificial-containing
	// terminal bases never advance it.
	goodCols   []int
	goodAtUp   []bool
	goodOK     bool // a good snapshot exists for the current shape
	liveIsGood bool // live factorization still matches goodCols (skip refactorization)

	// Scratch buffers.
	y     []float64 // dual prices c_B^T B^-1
	w     []float64 // pivot column B^-1 a_q
	wnz   []int     // nonzero slots of w, ascending
	cb    []float64 // basic cost vector (BTRAN source) / unit-vector scratch
	brow  []float64 // one row of B^-1 (Devex and dual ratio tests)
	resid []float64 // residual / recompute RHS scratch

	// Devex pricing state: reference weights (reset per optimize call) and
	// the partial-pricing block rotor, which persists across solves so
	// pricing effort rotates through the columns deterministically.
	gamma []float64
	rotor int
}

// NewWorkspace returns an empty workspace. Structure is built lazily on the
// first solve and rebuilt whenever the problem shape changes.
func NewWorkspace() *Workspace {
	return &Workspace{}
}

// solve is the single entry point behind Problem.Solve/SolveWith. Options
// are already defaulted by the caller.
func (s *Workspace) solve(ctx context.Context, p *Problem, opt Options) Solution {
	reused := s.reshape(p)
	if reused {
		metrics.LP.WorkspaceReuses.Add(1)
	}
	s.ctx = ctx
	s.opt = opt
	if opt.MaxIter == 0 {
		s.opt.MaxIter = 2000 + 40*(s.m+s.n)
	}
	s.iters = 0
	s.diters = 0
	s.refresh(p)

	// Warm-start preference order: the workspace's own retained good basis
	// (no allocations, and no refactorization when the live factorization is
	// still the snapshot's), then an imported basis snapshot, then cold.
	if opt.ReuseBasis && s.goodOK && reused {
		if sol, ok := s.runReuse(); ok {
			metrics.LP.WarmHits.Add(1)
			sol.WarmStarted = true
			return sol
		}
		metrics.LP.WarmMisses.Add(1)
		warmIters := s.iters
		s.iters = 0
		s.diters = 0
		s.refresh(p) // warm attempt pinned artificial bounds; reset them
		sol := s.run()
		sol.Iterations += warmIters
		return sol
	}
	if opt.Start != nil {
		if sol, ok := s.runWarm(opt.Start); ok {
			metrics.LP.WarmHits.Add(1)
			sol.WarmStarted = true
			return sol
		}
		metrics.LP.WarmMisses.Add(1)
		warmIters := s.iters
		s.iters = 0
		s.diters = 0
		s.refresh(p)
		sol := s.run()
		sol.Iterations += warmIters
		return sol
	}
	return s.run()
}

// reshape points the workspace at p, rebuilding the simplex structure unless
// the workspace already holds it for this exact problem and shape. It
// reports whether the existing structure was reused.
func (s *Workspace) reshape(p *Problem) bool {
	m, nStruct := len(p.rows), len(p.cost)
	if s.owner == p && s.m == m && s.nStruct == nStruct {
		return true
	}
	s.owner = p
	s.m = m
	s.nStruct = nStruct
	s.goodOK = false
	s.liveIsGood = false
	s.rotor = 0

	// Structural columns from the sparse rows.
	cols := make([][]Nonzero, nStruct, nStruct+2*m)
	for i, row := range p.rows {
		for _, nz := range row {
			cols[nz.Index] = append(cols[nz.Index], Nonzero{Index: i, Value: nz.Value})
		}
	}

	// Slack columns: one per inequality row, +1 for LE and -1 for GE, with
	// fixed bounds [0, +Inf) and zero cost.
	s.slackOf = make([]int, m)
	for i := range s.slackOf {
		s.slackOf[i] = -1
	}
	for i, sense := range p.senses {
		switch sense {
		case LE:
			s.slackOf[i] = len(cols)
			cols = append(cols, []Nonzero{{Index: i, Value: 1}})
		case GE:
			s.slackOf[i] = len(cols)
			cols = append(cols, []Nonzero{{Index: i, Value: -1}})
		case EQ:
			// no slack
		}
	}

	s.artStart = len(cols)
	for i := 0; i < m; i++ {
		cols = append(cols, []Nonzero{{Index: i, Value: 1}}) // sign fixed per cold start
	}
	s.cols = cols
	s.n = len(cols)
	n := s.n

	s.cost = make([]float64, n)
	s.lo = make([]float64, n)
	s.up = make([]float64, n)
	s.b = make([]float64, m)
	for j := s.nStruct; j < s.artStart; j++ {
		s.up[j] = Inf // slack bounds are constant: [0, +Inf)
	}
	s.phase1 = make([]float64, n)
	for i := 0; i < m; i++ {
		s.phase1[s.artStart+i] = 1
	}

	s.basis = make([]int, m)
	s.inRow = make([]int, n)
	s.atUp = make([]bool, n)
	s.x = make([]float64, n)
	s.fact = newFactor(m)
	s.goodCols = make([]int, m)
	s.goodAtUp = make([]bool, n)

	s.y = make([]float64, m)
	s.w = make([]float64, m)
	s.wnz = make([]int, 0, m)
	s.cb = make([]float64, m)
	s.brow = make([]float64, m)
	s.resid = make([]float64, m)
	s.gamma = make([]float64, n)
	return false
}

// refresh copies the problem's current numeric data (costs, bounds, RHS)
// into the workspace and resets the artificial bounds to their pre-solve
// state. Structure and basis state are untouched.
func (s *Workspace) refresh(p *Problem) {
	copy(s.cost[:s.nStruct], p.cost)
	copy(s.lo[:s.nStruct], p.lo)
	copy(s.up[:s.nStruct], p.up)
	copy(s.b, p.rhs)
	for i := 0; i < s.m; i++ {
		a := s.artStart + i
		s.lo[a] = 0
		s.up[a] = Inf
	}
}

// run performs the two-phase cold solve.
func (s *Workspace) run() Solution {
	m := s.m
	s.liveIsGood = false

	// Initial point: every non-artificial variable at a finite bound
	// (prefer the lower bound, which is always finite).
	clear(s.x)
	clear(s.atUp)
	for j := 0; j < s.artStart; j++ {
		s.x[j] = s.lo[j]
	}

	// Residual r = b - A·x determines artificial signs and values.
	resid := s.resid
	copy(resid, s.b)
	for j := 0; j < s.artStart; j++ {
		if exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	// Initial basis: a row's own slack when the slack value would be
	// feasible (a "crash" basis that usually covers most rows), otherwise
	// the row's artificial. Artificials stay fixed at zero for rows that
	// do not need one.
	for j := range s.inRow {
		s.inRow[j] = -1
	}
	needPhase1 := false
	for i := 0; i < m; i++ {
		a := s.artStart + i
		if resid[i] < 0 {
			s.cols[a][0].Value = -1
		} else {
			s.cols[a][0].Value = 1
		}
		sl := s.slackOf[i]
		slackVal := 0.0
		useSlack := false
		if sl >= 0 {
			// slack coefficient is +1 for LE, -1 for GE.
			slackVal = resid[i] * s.cols[sl][0].Value
			useSlack = slackVal >= 0
		}
		if useSlack {
			s.basis[i] = sl
			s.inRow[sl] = i
			s.x[sl] = slackVal
			s.up[a] = 0 // artificial unused; pin it
		} else {
			s.basis[i] = a
			s.inRow[a] = i
			s.x[a] = math.Abs(resid[i])
			if s.x[a] > s.opt.Tol {
				needPhase1 = true
			}
		}
	}
	if !s.refactorize() {
		return Solution{Status: Singular, X: s.structX(), Iterations: s.iters}
	}

	// Phase 1: minimize the sum of active artificials.
	if needPhase1 {
		st := s.optimize(s.phase1, s.artStart)
		if st == IterLimit || st == Cancelled || st == Singular {
			return Solution{Status: st, X: s.structX(), Iterations: s.iters}
		}
		infeas := 0.0
		for i := 0; i < m; i++ {
			infeas += s.x[s.artStart+i]
		}
		if infeas > s.feasTol() {
			return Solution{Status: Infeasible, X: s.structX(), Iterations: s.iters}
		}
	}

	// Pin artificials to zero for phase 2. Basic artificials (degenerate at
	// zero) are allowed to remain basic; the bound pin keeps them at zero.
	for i := 0; i < m; i++ {
		a := s.artStart + i
		s.up[a] = 0
		if !exactZero(s.x[a]) {
			s.x[a] = 0 // clean up residual fuzz below tolerance
		}
	}

	// Phase 2: minimize the true objective.
	st := s.optimize(s.cost, s.n)
	return s.finish(st)
}

// finish assembles a Solution from the current state and advances the
// retained good basis when the solve earned it.
func (s *Workspace) finish(st Status) Solution {
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.cost[j] * s.x[j]
	}
	sol := Solution{Status: st, Objective: obj, X: s.structX(), Iterations: s.iters, DualIters: s.diters}
	if st == Optimal && s.opt.ExportBasis {
		sol.Basis = s.exportBasis()
	}
	s.saveGood(st)
	return sol
}

// saveGood snapshots the working basis as the retained warm-start seed when
// it is optimal and artificial-free — the exact condition under which the
// historical export/import chain advanced. Anything else leaves the previous
// snapshot in place, so a later ReuseBasis solve warm-starts from the last
// good basis rather than from an infeasible or truncated terminal state.
// Only the basis index set and bound statuses are copied; the factorization
// is rebuilt (or, when the live one is still current, reused) on re-entry.
func (s *Workspace) saveGood(st Status) {
	s.liveIsGood = false
	if st != Optimal {
		return
	}
	for _, c := range s.basis {
		if c >= s.artStart {
			return
		}
	}
	copy(s.goodCols, s.basis)
	copy(s.goodAtUp, s.atUp)
	s.goodOK = true
	s.liveIsGood = true
}

// exportBasis snapshots the basis if it contains no artificial columns
// (artificial signs are cold-start-dependent, so such bases do not transfer).
func (s *Workspace) exportBasis() *Basis {
	for _, c := range s.basis {
		if c >= s.artStart {
			return nil
		}
	}
	return &Basis{
		cols: append([]int(nil), s.basis...),
		atUp: append([]bool(nil), s.atUp[:s.n]...),
	}
}

// runReuse attempts a warm solve from the workspace's retained good basis —
// the allocation-free fast path for branch-and-bound node LPs, where
// consecutive solves differ only in variable bounds. The snapshot holds only
// the basis index set, so entry re-factorizes it — except in the common
// steady-state case where the previous solve ended by saving exactly the
// basis the factorization already represents (bounds never enter B, so the
// factors stay valid across the caller's bound changes). It reports ok=false
// when numerical or dual-feasibility checks fail, in which case the caller
// cold-starts.
func (s *Workspace) runReuse() (Solution, bool) {
	m := s.m
	live := s.liveIsGood
	s.liveIsGood = false

	for j := range s.inRow {
		s.inRow[j] = -1
	}
	for i, c := range s.goodCols {
		s.basis[i] = c
		s.inRow[c] = i
	}
	// Install statuses: nonbasic at a bound, artificials pinned at zero.
	clear(s.x)
	clear(s.atUp)
	for i := 0; i < m; i++ {
		s.up[s.artStart+i] = 0
	}
	for j := 0; j < s.n; j++ {
		if s.inRow[j] >= 0 {
			continue
		}
		if s.goodAtUp[j] && !math.IsInf(s.up[j], 1) {
			s.x[j] = s.up[j]
			s.atUp[j] = true
		} else {
			s.x[j] = s.lo[j]
		}
	}
	if live {
		s.recomputeBasics()
		if !s.residualOK() && !s.refactorize() {
			return Solution{}, false
		}
	} else if !s.refactorize() {
		return Solution{}, false
	}
	return s.warmFinish()
}

// runWarm attempts a warm-started solve from a previously exported basis.
// It reports ok=false when the basis is structurally unusable or numerical
// checks fail, in which case the caller should cold-start. The snapshot
// carries no factorization — the basis index set is re-factorized here.
func (s *Workspace) runWarm(start *Basis) (Solution, bool) {
	m, n := s.m, s.n
	s.liveIsGood = false
	if len(start.cols) != m || len(start.atUp) != n {
		return Solution{}, false
	}
	for j := range s.inRow {
		s.inRow[j] = -1
	}
	for i, c := range start.cols {
		if c < 0 || c >= s.artStart || s.inRow[c] >= 0 {
			// Out-of-range, artificial, or duplicate column: unusable. Reset
			// inRow so the basis state is not half-installed.
			for j := range s.inRow {
				s.inRow[j] = -1
			}
			return Solution{}, false
		}
		s.basis[i] = c
		s.inRow[c] = i
	}

	// Install statuses: nonbasic at a bound, artificials pinned at zero.
	clear(s.x)
	clear(s.atUp)
	for i := 0; i < m; i++ {
		s.up[s.artStart+i] = 0
	}
	for j := 0; j < n; j++ {
		if s.inRow[j] >= 0 {
			continue
		}
		if start.atUp[j] && !math.IsInf(s.up[j], 1) {
			s.x[j] = s.up[j]
			s.atUp[j] = true
		} else {
			s.x[j] = s.lo[j]
		}
	}
	if !s.refactorize() {
		return Solution{}, false
	}
	return s.warmFinish()
}

// warmFinish is the shared tail of every warm start: dual feasibility check,
// dual-simplex repair of primal feasibility, then a primal polish. The
// fallback rules keep warm verdicts sound: infeasibility and unboundedness
// claims are never trusted from a warm basis (the caller re-verifies cold),
// while cancellation is returned directly — the point of cancelling is to
// stop working, not to re-solve from scratch.
func (s *Workspace) warmFinish() (Solution, bool) {
	// The warm basis came from an optimal solve with the same costs, so it
	// should be dual feasible; verify cheaply so dual-simplex infeasibility
	// verdicts can be trusted.
	if !s.dualFeasible(s.cost) {
		return Solution{}, false
	}

	switch st := s.dualSimplex(s.cost); st {
	case Infeasible:
		// A dual-simplex infeasibility proof is only as sound as the dual
		// feasibility of every intermediate basis, which accumulated
		// floating-point drift can silently break. Never report
		// infeasibility from the warm path; make the caller verify cold.
		return Solution{}, false
	case IterLimit, Singular:
		return Solution{}, false
	case Cancelled:
		return s.finish(Cancelled), true
	}
	// Primal feasible now; polish with primal iterations (usually zero).
	st := s.optimize(s.cost, s.n)
	if st == Unbounded || st == Singular {
		// A warm start cannot soundly prove unboundedness after bound
		// changes narrowed and re-widened variables, and a basis that went
		// singular mid-polish proves nothing; re-verify cold.
		return Solution{}, false
	}
	if st == Optimal && !s.residualOK() {
		return Solution{}, false // numerical drift; the caller re-solves cold
	}
	return s.finish(st), true
}

// residualOK verifies A·x = b within tolerance across every row — a cheap
// O(nnz) guard against stale factorizations on the warm path.
func (s *Workspace) residualOK() bool {
	resid := s.resid
	copy(resid, s.b)
	for j := 0; j < s.n; j++ {
		if exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	for i, r := range resid {
		if math.Abs(r) > 1e-6*(1+math.Abs(s.b[i])) {
			return false
		}
	}
	return true
}

// dualFeasible checks the sign conditions of all nonbasic reduced costs.
func (s *Workspace) dualFeasible(cost []float64) bool {
	m := s.m
	y := s.y
	for i := 0; i < m; i++ {
		s.cb[i] = cost[s.basis[i]]
	}
	s.fact.btran(y, s.cb)
	tol := math.Max(s.opt.Tol*1e3, 1e-6)
	for j := 0; j < s.n; j++ {
		if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
			continue
		}
		d := cost[j]
		for _, nz := range s.cols[j] {
			d -= y[nz.Index] * nz.Value
		}
		if s.atUp[j] {
			if d > tol {
				return false
			}
		} else if d < -tol {
			return false
		}
	}
	return true
}

func (s *Workspace) feasTol() float64 { return s.opt.Tol * float64(1+s.m) * 100 }

// cancelled polls the solve context every few iterations. The check runs
// once per simplex pivot, whose own cost (an O(m·n) pricing pass) dwarfs the
// atomic load inside ctx.Err, so polling every iteration keeps cancellation
// latency at a single pivot without measurable overhead.
func (s *Workspace) cancelled() bool { return s.ctx.Err() != nil }

func (s *Workspace) structX() []float64 {
	out := make([]float64, s.nStruct)
	copy(out, s.x[:s.nStruct])
	return out
}
