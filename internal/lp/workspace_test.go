package lp

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickDevexMatchesDantzig forces the Devex pricing stage from the first
// iteration and checks it reaches the same optimal objective as the default
// staged (Dantzig-first) pricing on random feasible LPs. Devex picks
// different pivot sequences, so only the objective — not the vertex — must
// agree.
func TestQuickDevexMatchesDantzig(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(12)
		nRows := 1 + rng.Intn(10)
		p, _ := buildRandomFeasible(rng, nVars, nRows)
		base := p.Solve(context.Background(), Options{})
		devex := p.Solve(context.Background(), Options{DevexAfter: -1})
		if base.Status != devex.Status {
			t.Logf("seed %d: status %v (dantzig) vs %v (devex)", seed, base.Status, devex.Status)
			return false
		}
		if base.Status != Optimal {
			return true
		}
		if !feasible(p, devex.X, 1e-5) {
			t.Logf("seed %d: devex returned infeasible point", seed)
			return false
		}
		if !approx(base.Objective, devex.Objective) {
			t.Logf("seed %d: obj %v (dantzig) vs %v (devex)", seed, base.Objective, devex.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDevexPartialPricingBlocks solves an LP wide enough to span several
// partial-pricing blocks with Devex forced on, exercising the block rotor
// and its wrap-around, and checks optimality against the default pricing.
func TestDevexPartialPricingBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, _ := buildRandomFeasible(rng, 3*priceBlock, 40)
	base := p.Solve(context.Background(), Options{})
	ws := NewWorkspace()
	devex := p.SolveWith(context.Background(), Options{DevexAfter: -1}, ws)
	if base.Status != Optimal || devex.Status != Optimal {
		t.Fatalf("status: dantzig=%v devex=%v, want optimal", base.Status, devex.Status)
	}
	if !approx(base.Objective, devex.Objective) {
		t.Fatalf("objective: dantzig=%v devex=%v", base.Objective, devex.Objective)
	}
	if !feasible(p, devex.X, 1e-5) {
		t.Fatal("devex returned infeasible point")
	}
}

// TestWorkspaceReuseUnchanged re-solves an unchanged problem through the
// ReuseBasis fast path: the second solve must report the same optimum, be
// marked warm-started, and need no primal iterations beyond the dual
// feasibility recheck.
func TestWorkspaceReuseUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := buildRandomFeasible(rng, 10, 8)
	ws := NewWorkspace()
	opt := Options{ReuseBasis: true}
	first := p.SolveWith(context.Background(), opt, ws)
	if first.Status != Optimal {
		t.Fatalf("first solve: %v", first.Status)
	}
	if first.WarmStarted {
		t.Fatal("first solve cannot be warm-started")
	}
	again := p.SolveWith(context.Background(), opt, ws)
	if again.Status != Optimal {
		t.Fatalf("re-solve: %v", again.Status)
	}
	if !again.WarmStarted {
		t.Fatal("re-solve of unchanged problem should reuse the retained basis")
	}
	if !approx(first.Objective, again.Objective) {
		t.Fatalf("objective drifted on reuse: %v vs %v", first.Objective, again.Objective)
	}
	if again.Iterations > first.Iterations/2 {
		t.Fatalf("reuse too expensive: %d iterations vs %d cold", again.Iterations, first.Iterations)
	}
}

// TestQuickReuseMatchesCold is the ReuseBasis analogue of
// TestQuickWarmMatchesCold: after random bound tightenings (the branch-and-
// bound pattern), a workspace re-solve must agree with a cold solve on
// status and objective.
func TestQuickReuseMatchesCold(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(12)
		nRows := 1 + rng.Intn(10)
		p, _ := buildRandomFeasible(rng, nVars, nRows)
		ws := NewWorkspace()
		opt := Options{ReuseBasis: true}
		if st := p.SolveWith(context.Background(), opt, ws).Status; st != Optimal {
			return true // nothing to warm-start from
		}
		// Tighten a few bounds the way branching does.
		for k := 0; k < 1+rng.Intn(3); k++ {
			j := rng.Intn(nVars)
			lo, up := p.Bounds(j)
			if rng.Intn(2) == 0 {
				mid := lo + (up-lo)*rng.Float64()
				p.SetBounds(j, lo, mid)
			} else {
				mid := lo + (up-lo)*rng.Float64()
				p.SetBounds(j, mid, up)
			}
		}
		warm := p.SolveWith(context.Background(), opt, ws)
		cold := p.SolveWith(context.Background(), Options{}, NewWorkspace())
		if warm.Status != cold.Status {
			t.Logf("seed %d: status %v (reuse) vs %v (cold)", seed, warm.Status, cold.Status)
			return false
		}
		if cold.Status == Optimal && !approx(warm.Objective, cold.Objective) {
			t.Logf("seed %d: obj %v (reuse) vs %v (cold)", seed, warm.Objective, cold.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkspaceRetargets hands one workspace a sequence of differently
// shaped problems with ReuseBasis requested; every shape change must fall
// back to a clean cold start and still produce correct optima.
func TestWorkspaceRetargets(t *testing.T) {
	ws := NewWorkspace()
	opt := Options{ReuseBasis: true}
	for _, shape := range []struct{ nVars, nRows int }{{6, 4}, {12, 9}, {3, 2}, {12, 9}} {
		rng := rand.New(rand.NewSource(int64(shape.nVars * shape.nRows)))
		p, _ := buildRandomFeasible(rng, shape.nVars, shape.nRows)
		got := p.SolveWith(context.Background(), opt, ws)
		want := p.Solve(context.Background(), Options{})
		if got.Status != want.Status {
			t.Fatalf("shape %dx%d: status %v, want %v", shape.nVars, shape.nRows, got.Status, want.Status)
		}
		if got.WarmStarted {
			t.Fatalf("shape %dx%d: warm start across a retarget", shape.nVars, shape.nRows)
		}
		if want.Status == Optimal && !approx(got.Objective, want.Objective) {
			t.Fatalf("shape %dx%d: obj %v, want %v", shape.nVars, shape.nRows, got.Objective, want.Objective)
		}
	}
}

// TestWorkspaceDeterministic runs the same solve/tighten/re-solve sequence
// on two fresh workspaces and requires bit-for-bit identical results — the
// reproducibility guarantee the branch-and-bound determinism tests build on.
func TestWorkspaceDeterministic(t *testing.T) {
	run := func() []Solution {
		rng := rand.New(rand.NewSource(23))
		p, _ := buildRandomFeasible(rng, 14, 10)
		ws := NewWorkspace()
		opt := Options{ReuseBasis: true}
		var sols []Solution
		sols = append(sols, p.SolveWith(context.Background(), opt, ws))
		for k := 0; k < 5; k++ {
			j := rng.Intn(14)
			lo, up := p.Bounds(j)
			p.SetBounds(j, lo, lo+(up-lo)*0.5)
			sols = append(sols, p.SolveWith(context.Background(), opt, ws))
		}
		return sols
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Status != b[i].Status || a[i].Iterations != b[i].Iterations {
			t.Fatalf("solve %d: (%v, %d iters) vs (%v, %d iters)",
				i, a[i].Status, a[i].Iterations, b[i].Status, b[i].Iterations)
		}
		if len(a[i].X) != len(b[i].X) {
			t.Fatalf("solve %d: X length mismatch", i)
		}
		for j := range a[i].X {
			if !exactEqual(a[i].X[j], b[i].X[j]) {
				t.Fatalf("solve %d: X[%d] %v vs %v", i, j, a[i].X[j], b[i].X[j])
			}
		}
	}
}

// TestReuseResolveAllocs bounds allocations on the two warm re-solve paths
// branch-and-bound leans on: an unchanged re-solve and a bound-flip
// re-solve. Steady state must not allocate beyond the Solution's X vector
// (a couple of allocations; the workspace supplies everything else).
func TestReuseResolveAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p, _ := buildRandomFeasible(rng, 20, 14)
	ws := NewWorkspace()
	opt := Options{ReuseBasis: true}
	ctx := context.Background()
	if st := p.SolveWith(ctx, opt, ws).Status; st != Optimal {
		t.Fatalf("prime solve: %v", st)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		p.SolveWith(ctx, opt, ws)
	}); allocs > 4 {
		t.Errorf("unchanged re-solve: %.1f allocs/op, want ≤ 4", allocs)
	}

	lo0, up0 := p.Bounds(0)
	mid := lo0 + (up0-lo0)/2
	flip := false
	if allocs := testing.AllocsPerRun(100, func() {
		// Alternate the bound of one variable, the node-LP pattern.
		if flip {
			p.SetBounds(0, lo0, mid)
		} else {
			p.SetBounds(0, lo0, up0)
		}
		flip = !flip
		p.SolveWith(ctx, opt, ws)
	}); allocs > 4 {
		t.Errorf("bound-flip re-solve: %.1f allocs/op, want ≤ 4", allocs)
	}
	p.SetBounds(0, lo0, up0)
}
