package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWarmAfterFixAll mimics the MIP completion heuristic: fix every
// variable to integers near the optimum and warm-resolve.
func TestWarmAfterFixAll(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p, _ := buildRandomFeasible(rng, 15, 8)
	first := p.Solve(context.Background(), Options{})
	if first.Status != Optimal || first.Basis == nil {
		t.Skip("no basis")
	}
	saved := make([][2]float64, p.NumVars())
	for j := 0; j < p.NumVars(); j++ {
		lo, up := p.Bounds(j)
		saved[j] = [2]float64{lo, up}
		v := math.Max(lo, math.Min(up, math.Round(first.X[j])))
		p.SetBounds(j, v, v)
	}
	warm := p.Solve(context.Background(), Options{Start: first.Basis})
	cold := p.Solve(context.Background(), Options{})
	if warm.Status != cold.Status {
		t.Fatalf("warm=%v cold=%v after fixing all variables", warm.Status, cold.Status)
	}
	if cold.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective mismatch: warm %v vs cold %v", warm.Objective, cold.Objective)
	}
	for j := range saved {
		p.SetBounds(j, saved[j][0], saved[j][1])
	}
}

// TestWarmChainStaysConsistent chains many warm solves with random bound
// nudges — the drift scenario that once produced stale cached inverses —
// and cross-checks against cold solves at every step.
func TestWarmChainStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p, _ := buildRandomFeasible(rng, 20, 12)
	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Optimal {
		t.Skip("base not optimal")
	}
	basis := sol.Basis
	for step := 0; step < 40; step++ {
		j := rng.Intn(p.NumVars())
		lo, up := p.Bounds(j)
		switch rng.Intn(3) {
		case 0:
			v := math.Max(lo, math.Min(up, math.Round(sol.X[j])))
			p.SetBounds(j, v, v)
		case 1:
			p.SetBounds(j, lo, math.Max(lo, up*0.9))
		case 2:
			p.SetBounds(j, lo, up+1)
		}
		warm := p.Solve(context.Background(), Options{Start: basis})
		cold := p.Solve(context.Background(), Options{})
		if warm.Status != cold.Status {
			t.Fatalf("step %d: warm=%v cold=%v", step, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-5*(1+math.Abs(cold.Objective)) {
				t.Fatalf("step %d: warm obj %v vs cold %v", step, warm.Objective, cold.Objective)
			}
			sol = warm
			if warm.Basis != nil {
				basis = warm.Basis
			}
		} else {
			// Infeasible: revert the bound change to keep the chain alive.
			p.SetBounds(j, lo, up)
		}
	}
}

// TestWarmStaleBasisRejected: a basis from a different problem shape must
// fall back to a cold start, not corrupt the solve.
func TestWarmStaleBasisRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p1, _ := buildRandomFeasible(rng, 10, 5)
	sol1 := p1.Solve(context.Background(), Options{})
	if sol1.Basis == nil {
		t.Skip("no basis")
	}
	p2, _ := buildRandomFeasible(rng, 14, 7) // different shape
	sol2 := p2.Solve(context.Background(), Options{Start: sol1.Basis})
	cold := p2.Solve(context.Background(), Options{})
	if sol2.Status != cold.Status {
		t.Fatalf("foreign basis changed status: %v vs %v", sol2.Status, cold.Status)
	}
	if cold.Status == Optimal && math.Abs(sol2.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("foreign basis changed objective: %v vs %v", sol2.Objective, cold.Objective)
	}
}

// TestQuickWarmNeverWorseIters: warm starts must not loop; their iteration
// counts stay bounded by the cold solve plus repair work.
func TestQuickWarmNeverWorseIters(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := buildRandomFeasible(rng, 4+rng.Intn(10), 2+rng.Intn(6))
		first := p.Solve(context.Background(), Options{})
		if first.Status != Optimal || first.Basis == nil {
			return true
		}
		// Unchanged problem: warm solve should be nearly free.
		warm := p.Solve(context.Background(), Options{Start: first.Basis})
		return warm.Status == Optimal && warm.Iterations <= first.Iterations+2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsAccessor(t *testing.T) {
	var p Problem
	j := p.AddVar(0, 1, 5)
	if lo, up := p.Bounds(j); lo != 1 || up != 5 {
		t.Fatalf("Bounds = %v, %v", lo, up)
	}
	p.SetBounds(j, 2, 2)
	if lo, up := p.Bounds(j); lo != 2 || up != 2 {
		t.Fatalf("after SetBounds: %v, %v", lo, up)
	}
}

func TestSetBoundsPanics(t *testing.T) {
	var p Problem
	p.AddVar(0, 0, 1)
	for _, fn := range []func(){
		func() { p.SetBounds(5, 0, 1) },
		func() { p.SetBounds(0, 2, 1) },
		func() { p.SetBounds(0, math.Inf(-1), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
