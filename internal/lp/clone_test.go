package lp

import (
	"context"
	"sync"
	"testing"
)

func TestCloneIndependentBounds(t *testing.T) {
	var p Problem
	x := p.AddVar(-3, 0, Inf)
	y := p.AddVar(-2, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, LE, 4)
	p.AddRow([]Nonzero{{x, 1}, {y, 3}}, LE, 6)

	c := p.Clone()
	c.SetBounds(x, 0, 1) // must not leak into the original

	if lo, up := p.Bounds(x); lo != 0 || up != Inf {
		t.Fatalf("clone SetBounds leaked into original: [%v,%v]", lo, up)
	}
	orig := solveOK(t, &p)
	if !approx(orig.Objective, -12) {
		t.Fatalf("original obj=%v, want -12", orig.Objective)
	}
	clSol := c.Solve(context.Background(), Options{})
	if clSol.Status != Optimal || approx(clSol.Objective, orig.Objective) {
		t.Fatalf("clone with tighter bounds solved to %v (status %v); expected a different optimum", clSol.Objective, clSol.Status)
	}
}

func TestCloneConcurrentSolves(t *testing.T) {
	// Clones share row data read-only; concurrent solves with divergent
	// bounds must not interfere (this is the parallel MIP workers' pattern).
	var p Problem
	n := 20
	for j := 0; j < n; j++ {
		p.AddVar(-1-float64(j%5), 0, 10)
	}
	row := make([]Nonzero, n)
	for j := 0; j < n; j++ {
		row[j] = Nonzero{j, 1}
	}
	p.AddRow(row, LE, 35)

	var wg sync.WaitGroup
	sols := make([]Solution, 8)
	for i := 0; i < 8; i++ {
		c := p.Clone()
		c.SetBounds(i, 0, 0) // each clone fixes a different variable
		wg.Add(1)
		go func(i int, c *Problem) {
			defer wg.Done()
			sols[i] = c.Solve(context.Background(), Options{})
		}(i, c)
	}
	wg.Wait()
	for i, s := range sols {
		if s.Status != Optimal {
			t.Fatalf("clone %d: status=%v", i, s.Status)
		}
		if s.X[i] != 0 {
			t.Fatalf("clone %d: fixed variable came back %v", i, s.X[i])
		}
	}
}
