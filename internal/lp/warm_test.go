package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickWarmMatchesCold: after random bound tightenings, a warm-started
// solve must agree with a cold solve on status and objective.
func TestQuickWarmMatchesCold(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := buildRandomFeasible(rng, 3+rng.Intn(10), 1+rng.Intn(8))
		first := p.Solve(context.Background(), Options{})
		if first.Status != Optimal || first.Basis == nil {
			return true // nothing to warm-start from
		}
		// Tighten random variable bounds (branching-style changes).
		for j := 0; j < p.NumVars(); j++ {
			if rng.Float64() < 0.4 {
				lo, up := p.Bounds(j)
				v := math.Round(first.X[j])
				switch rng.Intn(3) {
				case 0: // fix
					v = math.Max(lo, math.Min(up, v))
					p.SetBounds(j, v, v)
				case 1: // floor branch
					p.SetBounds(j, lo, math.Max(lo, math.Min(up, v)))
				case 2: // ceil branch
					p.SetBounds(j, math.Max(lo, math.Min(up, v)), up)
				}
			}
		}
		warm := p.Solve(context.Background(), Options{Start: first.Basis})
		cold := p.Solve(context.Background(), Options{})
		if warm.Status != cold.Status {
			t.Logf("seed %d: warm=%v cold=%v", seed, warm.Status, cold.Status)
			return false
		}
		if cold.Status == Optimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-5*(1+math.Abs(cold.Objective)) {
				t.Logf("seed %d: warm obj %v vs cold %v", seed, warm.Objective, cold.Objective)
				return false
			}
			if !feasible(p, warm.X, 1e-5) {
				t.Logf("seed %d: warm solution infeasible", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmNoChange: warm start with unchanged bounds must terminate
// immediately at the same optimum.
func TestWarmNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := buildRandomFeasible(rng, 20, 10)
	first := p.Solve(context.Background(), Options{})
	if first.Status != Optimal || first.Basis == nil {
		t.Skip("no exportable basis")
	}
	warm := p.Solve(context.Background(), Options{Start: first.Basis})
	if warm.Status != Optimal {
		t.Fatalf("warm status=%v", warm.Status)
	}
	if math.Abs(warm.Objective-first.Objective) > 1e-7*(1+math.Abs(first.Objective)) {
		t.Fatalf("objective drifted: %v vs %v", warm.Objective, first.Objective)
	}
	if warm.Iterations > first.Iterations/2 {
		t.Fatalf("warm start did not help: %d vs %d iterations", warm.Iterations, first.Iterations)
	}
}
