package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// denseInverse computes B^-1 for the basis columns by Gauss-Jordan
// elimination with partial pivoting — the dense reference the sparse
// factorization replaced. It returns false when the basis is singular.
func denseInverse(cols [][]Nonzero, basis []int, m int) ([]float64, bool) {
	bm := make([]float64, m*m)
	for i, c := range basis {
		for _, nz := range cols[c] {
			bm[nz.Index*m+i] = nz.Value
		}
	}
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		p := col
		maxAbs := math.Abs(bm[col*m+col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(bm[r*m+col]); a > maxAbs {
				maxAbs, p = a, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, false
		}
		if p != col {
			for k := 0; k < m; k++ {
				bm[p*m+k], bm[col*m+k] = bm[col*m+k], bm[p*m+k]
				inv[p*m+k], inv[col*m+k] = inv[col*m+k], inv[p*m+k]
			}
		}
		d := 1.0 / bm[col*m+col]
		for k := 0; k < m; k++ {
			bm[col*m+k] *= d
			inv[col*m+k] *= d
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := bm[r*m+col]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				bm[r*m+k] -= f * bm[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	return inv, true
}

// randTransportCols builds the sparse column set of a randomized
// transportation-structured basis candidate: m rows, columns with 1–3
// nonzeros each (mostly ±1 coefficients, the RAS assignment structure),
// plus a full set of unit columns so a nonsingular basis always exists.
func randTransportCols(rng *rand.Rand, m, extra int) [][]Nonzero {
	cols := make([][]Nonzero, 0, m+extra)
	for i := 0; i < m; i++ {
		cols = append(cols, []Nonzero{{Index: i, Value: 1}})
	}
	for c := 0; c < extra; c++ {
		nnz := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var col []Nonzero
		for k := 0; k < nnz; k++ {
			r := rng.Intn(m)
			if seen[r] {
				continue
			}
			seen[r] = true
			v := float64(1 + rng.Intn(3))
			if rng.Intn(2) == 0 {
				v = -v
			}
			col = append(col, Nonzero{Index: r, Value: v})
		}
		cols = append(cols, col)
	}
	return cols
}

// randBasis picks a random nonsingular basis over the column set by sampling
// m-subsets until the dense reference confirms invertibility, mixing
// structural and unit columns.
func randBasis(rng *rand.Rand, cols [][]Nonzero, m int) []int {
	for tries := 0; tries < 50; tries++ {
		perm := rng.Perm(len(cols))
		basis := append([]int(nil), perm[:m]...)
		if _, ok := denseInverse(cols, basis, m); ok {
			return basis
		}
	}
	// Fallback: all unit columns (always nonsingular).
	basis := make([]int, m)
	for i := range basis {
		basis[i] = i
	}
	return basis
}

// TestFactorMatchesDenseReference cross-checks every factorization operation
// — FTRAN (sparse and dense sources), BTRAN, and pivot-row BTRAN — against
// the dense Gauss-Jordan inverse on randomized transportation-structured
// bases, including after a chain of eta updates.
func TestFactorMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := 3 + rng.Intn(30)
		cols := randTransportCols(rng, m, 3*m)
		basis := randBasis(rng, cols, m)
		inv, ok := denseInverse(cols, basis, m)
		if !ok {
			t.Fatalf("trial %d: reference basis singular", trial)
		}

		f := newFactor(m)
		if def := f.factorize(cols, basis); len(def) != 0 {
			t.Fatalf("trial %d: factorize reported deficient slots %v for a nonsingular basis", trial, def)
		}

		checkOps := func(stage string) {
			// FTRAN against B^-1·a for a few random columns.
			dst := make([]float64, m)
			nz := make([]int, 0, m)
			for k := 0; k < 5; k++ {
				c := rng.Intn(len(cols))
				nz = f.ftran(dst, cols[c], nz)
				for i := 0; i < m; i++ {
					want := 0.0
					for _, e := range cols[c] {
						want += inv[i*m+e.Index] * e.Value
					}
					if math.Abs(dst[i]-want) > 1e-7*(1+math.Abs(want)) {
						t.Fatalf("trial %d %s: ftran col %d slot %d = %g, dense %g", trial, stage, c, i, dst[i], want)
					}
				}
				// The nonzero tracking must cover every numerically nonzero slot.
				covered := map[int]bool{}
				for _, i := range nz {
					covered[i] = true
				}
				for i := 0; i < m; i++ {
					if math.Abs(dst[i]) > 1e-9 && !covered[i] {
						t.Fatalf("trial %d %s: ftran nonzero slot %d missing from tracking", trial, stage, i)
					}
				}
			}
			// Dense-source FTRAN against B^-1·v.
			src := make([]float64, m)
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			f.ftranDense(dst, src)
			for i := 0; i < m; i++ {
				want := 0.0
				for k := 0; k < m; k++ {
					want += inv[i*m+k] * src[k]
				}
				if math.Abs(dst[i]-want) > 1e-7*(1+math.Abs(want)) {
					t.Fatalf("trial %d %s: ftranDense slot %d = %g, dense %g", trial, stage, i, dst[i], want)
				}
			}
			// BTRAN against v^T·B^-1.
			f.btran(dst, src)
			for k := 0; k < m; k++ {
				want := 0.0
				for i := 0; i < m; i++ {
					want += src[i] * inv[i*m+k]
				}
				if math.Abs(dst[k]-want) > 1e-7*(1+math.Abs(want)) {
					t.Fatalf("trial %d %s: btran row %d = %g, dense %g", trial, stage, k, dst[k], want)
				}
			}
			// Pivot-row BTRAN against the matching row of the dense inverse.
			scratch := make([]float64, m)
			for slotTrial := 0; slotTrial < 3; slotTrial++ {
				slot := rng.Intn(m)
				f.btranRow(dst, slot, scratch)
				for k := 0; k < m; k++ {
					want := inv[slot*m+k]
					if math.Abs(dst[k]-want) > 1e-7*(1+math.Abs(want)) {
						t.Fatalf("trial %d %s: btranRow slot %d col %d = %g, dense %g", trial, stage, slot, k, dst[k], want)
					}
				}
			}
		}
		checkOps("fresh")

		// Apply a few pivots as eta updates and re-verify against a fresh
		// dense inverse of the updated basis.
		w := make([]float64, m)
		wnz := make([]int, 0, m)
		for pivots := 0; pivots < 4; pivots++ {
			c := rng.Intn(len(cols))
			in := false
			for _, b := range basis {
				if b == c {
					in = true
					break
				}
			}
			if in {
				continue
			}
			wnz = f.ftran(w, cols[c], wnz)
			// Pick the largest-magnitude slot as the pivot (always sound).
			slot, best := -1, 1e-6
			for _, i := range wnz {
				if a := math.Abs(w[i]); a > best {
					slot, best = i, a
				}
			}
			if slot == -1 {
				continue
			}
			trialBasis := append([]int(nil), basis...)
			trialBasis[slot] = c
			newInv, ok := denseInverse(cols, trialBasis, m)
			if !ok {
				continue
			}
			f.update(slot, w, wnz)
			basis, inv = trialBasis, newInv
		}
		checkOps("after-etas")
	}
}

// TestFactorSingularRepair drives a deliberately dependent basis through the
// workspace refactorization path and checks the repair machinery: the
// deficiency is detected, repaired with artificials, counted in metrics, and
// the solve still completes.
func TestFactorSingularRepair(t *testing.T) {
	// Two equality rows with identical coefficient columns: x0 appears in
	// both rows with weight 1, as does x1, so the basis {x0, x1} is singular.
	var p Problem
	x0 := p.AddVar(1, 0, 10)
	x1 := p.AddVar(1, 0, 10)
	x2 := p.AddVar(3, 0, 10)
	p.AddRow([]Nonzero{{x0, 1}, {x1, 1}, {x2, 1}}, EQ, 4)
	p.AddRow([]Nonzero{{x0, 1}, {x1, 1}, {x2, 2}}, EQ, 6)

	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	// Unique solution: x2 = 2, x0 + x1 = 2 (cost ties broken by pivoting).
	if got := sol.X[0] + sol.X[1]; math.Abs(got-2) > 1e-6 {
		t.Fatalf("x0+x1 = %v, want 2", got)
	}
	if math.Abs(sol.X[2]-2) > 1e-6 {
		t.Fatalf("x2 = %v, want 2", sol.X[2])
	}

	// Force a singular refactorization directly: install the dependent basis
	// {x0, x1} in a workspace and refactorize.
	ws := NewWorkspace()
	ws.reshape(&p)
	ws.opt = Options{Tol: 1e-9}
	ws.refresh(&p)
	for j := range ws.inRow {
		ws.inRow[j] = -1
	}
	ws.basis[0], ws.basis[1] = x0, x1
	ws.inRow[x0], ws.inRow[x1] = 0, 1
	clear(ws.x)
	clear(ws.atUp)
	if !ws.refactorize() {
		t.Fatal("refactorize failed to repair a structurally repairable basis")
	}
	if !ws.repaired {
		t.Fatal("repair flag not set after singular refactorization")
	}
	// Exactly one of the dependent columns must have been swapped for an
	// artificial.
	arts := 0
	for _, c := range ws.basis {
		if c >= ws.artStart {
			arts++
		}
	}
	if arts != 1 {
		t.Fatalf("repaired basis holds %d artificials, want 1 (basis %v, artStart %d)", arts, ws.basis, ws.artStart)
	}
}

// TestStatusSingularString pins the new status's rendering.
func TestStatusSingularString(t *testing.T) {
	if got := Singular.String(); got != "singular-basis" {
		t.Fatalf("Singular.String() = %q", got)
	}
}
