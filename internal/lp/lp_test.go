package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestTrivialBounds(t *testing.T) {
	var p Problem
	x := p.AddVar(1, 2, 10) // minimize x in [2,10] → 2
	sol := solveOK(t, &p)
	if !approx(sol.X[x], 2) || !approx(sol.Objective, 2) {
		t.Fatalf("got x=%v obj=%v, want 2", sol.X[x], sol.Objective)
	}
}

func TestMaximizeViaNegation(t *testing.T) {
	var p Problem
	x := p.AddVar(-1, 0, 7) // maximize x ⇔ minimize -x
	sol := solveOK(t, &p)
	if !approx(sol.X[x], 7) {
		t.Fatalf("got x=%v, want 7", sol.X[x])
	}
}

func TestSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4, x+3y ≤ 6, x,y ≥ 0 → x=4, y=0, obj 12.
	var p Problem
	x := p.AddVar(-3, 0, Inf)
	y := p.AddVar(-2, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, LE, 4)
	p.AddRow([]Nonzero{{x, 1}, {y, 3}}, LE, 6)
	sol := solveOK(t, &p)
	if !approx(sol.Objective, -12) {
		t.Fatalf("obj=%v, want -12 (x=%v y=%v)", sol.Objective, sol.X[x], sol.X[y])
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + y s.t. x + y = 10, x ≥ 3, y ≥ 2 → obj 10.
	var p Problem
	x := p.AddVar(1, 3, Inf)
	y := p.AddVar(1, 2, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, EQ, 10)
	sol := solveOK(t, &p)
	if !approx(sol.Objective, 10) {
		t.Fatalf("obj=%v, want 10", sol.Objective)
	}
	if sol.X[x] < 3-eps || sol.X[y] < 2-eps {
		t.Fatalf("bounds violated: x=%v y=%v", sol.X[x], sol.X[y])
	}
}

func TestGERow(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 5, x ≤ 2 → x=2, y=3, obj 13.
	var p Problem
	x := p.AddVar(2, 0, 2)
	y := p.AddVar(3, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, GE, 5)
	sol := solveOK(t, &p)
	if !approx(sol.Objective, 13) {
		t.Fatalf("obj=%v, want 13", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	var p Problem
	x := p.AddVar(1, 0, 1)
	p.AddRow([]Nonzero{{x, 1}}, GE, 5)
	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	var p Problem
	x := p.AddVar(0, 0, 10)
	y := p.AddVar(0, 0, 10)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, EQ, 5)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, EQ, 7)
	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	var p Problem
	p.AddVar(-1, 0, Inf) // maximize x with no constraint
	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Unbounded {
		t.Fatalf("status=%v, want unbounded", sol.Status)
	}
}

func TestBoundedByUpperOnly(t *testing.T) {
	// max x + y s.t. x + 2y ≤ 14, 3x - y ≥ 0, x - y ≤ 2.
	// Optimum at x=6, y=4, obj 10.
	var p Problem
	x := p.AddVar(-1, 0, Inf)
	y := p.AddVar(-1, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 2}}, LE, 14)
	p.AddRow([]Nonzero{{x, 3}, {y, -1}}, GE, 0)
	p.AddRow([]Nonzero{{x, 1}, {y, -1}}, LE, 2)
	sol := solveOK(t, &p)
	if !approx(sol.Objective, -10) {
		t.Fatalf("obj=%v, want -10", sol.Objective)
	}
	if !approx(sol.X[x], 6) || !approx(sol.X[y], 4) {
		t.Fatalf("x=%v y=%v, want 6,4", sol.X[x], sol.X[y])
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP; must still terminate at optimum.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7 subject to Beale's cycling example.
	var p Problem
	x4 := p.AddVar(-0.75, 0, Inf)
	x5 := p.AddVar(150, 0, Inf)
	x6 := p.AddVar(-0.02, 0, Inf)
	x7 := p.AddVar(6, 0, Inf)
	p.AddRow([]Nonzero{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddRow([]Nonzero{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddRow([]Nonzero{{x6, 1}}, LE, 1)
	sol := solveOK(t, &p)
	if !approx(sol.Objective, -0.05) {
		t.Fatalf("obj=%v, want -0.05", sol.Objective)
	}
}

func TestFixedVariable(t *testing.T) {
	var p Problem
	x := p.AddVar(1, 5, 5) // fixed at 5
	y := p.AddVar(1, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, GE, 8)
	sol := solveOK(t, &p)
	if !approx(sol.X[x], 5) || !approx(sol.X[y], 3) {
		t.Fatalf("x=%v y=%v, want 5,3", sol.X[x], sol.X[y])
	}
}

func TestDuplicateCoefficientsSummed(t *testing.T) {
	var p Problem
	x := p.AddVar(-1, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {x, 1}}, LE, 10) // 2x ≤ 10
	sol := solveOK(t, &p)
	if !approx(sol.X[x], 5) {
		t.Fatalf("x=%v, want 5", sol.X[x])
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x ≤ -3 (i.e. x ≥ 3).
	var p Problem
	x := p.AddVar(1, 0, Inf)
	p.AddRow([]Nonzero{{x, -1}}, LE, -3)
	sol := solveOK(t, &p)
	if !approx(sol.X[x], 3) {
		t.Fatalf("x=%v, want 3", sol.X[x])
	}
}

func TestShiftedLowerBounds(t *testing.T) {
	// Variables with nonzero lower bounds interact with equality rows.
	var p Problem
	x := p.AddVar(1, 10, 20)
	y := p.AddVar(2, -5, 5)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, EQ, 12)
	sol := solveOK(t, &p)
	// min x + 2y with x ∈ [10,20], y ∈ [-5,5], x+y=12 → x=17, y=-5, obj 7.
	if !approx(sol.Objective, 7) {
		t.Fatalf("obj=%v (x=%v, y=%v), want 7", sol.Objective, sol.X[x], sol.X[y])
	}
}

func TestTransportation(t *testing.T) {
	// 2 supplies × 3 demands; verify against hand-computed optimum.
	// supply: 30, 40; demand: 20, 25, 25; cost matrix rows {8,6,10},{9,12,13}.
	var p Problem
	c := [][]float64{{8, 6, 10}, {9, 12, 13}}
	v := make([][]int, 2)
	for i := range v {
		v[i] = make([]int, 3)
		for j := range v[i] {
			v[i][j] = p.AddVar(c[i][j], 0, Inf)
		}
	}
	supply := []float64{30, 40}
	demand := []float64{20, 25, 25}
	for i := 0; i < 2; i++ {
		p.AddRow([]Nonzero{{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}, LE, supply[i])
	}
	for j := 0; j < 3; j++ {
		p.AddRow([]Nonzero{{v[0][j], 1}, {v[1][j], 1}}, EQ, demand[j])
	}
	sol := solveOK(t, &p)
	// Optimal: x02=5? Compute: cheapest for d1 is s0 (6): 25 from s0. d0: s0 has
	// 5 left at 8, rest 15 from s1 at 9. d2: s0 10 vs s1 13 → s0 exhausted; use
	// remaining s0 (0) ... total = 25*6+5*8+15*9+25*13 = 150+40+135+325=650.
	// Alternative: d2 from s0 (10) 5 units, d0 all 20 from s1: 25*6+5*10+20*9+20*13 = 640.
	if sol.Objective > 650+eps {
		t.Fatalf("obj=%v, expected ≤ 650", sol.Objective)
	}
	// Verify feasibility of returned point.
	for j := 0; j < 3; j++ {
		got := sol.X[v[0][j]] + sol.X[v[1][j]]
		if !approx(got, demand[j]) {
			t.Fatalf("demand %d: got %v want %v", j, got, demand[j])
		}
	}
	for i := 0; i < 2; i++ {
		got := sol.X[v[i][0]] + sol.X[v[i][1]] + sol.X[v[i][2]]
		if got > supply[i]+eps {
			t.Fatalf("supply %d exceeded: %v > %v", i, got, supply[i])
		}
	}
}

func TestIterLimit(t *testing.T) {
	var p Problem
	x := p.AddVar(-1, 0, Inf)
	y := p.AddVar(-1, 0, Inf)
	p.AddRow([]Nonzero{{x, 1}, {y, 1}}, LE, 10)
	sol := p.Solve(context.Background(), Options{MaxIter: 1})
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status=%v, want iteration-limit or optimal", sol.Status)
	}
}

// buildRandomFeasible constructs an LP with a known feasible point so the
// solver's result can be checked for feasibility and objective dominance.
func buildRandomFeasible(rng *rand.Rand, nVars, nRows int) (*Problem, []float64) {
	p := &Problem{}
	point := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		up := 1 + rng.Float64()*9
		p.AddVar(rng.Float64()*10-5, 0, up)
		point[j] = rng.Float64() * up
	}
	for i := 0; i < nRows; i++ {
		var row []Nonzero
		lhs := 0.0
		for j := 0; j < nVars; j++ {
			if rng.Float64() < 0.4 {
				c := rng.Float64()*4 - 2
				row = append(row, Nonzero{j, c})
				lhs += c * point[j]
			}
		}
		if len(row) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow(row, LE, lhs+rng.Float64())
		case 1:
			p.AddRow(row, GE, lhs-rng.Float64())
		default:
			p.AddRow(row, EQ, lhs)
		}
	}
	return p, point
}

func feasible(p *Problem, x []float64, tol float64) bool {
	for j := range x {
		if x[j] < p.lo[j]-tol || x[j] > p.up[j]+tol {
			return false
		}
	}
	for i, row := range p.rows {
		lhs := 0.0
		for _, nz := range row {
			lhs += nz.Value * x[nz.Index]
		}
		switch p.senses[i] {
		case LE:
			if lhs > p.rhs[i]+tol {
				return false
			}
		case GE:
			if lhs < p.rhs[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-p.rhs[i]) > tol {
				return false
			}
		}
	}
	return true
}

// TestQuickRandomFeasible is a property-based test: for random LPs built
// around a known feasible point, the solver must (a) report optimal,
// (b) return a feasible point, and (c) not be worse than the known point.
func TestQuickRandomFeasible(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(12)
		nRows := 1 + rng.Intn(10)
		p, point := buildRandomFeasible(rng, nVars, nRows)
		sol := p.Solve(context.Background(), Options{})
		if sol.Status != Optimal {
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		if !feasible(p, sol.X, 1e-5) {
			t.Logf("seed %d: infeasible solution", seed)
			return false
		}
		ref := 0.0
		for j, c := range p.cost {
			ref += c * point[j]
		}
		if sol.Objective > ref+1e-5 {
			t.Logf("seed %d: obj %v worse than known feasible %v", seed, sol.Objective, ref)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDualityGapZero verifies strong duality on random LPs by comparing
// against a brute-force vertex enumeration for tiny instances.
func TestQuickScaleInvariance(t *testing.T) {
	// Scaling all costs by a positive constant must scale the objective and
	// keep the argmin feasible set identical.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := buildRandomFeasible(rng, 2+rng.Intn(8), 1+rng.Intn(6))
		sol1 := p.Solve(context.Background(), Options{})
		if sol1.Status != Optimal {
			return true // skip unbounded/degenerate cases here
		}
		p2 := &Problem{}
		for j := range p.cost {
			p2.AddVar(p.cost[j]*3, p.lo[j], p.up[j])
		}
		for i := range p.rows {
			p2.AddRow(p.rows[i], p.senses[i], p.rhs[i])
		}
		sol2 := p2.Solve(context.Background(), Options{})
		if sol2.Status != Optimal {
			return false
		}
		return math.Abs(sol2.Objective-3*sol1.Objective) < 1e-5*(1+math.Abs(sol1.Objective))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale LP in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	p, point := buildRandomFeasible(rng, 200, 80)
	sol := p.Solve(context.Background(), Options{})
	if sol.Status != Optimal {
		t.Fatalf("status=%v", sol.Status)
	}
	if !feasible(p, sol.X, 1e-4) {
		t.Fatal("infeasible solution at medium scale")
	}
	ref := 0.0
	for j, c := range p.cost {
		ref += c * point[j]
	}
	if sol.Objective > ref+1e-4 {
		t.Fatalf("objective %v worse than known feasible %v", sol.Objective, ref)
	}
}

func TestSenseString(t *testing.T) {
	for s, want := range map[Sense]string{LE: "<=", EQ: "==", GE: ">="} {
		if s.String() != want {
			t.Errorf("Sense(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(99).String() == "" || Sense(99).String() == "" {
		t.Error("unknown enum String must be non-empty")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("Status.String() = %q, want %q", s.String(), want)
		}
	}
}

func TestAddVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on infinite lower bound")
		}
	}()
	var p Problem
	p.AddVar(0, math.Inf(-1), 0)
}

func TestAddRowPanicsUnknownVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown variable")
		}
	}()
	var p Problem
	p.AddRow([]Nonzero{{3, 1}}, LE, 1)
}

func BenchmarkSolveTransportation(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	p, _ := buildRandomFeasible(rng, 120, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := p.Solve(context.Background(), Options{}); sol.Status != Optimal {
			b.Fatalf("status=%v", sol.Status)
		}
	}
}
