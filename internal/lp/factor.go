package lp

import (
	"math"

	"ras/internal/metrics"
)

// This file implements the sparse basis factorization behind the simplex
// kernel: a Markowitz-ordered sparse LU refactorization plus a
// product-form-of-inverse (PFI) eta file for the pivots applied since the
// last refactorization. Together they represent the action of B^-1 without
// ever materializing it:
//
//	B^-1 = E_k ··· E_1 · S · U^-1 · L^-1
//
// where L^-1 is the sequence of unit-lower-triangular elimination etas, U
// the sparse upper-triangular factor (solved column-wise), S the
// pivot-order-to-basis-slot permutation, and E_i the update etas appended by
// pivots. FTRAN applies the chain left-to-right to map a constraint-row
// vector to basis-slot coordinates (B^-1·a); BTRAN applies the transposed
// chain in reverse to map slot coordinates to row coordinates (c^T·B^-1).
//
// Memory is O(nnz(L)+nnz(U)+nnz(etas)) and a refactorization costs
// O(nnz + fill) — for the transportation-like bases RAS produces (a handful
// of nonzeros per column, long singleton chains) both stay close to linear
// in m, replacing the dense inverse's O(m²) storage and O(m³) rebuild.

// Refactorization policy constants. Every trigger is a deterministic
// function of pivot counts and stored nonzeros — never wall-clock — so a
// given problem refactorizes at exactly the same iterations on every run
// and at every worker count.
const (
	// defaultRefactorEvery is the default eta-count refactorization cadence
	// (see Options.RefactorEvery): the number of PFI update etas accumulated
	// before the factorization is rebuilt from the basis columns. Each eta
	// both slows FTRAN/BTRAN and compounds floating-point drift, so the
	// interval trades per-pivot cost against refactorization cost.
	defaultRefactorEvery = 32

	// fillGrowthLimit triggers an early refactorization when the eta file's
	// nonzeros exceed this multiple of the factor's own nonzeros (plus m, so
	// tiny bases are not penalized): dense spikes in B^-1·a_q make etas fat,
	// and refactorizing compacts them back into near-triangular factors.
	fillGrowthLimit = 4

	// pivAbsTol is the absolute magnitude below which a candidate pivot is
	// numerically zero; a column whose best candidate falls below it is
	// declared deficient (linearly dependent) rather than divided by fuzz.
	pivAbsTol = 1e-11

	// pivRelTol is the threshold-pivoting fraction: within the chosen
	// column, only entries with |v| >= pivRelTol·max|column| may pivot, so
	// Markowitz sparsity preferences can never select an entry that would
	// blow up the multipliers.
	pivRelTol = 0.01
)

// etaOp is one elementary (eta) matrix: the identity with column pivot
// replaced so that applying it scales the pivot component and adds multiples
// of it elsewhere. L elimination etas are unit-diagonal (scale = 1, handled
// implicitly); PFI update etas carry the explicit 1/pivot scale.
type etaOp struct {
	pivot int       // component the eta pivots on
	invP  float64   // 1/pivot value (1 for unit L etas, unused there)
	nz    []Nonzero // off-pivot entries: Index = component, Value = coefficient
}

// factor is a sparse factorization of the current simplex basis. It is
// rebuilt in place by factorize and extended by update; all storage is
// retained across refactorizations so the steady state allocates nothing.
type factor struct {
	m int

	// LU refactorization product, in elimination order j = 0..m-1.
	// lops[j] holds the unit elimination multipliers of step j (applied to
	// row coordinates), ucols[j] the U column of the j-th pivot (entries in
	// previously pivoted rows), pr[j]/ps[j] the pivot row and basis slot,
	// invP[j] the reciprocal pivot.
	lops  []etaOp
	ucols [][]Nonzero
	pr    []int
	ps    []int
	invP  []float64

	// PFI update etas appended by pivots since the last refactorization,
	// operating on basis-slot coordinates.
	etas   []etaOp
	etaNnz int

	factNnz int // nonzeros stored in L + U at the last refactorization

	// Scratch reused across calls.
	rv      []float64 // row-coordinate working vector
	workCol [][]Nonzero
	rowCols [][]int32 // row -> slots with a (possibly stale) entry
	rowCnt  []int32   // active nonzeros per row
	colCnt  []int32   // active nonzeros per column slot
	rowDone []bool
	colDone []bool
	pos     []int32 // scatter index: row -> position in the column being updated
	posEra  []int32 // epoch marks validating pos entries
	era     int32
	nzbuf   []Nonzero // spill arena for freshly built columns
}

// newFactor returns a factorization sized for an m-row basis. It holds no
// factors until the first factorize call.
func newFactor(m int) *factor {
	f := &factor{m: m}
	f.lops = make([]etaOp, m)
	f.ucols = make([][]Nonzero, m)
	f.pr = make([]int, m)
	f.ps = make([]int, m)
	f.invP = make([]float64, m)
	f.rv = make([]float64, m)
	f.workCol = make([][]Nonzero, m)
	f.rowCols = make([][]int32, m)
	f.rowCnt = make([]int32, m)
	f.colCnt = make([]int32, m)
	f.rowDone = make([]bool, m)
	f.colDone = make([]bool, m)
	f.pos = make([]int32, m)
	f.posEra = make([]int32, m)
	return f
}

// nnz reports the nonzeros currently stored across factors and etas — the
// fill the refactorization policy watches.
func (f *factor) nnz() int { return f.factNnz + f.etaNnz }

// etaCount reports the update etas applied since the last refactorization.
func (f *factor) etaCount() int { return len(f.etas) }

// needRefactor reports whether the deterministic refactorization policy
// asks for a rebuild before the next pivot is applied: the eta file reached
// the cadence limit, or eta fill outgrew the factorization itself.
func (f *factor) needRefactor(every int) bool {
	if len(f.etas) >= every {
		return true
	}
	return f.etaNnz >= fillGrowthLimit*(f.factNnz+f.m)
}

// factorize rebuilds the LU factors from the given basis columns
// (cols[basis[i]] is the constraint column basic in slot i) and discards the
// eta file. It returns the basis slots it could not pivot — empty for a
// nonsingular basis — leaving the factors usable for the slots it did pivot
// only in the nonsingular case; callers must repair and re-factorize on a
// non-empty return.
func (f *factor) factorize(cols [][]Nonzero, basis []int) (deficient []int) {
	m := f.m
	metrics.LP.Refactorizations.Add(1)

	f.etas = f.etas[:0]
	f.etaNnz = 0

	// Build the working copy of the basis matrix, column-sparse, and the
	// row -> columns index. Columns are copied because elimination mutates
	// them; the arena and per-slot slices are reused across calls.
	nnzTotal := 0
	for s := 0; s < m; s++ {
		nnzTotal += len(cols[basis[s]])
	}
	if cap(f.nzbuf) < nnzTotal+m {
		f.nzbuf = make([]Nonzero, 0, 2*(nnzTotal+m))
	}
	arena := f.nzbuf[:0]
	for i := 0; i < m; i++ {
		f.rowCols[i] = f.rowCols[i][:0]
		f.rowCnt[i] = 0
		f.rowDone[i] = false
		f.colDone[i] = false
	}
	for s := 0; s < m; s++ {
		src := cols[basis[s]]
		start := len(arena)
		arena = append(arena, src...)
		f.workCol[s] = arena[start:len(arena):len(arena)]
		f.colCnt[s] = int32(len(src))
		for _, nz := range src {
			f.rowCols[nz.Index] = append(f.rowCols[nz.Index], int32(s))
			f.rowCnt[nz.Index]++
		}
	}

	fillIns := 0
	done := 0
	for step := 0; step < m; step++ {
		// Pivot column: the active column with the fewest active nonzeros,
		// ties to the lowest slot. Scanning ascending keeps the choice
		// deterministic; a column of one active nonzero can never be beaten,
		// so the scan short-circuits there (the common case — transportation
		// bases eliminate as long singleton chains).
		cs := -1
		var csCnt int32
		for s := 0; s < m; s++ {
			if f.colDone[s] || f.colCnt[s] == 0 {
				continue
			}
			if cs == -1 || f.colCnt[s] < csCnt {
				cs, csCnt = s, f.colCnt[s]
				if csCnt == 1 {
					break
				}
			}
		}
		if cs == -1 {
			break // every remaining column is deficient
		}

		// Pivot row within the column: threshold pivoting for stability,
		// then the fewest active row nonzeros (the Markowitz count, the
		// column factor being fixed), ties to the lowest row.
		col := f.workCol[cs]
		colMax := 0.0
		for _, nz := range col {
			if !f.rowDone[nz.Index] {
				if a := math.Abs(nz.Value); a > colMax {
					colMax = a
				}
			}
		}
		if colMax < pivAbsTol {
			// Numerically dependent column: no usable pivot.
			f.colDone[cs] = true
			f.markColumnInactive(cs)
			deficient = append(deficient, cs)
			continue
		}
		thresh := pivRelTol * colMax
		pivRow := -1
		var pivVal float64
		var pivCnt int32
		for _, nz := range col {
			i := nz.Index
			if f.rowDone[i] || math.Abs(nz.Value) < thresh {
				continue
			}
			if pivRow == -1 || f.rowCnt[i] < pivCnt || (f.rowCnt[i] == pivCnt && i < pivRow) {
				pivRow, pivVal, pivCnt = i, nz.Value, f.rowCnt[i]
			}
		}

		// Record the pivot: U entries are the column's values in already
		// pivoted rows; L multipliers are its values in still-active rows.
		j := done
		f.pr[j] = pivRow
		f.ps[j] = cs
		f.invP[j] = 1 / pivVal //raslint:allow nanguard pivVal passed the Markowitz screen |v| >= pivRelTol*colMax with colMax >= pivAbsTol, so it is nonzero
		ue := f.ucols[j][:0]
		le := f.lops[j].nz[:0]
		for _, nz := range col {
			switch {
			case nz.Index == pivRow:
			case f.rowDone[nz.Index]:
				if !exactZero(nz.Value) {
					ue = append(ue, nz)
				}
			default:
				if !exactZero(nz.Value) {
					le = append(le, Nonzero{Index: nz.Index, Value: nz.Value * f.invP[j]})
				}
				f.rowCnt[nz.Index]--
			}
		}
		f.ucols[j] = ue
		f.lops[j] = etaOp{pivot: pivRow, invP: 1, nz: le}
		f.rowDone[pivRow] = true
		f.colDone[cs] = true
		done++

		// Eliminate the pivot row from every other active column holding an
		// entry there. The entry itself stays in place as a future U value
		// (its row is now pivoted); only the active rows change, picking up
		// fill-in from the pivot column's multipliers.
		if len(f.rowCols[pivRow]) > 0 {
			pl := f.lops[j].nz
			for _, s32 := range f.rowCols[pivRow] {
				s := int(s32)
				if s == cs || f.colDone[s] {
					continue
				}
				tgt := f.workCol[s]
				alpha := 0.0
				for _, nz := range tgt {
					if nz.Index == pivRow {
						alpha = nz.Value
						break
					}
				}
				if exactZero(alpha) {
					continue // stale index entry
				}
				f.colCnt[s]-- // the pivot-row entry leaves the active count
				if len(pl) == 0 {
					continue
				}
				// Scatter the target column's positions, then merge the
				// pivot multipliers: existing entries update in place, new
				// rows append as fill.
				f.era++
				era := f.era
				for idx, nz := range tgt {
					f.pos[nz.Index] = int32(idx)
					f.posEra[nz.Index] = era
				}
				for _, lnz := range pl {
					i := lnz.Index
					delta := alpha * lnz.Value // alpha * (v_i / pivot)
					if f.posEra[i] == era {
						tgt[f.pos[i]].Value -= delta
					} else {
						tgt = append(tgt, Nonzero{Index: i, Value: -delta})
						f.pos[i] = int32(len(tgt) - 1)
						f.posEra[i] = era
						f.colCnt[s]++
						f.rowCnt[i]++
						f.rowCols[i] = append(f.rowCols[i], s32)
						fillIns++
					}
				}
				f.workCol[s] = tgt
			}
		}
	}

	// Columns the elimination never pivoted — numerically dependent ones
	// were flagged above; structurally dependent ones (every entry in an
	// already-pivoted row, so the active count hit zero) are swept up here.
	if done < m {
		for s := 0; s < m; s++ {
			if !f.colDone[s] {
				deficient = append(deficient, s)
			}
		}
	}

	f.factNnz = 0
	for j := 0; j < done; j++ {
		f.factNnz += len(f.lops[j].nz) + len(f.ucols[j]) + 1
	}
	// Truncate the pivot arrays to the successful steps so FTRAN/BTRAN never
	// walk uninitialized tail entries (only reachable transiently: a
	// non-empty deficient return forces repair + re-factorize).
	if done < m {
		for j := done; j < m; j++ {
			f.pr[j] = -1
		}
	}
	metrics.LP.FactorFillIns.Add(int64(fillIns))
	metrics.LP.FactorNnz.Set(int64(f.factNnz))
	metrics.LP.FactorRows.Set(int64(m))
	return deficient
}

// unpivotedRows lists, in ascending order, the constraint rows the last
// factorize left without a pivot — exactly as many as the deficient slots it
// returned. Valid until the next factorize call.
func (f *factor) unpivotedRows() []int {
	var rows []int
	for i := 0; i < f.m; i++ {
		if !f.rowDone[i] {
			rows = append(rows, i)
		}
	}
	return rows
}

// markColumnInactive removes a deficient column's remaining active entries
// from the row counts so later Markowitz decisions ignore it.
func (f *factor) markColumnInactive(s int) {
	for _, nz := range f.workCol[s] {
		if !f.rowDone[nz.Index] {
			f.rowCnt[nz.Index]--
		}
	}
	f.colCnt[s] = 0
}

// update appends a PFI eta for a pivot that replaced the column basic in
// slot r, where w = FTRAN(entering column) and wnz lists w's nonzero slots.
// The caller has already verified |w[r]| is numerically safe.
func (f *factor) update(r int, w []float64, wnz []int) {
	invP := 1 / w[r] //raslint:allow nanguard precondition: the caller has verified |w[r]| against the pivot tolerance before calling update
	var nz []Nonzero
	if n := len(f.etas); n < cap(f.etas) {
		// Reuse the retired eta's entry slice to avoid steady-state growth.
		nz = f.etas[:n+1][n].nz[:0]
	}
	for _, i := range wnz {
		if i == r || exactZero(w[i]) {
			continue
		}
		nz = append(nz, Nonzero{Index: i, Value: -w[i] * invP})
	}
	f.etas = append(f.etas, etaOp{pivot: r, invP: invP, nz: nz})
	f.etaNnz += len(nz) + 1
	metrics.LP.UpdateEtas.Add(1)
}

// ftran computes dst = B^-1 · a for a constraint-row-indexed sparse column
// a, writing the basis-slot-indexed result over all of dst. When nzOut is
// non-nil it returns the slots where dst is nonzero, in ascending order —
// the ratio test and step application iterate exactly those.
func (f *factor) ftran(dst []float64, a []Nonzero, nzOut []int) []int {
	rv := f.rv
	clear(rv)
	for _, nz := range a {
		rv[nz.Index] = nz.Value
	}
	return f.ftranLoaded(dst, nzOut)
}

// ftranDense is ftran for a dense row-indexed source vector (the
// recompute-basics residual). src and dst may not alias.
func (f *factor) ftranDense(dst, src []float64) {
	copy(f.rv, src)
	f.ftranLoaded(dst, nil)
}

// ftranLoaded runs the FTRAN chain over the row vector already staged in
// f.rv, which it destroys.
func (f *factor) ftranLoaded(dst []float64, nzOut []int) []int {
	m := f.m
	rv := f.rv

	// L pass: apply elimination multipliers in pivot order.
	for j := range f.lops {
		if f.pr[j] < 0 {
			break
		}
		op := &f.lops[j]
		t := rv[op.pivot]
		if exactZero(t) {
			continue
		}
		for _, nz := range op.nz {
			rv[nz.Index] -= nz.Value * t
		}
	}

	// U backsolve, column-oriented in reverse pivot order, scattering each
	// solved component straight into its basis slot.
	for j := m - 1; j >= 0; j-- {
		if f.pr[j] < 0 {
			continue
		}
		t := rv[f.pr[j]]
		if !exactZero(t) {
			t *= f.invP[j]
			for _, nz := range f.ucols[j] {
				rv[nz.Index] -= nz.Value * t
			}
		}
		dst[f.ps[j]] = t
	}

	// PFI update etas, in application order, in slot coordinates.
	for k := range f.etas {
		op := &f.etas[k]
		t := dst[op.pivot]
		if exactZero(t) {
			continue
		}
		dst[op.pivot] = t * op.invP
		for _, nz := range op.nz {
			dst[nz.Index] += nz.Value * t
		}
	}

	if nzOut == nil {
		return nil
	}
	nzOut = nzOut[:0]
	for i := 0; i < m; i++ {
		if !exactZero(dst[i]) {
			nzOut = append(nzOut, i)
		}
	}
	return nzOut
}

// btran computes dst = (B^-1)^T · c for a basis-slot-indexed vector c,
// writing the constraint-row-indexed result (dual prices) over all of dst.
// src and dst may not alias.
func (f *factor) btran(dst, src []float64) {
	m := f.m
	rv := f.rv
	copy(rv, src)

	// Transposed update etas, in reverse application order (slot space).
	for k := len(f.etas) - 1; k >= 0; k-- {
		op := &f.etas[k]
		t := op.invP * rv[op.pivot]
		for _, nz := range op.nz {
			t += nz.Value * rv[nz.Index]
		}
		rv[op.pivot] = t
	}

	// Permutation transpose: slot coordinates to pivot-row coordinates.
	clear(dst)
	for j := 0; j < m; j++ {
		if f.pr[j] >= 0 {
			dst[f.pr[j]] = rv[f.ps[j]]
		}
	}

	// U^T forward solve in pivot order: each column's entries reference only
	// earlier pivot rows, whose components are already final.
	for j := 0; j < m; j++ {
		if f.pr[j] < 0 {
			continue
		}
		t := dst[f.pr[j]]
		for _, nz := range f.ucols[j] {
			t -= nz.Value * dst[nz.Index]
		}
		dst[f.pr[j]] = t * f.invP[j]
	}

	// Transposed L etas in reverse pivot order.
	for j := len(f.lops) - 1; j >= 0; j-- {
		if f.pr[j] < 0 {
			continue
		}
		op := &f.lops[j]
		t := dst[op.pivot]
		for _, nz := range op.nz {
			t -= nz.Value * dst[nz.Index]
		}
		dst[op.pivot] = t
	}
}

// btranRow computes one row of B^-1 — dst = e_slot^T · B^-1, row-indexed —
// the pivot-row vector the dual ratio test and Devex weight update dot
// against nonbasic columns. It is btran with a unit source vector.
func (f *factor) btranRow(dst []float64, slot int, scratch []float64) {
	clear(scratch)
	scratch[slot] = 1
	f.btran(dst, scratch)
}
