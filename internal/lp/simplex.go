package lp

import (
	"math"

	"ras/internal/metrics"
)

// reinvertEvery bounds the number of Gauss-Jordan rank-one updates applied
// to the dense basis inverse before it is recomputed from scratch, limiting
// accumulated floating-point drift.
const reinvertEvery = 300

// priceBlock is the partial-pricing block width used by the Devex stage:
// candidate entering columns are priced one block at a time, rotating
// deterministically through the blocks, and the scan stops at the first
// block containing an eligible candidate. Problems narrower than one block
// degrade to full pricing.
const priceBlock = 256

// defaultDevexAfter is the default Dantzig→Devex escalation point; see
// Options.DevexAfter. The threshold is sized so that the solves behind the
// repo's deterministic regression suites (the longest measured optimize call
// across the experiment reproductions runs just under 1000 iterations) stay
// on pure Dantzig and keep their historical pivot sequences bit-for-bit,
// while genuinely long degenerate solves — whose iteration budget scales
// with problem size — still escalate to Devex well before hitting MaxIter.
const defaultDevexAfter = 1500

// blandAfter is the number of consecutive degenerate pivots tolerated before
// pricing falls back to Bland's rule (first eligible column in index order),
// which guarantees termination at the cost of speed.
const blandAfter = 400

// optimize runs primal simplex iterations minimizing cost over the first
// priceLimit columns (columns at or beyond priceLimit never enter). It
// returns Optimal, Unbounded, or IterLimit.
//
// Pricing escalates through three deterministic stages as a single call runs
// long:
//
//  1. Dantzig (most-violated reduced cost, full scan) for the first
//     devexAfter iterations. The warm re-solves that dominate branch-and-
//     bound finish in a handful of pivots, where Dantzig's myopic pick is
//     cheap and almost always right.
//  2. Devex (Forrest–Goldfarb reference weights, reset at the switch) with
//     partial pricing over column blocks once the call exceeds devexAfter
//     iterations — the long tail of large cold solves, where Dantzig's
//     zig-zagging is what makes them long. Candidates score d²/γ; the block
//     rotor advances deterministically and persists across solves.
//  3. Bland's rule after blandAfter consecutive degenerate pivots, which
//     guarantees termination.
//
// Every stage breaks ties to the lowest column index and switches on
// deterministic iteration counts, so pivot sequences — and therefore
// solutions — are bit-for-bit reproducible for a given problem and options.
func (s *Workspace) optimize(cost []float64, priceLimit int) Status {
	m := s.m
	y := s.y
	w := s.w

	devexAfter := s.opt.devexAfter()
	gamma := s.gamma
	useDevex := false

	// Bland's rule engages after a burst of degenerate pivots to guarantee
	// termination; staged Dantzig/Devex pricing is used otherwise for speed.
	degenerate := 0

	nBlocks := (priceLimit + priceBlock - 1) / priceBlock
	callIters := 0

	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit
		}
		if s.cancelled() {
			return Cancelled
		}
		s.iters++
		callIters++

		// y = c_B^T · B^-1
		clear(y)
		for i := 0; i < m; i++ {
			cb := cost[s.basis[i]]
			if exactZero(cb) {
				continue
			}
			row := s.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}

		if !useDevex && callIters > devexAfter {
			// Escalate to Devex: reset the reference framework to the
			// current nonbasic set (all weights 1).
			useDevex = true
			for j := 0; j < priceLimit; j++ {
				gamma[j] = 1
			}
		}

		// Price nonbasic columns.
		useBland := degenerate >= blandAfter
		enter := -1
		switch {
		case useBland:
			// Bland: first eligible column in index order, scanning all
			// columns so optimality claims stay exact.
			for j := 0; j < priceLimit; j++ {
				if viol := s.priceOne(cost, y, j); viol > s.opt.Tol {
					enter = j
					break
				}
			}
		case useDevex:
			if s.rotor >= nBlocks {
				s.rotor = 0
			}
			var enterScore float64
			for scanned := 0; scanned < nBlocks && enter == -1; scanned++ {
				blk := s.rotor + scanned
				if blk >= nBlocks {
					blk -= nBlocks
				}
				jEnd := (blk + 1) * priceBlock
				if jEnd > priceLimit {
					jEnd = priceLimit
				}
				for j := blk * priceBlock; j < jEnd; j++ {
					viol := s.priceOne(cost, y, j)
					if viol <= s.opt.Tol {
						continue
					}
					score := viol * viol / gamma[j]
					if enter == -1 || score > enterScore {
						enter, enterScore = j, score
					}
				}
				if enter != -1 {
					s.rotor = blk
				}
			}
		default:
			// Dantzig: most-violated reduced cost over all columns.
			best := s.opt.Tol
			for j := 0; j < priceLimit; j++ {
				if viol := s.priceOne(cost, y, j); viol > best {
					enter = j
					best = viol
				}
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Direction of change for the entering variable.
		sigma := 1.0 // increasing from lower bound
		if s.atUp[enter] {
			sigma = -1.0
		}

		// w = B^-1 · a_enter
		clear(w)
		for _, nz := range s.cols[enter] {
			col := nz.Index
			v := nz.Value
			for i := 0; i < m; i++ {
				w[i] += s.binv[i*m+col] * v
			}
		}

		// Ratio test: basic variable i changes by -sigma·t·w[i].
		tMax := s.up[enter] - s.lo[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveToUpper := false
		piv := s.opt.Tol * 10
		for i := 0; i < m; i++ {
			step := -sigma * w[i]
			if step > piv { // basic value increases toward its upper bound
				bi := s.basis[i]
				if math.IsInf(s.up[bi], 1) {
					continue
				}
				t := (s.up[bi] - s.x[bi]) / step
				if t < tMax-s.opt.Tol || (t < tMax+s.opt.Tol && leave == -1) {
					tMax, leave, leaveToUpper = t, i, true
				}
			} else if step < -piv { // basic value decreases toward its lower bound
				bi := s.basis[i]
				t := (s.x[bi] - s.lo[bi]) / -step
				if t < tMax-s.opt.Tol || (t < tMax+s.opt.Tol && leave == -1) {
					tMax, leave, leaveToUpper = t, i, false
				}
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax <= s.opt.Tol {
			degenerate++
		} else {
			degenerate = 0
		}

		// Apply the step.
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			s.x[bi] -= sigma * tMax * w[i]
		}
		s.x[enter] += sigma * tMax

		if leave == -1 {
			// Bound flip: entering variable moved to its other bound. No
			// basis change, so Devex weights are untouched.
			s.atUp[enter] = !s.atUp[enter]
			continue
		}

		// Devex weight update, using the pivot row of the CURRENT inverse
		// (read before updateInverse overwrites it): for each nonbasic j,
		// γ_j ← max(γ_j, (α_j/α_q)²·γ_q) where α = pivot-row entries.
		// Weights are only maintained while the Devex stage is active.
		if useDevex && !useBland {
			s.devexUpdate(gamma, priceLimit, enter, leave, w[leave])
		}

		// Pivot: replace basis[leave] with enter.
		out := s.basis[leave]
		s.inRow[out] = -1
		s.atUp[out] = leaveToUpper
		// Snap the leaving variable exactly onto its bound.
		if leaveToUpper {
			s.x[out] = s.up[out]
		} else {
			s.x[out] = s.lo[out]
		}
		s.basis[leave] = enter
		s.inRow[enter] = leave
		s.updateInverse(leave, w)
		s.pivots++
		if s.pivots >= reinvertEvery {
			s.reinvert()
		}
	}
}

// priceOne computes the pricing violation of nonbasic column j against dual
// prices y: how far its reduced cost violates the optimality sign condition
// for its bound status. Basic and fixed columns report 0.
func (s *Workspace) priceOne(cost, y []float64, j int) float64 {
	if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
		return 0
	}
	d := cost[j]
	for _, nz := range s.cols[j] {
		d -= y[nz.Index] * nz.Value
	}
	if s.atUp[j] {
		return d // want d > 0 to decrease from upper bound
	}
	return -d // want d < 0 to increase from lower bound
}

// devexUpdate propagates Devex reference weights across a pivot where
// column enter replaces the basic variable of row leave, with pivot element
// alphaQ = (B^-1 a_enter)[leave]. The pivot row of the pre-update inverse
// supplies α_j = (B^-1)_leave · a_j for every nonbasic column.
func (s *Workspace) devexUpdate(gamma []float64, priceLimit, enter, leave int, alphaQ float64) {
	m := s.m
	if math.Abs(alphaQ) < 1e-12 {
		return
	}
	gq := gamma[enter]
	binvRow := s.binv[leave*m : (leave+1)*m]
	for j := 0; j < priceLimit; j++ {
		if s.inRow[j] >= 0 || j == enter {
			continue
		}
		alpha := 0.0
		for _, nz := range s.cols[j] {
			alpha += binvRow[nz.Index] * nz.Value
		}
		if exactZero(alpha) {
			continue
		}
		r := alpha / alphaQ
		if g := r * r * gq; g > gamma[j] {
			gamma[j] = g
		}
	}
	// The leaving variable becomes nonbasic with the entering column's
	// weight scaled through the pivot, floored at the reference weight 1.
	out := s.basis[leave]
	if out < priceLimit {
		gl := gq / (alphaQ * alphaQ)
		if gl < 1 {
			gl = 1
		}
		gamma[out] = gl
	}
}

// dualSimplex restores primal feasibility from a dual-feasible basis after
// bound changes, the branch-and-bound warm-start workhorse. It returns
// Optimal when the basis is primal feasible, Infeasible when no pivot can
// repair a violated basic variable, or IterLimit.
func (s *Workspace) dualSimplex(cost []float64) Status {
	m := s.m
	y := s.y
	w := s.w
	ptol := s.opt.Tol * 1e3 // primal bound tolerance

	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit
		}
		if s.cancelled() {
			return Cancelled
		}

		// Leaving row: largest bound violation among basic variables.
		leave := -1
		worst := ptol
		var target float64 // bound the leaving variable snaps to
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.x[bi]; v > worst {
				worst, leave, target = v, i, s.lo[bi]
			}
			if v := s.x[bi] - s.up[bi]; v > worst {
				worst, leave, target = v, i, s.up[bi]
			}
		}
		if leave == -1 {
			return Optimal
		}
		s.iters++
		s.diters++

		// y = c_B^T B^-1 for reduced costs.
		clear(y)
		for i := 0; i < m; i++ {
			cb := cost[s.basis[i]]
			if exactZero(cb) {
				continue
			}
			row := s.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}
		binvRow := s.binv[leave*m : (leave+1)*m]
		below := s.x[s.basis[leave]] < target // violated below: value must rise

		// Entering column: dual ratio test.
		enter := -1
		bestRatio := math.Inf(1)
		var alphaQ float64
		for j := 0; j < s.n; j++ {
			if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
				continue
			}
			alpha := 0.0
			for _, nz := range s.cols[j] {
				alpha += binvRow[nz.Index] * nz.Value
			}
			if math.Abs(alpha) < 1e-9 {
				continue
			}
			// Admissible directions: see package docs. The leaving value
			// changes by -Δq·alpha; Δq ≥ 0 for atLower, ≤ 0 for atUpper.
			ok := false
			if !s.atUp[j] { // can increase: Δq ≥ 0 → change = -alpha·Δq
				ok = (below && alpha < 0) || (!below && alpha > 0)
			} else { // can decrease: Δq ≤ 0 → change = +alpha·|Δq|
				ok = (below && alpha > 0) || (!below && alpha < 0)
			}
			if !ok {
				continue
			}
			d := cost[j]
			for _, nz := range s.cols[j] {
				d -= y[nz.Index] * nz.Value
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio {
				bestRatio, enter, alphaQ = ratio, j, alpha
			}
		}
		if enter == -1 {
			return Infeasible // no pivot can repair the violation
		}

		// Pivot: move entering by Δq so the leaving variable hits target.
		clear(w)
		for _, nz := range s.cols[enter] {
			col := nz.Index
			v := nz.Value
			for i := 0; i < m; i++ {
				w[i] += s.binv[i*m+col] * v
			}
		}
		dq := (s.x[s.basis[leave]] - target) / alphaQ
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= dq * w[i]
		}
		newVal := s.x[enter] + dq

		out := s.basis[leave]
		s.inRow[out] = -1
		s.atUp[out] = exactEqual(target, s.up[out]) && !exactEqual(s.lo[out], s.up[out])
		s.x[out] = target
		s.basis[leave] = enter
		s.inRow[enter] = leave
		s.x[enter] = newVal
		s.updateInverse(leave, w)
		s.pivots++
		if s.pivots >= reinvertEvery {
			s.reinvert()
		}
	}
}

// updateInverse applies a Gauss-Jordan elimination step so that binv remains
// the inverse of the basis matrix after column r of the basis was replaced by
// a column whose B^-1-transformed image is w.
func (s *Workspace) updateInverse(r int, w []float64) {
	m := s.m
	pivot := w[r]
	if math.Abs(pivot) < 1e-12 {
		// Numerically hopeless pivot; rebuild from scratch.
		s.reinvert()
		return
	}
	inv := 1.0 / pivot
	rowR := s.binv[r*m : (r+1)*m]
	for k := 0; k < m; k++ {
		rowR[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if exactZero(f) {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			row[k] -= f * rowR[k]
		}
	}
}

// reinvert recomputes the dense basis inverse from scratch by Gauss-Jordan
// elimination with partial pivoting, then recomputes basic variable values
// from the nonbasic point. It bounds accumulated floating-point drift.
func (s *Workspace) reinvert() {
	metrics.LP.Refactorizations.Add(1)
	m := s.m
	// Build dense basis matrix in the workspace scratch.
	bm := s.bm
	clear(bm)
	for i := 0; i < m; i++ {
		for _, nz := range s.cols[s.basis[i]] {
			bm[nz.Index*m+i] = nz.Value
		}
	}
	inv := s.binv
	clear(inv)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	// Gauss-Jordan with partial pivoting on bm, mirroring into inv.
	for col := 0; col < m; col++ {
		p := col
		maxAbs := math.Abs(bm[col*m+col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(bm[r*m+col]); a > maxAbs {
				maxAbs, p = a, r
			}
		}
		if maxAbs < 1e-12 {
			continue // singular direction; leave as-is (degenerate basis)
		}
		if p != col {
			swapRows(bm, m, p, col)
			swapRows(inv, m, p, col)
		}
		d := 1.0 / bm[col*m+col]
		for k := 0; k < m; k++ {
			bm[col*m+k] *= d
			inv[col*m+k] *= d
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := bm[r*m+col]
			if exactZero(f) {
				continue
			}
			for k := 0; k < m; k++ {
				bm[r*m+k] -= f * bm[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	s.pivots = 0
	s.recomputeBasics()
}

// recomputeBasics sets x_B = B^-1 (b - N x_N) from the nonbasic point.
func (s *Workspace) recomputeBasics() {
	m := s.m
	resid := s.resid
	copy(resid, s.b)
	for j := 0; j < s.n; j++ {
		if s.inRow[j] >= 0 || exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	for i := 0; i < m; i++ {
		v := 0.0
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			v += row[k] * resid[k]
		}
		s.x[s.basis[i]] = v
	}
}

func swapRows(a []float64, m, i, j int) {
	ri := a[i*m : (i+1)*m]
	rj := a[j*m : (j+1)*m]
	for k := 0; k < m; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
