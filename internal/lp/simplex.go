package lp

import (
	"math"

	"ras/internal/metrics"
)

// priceBlock is the partial-pricing block width used by the Devex stage:
// candidate entering columns are priced one block at a time, rotating
// deterministically through the blocks, and the scan stops at the first
// block containing an eligible candidate. Problems narrower than one block
// degrade to full pricing.
const priceBlock = 256

// defaultDevexAfter is the default Dantzig→Devex escalation point; see
// Options.DevexAfter. The threshold is sized so that the solves behind the
// repo's deterministic regression suites (the longest measured optimize call
// across the experiment reproductions runs just under 1000 iterations) stay
// on pure Dantzig and keep their historical pivot sequences bit-for-bit,
// while genuinely long degenerate solves — whose iteration budget scales
// with problem size — still escalate to Devex well before hitting MaxIter.
const defaultDevexAfter = 1500

// blandAfter is the number of consecutive degenerate pivots tolerated before
// pricing falls back to Bland's rule (first eligible column in index order),
// which guarantees termination at the cost of speed.
const blandAfter = 400

// minPivotStep floors the ratio-test pivot threshold: steps smaller than
// this are numerically meaningless even when opt.Tol is configured to zero,
// and dividing by them would overflow the ratio toward ±Inf.
const minPivotStep = 1e-30

// optimize runs primal simplex iterations minimizing cost over the first
// priceLimit columns (columns at or beyond priceLimit never enter). It
// returns Optimal, Unbounded, or IterLimit.
//
// Pricing escalates through three deterministic stages as a single call runs
// long:
//
//  1. Dantzig (most-violated reduced cost, full scan) for the first
//     devexAfter iterations. The warm re-solves that dominate branch-and-
//     bound finish in a handful of pivots, where Dantzig's myopic pick is
//     cheap and almost always right.
//  2. Devex (Forrest–Goldfarb reference weights, reset at the switch) with
//     partial pricing over column blocks once the call exceeds devexAfter
//     iterations — the long tail of large cold solves, where Dantzig's
//     zig-zagging is what makes them long. Candidates score d²/γ; the block
//     rotor advances deterministically and persists across solves.
//  3. Bland's rule after blandAfter consecutive degenerate pivots, which
//     guarantees termination.
//
// Every stage breaks ties to the lowest column index and switches on
// deterministic iteration counts, so pivot sequences — and therefore
// solutions — are bit-for-bit reproducible for a given problem and options.
func (s *Workspace) optimize(cost []float64, priceLimit int) Status {
	m := s.m
	y := s.y
	w := s.w

	devexAfter := s.opt.devexAfter()
	refactorEvery := s.opt.refactorEvery()
	gamma := s.gamma
	useDevex := false

	// Bland's rule engages after a burst of degenerate pivots to guarantee
	// termination; staged Dantzig/Devex pricing is used otherwise for speed.
	degenerate := 0

	nBlocks := (priceLimit + priceBlock - 1) / priceBlock
	callIters := 0

	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit
		}
		if s.cancelled() {
			return Cancelled
		}
		s.iters++
		callIters++

		// y = c_B^T · B^-1 via BTRAN of the basic cost vector.
		for i := 0; i < m; i++ {
			s.cb[i] = cost[s.basis[i]]
		}
		s.fact.btran(y, s.cb)

		if !useDevex && callIters > devexAfter {
			// Escalate to Devex: reset the reference framework to the
			// current nonbasic set (all weights 1).
			useDevex = true
			for j := 0; j < priceLimit; j++ {
				gamma[j] = 1
			}
		}

		// Price nonbasic columns.
		useBland := degenerate >= blandAfter
		enter := -1
		switch {
		case useBland:
			// Bland: first eligible column in index order, scanning all
			// columns so optimality claims stay exact.
			for j := 0; j < priceLimit; j++ {
				if viol := s.priceOne(cost, y, j); viol > s.opt.Tol {
					enter = j
					break
				}
			}
		case useDevex:
			if s.rotor >= nBlocks {
				s.rotor = 0
			}
			var enterScore float64
			for scanned := 0; scanned < nBlocks && enter == -1; scanned++ {
				blk := s.rotor + scanned
				if blk >= nBlocks {
					blk -= nBlocks
				}
				jEnd := (blk + 1) * priceBlock
				if jEnd > priceLimit {
					jEnd = priceLimit
				}
				for j := blk * priceBlock; j < jEnd; j++ {
					viol := s.priceOne(cost, y, j)
					if viol <= s.opt.Tol {
						continue
					}
					// Devex weights are 1 at reset and only ever grow or
					// re-floor at 1 (devexUpdate), so the max is an
					// identity that carries the nonzero proof.
					score := viol * viol / max(gamma[j], 1)
					if enter == -1 || score > enterScore {
						enter, enterScore = j, score
					}
				}
				if enter != -1 {
					s.rotor = blk
				}
			}
		default:
			// Dantzig: most-violated reduced cost over all columns.
			best := s.opt.Tol
			for j := 0; j < priceLimit; j++ {
				if viol := s.priceOne(cost, y, j); viol > best {
					enter = j
					best = viol
				}
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Direction of change for the entering variable.
		sigma := 1.0 // increasing from lower bound
		if s.atUp[enter] {
			sigma = -1.0
		}

		// w = B^-1 · a_enter (FTRAN), tracking the nonzero slots so the
		// ratio test and step application touch only them.
		s.wnz = s.fact.ftran(w, s.cols[enter], s.wnz)

		// Ratio test over the pivot column's nonzeros: basic variable i
		// changes by -sigma·t·w[i].
		tMax := s.up[enter] - s.lo[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveToUpper := false
		// The positive floor keeps the pivot threshold meaningful when Tol is
		// zero and lets the ratio-test divisions carry a step≷±piv proof.
		piv := max(s.opt.Tol*10, minPivotStep)
		for _, i := range s.wnz {
			step := -sigma * w[i]
			if step > piv { // basic value increases toward its upper bound
				bi := s.basis[i]
				if math.IsInf(s.up[bi], 1) {
					continue
				}
				t := (s.up[bi] - s.x[bi]) / step
				if t < tMax-s.opt.Tol || (t < tMax+s.opt.Tol && leave == -1) {
					tMax, leave, leaveToUpper = t, i, true
				}
			} else if step < -piv { // basic value decreases toward its lower bound
				bi := s.basis[i]
				t := (s.x[bi] - s.lo[bi]) / -step
				if t < tMax-s.opt.Tol || (t < tMax+s.opt.Tol && leave == -1) {
					tMax, leave, leaveToUpper = t, i, false
				}
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax <= s.opt.Tol {
			degenerate++
		} else {
			degenerate = 0
		}

		// Apply the step.
		for _, i := range s.wnz {
			bi := s.basis[i]
			s.x[bi] -= sigma * tMax * w[i]
		}
		s.x[enter] += sigma * tMax

		if leave == -1 {
			// Bound flip: entering variable moved to its other bound. No
			// basis change, so Devex weights are untouched.
			s.atUp[enter] = !s.atUp[enter]
			continue
		}

		// Devex weight update, using the pivot row of the CURRENT basis
		// inverse (a BTRAN of the leaving slot's unit vector, taken before
		// the factorization absorbs the pivot): for each nonbasic j,
		// γ_j ← max(γ_j, (α_j/α_q)²·γ_q) where α = pivot-row entries.
		// Weights are only maintained while the Devex stage is active.
		if useDevex && !useBland {
			s.fact.btranRow(s.brow, leave, s.cb)
			s.devexUpdate(gamma, priceLimit, enter, leave, w[leave])
		}

		// Pivot: replace basis[leave] with enter.
		out := s.basis[leave]
		s.inRow[out] = -1
		s.atUp[out] = leaveToUpper
		// Snap the leaving variable exactly onto its bound.
		if leaveToUpper {
			s.x[out] = s.up[out]
		} else {
			s.x[out] = s.lo[out]
		}
		s.basis[leave] = enter
		s.inRow[enter] = leave
		if !s.absorbPivot(leave, refactorEvery) {
			return Singular
		}
		if s.repaired {
			// A singular refactorization swapped artificials into the basis.
			// The repaired point may violate bounds, which breaks the primal
			// iteration's invariants — surface it instead of iterating on.
			s.repaired = false
			if !s.basicsWithinBounds() {
				return Singular
			}
		}
	}
}

// basicsWithinBounds reports whether every basic variable currently sits
// within its bounds (to the phase feasibility tolerance) — the primal
// simplex invariant a singular-basis repair may have broken.
func (s *Workspace) basicsWithinBounds() bool {
	tol := s.feasTol()
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		if s.x[bi] < s.lo[bi]-tol || s.x[bi] > s.up[bi]+tol {
			return false
		}
	}
	return true
}

// absorbPivot folds the pivot at slot `leave` (whose FTRAN image is in s.w /
// s.wnz) into the factorization: a product-form eta in the common case, a
// full refactorization when the pivot element is numerically hopeless or the
// deterministic cadence (eta count or fill growth) is due. It reports false
// when the basis could not be refactorized even after repair.
func (s *Workspace) absorbPivot(leave, refactorEvery int) bool {
	if math.Abs(s.w[leave]) < 1e-12 {
		// Numerically hopeless pivot; rebuild the new basis from scratch.
		return s.refactorize()
	}
	s.fact.update(leave, s.w, s.wnz)
	if s.fact.needRefactor(refactorEvery) {
		return s.refactorize()
	}
	return true
}

// priceOne computes the pricing violation of nonbasic column j against dual
// prices y: how far its reduced cost violates the optimality sign condition
// for its bound status. Basic and fixed columns report 0.
func (s *Workspace) priceOne(cost, y []float64, j int) float64 {
	if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
		return 0
	}
	d := cost[j]
	for _, nz := range s.cols[j] {
		d -= y[nz.Index] * nz.Value
	}
	if s.atUp[j] {
		return d // want d > 0 to decrease from upper bound
	}
	return -d // want d < 0 to increase from lower bound
}

// devexUpdate propagates Devex reference weights across a pivot where
// column enter replaces the basic variable of row leave, with pivot element
// alphaQ = (B^-1 a_enter)[leave]. The pivot row of the pre-update inverse —
// already BTRAN'd into s.brow by the caller — supplies α_j = (B^-1)_leave ·
// a_j for every nonbasic column via sparse dot products with the stored
// columns.
func (s *Workspace) devexUpdate(gamma []float64, priceLimit, enter, leave int, alphaQ float64) {
	if math.Abs(alphaQ) < 1e-12 {
		return
	}
	gq := gamma[enter]
	brow := s.brow
	for j := 0; j < priceLimit; j++ {
		if s.inRow[j] >= 0 || j == enter {
			continue
		}
		alpha := 0.0
		for _, nz := range s.cols[j] {
			alpha += brow[nz.Index] * nz.Value
		}
		if exactZero(alpha) {
			continue
		}
		r := alpha / alphaQ
		if g := r * r * gq; g > gamma[j] {
			gamma[j] = g
		}
	}
	// The leaving variable becomes nonbasic with the entering column's
	// weight scaled through the pivot, floored at the reference weight 1.
	out := s.basis[leave]
	if out < priceLimit {
		gl := gq / (alphaQ * alphaQ)
		if gl < 1 {
			gl = 1
		}
		gamma[out] = gl
	}
}

// dualSimplex restores primal feasibility from a dual-feasible basis after
// bound changes, the branch-and-bound warm-start workhorse. It returns
// Optimal when the basis is primal feasible, Infeasible when no pivot can
// repair a violated basic variable, or IterLimit.
func (s *Workspace) dualSimplex(cost []float64) Status {
	m := s.m
	y := s.y
	w := s.w
	refactorEvery := s.opt.refactorEvery()
	ptol := s.opt.Tol * 1e3 // primal bound tolerance

	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit
		}
		if s.cancelled() {
			return Cancelled
		}

		// Leaving row: largest bound violation among basic variables.
		leave := -1
		worst := ptol
		var target float64 // bound the leaving variable snaps to
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.x[bi]; v > worst {
				worst, leave, target = v, i, s.lo[bi]
			}
			if v := s.x[bi] - s.up[bi]; v > worst {
				worst, leave, target = v, i, s.up[bi]
			}
		}
		if leave == -1 {
			return Optimal
		}
		s.iters++
		s.diters++

		// y = c_B^T B^-1 for reduced costs, and the pivot row of B^-1 for
		// the dual ratio test — both BTRANs over the factorization.
		for i := 0; i < m; i++ {
			s.cb[i] = cost[s.basis[i]]
		}
		s.fact.btran(y, s.cb)
		s.fact.btranRow(s.brow, leave, s.cb)
		binvRow := s.brow
		below := s.x[s.basis[leave]] < target // violated below: value must rise

		// Entering column: dual ratio test.
		enter := -1
		bestRatio := math.Inf(1)
		var alphaQ float64
		for j := 0; j < s.n; j++ {
			if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
				continue
			}
			alpha := 0.0
			for _, nz := range s.cols[j] {
				alpha += binvRow[nz.Index] * nz.Value
			}
			if math.Abs(alpha) < 1e-9 {
				continue
			}
			// Admissible directions: see package docs. The leaving value
			// changes by -Δq·alpha; Δq ≥ 0 for atLower, ≤ 0 for atUpper.
			var ok bool
			if !s.atUp[j] { // can increase: Δq ≥ 0 → change = -alpha·Δq
				ok = (below && alpha < 0) || (!below && alpha > 0)
			} else { // can decrease: Δq ≤ 0 → change = +alpha·|Δq|
				ok = (below && alpha > 0) || (!below && alpha < 0)
			}
			if !ok {
				continue
			}
			d := cost[j]
			for _, nz := range s.cols[j] {
				d -= y[nz.Index] * nz.Value
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio {
				bestRatio, enter, alphaQ = ratio, j, alpha
			}
		}
		if enter == -1 {
			return Infeasible // no pivot can repair the violation
		}

		// Pivot: move entering by Δq so the leaving variable hits target.
		s.wnz = s.fact.ftran(w, s.cols[enter], s.wnz)
		dq := (s.x[s.basis[leave]] - target) / alphaQ //raslint:allow nanguard alphaQ was recorded together with enter behind the |alpha| >= 1e-9 screen, and enter == -1 returned above
		for _, i := range s.wnz {
			s.x[s.basis[i]] -= dq * w[i]
		}
		newVal := s.x[enter] + dq

		out := s.basis[leave]
		s.inRow[out] = -1
		s.atUp[out] = exactEqual(target, s.up[out]) && !exactEqual(s.lo[out], s.up[out])
		s.x[out] = target
		s.basis[leave] = enter
		s.inRow[enter] = leave
		s.x[enter] = newVal
		if !s.absorbPivot(leave, refactorEvery) {
			return Singular
		}
		// A singular-basis repair here leaves bound-violating basics, which
		// is the state dual simplex exists to fix — clear the flag and let
		// the violation scan above pick them up.
		s.repaired = false
	}
}

// refactorize rebuilds the sparse basis factorization from the current
// basis columns and recomputes the basic variable values. A singular basis
// — the case the dense-inverse predecessor silently papered over with stale
// inverse columns — is repaired by swapping each linearly dependent basis
// column for the artificial of an unpivoted row (always structurally
// nonsingular) and re-factorizing; repairs are surfaced through
// metrics.LP.SingularRepairs and, if repair cannot produce a factorizable
// basis, a false return that callers turn into Status Singular.
func (s *Workspace) refactorize() bool {
	for attempt := 0; ; attempt++ {
		deficient := s.fact.factorize(s.cols, s.basis)
		if len(deficient) == 0 {
			break
		}
		if attempt >= 3 {
			return false
		}
		metrics.LP.SingularRepairs.Add(int64(len(deficient)))
		s.repairBasis(deficient)
		s.repaired = true
	}
	s.recomputeBasics()
	return true
}

// repairBasis replaces the basis columns in the deficient slots with the
// artificial columns of the rows the factorization could not pivot, making
// the old columns nonbasic at their lower bounds. The pairing is
// deterministic: ascending slots to ascending rows. An artificial of an
// unpivoted row can never itself be basic (a basic artificial is a unit
// column that would have pivoted that row), so the swap is always sound.
func (s *Workspace) repairBasis(deficient []int) {
	rows := s.fact.unpivotedRows()
	sortInts(deficient)
	for k, slot := range deficient {
		out := s.basis[slot]
		s.inRow[out] = -1
		s.atUp[out] = false
		s.x[out] = s.lo[out]
		a := s.artStart + rows[k]
		s.basis[slot] = a
		s.inRow[a] = slot
	}
}

// sortInts sorts a small int slice in place (insertion sort: deficiency
// lists are nearly always length 1, never large).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0; j-- {
			if xs[j] >= xs[j-1] {
				break
			}
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// recomputeBasics sets x_B = B^-1 (b - N x_N) from the nonbasic point.
func (s *Workspace) recomputeBasics() {
	m := s.m
	resid := s.resid
	copy(resid, s.b)
	for j := 0; j < s.n; j++ {
		if s.inRow[j] >= 0 || exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	s.fact.ftranDense(s.w, resid)
	for i := 0; i < m; i++ {
		s.x[s.basis[i]] = s.w[i]
	}
}
