// Package lp implements a linear-programming solver based on the revised
// simplex method with bounded variables.
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  A·x {≤,=,≥} b
//	            lo ≤ x ≤ up
//
// Inequality rows are converted to equalities internally by adding slack
// variables. Feasibility is established with a phase-1 solve over artificial
// variables, after which the true objective is minimized in phase 2. The
// basis inverse is maintained densely and periodically recomputed from
// scratch to bound numerical drift, which keeps the implementation simple
// and robust at the problem sizes RAS produces after symmetry reduction
// (hundreds to a few thousand rows).
//
// lp is the substrate for package mip, which layers branch-and-bound on top
// to solve the mixed-integer programs formulated by the RAS async solver.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Sense describes the relation of a constraint row to its right-hand side.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // ≤
	EQ              // =
	GE              // ≥
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int8(s))
}

// Inf is the bound value representing "unbounded". Use +Inf for no upper
// bound. Lower bounds must be finite; shift variables if necessary.
var Inf = math.Inf(1)

// Nonzero is a single coefficient of a sparse constraint row or column.
type Nonzero struct {
	Index int     // variable index within the problem
	Value float64 // coefficient
}

// Problem is a linear program under construction. The zero value is an empty
// problem ready for use.
type Problem struct {
	cost []float64 // objective coefficients, one per variable
	lo   []float64 // lower bounds (finite)
	up   []float64 // upper bounds (may be +Inf)

	rows   [][]Nonzero // sparse constraint rows
	senses []Sense
	rhs    []float64
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar appends a variable with the given objective cost and bounds and
// returns its index. The lower bound must be finite and not exceed the upper
// bound; the upper bound may be lp.Inf.
func (p *Problem) AddVar(cost, lo, up float64) int {
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		panic(fmt.Sprintf("lp: non-finite lower bound %v", lo))
	}
	if up < lo {
		panic(fmt.Sprintf("lp: upper bound %v below lower bound %v", up, lo))
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	return len(p.cost) - 1
}

// SetBounds replaces the bounds of variable j. It is used by branch-and-bound
// to tighten bounds between solves of the same problem.
func (p *Problem) SetBounds(j int, lo, up float64) {
	if j < 0 || j >= len(p.cost) {
		panic(fmt.Sprintf("lp: SetBounds on unknown variable %d", j))
	}
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		panic(fmt.Sprintf("lp: non-finite lower bound %v", lo))
	}
	if up < lo {
		panic(fmt.Sprintf("lp: upper bound %v below lower bound %v", up, lo))
	}
	p.lo[j] = lo
	p.up[j] = up
}

// Bounds reports the current bounds of variable j.
func (p *Problem) Bounds(j int) (lo, up float64) { return p.lo[j], p.up[j] }

// Clone returns a copy of the problem whose bounds (and costs) can be
// mutated independently of the original — the per-worker scratch state of a
// parallel branch-and-bound search, where every worker tightens bounds on
// its own copy between node LPs. The sparse row payloads are shared with the
// original: rows are append-only and never mutated in place by Solve or
// SetBounds, so sharing them is safe as long as no rows or variables are
// added to either copy while clones are in use.
func (p *Problem) Clone() *Problem {
	return &Problem{
		cost:   append([]float64(nil), p.cost...),
		lo:     append([]float64(nil), p.lo...),
		up:     append([]float64(nil), p.up...),
		rows:   append([][]Nonzero(nil), p.rows...),
		senses: append([]Sense(nil), p.senses...),
		rhs:    append([]float64(nil), p.rhs...),
	}
}

// exactZero reports whether v is exactly zero. The solver's sparsity
// convention stores absent entries as exact zeros (assigned, never the
// residue of arithmetic), so identity — not closeness — is the intended
// test; a tolerance here would misclassify genuinely tiny values. This is a
// raslint floatcmp designated helper: the one place the convention lives.
func exactZero(v float64) bool { return v == 0 }

// exactEqual reports whether a and b are exactly equal. For values copied
// from the same store (variable bounds, pivot targets), where the question
// is "is this that same stored value", not numerical closeness. A raslint
// floatcmp designated helper.
func exactEqual(a, b float64) bool { return a == b }

// AddRow appends a constraint row Σ coeffs·x sense rhs and returns its index.
// Coefficients must reference variables that already exist. Duplicate indices
// within one row are summed.
func (p *Problem) AddRow(coeffs []Nonzero, sense Sense, rhs float64) int {
	row := make([]Nonzero, 0, len(coeffs))
	seen := make(map[int]int, len(coeffs))
	for _, nz := range coeffs {
		if nz.Index < 0 || nz.Index >= len(p.cost) {
			panic(fmt.Sprintf("lp: row references unknown variable %d", nz.Index))
		}
		if exactZero(nz.Value) {
			continue
		}
		if at, ok := seen[nz.Index]; ok {
			row[at].Value += nz.Value
			continue
		}
		seen[nz.Index] = len(row)
		row = append(row, nz)
	}
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal solution was found
	Infeasible               // no point satisfies all constraints and bounds
	Unbounded                // the objective decreases without bound
	IterLimit                // the iteration limit was hit before convergence
	Cancelled                // the context was cancelled mid-solve
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status     Status
	Objective  float64   // objective value at X (valid when Status == Optimal)
	X          []float64 // one value per problem variable
	Iterations int       // total simplex iterations across both phases
	DualIters  int       // dual-simplex repair iterations (warm starts)
	// Basis is an opaque snapshot of the optimal basis, usable as
	// Options.Start on a later solve of the SAME problem (same rows and
	// variables; bounds may differ). Nil when no exportable basis exists.
	Basis *Basis
}

// Basis is an opaque simplex basis snapshot for warm starts. It carries the
// dense basis inverse so a warm import costs O(m²) instead of an O(m³)
// refactorization; the inverse is refreshed whenever accumulated pivots
// would risk numerical drift.
type Basis struct {
	cols   []int
	atUp   []bool
	binv   []float64
	pivots int
}

// Options tunes the solver.
type Options struct {
	// MaxIter bounds the total number of simplex iterations across both
	// phases. Zero means a default proportional to the problem size.
	MaxIter int
	// Tol is the feasibility/optimality tolerance. Zero means 1e-9.
	Tol float64
	// Start warm-starts the solve from a basis exported by a previous
	// Solution of the same problem. After bound changes (the
	// branch-and-bound case) primal feasibility is restored with dual
	// simplex iterations, which is typically orders of magnitude cheaper
	// than solving from scratch. Invalid or unusable bases fall back to a
	// cold start silently.
	Start *Basis
}

// ErrMalformed reports a structurally invalid problem.
var ErrMalformed = errors.New("lp: malformed problem")

// Solve minimizes the problem's objective and returns the solution. The
// problem itself is not modified and may be solved repeatedly, including
// after further rows or variables are added.
//
// Cancelling ctx aborts the simplex iteration loops promptly; the returned
// Solution then has Status Cancelled and carries whatever (possibly
// infeasible) point the solver held when it stopped.
func (p *Problem) Solve(ctx context.Context, opt Options) Solution {
	if exactZero(opt.Tol) {
		opt.Tol = 1e-9
	}
	if ctx == nil {
		ctx = context.Background() //raslint:allow ctxflow nil ctx defaults to Background at the public API boundary
	}
	if opt.Start != nil {
		s := newSimplex(ctx, p, opt)
		if sol, ok := s.runWarm(opt.Start); ok {
			return sol
		}
		// Unusable basis: cold-start, keeping the wasted iteration count.
		warmIters := s.iters
		s = newSimplex(ctx, p, opt)
		sol := s.run()
		sol.Iterations += warmIters
		return sol
	}
	s := newSimplex(ctx, p, opt)
	return s.run()
}

// simplex is the working state of a revised-simplex solve. Variables are
// indexed 0..n-1 structural, n..n+m-1 slack/artificial.
type simplex struct {
	ctx    context.Context
	opt    Options
	diters int

	m int // rows
	n int // total columns (structural + slacks + artificials)

	nStruct int // structural variable count

	cols [][]Nonzero // sparse columns, length n
	cost []float64   // phase-2 costs
	lo   []float64
	up   []float64
	b    []float64 // row RHS (equalities)

	artStart int   // first artificial column index
	slackOf  []int // row → slack column, or -1 for equality rows

	// Basis state.
	basis  []int     // basis[i] = column basic in row i
	inRow  []int     // inRow[j] = row where j is basic, or -1
	atUp   []bool    // nonbasic at upper bound (else at lower)
	x      []float64 // current value of every column
	binv   []float64 // dense m×m basis inverse, row-major
	pivots int       // pivots since last reinversion

	iters int
}

func newSimplex(ctx context.Context, p *Problem, opt Options) *simplex {
	m := len(p.rows)
	nStruct := len(p.cost)

	s := &simplex{ctx: ctx, opt: opt, m: m, nStruct: nStruct}

	// Structural columns.
	cols := make([][]Nonzero, nStruct, nStruct+2*m)
	for i, row := range p.rows {
		for _, nz := range row {
			cols[nz.Index] = append(cols[nz.Index], Nonzero{Index: i, Value: nz.Value})
		}
	}
	cost := append([]float64(nil), p.cost...)
	lo := append([]float64(nil), p.lo...)
	up := append([]float64(nil), p.up...)
	b := append([]float64(nil), p.rhs...)

	// Slack columns: one per inequality row.
	s.slackOf = make([]int, m)
	for i := range s.slackOf {
		s.slackOf[i] = -1
	}
	for i, sense := range p.senses {
		switch sense {
		case LE:
			s.slackOf[i] = len(cols)
			cols = append(cols, []Nonzero{{Index: i, Value: 1}})
			cost = append(cost, 0)
			lo = append(lo, 0)
			up = append(up, Inf)
		case GE:
			s.slackOf[i] = len(cols)
			cols = append(cols, []Nonzero{{Index: i, Value: -1}})
			cost = append(cost, 0)
			lo = append(lo, 0)
			up = append(up, Inf)
		case EQ:
			// no slack
		}
	}

	s.artStart = len(cols)

	// Artificial columns: one per row, sign chosen after initial point is set.
	for i := 0; i < m; i++ {
		cols = append(cols, []Nonzero{{Index: i, Value: 1}}) // sign fixed later
		cost = append(cost, 0)
		lo = append(lo, 0)
		up = append(up, Inf)
	}

	s.cols = cols
	s.cost = cost
	s.lo = lo
	s.up = up
	s.b = b
	s.n = len(cols)

	if opt.MaxIter == 0 {
		s.opt.MaxIter = 2000 + 40*(m+s.n)
	}
	return s
}

// run performs the two-phase solve.
func (s *simplex) run() Solution {
	m, n := s.m, s.n

	// Initial point: every non-artificial variable at a finite bound
	// (prefer the lower bound, which is always finite).
	s.x = make([]float64, n)
	s.atUp = make([]bool, n)
	for j := 0; j < s.artStart; j++ {
		s.x[j] = s.lo[j]
	}

	// Residual r = b - A·x determines artificial signs and values.
	resid := append([]float64(nil), s.b...)
	for j := 0; j < s.artStart; j++ {
		if exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	// Initial basis: a row's own slack when the slack value would be
	// feasible (a "crash" basis that usually covers most rows), otherwise
	// the row's artificial. Artificials stay fixed at zero for rows that
	// do not need one.
	s.basis = make([]int, m)
	s.inRow = make([]int, n)
	for j := range s.inRow {
		s.inRow[j] = -1
	}
	needPhase1 := false
	for i := 0; i < m; i++ {
		a := s.artStart + i
		if resid[i] < 0 {
			s.cols[a][0].Value = -1
		} else {
			s.cols[a][0].Value = 1
		}
		sl := s.slackOf[i]
		slackVal := 0.0
		useSlack := false
		if sl >= 0 {
			// slack coefficient is +1 for LE, -1 for GE.
			slackVal = resid[i] * s.cols[sl][0].Value
			useSlack = slackVal >= 0
		}
		if useSlack {
			s.basis[i] = sl
			s.inRow[sl] = i
			s.x[sl] = slackVal
			s.up[a] = 0 // artificial unused; pin it
		} else {
			s.basis[i] = a
			s.inRow[a] = i
			s.x[a] = math.Abs(resid[i])
			if s.x[a] > s.opt.Tol {
				needPhase1 = true
			}
		}
	}
	s.reinvert()

	// Phase 1: minimize the sum of active artificials.
	if needPhase1 {
		phase1 := make([]float64, n)
		for i := 0; i < m; i++ {
			phase1[s.artStart+i] = 1
		}
		st := s.optimize(phase1, s.artStart)
		if st == IterLimit || st == Cancelled {
			return Solution{Status: st, X: s.structX(), Iterations: s.iters}
		}
		infeas := 0.0
		for i := 0; i < m; i++ {
			infeas += s.x[s.artStart+i]
		}
		if infeas > s.feasTol() {
			return Solution{Status: Infeasible, X: s.structX(), Iterations: s.iters}
		}
	}

	// Pin artificials to zero for phase 2. Basic artificials (degenerate at
	// zero) are allowed to remain basic; the bound pin keeps them at zero.
	for i := 0; i < m; i++ {
		a := s.artStart + i
		s.up[a] = 0
		if !exactZero(s.x[a]) {
			s.x[a] = 0 // clean up residual fuzz below tolerance
		}
	}

	// Phase 2: minimize the true objective.
	st := s.optimize(s.cost, s.n)
	return s.finish(st)
}

// finish assembles a Solution from the current state.
func (s *simplex) finish(st Status) Solution {
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.cost[j] * s.x[j]
	}
	sol := Solution{Status: st, Objective: obj, X: s.structX(), Iterations: s.iters, DualIters: s.diters}
	if st == Optimal {
		sol.Basis = s.exportBasis()
	}
	return sol
}

// exportBasis snapshots the basis if it contains no artificial columns
// (artificial signs are cold-start-dependent, so such bases do not transfer).
func (s *simplex) exportBasis() *Basis {
	for _, c := range s.basis {
		if c >= s.artStart {
			return nil
		}
	}
	return &Basis{
		cols:   append([]int(nil), s.basis...),
		atUp:   append([]bool(nil), s.atUp...),
		binv:   append([]float64(nil), s.binv...),
		pivots: s.pivots,
	}
}

// runWarm attempts a warm-started solve from a previously exported basis.
// It reports ok=false when the basis is structurally unusable or numerical
// checks fail, in which case the caller should cold-start.
func (s *simplex) runWarm(start *Basis) (Solution, bool) {
	m, n := s.m, s.n
	if len(start.cols) != m || len(start.atUp) != n {
		return Solution{}, false
	}
	seen := make([]bool, n)
	for _, c := range start.cols {
		if c < 0 || c >= s.artStart || seen[c] {
			return Solution{}, false
		}
		seen[c] = true
	}

	// Install statuses: nonbasic at a bound, artificials pinned at zero.
	s.x = make([]float64, n)
	s.atUp = make([]bool, n)
	s.basis = append([]int(nil), start.cols...)
	s.inRow = make([]int, n)
	for j := range s.inRow {
		s.inRow[j] = -1
	}
	for i, c := range s.basis {
		s.inRow[c] = i
	}
	for i := 0; i < m; i++ {
		s.up[s.artStart+i] = 0
	}
	for j := 0; j < n; j++ {
		if s.inRow[j] >= 0 {
			continue
		}
		if start.atUp[j] && !math.IsInf(s.up[j], 1) {
			s.x[j] = s.up[j]
			s.atUp[j] = true
		} else {
			s.x[j] = s.lo[j]
		}
	}
	if len(start.binv) == m*m && start.pivots < 300 {
		// Reuse the cached inverse (bounds do not enter B) and only
		// recompute the basic values — then verify the result actually
		// satisfies A·x = b. Long export/import chains accumulate drift;
		// a violated residual means the cached inverse is stale.
		s.binv = append(s.binv[:0], start.binv...)
		s.pivots = start.pivots
		s.recomputeBasics()
		if !s.residualOK() {
			s.reinvert()
		}
	} else {
		s.reinvert()
	}

	// The start basis came from an optimal solve with the same costs, so it
	// should be dual feasible; verify cheaply so dual-simplex infeasibility
	// verdicts can be trusted.
	if !s.dualFeasible(s.cost) {
		return Solution{}, false
	}

	switch st := s.dualSimplex(s.cost); st {
	case Infeasible:
		// A dual-simplex infeasibility proof is only as sound as the dual
		// feasibility of every intermediate basis, which accumulated
		// floating-point drift can silently break. Never report
		// infeasibility from the warm path; make the caller verify cold.
		return Solution{}, false
	case IterLimit:
		return Solution{}, false
	case Cancelled:
		// Do NOT fall back to a cold start: the point of cancellation is to
		// stop working, so report it from the warm path directly.
		return s.finish(Cancelled), true
	}
	// Primal feasible now; polish with primal iterations (usually zero).
	st := s.optimize(s.cost, s.n)
	if st == Unbounded {
		// A warm start cannot soundly prove unboundedness after bound
		// changes narrowed and re-widened variables; re-verify cold.
		return Solution{}, false
	}
	if st == Optimal && !s.residualOK() {
		return Solution{}, false // numerical drift; the caller re-solves cold
	}
	return s.finish(st), true
}

// residualOK verifies A·x = b within tolerance across every row — a cheap
// O(nnz) guard against stale basis inverses on the warm path.
func (s *simplex) residualOK() bool {
	resid := append([]float64(nil), s.b...)
	for j := 0; j < s.n; j++ {
		if exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	for i, r := range resid {
		if math.Abs(r) > 1e-6*(1+math.Abs(s.b[i])) {
			return false
		}
	}
	return true
}

// dualFeasible checks the sign conditions of all nonbasic reduced costs.
func (s *simplex) dualFeasible(cost []float64) bool {
	m := s.m
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		cb := cost[s.basis[i]]
		if exactZero(cb) {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
	tol := math.Max(s.opt.Tol*1e3, 1e-6)
	for j := 0; j < s.n; j++ {
		if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
			continue
		}
		d := cost[j]
		for _, nz := range s.cols[j] {
			d -= y[nz.Index] * nz.Value
		}
		if s.atUp[j] {
			if d > tol {
				return false
			}
		} else if d < -tol {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis after
// bound changes, the branch-and-bound warm-start workhorse. It returns
// Optimal when the basis is primal feasible, Infeasible when no pivot can
// repair a violated basic variable, or IterLimit.
func (s *simplex) dualSimplex(cost []float64) Status {
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)
	ptol := s.opt.Tol * 1e3 // primal bound tolerance

	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit
		}
		if s.cancelled() {
			return Cancelled
		}

		// Leaving row: largest bound violation among basic variables.
		leave := -1
		worst := ptol
		var target float64 // bound the leaving variable snaps to
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.x[bi]; v > worst {
				worst, leave, target = v, i, s.lo[bi]
			}
			if v := s.x[bi] - s.up[bi]; v > worst {
				worst, leave, target = v, i, s.up[bi]
			}
		}
		if leave == -1 {
			return Optimal
		}
		s.iters++
		s.diters++

		// y = c_B^T B^-1 for reduced costs.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for i := 0; i < m; i++ {
			cb := cost[s.basis[i]]
			if exactZero(cb) {
				continue
			}
			row := s.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}
		binvRow := s.binv[leave*m : (leave+1)*m]
		below := s.x[s.basis[leave]] < target // violated below: value must rise

		// Entering column: dual ratio test.
		enter := -1
		bestRatio := math.Inf(1)
		var alphaQ float64
		for j := 0; j < s.n; j++ {
			if s.inRow[j] >= 0 || exactEqual(s.lo[j], s.up[j]) {
				continue
			}
			alpha := 0.0
			for _, nz := range s.cols[j] {
				alpha += binvRow[nz.Index] * nz.Value
			}
			if math.Abs(alpha) < 1e-9 {
				continue
			}
			// Admissible directions: see package docs. The leaving value
			// changes by -Δq·alpha; Δq ≥ 0 for atLower, ≤ 0 for atUpper.
			ok := false
			if !s.atUp[j] { // can increase: Δq ≥ 0 → change = -alpha·Δq
				ok = (below && alpha < 0) || (!below && alpha > 0)
			} else { // can decrease: Δq ≤ 0 → change = +alpha·|Δq|
				ok = (below && alpha > 0) || (!below && alpha < 0)
			}
			if !ok {
				continue
			}
			d := cost[j]
			for _, nz := range s.cols[j] {
				d -= y[nz.Index] * nz.Value
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio {
				bestRatio, enter, alphaQ = ratio, j, alpha
			}
		}
		if enter == -1 {
			return Infeasible // no pivot can repair the violation
		}

		// Pivot: move entering by Δq so the leaving variable hits target.
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		for _, nz := range s.cols[enter] {
			col := nz.Index
			v := nz.Value
			for i := 0; i < m; i++ {
				w[i] += s.binv[i*m+col] * v
			}
		}
		dq := (s.x[s.basis[leave]] - target) / alphaQ
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= dq * w[i]
		}
		newVal := s.x[enter] + dq

		out := s.basis[leave]
		s.inRow[out] = -1
		s.atUp[out] = exactEqual(target, s.up[out]) && !exactEqual(s.lo[out], s.up[out])
		s.x[out] = target
		s.basis[leave] = enter
		s.inRow[enter] = leave
		s.x[enter] = newVal
		s.updateInverse(leave, w)
		s.pivots++
		if s.pivots >= 300 {
			s.reinvert()
		}
	}
}

func (s *simplex) feasTol() float64 { return s.opt.Tol * float64(1+s.m) * 100 }

// cancelled polls the solve context every few iterations. The check runs
// once per simplex pivot, whose own cost (an O(m·n) pricing pass) dwarfs the
// atomic load inside ctx.Err, so polling every iteration keeps cancellation
// latency at a single pivot without measurable overhead.
func (s *simplex) cancelled() bool { return s.ctx.Err() != nil }

func (s *simplex) structX() []float64 {
	out := make([]float64, s.nStruct)
	copy(out, s.x[:s.nStruct])
	return out
}

// optimize runs primal simplex iterations minimizing cost over the first
// priceLimit columns (columns at or beyond priceLimit never enter). It
// returns Optimal, Unbounded, or IterLimit.
func (s *simplex) optimize(cost []float64, priceLimit int) Status {
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)

	// Bland's rule engages after a burst of degenerate pivots to guarantee
	// termination; Dantzig-style pricing is used otherwise for speed.
	degenerate := 0
	const blandAfter = 400

	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit
		}
		if s.cancelled() {
			return Cancelled
		}
		s.iters++

		// y = c_B^T · B^-1
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for i := 0; i < m; i++ {
			cb := cost[s.basis[i]]
			if exactZero(cb) {
				continue
			}
			row := s.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}

		// Price nonbasic columns.
		useBland := degenerate >= blandAfter
		enter := -1
		var enterDelta float64 // reduced cost of the entering column
		best := s.opt.Tol
		for j := 0; j < priceLimit; j++ {
			if s.inRow[j] >= 0 {
				continue
			}
			if exactEqual(s.lo[j], s.up[j]) {
				continue // fixed variable can never improve
			}
			d := cost[j]
			for _, nz := range s.cols[j] {
				d -= y[nz.Index] * nz.Value
			}
			var viol float64
			if s.atUp[j] {
				viol = d // want d > 0 to decrease from upper bound
			} else {
				viol = -d // want d < 0 to increase from lower bound
			}
			if viol > best {
				enter = j
				enterDelta = d
				if useBland {
					break
				}
				best = viol
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Direction of change for the entering variable.
		sigma := 1.0 // increasing from lower bound
		if s.atUp[enter] {
			sigma = -1.0
		}

		// w = B^-1 · a_enter
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		for _, nz := range s.cols[enter] {
			col := nz.Index
			v := nz.Value
			for i := 0; i < m; i++ {
				w[i] += s.binv[i*m+col] * v
			}
		}

		// Ratio test: basic variable i changes by -sigma·t·w[i].
		tMax := s.up[enter] - s.lo[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveToUpper := false
		piv := s.opt.Tol * 10
		for i := 0; i < m; i++ {
			step := -sigma * w[i]
			if step > piv { // basic value increases toward its upper bound
				bi := s.basis[i]
				if math.IsInf(s.up[bi], 1) {
					continue
				}
				t := (s.up[bi] - s.x[bi]) / step
				if t < tMax-s.opt.Tol || (t < tMax+s.opt.Tol && leave == -1) {
					tMax, leave, leaveToUpper = t, i, true
				}
			} else if step < -piv { // basic value decreases toward its lower bound
				bi := s.basis[i]
				t := (s.x[bi] - s.lo[bi]) / -step
				if t < tMax-s.opt.Tol || (t < tMax+s.opt.Tol && leave == -1) {
					tMax, leave, leaveToUpper = t, i, false
				}
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax <= s.opt.Tol {
			degenerate++
		} else {
			degenerate = 0
		}
		_ = enterDelta

		// Apply the step.
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			s.x[bi] -= sigma * tMax * w[i]
		}
		s.x[enter] += sigma * tMax

		if leave == -1 {
			// Bound flip: entering variable moved to its other bound.
			s.atUp[enter] = !s.atUp[enter]
			continue
		}

		// Pivot: replace basis[leave] with enter.
		out := s.basis[leave]
		s.inRow[out] = -1
		s.atUp[out] = leaveToUpper
		// Snap the leaving variable exactly onto its bound.
		if leaveToUpper {
			s.x[out] = s.up[out]
		} else {
			s.x[out] = s.lo[out]
		}
		s.basis[leave] = enter
		s.inRow[enter] = leave
		s.updateInverse(leave, w)
		s.pivots++
		if s.pivots >= 300 {
			s.reinvert()
		}
	}
}

// updateInverse applies a Gauss-Jordan elimination step so that binv remains
// the inverse of the basis matrix after column r of the basis was replaced by
// a column whose B^-1-transformed image is w.
func (s *simplex) updateInverse(r int, w []float64) {
	m := s.m
	pivot := w[r]
	if math.Abs(pivot) < 1e-12 {
		// Numerically hopeless pivot; rebuild from scratch.
		s.reinvert()
		return
	}
	inv := 1.0 / pivot
	rowR := s.binv[r*m : (r+1)*m]
	for k := 0; k < m; k++ {
		rowR[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if exactZero(f) {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			row[k] -= f * rowR[k]
		}
	}
}

// reinvert recomputes the dense basis inverse from scratch by Gauss-Jordan
// elimination with partial pivoting, then recomputes basic variable values
// from the nonbasic point. It bounds accumulated floating-point drift.
func (s *simplex) reinvert() {
	m := s.m
	// Build dense basis matrix.
	bm := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for _, nz := range s.cols[s.basis[i]] {
			bm[nz.Index*m+i] = nz.Value
		}
	}
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	// Gauss-Jordan with partial pivoting on bm, mirroring into inv.
	for col := 0; col < m; col++ {
		p := col
		maxAbs := math.Abs(bm[col*m+col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(bm[r*m+col]); a > maxAbs {
				maxAbs, p = a, r
			}
		}
		if maxAbs < 1e-12 {
			continue // singular direction; leave as-is (degenerate basis)
		}
		if p != col {
			swapRows(bm, m, p, col)
			swapRows(inv, m, p, col)
		}
		d := 1.0 / bm[col*m+col]
		for k := 0; k < m; k++ {
			bm[col*m+k] *= d
			inv[col*m+k] *= d
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := bm[r*m+col]
			if exactZero(f) {
				continue
			}
			for k := 0; k < m; k++ {
				bm[r*m+k] -= f * bm[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	s.binv = inv
	s.pivots = 0
	s.recomputeBasics()
}

// recomputeBasics sets x_B = B^-1 (b - N x_N) from the nonbasic point.
func (s *simplex) recomputeBasics() {
	m := s.m
	resid := append([]float64(nil), s.b...)
	for j := 0; j < s.n; j++ {
		if s.inRow[j] >= 0 || exactZero(s.x[j]) {
			continue
		}
		for _, nz := range s.cols[j] {
			resid[nz.Index] -= nz.Value * s.x[j]
		}
	}
	for i := 0; i < m; i++ {
		v := 0.0
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			v += row[k] * resid[k]
		}
		s.x[s.basis[i]] = v
	}
}

func swapRows(a []float64, m, i, j int) {
	ri := a[i*m : (i+1)*m]
	rj := a[j*m : (j+1)*m]
	for k := 0; k < m; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
