// Package lp implements a linear-programming solver based on the revised
// simplex method with bounded variables.
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  A·x {≤,=,≥} b
//	            lo ≤ x ≤ up
//
// Inequality rows are converted to equalities internally by adding slack
// variables. Feasibility is established with a phase-1 solve over artificial
// variables, after which the true objective is minimized in phase 2. The
// basis is held as a sparse LU factorization with Markowitz ordering plus a
// product-form eta file: pivots append eta updates, and the factors are
// rebuilt from scratch on a deterministic cadence (eta count or fill growth,
// never wall-clock) to bound numerical drift and eta-file bloat. FTRAN and
// BTRAN solves run over the stored sparse columns and factors only, so both
// the per-iteration cost and the retained memory scale with the problem's
// nonzeros rather than with m² — the property that makes the
// transportation-like LPs RAS produces after symmetry reduction (hundreds to
// a few thousand rows, a handful of nonzeros per column) cheap to re-solve.
//
// All solver state — sparse columns, the slack/artificial layout, the basis
// factorization, and every pricing and ratio-test scratch vector — lives in
// a reusable Workspace so that repeated solves of the same Problem shape
// (the branch-and-bound node-LP loop, the round-after-round re-solves of the
// RAS async solver) run allocation-free in steady state. Problem.Solve keeps
// its historical signature by caching a workspace inside the Problem;
// callers that own the solve loop use SolveWith with an explicit workspace
// and Options.ReuseBasis to also skip basis export/import copies.
//
// lp is the substrate for package mip, which layers branch-and-bound on top
// to solve the mixed-integer programs formulated by the RAS async solver.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"ras/internal/metrics"
)

// Sense describes the relation of a constraint row to its right-hand side.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // ≤
	EQ              // =
	GE              // ≥
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int8(s))
}

// Inf is the bound value representing "unbounded". Use +Inf for no upper
// bound. Lower bounds must be finite; shift variables if necessary.
var Inf = math.Inf(1)

// Nonzero is a single coefficient of a sparse constraint row or column.
type Nonzero struct {
	Index int     // variable index within the problem
	Value float64 // coefficient
}

// Problem is a linear program under construction. The zero value is an empty
// problem ready for use.
type Problem struct {
	cost []float64 // objective coefficients, one per variable
	lo   []float64 // lower bounds (finite)
	up   []float64 // upper bounds (may be +Inf)

	rows   [][]Nonzero // sparse constraint rows
	senses []Sense
	rhs    []float64

	// ws caches the workspace used by Solve so repeated Solve calls on the
	// same problem reuse structure and scratch. Taken with an atomic swap so
	// concurrent Solve calls on one Problem each get a private workspace
	// (the loser of the race simply builds a fresh one).
	ws atomic.Pointer[Workspace]
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar appends a variable with the given objective cost and bounds and
// returns its index. The lower bound must be finite and not exceed the upper
// bound; the upper bound may be lp.Inf.
func (p *Problem) AddVar(cost, lo, up float64) int {
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		panic(fmt.Sprintf("lp: non-finite lower bound %v", lo))
	}
	if up < lo {
		panic(fmt.Sprintf("lp: upper bound %v below lower bound %v", up, lo))
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	return len(p.cost) - 1
}

// SetBounds replaces the bounds of variable j. It is used by branch-and-bound
// to tighten bounds between solves of the same problem.
func (p *Problem) SetBounds(j int, lo, up float64) {
	if j < 0 || j >= len(p.cost) {
		panic(fmt.Sprintf("lp: SetBounds on unknown variable %d", j))
	}
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		panic(fmt.Sprintf("lp: non-finite lower bound %v", lo))
	}
	if up < lo {
		panic(fmt.Sprintf("lp: upper bound %v below lower bound %v", up, lo))
	}
	p.lo[j] = lo
	p.up[j] = up
}

// Bounds reports the current bounds of variable j.
func (p *Problem) Bounds(j int) (lo, up float64) { return p.lo[j], p.up[j] }

// SetRHS replaces the right-hand side of row i in place — the model-patching
// path of the RAS incremental build, where a resized demand changes C_r
// without touching any row coefficients. Like SetBounds it may be called
// between solves of the same problem: workspaces re-copy the RHS on entry,
// and a retained basis is repaired by the dual simplex instead of being
// discarded.
func (p *Problem) SetRHS(i int, rhs float64) {
	if i < 0 || i >= len(p.rows) {
		panic(fmt.Sprintf("lp: SetRHS on unknown row %d", i))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: non-finite rhs %v", rhs))
	}
	p.rhs[i] = rhs
}

// RHS reports the current right-hand side of row i.
func (p *Problem) RHS(i int) float64 { return p.rhs[i] }

// Clone returns a copy of the problem whose bounds (and costs) can be
// mutated independently of the original — the per-worker scratch state of a
// parallel branch-and-bound search, where every worker tightens bounds on
// its own copy between node LPs. The sparse row payloads are shared with the
// original: rows are append-only and never mutated in place by Solve or
// SetBounds, so sharing them is safe as long as no rows or variables are
// added to either copy while clones are in use.
func (p *Problem) Clone() *Problem {
	return &Problem{
		cost:   append([]float64(nil), p.cost...),
		lo:     append([]float64(nil), p.lo...),
		up:     append([]float64(nil), p.up...),
		rows:   append([][]Nonzero(nil), p.rows...),
		senses: append([]Sense(nil), p.senses...),
		rhs:    append([]float64(nil), p.rhs...),
	}
}

// exactZero reports whether v is exactly zero. The solver's sparsity
// convention stores absent entries as exact zeros (assigned, never the
// residue of arithmetic), so identity — not closeness — is the intended
// test; a tolerance here would misclassify genuinely tiny values. This is a
// raslint floatcmp designated helper: the one place the convention lives.
func exactZero(v float64) bool { return v == 0 }

// exactEqual reports whether a and b are exactly equal. For values copied
// from the same store (variable bounds, pivot targets), where the question
// is "is this that same stored value", not numerical closeness. A raslint
// floatcmp designated helper.
func exactEqual(a, b float64) bool { return a == b }

// AddRow appends a constraint row Σ coeffs·x sense rhs and returns its index.
// Coefficients must reference variables that already exist. Duplicate indices
// within one row are summed.
func (p *Problem) AddRow(coeffs []Nonzero, sense Sense, rhs float64) int {
	row := make([]Nonzero, 0, len(coeffs))
	seen := make(map[int]int, len(coeffs))
	for _, nz := range coeffs {
		if nz.Index < 0 || nz.Index >= len(p.cost) {
			panic(fmt.Sprintf("lp: row references unknown variable %d", nz.Index))
		}
		if exactZero(nz.Value) {
			continue
		}
		if at, ok := seen[nz.Index]; ok {
			row[at].Value += nz.Value
			continue
		}
		seen[nz.Index] = len(row)
		row = append(row, nz)
	}
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal solution was found
	Infeasible               // no point satisfies all constraints and bounds
	Unbounded                // the objective decreases without bound
	IterLimit                // the iteration limit was hit before convergence
	Cancelled                // the context was cancelled mid-solve
	Singular                 // the basis became numerically singular and repair failed
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Cancelled:
		return "cancelled"
	case Singular:
		return "singular-basis"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status     Status
	Objective  float64   // objective value at X (valid when Status == Optimal)
	X          []float64 // one value per problem variable
	Iterations int       // total simplex iterations across both phases
	DualIters  int       // dual-simplex repair iterations (warm starts)
	// WarmStarted reports whether the solution was produced by a warm path
	// (basis import or workspace basis reuse) rather than a cold two-phase
	// solve.
	WarmStarted bool
	// Basis is an opaque snapshot of the optimal basis, usable as
	// Options.Start on a later solve of the SAME problem (same rows and
	// variables; bounds may differ). Populated only when Options.ExportBasis
	// is set (Problem.Solve sets it) and an exportable basis exists.
	Basis *Basis
}

// Basis is an opaque simplex basis snapshot for warm starts. It carries only
// the basis index set — which column is basic in each row, and which
// nonbasic variables sit at their upper bound — so a snapshot is O(m + n) of
// memory and cheap to persist across rounds. A warm import re-factorizes the
// basis sparsely (O(nnz + fill), not O(m³)), which for the transportation-
// structured bases RAS produces is a small fraction of even one pricing
// pass.
type Basis struct {
	cols []int
	atUp []bool
}

// Options tunes the solver.
type Options struct {
	// MaxIter bounds the total number of simplex iterations across both
	// phases. Zero means a default proportional to the problem size.
	MaxIter int
	// Tol is the feasibility/optimality tolerance. Zero means 1e-9.
	Tol float64
	// Start warm-starts the solve from a basis exported by a previous
	// Solution of the same problem. After bound changes (the
	// branch-and-bound case) primal feasibility is restored with dual
	// simplex iterations, which is typically orders of magnitude cheaper
	// than solving from scratch. Invalid or unusable bases fall back to a
	// cold start silently. When the workspace already holds a reusable
	// basis and ReuseBasis is set, the retained state wins and Start is
	// ignored.
	Start *Basis
	// ReuseBasis warm-starts from the good basis retained inside the
	// workspace — the most recent optimal, artificial-free basis of a solve
	// of the same problem shape — with no export/import allocations at all:
	// the branch-and-bound node-LP fast path. Falls back to Start (if any)
	// and then to a cold start when the workspace holds no usable state.
	ReuseBasis bool
	// ExportBasis requests a Basis snapshot on the returned Solution (an
	// O(m + n) copy of the basis index set). Problem.Solve sets it for
	// compatibility; workspace-reusing callers leave it off except when
	// they actually persist the basis (root LPs, cross-round warm starts).
	ExportBasis bool
	// DevexAfter sets how many iterations a single primal pass runs under
	// Dantzig pricing before escalating to Devex with partial pricing.
	// Zero means a default tuned so the short warm re-solves that dominate
	// branch-and-bound never escalate; negative engages Devex from the
	// first iteration (testing and very large cold solves).
	DevexAfter int
	// RefactorEvery sets how many eta updates accumulate before the basis
	// factorization is rebuilt from scratch. Rebuilds can also trigger
	// earlier when eta-file fill outgrows the factors; both triggers are
	// deterministic counts, never wall-clock. Zero means the default (32);
	// negative refactorizes after every pivot (testing).
	RefactorEvery int
}

// devexAfter resolves the staged-pricing escalation point.
func (o *Options) devexAfter() int {
	switch {
	case o.DevexAfter < 0:
		return 0
	case o.DevexAfter == 0:
		return defaultDevexAfter
	default:
		return o.DevexAfter
	}
}

// refactorEvery resolves the eta-count refactorization cadence.
func (o *Options) refactorEvery() int {
	switch {
	case o.RefactorEvery < 0:
		return 1
	case o.RefactorEvery == 0:
		return defaultRefactorEvery
	default:
		return o.RefactorEvery
	}
}

// ErrMalformed reports a structurally invalid problem.
var ErrMalformed = errors.New("lp: malformed problem")

// Solve minimizes the problem's objective and returns the solution. The
// problem itself is not modified and may be solved repeatedly, including
// after further rows or variables are added.
//
// Cancelling ctx aborts the simplex iteration loops promptly; the returned
// Solution then has Status Cancelled and carries whatever (possibly
// infeasible) point the solver held when it stopped.
//
// Solve reuses an internal workspace across calls on the same Problem, so
// repeated solves allocate little beyond the returned Solution. For explicit
// workspace control (branch-and-bound, cross-round re-solves) use SolveWith.
func (p *Problem) Solve(ctx context.Context, opt Options) Solution {
	opt.ExportBasis = true // historical contract: Solve exports on Optimal
	ws := p.ws.Swap(nil)
	if ws == nil {
		ws = NewWorkspace()
	}
	sol := p.SolveWith(ctx, opt, ws)
	p.ws.Store(ws)
	return sol
}

// SolveWith is Solve with an explicit workspace. The workspace retains the
// problem's simplex structure and all scratch buffers between calls, so a
// steady-state re-solve performs no allocation beyond the Solution's X
// vector. A workspace must not be used by more than one goroutine at a time,
// and is retargeted automatically when given a different problem or shape.
func (p *Problem) SolveWith(ctx context.Context, opt Options, ws *Workspace) Solution {
	if ws == nil {
		ws = NewWorkspace()
	}
	if exactZero(opt.Tol) {
		opt.Tol = 1e-9
	}
	if ctx == nil {
		ctx = context.Background() //raslint:allow ctxflow nil ctx defaults to Background at the public API boundary
	}
	sol := ws.solve(ctx, p, opt)
	metrics.LP.Solves.Add(1)
	metrics.LP.Iterations.Add(int64(sol.Iterations))
	metrics.LP.DualIterations.Add(int64(sol.DualIters))
	return sol
}
