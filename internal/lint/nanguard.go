package lint

// nanguard: a float division, math.Sqrt, or math.Log in the solve stack
// must have its denominator/argument proven safe on every path to the
// operation. One NaN out of an unguarded Devex ratio poisons pivot
// selection silently — the score comparison that follows is false for
// every NaN, so the bug presents as "solver picks worse pivots at scale",
// not as a crash.
//
// Proof obligations, discharged by the value-dataflow layer (ssa.go,
// interval.go, valuefacts.go):
//
//   - x / d, x /= d (float): d proven nonzero;
//   - math.Sqrt(a): a proven nonnegative;
//   - math.Log(a): a proven positive.
//
// Guards must flow through the recognized seam: the designated
// exact-compare helpers (exactZero/isZero/exactEqual/approxEq — the same
// allowlist floatcmp enforces), math.Abs threshold comparisons
// (math.Abs(d) < eps → return/continue), sign comparisons against
// constants, nonzero literals and constants, products of proven factors,
// max/min of proven arguments, and callees whose return-fact summary
// proves every return. A raw `d != 0` comparison is deliberately NOT
// recognized: it is itself a floatcmp finding, and routing the guard
// through a helper is the fix for both rules at once.
//
// Documented false negatives: guards carried through struct fields, map
// values, or captured variables (only address-free locals and parameters
// are SSA-tracked), and correlated guards (`if enter >= 0 { ... alpha is
// nonzero because enter was set }`) — those carry a reasoned
// //raslint:allow nanguard directive instead.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func (c *Config) nanguardScope() []string {
	if c.NanguardScope != nil {
		return c.NanguardScope
	}
	return defaultSolveScope
}

func runNanguard(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	scope := cfg.nanguardScope()
	va := mf.valueAnalysisFor(cfg)
	helpers := cfg.floatcmpHelpers()
	for _, fn := range mf.order {
		node := mf.graph.nodes[fn]
		if node == nil || !inScope(scope, node.pkg.Path) {
			continue
		}
		if helpers[fn.Name()] {
			// The designated exact-compare helpers are the guard seam
			// itself; their own bodies are out of scope (mirrors floatcmp).
			continue
		}
		f := va.ssaOf(fn)
		if f == nil {
			continue
		}
		ev := va.evaluatorFor(fn)
		checkNanguardFunc(node.pkg, f, ev, report)
	}
}

func checkNanguardFunc(pkg *Package, f *ssaFunc, ev *evaluator, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	for _, b := range f.rpo {
		for _, st := range b.stmts {
			// Op-assign division: x /= d.
			if as, ok := st.(*ast.AssignStmt); ok && as.Tok == token.QUO_ASSIGN {
				if tv, ok := info.Types[as.Lhs[0]]; ok && tv.Type != nil && isFloat(tv.Type) {
					if !ev.provenNonzero(as.Rhs[0], b, 0) {
						report(pkg, as.Rhs[0].Pos(),
							"float division by %s: denominator is not proven nonzero on every path; guard through %s or a math.Abs threshold",
							types.ExprString(as.Rhs[0]), guardHint())
					}
				}
			}
			for _, e := range shallowExprs(st) {
				checkNanguardExpr(pkg, e, b, ev, report)
			}
		}
	}
}

func checkNanguardExpr(pkg *Package, root ast.Expr, b *cfgBlock, ev *evaluator, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	if root == nil {
		return
	}
	info := pkg.Info
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op != token.QUO {
				return true
			}
			tv, ok := info.Types[x]
			if !ok || tv.Type == nil || !isFloat(tv.Type) {
				return true
			}
			if tv.Value != nil {
				return true // constant-folded: the checker already proved it
			}
			if !ev.provenNonzero(x.Y, b, 0) {
				report(pkg, x.Y.Pos(),
					"float division by %s: denominator is not proven nonzero on every path; guard through %s or a math.Abs threshold",
					types.ExprString(x.Y), guardHint())
			}
		case *ast.CallExpr:
			name, arg := mathUnaryCall(info, x)
			switch name {
			case "Sqrt":
				if !ev.provenNonNeg(arg, b, 0) {
					report(pkg, arg.Pos(),
						"math.Sqrt of %s: argument is not proven nonnegative on every path; a negative argument yields NaN",
						types.ExprString(arg))
				}
			case "Log":
				if !ev.provenPositive(arg, b, 0) {
					report(pkg, arg.Pos(),
						"math.Log of %s: argument is not proven positive on every path; zero yields -Inf and negative yields NaN",
						types.ExprString(arg))
				}
			}
		}
		return true
	})
}

// guardHint names the designated guard helpers in diagnostics.
func guardHint() string {
	return "a designated exact-compare helper (exactZero/isZero)"
}
