package lint

// globalwrite: nothing reachable from a Solve entry point may write
// package-level state. RAS's round-to-round reproducibility (SOSP '21 §5)
// requires a solve to be a pure function of its inputs plus the explicit
// warm-start state threaded through SolveWith; a package-level variable
// mutated anywhere under a solve entry point is hidden cross-round,
// cross-goroutine state — exactly what made the historical parallel-engine
// regression possible. The rule walks the call graph breadth-first from the
// Solve seams (Config.GlobalwriteEntries, defaulting to the same entry
// points calldeterminism uses) and reports every function on the way whose
// write-effect summary (summary.go) records a store to a module
// package-level variable — direct, or induced by handing the global to a
// mutating callee.
//
// The sanctioned seam: writes to globals declared in ras/internal/metrics
// are exempt. The metrics counters are atomic by construction
// (atomic.Int64 behind Counter/Gauge methods) and exist precisely to be the
// one place solve paths may record state; re-flagging each Add would force
// a blanket allow and teach readers to ignore the rule.
//
// Like the summary engine, calls through function values are invisible here
// (the documented call-graph false negative), and so are writes performed
// by unloaded packages.

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// metricsSeamPath is the one package whose globals solve paths may write.
const metricsSeamPath = "ras/internal/metrics"

func (c *Config) globalwriteEntries() []string {
	if c.GlobalwriteEntries != nil {
		return c.GlobalwriteEntries
	}
	return defaultSolveEntryPoints
}

func runGlobalwrite(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	g := mf.graph

	type queued struct {
		node  *cgNode
		trail []string
	}
	var queue []queued
	seen := map[*cgNode]bool{}
	for _, pattern := range cfg.globalwriteEntries() {
		spec, err := parseEntrySpec(pattern)
		if err != nil {
			continue // validated by the driver; unreachable under raslint
		}
		for _, fn := range g.resolveEntry(pkgs, spec) {
			if node, ok := g.nodes[fn]; ok && !seen[node] {
				seen[node] = true
				queue = append(queue, queued{node, []string{funcDisplayName(fn)}})
			}
		}
	}

	// One finding per (function, global): the write is reported where it
	// happens, with the shortest entry-point path for context (the walk is
	// breadth-first, so the first visit carries the shortest trail).
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if sum := mf.summaryOf(q.node.fn); sum != nil {
			for _, gv := range sortedGlobalWrites(sum) {
				v := gv.v
				if v.Pkg() != nil && v.Pkg().Path() == metricsSeamPath {
					continue // the sanctioned metrics seam
				}
				via := ""
				if gv.fact.via != "" {
					via = " via " + gv.fact.via
				}
				report(q.node.pkg, gv.fact.pos,
					"solve path %s writes package-level %s.%s%s; solver state must flow through parameters and results",
					strings.Join(q.trail, " → "), v.Pkg().Name(), v.Name(), via)
			}
		}
		for _, call := range sortedCalls(q.node) {
			callee := call.callee
			var targets []*cgNodeRef
			if isInterfaceMethod(callee) {
				for _, impl := range g.implementations(callee) {
					if node, ok := g.nodes[impl]; ok {
						targets = append(targets, &cgNodeRef{node, funcDisplayName(impl)})
					}
				}
			} else if node, ok := g.nodes[callee]; ok {
				targets = append(targets, &cgNodeRef{node, funcDisplayName(callee)})
			}
			for _, t := range targets {
				if seen[t.node] {
					continue
				}
				seen[t.node] = true
				trail := append(append([]string(nil), q.trail...), t.display)
				queue = append(queue, queued{t.node, trail})
			}
		}
	}
}

// sortedGlobalWrite pairs a written global with its first recorded write,
// in deterministic (position, name) order.
type sortedGlobalWrite struct {
	v    *types.Var
	fact globalWriteFact
}

func sortedGlobalWrites(sum *effectSummary) []sortedGlobalWrite {
	out := make([]sortedGlobalWrite, 0, len(sum.globals))
	for v, fact := range sum.globals {
		out = append(out, sortedGlobalWrite{v: v, fact: fact})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fact.pos != out[j].fact.pos {
			return out[i].fact.pos < out[j].fact.pos
		}
		return out[i].v.Name() < out[j].v.Name()
	})
	return out
}
