package lint

// mapiter: Go randomizes map iteration order on purpose, so a loop that
// ranges over a map and accumulates results into state that outlives the
// loop — appending to a slice declared outside it, or sending into a
// channel — produces a different order every run. In the solver packages
// (Config.MapiterScope) that is a determinism bug unless the accumulated
// result is canonicalized by a sort after the loop: the classic pattern
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)
//
// is fine; the same loop without the sort leaks map order into solve
// results. Sends into channels cannot be repaired after the fact and are
// always flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func runMapiter(cfg *Config, pkg *Package, report reportFunc) {
	if !inScope(cfg.mapiterScope(), pkg.Path) {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pkg, fd.Body, report)
		}
	}
}

func checkMapRanges(pkg *Package, body *ast.BlockStmt, report reportFunc) {
	info := pkg.Info
	// ancestors[n] is the chain of nodes from body down to n's parent.
	var stack []ast.Node
	parents := map[ast.Node][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		parents[n] = append([]ast.Node(nil), stack...)
		stack = append(stack, n)
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}

		reported := map[types.Object]bool{}
		ast.Inspect(rs.Body, func(inner ast.Node) bool {
			switch st := inner.(type) {
			case *ast.SendStmt:
				report(st.Pos(), "send into a channel while ranging over a map publishes values in nondeterministic order")
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(info, call) || i >= len(st.Lhs) {
						continue
					}
					target := st.Lhs[i]
					obj := rootObject(info, target)
					if obj != nil {
						if reported[obj] {
							continue
						}
						// Only targets that outlive the loop leak map order.
						if withinRange(obj.Pos(), rs) {
							continue
						}
					}
					if sortFollows(info, parents, rs, obj) {
						continue
					}
					if obj != nil {
						reported[obj] = true
						report(st.Pos(), "append to %q while ranging over a map leaks nondeterministic order; sort it after the loop", obj.Name())
					} else {
						report(st.Pos(), "append while ranging over a map leaks nondeterministic order; sort the result after the loop")
					}
				}
			}
			return true
		})
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// rootObject resolves the variable at the root of an assignable expression
// (x, x.f, x[i] all resolve to x). Nil when the root is not a plain
// identifier.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// withinRange reports whether pos falls inside the range statement.
func withinRange(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// sortFollows reports whether a sort call mentioning obj appears after the
// range statement, searching each enclosing block's trailing statements from
// the innermost outward (so `for ... {}` inside an if still sees a sort
// after the if).
func sortFollows(info *types.Info, parents map[ast.Node][]ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	chain := append(append([]ast.Node(nil), parents[rs]...), rs)
	for depth := len(chain) - 2; depth >= 0; depth-- {
		block, ok := chain[depth].(*ast.BlockStmt)
		if !ok {
			continue
		}
		child := chain[depth+1]
		idx := -1
		for i, st := range block.List {
			if st == child {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		for _, st := range block.List[idx+1:] {
			if containsSortOf(info, st, obj) {
				return true
			}
		}
	}
	return false
}

// containsSortOf reports whether the subtree under n contains a sorting call
// that mentions obj (any sorting call when obj is nil).
func containsSortOf(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || !isSortCall(info, call) {
			return true
		}
		if obj == nil {
			found = true
			return false
		}
		ast.Inspect(call, func(a ast.Node) bool {
			if id, ok := a.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
				return false
			}
			return !found
		})
		return !found
	})
	return found
}

// isSortCall reports whether call invokes something that sorts: any function
// of package sort or slices, or any function whose name mentions sorting.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if obj := funcObjOf(info, call.Fun); obj != nil {
		if pkg := obj.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			return true
		}
		name := obj.Name()
		return name == "Sort" || len(name) > 4 && (name[:4] == "sort" || name[:4] == "Sort")
	}
	return false
}
