package lint

// SSA-lite value dataflow over the per-function CFG (cfg.go). The
// flow-sensitive rules reason about *control*; the value rules (nanguard,
// deadstore, boundsproof) need to reason about *which assignment a use
// sees* — a guard proved on one version of a variable says nothing about a
// later redefinition. This file renames every tracked local and parameter
// into versioned values with phi nodes at join blocks, giving the interval
// and guard analyses (interval.go) a sound def-use substrate.
//
// "Lite" is a set of deliberate restrictions, documented in DESIGN.md
// ("Value dataflow (SSA-lite)"):
//
//   - Tracked variables are locals and parameters whose underlying type is
//     a basic type or a slice, whose address is never taken, that are not
//     referenced by any function literal, and that are not type-switch
//     bindings. Everything else — struct locals, captured variables,
//     pointees — is opaque: uses of untracked variables resolve to no
//     value, and the rules fall back to pessimism.
//   - A slice variable's *header* is versioned (x = append(x, v) defines a
//     new value); element stores x[i] = v do not, mirroring Go semantics.
//     Element stores are recorded as uses of kind useElemStore so deadstore
//     can tell "wrote into the buffer" from "read the buffer".
//   - Statements are walked shallowly, exactly as the CFG stores them: a
//     compound statement contributes only the expressions that evaluate in
//     its head block (if/for conditions, switch tags, the ranged operand);
//     nested bodies are renamed in their own blocks.
//
// Construction is the textbook minimal-SSA pipeline: reachable blocks in
// reverse postorder, Cooper–Harvey–Kennedy dominators, dominance frontiers,
// phi insertion at the iterated frontier of each variable's definition
// blocks, then a renaming walk over the dominator tree.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ssaKind classifies how an ssaValue came to be.
type ssaKind uint8

const (
	ssaParam ssaKind = iota // parameter, receiver, or named result at entry
	ssaZero                 // var declaration without initializer (zero value)
	ssaDef                  // assignment or := definition
	ssaRange                // range key/value binding at a loop head
	ssaPhi                  // join of versions at a merge block
)

// ssaValue is one version of one tracked variable.
type ssaValue struct {
	id    int
	obj   *types.Var
	kind  ssaKind
	block *cfgBlock
	pos   token.Pos
	stmt  ast.Stmt // defining statement (nil for params and phis)
	lhs   *ast.Ident

	// rhs is the defining expression for a 1:1 ssaDef (x = e, x := e);
	// nil for tuple assignments, op-assigns, and every other kind.
	rhs ast.Expr
	// tuple marks a def from a multi-value RHS (x, y := f()).
	tuple bool

	// Op-assign defs (x += e, x++) read the previous version: prev is the
	// incoming value, opTok the arithmetic token (ADD for ++, SUB for --),
	// opRhs the RHS operand (nil for ++/--).
	opTok token.Token
	prev  *ssaValue
	opRhs ast.Expr

	// Range defs: rangeX is the ssa value of the ranged operand when it is
	// a tracked slice variable (nil otherwise); rangeIsKey distinguishes the
	// index from the element; rangeSliceLike reports whether the ranged
	// operand's type gives the key [0, len) index semantics (slice, array,
	// pointer-to-array, or string).
	rangeX         *ssaValue
	rangeIsKey     bool
	rangeSliceLike bool

	// phiArgs is parallel to the block's predecessor list; entries may be
	// nil when a predecessor path carries no definition (use before def on
	// a path invalid Go rules out, or an unreachable edge).
	phiArgs []*ssaValue

	// realUses counts expression uses (reads); phiUses counts references as
	// a phi operand. Deadstore computes transitive liveness from realUses.
	realUses int
	phiUses  []*ssaValue
}

// useKind classifies one identifier use site.
type useKind uint8

const (
	useRead      useKind = iota // ordinary read
	useElemStore                // base of an element-store LHS (buf[i] = v)
)

// ssaFunc is the SSA form of one function body.
type ssaFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	cfg  *funcCFG

	reach    map[*cfgBlock]bool
	rpo      []*cfgBlock
	preds    map[*cfgBlock][]*cfgBlock
	idom     map[*cfgBlock]*cfgBlock
	children map[*cfgBlock][]*cfgBlock
	// domPre/domPost are dominator-tree DFS numbers for O(1) dominance.
	domPre, domPost map[*cfgBlock]int

	tracked      map[*types.Var]bool
	namedResults map[*types.Var]bool
	entryVals    map[*types.Var]*ssaValue

	values []*ssaValue
	phis   map[*cfgBlock][]*ssaValue

	// useOf resolves a use identifier to the version it reads; kindOf
	// carries the use classification; useStmt the recorded statement the
	// use evaluates under.
	useOf   map[*ast.Ident]*ssaValue
	kindOf  map[*ast.Ident]useKind
	useStmt map[*ast.Ident]ast.Stmt

	// rangeBind maps a range loop's head block to its RangeStmt, and
	// rangeXVal the RangeStmt to the version of its (tracked) operand.
	rangeBind map[*cfgBlock]*ast.RangeStmt
	rangeXVal map[*ast.RangeStmt]*ssaValue

	// returns lists the reachable return statements with their blocks, for
	// the interprocedural return-fact summaries.
	returns []returnSite

	// resultVars lists the signature's result variables in order (nil for
	// unnamed results), so bare returns can resolve to reaching versions.
	resultVars []*types.Var

	// stmtBlock/stmtIndex locate each recorded statement in its block, for
	// rules that need "the block this expression evaluates in" and
	// within-block ordering.
	stmtBlock map[ast.Stmt]*cfgBlock
	stmtIndex map[ast.Stmt]int

	// inLoop marks blocks that lie on a CFG cycle (reachable from one of
	// their own successors) — the hot-loop scope boundsproof reports in.
	inLoop map[*cfgBlock]bool
}

type returnSite struct {
	stmt  *ast.ReturnStmt
	block *cfgBlock
	// named snapshots the reaching version of each named result at a bare
	// return, parallel to resultVars; nil entries are untracked.
	named []*ssaValue
}

// dominates reports whether a dominates b (reflexively).
func (f *ssaFunc) dominates(a, b *cfgBlock) bool {
	return f.domPre[a] <= f.domPre[b] && f.domPost[b] <= f.domPost[a]
}

// buildSSA lowers decl's body to SSA-lite form. It returns nil for bodies
// the CFG cannot represent usefully (nil body).
func buildSSA(pkg *Package, decl *ast.FuncDecl) *ssaFunc {
	if decl.Body == nil {
		return nil
	}
	f := &ssaFunc{
		pkg:          pkg,
		decl:         decl,
		cfg:          buildCFG(decl.Body, typesPanicResolver{pkg.Info}),
		tracked:      map[*types.Var]bool{},
		namedResults: map[*types.Var]bool{},
		entryVals:    map[*types.Var]*ssaValue{},
		phis:         map[*cfgBlock][]*ssaValue{},
		useOf:        map[*ast.Ident]*ssaValue{},
		kindOf:       map[*ast.Ident]useKind{},
		useStmt:      map[*ast.Ident]ast.Stmt{},
		rangeBind:    map[*cfgBlock]*ast.RangeStmt{},
		rangeXVal:    map[*ast.RangeStmt]*ssaValue{},
	}
	f.computeOrder()
	f.computeDominators()
	f.collectTracked()
	f.indexRangeHeads()
	f.indexStmts()
	f.placePhis()
	f.rename()
	return f
}

// indexStmts records each statement's block and in-block position, and marks
// the blocks that lie on a cycle.
func (f *ssaFunc) indexStmts() {
	f.stmtBlock = map[ast.Stmt]*cfgBlock{}
	f.stmtIndex = map[ast.Stmt]int{}
	for _, b := range f.rpo {
		for i, st := range b.stmts {
			f.stmtBlock[st] = b
			f.stmtIndex[st] = i
		}
	}
	f.inLoop = map[*cfgBlock]bool{}
	for _, b := range f.rpo {
		seen := map[*cfgBlock]bool{}
		work := append([]*cfgBlock(nil), b.succs...)
		for len(work) > 0 {
			n := work[0]
			work = work[1:]
			if seen[n] || !f.reach[n] {
				continue
			}
			seen[n] = true
			if n == b {
				f.inLoop[b] = true
				break
			}
			work = append(work, n.succs...)
		}
	}
}

// computeOrder floods reachability from entry and records a reverse
// postorder over the reachable subgraph, plus predecessor lists.
func (f *ssaFunc) computeOrder() {
	f.reach = map[*cfgBlock]bool{}
	var post []*cfgBlock
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		f.reach[b] = true
		for _, s := range b.succs {
			if !f.reach[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.cfg.entry)
	f.rpo = make([]*cfgBlock, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		f.rpo = append(f.rpo, post[i])
	}
	f.preds = map[*cfgBlock][]*cfgBlock{}
	for _, b := range f.rpo {
		for _, s := range b.succs {
			if f.reach[s] {
				f.preds[s] = append(f.preds[s], b)
			}
		}
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm over
// the reverse postorder, then numbers the dominator tree for O(1) queries.
func (f *ssaFunc) computeDominators() {
	order := map[*cfgBlock]int{}
	for i, b := range f.rpo {
		order[b] = i
	}
	idom := map[*cfgBlock]*cfgBlock{f.cfg.entry: f.cfg.entry}
	intersect := func(a, b *cfgBlock) *cfgBlock {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.rpo {
			if b == f.cfg.entry {
				continue
			}
			var newIdom *cfgBlock
			for _, p := range f.preds[b] {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	f.idom = idom
	f.children = map[*cfgBlock][]*cfgBlock{}
	for _, b := range f.rpo {
		if b == f.cfg.entry {
			continue
		}
		if p := idom[b]; p != nil {
			f.children[p] = append(f.children[p], b)
		}
	}
	for _, kids := range f.children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].index < kids[j].index })
	}
	f.domPre = map[*cfgBlock]int{}
	f.domPost = map[*cfgBlock]int{}
	n := 0
	var number func(b *cfgBlock)
	number = func(b *cfgBlock) {
		n++
		f.domPre[b] = n
		for _, c := range f.children[b] {
			number(c)
		}
		n++
		f.domPost[b] = n
	}
	number(f.cfg.entry)
}

// collectTracked decides which variables participate in SSA renaming.
func (f *ssaFunc) collectTracked() {
	info := f.pkg.Info
	// Candidate set: parameters, receiver, named results, and body locals.
	candidate := map[*types.Var]bool{}
	sig, _ := info.Defs[f.decl.Name].(*types.Func)
	if sig != nil {
		if s, ok := sig.Type().(*types.Signature); ok {
			if r := s.Recv(); r != nil {
				candidate[r] = true
			}
			for i := 0; i < s.Params().Len(); i++ {
				candidate[s.Params().At(i)] = true
			}
			for i := 0; i < s.Results().Len(); i++ {
				rv := s.Results().At(i)
				if rv.Name() != "" && rv.Name() != "_" {
					candidate[rv] = true
					f.namedResults[rv] = true
					f.resultVars = append(f.resultVars, rv)
				} else {
					f.resultVars = append(f.resultVars, nil)
				}
			}
		}
	}
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				candidate[v] = true
			}
		}
		return true
	})

	disqualified := map[*types.Var]bool{}
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := info.ObjectOf(id).(*types.Var)
		return v
	}
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				walk(x.Body, true)
				if x.Type != nil {
					walk(x.Type, true)
				}
				return false
			case *ast.UnaryExpr:
				// &x pins the variable to memory; all bets are off.
				if x.Op == token.AND {
					if v := varOf(x.X); v != nil {
						disqualified[v] = true
					}
				}
			case *ast.SelectorExpr:
				// A method selection on the variable may take its address
				// implicitly (pointer-receiver methods on addressable
				// operands).
				if v := varOf(x.X); v != nil {
					if sel, ok := info.Selections[x]; ok && sel.Kind() != types.FieldVal {
						disqualified[v] = true
					}
				}
			case *ast.TypeSwitchStmt:
				// The per-clause binding has one object per clause; opaque.
				if as, ok := x.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						if v, ok := info.Defs[id].(*types.Var); ok {
							disqualified[v] = true
						}
					}
				}
			case *ast.Ident:
				if inLit {
					// Any variable a function literal touches is shared
					// state between frames; leave it opaque.
					if v, ok := info.ObjectOf(x).(*types.Var); ok {
						disqualified[v] = true
					}
				}
			}
			return true
		})
	}
	walk(f.decl.Body, false)

	for v := range candidate {
		if disqualified[v] || v.Name() == "_" || v.Name() == "" {
			continue
		}
		switch v.Type().Underlying().(type) {
		case *types.Basic, *types.Slice:
			f.tracked[v] = true
		}
	}
}

// indexRangeHeads maps each range loop's head block (the per-iteration
// binding point) to its RangeStmt. The CFG records the RangeStmt in the
// block where the ranged operand evaluates; that block's single successor
// is the head.
func (f *ssaFunc) indexRangeHeads() {
	for _, b := range f.rpo {
		if len(b.stmts) == 0 {
			continue
		}
		if rs, ok := b.stmts[len(b.stmts)-1].(*ast.RangeStmt); ok && len(b.succs) == 1 {
			f.rangeBind[b.succs[0]] = rs
		}
	}
}

// shallowDefs reports the tracked variables a statement defines in the
// block that holds it (nested bodies excluded).
func (f *ssaFunc) shallowDefs(st ast.Stmt) []*types.Var {
	info := f.pkg.Info
	var out []*types.Var
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok && f.tracked[v] {
				out = append(out, v)
			}
		}
	}
	switch s := st.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			add(lhs)
		}
	case *ast.IncDecStmt:
		add(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						add(name)
					}
				}
			}
		}
	}
	return out
}

// placePhis inserts phi nodes at the iterated dominance frontier of each
// tracked variable's definition blocks.
func (f *ssaFunc) placePhis() {
	// Dominance frontiers (Cooper's formulation).
	df := map[*cfgBlock][]*cfgBlock{}
	for _, b := range f.rpo {
		ps := f.preds[b]
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			runner := p
			for runner != f.idom[b] && runner != nil {
				df[runner] = append(df[runner], b)
				if runner == f.cfg.entry {
					break
				}
				runner = f.idom[runner]
			}
		}
	}

	// Definition blocks per variable.
	defBlocks := map[*types.Var][]*cfgBlock{}
	seen := map[*types.Var]map[*cfgBlock]bool{}
	note := func(v *types.Var, b *cfgBlock) {
		if seen[v] == nil {
			seen[v] = map[*cfgBlock]bool{}
		}
		if !seen[v][b] {
			seen[v][b] = true
			defBlocks[v] = append(defBlocks[v], b)
		}
	}
	for v := range f.tracked {
		if f.isEntryVar(v) {
			note(v, f.cfg.entry)
		}
	}
	for _, b := range f.rpo {
		if rs := f.rangeBind[b]; rs != nil {
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if v, ok := f.pkg.Info.ObjectOf(id).(*types.Var); ok && f.tracked[v] {
						note(v, b)
					}
				}
			}
		}
		for _, st := range b.stmts {
			for _, v := range f.shallowDefs(st) {
				note(v, b)
			}
		}
	}

	// Iterated frontier, one worklist per variable.
	vars := make([]*types.Var, 0, len(defBlocks))
	for v := range defBlocks {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		work := append([]*cfgBlock(nil), defBlocks[v]...)
		hasPhi := map[*cfgBlock]bool{}
		inWork := map[*cfgBlock]bool{}
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, d := range df[b] {
				if hasPhi[d] {
					continue
				}
				hasPhi[d] = true
				phi := f.newValue(v, ssaPhi, d, firstStmtPos(d.stmts))
				phi.phiArgs = make([]*ssaValue, len(f.preds[d]))
				f.phis[d] = append(f.phis[d], phi)
				if !inWork[d] {
					inWork[d] = true
					work = append(work, d)
				}
			}
		}
	}
}

// firstStmtPos gives a representative position for a block's phi nodes.
func firstStmtPos(stmts []ast.Stmt) token.Pos {
	for _, st := range stmts {
		if p := st.Pos(); p.IsValid() {
			return p
		}
	}
	return token.NoPos
}

// isEntryVar reports whether v is defined at function entry (parameter,
// receiver, or named result).
func (f *ssaFunc) isEntryVar(v *types.Var) bool {
	if f.namedResults[v] {
		return true
	}
	sig, _ := f.pkg.Info.Defs[f.decl.Name].(*types.Func)
	if sig == nil {
		return false
	}
	s, ok := sig.Type().(*types.Signature)
	if !ok {
		return false
	}
	if r := s.Recv(); r == v && r != nil {
		return true
	}
	for i := 0; i < s.Params().Len(); i++ {
		if s.Params().At(i) == v {
			return true
		}
	}
	return false
}

func (f *ssaFunc) newValue(v *types.Var, kind ssaKind, b *cfgBlock, pos token.Pos) *ssaValue {
	val := &ssaValue{id: len(f.values), obj: v, kind: kind, block: b, pos: pos, opTok: token.ILLEGAL}
	f.values = append(f.values, val)
	return val
}

// ---- renaming ----

type renameState struct {
	f      *ssaFunc
	stacks map[*types.Var][]*ssaValue
	// curStmt is the recorded statement currently being renamed, for
	// attributing uses to their statement.
	curStmt ast.Stmt
}

func (f *ssaFunc) rename() {
	rs := &renameState{f: f, stacks: map[*types.Var][]*ssaValue{}}
	// Entry definitions: parameters, receiver, named results.
	entryVars := make([]*types.Var, 0, len(f.tracked))
	for v := range f.tracked {
		if f.isEntryVar(v) {
			entryVars = append(entryVars, v)
		}
	}
	sort.Slice(entryVars, func(i, j int) bool { return entryVars[i].Pos() < entryVars[j].Pos() })
	for _, v := range entryVars {
		val := f.newValue(v, ssaParam, f.cfg.entry, v.Pos())
		f.entryVals[v] = val
		rs.stacks[v] = append(rs.stacks[v], val)
	}
	rs.block(f.cfg.entry)
}

func (rs *renameState) top(v *types.Var) *ssaValue {
	st := rs.stacks[v]
	if len(st) == 0 {
		return nil
	}
	return st[len(st)-1]
}

func (rs *renameState) push(v *types.Var, val *ssaValue) { rs.stacks[v] = append(rs.stacks[v], val) }

func (rs *renameState) block(b *cfgBlock) {
	f := rs.f
	var pushed []*types.Var

	for _, phi := range f.phis[b] {
		rs.push(phi.obj, phi)
		pushed = append(pushed, phi.obj)
	}
	if rangeStmt := f.rangeBind[b]; rangeStmt != nil {
		pushed = append(pushed, rs.rangeDefs(rangeStmt, b)...)
	}
	for _, st := range b.stmts {
		pushed = append(pushed, rs.stmt(st, b)...)
	}

	// Fill successor phi operands with the versions flowing out of b.
	for _, s := range b.succs {
		if !f.reach[s] {
			continue
		}
		predIdx := -1
		for i, p := range f.preds[s] {
			if p == b {
				predIdx = i
				break
			}
		}
		if predIdx < 0 {
			continue
		}
		for _, phi := range f.phis[s] {
			if cur := rs.top(phi.obj); cur != nil {
				phi.phiArgs[predIdx] = cur
				cur.phiUses = append(cur.phiUses, phi)
			}
		}
	}

	for _, c := range f.children[b] {
		rs.block(c)
	}
	for _, v := range pushed {
		rs.stacks[v] = rs.stacks[v][:len(rs.stacks[v])-1]
	}
}

// rangeDefs introduces the per-iteration key/value definitions at a range
// loop's head block.
func (rs *renameState) rangeDefs(rangeStmt *ast.RangeStmt, head *cfgBlock) []*types.Var {
	f := rs.f
	info := f.pkg.Info
	var pushed []*types.Var
	xv := f.rangeXVal[rangeStmt]
	_, sliceLike := rangeOperandSliceLike(info, rangeStmt.X)
	bind := func(e ast.Expr, isKey bool) {
		if e == nil {
			return
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		v, _ := info.ObjectOf(id).(*types.Var)
		if v == nil || !f.tracked[v] {
			return
		}
		val := f.newValue(v, ssaRange, head, id.Pos())
		val.lhs = id
		val.stmt = rangeStmt
		val.rangeX = xv
		val.rangeIsKey = isKey
		val.rangeSliceLike = sliceLike
		rs.push(v, val)
		pushed = append(pushed, v)
	}
	bind(rangeStmt.Key, true)
	bind(rangeStmt.Value, false)
	return pushed
}

// rangeOperandSliceLike reports whether ranging x yields [0, len) integer
// keys (slice, array, pointer to array, or string).
func rangeOperandSliceLike(info *types.Info, x ast.Expr) (types.Type, bool) {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch u := t.(type) {
	case *types.Slice, *types.Array:
		return tv.Type, true
	case *types.Basic:
		return tv.Type, u.Info()&types.IsString != 0
	}
	return tv.Type, false
}

// stmt renames one statement shallowly, returning the variables it pushed.
func (rs *renameState) stmt(st ast.Stmt, b *cfgBlock) []*types.Var {
	f := rs.f
	info := f.pkg.Info
	var pushed []*types.Var
	prevStmt := rs.curStmt
	rs.curStmt = st
	defer func() { rs.curStmt = prevStmt }()

	def := func(id *ast.Ident, make func(v *types.Var) *ssaValue) {
		v, _ := info.ObjectOf(id).(*types.Var)
		if v == nil || !f.tracked[v] {
			return
		}
		val := make(v)
		val.lhs = id
		rs.push(v, val)
		pushed = append(pushed, v)
	}

	switch s := st.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			for _, rhs := range s.Rhs {
				rs.uses(rhs, b)
			}
			// Non-ident LHS operands (indexes, selectors) are reads of
			// their components; classify slice-element store bases.
			for _, lhs := range s.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					rs.lvalueUses(lhs, b)
				}
			}
			oneToOne := len(s.Lhs) == len(s.Rhs)
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				def(id, func(v *types.Var) *ssaValue {
					val := f.newValue(v, ssaDef, b, id.Pos())
					val.stmt = s
					if oneToOne {
						val.rhs = s.Rhs[i]
					} else {
						val.tuple = true
					}
					return val
				})
			}
		} else {
			// Op-assign: x op= e reads x and e, then defines x.
			rs.uses(s.Rhs[0], b)
			lhs := s.Lhs[0]
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				prev := rs.useIdent(id, b, useRead)
				def(id, func(v *types.Var) *ssaValue {
					val := f.newValue(v, ssaDef, b, id.Pos())
					val.stmt = s
					val.opTok = arithToken(s.Tok)
					val.prev = prev
					val.opRhs = s.Rhs[0]
					return val
				})
			} else {
				rs.lvalueOpUses(lhs, b)
			}
		}

	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			prev := rs.useIdent(id, b, useRead)
			def(id, func(v *types.Var) *ssaValue {
				val := f.newValue(v, ssaDef, b, id.Pos())
				val.stmt = s
				if s.Tok == token.INC {
					val.opTok = token.ADD
				} else {
					val.opTok = token.SUB
				}
				val.prev = prev
				return val
			})
		} else {
			rs.lvalueOpUses(s.X, b)
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					rs.uses(val, b)
				}
				oneToOne := len(vs.Names) == len(vs.Values)
				for i, name := range vs.Names {
					i := i
					def(name, func(v *types.Var) *ssaValue {
						val := f.newValue(v, ssaDef, b, name.Pos())
						val.stmt = s
						if oneToOne {
							val.rhs = vs.Values[i]
						} else if len(vs.Values) == 0 {
							val.kind = ssaZero
						} else {
							val.tuple = true
						}
						return val
					})
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			rs.uses(res, b)
		}
		site := returnSite{stmt: s, block: b}
		if len(s.Results) == 0 {
			// A bare return reads every named result; snapshot the reaching
			// versions for the return-fact summaries.
			site.named = make([]*ssaValue, len(f.resultVars))
			for i, v := range f.resultVars {
				if v == nil || !f.tracked[v] {
					continue
				}
				if cur := rs.top(v); cur != nil {
					cur.realUses++
					site.named[i] = cur
				}
			}
		}
		f.returns = append(f.returns, site)

	case *ast.IfStmt:
		rs.uses(s.Cond, b)
	case *ast.ForStmt:
		if s.Cond != nil {
			rs.uses(s.Cond, b)
		}
	case *ast.RangeStmt:
		rs.uses(s.X, b)
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			if val := f.useOf[id]; val != nil {
				f.rangeXVal[s] = val
			}
		}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			rs.uses(s.Tag, b)
		}
		// The CFG evaluates case expressions at the head block (they are
		// never recorded as separate statements), so their reads resolve
		// against the versions reaching the switch.
		for _, e := range caseExprs(s.Body) {
			rs.uses(e, b)
		}
	case *ast.TypeSwitchStmt:
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			rs.uses(as.Rhs[0], b)
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			rs.uses(es.X, b)
		}
	case *ast.SendStmt:
		rs.uses(s.Chan, b)
		rs.uses(s.Value, b)
	case *ast.ExprStmt:
		rs.uses(s.X, b)
	case *ast.GoStmt:
		rs.uses(s.Call, b)
	case *ast.DeferStmt:
		rs.uses(s.Call, b)
	case *ast.LabeledStmt, *ast.BlockStmt, *ast.SelectStmt, *ast.EmptyStmt, *ast.BranchStmt:
		// No shallow expressions.
	}
	return pushed
}

// caseExprs lists every case expression of an expression switch, in source
// order. They all evaluate in the switch head block.
func caseExprs(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, cc.List...)
		}
	}
	return out
}

// arithToken maps an op-assign token to its arithmetic op.
func arithToken(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	}
	return token.ILLEGAL
}

// shallowExprs lists the expressions a statement evaluates in the block the
// CFG recorded it in — the same shallowness contract as the renaming walk:
// compound statements contribute their head expressions only.
func shallowExprs(st ast.Stmt) []ast.Expr {
	var out []ast.Expr
	switch s := st.(type) {
	case *ast.AssignStmt:
		out = append(out, s.Rhs...)
		out = append(out, s.Lhs...)
	case *ast.IncDecStmt:
		out = append(out, s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
	case *ast.ReturnStmt:
		out = append(out, s.Results...)
	case *ast.IfStmt:
		out = append(out, s.Cond)
	case *ast.ForStmt:
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
	case *ast.RangeStmt:
		out = append(out, s.X)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
		out = append(out, caseExprs(s.Body)...)
	case *ast.TypeSwitchStmt:
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			out = append(out, as.Rhs[0])
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			out = append(out, es.X)
		}
	case *ast.SendStmt:
		out = append(out, s.Chan, s.Value)
	case *ast.ExprStmt:
		out = append(out, s.X)
	case *ast.GoStmt:
		out = append(out, s.Call)
	case *ast.DeferStmt:
		out = append(out, s.Call)
	}
	return out
}

// uses resolves every tracked identifier under n to its current version.
// Function literal subtrees are skipped: the variables they touch are
// untracked by construction.
func (rs *renameState) uses(n ast.Node, b *cfgBlock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			rs.useIdent(x, b, useRead)
		}
		return true
	})
}

// useIdent resolves one identifier use, recording the version and kind.
func (rs *renameState) useIdent(id *ast.Ident, b *cfgBlock, kind useKind) *ssaValue {
	v, _ := rs.f.pkg.Info.Uses[id].(*types.Var)
	if v == nil || !rs.f.tracked[v] {
		return nil
	}
	cur := rs.top(v)
	if cur == nil {
		return nil
	}
	rs.f.useOf[id] = cur
	rs.f.kindOf[id] = kind
	if rs.curStmt != nil {
		rs.f.useStmt[id] = rs.curStmt
	}
	if kind == useRead {
		cur.realUses++
	}
	return cur
}

// lvalueUses walks a non-ident assignment target: the base of a direct
// slice-element store is classified useElemStore; every other identifier in
// the target (indexes, nested bases, pointers) is a read.
func (rs *renameState) lvalueUses(lhs ast.Expr, b *cfgBlock) {
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok {
			if tv, ok := rs.f.pkg.Info.Types[ix.X]; ok && tv.Type != nil {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					rs.useIdent(id, b, useElemStore)
					rs.uses(ix.Index, b)
					return
				}
			}
		}
	}
	rs.uses(lhs, b)
}

// lvalueOpUses walks a non-ident op-assign target (buf[i] += v): the base is
// read and written; classify everything as reads.
func (rs *renameState) lvalueOpUses(lhs ast.Expr, b *cfgBlock) {
	rs.uses(lhs, b)
}
