package lint

// Sparse conditional constant/interval propagation over the SSA-lite form
// (ssa.go), plus the float-fact prover the nanguard rule runs on. Two fact
// families, both demand-driven:
//
//   - Integer intervals with symbolic length bounds: a bound is either a
//     constant c or len(V)+c for a specific SSA value V (the slice header
//     version whose length the bound references). Intervals come from
//     literals, len/cap, loop bounds, and branch conditions; the symbolic
//     form is what lets `for i := 0; i < len(xs); i++ { xs[i] }` prove
//     containment without knowing any concrete length.
//   - Float facts are deliberately coarse — proven nonzero / positive /
//     nonnegative — derived from nonzero literals, designated exact-compare
//     guard helpers (the same seam floatcmp enforces), math.Abs threshold
//     guards, sign guards, and products of proven factors. There is no float
//     interval arithmetic: rounding makes it unsound to fake.
//
// Guard refinement walks the immediate-dominator chain of the query block:
// an edge p→c contributes its branch condition when c is p's conditional
// successor and p is c's only reachable predecessor (so the fact holds on
// every path into c). Phi operands are additionally refined along their own
// incoming edge, which is what makes clamp patterns
// (`if i >= n { i = n - 1 }`) join to a bounded interval.
//
// Loops terminate by a pending/widen protocol: evaluating a phi that cycles
// back into itself first joins the acyclic operands, publishes that
// tentative result, re-evaluates the cyclic operands against it, and widens
// exactly the bounds that grew. `i := 0; i++` therefore keeps its proven
// lower bound of 0 while the upper bound widens to +inf (and is then
// re-bounded by the loop condition at each use site).

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// evalDepthLimit cuts pathological refinement recursion; beyond it every
// query degrades to "unknown", which is sound.
const evalDepthLimit = 64

// ivBound is one interval endpoint: unbounded, a constant c, or len(lenOf)+c.
type ivBound struct {
	inf   bool
	c     int64
	lenOf *ssaValue
}

func constBound(c int64) ivBound { return ivBound{c: c} }
func infBound() ivBound          { return ivBound{inf: true} }
func lenBound(v *ssaValue, c int64) ivBound {
	return ivBound{c: c, lenOf: v}
}

// interval is [lo, hi]; either endpoint may be unbounded (in its own
// direction: lo unbounded means -inf, hi unbounded means +inf).
type interval struct {
	lo, hi ivBound
}

func topInterval() interval { return interval{lo: infBound(), hi: infBound()} }

func constInterval(c int64) interval {
	return interval{lo: constBound(c), hi: constBound(c)}
}

// satAdd is saturating int64 addition; overflow reports failure so callers
// widen to unbounded instead of wrapping.
func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// addConst shifts a bound by a constant, widening on overflow.
func addConst(b ivBound, d int64) ivBound {
	if b.inf {
		return b
	}
	s, ok := satAdd(b.c, d)
	if !ok {
		return infBound()
	}
	return ivBound{c: s, lenOf: b.lenOf}
}

// ---- bound joins (union) ----

// joinLo picks a sound lower bound below both a and b.
func joinLo(a, b ivBound) ivBound {
	if a.inf || b.inf {
		return infBound()
	}
	switch {
	case a.lenOf == b.lenOf: // same symbol (or both constant)
		return ivBound{c: min(a.c, b.c), lenOf: a.lenOf}
	default:
		// len(V)+c >= c because len >= 0, so the constant parts alone give a
		// sound lower bound for either mixed or differently-symboled pair.
		return constBound(min(a.c, b.c))
	}
}

// joinHi picks a sound upper bound above both a and b.
func joinHi(a, b ivBound) ivBound {
	if a.inf || b.inf {
		return infBound()
	}
	switch {
	case a.lenOf == b.lenOf:
		return ivBound{c: max(a.c, b.c), lenOf: a.lenOf}
	case a.lenOf != nil && b.lenOf == nil:
		// max(len(V)+c, d): d <= len(V)+d, so len(V)+max(c,d) covers both.
		return ivBound{c: max(a.c, b.c), lenOf: a.lenOf}
	case a.lenOf == nil && b.lenOf != nil:
		return ivBound{c: max(a.c, b.c), lenOf: b.lenOf}
	default:
		return infBound()
	}
}

func joinIntervals(a, b interval) interval {
	return interval{lo: joinLo(a.lo, b.lo), hi: joinHi(a.hi, b.hi)}
}

// ---- bound meets (refinement) ----

// boundGE reports whether a >= b is provable.
func boundGE(a, b ivBound) bool {
	if a.inf || b.inf {
		return false
	}
	if a.lenOf == b.lenOf {
		return a.c >= b.c
	}
	if a.lenOf != nil && b.lenOf == nil {
		return a.c >= b.c // len(V)+c >= c >= b.c
	}
	return false
}

// meetLo picks the tighter (larger) of two lower bounds, preferring the new
// fact when the pair is incomparable.
func meetLo(old, new ivBound) ivBound {
	if new.inf {
		return old
	}
	if old.inf {
		return new
	}
	if boundGE(old, new) {
		return old
	}
	return new
}

// meetHi picks the tighter (smaller) of two upper bounds.
func meetHi(old, new ivBound) ivBound {
	if new.inf {
		return old
	}
	if old.inf {
		return new
	}
	if boundGE(new, old) {
		return old
	}
	return new
}

// ---- bound arithmetic for +/- ----

func addLoBounds(a, b ivBound) ivBound {
	if a.inf || b.inf {
		return infBound()
	}
	s, ok := satAdd(a.c, b.c)
	if !ok {
		return infBound()
	}
	switch {
	case a.lenOf == nil:
		return ivBound{c: s, lenOf: b.lenOf}
	case b.lenOf == nil:
		return ivBound{c: s, lenOf: a.lenOf}
	default:
		// len(A)+len(B)+s >= s: drop both symbols, keep the constant floor.
		return constBound(s)
	}
}

func addHiBounds(a, b ivBound) ivBound {
	if a.inf || b.inf {
		return infBound()
	}
	s, ok := satAdd(a.c, b.c)
	if !ok {
		return infBound()
	}
	switch {
	case a.lenOf == nil:
		return ivBound{c: s, lenOf: b.lenOf}
	case b.lenOf == nil:
		return ivBound{c: s, lenOf: a.lenOf}
	default:
		return infBound()
	}
}

// subLoBound computes a sound lower bound for x-y from x.lo and y.hi.
func subLoBound(xlo, yhi ivBound) ivBound {
	if xlo.inf || yhi.inf {
		return infBound()
	}
	d, ok := satAdd(xlo.c, -yhi.c)
	if !ok {
		return infBound()
	}
	switch {
	case xlo.lenOf == yhi.lenOf: // symbols cancel (or both constant)
		return constBound(d)
	case yhi.lenOf == nil:
		return ivBound{c: d, lenOf: xlo.lenOf}
	default:
		return infBound()
	}
}

// subHiBound computes a sound upper bound for x-y from x.hi and y.lo.
func subHiBound(xhi, ylo ivBound) ivBound {
	if xhi.inf || ylo.inf {
		return infBound()
	}
	d, ok := satAdd(xhi.c, -ylo.c)
	if !ok {
		return infBound()
	}
	switch {
	case xhi.lenOf == ylo.lenOf:
		return constBound(d)
	case ylo.lenOf == nil:
		return ivBound{c: d, lenOf: xhi.lenOf}
	case xhi.lenOf == nil:
		// c - (len(V)+c') <= c - c' because len >= 0.
		return constBound(d)
	default:
		return infBound()
	}
}

// loGEZero reports whether the lower bound proves the value nonnegative.
func loGEZero(lo ivBound) bool {
	return !lo.inf && lo.c >= 0 // len(V)+c >= c covers the symbolic case
}

// ---- evaluator ----

// evaluator answers interval and float-fact queries over one function's SSA
// form. Base value intervals are memoized; guard-refined (context-dependent)
// queries are recomputed per site, bounded by evalDepthLimit.
type evaluator struct {
	va *valueAnalysis
	f  *ssaFunc

	memo    map[*ssaValue]interval
	pending map[*ssaValue]bool
	// cycleVal publishes a phi's tentative interval while its widening loop
	// re-evaluates the cycle; noMemo suppresses memoization during those
	// re-evaluations so throwaway results never persist.
	cycleVal map[*ssaValue]interval
	noMemo   int

	// factMemo caches float-fact proofs keyed by value, fact, and block.
	factMemo map[floatFactKey]bool
	factBusy map[floatFactKey]bool

	// condsMemo caches the dominating-condition chain per block.
	condsMemo map[*cfgBlock][]domEdge
}

type floatFact uint8

const (
	factNonzero floatFact = iota
	factPositive
	factNonNeg
)

type floatFactKey struct {
	v     *ssaValue
	fact  floatFact
	block *cfgBlock
}

// domEdge is one condition known to hold on entry to the query block.
type domEdge struct {
	cond   ast.Expr
	isTrue bool
	from   *cfgBlock
}

func newEvaluator(va *valueAnalysis, f *ssaFunc) *evaluator {
	return &evaluator{
		va:        va,
		f:         f,
		memo:      map[*ssaValue]interval{},
		pending:   map[*ssaValue]bool{},
		cycleVal:  map[*ssaValue]interval{},
		factMemo:  map[floatFactKey]bool{},
		factBusy:  map[floatFactKey]bool{},
		condsMemo: map[*cfgBlock][]domEdge{},
	}
}

func (ev *evaluator) info() *types.Info { return ev.f.pkg.Info }

// branchCond resolves the branch condition of the edge p→c, when p ends in
// a two-way conditional branch. The CFG builder's edge order fixes the
// polarity: if-conditions put the then-block first; for-heads put the exit
// block first.
func branchCond(p, c *cfgBlock) (cond ast.Expr, isTrue, ok bool) {
	if len(p.succs) != 2 || len(p.stmts) == 0 {
		return nil, false, false
	}
	switch s := p.stmts[len(p.stmts)-1].(type) {
	case *ast.IfStmt:
		if c == p.succs[0] {
			return s.Cond, true, true
		}
		if c == p.succs[1] {
			return s.Cond, false, true
		}
	case *ast.ForStmt:
		if s.Cond == nil {
			return nil, false, false
		}
		if c == p.succs[1] {
			return s.Cond, true, true
		}
		if c == p.succs[0] {
			return s.Cond, false, true
		}
	}
	return nil, false, false
}

// dominatingConds collects the branch conditions proven on every path into
// b: for each step c of b's dominator chain whose only reachable
// predecessor p is its immediate dominator, the p→c edge condition holds.
func (ev *evaluator) dominatingConds(b *cfgBlock) []domEdge {
	if conds, ok := ev.condsMemo[b]; ok {
		return conds
	}
	var out []domEdge
	cur := b
	for cur != ev.f.cfg.entry {
		p := ev.f.idom[cur]
		if p == nil || p == cur {
			break
		}
		if preds := ev.f.preds[cur]; len(preds) == 1 && preds[0] == p {
			if cond, isTrue, ok := branchCond(p, cur); ok {
				out = append(out, domEdge{cond: cond, isTrue: isTrue, from: p})
			}
		}
		cur = p
	}
	ev.condsMemo[b] = out
	return out
}

// ---- integer intervals ----

// isIntValue reports whether v carries an integer type.
func (ev *evaluator) isIntValue(v *ssaValue) bool {
	b, ok := v.obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// useInterval is the public query: the interval of value v as observed in
// block b, guard-refined along b's dominator chain.
func (ev *evaluator) useInterval(v *ssaValue, b *cfgBlock, depth int) interval {
	iv, _ := ev.valueInterval(v, depth)
	return ev.refineByGuards(v, iv, b, depth)
}

// valueInterval computes v's base (context-free) interval. The second
// result reports a cycle in progress: pending results are never memoized
// and degrade to "unknown" if they survive to the top.
//
// Phi cycles use an iterate-verify-widen protocol: the acyclic operand join
// is published as a tentative value, the cycle is re-evaluated against it,
// and any bound that grew is widened to unbounded; the loop repeats until
// re-evaluation confirms a post-fixpoint (at most three widenings, one per
// direction plus the verifying pass). Re-evaluations run with memoization
// suppressed so intermediate results computed against a tentative value
// never leak into the cache.
func (ev *evaluator) valueInterval(v *ssaValue, depth int) (interval, bool) {
	if depth > evalDepthLimit {
		return topInterval(), false
	}
	if iv, ok := ev.memo[v]; ok {
		return iv, false
	}
	if iv, ok := ev.cycleVal[v]; ok {
		return iv, false
	}
	if ev.pending[v] {
		return topInterval(), true
	}
	if !ev.isIntValue(v) {
		if ev.noMemo == 0 {
			ev.memo[v] = topInterval()
		}
		return topInterval(), false
	}
	ev.pending[v] = true
	iv, cyc := ev.computeInterval(v, depth)
	delete(ev.pending, v)
	if cyc && v.kind == ssaPhi {
		cur := iv
		for round := 0; round < 4; round++ {
			ev.cycleVal[v] = cur
			ev.noMemo++
			iv2, cyc2 := ev.computeInterval(v, depth)
			ev.noMemo--
			delete(ev.cycleVal, v)
			if cyc2 {
				// Another cycle is still unresolved through this one
				// (mutually recursive loops): give up soundly.
				cur = topInterval()
				break
			}
			grew := false
			if !cur.lo.inf && !boundGE(iv2.lo, cur.lo) {
				cur.lo = infBound()
				grew = true
			}
			if !cur.hi.inf && (iv2.hi.inf || !boundGE(cur.hi, iv2.hi)) {
				cur.hi = infBound()
				grew = true
			}
			if !grew {
				break // verified: one more iteration stays inside cur
			}
		}
		if ev.noMemo == 0 {
			ev.memo[v] = cur
		}
		return cur, false
	}
	if cyc {
		return iv, true
	}
	if ev.noMemo == 0 {
		ev.memo[v] = iv
	}
	return iv, false
}

func (ev *evaluator) computeInterval(v *ssaValue, depth int) (interval, bool) {
	switch v.kind {
	case ssaZero:
		return constInterval(0), false
	case ssaDef:
		if v.opTok != token.ILLEGAL && v.prev != nil {
			prev, pend := ev.valueInterval(v.prev, depth+1)
			if pend {
				return topInterval(), true
			}
			prev = ev.refineByGuards(v.prev, prev, v.block, depth+1)
			var rhs interval
			if v.opRhs == nil {
				rhs = constInterval(1) // ++ / --
			} else {
				var p bool
				rhs, p = ev.exprInterval(v.opRhs, v.block, depth+1)
				if p {
					return topInterval(), true
				}
			}
			return ev.applyArith(v.opTok, prev, rhs), false
		}
		if v.rhs != nil {
			return ev.exprInterval(v.rhs, v.block, depth+1)
		}
		return topInterval(), false
	case ssaRange:
		if v.rangeIsKey && v.rangeSliceLike {
			// Keys of a slice/array/string range are 0 <= k < len(x); with a
			// tracked operand the upper bound is symbolic, otherwise just
			// nonnegative.
			if v.rangeX != nil {
				return interval{lo: constBound(0), hi: lenBound(v.rangeX, -1)}, false
			}
			return interval{lo: constBound(0), hi: infBound()}, false
		}
		return topInterval(), false
	case ssaPhi:
		preds := ev.f.preds[v.block]
		out := interval{}
		first := true
		cyc := false
		for i, op := range v.phiArgs {
			if op == nil || i >= len(preds) {
				continue
			}
			piv, pend := ev.valueInterval(op, depth+1)
			if pend {
				cyc = true
				continue
			}
			p := preds[i]
			piv = ev.refineByGuards(op, piv, p, depth+1)
			if cond, isTrue, ok := branchCond(p, v.block); ok {
				piv = ev.refineByCond(op, piv, cond, isTrue, p, depth+1)
			}
			if first {
				out = piv
				first = false
			} else {
				out = joinIntervals(out, piv)
			}
		}
		if first {
			return topInterval(), cyc
		}
		return out, cyc
	}
	return topInterval(), false
}

// applyArith transfers one arithmetic op over intervals.
func (ev *evaluator) applyArith(op token.Token, a, b interval) interval {
	switch op {
	case token.ADD:
		return interval{lo: addLoBounds(a.lo, b.lo), hi: addHiBounds(a.hi, b.hi)}
	case token.SUB:
		return interval{lo: subLoBound(a.lo, b.hi), hi: subHiBound(a.hi, b.lo)}
	case token.MUL:
		return mulIntervals(a, b)
	case token.QUO:
		// x/m with x >= 0 and m >= 1 stays within [0, x.hi].
		if loGEZero(a.lo) && !b.lo.inf && b.lo.lenOf == nil && b.lo.c >= 1 {
			return interval{lo: constBound(0), hi: a.hi}
		}
		return topInterval()
	case token.REM:
		// x%m with x >= 0 and m >= 1 lies in [0, m.hi-1] — the i%n wrap
		// pattern. A symbolic m.lo (len(V)+c, c>=1) also proves m >= 1.
		mPos := !b.lo.inf && b.lo.c >= 1
		if loGEZero(a.lo) && mPos && !b.hi.inf {
			return interval{lo: constBound(0), hi: addConst(b.hi, -1)}
		}
		return topInterval()
	}
	return topInterval()
}

// mulIntervals multiplies constant-bounded intervals; anything symbolic or
// unbounded degrades to top.
func mulIntervals(a, b interval) interval {
	if a.lo.inf || a.hi.inf || b.lo.inf || b.hi.inf ||
		a.lo.lenOf != nil || a.hi.lenOf != nil || b.lo.lenOf != nil || b.hi.lenOf != nil {
		return topInterval()
	}
	vals := []int64{}
	for _, x := range []int64{a.lo.c, a.hi.c} {
		for _, y := range []int64{b.lo.c, b.hi.c} {
			hx, hy := big64(x), big64(y)
			p := hx * hy
			if x != 0 && (p/x != y || big64(p) != p) {
				return topInterval()
			}
			vals = append(vals, p)
		}
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo, hi = min(lo, v), max(hi, v)
	}
	return interval{lo: constBound(lo), hi: constBound(hi)}
}

// big64 guards against overflow near the int64 edges by refusing huge
// operands outright.
func big64(x int64) int64 {
	if x > math.MaxInt32 || x < math.MinInt32 {
		return math.MaxInt64
	}
	return x
}

// refineByGuards folds every dominating branch condition about v into iv.
func (ev *evaluator) refineByGuards(v *ssaValue, iv interval, b *cfgBlock, depth int) interval {
	if depth > evalDepthLimit {
		return iv
	}
	for _, e := range ev.dominatingConds(b) {
		iv = ev.refineByCond(v, iv, e.cond, e.isTrue, e.from, depth)
	}
	return iv
}

// refineByCond narrows iv with one branch condition known to evaluate to
// isTrue, decomposing &&/||/! and comparison forms.
func (ev *evaluator) refineByCond(v *ssaValue, iv interval, cond ast.Expr, isTrue bool, condBlock *cfgBlock, depth int) interval {
	if depth > evalDepthLimit {
		return iv
	}
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return ev.refineByCond(v, iv, c.X, !isTrue, condBlock, depth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if isTrue {
				iv = ev.refineByCond(v, iv, c.X, true, condBlock, depth)
				iv = ev.refineByCond(v, iv, c.Y, true, condBlock, depth)
			}
			return iv
		case token.LOR:
			if !isTrue {
				iv = ev.refineByCond(v, iv, c.X, false, condBlock, depth)
				iv = ev.refineByCond(v, iv, c.Y, false, condBlock, depth)
			}
			return iv
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return ev.refineByCompare(v, iv, c, isTrue, condBlock, depth)
		}
	}
	return iv
}

// negateCmp flips a comparison operator for the false branch.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

// swapCmp mirrors a comparison operator across its operands.
func swapCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// sideRef normalizes a comparison operand to (value, offset): a tracked
// identifier, optionally plus/minus a constant (`i+1 < len(xs)` constrains
// i with offset 1).
func (ev *evaluator) sideRef(e ast.Expr) (*ssaValue, int64, bool) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if v := ev.f.useOf[id]; v != nil {
			return v, 0, true
		}
		return nil, 0, false
	}
	be, ok := e.(*ast.BinaryExpr)
	if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
		return nil, 0, false
	}
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok {
		if v := ev.f.useOf[id]; v != nil {
			if c, ok := ev.constInt(be.Y); ok {
				if be.Op == token.SUB {
					c = -c
				}
				return v, c, true
			}
		}
	}
	if be.Op == token.ADD {
		if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok {
			if v := ev.f.useOf[id]; v != nil {
				if c, ok := ev.constInt(be.X); ok {
					return v, c, true
				}
			}
		}
	}
	return nil, 0, false
}

// constInt folds e to an int64 constant via the type checker.
func (ev *evaluator) constInt(e ast.Expr) (int64, bool) {
	tv, ok := ev.info().Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// mentionsValue reports whether expression e contains an identifier
// resolving to v — guard against self-referential refinement loops.
func (ev *evaluator) mentionsValue(e ast.Expr, v *ssaValue) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && ev.f.useOf[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// refineByCompare applies one comparison fact about v.
func (ev *evaluator) refineByCompare(v *ssaValue, iv interval, c *ast.BinaryExpr, isTrue bool, condBlock *cfgBlock, depth int) interval {
	op := c.Op
	if !isTrue {
		op = negateCmp(op)
	}
	lhs, rhs := c.X, c.Y
	lv, loff, lok := ev.sideRef(lhs)
	if !lok || lv != v {
		// Try the mirrored orientation: e OP v.
		rv, roff, rok := ev.sideRef(rhs)
		if !rok || rv != v {
			return iv
		}
		lhs, rhs = rhs, lhs
		lv, loff = rv, roff
		op = swapCmp(op)
	}
	_ = lhs
	if ev.mentionsValue(rhs, v) {
		return iv
	}
	R, pend := ev.exprInterval(rhs, condBlock, depth+1)
	if pend {
		return iv
	}
	// v+loff OP R  ⇒  constraints on v.
	switch op {
	case token.LSS:
		iv.hi = meetHi(iv.hi, addConst(R.hi, -1-loff))
	case token.LEQ:
		iv.hi = meetHi(iv.hi, addConst(R.hi, -loff))
	case token.GTR:
		iv.lo = meetLo(iv.lo, addConst(R.lo, 1-loff))
	case token.GEQ:
		iv.lo = meetLo(iv.lo, addConst(R.lo, -loff))
	case token.EQL:
		iv.lo = meetLo(iv.lo, addConst(R.lo, -loff))
		iv.hi = meetHi(iv.hi, addConst(R.hi, -loff))
	case token.NEQ:
		// Shrink only when the excluded point sits exactly on an endpoint.
		if !R.lo.inf && !R.hi.inf && R.lo.lenOf == R.hi.lenOf && R.lo.c == R.hi.c {
			excl := addConst(R.lo, -loff)
			if !iv.lo.inf && iv.lo.lenOf == excl.lenOf && iv.lo.c == excl.c {
				iv.lo = addConst(iv.lo, 1)
			}
			if !iv.hi.inf && iv.hi.lenOf == excl.lenOf && iv.hi.c == excl.c {
				iv.hi = addConst(iv.hi, -1)
			}
		}
	}
	return iv
}

// exprInterval evaluates an integer expression's interval in block b.
func (ev *evaluator) exprInterval(e ast.Expr, b *cfgBlock, depth int) (interval, bool) {
	if depth > evalDepthLimit {
		return topInterval(), false
	}
	e = ast.Unparen(e)

	// Constant folding first: covers literals, named constants, and
	// constant arithmetic in one shot.
	if c, ok := ev.constInt(e); ok {
		return constInterval(c), false
	}

	switch x := e.(type) {
	case *ast.Ident:
		if v := ev.f.useOf[x]; v != nil {
			iv, pend := ev.valueInterval(v, depth+1)
			if pend {
				return topInterval(), true
			}
			return ev.refineByGuards(v, iv, b, depth+1), false
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			iv, pend := ev.exprInterval(x.X, b, depth+1)
			if pend {
				return topInterval(), true
			}
			return negateInterval(iv), false
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			a, p1 := ev.exprInterval(x.X, b, depth+1)
			bb, p2 := ev.exprInterval(x.Y, b, depth+1)
			if p1 || p2 {
				return topInterval(), true
			}
			return ev.applyArith(x.Op, a, bb), false
		}
	case *ast.CallExpr:
		return ev.callInterval(x, b, depth)
	}
	return topInterval(), false
}

// negateInterval flips a constant-bounded interval; symbolic bounds widen.
func negateInterval(iv interval) interval {
	var out interval
	if iv.hi.inf || iv.hi.lenOf != nil {
		out.lo = infBound()
	} else {
		out.lo = constBound(-iv.hi.c)
	}
	if iv.lo.inf || iv.lo.lenOf != nil {
		out.hi = infBound()
	} else {
		out.hi = constBound(-iv.lo.c)
	}
	return out
}

// callInterval evaluates len/cap/max/min builtins and known callees'
// return facts.
func (ev *evaluator) callInterval(call *ast.CallExpr, b *cfgBlock, depth int) (interval, bool) {
	info := ev.info()
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, isB := info.Uses[id].(*types.Builtin); isB {
			switch bi.Name() {
			case "len":
				return ev.lenInterval(call, false), false
			case "cap":
				return ev.lenInterval(call, true), false
			case "max":
				out := interval{}
				for i, a := range call.Args {
					iv, pend := ev.exprInterval(a, b, depth+1)
					if pend {
						return topInterval(), true
					}
					if i == 0 {
						out = iv
					} else {
						out.lo = maxLoBounds(out.lo, iv.lo)
						out.hi = joinHi(out.hi, iv.hi)
					}
				}
				return out, false
			case "min":
				out := interval{}
				for i, a := range call.Args {
					iv, pend := ev.exprInterval(a, b, depth+1)
					if pend {
						return topInterval(), true
					}
					if i == 0 {
						out = iv
					} else {
						out.lo = joinLo(out.lo, iv.lo)
						out.hi = minHiBounds(out.hi, iv.hi)
					}
				}
				return out, false
			}
			return topInterval(), false
		}
	}
	// Interprocedural: a known callee whose single result is proven within
	// [0, len(param)) maps through the argument bound to that parameter.
	if fn := funcObjOf(info, call.Fun); fn != nil && ev.va != nil {
		if rf := ev.va.ret[fn]; rf != nil && len(rf.results) == 1 {
			if p := rf.results[0].ltLenOf; p >= 0 {
				if arg := callArgExpr(info, call, fn, p); arg != nil {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if xv := ev.f.useOf[id]; xv != nil {
							return interval{lo: constBound(0), hi: lenBound(xv, -1)}, false
						}
					}
				}
			}
		}
	}
	return topInterval(), false
}

// maxLoBounds: lower bound of max(a,b) is the larger of the lower bounds.
func maxLoBounds(a, b ivBound) ivBound {
	if a.inf {
		return b
	}
	if b.inf {
		return a
	}
	if boundGE(a, b) {
		return a
	}
	if boundGE(b, a) {
		return b
	}
	return a
}

// minHiBounds: upper bound of min(a,b) is the smaller of the upper bounds.
func minHiBounds(a, b ivBound) ivBound {
	if a.inf {
		return b
	}
	if b.inf {
		return a
	}
	if boundGE(b, a) {
		return a
	}
	if boundGE(a, b) {
		return b
	}
	return a
}

// lenInterval evaluates len(x) / cap(x): exact symbolic for a tracked slice
// identifier, constant for arrays, nonnegative otherwise.
func (ev *evaluator) lenInterval(call *ast.CallExpr, isCap bool) interval {
	if len(call.Args) != 1 {
		return topInterval()
	}
	arg := ast.Unparen(call.Args[0])
	if n, ok := constArrayLen(ev.info(), arg); ok {
		return constInterval(n)
	}
	if id, ok := arg.(*ast.Ident); ok {
		if v := ev.f.useOf[id]; v != nil {
			if _, isSlice := v.obj.Type().Underlying().(*types.Slice); isSlice {
				if isCap {
					// cap(x) >= len(x); exact only for len.
					return interval{lo: lenBound(v, 0), hi: infBound()}
				}
				return interval{lo: lenBound(v, 0), hi: lenBound(v, 0)}
			}
		}
	}
	return interval{lo: constBound(0), hi: infBound()}
}

// constArrayLen resolves e's array length when e has an array (or pointer
// to array) type.
func constArrayLen(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return 0, false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	if a, ok := t.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

// callArgExpr resolves the argument expression bound to paramVars-index p
// of a call to fn (receiver first), nil when unresolvable or variadic-fuzzy.
func callArgExpr(info *types.Info, call *ast.CallExpr, fn *types.Func, p int) ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var args []ast.Expr
	if sig.Recv() != nil {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		selInfo, ok := info.Selections[sel]
		if !ok || selInfo.Kind() != types.MethodVal {
			return nil
		}
		args = append(args, sel.X)
	}
	args = append(args, call.Args...)
	if sig.Variadic() && p >= len(paramVars(fn))-1 {
		return nil
	}
	if p < 0 || p >= len(args) {
		return nil
	}
	return args[p]
}

// ---- float facts ----

// constFloatSign folds e and classifies the constant: -1/0/+1, reported via
// (sign, ok).
func (ev *evaluator) constFloatSign(e ast.Expr) (int, bool) {
	tv, ok := ev.info().Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value), true
	}
	return 0, false
}

// provenNonzero reports whether float expression e is proven nonzero on
// every path to block b.
func (ev *evaluator) provenNonzero(e ast.Expr, b *cfgBlock, depth int) bool {
	if depth > evalDepthLimit {
		return false
	}
	e = ast.Unparen(e)
	if s, ok := ev.constFloatSign(e); ok {
		return s != 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := ev.f.useOf[x]; v != nil {
			return ev.provenFactValue(v, factNonzero, b, depth+1)
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return ev.provenNonzero(x.X, b, depth+1)
		}
	case *ast.BinaryExpr:
		if x.Op == token.MUL {
			return ev.provenNonzero(x.X, b, depth+1) && ev.provenNonzero(x.Y, b, depth+1)
		}
	case *ast.CallExpr:
		if name, arg := mathUnaryCall(ev.info(), x); arg != nil {
			switch name {
			case "Abs":
				return ev.provenNonzero(arg, b, depth+1)
			case "Sqrt":
				return ev.provenPositive(arg, b, depth+1)
			}
		}
		if ev.builtinExtremum(x, b, depth, factNonzero) {
			return true
		}
		if ev.convIntFact(x, b, depth, factNonzero) {
			return true
		}
		if ev.callFact(x, factNonzero) {
			return true
		}
	}
	return ev.provenPositive(e, b, depth+1)
}

// provenPositive reports whether float expression e is proven > 0.
func (ev *evaluator) provenPositive(e ast.Expr, b *cfgBlock, depth int) bool {
	if depth > evalDepthLimit {
		return false
	}
	e = ast.Unparen(e)
	if s, ok := ev.constFloatSign(e); ok {
		return s > 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := ev.f.useOf[x]; v != nil {
			return ev.provenFactValue(v, factPositive, b, depth+1)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.MUL, token.QUO:
			return ev.provenPositive(x.X, b, depth+1) && ev.provenPositive(x.Y, b, depth+1)
		case token.ADD:
			px := ev.provenPositive(x.X, b, depth+1)
			py := ev.provenPositive(x.Y, b, depth+1)
			if px && py {
				return true
			}
			// positive + nonneg (either order) stays positive.
			if px && ev.provenNonNeg(x.Y, b, depth+1) {
				return true
			}
			if py && ev.provenNonNeg(x.X, b, depth+1) {
				return true
			}
		}
	case *ast.CallExpr:
		if name, arg := mathUnaryCall(ev.info(), x); arg != nil {
			switch name {
			case "Abs":
				return ev.provenNonzero(arg, b, depth+1)
			case "Sqrt":
				return ev.provenPositive(arg, b, depth+1)
			}
		}
		if ev.builtinExtremum(x, b, depth, factPositive) {
			return true
		}
		if ev.convIntFact(x, b, depth, factPositive) {
			return true
		}
		if ev.callFact(x, factPositive) {
			return true
		}
	}
	return false
}

// provenNonNeg reports whether float expression e is proven >= 0.
func (ev *evaluator) provenNonNeg(e ast.Expr, b *cfgBlock, depth int) bool {
	if depth > evalDepthLimit {
		return false
	}
	e = ast.Unparen(e)
	if s, ok := ev.constFloatSign(e); ok {
		return s >= 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := ev.f.useOf[x]; v != nil {
			if ev.provenFactValue(v, factNonNeg, b, depth+1) {
				return true
			}
			return ev.provenFactValue(v, factPositive, b, depth+1)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.MUL:
			// A square is nonnegative (x*x with both sides the same value).
			if lx, ok1 := ast.Unparen(x.X).(*ast.Ident); ok1 {
				if ly, ok2 := ast.Unparen(x.Y).(*ast.Ident); ok2 {
					vx, vy := ev.f.useOf[lx], ev.f.useOf[ly]
					if vx != nil && vx == vy {
						return true
					}
				}
			}
			return ev.provenNonNeg(x.X, b, depth+1) && ev.provenNonNeg(x.Y, b, depth+1)
		case token.ADD:
			return ev.provenNonNeg(x.X, b, depth+1) && ev.provenNonNeg(x.Y, b, depth+1)
		}
	case *ast.CallExpr:
		if name, arg := mathUnaryCall(ev.info(), x); arg != nil {
			switch name {
			case "Abs":
				return true
			case "Sqrt":
				return ev.provenNonNeg(arg, b, depth+1)
			}
		}
		if ev.builtinExtremum(x, b, depth, factNonNeg) {
			return true
		}
		if ev.convIntFact(x, b, depth, factNonNeg) {
			return true
		}
		if ev.callFact(x, factNonNeg) {
			return true
		}
	}
	return ev.provenPositive(e, b, depth+1)
}

// builtinExtremum proves facts through max/min: max is >= each argument, so
// one positive argument makes it positive; min needs all arguments.
func (ev *evaluator) builtinExtremum(call *ast.CallExpr, b *cfgBlock, depth int, fact floatFact) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	bi, isB := ev.info().Uses[id].(*types.Builtin)
	if !isB || len(call.Args) == 0 {
		return false
	}
	prove := func(a ast.Expr) bool {
		switch fact {
		case factPositive:
			return ev.provenPositive(a, b, depth+1)
		case factNonNeg:
			return ev.provenNonNeg(a, b, depth+1)
		case factNonzero:
			// Through max/min only sign facts survive (a nonzero argument of
			// either sign proves nothing about the extremum).
			return ev.provenPositive(a, b, depth+1)
		}
		return false
	}
	switch bi.Name() {
	case "max":
		for _, a := range call.Args {
			if prove(a) {
				return true
			}
		}
	case "min":
		for _, a := range call.Args {
			if !prove(a) {
				return false
			}
		}
		return true
	}
	return false
}

// convIntFact proves a float fact about a float(intExpr) conversion by
// dropping into the integer interval engine: float64(max(n, 1)) is proven
// positive because the argument's interval has lo >= 1.
func (ev *evaluator) convIntFact(call *ast.CallExpr, b *cfgBlock, depth int, fact floatFact) bool {
	tv, ok := ev.info().Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	at, ok := ev.info().Types[call.Args[0]]
	if !ok || at.Type == nil {
		return false
	}
	bt, ok := at.Type.Underlying().(*types.Basic)
	if !ok || bt.Info()&types.IsInteger == 0 {
		return false
	}
	iv, pend := ev.exprInterval(call.Args[0], b, depth+1)
	if pend {
		return false
	}
	switch fact {
	case factPositive:
		return boundGE(iv.lo, constBound(1))
	case factNonNeg:
		return loGEZero(iv.lo)
	case factNonzero:
		if boundGE(iv.lo, constBound(1)) {
			return true
		}
		return !iv.hi.inf && iv.hi.lenOf == nil && iv.hi.c <= -1
	}
	return false
}

// callFact consults the interprocedural return-fact table for a call with a
// single result.
func (ev *evaluator) callFact(call *ast.CallExpr, fact floatFact) bool {
	if ev.va == nil {
		return false
	}
	fn := funcObjOf(ev.info(), call.Fun)
	if fn == nil {
		return false
	}
	rf := ev.va.ret[fn]
	if rf == nil || len(rf.results) != 1 {
		return false
	}
	switch fact {
	case factNonzero:
		return rf.results[0].nonzero || rf.results[0].positive
	case factPositive:
		return rf.results[0].positive
	case factNonNeg:
		return rf.results[0].nonneg || rf.results[0].positive
	}
	return false
}

// mathUnaryCall recognizes math.F(x) for a single-argument F, returning the
// function name and argument.
func mathUnaryCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	fn := funcObjOf(info, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" || len(call.Args) != 1 {
		return "", nil
	}
	return fn.Name(), call.Args[0]
}

// provenFactValue proves a float fact about value v as observed in block b:
// from a dominating guard, from the defining expression, or (for phis) from
// every incoming operand.
func (ev *evaluator) provenFactValue(v *ssaValue, fact floatFact, b *cfgBlock, depth int) bool {
	if depth > evalDepthLimit {
		return false
	}
	key := floatFactKey{v: v, fact: fact, block: b}
	if r, ok := ev.factMemo[key]; ok {
		return r
	}
	if ev.factBusy[key] {
		return false // cycle: unproven
	}
	ev.factBusy[key] = true
	r := ev.computeFactValue(v, fact, b, depth)
	delete(ev.factBusy, key)
	ev.factMemo[key] = r
	return r
}

func (ev *evaluator) computeFactValue(v *ssaValue, fact floatFact, b *cfgBlock, depth int) bool {
	// Dominating guards about this exact version.
	for _, e := range ev.dominatingConds(b) {
		if ev.guardProvesFact(e.cond, e.isTrue, v, fact, e.from, depth) {
			return true
		}
	}
	// Definition-site proofs.
	switch v.kind {
	case ssaDef:
		if v.rhs != nil {
			switch fact {
			case factNonzero:
				return ev.provenNonzero(v.rhs, v.block, depth+1)
			case factPositive:
				return ev.provenPositive(v.rhs, v.block, depth+1)
			case factNonNeg:
				return ev.provenNonNeg(v.rhs, v.block, depth+1)
			}
		}
	case ssaPhi:
		preds := ev.f.preds[v.block]
		if len(v.phiArgs) == 0 {
			return false
		}
		for i, op := range v.phiArgs {
			if op == nil || i >= len(preds) {
				return false
			}
			p := preds[i]
			ok := ev.provenFactValue(op, fact, p, depth+1)
			if !ok {
				if cond, isTrue, edgeOK := branchCond(p, v.block); edgeOK {
					ok = ev.guardProvesFact(cond, isTrue, op, fact, p, depth)
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return false
}

// guardProvesFact decides whether one branch condition, known to evaluate
// to isTrue, proves the fact about value v. This is the guard-recognition
// seam: exact-compare helpers (exactZero/isZero/exactEqual/approxEq — the
// floatcmp allowlist), math.Abs thresholds, and sign comparisons.
func (ev *evaluator) guardProvesFact(cond ast.Expr, isTrue bool, v *ssaValue, fact floatFact, condBlock *cfgBlock, depth int) bool {
	if depth > evalDepthLimit {
		return false
	}
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return ev.guardProvesFact(c.X, !isTrue, v, fact, condBlock, depth+1)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if isTrue {
				return ev.guardProvesFact(c.X, true, v, fact, condBlock, depth+1) ||
					ev.guardProvesFact(c.Y, true, v, fact, condBlock, depth+1)
			}
			return false
		case token.LOR:
			if !isTrue {
				return ev.guardProvesFact(c.X, false, v, fact, condBlock, depth+1) ||
					ev.guardProvesFact(c.Y, false, v, fact, condBlock, depth+1)
			}
			return false
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			return ev.cmpGuardProves(c, isTrue, v, fact, condBlock, depth)
		}
	case *ast.CallExpr:
		// A designated exact-compare helper on its false edge: exactZero(x)
		// false means x != 0 exactly; approxEq(x, 0) false means |x| exceeds
		// a nonnegative tolerance, which also proves nonzero.
		if fact != factNonzero || isTrue {
			return false
		}
		name := calleeBaseName(ev.info(), c)
		if name == "" || !ev.va.helpers[name] {
			return false
		}
		zeroArgs := 0
		var target ast.Expr
		for _, a := range c.Args {
			if s, ok := ev.constFloatSign(a); ok && s == 0 {
				zeroArgs++
				continue
			}
			if target == nil {
				target = a
			} else {
				return false // two non-constant args: not a zero test
			}
		}
		if target == nil {
			return false
		}
		if len(c.Args) > 1 && zeroArgs != len(c.Args)-1 {
			return false
		}
		if id, ok := ast.Unparen(target).(*ast.Ident); ok {
			return ev.f.useOf[id] == v
		}
	}
	return false
}

// calleeBaseName renders the called function's bare name for the helper
// allowlist (exactZero, pkg.ExactZero, s.isZero all match by final name).
func calleeBaseName(info *types.Info, call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// denotesValue reports whether e is exactly the version v, or math.Abs of
// it.
func (ev *evaluator) denotesValue(e ast.Expr, v *ssaValue) (isAbs, ok bool) {
	e = ast.Unparen(e)
	if call, isCall := e.(*ast.CallExpr); isCall {
		if name, arg := mathUnaryCall(ev.info(), call); name == "Abs" {
			if id, isID := ast.Unparen(arg).(*ast.Ident); isID && ev.f.useOf[id] == v {
				return true, true
			}
		}
		return false, false
	}
	if id, isID := e.(*ast.Ident); isID && ev.f.useOf[id] == v {
		return false, true
	}
	return false, false
}

// cmpGuardProves handles sign and math.Abs-threshold comparison guards.
// The bound side need not be a constant: its sign is itself proven through
// the fact engine, so `step > piv` with piv = max(tol, 1e-30) proves step
// positive. condBlock is where the comparison evaluates.
func (ev *evaluator) cmpGuardProves(c *ast.BinaryExpr, isTrue bool, v *ssaValue, fact floatFact, condBlock *cfgBlock, depth int) bool {
	op := c.Op
	if !isTrue {
		op = negateCmp(op)
	}
	lhs, rhs := c.X, c.Y
	// Orient so v (or math.Abs(v)) sits on the left.
	isAbs, ok := ev.denotesValue(lhs, v)
	if !ok {
		isAbs, ok = ev.denotesValue(rhs, v)
		if !ok {
			return false
		}
		lhs, rhs = rhs, lhs
		op = swapCmp(op)
	}
	_ = lhs

	// Bound-side sign facts. Constants resolve inside the provers.
	rhsPos := ev.provenPositive(rhs, condBlock, depth+1)
	rhsNonneg := rhsPos || ev.provenNonNeg(rhs, condBlock, depth+1)
	var rhsNonpos, rhsNeg bool
	if s, okS := ev.constFloatSign(rhs); okS {
		rhsNonpos, rhsNeg = s <= 0, s < 0
	} else if u, okU := ast.Unparen(rhs).(*ast.UnaryExpr); okU && u.Op == token.SUB {
		// v < -e with e >= 0 pins v strictly negative.
		rhsNeg = ev.provenPositive(u.X, condBlock, depth+1)
		rhsNonpos = rhsNeg || ev.provenNonNeg(u.X, condBlock, depth+1)
	}

	if isAbs {
		// |v| > c (c >= 0) or |v| >= c (c > 0) prove nonzero; |v| bounds say
		// nothing about v's sign.
		return fact == factNonzero &&
			((op == token.GTR && rhsNonneg) || (op == token.GEQ && rhsPos))
	}
	switch fact {
	case factPositive:
		return (op == token.GTR && rhsNonneg) || (op == token.GEQ && rhsPos)
	case factNonNeg:
		return (op == token.GTR || op == token.GEQ) && rhsNonneg
	case factNonzero:
		// Either strictly positive or strictly negative.
		if (op == token.GTR && rhsNonneg) || (op == token.GEQ && rhsPos) {
			return true
		}
		return (op == token.LSS && rhsNonpos) || (op == token.LEQ && rhsNeg)
	}
	return false
}
