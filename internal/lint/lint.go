// Package lint is raslint: a from-scratch static-analysis pass, built only
// on the standard library's go/ast, go/parser, go/types, and go/importer,
// that machine-checks the invariants the RAS solver's reproducibility
// promise rests on (see DESIGN.md "Static analysis"):
//
//   - determinism — no wall-clock reads (time.Now/time.Since) in solver
//     packages, which must route timing through internal/clock, and no
//     global math/rand anywhere in the module.
//   - mapiter — no map iteration whose results are accumulated (append/send)
//     past the loop without a following sort: the classic Go
//     nondeterminism leak.
//   - ctxflow — a function that receives a context.Context must not mint a
//     fresh root context and must forward its ctx to every callee that
//     accepts one, so cancellation reaches the whole solve stack.
//   - floatcmp — no ==/!= between floats in the numerical packages outside
//     the designated exact-comparison helpers.
//   - errdrop — no error return silently discarded in statement position.
//
// Intentional exceptions carry a //raslint:allow <rule> <reason> directive
// (see directives.go); each suppression is scoped to a single line and must
// name a real rule and a reason.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Diagnostic is one finding.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Fingerprint is a stable identity for the finding — a short hash of
	// rule, file, line, and message — so CI baselines and suppression
	// ratchets can track a finding across runs without string-matching the
	// whole diagnostic. Column is deliberately excluded: gofmt shifts
	// columns far more often than it shifts what a finding is about.
	Fingerprint string `json:"fingerprint,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// An analyzer is one named rule over a type-checked package.
type analyzer struct {
	name string
	doc  string
	run  func(cfg *Config, pkg *Package, report reportFunc)
}

// reportFunc files one finding at pos.
type reportFunc func(pos token.Pos, format string, args ...any)

// analyzers is the rule registry, in documentation order.
var analyzers = []*analyzer{
	{
		name: "determinism",
		doc:  "forbid wall-clock reads in solver packages and global math/rand module-wide",
		run:  runDeterminism,
	},
	{
		name: "mapiter",
		doc:  "flag map iterations accumulating into escaping state without a following sort",
		run:  runMapiter,
	},
	{
		name: "ctxflow",
		doc:  "functions receiving a ctx must forward it and must not mint root contexts",
		run:  runCtxflow,
	},
	{
		name: "floatcmp",
		doc:  "forbid ==/!= on floats in numerical packages outside exact-comparison helpers",
		run:  runFloatcmp,
	},
	{
		name: "errdrop",
		doc:  "forbid discarding error returns in statement position",
		run:  runErrdrop,
	},
	{
		name: "lockcheck",
		doc:  "a mutex acquired on some CFG path must be released on every path out (or deferred); no mode mismatches or lock copies",
		run:  runLockcheck,
	},
	{
		name: "leakcheck",
		doc:  "flag go-launched functions whose only exits are unguarded channel operations",
		run:  runLeakcheck,
	},
	{
		name: "sharedwrite",
		doc:  "captured or package-level state written from a go-launched function must be lock-held, atomic, or confined",
		run:  runSharedwrite,
	},
}

// moduleAnalyzers run once over the whole loaded package set instead of
// package by package: call-graph reachability and effect summaries cannot
// be decided locally. They share one moduleFacts (call graph + post-fixpoint
// write-effect summaries, see summary.go) built once per run.
type moduleAnalyzer struct {
	name string
	doc  string
	run  func(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any))
}

var moduleAnalyzersList = []*moduleAnalyzer{
	{
		name: "calldeterminism",
		doc:  "flag solve-entry-point call paths that transitively reach time.Now or global math/rand outside internal/clock",
		run:  runCalldeterminism,
	},
	{
		name: "globalwrite",
		doc:  "nothing reachable from a solve entry point may write package-level state (internal/metrics atomics excepted)",
		run:  runGlobalwrite,
	},
	{
		name: "aliascheck",
		doc:  "workspace and incumbent buffers must not escape their owning frame by aliasing (store, goroutine capture, or retaining callee)",
		run:  runAliascheck,
	},
	{
		name: "nanguard",
		doc:  "float divisions, math.Sqrt, and math.Log in the solve stack must have their operand proven safe on every path",
		run:  runNanguard,
	},
	{
		name: "deadstore",
		doc:  "flag writes to locals and workspace-owned buffer elements never read before overwrite or return",
		run:  runDeadstore,
	},
	{
		name: "boundsproof",
		doc:  "computed slice indexes in hot loops must be proven within [0, len) or carry a reasoned allow",
		run:  runBoundsproof,
	},
}

// RuleNames lists every rule, including the synthetic "directive" rule that
// reports malformed //raslint: comments.
func RuleNames() []string {
	names := make([]string, 0, len(analyzers)+len(moduleAnalyzersList)+1)
	for _, a := range analyzers {
		names = append(names, a.name)
	}
	for _, a := range moduleAnalyzersList {
		names = append(names, a.name)
	}
	names = append(names, "directive")
	return names
}

// RuleDocs maps rule name → one-line description.
func RuleDocs() map[string]string {
	docs := map[string]string{"directive": "malformed or stale //raslint: directives"}
	for _, a := range analyzers {
		docs[a.name] = a.doc
	}
	for _, a := range moduleAnalyzersList {
		docs[a.name] = a.doc
	}
	return docs
}

// Config selects rules and scopes. The zero value runs every rule with the
// repository's default scopes.
type Config struct {
	// Disabled turns rules off by name. The "directive" rule cannot be
	// disabled: a malformed suppression is always an error.
	Disabled map[string]bool

	// DeterminismTimeScope lists the import paths where wall-clock reads are
	// forbidden. Nil selects the solve stack: internal/lp, internal/mip,
	// internal/localsearch, internal/solver, internal/backend.
	DeterminismTimeScope []string
	// MapiterScope lists the import paths checked by mapiter. Nil selects
	// the same solve-stack packages.
	MapiterScope []string
	// FloatcmpScope lists the import paths checked by floatcmp. Nil selects
	// the numerical core and the objective plumbing above it: internal/lp,
	// internal/mip, internal/solver, internal/localsearch.
	FloatcmpScope []string
	// FloatcmpHelpers names the functions allowed to compare floats exactly
	// (the designated tolerance/exact-zero helpers). Nil selects
	// DefaultFloatcmpHelpers.
	FloatcmpHelpers []string

	// LeakcheckScope lists the import paths checked by leakcheck. Nil
	// selects the goroutine-spawning solve packages: internal/mip,
	// internal/localsearch, internal/backend.
	LeakcheckScope []string
	// CalldeterminismEntries names the solve entry points reachability
	// starts from, as "pkgpath.Func" or "pkgpath.Type.Method" (interface
	// methods expand to every module implementation). Nil selects the
	// repository's Solve seams (see defaultSolveEntryPoints).
	CalldeterminismEntries []string
	// GlobalwriteEntries names the entry points the globalwrite rule walks
	// from, same syntax as CalldeterminismEntries. Nil selects the same
	// Solve seams.
	GlobalwriteEntries []string
	// AliascheckScope lists the import paths where aliascheck reports.
	// Summaries are still computed module-wide (callers outside the scope
	// propagate facts into it); only the reporting is scoped. Nil selects
	// the solve stack.
	AliascheckScope []string
	// SharedwriteScope lists the import paths checked by sharedwrite. Nil
	// selects the solve stack.
	SharedwriteScope []string
	// NanguardScope lists the import paths where nanguard reports. The
	// value-dataflow facts are still computed module-wide. Nil selects the
	// solve stack.
	NanguardScope []string
	// DeadstoreScope lists the import paths where deadstore reports. Nil
	// selects the solve stack.
	DeadstoreScope []string
	// BoundsproofScope lists the import paths where boundsproof reports.
	// Nil selects the solve stack.
	BoundsproofScope []string
	// Stale, when set, reports every well-formed //raslint:allow directive
	// that suppressed nothing in this run, under the "directive" rule, so
	// annotations cannot outlive the finding they excuse.
	Stale bool
	// Workers caps the per-package analyzer concurrency. Zero or negative
	// selects GOMAXPROCS. Output is byte-identical at any setting: workers
	// fill private slices merged in package order.
	Workers int
}

// Default scopes, as import paths of this module.
var (
	defaultSolveScope = []string{
		"ras/internal/lp",
		"ras/internal/mip",
		"ras/internal/localsearch",
		"ras/internal/solver",
		"ras/internal/backend",
		"ras/internal/partition",
		// The broker's change journal feeds the solver's incremental model
		// cache: retained snapshot/delta slices cross the SolveWith round
		// boundary, so aliasing there is solve-correctness, not just style.
		"ras/internal/broker",
	}
	defaultFloatScope = []string{
		"ras/internal/lp",
		"ras/internal/mip",
		"ras/internal/solver",
		"ras/internal/localsearch",
	}
	// DefaultFloatcmpHelpers are the designated exact-comparison helper
	// names: tiny, documented functions whose whole job is an intentional
	// exact float comparison (sparsity checks on stored-exact zeros).
	DefaultFloatcmpHelpers = []string{"exactZero", "exactEqual", "approxEq", "isZero"}
)

func (c *Config) timeScope() []string {
	if c.DeterminismTimeScope != nil {
		return c.DeterminismTimeScope
	}
	return defaultSolveScope
}

func (c *Config) mapiterScope() []string {
	if c.MapiterScope != nil {
		return c.MapiterScope
	}
	return defaultSolveScope
}

func (c *Config) floatcmpScope() []string {
	if c.FloatcmpScope != nil {
		return c.FloatcmpScope
	}
	return defaultFloatScope
}

func (c *Config) floatcmpHelpers() map[string]bool {
	names := c.FloatcmpHelpers
	if names == nil {
		names = DefaultFloatcmpHelpers
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

func inScope(scope []string, path string) bool {
	for _, s := range scope {
		if path == s {
			return true
		}
	}
	return false
}

// RuleTiming is the accumulated analysis time of one rule across every
// package it ran over. For per-package analyzers running concurrently the
// nanos are summed CPU-side wall clock per package, so they can exceed the
// run's total elapsed time.
type RuleTiming struct {
	Rule  string `json:"rule"`
	Nanos int64  `json:"nanos"`
}

// RunStats reports where a run's analysis time went. Timings never reach
// stdout in the driver: the -json stream stays byte-identical across runs.
type RunStats struct {
	Rules []RuleTiming  `json:"rules"` // registry order; only rules that ran
	Total time.Duration `json:"total_nanos"`
}

// Run executes every enabled analyzer over pkgs and returns the surviving
// findings sorted by position. Findings on lines carrying a matching
// //raslint:allow directive are suppressed; malformed directives are
// reported under the "directive" rule, and — with Config.Stale — so is
// every well-formed directive that suppressed nothing.
//
// Per-package analyzers run concurrently, one worker per package up to
// Config.Workers (default GOMAXPROCS); each worker fills a private finding
// slice and directive set, and the results are merged in package order, so
// the output is byte-identical to a serial run. Module analyzers run
// serially afterwards over facts built once.
func Run(cfg *Config, pkgs []*Package) []Diagnostic {
	diags, _ := RunWithStats(cfg, pkgs)
	return diags
}

// RunWithStats is Run plus per-rule timing.
func RunWithStats(cfg *Config, pkgs []*Package) ([]Diagnostic, *RunStats) {
	start := time.Now()
	if cfg == nil {
		cfg = &Config{}
	}
	known := map[string]bool{}
	for _, name := range RuleNames() {
		known[name] = true
	}

	// Phase 1: collect raw findings from every analyzer and the merged
	// directive index of every package. Filtering is global because the
	// module analyzers report across package boundaries.
	var raw []Diagnostic
	dirs := newDirectiveSet()
	var fset *token.FileSet

	type pkgResult struct {
		raw  []Diagnostic
		dirs *directiveSet
	}
	results := make([]pkgResult, len(pkgs))
	// ruleNanos is indexed [analyzers..., moduleAnalyzersList..., directive].
	ruleNanos := make([]int64, len(analyzers)+len(moduleAnalyzersList)+1)
	dirIdx := len(ruleNanos) - 1
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, max(1, workers))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := &results[i]
			res.dirs = newDirectiveSet()
			collect := func(rule string) reportFunc {
				return func(pos token.Pos, format string, args ...any) {
					p := pkg.Fset.Position(pos)
					res.raw = append(res.raw, Diagnostic{
						File:    p.Filename,
						Line:    p.Line,
						Col:     p.Column,
						Rule:    rule,
						Message: fmt.Sprintf(format, args...),
					})
				}
			}
			t0 := time.Now()
			parseDirectives(pkg, known, res.dirs, func(pos token.Pos, rule, format string, args ...any) {
				collect(rule)(pos, format, args...)
			})
			atomic.AddInt64(&ruleNanos[dirIdx], time.Since(t0).Nanoseconds())
			for ai, a := range analyzers {
				if cfg.Disabled[a.name] {
					continue
				}
				t0 := time.Now()
				a.run(cfg, pkg, collect(a.name))
				atomic.AddInt64(&ruleNanos[ai], time.Since(t0).Nanoseconds())
			}
		}(i, pkg)
	}
	wg.Wait()
	for i, pkg := range pkgs {
		fset = pkg.Fset
		raw = append(raw, results[i].raw...)
		dirs.merge(results[i].dirs)
	}

	var needFacts bool
	for _, a := range moduleAnalyzersList {
		if !cfg.Disabled[a.name] {
			needFacts = true
		}
	}
	var mf *moduleFacts
	if needFacts {
		mf = buildModuleFacts(pkgs)
	}
	for mi, a := range moduleAnalyzersList {
		if cfg.Disabled[a.name] {
			continue
		}
		name := a.name
		t0 := time.Now()
		a.run(cfg, pkgs, mf, func(pkg *Package, pos token.Pos, format string, args ...any) {
			p := pkg.Fset.Position(pos)
			raw = append(raw, Diagnostic{
				File:    p.Filename,
				Line:    p.Line,
				Col:     p.Column,
				Rule:    name,
				Message: fmt.Sprintf(format, args...),
			})
		})
		ruleNanos[len(analyzers)+mi] += time.Since(t0).Nanoseconds()
	}

	// Phase 2: apply suppressions, marking each directive that fires.
	var diags []Diagnostic
	for _, d := range raw {
		if d.Rule != "directive" && dirs.allowed(token.Position{Filename: d.File, Line: d.Line}, d.Rule) {
			continue
		}
		diags = append(diags, d)
	}

	// Phase 3: stale directives. A directive for a rule that was disabled
	// this run proves nothing about staleness and is skipped.
	if cfg.Stale && fset != nil {
		for _, ad := range dirs.list {
			if ad.hit || cfg.Disabled[ad.rule] {
				continue
			}
			p := fset.Position(ad.pos)
			diags = append(diags, Diagnostic{
				File:    p.Filename,
				Line:    p.Line,
				Col:     p.Column,
				Rule:    "directive",
				Message: fmt.Sprintf("stale //raslint:allow %s: it suppresses no %s finding; remove the directive", ad.rule, ad.rule),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	for i := range diags {
		diags[i].Fingerprint = fingerprint(diags[i])
	}

	stats := &RunStats{Total: time.Since(start)}
	for i, n := range ruleNanos {
		var rule string
		switch {
		case i < len(analyzers):
			rule = analyzers[i].name
		case i < len(analyzers)+len(moduleAnalyzersList):
			rule = moduleAnalyzersList[i-len(analyzers)].name
		default:
			rule = "directive"
		}
		if n > 0 || !cfg.Disabled[rule] {
			stats.Rules = append(stats.Rules, RuleTiming{Rule: rule, Nanos: n})
		}
	}
	return diags, stats
}

// fingerprint derives the stable identity hash of a finding: the first 16
// hex digits of SHA-256 over rule, file, line, and message. See the
// Diagnostic.Fingerprint field for why column is excluded.
func fingerprint(d Diagnostic) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%d\x00%s", d.Rule, d.File, d.Line, d.Message)))
	return hex.EncodeToString(h[:8])
}

// ---- shared type helpers ----

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isFloat reports whether t's underlying type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// funcObjOf resolves the *types.Func a call expression invokes, nil for
// builtins, conversions, and indirect calls through values.
func funcObjOf(info *types.Info, fun ast.Expr) *types.Func {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// calleeSignature resolves the signature a call invokes, nil when the callee
// is a type conversion or builtin.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
