package lint

// lockcheck: machine-checked lock discipline over the CFG. The parallel
// branch-and-bound engine (PR 2) made the solver a multi-goroutine worker
// pool; a mutex acquired and not released on one early-return path wedges
// every other worker the next time it blocks on the pool, and the race
// detector only notices when a test happens to drive that interleaving.
// Three checks:
//
//  1. Balance: a sync.Mutex/RWMutex acquired on some CFG path must be
//     released on every path out of the function, unless a matching
//     deferred unlock exists. The analysis is a forward may-held dataflow
//     over basic blocks: paths that reach the synthetic exit with a lock
//     still held (and no deferred release) are reported at the acquire.
//  2. Mode mismatches: a lock acquired with Lock must not be released with
//     RUnlock (and RLock not with Unlock) — silently legal-looking code
//     that corrupts the RWMutex reader count at runtime.
//  3. Copies: a value whose type is (or transitively contains) a sync
//     lock must not be copied — the copy's state diverges from the
//     original's and both "work" until they guard the same data.
//
// Known false negatives, by construction (see DESIGN.md): deferred unlocks
// are collected flow-insensitively, so a conditional `defer mu.Unlock()`
// counts as always releasing; unlock-without-lock is not reported (helper
// methods legitimately release locks their caller acquired); locks reached
// through map indexing or function calls are not tracked (no canonical
// name). Function literals are analyzed as functions of their own.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockMode distinguishes write (Lock/Unlock) from read (RLock/RUnlock).
type lockMode byte

const (
	lockWrite lockMode = 'w'
	lockRead  lockMode = 'r'
)

func (m lockMode) acquire() string {
	if m == lockRead {
		return "RLock"
	}
	return "Lock"
}

func (m lockMode) release() string {
	if m == lockRead {
		return "RUnlock"
	}
	return "Unlock"
}

// lockState is the dataflow fact for one lock: the mode it is held in and
// the position of the acquire that put it there (for reporting).
type lockState struct {
	mode lockMode
	pos  token.Pos
}

// lockOp is one recognized mutex call in a statement.
type lockOp struct {
	key     string // canonical receiver path, "" when untrackable
	display string // source-ish receiver rendering for messages
	mode    lockMode
	acquire bool
	pos     token.Pos
}

func runLockcheck(cfg *Config, pkg *Package, report reportFunc) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			checkLockBalance(pkg, fd.Body, name, report)
			// Each function literal is its own scope for balance: a
			// closure that locks must also release.
			for _, lit := range funcLitsIn(fd.Body) {
				checkLockBalance(pkg, lit.Body, name+" literal", report)
			}
		}
		checkLockCopies(pkg, file, report)
	}
}

// funcLitsIn collects every function literal under n, including nested
// ones (each is returned once and analyzed against its own body).
func funcLitsIn(n ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// typesPanicResolver adapts *types.Info to the CFG builder's panic check.
type typesPanicResolver struct{ info *types.Info }

func (r typesPanicResolver) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := r.info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// checkLockBalance runs the may-held dataflow over one function body.
func checkLockBalance(pkg *Package, body *ast.BlockStmt, funcName string, report reportFunc) {
	info := pkg.Info
	g := buildCFG(body, typesPanicResolver{info})

	deferred := deferredUnlocks(info, body)

	// Forward fixpoint: in[b] = union of out[preds]; out[b] = transfer(b).
	in := make([]map[string]lockState, len(g.blocks))
	out := make([]map[string]lockState, len(g.blocks))
	preds := g.preds()
	changed := true
	for changed {
		changed = false
		for _, b := range g.blocks {
			ib := map[string]lockState{}
			for _, p := range preds[b] {
				mergeLocks(ib, out[p.index])
			}
			in[b.index] = ib
			ob := transferLocks(info, b, copyLocks(ib), nil)
			if !statesEqual(out[b.index], ob) {
				out[b.index] = ob
				changed = true
			}
		}
	}

	// Reachability from entry: dead blocks carry no meaningful state.
	reachable := map[*cfgBlock]bool{g.entry: true}
	stack := []*cfgBlock{g.entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}

	// Final pass with stable in-states: report mode mismatches once.
	seen := map[string]bool{}
	mismatch := func(op lockOp, held lockState) {
		key := fmt.Sprintf("%d-%s", op.pos, op.display)
		if seen[key] {
			return
		}
		seen[key] = true
		report(op.pos, "%s.%s() releases a lock acquired with %s (mode mismatch corrupts the RWMutex state)",
			op.display, op.mode.release(), held.mode.acquire())
	}
	for _, b := range g.blocks {
		if !reachable[b] {
			continue
		}
		transferLocks(info, b, copyLocks(in[b.index]), mismatch)
	}

	// Exit check: anything still held at the synthetic exit without a
	// matching deferred release leaks out of the function.
	exitIn := map[string]lockState{}
	for _, p := range preds[g.exit] {
		if reachable[p] {
			mergeLocks(exitIn, out[p.index])
		}
	}
	for _, held := range sortedLockKeys(exitIn) {
		display, st := held.display, held.state
		if mode, ok := deferred[held.key]; ok {
			if mode != st.mode {
				report(st.pos, "%s.%s() is released by a deferred %s (mode mismatch corrupts the RWMutex state)",
					display, st.mode.acquire(), mode.release())
			}
			continue
		}
		report(st.pos, "%s.%s() is not released on every path out of %s; unlock on each return path or defer the %s",
			display, st.mode.acquire(), funcName, st.mode.release())
	}
}

// heldLock pairs a key with its state for deterministic exit reporting.
type heldLock struct {
	key     string
	display string
	state   lockState
}

// sortedLockKeys orders the exit-held set by acquire position so repeated
// runs report identically.
func sortedLockKeys(m map[string]lockState) []heldLock {
	out := make([]heldLock, 0, len(m))
	for k, st := range m {
		out = append(out, heldLock{key: k, display: displayOfKey(k), state: st})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].state.pos < out[j-1].state.pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// lockKey canonicalizes the receiver expression of a mutex call into a
// stable key plus a display string: "e.incMu" keyed against the root
// object's identity so shadowed names stay distinct. Untrackable receivers
// (map entries, call results) return "".
func lockKey(info *types.Info, e ast.Expr) (key, display string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil {
			return "", ""
		}
		return fmt.Sprintf("%d|%s", obj.Pos(), x.Name), x.Name
	case *ast.SelectorExpr:
		baseKey, baseDisp := lockKey(info, x.X)
		if baseKey == "" {
			return "", ""
		}
		return baseKey + "." + x.Sel.Name, baseDisp + "." + x.Sel.Name
	case *ast.StarExpr:
		return lockKey(info, x.X)
	}
	return "", ""
}

// displayOfKey strips the root-object position prefix from a lock key.
func displayOfKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[i+1:]
		}
	}
	return key
}

// mutexOpOf recognizes a call as a sync.Mutex/RWMutex Lock family method
// (including promoted embedded mutexes, which still resolve to the sync
// method object).
func mutexOpOf(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	recvName := ""
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	if named, isNamed := rt.(*types.Named); isNamed {
		recvName = named.Obj().Name()
	}
	if recvName != "Mutex" && recvName != "RWMutex" {
		return lockOp{}, false
	}
	op := lockOp{pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		op.mode, op.acquire = lockWrite, true
	case "Unlock":
		op.mode, op.acquire = lockWrite, false
	case "RLock":
		op.mode, op.acquire = lockRead, true
	case "RUnlock":
		op.mode, op.acquire = lockRead, false
	default:
		return lockOp{}, false // TryLock etc.: may-acquire, untracked
	}
	op.key, op.display = lockKey(info, sel.X)
	return op, true
}

// transferLocks applies one block's statements to the held-lock state.
// onMismatch, when non-nil, receives mode-mismatched releases.
func transferLocks(info *types.Info, b *cfgBlock, state map[string]lockState, onMismatch func(lockOp, lockState)) map[string]lockState {
	for _, st := range b.stmts {
		shallowInspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, ok := mutexOpOf(info, call)
			if !ok || op.key == "" {
				return true
			}
			if op.acquire {
				state[op.key] = lockState{mode: op.mode, pos: op.pos}
				return true
			}
			if held, ok := state[op.key]; ok {
				if held.mode != op.mode && onMismatch != nil {
					onMismatch(op, held)
				}
				delete(state, op.key)
			}
			// Releasing a lock this function never acquired is a caller's
			// lock being handed back: legal, untracked.
			return true
		})
	}
	return state
}

// shallowInspect walks the parts of st that execute within its own basic
// block: compound statements contribute only their governing expressions
// (bodies live in other blocks), and function literal bodies are excluded
// (they run elsewhere, and are analyzed as functions of their own).
func shallowInspect(st ast.Stmt, f func(ast.Node) bool) {
	prune := func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return f(n)
	}
	switch s := st.(type) {
	case *ast.IfStmt:
		ast.Inspect(s.Cond, prune)
	case *ast.ForStmt:
		if s.Cond != nil {
			ast.Inspect(s.Cond, prune)
		}
	case *ast.RangeStmt:
		ast.Inspect(s.X, prune)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			ast.Inspect(s.Tag, prune)
		}
	case *ast.TypeSwitchStmt:
		ast.Inspect(s.Assign, prune)
	case *ast.SelectStmt:
		// Comm clauses are emitted into their own blocks.
	case *ast.DeferStmt:
		// Deferred effects are handled flow-insensitively; argument
		// evaluation cannot contain a mutex op worth tracking.
	default:
		ast.Inspect(st, prune)
	}
}

// deferredUnlocks collects the releases registered by defer statements
// anywhere in body: `defer mu.Unlock()` directly, or inside a deferred
// function literal. Flow-insensitive by design (conservative: a
// conditional defer counts as always releasing).
func deferredUnlocks(info *types.Info, body *ast.BlockStmt) map[string]lockMode {
	out := map[string]lockMode{}
	record := func(call *ast.CallExpr) {
		if op, ok := mutexOpOf(info, call); ok && !op.acquire && op.key != "" {
			out[op.key] = op.mode
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		// Defers inside nested function literals belong to the literal,
		// not to this function; the literal is analyzed on its own.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		record(ds.Call)
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
		}
		return false // ds.Call's own subtree handled above
	})
	return out
}

func mergeLocks(dst, src map[string]lockState) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

func copyLocks(src map[string]lockState) map[string]lockState {
	dst := make(map[string]lockState, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func statesEqual(a, b map[string]lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v.mode != w.mode || v.pos != w.pos {
			return false
		}
	}
	return true
}

// ---- lock copies ----

// lockBearingTypes are the sync types whose values must not be copied
// after first use.
var lockBearingTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Cond": true,
	"WaitGroup": true, "Once": true, "Pool": true, "Map": true,
}

// containsLockType reports whether t is, or transitively contains (through
// struct and array fields, not pointers), a sync lock type.
func containsLockType(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockBearingTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockType(u.Elem(), depth+1)
	}
	return false
}

// freshLockValue reports whether e creates a brand-new value (composite
// literal or conversion of one) rather than copying an existing lock.
func freshLockValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// Conversions like T(T{}) are rare; treat call results as fresh —
		// a function returning a lock by value is its author's problem at
		// the return site, which this pass also checks.
		_ = x
		return true
	}
	return false
}

// checkLockCopies flags expressions that copy a lock-bearing value:
// assignment sources, call arguments, return values, and range clauses
// over containers of lock-bearing elements.
func checkLockCopies(pkg *Package, file *ast.File, report reportFunc) {
	info := pkg.Info
	flag := func(e ast.Expr, what string) {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return
		}
		if !containsLockType(tv.Type, 0) || freshLockValue(e) {
			return
		}
		report(e.Pos(), "%s copies a value containing a sync lock (%s); use a pointer", what, tv.Type.String())
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				flag(rhs, "assignment")
			}
		case *ast.CallExpr:
			if fn := funcObjOf(info, s.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				return true // the methods themselves (mu.Lock()) don't copy
			}
			for _, arg := range s.Args {
				flag(arg, "call argument")
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				flag(res, "return")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[s.X]; ok && tv.Type != nil {
				switch u := tv.Type.Underlying().(type) {
				case *types.Slice:
					if s.Value != nil && containsLockType(u.Elem(), 0) {
						report(s.Value.Pos(), "range value copies an element containing a sync lock; iterate by index")
					}
				case *types.Array:
					if s.Value != nil && containsLockType(u.Elem(), 0) {
						report(s.Value.Pos(), "range value copies an element containing a sync lock; iterate by index")
					}
				}
			}
		}
		return true
	})
}
