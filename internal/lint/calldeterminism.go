package lint

// calldeterminism: the determinism rule, extended from direct calls to
// call-graph reachability. The per-package determinism rule only sees
// time.Now written inside the scoped solver packages; nothing stopped a
// solver function from calling a helper in an unscoped package that reads
// the wall clock two hops away. This analyzer walks the module call graph
// from the solve entry points (Config.CalldeterminismEntries) and flags
// any transitively reachable call to the forbidden wall-clock readers or
// global math/rand functions, printing the call path from the entry point
// so the diagnostic explains itself:
//
//	solve path solver.Solve → buildModel → topology.Stamp reaches time.Now
//
// The internal/clock seam is the single sanctioned wall-clock reader:
// traversal does not descend into ras/internal/clock, so routing timing
// through the seam is exactly what makes a path legal.
//
// This is a module-level analyzer: it runs once over all loaded packages
// (see moduleAnalyzers in lint.go) because reachability cannot be decided
// one package at a time.

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// clockSeamPath is the one package allowed to read the wall clock.
const clockSeamPath = "ras/internal/clock"

// defaultSolveEntryPoints are the solve entry points of this module: the
// public Solve seams of the façade, the backend interface (expanded to
// every implementation), and the engines underneath.
var defaultSolveEntryPoints = []string{
	"ras.System.Solve",
	"ras.System.SolveWith",
	"ras/internal/backend.Backend.Solve",
	"ras/internal/solver.Solve",
	"ras/internal/solver.SolveWarm",
	"ras/internal/solver.RepairTargets",
	"ras/internal/solver.Evaluate",
	"ras/internal/partition.Split",
	"ras/internal/partition.SplitDemands",
	"ras/internal/mip.Model.Solve",
	"ras/internal/localsearch.Solve",
	"ras/internal/lp.Problem.Solve",
}

func (c *Config) calldeterminismEntries() []string {
	if c.CalldeterminismEntries != nil {
		return c.CalldeterminismEntries
	}
	return defaultSolveEntryPoints
}

func runCalldeterminism(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	g := mf.graph

	// Resolve entry points. Patterns naming packages outside the loaded
	// set are silently inert so `raslint internal/mip` still works.
	type queued struct {
		node *cgNode
		// trail is the display-name path from the entry point, inclusive.
		trail []string
	}
	var queue []queued
	seen := map[*cgNode]bool{}
	for _, pattern := range cfg.calldeterminismEntries() {
		spec, err := parseEntrySpec(pattern)
		if err != nil {
			continue // validated by the driver; unreachable under raslint
		}
		for _, fn := range g.resolveEntry(pkgs, spec) {
			if node, ok := g.nodes[fn]; ok && !seen[node] {
				seen[node] = true
				queue = append(queue, queued{node, []string{funcDisplayName(fn)}})
			}
		}
	}

	// One finding per (calling function, forbidden callee): the shortest
	// path wins because the walk is breadth-first.
	reported := map[string]bool{}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, call := range sortedCalls(q.node) {
			callee := call.callee
			if forbidden, what := forbiddenNondeterminism(callee); forbidden {
				key := funcDisplayName(q.node.fn) + "|" + what
				if reported[key] {
					continue
				}
				reported[key] = true
				report(q.node.pkg, call.pos, "solve path %s reaches %s; route timing through internal/clock or thread a seeded *rand.Rand",
					strings.Join(q.trail, " → ")+" → "+what, what)
				continue
			}
			targets := []*cgNodeRef{}
			if isInterfaceMethod(callee) {
				for _, impl := range g.implementations(callee) {
					if node, ok := g.nodes[impl]; ok {
						targets = append(targets, &cgNodeRef{node, funcDisplayName(impl)})
					}
				}
			} else if node, ok := g.nodes[callee]; ok {
				targets = append(targets, &cgNodeRef{node, funcDisplayName(callee)})
			}
			for _, t := range targets {
				if t.node.pkg.Path == clockSeamPath {
					continue // the sanctioned seam
				}
				if seen[t.node] {
					continue
				}
				seen[t.node] = true
				trail := append(append([]string(nil), q.trail...), t.display)
				queue = append(queue, queued{t.node, trail})
			}
		}
	}
}

type cgNodeRef struct {
	node    *cgNode
	display string
}

// sortedCalls orders a node's calls by source position so the BFS (and
// therefore the chosen shortest paths) is deterministic.
func sortedCalls(n *cgNode) []callSite {
	calls := append([]callSite(nil), n.calls...)
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })
	return calls
}

// forbiddenNondeterminism classifies a callee as a wall-clock read or a
// global math/rand draw. Methods (e.g. (*rand.Rand).Intn on a seeded
// source) are never forbidden.
func forbiddenNondeterminism(fn *types.Func) (bool, string) {
	if fn.Pkg() == nil {
		return false, ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false, ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			return true, "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			return true, fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return false, ""
}
