package lint

// The testdata corpus under testdata/src/ is the analyzers' own unit test:
// each fixture package is loaded under a synthetic import path (so scope
// matching is exercised) and checked against `// want `regex`` expectations.
// Every diagnostic must be claimed by exactly one want on its line, and every
// want must be claimed by a diagnostic — unexpected findings and missed
// findings both fail.

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts `want `regex“ expectations from comment text. Block
// comments participate too: the directive fixtures need the expectation and
// the (line-comment) directive under test on the same line.
var wantRe = regexp.MustCompile("want `([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func TestAnalyzersAgainstTestdata(t *testing.T) {
	loader, err := NewLoaderAt(filepath.Join("testdata", "src"), "ras-lint-testdata")
	if err != nil {
		t.Fatalf("NewLoaderAt: %v", err)
	}
	cases := []struct {
		dir        string
		importPath string
		// cfg overrides the default empty Config for fixtures that exercise
		// configured behavior (entry points, stale detection).
		cfg *Config
	}{
		// Positive fixtures load under in-scope paths; _out fixtures load
		// under out-of-scope paths and assert silence.
		{dir: "determinism", importPath: "ras/internal/mip"},
		{dir: "determinism_out", importPath: "ras/internal/experiments"},
		{dir: "mapiter", importPath: "ras/internal/solver"},
		{dir: "mapiter_out", importPath: "ras/internal/metrics"},
		{dir: "ctxflow", importPath: "ras/internal/broker"},
		{dir: "floatcmp", importPath: "ras/internal/lp"},
		{dir: "floatcmp_out", importPath: "ras/internal/topology"},
		{dir: "errdrop", importPath: "ras/internal/placer"},
		{dir: "directives", importPath: "ras/internal/directives"},
		{dir: "lockcheck", importPath: "ras/internal/lockcheck"},
		{dir: "leakcheck", importPath: "ras/internal/mip"},
		{dir: "leakcheck_out", importPath: "ras/internal/metrics"},
		{dir: "calldeterminism", importPath: "ras/internal/app",
			cfg: &Config{CalldeterminismEntries: []string{"ras/internal/app.Solve"}}},
		{dir: "globalwrite", importPath: "ras/internal/mip",
			cfg: &Config{GlobalwriteEntries: []string{"ras/internal/mip.Solve"}}},
		{dir: "globalwrite_out", importPath: "ras/internal/metrics",
			cfg: &Config{GlobalwriteEntries: []string{"ras/internal/metrics.Solve"}}},
		{dir: "aliascheck", importPath: "ras/internal/lp"},
		{dir: "aliascheck_out", importPath: "ras/internal/topology"},
		{dir: "sharedwrite", importPath: "ras/internal/backend"},
		{dir: "sharedwrite_out", importPath: "ras/internal/topology"},
		{dir: "stale", importPath: "ras/internal/stale", cfg: &Config{Stale: true}},
		{dir: "nanguard", importPath: "ras/internal/lp"},
		{dir: "nanguard_out", importPath: "ras/internal/topology"},
		{dir: "deadstore", importPath: "ras/internal/solver"},
		{dir: "deadstore_out", importPath: "ras/internal/metrics"},
		{dir: "boundsproof", importPath: "ras/internal/lp"},
		{dir: "boundsproof_out", importPath: "ras/internal/topology"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := loader.Load(filepath.Join("testdata", "src", tc.dir), tc.importPath)
			if err != nil {
				t.Fatalf("loading testdata/src/%s: %v", tc.dir, err)
			}
			wants := collectWants(t, pkg)
			cfg := tc.cfg
			if cfg == nil {
				cfg = &Config{}
			}
			diags := Run(cfg, []*Package{pkg})
			for _, d := range diags {
				claimed := false
				for _, w := range wants {
					if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
						w.hit = true
						claimed = true
						break
					}
				}
				if !claimed {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}
