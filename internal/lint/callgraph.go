package lint

// Module-wide call graph over the loaded packages. The calldeterminism
// analyzer needs reachability ("can a solve entry point transitively hit
// time.Now?"), which no per-function walk can answer.
//
// Resolution policy, conservative in the only direction that matters for a
// linter (extra edges, never missing ones we can compute):
//
//   - Static calls: an *ast.Ident or *ast.SelectorExpr callee resolves to
//     its *types.Func; calls into packages we did not load (the standard
//     library) become terminal edges carrying just the callee object.
//   - Method sets: a call through an interface method adds edges to every
//     method of every named module type whose (pointer) method set
//     implements the interface — the classic class-hierarchy analysis
//     approximation.
//   - Function values: a call through a variable, field, or parameter of
//     function type cannot be resolved and produces no edge. The damage is
//     bounded because function literals are attributed to the function
//     that lexically encloses them: `go func(){...}()` and stored closures
//     contribute their bodies to the enclosing declaration's node, so
//     their calls stay reachable whenever the declaring function is.
//     Escaping named functions passed as values are the remaining blind
//     spot, documented in DESIGN.md as a known false-negative class.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callSite is one resolved outgoing call.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

// cgNode is one module function with a body.
type cgNode struct {
	fn    *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	calls []callSite
}

// callGraph indexes the module's functions and their resolved calls.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	// moduleTypes are the named non-interface types declared anywhere in
	// the loaded packages, for interface-method expansion.
	moduleTypes []*types.Named
}

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*cgNode{}}
	for _, pkg := range pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
					g.moduleTypes = append(g.moduleTypes, named)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &cgNode{fn: fn, pkg: pkg, decl: fd}
				collectCalls(pkg.Info, fd.Body, node)
				g.nodes[fn] = node
			}
		}
	}
	// Deterministic type order for interface expansion.
	sort.Slice(g.moduleTypes, func(i, j int) bool {
		return typeKey(g.moduleTypes[i]) < typeKey(g.moduleTypes[j])
	})
	return g
}

func typeKey(n *types.Named) string {
	obj := n.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name()
}

// collectCalls records every statically resolvable call under n, including
// calls inside function literals (attributed to the enclosing declaration).
func collectCalls(info *types.Info, body ast.Node, node *cgNode) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcObjOf(info, call.Fun); fn != nil {
			node.calls = append(node.calls, callSite{callee: fn, pos: call.Pos()})
		}
		return true
	})
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementations expands an interface method to the concrete module
// methods that can stand behind it, in deterministic order.
func (g *callGraph) implementations(fn *types.Func) []*types.Func {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range g.moduleTypes {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// funcDisplayName renders fn for diagnostics: pkg.Func, pkg.Type.Method,
// or pkg.(*Type).Method, matching how a reader would grep for it.
func funcDisplayName(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgName + fn.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
		ptr = "*"
	}
	base := recv.String()
	if named, isNamed := recv.(*types.Named); isNamed {
		base = named.Obj().Name()
	}
	if ptr != "" {
		return fmt.Sprintf("%s(*%s).%s", pkgName, base, fn.Name())
	}
	return pkgName + base + "." + fn.Name()
}

// entrySpec is one parsed entry-point pattern: "pkgpath.Func" or
// "pkgpath.Type.Method" (interface types expand to implementations).
type entrySpec struct {
	pkgPath string
	typ     string // "" for package-level functions
	name    string
}

// parseEntrySpec splits an entry-point pattern. The import path runs
// through the last '/'; the dotted tail is pkgname.Func or
// pkgname.Type.Method.
func parseEntrySpec(s string) (entrySpec, error) {
	slash := strings.LastIndex(s, "/")
	head, tail := "", s
	if slash >= 0 {
		head, tail = s[:slash+1], s[slash+1:]
	}
	parts := strings.Split(tail, ".")
	switch len(parts) {
	case 2:
		return entrySpec{pkgPath: head + parts[0], name: parts[1]}, nil
	case 3:
		return entrySpec{pkgPath: head + parts[0], typ: parts[1], name: parts[2]}, nil
	}
	return entrySpec{}, fmt.Errorf("entry point %q: want pkgpath.Func or pkgpath.Type.Method", s)
}

// resolveEntry finds the functions an entry spec names among the loaded
// packages: one package-level function, one concrete method, or — for an
// interface method — every module implementation of it.
func (g *callGraph) resolveEntry(pkgs []*Package, spec entrySpec) []*types.Func {
	for _, pkg := range pkgs {
		if pkg.Path != spec.pkgPath {
			continue
		}
		scope := pkg.Pkg.Scope()
		if spec.typ == "" {
			if fn, ok := scope.Lookup(spec.name).(*types.Func); ok {
				return []*types.Func{fn}
			}
			return nil
		}
		tn, ok := scope.Lookup(spec.typ).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil
		}
		if types.IsInterface(named) {
			obj, _, _ := types.LookupFieldOrMethod(named, true, pkg.Pkg, spec.name)
			if m, ok := obj.(*types.Func); ok {
				return g.implementations(m)
			}
			return nil
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pkg.Pkg, spec.name)
		if m, ok := obj.(*types.Func); ok {
			return []*types.Func{m}
		}
	}
	return nil
}
