package lint

// //raslint:allow directives: the escape hatch for findings that are
// intentional. The syntax is
//
//	//raslint:allow <rule> <reason...>
//
// where <rule> names one of the analyzers (or "directive" itself) and the
// reason is mandatory free text — an unexplained suppression is exactly the
// kind of mystery this linter exists to prevent. A directive written at the
// end of a code line suppresses matching findings on that line; a directive
// on a line of its own suppresses them on the line that follows.
//
// Malformed directives (missing rule, unknown rule, missing reason, unknown
// raslint verb) are themselves reported under the "directive" rule: a typo'd
// suppression must fail the build, not silently stop suppressing.

import (
	"fmt"
	"go/ast"
	"go/scanner"
	"go/token"
	"os"
	"sort"
	"strings"
)

const directivePrefix = "//raslint:"

// allowDirective is one parsed, well-formed //raslint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	// line is the line the directive suppresses findings on.
	line int
	pos  token.Pos
}

// directiveSet indexes the allow directives of one package by file and line.
type directiveSet struct {
	// allows maps file name → line → rules allowed on that line.
	allows map[string]map[int]map[string]bool
}

func (d *directiveSet) allowed(pos token.Position, rule string) bool {
	if d == nil {
		return false
	}
	lines := d.allows[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][rule]
}

// parseDirectives scans every comment of pkg for raslint directives,
// reporting malformed ones through report and returning the index of valid
// suppressions. knownRules guards against suppressing rules that do not
// exist.
func parseDirectives(pkg *Package, knownRules map[string]bool, report func(pos token.Pos, rule, format string, args ...any)) *directiveSet {
	set := &directiveSet{allows: map[string]map[int]map[string]bool{}}
	for _, file := range pkg.Files {
		// Lines of this file that contain code, for the end-of-line vs
		// standalone distinction.
		codeLines := fileCodeLines(pkg.Fset, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok, err := parseDirective(pkg.Fset, c, knownRules, codeLines)
				if err != nil {
					report(c.Pos(), "directive", "%v", err)
					continue
				}
				if !ok {
					continue
				}
				lines := set.allows[pkg.Fset.Position(d.pos).Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set.allows[pkg.Fset.Position(d.pos).Filename] = lines
				}
				rules := lines[d.line]
				if rules == nil {
					rules = map[string]bool{}
					lines[d.line] = rules
				}
				rules[d.rule] = true
			}
		}
	}
	return set
}

// parseDirective parses one comment. ok reports whether it was a valid allow
// directive; err reports a malformed one (which is not ok).
func parseDirective(fset *token.FileSet, c *ast.Comment, knownRules map[string]bool, codeLines map[int]bool) (allowDirective, bool, error) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return allowDirective{}, false, nil
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb != "allow" {
		return allowDirective{}, false, fmt.Errorf("unknown raslint directive %q (only \"allow\" exists)", verb)
	}
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return allowDirective{}, false, fmt.Errorf("raslint:allow needs a rule name: //raslint:allow <rule> <reason>")
	}
	rule := fields[0]
	if !knownRules[rule] {
		return allowDirective{}, false, fmt.Errorf("raslint:allow names unknown rule %q (known: %s)", rule, strings.Join(sortedRuleNames(knownRules), ", "))
	}
	if len(fields) < 2 {
		return allowDirective{}, false, fmt.Errorf("raslint:allow %s needs a reason: //raslint:allow %s <reason>", rule, rule)
	}
	pos := fset.Position(c.Pos())
	line := pos.Line
	if !codeLines[line] {
		// Standalone comment line: the suppression applies to the next line.
		line++
	}
	return allowDirective{rule: rule, reason: strings.Join(fields[1:], " "), line: line, pos: c.Pos()}, true, nil
}

// fileCodeLines reports the set of lines of file that contain at least one
// non-comment token, so a directive can tell "end of a code line" from "line
// of its own". It rescans the file source: the AST does not preserve every
// punctuation token (a lone "}" or "break" line has no leaf node).
func fileCodeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	tf := fset.File(file.Pos())
	if tf == nil {
		return lines
	}
	src, err := os.ReadFile(tf.Name())
	if err != nil {
		return lines
	}
	var sc scanner.Scanner
	// A fresh FileSet keeps the scan from perturbing the shared one.
	scanFile := token.NewFileSet().AddFile(tf.Name(), -1, len(src))
	sc.Init(scanFile, src, nil, 0)
	for {
		pos, tok, _ := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.COMMENT || tok == token.SEMICOLON {
			continue // auto-inserted semicolons don't make a line "code"
		}
		lines[scanFile.Position(pos).Line] = true
	}
	return lines
}

func sortedRuleNames(rules map[string]bool) []string {
	names := make([]string, 0, len(rules))
	for name := range rules {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
