package lint

// //raslint:allow directives: the escape hatch for findings that are
// intentional. The syntax is
//
//	//raslint:allow <rule> <reason...>
//
// where <rule> names one of the analyzers (or "directive" itself) and the
// reason is mandatory free text — an unexplained suppression is exactly the
// kind of mystery this linter exists to prevent. A directive written at the
// end of a code line suppresses matching findings on that line; a directive
// on a line of its own suppresses them on the line that follows.
//
// Malformed directives (missing rule, unknown rule, missing reason, unknown
// raslint verb) are themselves reported under the "directive" rule: a typo'd
// suppression must fail the build, not silently stop suppressing.

import (
	"fmt"
	"go/ast"
	"go/scanner"
	"go/token"
	"os"
	"sort"
	"strings"
)

const directivePrefix = "//raslint:"

// allowDirective is one parsed, well-formed //raslint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	// file and line locate the line the directive suppresses findings on.
	file string
	line int
	pos  token.Pos
	// hit records whether this directive suppressed at least one finding in
	// the current run; an unhit directive is stale (Config.Stale).
	hit bool
}

// directiveSet indexes allow directives by file and line. One set spans the
// whole run: module-level analyzers report across package boundaries, so
// suppression lookup must too.
type directiveSet struct {
	// allows maps file name → line → rule → directive on that line.
	allows map[string]map[int]map[string]*allowDirective
	// list holds every directive in the order encountered, for
	// deterministic stale reporting.
	list []*allowDirective
}

func newDirectiveSet() *directiveSet {
	return &directiveSet{allows: map[string]map[int]map[string]*allowDirective{}}
}

// allowed reports whether a finding of rule at pos is suppressed, and marks
// the suppressing directive as hit.
func (d *directiveSet) allowed(pos token.Position, rule string) bool {
	if d == nil {
		return false
	}
	lines := d.allows[pos.Filename]
	if lines == nil {
		return false
	}
	ad := lines[pos.Line][rule]
	if ad == nil {
		return false
	}
	ad.hit = true
	return true
}

// merge folds src into d, preserving the first-wins duplicate policy: a
// directive already present for the same file, line, and rule keeps the
// existing entry (the one findings mark hit). Used to combine the
// per-package sets produced by concurrent analysis in package order.
func (d *directiveSet) merge(src *directiveSet) {
	for _, ad := range src.list {
		filename := ad.file
		lines := d.allows[filename]
		if lines == nil {
			lines = map[int]map[string]*allowDirective{}
			d.allows[filename] = lines
		}
		rules := lines[ad.line]
		if rules == nil {
			rules = map[string]*allowDirective{}
			lines[ad.line] = rules
		}
		if rules[ad.rule] != nil {
			continue
		}
		rules[ad.rule] = ad
		d.list = append(d.list, ad)
	}
}

// parseDirectives scans every comment of pkg for raslint directives,
// reporting malformed ones through report and adding valid suppressions to
// set. knownRules guards against suppressing rules that do not exist.
func parseDirectives(pkg *Package, knownRules map[string]bool, set *directiveSet, report func(pos token.Pos, rule, format string, args ...any)) {
	for _, file := range pkg.Files {
		// Lines of this file that contain code, for the end-of-line vs
		// standalone distinction.
		codeLines := fileCodeLines(pkg.Fset, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok, err := parseDirective(pkg.Fset, c, knownRules, codeLines)
				if err != nil {
					report(c.Pos(), "directive", "%v", err)
					continue
				}
				if !ok {
					continue
				}
				filename := pkg.Fset.Position(d.pos).Filename
				d.file = filename
				lines := set.allows[filename]
				if lines == nil {
					lines = map[int]map[string]*allowDirective{}
					set.allows[filename] = lines
				}
				rules := lines[d.line]
				if rules == nil {
					rules = map[string]*allowDirective{}
					lines[d.line] = rules
				}
				if rules[d.rule] != nil {
					// Duplicate directive for the same rule and line (a
					// test package re-parsing its non-test files lands
					// here too): keep the first, which is the one findings
					// will mark hit.
					continue
				}
				ad := d
				rules[ad.rule] = &ad
				set.list = append(set.list, &ad)
			}
		}
	}
}

// parseDirective parses one comment. ok reports whether it was a valid allow
// directive; err reports a malformed one (which is not ok).
func parseDirective(fset *token.FileSet, c *ast.Comment, knownRules map[string]bool, codeLines map[int]bool) (allowDirective, bool, error) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return allowDirective{}, false, nil
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb != "allow" {
		return allowDirective{}, false, fmt.Errorf("unknown raslint directive %q (only \"allow\" exists)", verb)
	}
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return allowDirective{}, false, fmt.Errorf("raslint:allow needs a rule name: //raslint:allow <rule> <reason>")
	}
	rule := fields[0]
	if !knownRules[rule] {
		return allowDirective{}, false, fmt.Errorf("raslint:allow names unknown rule %q (known: %s)", rule, strings.Join(sortedRuleNames(knownRules), ", "))
	}
	if len(fields) < 2 {
		return allowDirective{}, false, fmt.Errorf("raslint:allow %s needs a reason: //raslint:allow %s <reason>", rule, rule)
	}
	pos := fset.Position(c.Pos())
	line := pos.Line
	if !codeLines[line] {
		// Standalone comment line: the suppression applies to the next line.
		line++
	}
	return allowDirective{rule: rule, reason: strings.Join(fields[1:], " "), line: line, pos: c.Pos()}, true, nil
}

// fileCodeLines reports the set of lines of file that contain at least one
// non-comment token, so a directive can tell "end of a code line" from "line
// of its own". It rescans the file source: the AST does not preserve every
// punctuation token (a lone "}" or "break" line has no leaf node).
func fileCodeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	tf := fset.File(file.Pos())
	if tf == nil {
		return lines
	}
	src, err := os.ReadFile(tf.Name())
	if err != nil {
		return lines
	}
	var sc scanner.Scanner
	// A fresh FileSet keeps the scan from perturbing the shared one.
	scanFile := token.NewFileSet().AddFile(tf.Name(), -1, len(src))
	sc.Init(scanFile, src, nil, 0)
	for {
		pos, tok, _ := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.COMMENT || tok == token.SEMICOLON {
			continue // auto-inserted semicolons don't make a line "code"
		}
		lines[scanFile.Position(pos).Line] = true
	}
	return lines
}

func sortedRuleNames(rules map[string]bool) []string {
	names := make([]string, 0, len(rules))
	for name := range rules {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
