package lint

// Interprocedural write-effect and aliasing summaries. The rasd solver
// service and multi-region scale-out put the solver's shared state
// (workspaces, warm-start snapshots, partition plans) under real
// concurrency; `go test -race` only catches interleavings that actually
// happen, so the globalwrite/aliascheck/sharedwrite rules need a static
// answer to "what does this function write, and what escapes it?".
//
// For every function with a body in the loaded packages, this file computes
// an effectSummary over three fact families:
//
//   - package-level writes: module package-level variables the function
//     stores to, directly or by handing one to a mutating callee;
//   - parameter mutations: parameters (receiver included, index 0) whose
//     caller-visible state the function writes through a pointer deref,
//     slice-element store, or map store;
//   - escapes: reference-typed parameters the function returns, stores into
//     longer-lived state (a field reachable from a pointer parameter, a
//     package-level variable, a channel), or hands to a `go`-launched
//     closure.
//
// The lattice is three monotone fact sets per function (sets of written
// globals, mutated parameter indices, escaping parameter indices); join is
// set union; transfer applies a callee's summary to the caller's argument
// roots at each recorded call site. Facts only ever grow, so iterating the
// per-function transfer over the CHA call graph to a fixpoint terminates
// (the lattice is finite: bounded by the module's globals and each
// function's arity).
//
// Root resolution is a flow-insensitive may-alias analysis per function:
// every local of reference type (pointer, slice, map, chan) accumulates the
// roots — parameter indices and module globals — of everything assigned to
// it, iterated to a local fixpoint so chains (`x := p; y := x`) resolve.
// Conservative choices, in the only direction a linter can afford (extra
// facts for tracked names, documented blindness elsewhere):
//
//   - Calls through function values produce no facts, mirroring the call
//     graph's documented false-negative class (DESIGN.md); a named function
//     escaping as a value is invisible here too.
//   - Unknown callees (stdlib, unresolved) are assumed to mutate their
//     pointer receiver and explicit pointer-typed arguments, and nothing
//     else: `mu.Lock()`, `h.Write(p)`, and the atomics under
//     internal/metrics all register as receiver mutations without their
//     source being loaded.
//   - A callee returning its own parameter does not propagate as an escape
//     (the value flows back into the caller's frame); identity-returning
//     helpers are therefore a known false negative for aliasing.
//   - Function literals are attributed to the lexically enclosing
//     declaration, matching the call graph; writes inside a `go`-launched
//     literal are tagged so aliascheck can tell the launcher's writes from
//     the goroutine's own (sharedwrite's subject).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// escapeKind classifies how a parameter leaves its function's frame.
type escapeKind byte

const (
	escNone   escapeKind = iota
	escReturn            // returned to the caller
	escStore             // stored into longer-lived state or sent on a channel
	escGo                // captured by (or passed to) a go-launched function
)

func (k escapeKind) String() string {
	switch k {
	case escReturn:
		return "returned"
	case escStore:
		return "stored"
	case escGo:
		return "captured by a goroutine"
	}
	return "none"
}

// paramEffect is one parameter's slot in a summary.
type paramEffect struct {
	mutated bool
	mutPos  token.Pos
	escape  escapeKind
	escPos  token.Pos
}

// globalWriteFact records one module package-level variable write.
type globalWriteFact struct {
	pos token.Pos
	// via names the mutating callee for call-induced writes, "" for a
	// direct store.
	via string
}

// effectSummary is the interprocedural fact set of one function.
type effectSummary struct {
	// params lists the receiver (when present) followed by the signature
	// parameters; effects is parallel to it.
	params  []*types.Var
	effects []paramEffect
	// globals maps each written module package-level variable to the first
	// write recorded for it.
	globals map[*types.Var]globalWriteFact
}

// rootSet is the may-point-to abstraction: which parameters and module
// globals a value's backing store may belong to.
type rootSet struct {
	params  map[int]bool
	globals map[*types.Var]bool
}

func (r *rootSet) empty() bool {
	return r == nil || (len(r.params) == 0 && len(r.globals) == 0)
}

func (r *rootSet) addParam(i int) bool {
	if r.params == nil {
		r.params = map[int]bool{}
	}
	if r.params[i] {
		return false
	}
	r.params[i] = true
	return true
}

func (r *rootSet) addGlobal(v *types.Var) bool {
	if r.globals == nil {
		r.globals = map[*types.Var]bool{}
	}
	if r.globals[v] {
		return false
	}
	r.globals[v] = true
	return true
}

// merge unions src into r, reporting whether r grew.
func (r *rootSet) merge(src *rootSet) bool {
	if src == nil {
		return false
	}
	grew := false
	for i := range src.params {
		grew = r.addParam(i) || grew
	}
	for v := range src.globals {
		grew = r.addGlobal(v) || grew
	}
	return grew
}

// storeEscape is one aliasing event on a parameter, kept with its position
// and destination rendering so aliascheck can report it where it happens.
type storeEscape struct {
	param int
	kind  escapeKind
	pos   token.Pos
	// dest renders what the value was stored into / captured by.
	dest string
	// typ is the static type of the escaping value.
	typ types.Type
}

// writeEvent is one syntactic or call-induced write to a function-local
// variable, for aliascheck's escape-then-mutate check.
type writeEvent struct {
	pos token.Pos
	// insideGo marks writes lexically inside a go-launched function
	// literal: the goroutine's own writes, not the launcher's.
	insideGo bool
}

// summaryCall is one resolved call with argument roots in the callee's
// parameter space (receiver first).
type summaryCall struct {
	callee *types.Func
	pos    token.Pos
	// args[i] holds the roots of the expression bound to callee parameter
	// i; nil when the argument carries no tracked roots.
	args []*rootSet
	// argBase[i] is the caller-frame variable the argument is rooted at
	// (nil when untracked), for attributing call-induced mutations.
	argBase []*types.Var
	// insideGo marks calls lexically inside a go-launched literal.
	insideGo bool
}

// funcFacts is everything the intraprocedural pass learned about one
// function: its (growing) summary plus the per-site detail the aliasing
// rules report from.
type funcFacts struct {
	node    *cgNode
	sum     *effectSummary
	calls   []summaryCall
	stores  []storeEscape
	writes  map[*types.Var][]writeEvent
	goCaps  map[*types.Var]token.Pos
	goCapAt map[*types.Var]string // rendering of the capturing go statement's function
}

// moduleFacts bundles the call graph and the post-fixpoint summaries; one
// instance is shared by every module-level analyzer in a run.
type moduleFacts struct {
	graph      *callGraph
	modulePkgs map[*types.Package]bool
	facts      map[*types.Func]*funcFacts
	// order lists the functions in deterministic (position) order.
	order []*types.Func
	// va is the lazily-built value-dataflow layer (valuefacts.go), shared
	// by the value rules of one run.
	va *valueAnalysis
}

// buildModuleFacts runs the intraprocedural collector over every function
// and propagates summaries through the call graph to a fixpoint.
func buildModuleFacts(pkgs []*Package) *moduleFacts {
	mf := &moduleFacts{
		graph:      buildCallGraph(pkgs),
		modulePkgs: map[*types.Package]bool{},
		facts:      map[*types.Func]*funcFacts{},
	}
	for _, pkg := range pkgs {
		mf.modulePkgs[pkg.Pkg] = true
	}
	for _, node := range mf.graph.nodes {
		mf.facts[node.fn] = collectFuncFacts(mf, node)
	}
	for fn := range mf.facts {
		mf.order = append(mf.order, fn)
	}
	sort.Slice(mf.order, func(i, j int) bool { return mf.order[i].Pos() < mf.order[j].Pos() })
	mf.propagate()
	return mf
}

// summaryOf returns fn's summary, nil for functions without bodies.
func (mf *moduleFacts) summaryOf(fn *types.Func) *effectSummary {
	if ff, ok := mf.facts[fn]; ok {
		return ff.sum
	}
	return nil
}

// isModuleGlobal reports whether v is a package-level variable of a loaded
// module package.
func (mf *moduleFacts) isModuleGlobal(v *types.Var) bool {
	if v == nil || v.Pkg() == nil || !mf.modulePkgs[v.Pkg()] {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// refLike reports whether t can alias caller-visible backing store.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// bufferLike reports whether t is the mutable-backing class aliascheck
// polices: slices and maps. Pointer identity sharing is deliberate
// architecture (engines link to each other); a shared slice backing is the
// regression class the parallel engine already shipped once.
func bufferLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// paramVars lists fn's receiver (when present) followed by its parameters.
func paramVars(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// ---- intraprocedural collection ----

// funcCollector carries the per-function analysis state.
type funcCollector struct {
	mf      *moduleFacts
	node    *cgNode
	info    *types.Info
	ff      *funcFacts
	pindex  map[*types.Var]int
	aliases map[*types.Var]*rootSet
}

func collectFuncFacts(mf *moduleFacts, node *cgNode) *funcFacts {
	params := paramVars(node.fn)
	ff := &funcFacts{
		node:    node,
		sum:     &effectSummary{params: params, effects: make([]paramEffect, len(params)), globals: map[*types.Var]globalWriteFact{}},
		writes:  map[*types.Var][]writeEvent{},
		goCaps:  map[*types.Var]token.Pos{},
		goCapAt: map[*types.Var]string{},
	}
	c := &funcCollector{
		mf:      mf,
		node:    node,
		info:    node.pkg.Info,
		ff:      ff,
		pindex:  map[*types.Var]int{},
		aliases: map[*types.Var]*rootSet{},
	}
	for i, p := range params {
		c.pindex[p] = i
	}
	c.buildAliases(node.decl.Body)
	c.collectEffects(node.decl.Body)
	return ff
}

// varOf resolves an identifier to the variable it names.
func (c *funcCollector) varOf(id *ast.Ident) *types.Var {
	obj := c.info.ObjectOf(id)
	v, _ := obj.(*types.Var)
	return v
}

// buildAliases runs the flow-insensitive may-alias fixpoint: every
// reference-typed local accumulates the roots of everything assigned to it.
func (c *funcCollector) buildAliases(body ast.Node) {
	type edge struct {
		dst *types.Var
		src ast.Expr
	}
	var edges []edge
	addEdge := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v := c.varOf(id)
		if v == nil || !refLike(v.Type()) {
			return
		}
		edges = append(edges, edge{v, rhs})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					addEdge(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					addEdge(s.Names[i], s.Values[i])
				}
			}
		case *ast.RangeStmt:
			// Ranging a tracked container with reference-typed elements
			// aliases the loop variable to the container's roots
			// (`for _, e := range p { e.f = x }` mutates p's pointees).
			if s.Value != nil {
				if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok {
					if v := c.varOf(id); v != nil && refLike(v.Type()) {
						edges = append(edges, edge{v, s.X})
					}
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			roots := c.rootsOf(e.src)
			if roots.empty() {
				continue
			}
			dst := c.aliases[e.dst]
			if dst == nil {
				dst = &rootSet{}
				c.aliases[e.dst] = dst
			}
			if dst.merge(roots) {
				changed = true
			}
		}
	}
}

// rootsOf resolves the parameter/global roots an expression's backing store
// may belong to. Fresh values (literals, non-append call results) have none.
func (c *funcCollector) rootsOf(e ast.Expr) *rootSet {
	out := &rootSet{}
	c.addRoots(e, out, 0)
	return out
}

func (c *funcCollector) addRoots(e ast.Expr, out *rootSet, depth int) {
	if depth > 16 {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := c.varOf(x)
		if v == nil {
			return
		}
		if i, ok := c.pindex[v]; ok {
			out.addParam(i)
			return
		}
		if c.mf.isModuleGlobal(v) {
			out.addGlobal(v)
			return
		}
		out.merge(c.aliases[v])
	case *ast.SelectorExpr:
		// A package-qualified global is its own root; anything else roots
		// at the base of the selection chain.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := c.info.ObjectOf(id).(*types.PkgName); isPkg {
				if v, ok := c.info.ObjectOf(x.Sel).(*types.Var); ok && c.mf.isModuleGlobal(v) {
					out.addGlobal(v)
				}
				return
			}
		}
		c.addRoots(x.X, out, depth+1)
	case *ast.StarExpr:
		c.addRoots(x.X, out, depth+1)
	case *ast.IndexExpr:
		c.addRoots(x.X, out, depth+1)
	case *ast.SliceExpr:
		c.addRoots(x.X, out, depth+1)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			c.addRoots(x.X, out, depth+1)
		}
	case *ast.CallExpr:
		// append aliases its first argument's backing; appending elements
		// of reference type aliases those too. Conversions pass through.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, isB := c.info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && len(x.Args) > 0 {
				c.addRoots(x.Args[0], out, depth+1)
				if sl, ok := c.info.Types[x.Args[0]].Type.Underlying().(*types.Slice); ok && refLike(sl.Elem()) {
					for _, a := range x.Args[1:] {
						c.addRoots(a, out, depth+1)
					}
				}
				return
			}
		}
		if tv, ok := c.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			c.addRoots(x.Args[0], out, depth+1)
		}
	}
}

// lvalueBase resolves a written expression to its base variable and whether
// the written location is reached through an indirection (pointer deref,
// implicit deref in a field selection, slice/map element) — i.e. whether
// writing it mutates state the base variable merely points to.
func (c *funcCollector) lvalueBase(e ast.Expr) (v *types.Var, indirect bool) {
	return lvalueBaseOf(c.info, e)
}

// lvalueBaseOf is the info-parameterized form of lvalueBase, shared with
// sharedwrite's per-goroutine write classification.
func lvalueBaseOf(info *types.Info, e ast.Expr) (v *types.Var, indirect bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		bv, _ := info.ObjectOf(x).(*types.Var)
		return bv, false
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				gv, _ := info.ObjectOf(x.Sel).(*types.Var)
				return gv, false
			}
		}
		bv, ind := lvalueBaseOf(info, x.X)
		if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				ind = true
			}
		}
		return bv, ind
	case *ast.StarExpr:
		bv, _ := lvalueBaseOf(info, x.X)
		return bv, true
	case *ast.IndexExpr:
		bv, ind := lvalueBaseOf(info, x.X)
		if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				ind = true
			}
		}
		return bv, ind
	}
	return nil, false
}

// exprDisplay renders an expression for diagnostics, best-effort.
func exprDisplay(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprDisplay(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprDisplay(x.X)
	case *ast.IndexExpr:
		return exprDisplay(x.X) + "[...]"
	case *ast.SliceExpr:
		return exprDisplay(x.X) + "[...]"
	}
	return "<expr>"
}

// noteMutation records a write whose base resolves to roots: parameter
// roots become parameter mutations, module globals become global writes.
func (c *funcCollector) noteMutation(roots *rootSet, pos token.Pos, via string) {
	if roots.empty() {
		return
	}
	for i := range roots.params {
		eff := &c.ff.sum.effects[i]
		if !eff.mutated {
			eff.mutated = true
			eff.mutPos = pos
		}
	}
	for g := range roots.globals {
		if _, ok := c.ff.sum.globals[g]; !ok {
			c.ff.sum.globals[g] = globalWriteFact{pos: pos, via: via}
		}
	}
}

// noteEscape records that the given roots escape the frame.
func (c *funcCollector) noteEscape(roots *rootSet, kind escapeKind, pos token.Pos, dest string, typ types.Type) {
	if roots.empty() {
		return
	}
	for i := range roots.params {
		eff := &c.ff.sum.effects[i]
		if eff.escape == escNone || (eff.escape == escReturn && kind != escReturn) {
			// Store/goroutine escapes outrank returns: a returned value
			// stays in the call chain, a stored one outlives it.
			eff.escape = kind
			eff.escPos = pos
		}
		if kind != escReturn {
			c.ff.stores = append(c.ff.stores, storeEscape{param: i, kind: kind, pos: pos, dest: dest, typ: typ})
		}
	}
}

// noteWrite records a write event on the base variable itself, for the
// escape-then-mutate check.
func (c *funcCollector) noteWrite(v *types.Var, pos token.Pos, insideGo bool) {
	if v == nil {
		return
	}
	c.ff.writes[v] = append(c.ff.writes[v], writeEvent{pos: pos, insideGo: insideGo})
}

// collectEffects walks the body once, recording writes, escapes, and calls.
// insideGo tracks lexical containment in a go-launched function literal.
func (c *funcCollector) collectEffects(body ast.Node) {
	var walk func(n ast.Node, insideGo bool)
	walk = func(n ast.Node, insideGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.GoStmt:
				c.goStmt(s, insideGo)
				// The call's argument expressions and the launched body are
				// handled by goStmt; recurse manually so insideGo flips for
				// the literal's body only.
				if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					for _, arg := range s.Call.Args {
						walk(arg, insideGo)
					}
					walk(lit.Body, true)
				} else {
					c.callExpr(s.Call, insideGo)
					for _, arg := range s.Call.Args {
						walk(arg, insideGo)
					}
				}
				return false
			case *ast.AssignStmt:
				c.assign(s, insideGo)
				return true
			case *ast.IncDecStmt:
				v, indirect := c.lvalueBase(s.X)
				c.noteWrite(v, s.Pos(), insideGo)
				c.mutationAt(s.X, v, indirect, s.Pos())
				return true
			case *ast.SendStmt:
				roots := c.rootsOf(s.Value)
				if tv, ok := c.info.Types[s.Value]; ok && tv.Type != nil && refLike(tv.Type) {
					c.noteEscape(roots, escStore, s.Pos(), "a channel send", tv.Type)
				}
				return true
			case *ast.ReturnStmt:
				for _, res := range s.Results {
					if tv, ok := c.info.Types[res]; ok && tv.Type != nil && refLike(tv.Type) {
						c.noteEscape(c.rootsOf(res), escReturn, res.Pos(), "the return value", tv.Type)
					}
				}
				return true
			case *ast.CallExpr:
				c.callExpr(s, insideGo)
				return true
			}
			return true
		})
	}
	walk(body, false)
}

// assign classifies every left-hand side of an assignment and records
// store-escapes of the right-hand sides.
func (c *funcCollector) assign(s *ast.AssignStmt, insideGo bool) {
	for i, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		base, indirect := c.lvalueBase(lhs)
		c.noteWrite(base, s.Pos(), insideGo)
		if s.Tok == token.DEFINE && !indirect {
			continue // fresh binding, not a mutation
		}
		c.mutationAt(lhs, base, indirect, s.Pos())

		// Store escape: the destination outlives the frame when its base is
		// a module global, or a parameter written through an indirection
		// (receiver fields, pointee state), or a local aliasing either.
		if i >= len(s.Rhs) {
			continue // tuple assignment from a call: results are fresh
		}
		rhs := s.Rhs[i]
		tv, ok := c.info.Types[rhs]
		if !ok || tv.Type == nil || !refLike(tv.Type) {
			continue
		}
		destRoots := c.destRoots(base, indirect)
		if destRoots.empty() {
			continue
		}
		srcRoots := c.rootsOf(rhs)
		// A value stored back into state rooted at itself (s.buf =
		// s.buf[:n]) introduces no new alias.
		filtered := &rootSet{}
		for p := range srcRoots.params {
			if !destRoots.params[p] {
				filtered.addParam(p)
			}
		}
		if !filtered.empty() {
			c.noteEscape(filtered, escStore, s.Pos(), exprDisplay(lhs), tv.Type)
		}
	}
}

// destRoots resolves which roots an assignment destination belongs to:
// non-empty exactly when the destination outlives the function's frame.
func (c *funcCollector) destRoots(base *types.Var, indirect bool) *rootSet {
	out := &rootSet{}
	if base == nil {
		return out
	}
	if c.mf.isModuleGlobal(base) {
		out.addGlobal(base)
		return out
	}
	if i, ok := c.pindex[base]; ok {
		if indirect {
			out.addParam(i)
		}
		return out
	}
	if indirect {
		out.merge(c.aliases[base])
	}
	return out
}

// mutationAt records the mutation effects of writing the given lvalue.
func (c *funcCollector) mutationAt(lhs ast.Expr, base *types.Var, indirect bool, pos token.Pos) {
	if base == nil {
		return
	}
	if c.mf.isModuleGlobal(base) {
		if _, ok := c.ff.sum.globals[base]; !ok {
			c.ff.sum.globals[base] = globalWriteFact{pos: pos}
		}
		return
	}
	if !indirect {
		return // rebinding a local or a parameter copy stays frame-local
	}
	if i, ok := c.pindex[base]; ok {
		eff := &c.ff.sum.effects[i]
		if !eff.mutated {
			eff.mutated = true
			eff.mutPos = pos
		}
		return
	}
	c.noteMutation(c.aliases[base], pos, "")
}

// goStmt records goroutine-capture escapes: free reference-typed variables
// of a launched literal, and tracked arguments of a launched call.
func (c *funcCollector) goStmt(s *ast.GoStmt, insideGo bool) {
	noteCap := func(v *types.Var, pos token.Pos, display string) {
		if v == nil || !refLike(v.Type()) {
			return
		}
		if _, seen := c.ff.goCaps[v]; !seen {
			c.ff.goCaps[v] = pos
			c.ff.goCapAt[v] = display
		}
		if i, ok := c.pindex[v]; ok {
			roots := &rootSet{}
			roots.addParam(i)
			c.noteEscape(roots, escGo, pos, display, v.Type())
		} else if al := c.aliases[v]; al != nil {
			c.noteEscape(al, escGo, pos, display, v.Type())
		}
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// Free variables: identifiers in the literal's body that resolve to
		// variables declared outside it (and not to its own parameters).
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v := c.varOf(id)
			if v == nil || v.Pos() == token.NoPos {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				return true // the literal's own parameter or local
			}
			noteCap(v, s.Pos(), "go statement")
			return true
		})
		return
	}
	for _, arg := range s.Call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			noteCap(c.varOf(id), s.Pos(), "go statement")
		} else {
			roots := c.rootsOf(arg)
			if tv, ok := c.info.Types[arg]; ok && tv.Type != nil && refLike(tv.Type) {
				c.noteEscape(roots, escGo, s.Pos(), "go statement", tv.Type)
			}
		}
	}
	_ = insideGo
}

// callExpr records a call's argument roots for interprocedural propagation,
// applying the unknown-callee policy immediately.
func (c *funcCollector) callExpr(call *ast.CallExpr, insideGo bool) {
	// Builtins: copy mutates its destination.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := c.info.Uses[id].(*types.Builtin); isB {
			if b.Name() == "copy" && len(call.Args) == 2 {
				base, _ := c.lvalueBase(call.Args[0])
				c.noteWrite(base, call.Pos(), insideGo)
				c.noteMutation(c.rootsOf(call.Args[0]), call.Pos(), "copy")
			}
			return
		}
	}
	fn := funcObjOf(c.info, call.Fun)
	if fn == nil {
		return // function value: the documented blind spot
	}

	// Bind arguments into the callee's parameter space, receiver first.
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := c.info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}

	known := c.mf.graph.nodes[fn] != nil || isInterfaceMethod(fn)
	if !known {
		// Synchronization primitives are guards, not state: mu.Lock() on a
		// package-level mutex must not register as a global write, or every
		// guarded registry read would need an allow. sync.Map and sync.Pool
		// are NOT exempt — they hold real state.
		if isSyncPrimitiveMethod(fn) {
			return
		}
		// Unknown callee: assume it mutates its pointer receiver and its
		// explicit pointer-typed arguments, nothing else.
		if recvExpr != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if _, isPtr := sig.Recv().Type().Underlying().(*types.Pointer); isPtr {
					base, _ := c.lvalueBase(recvExpr)
					c.noteWrite(base, call.Pos(), insideGo)
					c.noteMutation(c.rootsOf(recvExpr), call.Pos(), funcDisplayName(fn))
				}
			}
		}
		for _, arg := range call.Args {
			if tv, ok := c.info.Types[arg]; ok && tv.Type != nil {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					base, _ := c.lvalueBase(arg)
					c.noteWrite(base, call.Pos(), insideGo)
					c.noteMutation(c.rootsOf(arg), call.Pos(), funcDisplayName(fn))
				}
			}
		}
		return
	}

	nParams := len(paramVars(fn))
	sc := summaryCall{
		callee:   fn,
		pos:      call.Pos(),
		args:     make([]*rootSet, nParams),
		argBase:  make([]*types.Var, nParams),
		insideGo: insideGo,
	}
	slot := 0
	bind := func(e ast.Expr) {
		if slot >= nParams {
			// Variadic overflow: union extra arguments into the last slot.
			slot = nParams - 1
		}
		if slot < 0 {
			return
		}
		roots := c.rootsOf(e)
		if !roots.empty() {
			if sc.args[slot] == nil {
				sc.args[slot] = &rootSet{}
			}
			sc.args[slot].merge(roots)
		}
		if base, _ := c.lvalueBase(e); base != nil && sc.argBase[slot] == nil {
			sc.argBase[slot] = base
		}
		slot++
	}
	if recvExpr != nil {
		bind(recvExpr)
	} else if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		slot++ // method expression/value: receiver untracked
	}
	for _, arg := range call.Args {
		bind(arg)
	}
	c.ff.calls = append(c.ff.calls, sc)
}

// syncPrimitiveTypes are the sync types whose methods only synchronize;
// they mutate internal bookkeeping, never solver-visible state.
var syncPrimitiveTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// isSyncPrimitiveMethod reports whether fn is a method of a pure
// synchronization primitive.
func isSyncPrimitiveMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && syncPrimitiveTypes[named.Obj().Name()]
}

// ---- interprocedural propagation ----

// resolveTargets expands a recorded callee to the function bodies that can
// stand behind it.
func (mf *moduleFacts) resolveTargets(fn *types.Func) []*types.Func {
	if isInterfaceMethod(fn) {
		return mf.graph.implementations(fn)
	}
	if _, ok := mf.facts[fn]; ok {
		return []*types.Func{fn}
	}
	return nil
}

// propagate iterates the call-site transfer until no summary grows: a
// callee mutating parameter j mutates every root the caller binds to j, and
// a callee storing/goroutine-escaping parameter j escapes those roots too.
func (mf *moduleFacts) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range mf.order {
			ff := mf.facts[fn]
			for _, call := range ff.calls {
				for _, target := range mf.resolveTargets(call.callee) {
					ts := mf.summaryOf(target)
					if ts == nil {
						continue
					}
					for j := range ts.effects {
						if j >= len(call.args) || call.args[j].empty() {
							continue
						}
						te := ts.effects[j]
						roots := call.args[j]
						if te.mutated {
							for p := range roots.params {
								eff := &ff.sum.effects[p]
								if !eff.mutated {
									eff.mutated = true
									eff.mutPos = call.pos
									changed = true
								}
							}
							for g := range roots.globals {
								if _, ok := ff.sum.globals[g]; !ok {
									ff.sum.globals[g] = globalWriteFact{pos: call.pos, via: funcDisplayName(target)}
									changed = true
								}
							}
						}
						if te.escape == escStore || te.escape == escGo {
							for p := range roots.params {
								eff := &ff.sum.effects[p]
								if eff.escape == escNone || eff.escape == escReturn {
									eff.escape = te.escape
									eff.escPos = call.pos
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}
}
