package lint

// boundsproof: slice indexing with a computed index inside a hot loop must
// carry a proof that the index stays within [0, len(base)). The
// factorization and pricing loops walk eta files and packed row/column
// storage with i+1 / i-1 / stride arithmetic; an off-by-one there either
// panics deep inside a solve (best case) or silently reads an adjacent
// eta's entries (worst case, when the slices are views into one backing
// array).
//
// The rule fires on index expressions that involve arithmetic — a
// BinaryExpr or unary minus after stripping parens. Plain identifier
// indexes (xs[i]) are deliberately out of scope: range bindings and
// loop-bounded counters prove themselves trivially, and the residue would
// be noise; the arithmetic sites are where off-by-one bugs live
// (documented false negative). The base must be a tracked slice variable
// (so len(base) is a stable symbol) or any expression of constant array
// type. Struct-field slice bases are untracked and skipped.
//
// The interval engine (interval.go) proves containment from loop bounds,
// dominating branch conditions (including i+1 < len(xs) forms), len/cap
// facts, i%len(xs) arithmetic, and callee return-fact summaries. Sites it
// cannot discharge are proof obligations: restructure the loop so the
// guard dominates, or record the invariant with
// //raslint:allow boundsproof <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func (c *Config) boundsproofScope() []string {
	if c.BoundsproofScope != nil {
		return c.BoundsproofScope
	}
	return defaultSolveScope
}

func runBoundsproof(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	scope := cfg.boundsproofScope()
	va := mf.valueAnalysisFor(cfg)
	for _, fn := range mf.order {
		node := mf.graph.nodes[fn]
		if node == nil || !inScope(scope, node.pkg.Path) {
			continue
		}
		f := va.ssaOf(fn)
		if f == nil {
			continue
		}
		ev := va.evaluatorFor(fn)
		for _, b := range f.rpo {
			if !f.inLoop[b] {
				continue
			}
			for _, st := range b.stmts {
				for _, e := range shallowExprs(st) {
					checkBoundsExpr(node.pkg, e, b, f, ev, report)
				}
			}
		}
	}
}

func checkBoundsExpr(pkg *Package, root ast.Expr, b *cfgBlock, f *ssaFunc, ev *evaluator, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if !arithmeticIndex(ix.Index) {
			return true
		}
		baseName, proven := proveIndex(pkg.Info, f, ev, ix, b)
		if baseName == "" {
			return true // untracked or non-slice base: out of scope
		}
		if !proven {
			report(pkg, ix.Index.Pos(), "unproven index: %s is not proven within [0, len(%s)) on every path through this loop; add a dominating bounds check or //raslint:allow boundsproof <reason>",
				types.ExprString(ix.Index), baseName)
		}
		return true
	})
}

// arithmeticIndex reports whether the index expression computes — the
// off-by-one surface this rule covers.
func arithmeticIndex(idx ast.Expr) bool {
	switch x := ast.Unparen(idx).(type) {
	case *ast.BinaryExpr:
		return true
	case *ast.UnaryExpr:
		return x.Op == token.SUB
	}
	return false
}

// proveIndex resolves the indexing base and attempts the containment
// proof. It returns the base's display name ("" when the site is out of
// scope) and whether the index interval is contained in [0, len(base)).
func proveIndex(info *types.Info, f *ssaFunc, ev *evaluator, ix *ast.IndexExpr, b *cfgBlock) (string, bool) {
	// Constant-array bases (including struct fields) have a static length.
	if n, ok := constArrayLen(info, ix.X); ok {
		iv, pend := ev.exprInterval(ix.Index, b, 0)
		proven := !pend && loGEZero(iv.lo) &&
			!iv.hi.inf && iv.hi.lenOf == nil && iv.hi.c <= n-1
		return types.ExprString(ix.X), proven
	}
	id, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	base := f.useOf[id]
	if base == nil {
		return "", false
	}
	if _, isSlice := base.obj.Type().Underlying().(*types.Slice); !isSlice {
		return "", false
	}
	iv, pend := ev.exprInterval(ix.Index, b, 0)
	proven := !pend && loGEZero(iv.lo) &&
		!iv.hi.inf && iv.hi.lenOf == base && iv.hi.c <= -1
	return id.Name, proven
}
