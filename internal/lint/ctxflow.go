package lint

// ctxflow: cancellation only works if the context reaches every blocking
// callee. PR 1 threaded ctx through the whole solve stack (simplex pivots,
// branch-and-bound nodes, climb steps); this rule keeps it threaded. For any
// function that receives a context.Context parameter:
//
//  1. It must not call context.Background() or context.TODO(): minting a
//     fresh root context severs the caller's cancellation chain. (The one
//     idiomatic exception — defaulting a nil ctx at an API boundary —
//     carries a //raslint:allow ctxflow directive.)
//  2. Every call to a callee that accepts a context.Context must actually
//     pass one (the parameter itself or a context derived from it); calling
//     a ctx-aware callee without a context silently opts it out of
//     cancellation.

import (
	"go/ast"
	"go/types"
)

func runCtxflow(cfg *Config, pkg *Package, report reportFunc) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !receivesContext(pkg.Info, fd) {
				continue
			}
			checkCtxBody(pkg, fd, report)
		}
	}
}

// receivesContext reports whether fd has a named context.Context parameter.
func receivesContext(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return true
			}
		}
	}
	return false
}

func checkCtxBody(pkg *Package, fd *ast.FuncDecl, report reportFunc) {
	info := pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := funcObjOf(info, call.Fun); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "context" && (obj.Name() == "Background" || obj.Name() == "TODO") {
			report(call.Pos(), "%s receives a ctx but calls context.%s, severing the cancellation chain", fd.Name.Name, obj.Name())
			return true
		}
		sig := calleeSignature(info, call)
		if sig == nil || !signatureWantsContext(sig) {
			return true
		}
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
				return true // forwarded (possibly derived) context
			}
		}
		report(call.Pos(), "%s receives a ctx but calls %s without forwarding a context", fd.Name.Name, calleeName(call))
		return true
	})
}

// signatureWantsContext reports whether sig has a context.Context parameter.
func signatureWantsContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeName renders a human-readable name for a call target.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "callee"
}
