// Negative fixture: loaded under "ras/internal/metrics", outside the mapiter
// scope, so even the classic leak pattern is not flagged.
package mapiterout

func leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // out of scope: no finding
	}
	return keys
}
