// Fixture for the lockcheck analyzer: CFG-based lock balance, RWMutex mode
// mismatches, and lock copies. Loaded under "ras/internal/lockcheck"; the
// rule is unscoped, so any path works.
package lockcheck

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Positive: the early return leaves mu held.
func (g *guarded) leakOnEarlyReturn(cond bool) int {
	g.mu.Lock() // want `g\.mu\.Lock\(\) is not released on every path out of leakOnEarlyReturn`
	if cond {
		return 0
	}
	g.mu.Unlock()
	return g.n
}

// Negative: released on both paths.
func (g *guarded) balancedBranches(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 0
	}
	g.mu.Unlock()
	return g.n
}

// Negative: deferred release covers every path, including the early return.
func (g *guarded) deferred(cond bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cond {
		return 0
	}
	return g.n
}

// Negative: a deferred closure releasing the lock counts too.
func (g *guarded) deferredClosure() int {
	g.mu.Lock()
	defer func() {
		g.mu.Unlock()
	}()
	return g.n
}

// Negative: acquire/release balanced inside each loop iteration.
func (g *guarded) perIteration(k int) int {
	total := 0
	for i := 0; i < k; i++ {
		g.mu.Lock()
		total += g.n
		g.mu.Unlock()
	}
	return total
}

// Positive: a write lock released with the read-mode method.
func (g *guarded) modeMismatch() {
	g.rw.Lock()
	g.rw.RUnlock() // want `g\.rw\.RUnlock\(\) releases a lock acquired with Lock`
}

// Positive: deferred release in the wrong mode.
func (g *guarded) deferredMismatch() int {
	g.rw.RLock() // want `g\.rw\.RLock\(\) is released by a deferred Unlock`
	defer g.rw.Unlock()
	return g.n
}

// Negative: a panic exit does not reach the synthetic exit, so a lock held
// there is not a leak (the process is going down anyway).
func (g *guarded) panicPath(cond bool) {
	g.mu.Lock()
	if cond {
		panic("invariant broken")
	}
	g.mu.Unlock()
}

// Positive: function literals are balanced as functions of their own.
func (g *guarded) inLiteral() func() {
	return func() {
		g.mu.Lock() // want `g\.mu\.Lock\(\) is not released on every path out of inLiteral literal`
	}
}

// Negative: releasing a caller-held lock without acquiring it is a helper
// idiom, not a finding.
func (g *guarded) releaseOnly() {
	g.mu.Unlock()
}

// Positive: copying a value that contains a sync lock.
func copies() int {
	g := guarded{} // composite literal: fresh value, no finding
	h := g         // want `assignment copies a value containing a sync lock`
	return h.n
}

// Negative: pointers don't copy the lock.
func viaPointer() *guarded {
	g := &guarded{}
	p := g
	return p
}
