// Fixture for the determinism analyzer, loaded under "ras/internal/mip" so
// the wall-clock scope applies. The global-rand half of the rule is
// module-wide and would fire under any import path.
package determinism

import (
	"math/rand"
	"time"
)

func clockReads() time.Duration {
	t0 := time.Now()    // want `time\.Now reads the wall clock`
	d := time.Since(t0) // want `time\.Since reads the wall clock`
	return d
}

func globalRand() int {
	return rand.Intn(4) // want `rand\.Intn draws from the global rand source`
}

func seededRand() int {
	rng := rand.New(rand.NewSource(7)) // seeded constructor and methods: fine
	return rng.Intn(4)
}

func allowedStandalone() time.Time {
	//raslint:allow determinism fixture exercising the standalone directive form
	return time.Now()
}

func allowedInline() time.Time {
	return time.Now() //raslint:allow determinism fixture exercising the end-of-line directive form
}
