// Fixture for the ctxflow analyzer (module-wide; loaded under
// "ras/internal/broker").
package ctxflow

import "context"

func helper(ctx context.Context, n int) int { return n }

func plain(n int) int { return n }

func needsCtx(ctx context.Context) {}

func forwards(ctx context.Context) int {
	return helper(ctx, 1) // forwards its ctx: fine
}

func derives(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	needsCtx(c) // a derived context still flows: fine
}

func mintsRoot(ctx context.Context) {
	needsCtx(context.Background()) // want `mintsRoot receives a ctx but calls context\.Background`
}

func mintsTODO(ctx context.Context) {
	needsCtx(context.TODO()) // want `mintsTODO receives a ctx but calls context\.TODO`
}

func passesNil(ctx context.Context) int {
	return helper(nil, 1) // want `passesNil receives a ctx but calls helper without forwarding a context`
}

func callsPlain(ctx context.Context) int {
	_ = ctx
	return plain(1) // callee takes no ctx: fine
}

func root() context.Context {
	return context.Background() // no ctx parameter here: fine
}

func detached(ctx context.Context) {
	//raslint:allow ctxflow fixture exercising suppression of a root-context mint
	needsCtx(context.Background())
}
