// Negative fixture: loaded under "ras/internal/topology", which is outside
// the floatcmp scope (the rule covers the numerical core and the objective
// plumbing above it, not the topology model).
package floatcmpout

func eq(a, b float64) bool {
	return a == b // out of scope: no finding
}
