// Negative fixture: loaded under "ras/internal/localsearch", which is outside
// the floatcmp scope (the rule covers the numerical core only).
package floatcmpout

func eq(a, b float64) bool {
	return a == b // out of scope: no finding
}
