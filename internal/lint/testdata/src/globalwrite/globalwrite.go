// Fixture for the globalwrite analyzer. Loaded under "ras/internal/mip"
// with ras/internal/mip.Solve as the sole globalwrite entry point, so every
// finding here is reachability-based: the same writes in functions Solve
// never reaches stay silent. The transitive cases exercise the effect
// summaries — the write is induced by handing a global's address down a
// callee chain, and the finding lands at the call that leaks it.
package mip

var (
	iterations int
	score      float64
	depth      int
	cache      = map[string]int{}
	limit      = 64
)

func Solve(n int) int {
	iterations++   // want `solve path mip\.Solve writes package-level mip\.iterations`
	bump(&score)   // want `solve path mip\.Solve writes package-level mip\.score via mip\.bump`
	level1(&depth) // want `solve path mip\.Solve writes package-level mip\.depth via mip\.level1`
	record()
	return helper(n)
}

// bump mutates through its pointer parameter: one-hop summary propagation.
func bump(p *float64) {
	*p += 1
}

// level1 → level2 is the two-hop chain: level2's parameter mutation must
// reach level1's summary at the fixpoint before Solve's call site can be
// blamed.
func level1(p *int) {
	level2(p)
}

func level2(p *int) {
	*p = 5
}

// record writes a global directly, two calls down from the entry point; the
// finding carries the call path.
func record() {
	cache["solve"] = 1 // want `solve path mip\.Solve → mip\.record writes package-level mip\.cache`
}

// helper only reads package state: reads are not effects.
func helper(n int) int {
	if n > limit {
		return limit
	}
	return n
}

// unreachableReset writes the same globals but is not reachable from Solve,
// so globalwrite says nothing about it.
func unreachableReset() {
	iterations = 0
	cache = map[string]int{}
}
