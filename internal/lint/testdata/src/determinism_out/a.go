// Negative fixture: loaded under "ras/internal/experiments", which is outside
// the wall-clock scope, so time.Now is fine here — but the global rand source
// stays forbidden module-wide.
package determinismout

import (
	"math/rand"
	"time"
)

func timing() time.Time {
	return time.Now() // outside the wall-clock scope: no finding
}

func figure() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global rand source`
}
