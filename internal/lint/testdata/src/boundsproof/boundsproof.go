// Package boundsproof exercises index containment proofs for computed
// indexes in hot loops.
package boundsproof

// etaWalk is the seeded regression: an off-by-one eta-file walk that
// reads one past the end on the final iteration.
func etaWalk(eta []float64) float64 {
	var s float64
	for i := 0; i < len(eta); i++ {
		s += eta[i+1] // want `unproven index: i \+ 1`
	}
	return s
}

// etaWalkFixed shifts the counter: i-1 lands in [0, len(eta)-1].
func etaWalkFixed(eta []float64) float64 {
	var s float64
	for i := 1; i <= len(eta); i++ {
		s += eta[i-1]
	}
	return s
}

// lookahead: the loop bound itself proves the +1 access.
func lookahead(xs []float64) float64 {
	var s float64
	for i := 0; i+1 < len(xs); i++ {
		s += xs[i+1]
	}
	return s
}

// strided: the engine cannot bound i+stride (stride is a free parameter),
// so the site carries a reasoned allow.
func strided(xs []float64, stride int) float64 {
	var s float64
	for i := 0; i+stride < len(xs); i += stride {
		s += xs[i+stride] //raslint:allow boundsproof the loop condition re-checks i+stride each iteration and callers validate stride > 0
	}
	return s
}

// outsideLoop: arithmetic indexes outside loops are out of the rule's
// scope.
func outsideLoop(xs []float64, i int) float64 {
	if i >= 0 && i+1 < len(xs) {
		return xs[i+1]
	}
	return 0
}

// plainIndex: non-arithmetic indexes are a documented false negative.
func plainIndex(xs []float64, idx int) float64 {
	var s float64
	for k := 0; k < 4; k++ {
		s += xs[idx]
	}
	return s
}

// constArray: static array lengths bound the proof without a len symbol.
func constArray() int {
	var tab [8]int
	s := 0
	for i := 0; i < 8; i++ {
		s += tab[i+1] // want `unproven index: i \+ 1`
	}
	return s
}

func constArrayFixed() int {
	var tab [8]int
	s := 0
	for i := 0; i < 7; i++ {
		s += tab[i+1]
	}
	return s
}
