// Negative fixture: the same retention patterns as the aliascheck fixture,
// loaded under "ras/internal/topology" — outside the aliascheck scope.
// Summaries are still computed for these functions (callers elsewhere could
// propagate from them), but nothing here may be reported.
package topology

type engine struct {
	incumbent []float64
}

func (e *engine) offer(x []float64) {
	e.incumbent = x // silent: out of aliascheck scope
}

var published []float64

func publish(x []float64) {
	published = x // silent: out of aliascheck scope
}

func caller(e *engine, x []float64) {
	e.offer(x) // silent: out of aliascheck scope
}
