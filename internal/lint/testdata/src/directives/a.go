// Fixture for malformed //raslint: directives, each reported under the
// "directive" rule. The want expectations live in block comments on the same
// line because the line comment itself is the directive under test.
package directives

/* want `unknown raslint directive "frobnicate"` */ //raslint:frobnicate something
var _ = 1

/* want `raslint:allow needs a rule name` */ //raslint:allow
var _ = 2

/* want `raslint:allow names unknown rule "nosuchrule"` */ //raslint:allow nosuchrule because reasons
var _ = 3

/* want `raslint:allow floatcmp needs a reason` */ //raslint:allow floatcmp
var _ = 4
