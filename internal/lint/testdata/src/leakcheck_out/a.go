// Negative fixture: loaded under "ras/internal/metrics", which is outside
// the leakcheck scope — the rule covers the goroutine-spawning solve
// packages only.
package leakcheckout

func spawn(ch chan int) {
	go func() {
		ch <- 1 // out of scope: no finding
	}()
}
