// Fixture for the mapiter analyzer, loaded under "ras/internal/solver" (in
// scope).
package mapiter

import "sort"

func leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" while ranging over a map`
	}
	return keys
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `send into a channel while ranging over a map`
	}
}

func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted right after the loop: fine
	}
	sort.Strings(keys)
	return keys
}

func sortedOutsideIf(m map[string]int, cond bool) []string {
	var keys []string
	if cond {
		for k := range m {
			keys = append(keys, k) // sorted after the enclosing if: fine
		}
	}
	sort.Strings(keys)
	return keys
}

func loopLocal(m map[string]int) int {
	n := 0
	for _, v := range m {
		parts := []int{}
		parts = append(parts, v) // target dies with the iteration: fine
		n += len(parts)
	}
	return n
}
