// Fixture for stale-directive detection (Config.Stale). The first directive
// suppresses a real finding (the module-wide global-rand half of the
// determinism rule fires under any import path); the second suppresses
// nothing and must be reported.
package stale

import "math/rand"

func used() int {
	return rand.Intn(4) //raslint:allow determinism fixture: directive that still earns its keep
}

/* want `stale //raslint:allow determinism: it suppresses no determinism finding` */ //raslint:allow determinism fixture: the next line has no finding
func unused() int {
	return 7
}
