// Fixture for the errdrop analyzer (module-wide; loaded under
// "ras/internal/placer").
package errdrop

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

func fine() int { return 1 }

func drops() {
	fail() // want `fail returns an error that is discarded`
}

func dropsSecondResult() {
	failPair() // want `failPair returns an error that is discarded`
}

func dropsDeferred() {
	defer fail() // want `fail returns an error that is discarded`
}

func dropsGoroutine() {
	go fail() // want `fail returns an error that is discarded`
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	_ = fail() // explicit blank assignment: fine
	return nil
}

func exempt(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("ok")     // fmt print family: exempt
	sb.WriteString("ok")  // strings.Builder never errors: exempt
	buf.WriteString("ok") // bytes.Buffer writes never error: exempt
	fine()                // no error result: fine
}
