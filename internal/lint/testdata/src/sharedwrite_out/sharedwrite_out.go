// Negative fixture: the same races as the sharedwrite fixture, loaded under
// "ras/internal/topology" — outside both the sharedwrite and aliascheck
// scopes — so everything here must stay silent.
package topology

import "sync"

func unguarded(res []int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			total += i // silent: out of sharedwrite scope
			res[i] = i // silent: out of sharedwrite scope
		}(i)
	}
	wg.Wait()
	return total
}

var launches int

func bump() {
	launches++ // silent: out of sharedwrite scope
}

func launchNamed() {
	go bump()
}
