// Fixture for the calldeterminism analyzer. Loaded under "ras/internal/app"
// — outside the per-package determinism time scope, so the direct time.Now
// calls below are invisible to the determinism rule and every finding here
// is reachability-based. The test config names ras/internal/app.Solve as
// the sole entry point.
package app

import (
	"math/rand"
	"time"
)

type ticker interface {
	tick()
}

type realTicker struct{}

func (realTicker) tick() {
	_ = time.Now() // want `solve path app\.Solve → app\.realTicker\.tick → time\.Now reaches time\.Now`
}

func Solve() {
	helper()
	var t ticker = realTicker{}
	t.tick()
	_ = seeded()
}

func helper() {
	_ = stamp()
}

func stamp() time.Time {
	return time.Now() // want `solve path app\.Solve → app\.helper → app\.stamp → time\.Now reaches time\.Now`
}

// Negative: seeded sources and their methods are deterministic.
func seeded() int {
	rng := rand.New(rand.NewSource(7))
	return rng.Intn(4)
}

// Negative: reads the wall clock but is not reachable from Solve, and the
// package is outside the determinism time scope — no finding.
func offThePath() time.Time {
	return time.Now()
}
