// Fixture for the leakcheck analyzer, loaded under "ras/internal/mip" so
// the goroutine-spawning solve scope applies.
package leakcheck

import "context"

func produce(ch chan int) {
	ch <- 1
}

// Positive: the literal's only exit is an unguarded send.
func spawnLeak(ch chan int) {
	go func() { // want `goroutine's only exits are unguarded channel operations`
		ch <- 1
	}()
}

// Positive: same-package named functions are analyzed through the go
// statement too.
func spawnNamedLeak(ch chan int) {
	go produce(ch) // want `goroutine's only exits are unguarded channel operations`
}

// Positive: ranging over a channel blocks until the peer closes it.
func spawnRangeLeak(ch chan int) {
	go func() { // want `goroutine's only exits are unguarded channel operations`
		for range ch {
		}
	}()
}

// Negative: the select can always take the cancellation arm.
func spawnGuardedSelect(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// Negative: a default clause means the select never blocks.
func spawnDefault(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// Negative: a direct ctx.Done() receive is an escape hatch for the whole
// body (the analysis is body-wide, not path-wise — see DESIGN.md).
func spawnDirectDone(ctx context.Context, ch chan int) {
	go func() {
		ch <- 1
		<-ctx.Done()
	}()
}

// Negative: no channel operations at all.
func spawnPure(vals []int) {
	go func() {
		total := 0
		for _, v := range vals {
			total += v
		}
		_ = total
	}()
}
