// Package boundsproofout holds boundsproof-shaped sites under an import
// path outside the solve stack: the rule must stay silent here.
package boundsproofout

func EtaWalk(eta []float64) float64 {
	var s float64
	for i := 0; i < len(eta); i++ {
		s += eta[i+1]
	}
	return s
}
