// Package deadstoreout holds deadstore-shaped sites under an import path
// outside the solve stack: the rule must stay silent here.
package deadstoreout

func Overwritten(n int) int {
	x := n * 2
	x = n + 1
	return x
}

func StaleScratch(n int) int {
	work := make([]float64, n)
	for i := 0; i < n; i++ {
		work[i] = 0
	}
	return n
}
