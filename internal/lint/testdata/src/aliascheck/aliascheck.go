// Fixture for the aliascheck analyzer, loaded under "ras/internal/lp" (in
// the default aliascheck scope). The first case reproduces the historical
// parallel-engine aliasing regression verbatim in shape: an engine
// publishing its candidate slice by reference instead of copying, so a
// later in-place mutation of the caller's buffer leaks into the published
// incumbent.
package lp

type engine struct {
	incumbent []float64
	next      *engine
}

// offer is the regression: the parameter's backing array is retained past
// the call through the receiver field.
func (e *engine) offer(x []float64) {
	e.incumbent = x // want `parameter "x" \(\[\]float64\) is stored into e\.incumbent`
}

// offerCopy is the fix that closed the regression: append into the
// receiver's own backing array copies the elements, so nothing aliases.
func (e *engine) offerCopy(x []float64) {
	e.incumbent = append(e.incumbent[:0], x...) // silent: copies, no alias
}

// trim only re-slices state rooted at the receiver itself: no new alias.
func (e *engine) trim(n int) {
	e.incumbent = e.incumbent[:n] // silent: self-rooted store
}

// link retains a pointer, which is deliberate architecture (engines hold
// references to each other); aliascheck polices slice/map backing only.
func (e *engine) link(other *engine) {
	e.next = other // silent: pointer identity sharing is allowed
}

var published []float64

// publish retains the parameter in a package-level variable.
func publish(x []float64) {
	published = x // want `parameter "x" \(\[\]float64\) is stored into published`
}

// handOff retains the parameter via a goroutine capture: the buffer now has
// two owners.
func handOff(xs []float64, sink func(float64)) {
	done := make(chan struct{})
	go func() { // want `parameter "xs" \(\[\]float64\) is captured by a go-launched function`
		sink(xs[0])
		close(done)
	}()
	xs[0] = 0 // want `"xs" was captured by a goroutine launched earlier in this function and is written here`
	<-done
}

// caller passes its buffer to a callee whose summary says it retains it:
// the alias is created here, so it is reported here.
func caller(e *engine, x []float64) {
	e.offer(x) // want `passes "x" to lp\.\(\*engine\)\.offer, which retains it \(stored\)`
}

// callerCopy passes the same buffer to the copying variant: clean.
func callerCopy(e *engine, x []float64) {
	e.offerCopy(x) // silent: callee copies
}

// sum only reads its argument; reading is never an effect.
func sum(xs []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// confined builds its buffer inside the goroutine that owns it and hands it
// over by channel: ownership transfers, nothing aliases.
func confined(n int) []float64 {
	out := make(chan []float64, 1)
	go func() {
		buf := make([]float64, n)
		buf[0] = 1
		out <- buf
	}()
	return <-out
}
