// Package deadstore exercises scalar liveness and workspace-buffer
// element-store reachability.
package deadstore

// overwrittenBeforeRead: the first assignment's value is never read.
func overwrittenBeforeRead(n int) int {
	x := n * 2 // want `dead store: the value assigned to x`
	x = n + 1
	return x
}

// cascade: x's only definition feeds nothing, and y feeds only that dead
// definition, so the deadness cascades.
func cascade(n int) int {
	y := n + 1 // want `dead store: the value assigned to y`
	x := y * 2 // want `dead store: the value assigned to x`
	x = 7
	return x
}

// chainFeeds: each definition reaches a read; nothing is reported.
func chainFeeds(n int) int {
	x := n
	x = x + 1
	return x
}

// effectfulRHS: the overwritten definition's RHS is a call, so dead-store
// elimination keeps the evaluation; its read of x anchors the first
// definition (line 32 is live, not a cascade), while the call's own
// assigned value is still a dead store.
func effectfulRHS(n int) int {
	x := n + 3
	x = advance(x) // want `dead store: the value assigned to x`
	x = 7
	return x
}

func advance(x int) int { return x + 1 }

// loopCarried: the phi at the loop head keeps the pre-loop definition and
// every iteration's update live.
func loopCarried(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}

// namedResult: a bare return snapshots named results, so the assignment
// is live.
func namedResult(n int) (out int) {
	out = n
	return
}

// staleWorkspace is the seeded regression: the reset loop clears a
// function-owned scratch buffer that nothing reads before the function
// returns — callers keep consuming the previous iteration's values.
func staleWorkspace(n int) int {
	work := make([]float64, n)
	count := 0
	for i := 0; i < n; i++ {
		work[i] = 0 // want `dead store: no read of work`
		count++
	}
	return count
}

// workspaceRead: the same shape with a consuming pass is silent.
func workspaceRead(n int) float64 {
	work := make([]float64, n)
	for i := 0; i < n; i++ {
		work[i] = float64(i)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += work[i]
	}
	return s
}

// escapedBuffer: a parameter aliases caller memory, so element stores are
// never dead from this function's point of view.
func escapedBuffer(work []float64) {
	for i := 0; i < len(work); i++ {
		work[i] = 0
	}
}
