// Package nanguard exercises the nanguard rule: float divisions and
// math.Sqrt/math.Log calls whose operand is not proven safe on every
// path through the function.
package nanguard

import "math"

// exactZero is the designated exact-compare helper: its body is the one
// place a raw float == is permitted, and nanguard recognizes guards
// routed through it (the same seam floatcmp enforces).
func exactZero(x float64) bool { return x == 0 }

// devexScore is the seeded regression: a Devex-style pricing ratio
// without the weight floor. Reference weights decay across re-pricing
// rounds, so gamma can reach exactly zero and the score becomes Inf.
func devexScore(viol, gamma float64) float64 {
	return viol * viol / gamma // want `float division by gamma`
}

// devexScoreFloored is the repaired form: the builtin max pins the
// denominator at >= 1.
func devexScoreFloored(viol, gamma float64) float64 {
	return viol * viol / max(gamma, 1)
}

func guardedByHelper(num, den float64) float64 {
	if exactZero(den) {
		return 0
	}
	return num / den // proven on the helper's false edge
}

func guardedByCompare(num, den float64) float64 {
	if den > 0 {
		return num / den
	}
	return 0
}

func guardedByAbs(num, den float64) float64 {
	if math.Abs(den) > 1e-12 {
		return num / den
	}
	return 0
}

func nonzeroLiteral(x float64) float64 {
	return x / 2
}

// halfGuarded repairs only the negative side: the merge still admits an
// exact zero.
func halfGuarded(num, den float64) float64 {
	if den < 0 {
		den = 1
	}
	return num / den // want `float division by den`
}

func quoAssignGuarded(sum, w float64) float64 {
	if exactZero(w) {
		return sum
	}
	sum /= w
	return sum
}

func quoAssignUnguarded(sum, w float64) float64 {
	sum /= w // want `float division by w`
	return sum
}

func sqrtPaths(x float64) float64 {
	if x >= 0 {
		return math.Sqrt(x)
	}
	return math.Sqrt(x) // want `math.Sqrt of x`
}

func logPaths(x float64) float64 {
	if x > 0 {
		return math.Log(x)
	}
	return math.Log(x) // want `math.Log of x`
}

// intConversion: integer interval facts flow through float64(...)
// conversions.
func intConversion(total float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return total / float64(n)
}
