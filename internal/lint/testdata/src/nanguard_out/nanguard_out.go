// Package nanguardout holds nanguard-shaped sites under an import path
// outside the solve stack: the rule must stay silent here.
package nanguardout

import "math"

func Ratio(a, b float64) float64 {
	return a / b
}

func Spread(x float64) float64 {
	return math.Sqrt(x) + math.Log(x)
}
