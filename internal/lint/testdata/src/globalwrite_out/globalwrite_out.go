// Negative fixture for the globalwrite analyzer: loaded under
// "ras/internal/metrics" — the sanctioned seam. Writes to globals declared
// in the metrics package are exactly what the package exists for (atomic
// counters solve paths may record into), so with the entry point set to
// ras/internal/metrics.Solve every write below must stay silent.
package metrics

// Counter mirrors the real metrics counter shape: mutation happens behind a
// pointer-receiver method, so the write reaches the global through the
// receiver summary, not a direct store.
type Counter struct {
	n int64
}

func (c *Counter) Add(d int64) {
	c.n += d
}

var (
	Solves   Counter
	restarts int
)

func Solve() {
	Solves.Add(1) // silent: metrics globals are the sanctioned seam
	restarts++    // silent: direct write, same seam
	helper()
}

func helper() {
	restarts = 0 // silent: reachable, still the seam
}
