// Fixture for the floatcmp analyzer, loaded under "ras/internal/lp" (in
// scope).
package floatcmp

func eq(a, b float64) bool {
	return a == b // want `float == float compares exactly`
}

func neq(a, b float64) bool {
	return a != b // want `float != float compares exactly`
}

func constOperand(a float64) bool {
	return a == 0 // want `float == float compares exactly`
}

func ints(a, b int) bool {
	return a == b // integer comparison: fine
}

func ordered(a, b float64) bool {
	return a < b // ordered comparison: fine
}

// exactZero is a designated helper: exact comparison is its whole job.
func exactZero(v float64) bool { return v == 0 }
