// Fixture for the sharedwrite analyzer, loaded under "ras/internal/backend"
// (in the default sharedwrite scope). Result fan-in uses WaitGroup joins
// rather than channels so leakcheck (also scoped to backend) stays out of
// the picture and every finding below is sharedwrite's.
package backend

import "sync"

type tally struct {
	mu sync.Mutex
	n  int
}

// unguarded is the race: a captured local and a captured slice parameter
// both written from the goroutine with no lock held.
func unguarded(res []int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) { // want `parameter "res" \(\[\]int\) is captured by a go-launched function`
			defer wg.Done()
			total += i // want `variable "total" is declared outside this go-launched function and written without a lock held`
			res[i] = i // want `variable "res" is declared outside this go-launched function and written without a lock held`
		}(i)
	}
	wg.Wait()
	return total
}

// guarded holds the mutex across the write: lockcheck's may-held facts,
// rerun over the goroutine body, exempt it.
func guarded(t *tally) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.mu.Lock()
		t.n++ // silent: lock held at the write
		t.mu.Unlock()
	}()
	wg.Wait()
}

// confined writes only variables declared inside the launched function.
func confined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := 0
		local++ // silent: goroutine-local
		_ = local
	}()
	wg.Wait()
}

var launches int

// bump is flagged at its write because launchNamed starts it as a
// goroutine: `go name()` resolves same-package declarations like literals.
func bump() {
	launches++ // want `package-level variable "launches" is declared outside this go-launched function and written without a lock held`
}

func launchNamed() {
	go bump()
}
