package lint

// aliascheck: workspace and incumbent buffers must not escape the frame
// that owns them. This is the static form of the aliasing regression the
// parallel engine already shipped once: an engine published its candidate
// slice by reference (`e.incumbent = x`) instead of copying, a later
// in-place mutation of x leaked into the published incumbent, and the
// parallel solve became dependent on goroutine interleaving. The fix
// (`e.incumbent = append(e.incumbent[:0], x...)`) copies the backing array;
// this rule exists so the un-fix cannot come back.
//
// Three legs, all driven by the write-effect summaries (summary.go), all
// restricted to slice- and map-typed values — pointer identity sharing is
// deliberate architecture (engines hold references to each other), while a
// silently shared slice backing is the regression class:
//
//   - store leg: a slice/map parameter stored into longer-lived state — a
//     field reachable from the receiver or a pointer parameter, a
//     package-level variable, a channel — without an intervening copy. An
//     append into state rooted at the destination itself
//     (s.buf = append(s.buf[:0], x...)) introduces no alias and is clean.
//   - goroutine leg: a slice/map captured by a go-launched closure and then
//     written by the launching function after the launch: the goroutine can
//     observe the mutation, so ownership was never transferred.
//   - call leg: a slice/map parameter passed to a module function whose
//     post-fixpoint summary says it retains that parameter (stores it or
//     hands it to a goroutine). The alias is created at the call site, so
//     it is reported there — this is what makes the rule interprocedural
//     rather than a per-function pattern match.
//
// Summaries are computed module-wide, but findings are reported only inside
// Config.AliascheckScope (default: the solve stack) — the packages where a
// retained buffer crosses SolveWith re-entry or a goroutine boundary.

import (
	"go/token"
	"go/types"
	"sort"
)

func (c *Config) aliascheckScope() []string {
	if c.AliascheckScope != nil {
		return c.AliascheckScope
	}
	return defaultSolveScope
}

func runAliascheck(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	scope := cfg.aliascheckScope()
	for _, fn := range mf.order {
		ff := mf.facts[fn]
		if !inScope(scope, ff.node.pkg.Path) {
			continue
		}
		reportStores(ff, report)
		reportGoMutations(ff, report)
		reportRetainingCalls(mf, ff, report)
	}
}

// reportStores flags the intraprocedural escapes: slice/map parameters
// stored into longer-lived state or captured by a goroutine, recorded as
// storeEscape events by the collector.
func reportStores(ff *funcFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	type key struct {
		param int
		pos   token.Pos
	}
	seen := map[key]bool{}
	for _, st := range ff.stores {
		if !bufferLike(st.typ) {
			continue
		}
		k := key{st.param, st.pos}
		if seen[k] {
			continue
		}
		seen[k] = true
		p := ff.sum.params[st.param]
		what := "parameter"
		if st.param == 0 && isReceiver(ff.node.fn) {
			what = "receiver"
		}
		switch st.kind {
		case escStore:
			report(ff.node.pkg, st.pos,
				"%s %q (%s) is stored into %s, aliasing the caller's buffer past this call; copy it (append(dst[:0], src...)) instead",
				what, p.Name(), types.TypeString(st.typ, types.RelativeTo(ff.node.fn.Pkg())), st.dest)
		case escGo:
			report(ff.node.pkg, st.pos,
				"%s %q (%s) is captured by a go-launched function; the buffer escapes its owning goroutine",
				what, p.Name(), types.TypeString(st.typ, types.RelativeTo(ff.node.fn.Pkg())))
		}
	}
}

// reportGoMutations flags the capture-then-mutate pattern: a slice/map
// handed to a goroutine and then written by the launching function, so the
// goroutine races with its own caller over the shared backing.
func reportGoMutations(ff *funcFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	var caps []*types.Var
	for v := range ff.goCaps {
		caps = append(caps, v)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].Pos() < caps[j].Pos() })
	for _, v := range caps {
		if !bufferLike(v.Type()) {
			continue
		}
		capPos := ff.goCaps[v]
		for _, w := range ff.writes[v] {
			if w.insideGo || w.pos <= capPos {
				continue // the goroutine's own writes are sharedwrite's subject
			}
			report(ff.node.pkg, w.pos,
				"%q was captured by a goroutine launched earlier in this function and is written here; the goroutine can observe the mutation",
				v.Name())
			break // one finding per captured variable
		}
	}
}

// reportRetainingCalls flags the interprocedural leg: passing a slice/map
// parameter to a module function whose summary retains it.
func reportRetainingCalls(mf *moduleFacts, ff *funcFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	type key struct {
		pos    token.Pos
		target *types.Func
		param  int
	}
	seen := map[key]bool{}
	for _, call := range ff.calls {
		for _, target := range mf.resolveTargets(call.callee) {
			if target == ff.node.fn {
				continue // self-recursion retains nothing new
			}
			ts := mf.summaryOf(target)
			if ts == nil {
				continue
			}
			for j := range ts.effects {
				if j >= len(call.args) || call.args[j].empty() {
					continue
				}
				if len(call.args[j].params) == 0 {
					continue // only caller parameters are "owned buffers" here
				}
				te := ts.effects[j]
				if te.escape != escStore && te.escape != escGo {
					continue
				}
				if j >= len(ts.params) || !bufferLike(ts.params[j].Type()) {
					continue
				}
				k := key{call.pos, target, j}
				if seen[k] {
					continue
				}
				seen[k] = true
				argName := "buffer"
				if base := call.argBase[j]; base != nil {
					argName = base.Name()
				}
				report(ff.node.pkg, call.pos,
					"passes %q to %s, which retains it (%s); the buffer outlives this call — copy before passing or make the callee copy",
					argName, funcDisplayName(target), te.escape)
			}
		}
	}
}

// isReceiver reports whether fn is a method (so parameter slot 0 is its
// receiver).
func isReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
