package lint

// Structural tests for the SSA-lite layer: phi placement at joins and loop
// heads across if/for/range/switch, and def-use resolution through
// shadowing. Fixtures are type-checked through the same loader the
// analyzers use, so tracked-variable classification is exercised too.

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// buildTestSSA type-checks src (a complete file) and lowers the function
// named f.
func buildTestSSA(t *testing.T, src string) (*Package, *ssaFunc) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoaderAt(dir, "tmod")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir, "tmod")
	if err != nil {
		t.Fatalf("type-checking fixture: %v\n%s", err, src)
	}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
				sf := buildSSA(pkg, fd)
				if sf == nil {
					t.Fatal("buildSSA returned nil")
				}
				return pkg, sf
			}
		}
	}
	t.Fatal("no function named f in fixture")
	return nil, nil
}

// phisFor collects every phi placed for a variable with the given name.
func phisFor(f *ssaFunc, name string) []*ssaValue {
	var out []*ssaValue
	for _, b := range f.rpo {
		for _, p := range f.phis[b] {
			if p.obj.Name() == name {
				out = append(out, p)
			}
		}
	}
	return out
}

// usesOf collects the versions read by each use-ident with the given name,
// restricted to useRead sites.
func usesOf(f *ssaFunc, name string) []*ssaValue {
	var out []*ssaValue
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if v := f.useOf[id]; v != nil && f.kindOf[id] == useRead {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

func TestSSAPhiAtIfJoin(t *testing.T) {
	_, f := buildTestSSA(t, `package p

func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}
`)
	phis := phisFor(f, "x")
	if len(phis) != 1 {
		t.Fatalf("got %d phis for x, want 1 at the if join", len(phis))
	}
	if n := len(phis[0].phiArgs); n != 2 {
		t.Fatalf("join phi has %d args, want 2 (one per arm)", n)
	}
	for _, a := range phis[0].phiArgs {
		if a.kind != ssaDef {
			t.Errorf("phi arg kind = %v, want ssaDef", a.kind)
		}
	}
	// The return must read the phi, not either arm's definition.
	uses := usesOf(f, "x")
	if len(uses) != 1 || uses[0] != phis[0] {
		t.Fatalf("return reads %v, want the join phi", uses)
	}
}

func TestSSANoPhiWithoutBranchAssign(t *testing.T) {
	_, f := buildTestSSA(t, `package p

func f(c bool) int {
	x := 7
	y := 0
	if c {
		y = 1
	}
	_ = y
	return x
}
`)
	if phis := phisFor(f, "x"); len(phis) != 0 {
		t.Fatalf("x is single-assignment, got %d phis", len(phis))
	}
	if phis := phisFor(f, "y"); len(phis) != 1 {
		t.Fatalf("y merges at the join, got %d phis", len(phis))
	}
}

func TestSSAPhiAtForLoopHead(t *testing.T) {
	_, f := buildTestSSA(t, `package p

func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}
`)
	phis := phisFor(f, "s")
	if len(phis) != 1 {
		t.Fatalf("got %d phis for s, want 1 at the loop head", len(phis))
	}
	head := phis[0].block
	if !f.inLoop[head] {
		t.Fatal("the phi's block must sit on the loop cycle")
	}
	// One arg flows in from before the loop, one around the back edge; the
	// back-edge arg is the body's definition.
	if n := len(phis[0].phiArgs); n != 2 {
		t.Fatalf("loop phi has %d args, want 2 (entry and back edge)", n)
	}
	// The body's s = s + i reads the phi (loop-carried).
	readsPhi := false
	for _, u := range usesOf(f, "s") {
		if u == phis[0] {
			readsPhi = true
		}
	}
	if !readsPhi {
		t.Fatal("the loop body must read the loop-carried phi")
	}
}

func TestSSAPhiAtRangeHead(t *testing.T) {
	_, f := buildTestSSA(t, `package p

func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
`)
	phis := phisFor(f, "s")
	if len(phis) != 1 {
		t.Fatalf("got %d phis for s, want 1 at the range head", len(phis))
	}
	// The range binding v is a fresh per-iteration value; the head also
	// carries a (read-free) phi for it, but reads must resolve to the
	// binding itself.
	vVals := []*ssaValue{}
	for _, v := range f.values {
		if v.obj.Name() == "v" && v.kind == ssaRange {
			vVals = append(vVals, v)
		}
	}
	if len(vVals) != 1 {
		t.Fatalf("got %d ssaRange values for v, want 1", len(vVals))
	}
	// Its use inside the body resolves to the binding.
	uses := usesOf(f, "v")
	if len(uses) != 1 || uses[0] != vVals[0] {
		t.Fatalf("s += v reads %v, want the range binding", uses)
	}
}

func TestSSAPhiAtSwitchJoin(t *testing.T) {
	_, f := buildTestSSA(t, `package p

func f(k, y int) int {
	x := 0
	switch k {
	case 1:
		x = 1
	case y:
		x = 2
	}
	return x
}
`)
	phis := phisFor(f, "x")
	if len(phis) != 1 {
		t.Fatalf("got %d phis for x, want 1 after the switch", len(phis))
	}
	// Two case bodies plus the no-default skip edge.
	if n := len(phis[0].phiArgs); n != 3 {
		t.Fatalf("switch join phi has %d args, want 3", n)
	}
	// Case expressions evaluate in the head block: the `case y` read must
	// resolve to y's parameter version.
	uses := usesOf(f, "y")
	if len(uses) != 1 || uses[0].kind != ssaParam {
		t.Fatalf("case y reads %v, want the parameter version", uses)
	}
}

func TestSSAShadowedDefUse(t *testing.T) {
	pkg, f := buildTestSSA(t, `package p

func f(c bool) int {
	x := 1
	if c {
		x := 2
		_ = x
	}
	return x
}
`)
	// Two distinct objects named x; each use resolves to a version of its
	// own object. The inner x's join-block frontier phi is permitted (it is
	// never read), but the OUTER x must not merge: shadowing is not an
	// assignment.
	uses := usesOf(f, "x")
	if len(uses) != 2 {
		t.Fatalf("got %d reads of x, want 2 (_ = x and return x)", len(uses))
	}
	if uses[0].obj == uses[1].obj {
		t.Fatal("inner and outer x must resolve to distinct objects")
	}
	outer := uses[1].obj // AST order: the return reads the outer x
	for _, p := range phisFor(f, "x") {
		if p.obj == outer {
			t.Fatal("shadowing must not place a phi for the outer x")
		}
	}
	litOf := func(v *ssaValue) string {
		if bl, ok := ast.Unparen(v.rhs).(*ast.BasicLit); ok {
			return bl.Value
		}
		return "?"
	}
	// AST order visits the inner use first.
	if litOf(uses[0]) != "2" || litOf(uses[1]) != "1" {
		t.Fatalf("def-use chain crossed the shadow: inner reads %s, outer reads %s",
			litOf(uses[0]), litOf(uses[1]))
	}
	_ = pkg
}

func TestSSABareReturnSnapshotsNamedResults(t *testing.T) {
	_, f := buildTestSSA(t, `package p

func f(n int) (out int) {
	out = n
	return
}
`)
	if len(f.returns) != 1 {
		t.Fatalf("got %d return sites, want 1", len(f.returns))
	}
	site := f.returns[0]
	if len(site.named) != 1 || site.named[0] == nil {
		t.Fatalf("bare return snapshot = %v, want the reaching version of out", site.named)
	}
	if site.named[0].kind != ssaDef {
		t.Fatalf("snapshot kind = %v, want the ssaDef from out = n", site.named[0].kind)
	}
}

// keep imports honest if assertions above change shape
var _ = token.NoPos
