package lint

// Structural tests for the CFG builder. Graphs are built with a nil
// infoResolver (any call literally named "panic" terminates its block), so
// no type-checking is needed.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses `func f() { body }` and lowers it.
func buildTestCFG(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body, nil)
}

// reachableFrom floods the graph from b.
func reachableFrom(b *cfgBlock) map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{b: true}
	stack := []*cfgBlock{b}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func exitReachable(g *funcCFG) bool {
	return reachableFrom(g.entry)[g.exit]
}

func TestCFGStraightLine(t *testing.T) {
	g := buildTestCFG(t, "x := 1\n_ = x")
	if !exitReachable(g) {
		t.Fatal("straight-line body must reach the exit")
	}
	if n := len(g.preds()[g.exit]); n != 1 {
		t.Fatalf("exit preds = %d, want 1", n)
	}
	if len(g.entry.stmts) != 2 {
		t.Fatalf("entry holds %d stmts, want 2", len(g.entry.stmts))
	}
}

func TestCFGIfJoins(t *testing.T) {
	// Both arms flow to the statement after the if, which returns.
	g := buildTestCFG(t, "if c() {\n\ta()\n} else {\n\tb()\n}\nd()")
	if !exitReachable(g) {
		t.Fatal("if/else must reach the exit")
	}
	// Exactly one path into exit: the join block after the if.
	if n := len(g.preds()[g.exit]); n != 1 {
		t.Fatalf("exit preds = %d, want 1 (the join block)", n)
	}
}

func TestCFGIfWithoutElseSkipsBody(t *testing.T) {
	g := buildTestCFG(t, "if c() {\n\ta()\n}\nb()")
	// The cond block must edge both into the body and around it.
	var condBlock *cfgBlock
	for _, blk := range g.blocks {
		for _, st := range blk.stmts {
			if _, ok := st.(*ast.IfStmt); ok {
				condBlock = blk
			}
		}
	}
	if condBlock == nil {
		t.Fatal("no block holds the IfStmt")
	}
	if len(condBlock.succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2 (body and join)", len(condBlock.succs))
	}
}

func TestCFGReturnsEdgeToExit(t *testing.T) {
	g := buildTestCFG(t, "if c() {\n\treturn\n}\nreturn")
	// The builder leaves a dead block after the trailing return whose
	// natural fallthrough also edges into exit; count live paths only.
	live := reachableFrom(g.entry)
	n := 0
	for _, p := range g.preds()[g.exit] {
		if live[p] {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("reachable exit preds = %d, want 2 (one per return)", n)
	}
}

func TestCFGInfiniteLoopNeverExits(t *testing.T) {
	g := buildTestCFG(t, "for {\n\tx()\n}")
	if exitReachable(g) {
		t.Fatal("for{} without break must not reach the exit")
	}
}

func TestCFGLoopBreakExits(t *testing.T) {
	g := buildTestCFG(t, "for {\n\tif c() {\n\t\tbreak\n\t}\n}")
	if !exitReachable(g) {
		t.Fatal("break must restore a path to the exit")
	}
}

func TestCFGForCondLoops(t *testing.T) {
	g := buildTestCFG(t, "for i := 0; i < 3; i++ {\n\tx()\n}\ny()")
	if !exitReachable(g) {
		t.Fatal("conditional for must reach the exit")
	}
	// The head must participate in a cycle: some reachable block edges back
	// into it.
	var head *cfgBlock
	for _, blk := range g.blocks {
		for _, st := range blk.stmts {
			if _, ok := st.(*ast.ForStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no block holds the ForStmt")
	}
	if !reachableFrom(head)[head] {
		t.Fatal("loop head is not on a cycle")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}")
	if !exitReachable(g) {
		t.Fatal("labeled break out of both loops must reach the exit")
	}
}

func TestCFGGotoForwardAndBack(t *testing.T) {
	g := buildTestCFG(t, "goto done\ndone:\nreturn")
	if !exitReachable(g) {
		t.Fatal("forward goto must reach the labeled return")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := buildTestCFG(t, "panic(\"boom\")")
	if exitReachable(g) {
		t.Fatal("a body that always panics must not reach the exit")
	}
}

func TestCFGPanicBranchDropsPath(t *testing.T) {
	g := buildTestCFG(t, "if c() {\n\tpanic(\"boom\")\n}\nx()")
	if !exitReachable(g) {
		t.Fatal("the non-panicking arm must still reach the exit")
	}
	// The panic block must have no successors.
	for _, blk := range g.blocks {
		for _, st := range blk.stmts {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if len(blk.succs) != 0 {
						t.Fatalf("panic block has %d successors, want 0", len(blk.succs))
					}
				}
			}
		}
	}
}

func TestCFGSwitchWithoutDefaultSkips(t *testing.T) {
	g := buildTestCFG(t, "switch v() {\ncase 1:\n\ta()\ncase 2:\n\tb()\n}\nx()")
	var head *cfgBlock
	for _, blk := range g.blocks {
		for _, st := range blk.stmts {
			if _, ok := st.(*ast.SwitchStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no block holds the SwitchStmt")
	}
	// head → case1, case2, and the after block (no default).
	if len(head.succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3", len(head.succs))
	}
}

func TestCFGSwitchFallthroughChains(t *testing.T) {
	g := buildTestCFG(t, "switch v() {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\treturn\ndefault:\n\tb()\n}")
	if !exitReachable(g) {
		t.Fatal("switch must reach the exit")
	}
	// With a default present there is no head→after edge; the only paths to
	// exit run through a case.
	var head *cfgBlock
	for _, blk := range g.blocks {
		for _, st := range blk.stmts {
			if _, ok := st.(*ast.SwitchStmt); ok {
				head = blk
			}
		}
	}
	if len(head.succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3 (each clause, no skip edge)", len(head.succs))
	}
}

func TestCFGSelectBlocksWithoutDefault(t *testing.T) {
	g := buildTestCFG(t, "select {\ncase <-a:\n\tx()\ncase b <- 1:\n\ty()\n}\nz()")
	var head *cfgBlock
	for _, blk := range g.blocks {
		for _, st := range blk.stmts {
			if _, ok := st.(*ast.SelectStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no block holds the SelectStmt")
	}
	// Without a default every path runs one comm clause: exactly two
	// successors, no skip edge.
	if len(head.succs) != 2 {
		t.Fatalf("select head has %d successors, want 2", len(head.succs))
	}
	if !exitReachable(g) {
		t.Fatal("select with cases must flow on to the exit")
	}
}

func TestCFGEmptySelectTerminates(t *testing.T) {
	g := buildTestCFG(t, "select {}\nx()")
	if exitReachable(g) {
		t.Fatal("select{} blocks forever; the exit must be unreachable")
	}
}

func TestCFGRangeMayBeEmpty(t *testing.T) {
	g := buildTestCFG(t, "for range xs() {\n\tx()\n}\ny()")
	if !exitReachable(g) {
		t.Fatal("range over a possibly-empty sequence must reach the exit")
	}
}
