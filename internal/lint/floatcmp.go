package lint

// floatcmp: in the numerical core (the simplex and branch-and-bound code),
// == and != between floating-point values are almost always a bug — values
// that are mathematically equal differ in the last ulp after different
// pivot orders, which is exactly the kind of run-to-run divergence the
// determinism work exists to prevent. Comparisons belong behind tolerance
// checks (math.Abs(a-b) <= tol) or, for the sparsity convention "an entry
// stored as exact zero is absent", inside one of the designated
// exact-comparison helpers (Config.FloatcmpHelpers), whose bodies are the
// single documented place the convention lives.

import (
	"go/ast"
	"go/token"
)

func runFloatcmp(cfg *Config, pkg *Package, report reportFunc) {
	if !inScope(cfg.floatcmpScope(), pkg.Path) {
		return
	}
	helpers := cfg.floatcmpHelpers()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if helpers[fd.Name.Name] {
				continue // designated exact-comparison helper
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				// Either side float suffices: an untyped constant operand
				// (x == 0) may be recorded under its default type, but the
				// comparison is still a float comparison.
				xt, xok := pkg.Info.Types[be.X]
				yt, yok := pkg.Info.Types[be.Y]
				if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
					return true
				}
				report(be.OpPos, "float %s float compares exactly; use a tolerance or a designated helper (%v)", be.Op, cfg.floatcmpHelperNames())
				return true
			})
		}
	}
}

// floatcmpHelperNames reports the configured helper names for messages.
func (c *Config) floatcmpHelperNames() []string {
	if c.FloatcmpHelpers != nil {
		return c.FloatcmpHelpers
	}
	return DefaultFloatcmpHelpers
}
