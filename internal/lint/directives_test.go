package lint

// Unit tests for the //raslint:allow escape-comment parser: line attribution
// (end-of-line vs standalone), reason capture, and every malformed shape —
// missing rule, unknown rule, missing reason, unknown verb — being reported
// as an error rather than silently ignored.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseFixture writes src to disk (fileCodeLines re-reads the file bytes) and
// parses it with comments.
func parseFixture(t *testing.T, src string) (*token.FileSet, *ast.File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fixture.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return fset, file, path
}

func knownRuleSet() map[string]bool {
	known := map[string]bool{}
	for _, name := range RuleNames() {
		known[name] = true
	}
	return known
}

// firstComment returns the first comment of file containing substr.
func firstComment(t *testing.T, file *ast.File, substr string) *ast.Comment {
	t.Helper()
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, substr) {
				return c
			}
		}
	}
	t.Fatalf("no comment containing %q", substr)
	return nil
}

func TestParseDirectiveInlineAndStandalone(t *testing.T) {
	fset, file, _ := parseFixture(t, `package p

var a = 1 //raslint:allow errdrop inline: reason with several words

//raslint:allow floatcmp standalone form
var b = 2
`)
	known := knownRuleSet()
	codeLines := fileCodeLines(fset, file)

	inline, ok, err := parseDirective(fset, firstComment(t, file, "errdrop"), known, codeLines)
	if err != nil || !ok {
		t.Fatalf("inline directive: ok=%v err=%v", ok, err)
	}
	if inline.rule != "errdrop" {
		t.Errorf("inline rule = %q, want errdrop", inline.rule)
	}
	if inline.reason != "inline: reason with several words" {
		t.Errorf("inline reason = %q", inline.reason)
	}
	if inline.line != 3 {
		t.Errorf("inline directive suppresses line %d, want 3 (its own line)", inline.line)
	}

	standalone, ok, err := parseDirective(fset, firstComment(t, file, "floatcmp"), known, codeLines)
	if err != nil || !ok {
		t.Fatalf("standalone directive: ok=%v err=%v", ok, err)
	}
	if standalone.line != 6 {
		t.Errorf("standalone directive suppresses line %d, want 6 (the next line)", standalone.line)
	}
}

func TestParseDirectiveIgnoresOrdinaryComments(t *testing.T) {
	fset, file, _ := parseFixture(t, `package p

// just a comment mentioning raslint:allow in prose, not at the start
var a = 1
`)
	_, ok, err := parseDirective(fset, file.Comments[0].List[0], knownRuleSet(), fileCodeLines(fset, file))
	if ok || err != nil {
		t.Errorf("ordinary comment: ok=%v err=%v, want false/nil", ok, err)
	}
}

func TestParseDirectiveMalformed(t *testing.T) {
	cases := []struct {
		name      string
		directive string
		wantErr   string
	}{
		{"unknown verb", "//raslint:deny errdrop whatever", `unknown raslint directive "deny"`},
		{"missing rule", "//raslint:allow", "needs a rule name"},
		{"unknown rule", "//raslint:allow nosuchrule because", `unknown rule "nosuchrule"`},
		{"missing reason", "//raslint:allow errdrop", "needs a reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, file, _ := parseFixture(t, "package p\n\nvar a = 1 "+tc.directive+"\n")
			_, ok, err := parseDirective(fset, firstComment(t, file, "raslint:"), knownRuleSet(), fileCodeLines(fset, file))
			if ok {
				t.Fatalf("malformed directive parsed as valid")
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseDirectivesIndexesAndReports(t *testing.T) {
	fset, file, path := parseFixture(t, `package p

var a = 1 //raslint:allow errdrop first

//raslint:allow determinism second
var b = 2

var c = 3 //raslint:allow bogus third
`)
	pkg := &Package{Path: "p", Name: "p", Fset: fset, Files: []*ast.File{file}}
	var reported []string
	set := newDirectiveSet()
	parseDirectives(pkg, knownRuleSet(), set, func(pos token.Pos, rule, format string, args ...any) {
		p := fset.Position(pos)
		reported = append(reported, fmt.Sprintf("%s@%s:%d", rule, p.Filename, p.Line))
	})

	if !set.allowed(token.Position{Filename: path, Line: 3}, "errdrop") {
		t.Errorf("line 3 should allow errdrop")
	}
	if set.allowed(token.Position{Filename: path, Line: 3}, "floatcmp") {
		t.Errorf("line 3 must not allow a rule the directive did not name")
	}
	if !set.allowed(token.Position{Filename: path, Line: 6}, "determinism") {
		t.Errorf("line 6 should allow determinism (standalone directive on line 5)")
	}
	if set.allowed(token.Position{Filename: path, Line: 5}, "determinism") {
		t.Errorf("line 5 (the standalone directive itself) should not allow anything")
	}
	if len(reported) != 1 || reported[0] != fmt.Sprintf("directive@%s:8", path) {
		t.Errorf("malformed directives reported = %v, want exactly [directive@%s:8]", reported, path)
	}
}
