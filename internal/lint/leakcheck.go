package lint

// leakcheck: goroutine-leak candidates in the solve stack. The paper's
// Async Solver re-optimizes continuously off the critical path and is
// cancelled and restarted routinely, so a worker that can only ever exit
// by completing an unguarded channel send or receive leaks the moment its
// peer stops listening — it pins its clone of the problem (hundreds of MB
// at region scale) for the life of the process.
//
// The rule, scoped to Config.LeakcheckScope (default internal/mip,
// internal/localsearch, internal/backend): for every `go` statement, if
// the launched function's body contains at least one blocking channel
// operation (send, receive, or range over a channel) and no escape hatch —
// no `select` with a `default` clause or a `<-ctx.Done()` case, and no
// direct receive from ctx.Done() — then every exit of that goroutine is an
// unguarded rendezvous and it is reported as a leak candidate.
//
// Known false positives/negatives, by design (see DESIGN.md): a buffered
// channel's first send never blocks but is still flagged (the capacity is
// a dynamic property); receives from time.After or other always-completing
// sources count as blocking; a goroutine that blocks on a WaitGroup or a
// bare cond.Wait instead of a channel is not flagged (no channel op).

import (
	"go/ast"
	"go/token"
	"go/types"
)

var defaultLeakScope = []string{
	"ras/internal/mip",
	"ras/internal/localsearch",
	"ras/internal/backend",
}

func (c *Config) leakcheckScope() []string {
	if c.LeakcheckScope != nil {
		return c.LeakcheckScope
	}
	return defaultLeakScope
}

func runLeakcheck(cfg *Config, pkg *Package, report reportFunc) {
	if !inScope(cfg.leakcheckScope(), pkg.Path) {
		return
	}
	// Index the package's own function declarations so `go doWork()` can
	// be analyzed alongside `go func(){...}()`.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if fn := funcObjOf(pkg.Info, gs.Call.Fun); fn != nil {
					if fd, ok := decls[fn]; ok {
						body = fd.Body
					}
				}
			}
			if body == nil {
				return true // cross-package or dynamic target: not analyzable
			}
			if pos, leaky := goroutineLeaks(pkg.Info, body); leaky {
				report(gs.Pos(), "goroutine's only exits are unguarded channel operations (first at %s); select on ctx.Done() or add a default",
					pkg.Fset.Position(pos))
			}
			return true
		})
	}
}

// goroutineLeaks scans one goroutine body. It reports the position of the
// first unguarded blocking channel operation, and whether the body has at
// least one such operation but no escape hatch.
func goroutineLeaks(info *types.Info, body *ast.BlockStmt) (token.Pos, bool) {
	var firstUnguarded token.Pos
	guarded := false

	// selectDepth tracks whether the walker is inside a select's comm
	// clauses, where sends/receives are the select's alternatives rather
	// than unconditional rendezvous.
	var walk func(n ast.Node, inSelect bool)
	walk = func(n ast.Node, inSelect bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.FuncLit:
				// A nested literal runs only if called; a nested `go`
				// launches a goroutine of its own, checked at its own go
				// statement. Either way its ops are not this goroutine's.
				return false
			case *ast.SelectStmt:
				if selectHasEscape(info, s) {
					guarded = true
				}
				for _, cl := range s.Body.List {
					comm := cl.(*ast.CommClause)
					if comm.Comm != nil {
						walk(comm.Comm, true)
					}
					for _, st := range comm.Body {
						walk(st, false)
					}
				}
				return false
			case *ast.SendStmt:
				if !inSelect && firstUnguarded == token.NoPos {
					firstUnguarded = s.Pos()
				}
				return true
			case *ast.UnaryExpr:
				if s.Op == token.ARROW {
					if isCtxDoneChannel(info, s.X) {
						guarded = true
					} else if !inSelect && firstUnguarded == token.NoPos {
						firstUnguarded = s.Pos()
					}
				}
				return true
			case *ast.RangeStmt:
				if tv, ok := info.Types[s.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && firstUnguarded == token.NoPos {
						firstUnguarded = s.Pos()
					}
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	return firstUnguarded, firstUnguarded != token.NoPos && !guarded
}

// selectHasEscape reports whether the select can always make progress or
// terminate on cancellation: a default clause, or a case receiving from a
// context's Done channel.
func selectHasEscape(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		comm := cl.(*ast.CommClause)
		if comm.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		if ue, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			if isCtxDoneChannel(info, ue.X) {
				return true
			}
		}
	}
	return false
}

// isCtxDoneChannel reports whether e is a call to the Done method of a
// context.Context (or of anything with a context-shaped Done).
func isCtxDoneChannel(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && isContextType(tv.Type) {
		return true
	}
	// Done() on a field or helper that returns <-chan struct{} is the
	// same escape hatch even off a non-Context receiver.
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if ch, isChan := tv.Type.Underlying().(*types.Chan); isChan && ch.Dir() == types.RecvOnly {
			return true
		}
	}
	return false
}
