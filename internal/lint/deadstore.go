package lint

// deadstore: a write to a local variable or a workspace-owned buffer
// element that no execution path reads before it is overwritten or the
// function returns. In the solve stack these are rarely harmless: a dead
// write to a Devex reference weight or a factorization workspace usually
// means the *intended* read is using a stale value from the previous
// iteration.
//
// Two analyses share the SSA form:
//
//   - Scalar liveness: a definition is live when its value reaches an
//     anchor read (any use outside the RHS of another tracked definition:
//     conditions, calls, returns, element-store operands) directly or
//     through phi nodes and later definitions. Dead definitions are
//     reported, cascading: if x += y only feeds a dead value, the x it
//     read is re-examined too.
//
//   - Buffer element stores: for a function-owned buffer — every
//     definition is make() or a composite literal, it is not a parameter
//     or named result, and no range binding, defer, or goroutine touches
//     it — a store buf[i] = v is dead when no read of the buffer is
//     CFG-reachable from the store. Same-index overwrites are NOT
//     tracked: a store followed by a full-buffer read is conservatively
//     live even if every element is overwritten first (documented false
//     negative).
//
// Variables whose address is taken, that escape into closures, or that
// are struct fields are untracked by the SSA layer and never reported.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func (c *Config) deadstoreScope() []string {
	if c.DeadstoreScope != nil {
		return c.DeadstoreScope
	}
	return defaultSolveScope
}

func runDeadstore(cfg *Config, pkgs []*Package, mf *moduleFacts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	scope := cfg.deadstoreScope()
	va := mf.valueAnalysisFor(cfg)
	for _, fn := range mf.order {
		node := mf.graph.nodes[fn]
		if node == nil || !inScope(scope, node.pkg.Path) {
			continue
		}
		f := va.ssaOf(fn)
		if f == nil {
			continue
		}
		checkScalarDeadStores(node.pkg, f, report)
		checkBufferDeadStores(node.pkg, f, report)
	}
}

// defRHSExprs lists the expressions whose reads feed def d.
func defRHSExprs(d *ssaValue) []ast.Expr {
	if !d.tuple {
		var out []ast.Expr
		if d.rhs != nil {
			out = append(out, d.rhs)
		}
		if d.opRhs != nil {
			out = append(out, d.opRhs)
		}
		return out
	}
	switch st := d.stmt.(type) {
	case *ast.AssignStmt:
		return st.Rhs
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	}
	return nil
}

func checkScalarDeadStores(pkg *Package, f *ssaFunc, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	// feeders[d] lists the values whose reads the definition of d consumes;
	// feedingIdents marks the use sites sitting inside some definition's RHS
	// so the anchor scan below can skip them.
	feeders := map[*ssaValue][]*ssaValue{}
	feedingIdents := map[*ast.Ident]bool{}
	for _, d := range f.values {
		if d.kind != ssaDef || d.stmt == nil {
			continue
		}
		if d.prev != nil {
			feeders[d] = append(feeders[d], d.prev)
		}
		for _, e := range defRHSExprs(d) {
			if !removableExpr(f.pkg.Info, e) {
				// Dead-store elimination keeps an effectful RHS (x =
				// f(free) becomes f(free)): its reads survive the dead
				// assignment, so they anchor liveness below instead of
				// feeding the defined value.
				continue
			}
			ast.Inspect(e, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.Ident:
					if u := f.useOf[x]; u != nil && f.kindOf[x] == useRead {
						feeders[d] = append(feeders[d], u)
						feedingIdents[x] = true
					}
				}
				return true
			})
		}
	}

	live := map[*ssaValue]bool{}
	var work []*ssaValue
	mark := func(v *ssaValue) {
		if v != nil && !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}
	// Anchors: reads outside definition RHSes, element-store bases (the
	// buffer analysis owns store deadness; the slice header itself is in
	// use), and named results snapshotted at bare returns.
	for id, u := range f.useOf {
		if f.kindOf[id] == useElemStore || !feedingIdents[id] {
			mark(u)
		}
	}
	for _, site := range f.returns {
		for _, v := range site.named {
			mark(v)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range v.phiArgs {
			mark(a)
		}
		for _, a := range feeders[v] {
			mark(a)
		}
	}

	for _, v := range f.values {
		if v.kind != ssaDef || v.tuple || live[v] || v.stmt == nil {
			continue
		}
		if f.namedResults[v.obj] {
			continue
		}
		report(pkg, v.pos, "dead store: the value assigned to %s is never read before it is overwritten or the function returns", v.obj.Name())
	}
}

// removableExpr reports whether eliminating a dead store to `x = e` also
// eliminates the evaluation of e: no function calls (pure builtins and
// conversions excepted) and no channel receives. Calls inside function
// literals do not run when the literal is merely built.
func removableExpr(info *types.Info, e ast.Expr) bool {
	removable := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				removable = false
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max", "real", "imag", "complex":
						return true
					}
				}
			}
			removable = false
		}
		return true
	})
	return removable
}

// bufferOwned reports whether every definition of obj is a fresh make() or
// composite literal, so the function exclusively owns the backing array.
func bufferOwned(f *ssaFunc, obj *types.Var, vals []*ssaValue) bool {
	if f.namedResults[obj] {
		return false
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
		return false
	}
	sawDef := false
	for _, v := range vals {
		switch v.kind {
		case ssaPhi:
			continue
		case ssaDef:
			if v.tuple || v.rhs == nil || !freshBufferExpr(f.pkg.Info, v.rhs) {
				return false
			}
			sawDef = true
		default:
			// Parameters, zero values (nil slice), and range bindings all
			// alias memory the caller or another structure can observe.
			return false
		}
	}
	return sawDef
}

// freshBufferExpr recognizes make([]T, ...) and composite literals.
func freshBufferExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return true
			}
		}
	}
	return false
}

type bufferSite struct {
	id    *ast.Ident
	stmt  ast.Stmt
	block *cfgBlock
	index int
}

func checkBufferDeadStores(pkg *Package, f *ssaFunc, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	valsOf := map[*types.Var][]*ssaValue{}
	for _, v := range f.values {
		valsOf[v.obj] = append(valsOf[v.obj], v)
	}

	// Collect per-variable store and read sites, and disqualify buffers a
	// defer or goroutine reads: those reads execute at times the CFG does
	// not model.
	stores := map[*types.Var][]bufferSite{}
	reads := map[*types.Var][]bufferSite{}
	deferred := map[*types.Var]bool{}
	for id, u := range f.useOf {
		st := f.useStmt[id]
		if st == nil {
			continue
		}
		site := bufferSite{id: id, stmt: st, block: f.stmtBlock[st], index: f.stmtIndex[st]}
		if site.block == nil {
			continue
		}
		switch f.kindOf[id] {
		case useElemStore:
			stores[u.obj] = append(stores[u.obj], site)
		case useRead:
			reads[u.obj] = append(reads[u.obj], site)
			switch st.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				deferred[u.obj] = true
			}
		}
	}

	var owned []*types.Var
	for obj := range stores {
		if !deferred[obj] && bufferOwned(f, obj, valsOf[obj]) {
			owned = append(owned, obj)
		}
	}
	sort.Slice(owned, func(i, j int) bool { return owned[i].Pos() < owned[j].Pos() })

	for _, obj := range owned {
		sts := stores[obj]
		sort.Slice(sts, func(i, j int) bool { return sts[i].id.Pos() < sts[j].id.Pos() })
		for _, s := range sts {
			if !readReachable(f, s, reads[obj]) {
				report(pkg, s.stmt.Pos(), "dead store: no read of %s is reachable from this element store before the function returns", obj.Name())
			}
		}
	}
}

// readReachable reports whether any read site executes on some path after
// the store: later in the same block, or anywhere in a block reachable
// from the store's successors.
func readReachable(f *ssaFunc, store bufferSite, reads []bufferSite) bool {
	hasRead := map[*cfgBlock]bool{}
	for _, r := range reads {
		hasRead[r.block] = true
		if r.block == store.block && r.index > store.index {
			return true
		}
	}
	seen := map[*cfgBlock]bool{}
	queue := append([]*cfgBlock{}, store.block.succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if hasRead[b] {
			return true
		}
		queue = append(queue, b.succs...)
	}
	return false
}
