package lint

// Interprocedural value facts riding the summary engine's call graph
// (summary.go). Where effectSummary answers "what does this function
// write", the return facts here answer "what can its results be assumed to
// be": proven-nonzero / proven-positive / proven-nonnegative floats, and
// integer results proven within [0, len(param)) for a specific parameter.
// Callee facts feed the per-function evaluator (interval.go), which is what
// lets a pivot accessor guard one division site for every caller, and a
// findCol-style index lookup prove the indexing at its call sites.
//
// The fixpoint is increasing: facts start empty and a round re-proves every
// function's return sites against the facts established so far, repeating
// until nothing new is proven. Proofs only ever consume established facts,
// so every intermediate state is sound; mutual recursion simply converges
// to "no facts". Evaluator caches are rebuilt each round because memoized
// intervals embed the previous round's callee facts.

import (
	"go/ast"
	"go/types"
)

// resultFact is what is proven about one result of one function, over every
// reachable return site.
type resultFact struct {
	nonzero  bool // float: != 0 on every return
	positive bool // float: > 0 on every return
	nonneg   bool // float: >= 0 on every return
	// ltLenOf, when >= 0, names the paramVars index P (receiver first) such
	// that the result is proven within [0, len(P)) on every return; -1
	// otherwise.
	ltLenOf int
}

// returnFacts carries one fact per signature result.
type returnFacts struct {
	results []resultFact
}

// valueAnalysis is the module-wide value-dataflow state: SSA form per
// function plus the post-fixpoint return facts. Built lazily by the first
// value rule in a run and shared by the rest (module analyzers run
// serially).
type valueAnalysis struct {
	mf      *moduleFacts
	helpers map[string]bool
	ssa     map[*types.Func]*ssaFunc
	ret     map[*types.Func]*returnFacts
	// evals caches one evaluator per function for rule-time queries, built
	// against the final fact table.
	evals map[*types.Func]*evaluator
}

// valueAnalysisFor returns the run's shared value analysis, building it on
// first use.
func (mf *moduleFacts) valueAnalysisFor(cfg *Config) *valueAnalysis {
	if mf.va == nil {
		mf.va = newValueAnalysis(mf, cfg)
	}
	return mf.va
}

func newValueAnalysis(mf *moduleFacts, cfg *Config) *valueAnalysis {
	va := &valueAnalysis{
		mf:      mf,
		helpers: cfg.floatcmpHelpers(),
		ssa:     map[*types.Func]*ssaFunc{},
		ret:     map[*types.Func]*returnFacts{},
		evals:   map[*types.Func]*evaluator{},
	}
	for _, fn := range mf.order {
		node := mf.graph.nodes[fn]
		if node == nil || node.decl == nil || node.decl.Body == nil {
			continue
		}
		va.ssa[fn] = buildSSA(node.pkg, node.decl)
	}
	va.computeReturnFacts()
	return va
}

// evaluatorFor returns the rule-time evaluator of fn, nil when fn has no
// SSA form.
func (va *valueAnalysis) evaluatorFor(fn *types.Func) *evaluator {
	if ev, ok := va.evals[fn]; ok {
		return ev
	}
	f := va.ssa[fn]
	if f == nil {
		va.evals[fn] = nil
		return nil
	}
	ev := newEvaluator(va, f)
	va.evals[fn] = ev
	return ev
}

// ssaOf returns fn's SSA form, nil when unavailable.
func (va *valueAnalysis) ssaOf(fn *types.Func) *ssaFunc {
	return va.ssa[fn]
}

// computeReturnFacts iterates return-site proofs to a fixpoint.
func (va *valueAnalysis) computeReturnFacts() {
	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range va.mf.order {
			f := va.ssa[fn]
			if f == nil {
				continue
			}
			rf := va.proveFn(fn, f)
			if rf == nil {
				continue
			}
			old := va.ret[fn]
			if old == nil || factsGrew(old, rf) {
				va.ret[fn] = rf
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// factsGrew reports whether new establishes a fact old lacked.
func factsGrew(old, new *returnFacts) bool {
	for i := range new.results {
		if i >= len(old.results) {
			return true
		}
		o, n := old.results[i], new.results[i]
		if (n.nonzero && !o.nonzero) || (n.positive && !o.positive) ||
			(n.nonneg && !o.nonneg) || (n.ltLenOf >= 0 && o.ltLenOf < 0) {
			return true
		}
	}
	return false
}

// proveFn proves fn's per-result facts over every reachable return site,
// against the current fact table.
func (va *valueAnalysis) proveFn(fn *types.Func, f *ssaFunc) *returnFacts {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 || len(f.returns) == 0 {
		return nil
	}
	nRes := sig.Results().Len()
	params := paramVars(fn)

	rf := &returnFacts{results: make([]resultFact, nRes)}
	for i := range rf.results {
		rf.results[i] = resultFact{nonzero: true, positive: true, nonneg: true, ltLenOf: -2}
	}
	// A fresh evaluator each call: memoized intervals embed callee facts
	// from the round they were computed in.
	ev := newEvaluator(va, f)

	for _, site := range f.returns {
		for i := 0; i < nRes; i++ {
			res := &rf.results[i]
			var expr ast.Expr
			var val *ssaValue
			switch {
			case len(site.stmt.Results) == nRes:
				expr = site.stmt.Results[i]
			case len(site.stmt.Results) == 0 && i < len(site.named):
				val = site.named[i]
			}
			rt := sig.Results().At(i).Type()
			if isFloat(rt) {
				nz, pos, nn := va.proveFloatSite(ev, expr, val, site.block)
				res.nonzero = res.nonzero && nz
				res.positive = res.positive && pos
				res.nonneg = res.nonneg && nn
				res.ltLenOf = -1
				continue
			}
			res.nonzero, res.positive, res.nonneg = false, false, false
			if bt, okB := rt.Underlying().(*types.Basic); okB && bt.Info()&types.IsInteger != 0 {
				p := va.proveLtLenSite(ev, f, params, expr, val, site.block)
				switch {
				case res.ltLenOf == -2:
					res.ltLenOf = p
				case res.ltLenOf != p:
					res.ltLenOf = -1
				}
			} else {
				res.ltLenOf = -1
			}
		}
	}
	for i := range rf.results {
		if rf.results[i].ltLenOf == -2 {
			rf.results[i].ltLenOf = -1
		}
	}
	return rf
}

// proveFloatSite proves the three float facts for one returned value at one
// site.
func (va *valueAnalysis) proveFloatSite(ev *evaluator, expr ast.Expr, val *ssaValue, b *cfgBlock) (nz, pos, nn bool) {
	switch {
	case expr != nil:
		return ev.provenNonzero(expr, b, 0), ev.provenPositive(expr, b, 0), ev.provenNonNeg(expr, b, 0)
	case val != nil:
		nz = ev.provenFactValue(val, factNonzero, b, 0)
		pos = ev.provenFactValue(val, factPositive, b, 0)
		nn = ev.provenFactValue(val, factNonNeg, b, 0)
		return nz || pos, pos, nn || pos
	}
	return false, false, false
}

// proveLtLenSite proves a returned integer within [0, len(param)) and
// resolves which parameter, -1 when unproven.
func (va *valueAnalysis) proveLtLenSite(ev *evaluator, f *ssaFunc, params []*types.Var, expr ast.Expr, val *ssaValue, b *cfgBlock) int {
	var iv interval
	switch {
	case expr != nil:
		var pend bool
		iv, pend = ev.exprInterval(expr, b, 0)
		if pend {
			return -1
		}
	case val != nil:
		iv = ev.useInterval(val, b, 0)
	default:
		return -1
	}
	if !loGEZero(iv.lo) {
		return -1
	}
	if iv.hi.inf || iv.hi.lenOf == nil || iv.hi.c > -1 {
		return -1
	}
	// The length symbol must be the entry version of a parameter: its
	// length is then the caller's argument length.
	sym := iv.hi.lenOf
	for pi, p := range params {
		if f.entryVals[p] == sym {
			return pi
		}
	}
	return -1
}
