package lint

// sharedwrite: a variable written from inside a go-launched function must
// be protected or private. POP-style partitioned solving (internal/backend)
// and the parallel branch-and-bound engine fan work out to goroutines that
// report results back; the only sound ways to do that are a lock held at
// the write (per lockcheck's may-held dataflow, rerun over the goroutine
// body), an atomic (a method call, invisible to this rule's
// direct-assignment check by construction), or confinement — the variable
// is declared inside the launched function, so no one else can see it.
// Everything else is a data race that `go test -race` only reports when a
// test happens to drive the interleaving.
//
// The check: for every `go` statement whose target body is visible (a
// function literal, or a same-package function declaration — same
// resolution as leakcheck), classify each direct assignment and inc/dec in
// that body. If the written lvalue's base variable is declared outside the
// launched function — a captured local, a field chain rooted at a captured
// receiver, or a package-level variable — and no lock is held at that
// statement, report it. The safe patterns the solver actually uses remain
// clean: worker functions that only touch their own parameters and locals,
// results sent over channels, and mutations under the mutex that lockcheck
// already polices.
//
// Deliberate seams, documented in DESIGN.md: writes inside function
// literals nested in the goroutine body are not classified (the nested
// literal is analyzed at its own `go` statement if launched; inline calls
// are interprocedural and belong to globalwrite/aliascheck), calls made by
// the goroutine are not followed for the same reason, and a write through
// a goroutine-local pointer into captured state (p := &shared; p.f = 1)
// is a known false negative of base-variable classification. The
// WaitGroup-join pattern — goroutines writing disjoint slice elements, the
// launcher reading only after Wait — is sound but indistinguishable from a
// race at this level; such sites carry a //raslint:allow sharedwrite with
// the disjointness argument spelled out.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func (c *Config) sharedwriteScope() []string {
	if c.SharedwriteScope != nil {
		return c.SharedwriteScope
	}
	return defaultSolveScope
}

func runSharedwrite(cfg *Config, pkg *Package, report reportFunc) {
	if !inScope(cfg.sharedwriteScope(), pkg.Path) {
		return
	}
	// Same-package function declarations, so `go worker(...)` is analyzed
	// like `go func(){...}()`.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var lo, hi token.Pos
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body, lo, hi = fun.Body, fun.Pos(), fun.End()
			default:
				if fn := funcObjOf(pkg.Info, gs.Call.Fun); fn != nil {
					if fd, ok := decls[fn]; ok {
						body, lo, hi = fd.Body, fd.Pos(), fd.End()
					}
				}
			}
			if body == nil {
				return true // cross-package or dynamic target: not analyzable
			}
			checkGoroutineWrites(pkg, gs, body, lo, hi, report)
			return true
		})
	}
}

// checkGoroutineWrites classifies every direct write in one goroutine body
// against the lock state at that statement.
func checkGoroutineWrites(pkg *Package, gs *ast.GoStmt, body *ast.BlockStmt, lo, hi token.Pos, report reportFunc) {
	info := pkg.Info
	g := buildCFG(body, typesPanicResolver{info})

	// May-held forward fixpoint over the goroutine body, identical in shape
	// to lockcheck's: in[b] = union of out[preds].
	in := make([]map[string]lockState, len(g.blocks))
	out := make([]map[string]lockState, len(g.blocks))
	preds := g.preds()
	for changed := true; changed; {
		changed = false
		for _, b := range g.blocks {
			ib := map[string]lockState{}
			for _, p := range preds[b] {
				mergeLocks(ib, out[p.index])
			}
			in[b.index] = ib
			ob := transferLocks(info, b, copyLocks(ib), nil)
			if !statesEqual(out[b.index], ob) {
				out[b.index] = ob
				changed = true
			}
		}
	}

	// Walk each block's statements in order, threading the lock state
	// through so a write between Lock and Unlock inside one block counts as
	// held. One finding per written variable, at its first unguarded write.
	reported := map[*types.Var]bool{}
	flag := func(lhs ast.Expr, pos token.Pos, held bool) {
		if held {
			return
		}
		base, _ := lvalueBaseOf(info, lhs)
		if base == nil || reported[base] || base.Pos() == token.NoPos {
			return
		}
		if base.Pos() >= lo && base.Pos() <= hi {
			return // declared inside the launched function: confined
		}
		reported[base] = true
		what := "variable"
		if base.Parent() != nil && base.Pkg() != nil && base.Parent() == base.Pkg().Scope() {
			what = "package-level variable"
		}
		report(pos, "%s %q is declared outside this go-launched function and written without a lock held; guard the write, use an atomic, or confine it to the goroutine",
			what, base.Name())
	}
	for _, b := range g.blocks {
		state := copyLocks(in[b.index])
		for _, st := range b.stmts {
			held := len(state) > 0
			switch s := st.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					flag(lhs, s.Pos(), held)
				}
			case *ast.IncDecStmt:
				flag(s.X, s.Pos(), held)
			}
			applyLockOps(info, st, state)
		}
	}
}

// applyLockOps advances the may-held lock state across one statement: the
// single-statement form of lockcheck's transferLocks.
func applyLockOps(info *types.Info, st ast.Stmt, state map[string]lockState) {
	shallowInspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := mutexOpOf(info, call)
		if !ok || op.key == "" {
			return true
		}
		if op.acquire {
			state[op.key] = lockState{mode: op.mode, pos: op.pos}
		} else {
			delete(state, op.key)
		}
		return true
	})
}
