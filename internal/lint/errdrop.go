package lint

// errdrop: a call whose error result is dropped on the floor in statement
// position (including go/defer statements) silently swallows failure.
// Assigning the error to the blank identifier (`_ = f()`) stays legal — the
// discard is then visible and greppable. Print-family functions of package
// fmt are exempt: their error returns (tty write failures) are convention-
// ally ignored, and flagging them would drown real findings.

import (
	"go/ast"
	"go/types"
)

// errdropExempt lists package-level functions whose error results may be
// ignored, as "pkgpath.Func".
var errdropExempt = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// errdropExemptRecv lists receiver types whose methods are documented to
// never return a non-nil error (strings.Builder: "no errors"; bytes.Buffer:
// write methods always return nil).
var errdropExemptRecv = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrdrop(cfg *Config, pkg *Package, report reportFunc) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			sig := calleeSignature(pkg.Info, call)
			if sig == nil || !returnsError(sig) {
				return true
			}
			if obj := funcObjOf(pkg.Info, call.Fun); obj != nil && obj.Pkg() != nil {
				if errdropExempt[obj.Pkg().Path()+"."+obj.Name()] {
					return true
				}
				// The receiver comes from the method object's own signature:
				// the call expression's type is the receiver-less method value.
				if osig, ok := obj.Type().(*types.Signature); ok {
					if recv := osig.Recv(); recv != nil && errdropExemptRecv[namedTypeName(recv.Type())] {
						return true
					}
				}
			}
			report(call.Pos(), "%s returns an error that is discarded; handle it or assign it to _ explicitly", calleeName(call))
			return true
		})
	}
}

// namedTypeName renders a (possibly pointer-wrapped) named type as
// "pkgpath.Name", or "" for anything else.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// returnsError reports whether any result of sig is an error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}
