package lint

// determinism: the solve stack's reproducibility rests on never reading
// ambient nondeterministic state. Two checks:
//
//  1. Wall clock: time.Now and time.Since are forbidden in the solver
//     packages (Config.DeterminismTimeScope); timing there goes through the
//     internal/clock seam, which tests can freeze.
//  2. Global RNG: the package-level math/rand functions draw from a shared,
//     unseeded global source, so any use makes a run unrepeatable. They are
//     forbidden module-wide — every random stream must come from an
//     explicitly seeded rand.New(rand.NewSource(seed)).

import (
	"go/ast"
	"go/types"
)

// forbiddenTimeFuncs are the package time functions that read the wall
// clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that consume the shared global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are fine: they are how seeded,
// deterministic streams get made.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(cfg *Config, pkg *Package, report reportFunc) {
	timeInScope := inScope(cfg.timeScope(), pkg.Path)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				if timeInScope && forbiddenTimeFuncs[obj.Name()] {
					report(sel.Pos(), "time.%s reads the wall clock in a solve path; use internal/clock (injectable in tests) instead", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] {
					report(sel.Pos(), "%s.%s draws from the global rand source; use a seeded rand.New(rand.NewSource(seed))", obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
}
