package lint

// Package loading. raslint deliberately uses nothing outside the standard
// library: go/parser parses every file, go/types type-checks it, and a small
// module-aware importer resolves "ras/..." imports to directories of this
// repository while delegating everything else (the standard library) to the
// stdlib source importer. No golang.org/x/tools, no go command subprocesses.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit every analyzer
// operates on.
type Package struct {
	// Path is the import path the package was loaded under. Analyzer scopes
	// match against it.
	Path string
	// Name is the package name from the source files.
	Name string
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Info is the type-checker's fact base (Types, Defs, Uses, Selections).
	Info *types.Info
	// Pkg is the type-checked package.
	Pkg *types.Package
}

// Loader loads and type-checks packages of one module from source.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset  *token.FileSet
	std   types.ImporterFrom
	ctxt  build.Context
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
	// loading marks an import in progress, for cycle detection.
	loading bool
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// NewLoader returns a loader rooted at moduleDir. The module path is read
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	return NewLoaderAt(moduleDir, string(m[1]))
}

// NewLoaderAt returns a loader for a module rooted at moduleDir under the
// given module path, without requiring a go.mod. The analyzer's own testdata
// corpus loads through this: each fixture directory is type-checked under a
// synthetic import path so scope matching can be exercised.
func NewLoaderAt(moduleDir, modulePath string) (*Loader, error) {
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modulePath,
		fset:       fset,
		std:        std,
		ctxt:       ctxt,
		cache:      map[string]*loadEntry{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer for the type-checker: module-internal
// paths load from the repository, everything else from the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.Load(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load parses and type-checks the package in dir under the given import
// path. Results are memoized by import path.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	if e, ok := l.cache[importPath]; ok {
		if e.loading {
			return nil, fmt.Errorf("lint: import cycle through %q", importPath)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{loading: true}
	l.cache[importPath] = e
	e.pkg, e.err = l.loadUncached(dir, importPath)
	e.loading = false
	return e.pkg, e.err
}

func (l *Loader) loadUncached(dir, importPath string) (*Package, error) {
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Name:  files[0].Name.Name,
		Fset:  l.fset,
		Files: files,
		Info:  info,
		Pkg:   tpkg,
	}, nil
}

// sourceFiles lists the buildable non-test Go files of dir, honouring build
// constraints (e.g. the experiments package's race_on.go/race_off.go pair)
// under the default build context.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s/%s: %w", dir, name, err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadDirs resolves the given patterns (directories relative to the module
// root, or "..."-suffixed subtree patterns like "./...") into packages. Every
// directory containing buildable Go files is loaded under its module import
// path.
func (l *Loader) LoadDirs(patterns []string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "..."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if err := l.walkPackageDirs(root, dirSet); err != nil {
				return nil, err
			}
			continue
		}
		dirSet[filepath.Join(l.ModuleDir, filepath.FromSlash(pat))] = true
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkPackageDirs collects every directory under root that holds buildable
// Go files, skipping testdata, vendor, and hidden directories.
func (l *Loader) walkPackageDirs(root string, out map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := l.sourceFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			out[path] = true
		}
		return nil
	})
}
