package lint

// Intraprocedural control-flow graph construction. The flow-sensitive
// analyzers (lockcheck today; anything path-dependent tomorrow) need to
// reason about "every path out of the function", which the syntactic
// per-statement walks of the original rules cannot express. This builder
// lowers one function body to basic blocks over the full Go statement
// repertoire: if/else, for (cond/post/infinite), range, switch (expr and
// type, with fallthrough), select, labeled break/continue, goto, defer,
// and return.
//
// Shape choices, documented in DESIGN.md ("Flow-sensitive analyzers"):
//
//   - Statements are the unit: a block holds whole ast.Stmt values in
//     source order. Short-circuit evaluation inside expressions is NOT
//     split into blocks; an analyzer that needs per-expression flow must
//     walk the statement itself.
//   - panic(...) terminates its block with no successors: a panicking path
//     never reaches the function's ordinary exits, and flagging state held
//     at a deliberate crash would be noise.
//   - A select with no default blocks until a case fires, so its only
//     successors are its comm clauses; select{} (no cases at all) blocks
//     forever and terminates the block.
//   - defer is recorded in order as a plain statement; analyzers that care
//     about deferred effects (lockcheck) collect DeferStmts themselves and
//     treat them flow-insensitively, which is conservative for conditional
//     defers.
//
// The graph always has a single synthetic exit block; every return and the
// natural end of the body edge into it.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: statements that execute in sequence, then a
// transfer to one of succs. A block with no successors terminates the
// function abnormally (panic, select{}, or an infinite loop with no break).
type cfgBlock struct {
	index int
	stmts []ast.Stmt
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic: every normal way out of the function
	blocks []*cfgBlock
}

// preds computes the predecessor lists of every block.
func (g *funcCFG) preds() map[*cfgBlock][]*cfgBlock {
	p := make(map[*cfgBlock][]*cfgBlock, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			p[s] = append(p[s], b)
		}
	}
	return p
}

// cfgBuilder carries the construction state: the current block under
// extension and the break/continue/goto resolution stacks.
type cfgBuilder struct {
	info   infoResolver
	blocks []*cfgBlock
	cur    *cfgBlock
	exit   *cfgBlock

	// breakTo / continueTo are stacks of enclosing targets; label is ""
	// for the plain statement and the statement's label when it is the
	// direct child of a labeled statement.
	breakTo    []jumpTarget
	continueTo []jumpTarget

	// labels maps a label name to the block that starts the labeled
	// statement, for goto. Forward gotos are resolved at the end.
	labels  map[string]*cfgBlock
	pending []pendingGoto

	// nextLabel holds the label of the immediately enclosing LabeledStmt
	// while its child statement is lowered, so for/switch/select register
	// labeled break/continue targets.
	nextLabel string
}

// infoResolver is the slice of *types.Info the builder needs: just enough
// to recognize panic(...). Narrowed to an interface so cfg_test can build
// graphs without a full type-check.
type infoResolver interface {
	isPanic(call *ast.CallExpr) bool
}

type jumpTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
	pos   token.Pos
}

// buildCFG lowers body to a control-flow graph. info may be nil, in which
// case any call to an identifier literally named "panic" terminates the
// block (the no-type-info approximation used by the builder's own tests).
func buildCFG(body *ast.BlockStmt, info infoResolver) *funcCFG {
	b := &cfgBuilder{info: info, labels: map[string]*cfgBlock{}}
	b.exit = b.newBlock() // index 0: conventional, assigned last below
	b.cur = b.newBlock()
	entry := b.cur
	b.stmtList(body.List)
	// Natural fallthrough off the end of the body returns.
	b.jump(b.exit)
	for _, pg := range b.pending {
		if target, ok := b.labels[pg.label]; ok {
			addEdge(pg.from, target)
		}
		// An unresolved goto is a parse/type error upstream; nothing to do.
	}
	g := &funcCFG{entry: entry, exit: b.exit, blocks: b.blocks}
	for i, blk := range g.blocks {
		blk.index = i
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func addEdge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// jump ends the current block with an edge to target and leaves the builder
// on a fresh (initially unreachable) block for any dead code that follows.
func (b *cfgBuilder) jump(target *cfgBlock) {
	addEdge(b.cur, target)
	b.cur = b.newBlock()
}

// terminate ends the current block with no successors (panic, select{}).
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, st := range list {
		b.stmt(st)
	}
}

// takeLabel consumes the pending enclosing label, returning "" when the
// statement is not the direct child of a LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTo = append(b.breakTo, jumpTarget{"", brk})
	b.continueTo = append(b.continueTo, jumpTarget{"", cont})
	if label != "" {
		b.breakTo = append(b.breakTo, jumpTarget{label, brk})
		b.continueTo = append(b.continueTo, jumpTarget{label, cont})
	}
}

func (b *cfgBuilder) popLoop(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-n]
	b.continueTo = b.continueTo[:len(b.continueTo)-n]
}

func (b *cfgBuilder) pushBreak(label string, brk *cfgBlock) {
	b.breakTo = append(b.breakTo, jumpTarget{"", brk})
	if label != "" {
		b.breakTo = append(b.breakTo, jumpTarget{label, brk})
	}
}

func (b *cfgBuilder) popBreak(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-n]
}

func (b *cfgBuilder) findTarget(stack []jumpTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts a fresh block so goto/continue can
		// land on it.
		start := b.newBlock()
		b.jump(start)
		b.cur = start
		b.labels[s.Label.Name] = start
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""

	case *ast.ReturnStmt:
		b.takeLabel()
		b.cur.stmts = append(b.cur.stmts, s)
		b.jump(b.exit)

	case *ast.BranchStmt:
		b.takeLabel()
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breakTo, label); t != nil {
				b.jump(t)
			} else {
				b.terminate()
			}
		case token.CONTINUE:
			if t := b.findTarget(b.continueTo, label); t != nil {
				b.jump(t)
			} else {
				b.terminate()
			}
		case token.GOTO:
			b.pending = append(b.pending, pendingGoto{from: b.cur, label: label, pos: s.Pos()})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled structurally by the switch lowering; reaching one
			// here (outside a switch) is invalid Go. Ignore.
		}

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.cur.stmts = append(b.cur.stmts, s.Init)
		}
		// The condition evaluates in the current block; record the if
		// itself so analyzers can inspect the cond expression.
		b.cur.stmts = append(b.cur.stmts, s)
		condBlock := b.cur
		after := b.newBlock()

		b.cur = b.newBlock()
		addEdge(condBlock, b.cur)
		b.stmtList(s.Body.List)
		b.jump(after)

		if s.Else != nil {
			b.cur = b.newBlock()
			addEdge(condBlock, b.cur)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			addEdge(condBlock, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.stmts = append(b.cur.stmts, s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			head.stmts = append(head.stmts, s) // cond evaluates here
			addEdge(head, after)
		}
		body := b.newBlock()
		addEdge(head, body)
		b.cur = body
		b.pushLoop(label, after, post)
		b.stmtList(s.Body.List)
		b.popLoop(label)
		b.jump(post)
		b.cur = post
		if s.Post != nil {
			post.stmts = append(post.stmts, s.Post)
		}
		addEdge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		after := b.newBlock()
		// The ranged expression evaluates once on entry; the per-iteration
		// assignment happens at head.
		b.cur.stmts = append(b.cur.stmts, s)
		b.jump(head)
		b.cur = head
		addEdge(head, after) // range may be empty / exhausted
		body := b.newBlock()
		addEdge(head, body)
		b.cur = body
		b.pushLoop(label, after, head)
		b.stmtList(s.Body.List)
		b.popLoop(label)
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		head := b.cur
		head.stmts = append(head.stmts, s)
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			b.terminate()
			return
		}
		b.pushBreak(label, after)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			b.cur = b.newBlock()
			addEdge(head, b.cur)
			if comm.Comm != nil {
				b.cur.stmts = append(b.cur.stmts, comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.popBreak(label)
		// No default: the select blocks until a case fires, so there is
		// deliberately no head→after edge either way — every path runs
		// one clause.
		b.cur = after

	case *ast.ExprStmt:
		b.takeLabel()
		b.cur.stmts = append(b.cur.stmts, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.callIsPanic(call) {
			b.terminate()
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.takeLabel()
		b.cur.stmts = append(b.cur.stmts, st)

	default:
		b.takeLabel()
		b.cur.stmts = append(b.cur.stmts, st)
	}
}

// switchStmt lowers expression and type switches: every case body is a
// successor of the head; fallthrough chains a case body into the next one;
// a missing default adds the head→after edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, sw ast.Stmt, bodies [][]ast.Stmt, hasDefault bool) {
	label := b.takeLabel()
	if init != nil {
		b.cur.stmts = append(b.cur.stmts, init)
	}
	b.cur.stmts = append(b.cur.stmts, sw) // tag evaluates here
	head := b.cur
	after := b.newBlock()
	if !hasDefault || len(bodies) == 0 {
		addEdge(head, after)
	}
	b.pushBreak(label, after)
	// Case body blocks are pre-created so fallthrough can edge forward.
	caseBlocks := make([]*cfgBlock, len(bodies))
	for i := range bodies {
		caseBlocks[i] = b.newBlock()
		addEdge(head, caseBlocks[i])
	}
	for i, body := range bodies {
		b.cur = caseBlocks[i]
		falls := false
		for _, st := range body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(caseBlocks) {
			b.jump(caseBlocks[i+1])
		} else {
			b.jump(after)
		}
	}
	b.popBreak(label)
	b.cur = after
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (b *cfgBuilder) callIsPanic(call *ast.CallExpr) bool {
	if b.info != nil {
		return b.info.isPanic(call)
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
