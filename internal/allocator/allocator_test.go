package allocator

import (
	"errors"
	"testing"

	"ras/internal/broker"
	"ras/internal/reservation"
	"ras/internal/topology"
)

func setup(t testing.TB) (*broker.Broker, *Allocator) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		DCs: 1, MSBsPerDC: 1, RacksPerMSB: 2, ServersPerRack: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(region)
	return b, New(b, 8)
}

func bind(b *broker.Broker, res reservation.ID, ids ...topology.ServerID) {
	for _, id := range ids {
		b.SetCurrent(id, res)
	}
}

func TestPlaceWithinReservationOnly(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0, 1)
	bind(b, 2, 2)
	id, err := a.Place(1, "job", 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if c.Server != 0 && c.Server != 1 {
		t.Fatalf("container landed on server %d outside reservation 1", c.Server)
	}
	if _, err := a.Place(3, "job", 1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("empty reservation: %v", err)
	}
}

func TestPlaceUpdatesBrokerContainers(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0)
	id, _ := a.Place(1, "job", 1)
	c, _ := a.Get(id)
	if b.State(c.Server).Containers != 1 {
		t.Fatal("broker container count not updated")
	}
	a.Stop(id)
	if b.State(c.Server).Containers != 0 {
		t.Fatal("broker container count not cleared")
	}
}

func TestStackingLimit(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0) // one server, 8 units
	for i := 0; i < 8; i++ {
		if _, err := a.Place(1, "j", 1); err != nil {
			t.Fatalf("placement %d failed: %v", i, err)
		}
	}
	if _, err := a.Place(1, "j", 1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("9th unit on an 8-unit server: %v", err)
	}
}

func TestPlaceSizeValidation(t *testing.T) {
	_, a := setup(t)
	if _, err := a.Place(1, "j", 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := a.Place(1, "j", 9); err == nil {
		t.Fatal("oversized container accepted")
	}
}

func TestBestFitPacking(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0, 1)
	// Load server A with 6 units, B empty. A 2-unit container must go to A
	// (most loaded that fits), preserving B's large hole.
	first, _ := a.Place(1, "j", 6)
	fc, _ := a.Get(first)
	second, _ := a.Place(1, "j", 2)
	sc, _ := a.Get(second)
	if sc.Server != fc.Server {
		t.Fatalf("best-fit broke: 2-unit container on %d, want %d", sc.Server, fc.Server)
	}
}

func TestUnavailableServersSkipped(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0)
	b.SetUnavailable(0, broker.RandomFailure, 0, 0)
	if _, err := a.Place(1, "j", 1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("placed on failed server: %v", err)
	}
}

func TestLoanedServersServeBorrowerOnly(t *testing.T) {
	b, a := setup(t)
	bind(b, reservation.SharedBuffer, 0)
	b.SetLoan(0, 9) // elastic reservation 9 borrows it
	if _, err := a.Place(reservation.SharedBuffer, "j", 1); !errors.Is(err, ErrNoCapacity) {
		t.Fatal("owner must not use a loaned-out server")
	}
	if _, err := a.Place(9, "j", 1); err != nil {
		t.Fatalf("borrower cannot use the loan: %v", err)
	}
}

func TestEvictAndReschedule(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0, 1)
	ids := make([]ContainerID, 3)
	for i := range ids {
		ids[i], _ = a.Place(1, "j", 2)
	}
	// Find the server with containers and evict it.
	var victim topology.ServerID = -1
	for _, cid := range ids {
		c, _ := a.Get(cid)
		victim = c.Server
		break
	}
	failed := a.Reschedule(victim)
	if len(failed) != 0 {
		t.Fatalf("reschedule failed for %d containers", len(failed))
	}
	if len(a.ContainersOn(victim)) != 0 {
		t.Fatal("containers remain on evicted server")
	}
	if got := len(a.ContainersIn(1)); got != 3 {
		t.Fatalf("reservation has %d containers after reschedule, want 3", got)
	}
}

func TestRescheduleReportsFailures(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0) // single server
	a.Place(1, "j", 8)
	b.SetUnavailable(0, broker.RandomFailure, 0, 0)
	failed := a.Reschedule(0)
	if len(failed) != 1 {
		t.Fatalf("expected 1 unplaceable container, got %d", len(failed))
	}
}

func TestStatsAndFreeUnits(t *testing.T) {
	b, a := setup(t)
	bind(b, 1, 0, 1)
	a.Place(1, "j", 3)
	p, e, r := a.Stats()
	if p != 1 || e != 0 || r != 1 {
		t.Fatalf("stats: %d %d %d", p, e, r)
	}
	if got := a.FreeUnits(1); got != 13 { // 2×8 − 3
		t.Fatalf("FreeUnits = %d, want 13", got)
	}
	a.Evict(0)
	a.Evict(1)
	_, e, _ = a.Stats()
	if e != 1 {
		t.Fatalf("evictions = %d, want 1", e)
	}
}

func TestStopMissing(t *testing.T) {
	_, a := setup(t)
	if err := a.Stop(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stop missing: %v", err)
	}
	if _, err := a.Get(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
}
