// Package allocator implements the second level of the two-level
// architecture: the Twine Allocator & Scheduler that places containers on
// servers *within* a reservation (paper §3.1–3.2). Because the async solver
// already materialized the reservation's full capacity, container placement
// never waits on server acquisition — the allocator only filters and packs
// servers that are already in the reservation, which is what gives the
// "swift response times of seconds on the critical path".
//
// The allocator supports stacking: containers from different jobs share a
// server subject to its capacity in allocation units.
package allocator

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ras/internal/broker"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// ContainerID identifies a container.
type ContainerID int64

// Container is one placed workload unit.
type Container struct {
	ID     ContainerID
	Job    string
	Res    reservation.ID
	Server topology.ServerID
	Units  int // allocation units consumed on the server
}

// Errors returned by the allocator.
var (
	// ErrNoCapacity means no server in the reservation can fit the request.
	ErrNoCapacity = errors.New("allocator: no server with sufficient free capacity in reservation")
	// ErrNotFound means the container does not exist.
	ErrNotFound = errors.New("allocator: container not found")
)

// Allocator places containers within reservations. One Allocator instance
// can serve many reservations; each placement is scoped to one reservation,
// which is what lets multiple allocators run independently in production.
type Allocator struct {
	mu     sync.Mutex
	broker *broker.Broker
	// capacity per server in allocation units (stacking limit).
	unitsPerServer int
	used           map[topology.ServerID]int
	containers     map[ContainerID]*Container
	nextID         ContainerID
	// placements counts successful placements (metrics).
	placements int
	evictions  int
}

// New creates an allocator over the broker. unitsPerServer is the stacking
// capacity of every server in allocation units (a simplification of Twine's
// multi-dimensional resources; 8 is a typical stacking degree).
func New(b *broker.Broker, unitsPerServer int) *Allocator {
	if unitsPerServer <= 0 {
		unitsPerServer = 8
	}
	return &Allocator{
		broker:         b,
		unitsPerServer: unitsPerServer,
		used:           make(map[topology.ServerID]int),
		containers:     make(map[ContainerID]*Container),
	}
}

// Place starts one container of the given size in the reservation, choosing
// the eligible server best-fit (most-loaded that still fits) to preserve
// large holes for future big containers. Buffer servers loaned to elastic
// reservations are used only when res is the elastic borrower.
func (a *Allocator) Place(res reservation.ID, job string, units int) (ContainerID, error) {
	return a.place(res, job, units, -1)
}

// place implements Place, optionally excluding one server (used while
// draining it for a move or failure).
func (a *Allocator) place(res reservation.ID, job string, units int, exclude topology.ServerID) (ContainerID, error) {
	if units <= 0 || units > a.unitsPerServer {
		return 0, fmt.Errorf("allocator: container size %d outside (0,%d]", units, a.unitsPerServer)
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	best := topology.ServerID(-1)
	bestUsed := -1
	consider := func(id topology.ServerID, st *broker.ServerState) {
		if st.Unavail != broker.Available {
			return
		}
		u := a.used[id]
		if u+units > a.unitsPerServer {
			return
		}
		if u > bestUsed {
			bestUsed, best = u, id
		}
	}
	snap := a.broker.Snapshot()
	for i := range snap {
		st := &snap[i]
		if st.ID == exclude {
			continue
		}
		owned := st.Current == res && st.LoanedTo == reservation.Unassigned
		borrowed := st.LoanedTo == res
		if owned || borrowed {
			consider(st.ID, st)
		}
	}
	if best < 0 {
		return 0, ErrNoCapacity
	}
	a.nextID++
	c := &Container{ID: a.nextID, Job: job, Res: res, Server: best, Units: units}
	a.containers[c.ID] = c
	a.used[best] += units
	a.placements++
	a.broker.SetContainers(best, a.countOn(best))
	return c.ID, nil
}

// countOn counts containers on a server (mu held).
func (a *Allocator) countOn(id topology.ServerID) int {
	n := 0
	for _, c := range a.containers {
		if c.Server == id {
			n++
		}
	}
	return n
}

// Stop removes a container.
func (a *Allocator) Stop(id ContainerID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.containers[id]
	if !ok {
		return ErrNotFound
	}
	delete(a.containers, id)
	a.used[c.Server] -= c.Units
	if a.used[c.Server] <= 0 {
		delete(a.used, c.Server)
	}
	a.broker.SetContainers(c.Server, a.countOn(c.Server))
	return nil
}

// Get returns a copy of the container.
func (a *Allocator) Get(id ContainerID) (Container, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.containers[id]
	if !ok {
		return Container{}, ErrNotFound
	}
	return *c, nil
}

// ContainersOn lists containers running on a server.
func (a *Allocator) ContainersOn(id topology.ServerID) []Container {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Container
	for _, c := range a.containers {
		if c.Server == id {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ContainersIn lists containers of a reservation.
func (a *Allocator) ContainersIn(res reservation.ID) []Container {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Container
	for _, c := range a.containers {
		if c.Res == res {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Evict removes every container from the server (preemption before a server
// move, or server loss) and returns the evicted containers so the caller can
// reschedule them.
func (a *Allocator) Evict(id topology.ServerID) []Container {
	a.mu.Lock()
	var out []Container
	for _, c := range a.containers {
		if c.Server == id {
			out = append(out, *c)
		}
	}
	for _, c := range out {
		delete(a.containers, c.ID)
		a.evictions++
	}
	delete(a.used, id)
	a.mu.Unlock()
	a.broker.SetContainers(id, 0)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reschedule evicts the server and replaces each of its containers inside
// its own reservation. It returns the containers that could not be
// replaced (capacity crunch).
func (a *Allocator) Reschedule(id topology.ServerID) (failed []Container) {
	for _, c := range a.Evict(id) {
		if _, err := a.place(c.Res, c.Job, c.Units, id); err != nil {
			failed = append(failed, c)
		}
	}
	return failed
}

// Stats reports placement counters.
func (a *Allocator) Stats() (placements, evictions, running int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.placements, a.evictions, len(a.containers)
}

// FreeUnits reports the spare allocation units of a reservation across its
// available servers.
func (a *Allocator) FreeUnits(res reservation.ID) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	snap := a.broker.Snapshot()
	for i := range snap {
		st := &snap[i]
		if st.Current != res || st.LoanedTo != reservation.Unassigned || st.Unavail != broker.Available {
			continue
		}
		total += a.unitsPerServer - a.used[st.ID]
	}
	return total
}
