// Package topology models the physical layout of a Facebook-style region:
// datacenters containing main switch boards (MSBs — the largest fault
// domains), which contain racks of servers (paper §2.1, Figure 1). It also
// provides a seeded synthetic region generator whose per-MSB hardware
// mixtures reproduce the heterogeneity skew of Figure 2: older MSBs carry
// older generations, newer MSBs carry the newest hardware, and specialty
// hardware (GPU, storage) clusters unevenly.
package topology

import (
	"fmt"
	"math/rand"

	"ras/internal/hardware"
)

// ServerID identifies a server within a region.
type ServerID int32

// Server is one physical machine.
type Server struct {
	ID   ServerID
	Type int // hardware type index within the region's catalog
	Rack int // global rack index
	MSB  int // global MSB index
	DC   int // datacenter index
}

// Region is the full physical inventory RAS allocates over.
type Region struct {
	Name    string
	Catalog *hardware.Catalog
	Servers []Server

	NumDCs   int
	NumMSBs  int
	NumRacks int

	msbToDC   []int // MSB index → DC index
	rackToMSB []int // rack index → MSB index
}

// DCOfMSB reports the datacenter of an MSB.
func (r *Region) DCOfMSB(msb int) int { return r.msbToDC[msb] }

// MSBOfRack reports the MSB of a rack.
func (r *Region) MSBOfRack(rack int) int { return r.rackToMSB[rack] }

// Server returns the server with the given ID.
func (r *Region) Server(id ServerID) *Server { return &r.Servers[id] }

// ServersByMSB partitions server IDs by MSB (the ΨF partition of the MIP).
func (r *Region) ServersByMSB() [][]ServerID {
	out := make([][]ServerID, r.NumMSBs)
	for i := range r.Servers {
		s := &r.Servers[i]
		out[s.MSB] = append(out[s.MSB], s.ID)
	}
	return out
}

// ServersByRack partitions server IDs by rack (the ΨK partition).
func (r *Region) ServersByRack() [][]ServerID {
	out := make([][]ServerID, r.NumRacks)
	for i := range r.Servers {
		s := &r.Servers[i]
		out[s.Rack] = append(out[s.Rack], s.ID)
	}
	return out
}

// ServersByDC partitions server IDs by datacenter (the ΨD partition).
func (r *Region) ServersByDC() [][]ServerID {
	out := make([][]ServerID, r.NumDCs)
	for i := range r.Servers {
		s := &r.Servers[i]
		out[s.DC] = append(out[s.DC], s.ID)
	}
	return out
}

// TypeMixByMSB reports, per MSB, the fraction of servers of each hardware
// type. Rows sum to 1 for non-empty MSBs. It backs the Figure 2
// heterogeneity characterization.
func (r *Region) TypeMixByMSB() [][]float64 {
	counts := make([][]float64, r.NumMSBs)
	totals := make([]float64, r.NumMSBs)
	for i := range counts {
		counts[i] = make([]float64, r.Catalog.Len())
	}
	for i := range r.Servers {
		s := &r.Servers[i]
		counts[s.MSB][s.Type]++
		totals[s.MSB]++
	}
	for m := range counts {
		if totals[m] == 0 {
			continue
		}
		for t := range counts[m] {
			counts[m][t] /= totals[m]
		}
	}
	return counts
}

// PowerByMSB reports the total nominal power draw of the given servers
// grouped by MSB. A nil filter includes every server.
func (r *Region) PowerByMSB(include func(ServerID) bool) []float64 {
	out := make([]float64, r.NumMSBs)
	for i := range r.Servers {
		s := &r.Servers[i]
		if include != nil && !include(s.ID) {
			continue
		}
		out[s.MSB] += r.Catalog.Type(s.Type).PowerWatts
	}
	return out
}

// GenSpec parameterizes the synthetic region generator.
type GenSpec struct {
	Name           string
	DCs            int // datacenters in the region
	MSBsPerDC      int
	RacksPerMSB    int
	ServersPerRack int
	Seed           int64
	// Catalog to draw hardware from; nil means hardware.DefaultCatalog().
	Catalog *hardware.Catalog
	// Uniform disables the age-based hardware skew, giving every MSB the
	// same expected mixture (the "perfectly spread" lower-bound scenario of
	// §3.3.1 where the ideal buffer is 1/numMSBs).
	Uniform bool
}

// Validate reports whether the spec is usable.
func (g GenSpec) Validate() error {
	if g.DCs <= 0 || g.MSBsPerDC <= 0 || g.RacksPerMSB <= 0 || g.ServersPerRack <= 0 {
		return fmt.Errorf("topology: all GenSpec dimensions must be positive: %+v", g)
	}
	return nil
}

// Generate builds a synthetic region. Generation is deterministic for a
// given spec (including Seed).
func Generate(spec GenSpec) (*Region, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cat := spec.Catalog
	if cat == nil {
		cat = hardware.DefaultCatalog()
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	numMSBs := spec.DCs * spec.MSBsPerDC
	numRacks := numMSBs * spec.RacksPerMSB
	numServers := numRacks * spec.ServersPerRack

	r := &Region{
		Name:      spec.Name,
		Catalog:   cat,
		Servers:   make([]Server, 0, numServers),
		NumDCs:    spec.DCs,
		NumMSBs:   numMSBs,
		NumRacks:  numRacks,
		msbToDC:   make([]int, numMSBs),
		rackToMSB: make([]int, numRacks),
	}

	msb := 0
	rack := 0
	var id ServerID
	for dc := 0; dc < spec.DCs; dc++ {
		for mi := 0; mi < spec.MSBsPerDC; mi++ {
			r.msbToDC[msb] = dc
			// MSB "age": 0 (oldest) .. 1 (newest), by global deployment order.
			age := 0.0
			if numMSBs > 1 {
				age = float64(msb) / float64(numMSBs-1)
			}
			weights := msbTypeWeights(cat, age, spec.Uniform, rng)
			for ri := 0; ri < spec.RacksPerMSB; ri++ {
				r.rackToMSB[rack] = msb
				// Racks are homogeneous in practice: pick one type per rack.
				t := sampleType(weights, rng)
				for si := 0; si < spec.ServersPerRack; si++ {
					r.Servers = append(r.Servers, Server{
						ID: id, Type: t, Rack: rack, MSB: msb, DC: dc,
					})
					id++
				}
				rack++
			}
			msb++
		}
	}
	return r, nil
}

// msbTypeWeights computes the sampling weight of each hardware type for an
// MSB of the given age. Old MSBs favor GenI hardware and the discontinued
// C5/C9 storage types; new MSBs favor GenIII and GPU hardware.
func msbTypeWeights(cat *hardware.Catalog, age float64, uniform bool, rng *rand.Rand) []float64 {
	w := make([]float64, cat.Len())
	for i := range w {
		t := cat.Type(i)
		base := 1.0
		if !uniform {
			switch t.Generation {
			case hardware.GenI:
				base = 2.5 * (1 - age)
			case hardware.GenII:
				base = 1.5 * (1 - 0.5*absf(age-0.5))
			case hardware.GenIII:
				base = 2.5 * age
			}
			if t.GPUs > 0 {
				base *= 0.3 + 0.9*age // accelerators cluster in new MSBs
			}
			if t.FlashTB > 0 {
				base *= 0.8
			}
			// Per-MSB idiosyncratic skew gives the jagged Figure 2 mixtures.
			base *= 0.3 + 1.4*rng.Float64()
		}
		if base < 0.01 {
			base = 0.01
		}
		w[i] = base
	}
	return w
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sampleType(weights []float64, rng *rand.Rand) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
