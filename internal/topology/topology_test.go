package topology

import (
	"testing"
	"testing/quick"

	"ras/internal/hardware"
)

func gen(t testing.TB, spec GenSpec) *Region {
	t.Helper()
	r, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerateCounts(t *testing.T) {
	r := gen(t, GenSpec{DCs: 2, MSBsPerDC: 3, RacksPerMSB: 4, ServersPerRack: 5, Seed: 1})
	if r.NumDCs != 2 || r.NumMSBs != 6 || r.NumRacks != 24 {
		t.Fatalf("dims: %d DCs %d MSBs %d racks", r.NumDCs, r.NumMSBs, r.NumRacks)
	}
	if len(r.Servers) != 120 {
		t.Fatalf("%d servers, want 120", len(r.Servers))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{DCs: 2, MSBsPerDC: 2, RacksPerMSB: 3, ServersPerRack: 4, Seed: 7}
	a, b := gen(t, spec), gen(t, spec)
	for i := range a.Servers {
		if a.Servers[i] != b.Servers[i] {
			t.Fatalf("server %d differs between identical specs", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenSpec{}); err == nil {
		t.Fatal("zero spec must be rejected")
	}
	if _, err := Generate(GenSpec{DCs: 1, MSBsPerDC: -1, RacksPerMSB: 1, ServersPerRack: 1}); err == nil {
		t.Fatal("negative dims must be rejected")
	}
}

func TestHierarchyConsistency(t *testing.T) {
	r := gen(t, GenSpec{DCs: 3, MSBsPerDC: 2, RacksPerMSB: 3, ServersPerRack: 2, Seed: 3})
	for i := range r.Servers {
		s := &r.Servers[i]
		if int(s.ID) != i {
			t.Fatalf("server %d has ID %d", i, s.ID)
		}
		if r.MSBOfRack(s.Rack) != s.MSB {
			t.Fatalf("rack %d maps to MSB %d, server says %d", s.Rack, r.MSBOfRack(s.Rack), s.MSB)
		}
		if r.DCOfMSB(s.MSB) != s.DC {
			t.Fatalf("MSB %d maps to DC %d, server says %d", s.MSB, r.DCOfMSB(s.MSB), s.DC)
		}
		if r.Server(s.ID) != s {
			t.Fatal("Server() must return the same record")
		}
	}
}

func TestPartitionsCoverExactly(t *testing.T) {
	r := gen(t, GenSpec{DCs: 2, MSBsPerDC: 3, RacksPerMSB: 2, ServersPerRack: 3, Seed: 5})
	for name, part := range map[string][][]ServerID{
		"msb":  r.ServersByMSB(),
		"rack": r.ServersByRack(),
		"dc":   r.ServersByDC(),
	} {
		seen := make(map[ServerID]bool)
		for _, grp := range part {
			for _, id := range grp {
				if seen[id] {
					t.Fatalf("%s partition repeats server %d", name, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != len(r.Servers) {
			t.Fatalf("%s partition covers %d servers, want %d", name, len(seen), len(r.Servers))
		}
	}
}

func TestTypeMixRowsSumToOne(t *testing.T) {
	r := gen(t, GenSpec{DCs: 1, MSBsPerDC: 4, RacksPerMSB: 5, ServersPerRack: 4, Seed: 9})
	mix := r.TypeMixByMSB()
	for m, row := range mix {
		sum := 0.0
		for _, f := range row {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("MSB %d mix sums to %v", m, sum)
		}
	}
}

func TestHeterogeneitySkew(t *testing.T) {
	// Old MSBs carry more GenI hardware than new MSBs (Figure 2 shape).
	r := gen(t, GenSpec{DCs: 1, MSBsPerDC: 10, RacksPerMSB: 10, ServersPerRack: 10, Seed: 11})
	genIShare := func(msb int) float64 {
		total, old := 0, 0
		for i := range r.Servers {
			if r.Servers[i].MSB != msb {
				continue
			}
			total++
			if r.Catalog.Type(r.Servers[i].Type).Generation == hardware.GenI {
				old++
			}
		}
		return float64(old) / float64(total)
	}
	if genIShare(0) <= genIShare(9) {
		t.Errorf("oldest MSB GenI share %.2f not above newest %.2f", genIShare(0), genIShare(9))
	}
}

func TestUniformDisablesSkew(t *testing.T) {
	// Racks are homogeneous, so per-type shares are noisy; aggregate per
	// generation instead, where uniform sampling must show no age trend.
	r := gen(t, GenSpec{DCs: 1, MSBsPerDC: 8, RacksPerMSB: 40, ServersPerRack: 4, Seed: 13, Uniform: true})
	genIShare := func(msb int) float64 {
		total, old := 0, 0
		for i := range r.Servers {
			if r.Servers[i].MSB != msb {
				continue
			}
			total++
			if r.Catalog.Type(r.Servers[i].Type).Generation == hardware.GenI {
				old++
			}
		}
		return float64(old) / float64(total)
	}
	min, max := 1.0, 0.0
	for m := 0; m < r.NumMSBs; m++ {
		s := genIShare(m)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 0.35 {
		t.Errorf("uniform region still skewed: GenI share spans [%.2f, %.2f]", min, max)
	}
}

func TestPowerByMSB(t *testing.T) {
	r := gen(t, GenSpec{DCs: 1, MSBsPerDC: 2, RacksPerMSB: 2, ServersPerRack: 2, Seed: 15})
	all := r.PowerByMSB(nil)
	none := r.PowerByMSB(func(ServerID) bool { return false })
	for m := range all {
		if all[m] <= 0 {
			t.Errorf("MSB %d power %v, want > 0", m, all[m])
		}
		if none[m] != 0 {
			t.Errorf("filtered power must be 0, got %v", none[m])
		}
	}
}

// Property: generation is total and structurally consistent for random specs.
func TestQuickGenerate(t *testing.T) {
	check := func(seed int64, d, m, rk, s uint8) bool {
		spec := GenSpec{
			DCs:            int(d%3) + 1,
			MSBsPerDC:      int(m%4) + 1,
			RacksPerMSB:    int(rk%5) + 1,
			ServersPerRack: int(s%6) + 1,
			Seed:           seed,
		}
		r, err := Generate(spec)
		if err != nil {
			return false
		}
		want := spec.DCs * spec.MSBsPerDC * spec.RacksPerMSB * spec.ServersPerRack
		if len(r.Servers) != want {
			return false
		}
		for i := range r.Servers {
			sv := &r.Servers[i]
			if sv.Type < 0 || sv.Type >= r.Catalog.Len() {
				return false
			}
			if sv.MSB != r.MSBOfRack(sv.Rack) || sv.DC != r.DCOfMSB(sv.MSB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
