// Package health implements the Health Check Service plus the failure and
// maintenance injection used to reproduce the paper's unavailability
// characterization (§2.5, Figure 5): random server failures (~0.1% of the
// fleet in repair at any time), top-of-rack failures, correlated MSB-scope
// failures (~2% of MSBs impacted per year, roughly one MSB per month per
// region), and planned maintenance waves that the maintenance scheduler
// limits to 25% of an MSB concurrently.
package health

import (
	"math/rand"

	"ras/internal/broker"
	"ras/internal/topology"
)

// Config sets injection rates. All rates are per virtual hour unless noted.
type Config struct {
	// RandomFailureRate is the per-server probability of failing per hour.
	// The paper observes ≈0.1% of the fleet under repair at any time with
	// repairs lasting days; 0.0005/hour with multi-day repairs approximates
	// that steady state.
	RandomFailureRate float64
	// RandomRepairHours is the mean repair duration for random failures.
	RandomRepairHours float64
	// ToRFailureRate is the per-rack probability of a ToR failure per hour.
	ToRFailureRate float64
	// ToRRepairHours is the mean ToR repair duration.
	ToRRepairHours float64
	// MSBFailureRate is the per-MSB probability of a correlated failure per
	// hour (≈1 MSB/month/region in the paper).
	MSBFailureRate float64
	// MSBRepairHours is the mean correlated-failure duration.
	MSBRepairHours float64
	// MaintenanceFraction is the fraction of an MSB taken down concurrently
	// during a maintenance wave (paper: 25%).
	MaintenanceFraction float64
	// MaintenanceHours is the duration of one maintenance wave.
	MaintenanceHours float64
	Seed             int64
}

// DefaultConfig returns rates matching the paper's observations.
func DefaultConfig() Config {
	return Config{
		RandomFailureRate:   0.00005, // ×72h repairs ≈ 0.36% in repair at steady state
		RandomRepairHours:   72,
		ToRFailureRate:      0.000005,
		ToRRepairHours:      8,
		MSBFailureRate:      1.0 / (30 * 24 * 36), // ~1 MSB/month in a 36-MSB region
		MSBRepairHours:      12,
		MaintenanceFraction: 0.25,
		MaintenanceHours:    4,
		Seed:                1,
	}
}

// Service is the health-check service: it injects synthetic unavailability
// into the broker and expires past events. A real deployment would instead
// observe hardware telemetry; the write path into the broker is identical.
type Service struct {
	cfg    Config
	broker *broker.Broker
	region *topology.Region
	rng    *rand.Rand

	// maintenance rotation state: next MSB to maintain.
	nextMaintMSB int
}

// New creates a health service over the broker.
func New(b *broker.Broker, cfg Config) *Service {
	return &Service{
		cfg:    cfg,
		broker: b,
		region: b.Region(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats summarizes the events injected by one Tick.
type Stats struct {
	RandomFailures     int
	ToRFailures        int
	CorrelatedFailures int // servers taken down by MSB failures
	MSBsFailed         []int
	MaintenanceStarts  int
}

// Tick advances the injector by one virtual hour ending at time now
// (seconds). It expires finished events and injects new ones.
func (s *Service) Tick(now int64) Stats {
	var st Stats
	s.broker.ExpireUnavailability(now)

	// Random server failures.
	for i := range s.region.Servers {
		id := topology.ServerID(i)
		if s.broker.State(id).Unavail != broker.Available {
			continue
		}
		if s.rng.Float64() < s.cfg.RandomFailureRate {
			until := now + int64(s.cfg.RandomRepairHours*jitter(s.rng)*3600)
			s.broker.SetUnavailable(id, broker.RandomFailure, now, until)
			st.RandomFailures++
		}
	}

	// ToR failures: one rack at a time.
	byRack := s.region.ServersByRack()
	for rack, servers := range byRack {
		_ = rack
		if s.rng.Float64() >= s.cfg.ToRFailureRate {
			continue
		}
		until := now + int64(s.cfg.ToRRepairHours*jitter(s.rng)*3600)
		for _, id := range servers {
			s.broker.SetUnavailable(id, broker.ToRFailure, now, until)
		}
		st.ToRFailures++
	}

	// Correlated MSB failures.
	byMSB := s.region.ServersByMSB()
	for msb, servers := range byMSB {
		if s.rng.Float64() >= s.cfg.MSBFailureRate {
			continue
		}
		s.FailMSB(msb, now, int64(s.cfg.MSBRepairHours*3600))
		st.CorrelatedFailures += len(servers)
		st.MSBsFailed = append(st.MSBsFailed, msb)
	}
	return st
}

// FailMSB injects a correlated failure of the whole MSB for the given
// duration. It is exported so simulations and drills can trigger the exact
// scenario the embedded buffers exist for.
func (s *Service) FailMSB(msb int, now, durationSec int64) int {
	byMSB := s.region.ServersByMSB()
	if msb < 0 || msb >= len(byMSB) {
		return 0
	}
	until := now + durationSec
	for _, id := range byMSB[msb] {
		s.broker.SetUnavailable(id, broker.CorrelatedFailure, now, until)
	}
	return len(byMSB[msb])
}

// RecoverMSB clears a correlated failure early (e.g. after repair).
func (s *Service) RecoverMSB(msb int, now int64) {
	byMSB := s.region.ServersByMSB()
	if msb < 0 || msb >= len(byMSB) {
		return
	}
	for _, id := range byMSB[msb] {
		if s.broker.State(id).Unavail == broker.CorrelatedFailure {
			s.broker.ClearUnavailable(id, now)
		}
	}
}

// StartMaintenanceWave begins planned maintenance on the next MSB in the
// rotation, taking down at most MaintenanceFraction of its servers, and
// returns the MSB index and the number of servers affected. The 25% cap is
// what lets embedded buffers return 75% of capacity within seconds during a
// correlated failure (§3.3.1).
func (s *Service) StartMaintenanceWave(now int64) (msb, affected int) {
	byMSB := s.region.ServersByMSB()
	if len(byMSB) == 0 {
		return -1, 0
	}
	msb = s.nextMaintMSB % len(byMSB)
	s.nextMaintMSB++
	servers := byMSB[msb]
	limit := int(float64(len(servers)) * s.cfg.MaintenanceFraction)
	until := now + int64(s.cfg.MaintenanceHours*3600)
	for _, id := range servers {
		if affected >= limit {
			break
		}
		if s.broker.State(id).Unavail != broker.Available {
			continue
		}
		s.broker.SetUnavailable(id, broker.PlannedMaintenance, now, until)
		affected++
	}
	return msb, affected
}

// PauseMaintenance cancels planned maintenance across the region, returning
// the freed servers immediately (failure handling outranks maintenance).
func (s *Service) PauseMaintenance(now int64) int {
	n := 0
	for i := range s.region.Servers {
		id := topology.ServerID(i)
		if s.broker.State(id).Unavail == broker.PlannedMaintenance {
			s.broker.ClearUnavailable(id, now)
			n++
		}
	}
	return n
}

func jitter(rng *rand.Rand) float64 { return 0.5 + rng.Float64() }
