package health

import (
	"testing"

	"ras/internal/broker"
	"ras/internal/topology"
)

func testSetup(t testing.TB, cfg Config) (*broker.Broker, *Service) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		DCs: 1, MSBsPerDC: 4, RacksPerMSB: 5, ServersPerRack: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(region)
	return b, New(b, cfg)
}

func TestTickInjectsRandomFailures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomFailureRate = 0.5 // force visible failures
	cfg.MSBFailureRate = 0
	cfg.ToRFailureRate = 0
	b, svc := testSetup(t, cfg)
	st := svc.Tick(3600)
	if st.RandomFailures == 0 {
		t.Fatal("no random failures at 50% rate")
	}
	_, unplanned := b.UnavailableCount()
	if unplanned != st.RandomFailures {
		t.Fatalf("broker shows %d unplanned, stats say %d", unplanned, st.RandomFailures)
	}
}

func TestTickExpiresEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomFailureRate = 0
	cfg.MSBFailureRate = 0
	cfg.ToRFailureRate = 0
	b, svc := testSetup(t, cfg)
	b.SetUnavailable(0, broker.RandomFailure, 0, 1800)
	svc.Tick(3600)
	if b.State(0).Unavail != broker.Available {
		t.Fatal("expired failure not cleared by Tick")
	}
}

func TestFailMSB(t *testing.T) {
	b, svc := testSetup(t, DefaultConfig())
	n := svc.FailMSB(1, 0, 3600)
	if n != 50 {
		t.Fatalf("failed %d servers, want 50 (one MSB)", n)
	}
	byMSB := b.Region().ServersByMSB()
	for _, id := range byMSB[1] {
		if b.State(id).Unavail != broker.CorrelatedFailure {
			t.Fatalf("server %d in failed MSB is %v", id, b.State(id).Unavail)
		}
	}
	for _, id := range byMSB[0] {
		if b.State(id).Unavail != broker.Available {
			t.Fatal("failure leaked outside the MSB")
		}
	}
	if svc.FailMSB(99, 0, 10) != 0 {
		t.Fatal("out-of-range MSB must be a no-op")
	}
}

func TestRecoverMSB(t *testing.T) {
	b, svc := testSetup(t, DefaultConfig())
	svc.FailMSB(2, 0, 7200)
	svc.RecoverMSB(2, 100)
	_, unplanned := b.UnavailableCount()
	if unplanned != 0 {
		t.Fatalf("%d servers still down after recovery", unplanned)
	}
}

func TestMaintenanceWaveRespectsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintenanceFraction = 0.25
	b, svc := testSetup(t, cfg)
	msb, affected := svc.StartMaintenanceWave(0)
	if msb != 0 {
		t.Fatalf("first wave at MSB %d, want 0 (rotation)", msb)
	}
	if affected != 12 { // 25% of 50, truncated
		t.Fatalf("wave affected %d servers, want 12 (25%% cap, §3.3.1)", affected)
	}
	planned, _ := b.UnavailableCount()
	if planned != affected {
		t.Fatalf("broker shows %d planned, want %d", planned, affected)
	}
	// Rotation advances.
	if next, _ := svc.StartMaintenanceWave(10); next != 1 {
		t.Fatalf("second wave at MSB %d, want 1", next)
	}
}

func TestPauseMaintenance(t *testing.T) {
	b, svc := testSetup(t, DefaultConfig())
	svc.StartMaintenanceWave(0)
	n := svc.PauseMaintenance(50)
	if n == 0 {
		t.Fatal("pause returned no servers")
	}
	planned, _ := b.UnavailableCount()
	if planned != 0 {
		t.Fatal("maintenance not fully paused")
	}
}

func TestSteadyStateUnavailabilityBand(t *testing.T) {
	if testing.Short() {
		t.Skip("month-long simulation")
	}
	// With paper-like rates, unplanned unavailability stays in a sane band
	// (paper §2.5: baseline < 0.5%, spikes > 3%, never ~everything).
	cfg := DefaultConfig()
	b, svc := testSetup(t, cfg)
	total := len(b.Region().Servers)
	worst := 0.0
	for h := 1; h <= 30*24; h++ {
		svc.Tick(int64(h) * 3600)
		_, unplanned := b.UnavailableCount()
		frac := float64(unplanned) / float64(total)
		if frac > worst {
			worst = frac
		}
	}
	if worst > 0.30 {
		t.Fatalf("unplanned unavailability hit %.1f%%, injector rates are off", worst*100)
	}
}
