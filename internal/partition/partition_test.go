package partition

import (
	"math"
	"reflect"
	"testing"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// testRegion builds a 2-DC, 6-MSB region (the smallest geometry where the
// ≥2-MSBs-per-partition clamp still allows k=3) plus a fresh snapshot.
func testRegion(t *testing.T) (*topology.Region, []broker.ServerState) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "part", DCs: 2, MSBsPerDC: 3, RacksPerMSB: 4, ServersPerRack: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return region, broker.New(region).Snapshot()
}

func testReservation(id int, rrus float64) reservation.Reservation {
	return reservation.Reservation{
		ID: reservation.ID(id), Name: "svc", Class: hardware.FleetAvg,
		RRUs: rrus, CountBased: true, Policy: reservation.DefaultPolicy(),
	}
}

// TestSplitDeterministic mirrors internal/mip/determinism_test.go for the
// partitioner: repeated Split calls over one snapshot must produce identical
// plans (same MSB map, same subsets, same signature) — the plan feeds k
// concurrent sub-solves, so any instability here would defeat the pop
// backend's bit-for-bit reproducibility.
func TestSplitDeterministic(t *testing.T) {
	region, states := testRegion(t)
	// Perturb availability so usable-per-MSB counts are not all equal and the
	// LPT ordering actually has work to do.
	b := broker.New(region)
	for i := 0; i < 10; i++ {
		b.SetUnavailable(topology.ServerID(i*7%len(region.Servers)), broker.RandomFailure, 1, 0)
	}
	states = b.Snapshot()

	first, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := Split(region, states, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d: plan differs from first:\n%+v\nvs\n%+v", run, first, again)
		}
	}
	other, err := Split(region, states, 2)
	if err != nil {
		t.Fatal(err)
	}
	if other.Sig == first.Sig {
		t.Fatalf("k=2 and k=3 plans share signature %#x", first.Sig)
	}
}

// TestSplitCoversFleetOnMSBBoundaries checks the two structural invariants
// recombination relies on: every server (usable or not) appears in exactly
// one subset, subsets are ascending, and no MSB straddles a partition.
func TestSplitCoversFleetOnMSBBoundaries(t *testing.T) {
	region, states := testRegion(t)
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 3 {
		t.Fatalf("plan.K = %d, want 3", plan.K)
	}
	seen := make([]int, len(region.Servers))
	for p, sub := range plan.Subsets {
		for i, id := range sub {
			seen[id]++
			if i > 0 && sub[i-1] >= id {
				t.Fatalf("partition %d subset not ascending at %d", p, i)
			}
			if got := plan.PartOfMSB[region.Servers[id].MSB]; got != p {
				t.Fatalf("server %d in partition %d but its MSB maps to %d", id, p, got)
			}
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("server %d appears in %d subsets, want exactly 1", id, n)
		}
	}
}

// TestSplitClampsK pins the feasibility clamp: no partition may hold fewer
// than two MSBs (a 1-MSB sub-region makes the embedded-buffer row
// Σ − max_MSB ≥ C_r unsatisfiable), so k caps at NumMSBs/2; k<1 lifts to 1.
func TestSplitClampsK(t *testing.T) {
	region, states := testRegion(t) // 6 MSBs → max usable k is 3
	for _, tc := range []struct{ ask, want int }{
		{ask: -1, want: 1}, {ask: 0, want: 1}, {ask: 1, want: 1},
		{ask: 3, want: 3}, {ask: 4, want: 3}, {ask: 100, want: 3},
	} {
		plan, err := Split(region, states, tc.ask)
		if err != nil {
			t.Fatal(err)
		}
		if plan.K != tc.want {
			t.Errorf("Split(k=%d).K = %d, want %d", tc.ask, plan.K, tc.want)
		}
		perPart := make([]int, plan.K)
		for _, p := range plan.PartOfMSB {
			perPart[p]++
		}
		for p, n := range perPart {
			if n < 2 {
				t.Errorf("Split(k=%d): partition %d holds %d MSBs, want ≥ 2", tc.ask, p, n)
			}
		}
	}
}

// TestSplitDemandsConservesRRUs checks the remainder accounting: the
// per-partition shares of every reservation sum to exactly C_r — not within
// epsilon; the last positive share absorbs the float residue.
func TestSplitDemandsConservesRRUs(t *testing.T) {
	region, states := testRegion(t)
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	rsvs := []reservation.Reservation{
		testReservation(0, 17), testReservation(1, 31.3), testReservation(2, 1),
	}
	demands := SplitDemands(region, states, rsvs, plan)
	if len(demands) != plan.K {
		t.Fatalf("got %d demand lists for %d partitions", len(demands), plan.K)
	}
	total := map[reservation.ID]float64{}
	for _, list := range demands {
		for _, r := range list {
			if r.RRUs <= 0 {
				t.Errorf("reservation %d got non-positive share %v", r.ID, r.RRUs)
			}
			total[r.ID] += r.RRUs
		}
	}
	for _, r := range rsvs {
		if got := total[r.ID]; got != r.RRUs {
			t.Errorf("reservation %d shares sum to %v, want exactly %v (diff %g)",
				r.ID, got, r.RRUs, got-r.RRUs)
		}
	}
}

// TestSplitDemandsFollowsHoldings checks the stability-first rule: a
// reservation already holding usable servers splits proportionally to those
// holdings, so a service living entirely in one partition keeps its whole
// demand there and its sub-MIP pays no spurious moves.
func TestSplitDemandsFollowsHoldings(t *testing.T) {
	region, states := testRegion(t)
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := testReservation(0, 10)
	// Hand the reservation a few servers inside partition 1 only.
	b := broker.New(region)
	for _, id := range plan.Subsets[1][:5] {
		b.SetCurrent(id, r.ID)
	}
	states = b.Snapshot()

	demands := SplitDemands(region, states, []reservation.Reservation{r}, plan)
	for p, list := range demands {
		switch p {
		case 1:
			if len(list) != 1 || list[0].RRUs != r.RRUs {
				t.Fatalf("partition 1 got %+v, want the whole %v-RRU demand", list, r.RRUs)
			}
		default:
			if len(list) != 0 {
				t.Fatalf("partition %d got %+v, want nothing (all holdings are in partition 1)", p, list)
			}
		}
	}
}

// TestSplitDemandsCapacityRules covers the capacity-weighted path: a fresh
// reservation splits across all partitions roughly proportionally to
// eligible capacity, a SingleDC reservation only lands in partitions with
// MSBs in its DC, and an unserviceable one goes whole to partition 0 so the
// sub-solver still reports it.
func TestSplitDemandsCapacityRules(t *testing.T) {
	region, states := testRegion(t)
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	fresh := testReservation(0, 30)
	pinned := testReservation(1, 6)
	pinned.Policy.SingleDC = 0
	impossible := testReservation(2, 4)
	impossible.Policy.SingleDC = 99 // no such DC: nothing is eligible

	demands := SplitDemands(region, states,
		[]reservation.Reservation{fresh, pinned, impossible}, plan)

	counts := map[reservation.ID]int{}
	for p, list := range demands {
		for _, r := range list {
			counts[r.ID]++
			if r.ID == pinned.ID {
				ok := false
				for m, part := range plan.PartOfMSB {
					if part == p && region.DCOfMSB(m) == 0 {
						ok = true
					}
				}
				if !ok {
					t.Errorf("SingleDC=0 demand landed in partition %d with no DC-0 MSBs", p)
				}
			}
		}
	}
	if counts[fresh.ID] != plan.K {
		t.Errorf("fresh reservation split across %d partitions, want %d", counts[fresh.ID], plan.K)
	}
	if counts[impossible.ID] != 1 || len(demands[0]) == 0 {
		t.Errorf("unserviceable reservation split %d ways, want whole in partition 0", counts[impossible.ID])
	}
	found := false
	for _, r := range demands[0] {
		if r.ID == impossible.ID && r.RRUs == impossible.RRUs {
			found = true
		}
	}
	if !found {
		t.Error("unserviceable reservation's full demand not in partition 0")
	}
}

// TestSplitBalancesUsableCapacity checks the LPT goal: partition loads
// (usable servers) stay within one MSB's worth of each other on a uniform
// region, so no sub-MIP is starved of capacity relative to its demand share.
func TestSplitBalancesUsableCapacity(t *testing.T) {
	region, states := testRegion(t)
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, plan.K)
	perMSB := float64(len(region.Servers)) / float64(region.NumMSBs)
	for p, sub := range plan.Subsets {
		loads[p] = float64(len(sub))
	}
	for p := 1; p < plan.K; p++ {
		if math.Abs(loads[p]-loads[0]) > perMSB {
			t.Errorf("partition loads %v spread more than one MSB (%v servers)", loads, perMSB)
		}
	}
}
