package partition

import (
	"math"
	"testing"

	"ras/internal/broker"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// tinyRegion builds a region with an arbitrary geometry plus a fresh
// snapshot, for edge cases the standard testRegion is too big to hit.
func tinyRegion(t *testing.T, dcs, msbsPerDC, racksPerMSB, serversPerRack int) (*topology.Region, []broker.ServerState) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "edge", DCs: dcs, MSBsPerDC: msbsPerDC,
		RacksPerMSB: racksPerMSB, ServersPerRack: serversPerRack, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return region, broker.New(region).Snapshot()
}

// assertExpressionSixSatisfiable checks the clamp's reason for existing: the
// embedded-buffer row (expression 6, Σ − max_MSB ≥ C_r) has an identically
// zero left-hand side in any single-MSB sub-region, so whenever the plan has
// more than one partition, every partition must own at least two MSBs.
func assertExpressionSixSatisfiable(t *testing.T, plan *Plan) {
	t.Helper()
	if plan.K == 1 {
		return // one partition is the whole region; expression 6 is unchanged
	}
	perPart := make([]int, plan.K)
	for _, p := range plan.PartOfMSB {
		perPart[p]++
	}
	for p, n := range perPart {
		if n < 2 {
			t.Errorf("partition %d holds %d MSBs; expression 6 (Σ − max_MSB ≥ C_r) "+
				"is unsatisfiable for positive demand in a sub-region with < 2 MSBs", p, n)
		}
	}
}

// TestSplitClampSmallRegions pins K for regions with fewer than four MSBs:
// any such region can support only one partition (two partitions would leave
// one with a single MSB), including the degenerate one-MSB region where
// NumMSBs/2 rounds to zero.
func TestSplitClampSmallRegions(t *testing.T) {
	for _, tc := range []struct {
		dcs, msbsPerDC int
		ask, wantK     int
	}{
		{dcs: 1, msbsPerDC: 1, ask: 4, wantK: 1}, // NumMSBs/2 = 0: floor to 1, not 4 empty partitions
		{dcs: 1, msbsPerDC: 2, ask: 2, wantK: 1},
		{dcs: 1, msbsPerDC: 3, ask: 4, wantK: 1},
		{dcs: 1, msbsPerDC: 4, ask: 2, wantK: 2}, // first geometry wide enough to split
	} {
		region, states := tinyRegion(t, tc.dcs, tc.msbsPerDC, 2, 2)
		plan, err := Split(region, states, tc.ask)
		if err != nil {
			t.Fatalf("%d MSBs, k=%d: %v", region.NumMSBs, tc.ask, err)
		}
		if plan.K != tc.wantK {
			t.Errorf("%d MSBs: Split(k=%d).K = %d, want %d",
				region.NumMSBs, tc.ask, plan.K, tc.wantK)
		}
		if len(plan.Subsets) != plan.K {
			t.Errorf("%d MSBs: %d subsets for K=%d", region.NumMSBs, len(plan.Subsets), plan.K)
		}
		for p, sub := range plan.Subsets {
			if len(sub) == 0 {
				t.Errorf("%d MSBs, k=%d: partition %d owns no servers", region.NumMSBs, tc.ask, p)
			}
		}
		assertExpressionSixSatisfiable(t, plan)
	}
}

// TestSplitDemandsZeroDemand checks the degenerate split: a reservation with
// C_r = 0 must produce shares that are each ≥ 0, sum to exactly zero, and
// are never NaN — the remainder accounting divides by total eligible
// capacity, not by demand, so zero demand must not poison the arithmetic.
func TestSplitDemandsZeroDemand(t *testing.T) {
	region, states := testRegion(t)
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertExpressionSixSatisfiable(t, plan)

	rsvs := []reservation.Reservation{
		testReservation(0, 0),  // zero demand, plenty of eligible capacity
		testReservation(1, 12), // control: a normal reservation alongside it
	}
	demands := SplitDemands(region, states, rsvs, plan)
	if len(demands) != plan.K {
		t.Fatalf("got %d demand lists for %d partitions", len(demands), plan.K)
	}
	sums := map[reservation.ID]float64{}
	for p, list := range demands {
		for _, r := range list {
			if math.IsNaN(r.RRUs) {
				t.Fatalf("partition %d: reservation %d share is NaN", p, r.ID)
			}
			if r.RRUs < 0 {
				t.Errorf("partition %d: reservation %d got negative share %v", p, r.ID, r.RRUs)
			}
			sums[r.ID] += r.RRUs
		}
	}
	if got := sums[0]; got != 0 {
		t.Errorf("zero-demand reservation shares sum to %v, want exactly 0", got)
	}
	if got := sums[1]; got != 12 {
		t.Errorf("control reservation shares sum to %v, want exactly 12", got)
	}
}

// TestSplitSingleServerMSBs runs the partitioner over a region whose MSBs
// each hold exactly one server: the LPT balancer and subset builder must
// still disjointly cover the fleet, the clamp must still guarantee ≥2 MSBs
// per partition, and demand shares must still sum to exactly C_r.
func TestSplitSingleServerMSBs(t *testing.T) {
	region, states := tinyRegion(t, 1, 6, 1, 1) // 6 MSBs, 1 rack × 1 server each
	if len(region.Servers) != region.NumMSBs {
		t.Fatalf("geometry: %d servers for %d MSBs, want one per MSB",
			len(region.Servers), region.NumMSBs)
	}
	plan, err := Split(region, states, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 3 {
		t.Fatalf("plan.K = %d, want 3 (6 single-server MSBs support k=3)", plan.K)
	}
	assertExpressionSixSatisfiable(t, plan)

	seen := make([]int, len(region.Servers))
	for p, sub := range plan.Subsets {
		if len(sub) != 2 {
			t.Errorf("partition %d owns %d servers, want 2 (one per MSB)", p, len(sub))
		}
		for _, id := range sub {
			seen[id]++
			if got := plan.PartOfMSB[region.Servers[id].MSB]; got != p {
				t.Errorf("server %d in partition %d but its MSB maps to %d", id, p, got)
			}
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("server %d appears in %d subsets, want exactly 1", id, n)
		}
	}

	r := testReservation(0, 5)
	demands := SplitDemands(region, states, []reservation.Reservation{r}, plan)
	sum := 0.0
	for p, list := range demands {
		for _, sub := range list {
			if math.IsNaN(sub.RRUs) || sub.RRUs < 0 {
				t.Fatalf("partition %d: bad share %v", p, sub.RRUs)
			}
			sum += sub.RRUs
		}
	}
	if sum != r.RRUs {
		t.Errorf("single-server-MSB shares sum to %v, want exactly %v", sum, r.RRUs)
	}
}
