// Package partition implements the POP-style problem partitioner behind the
// "pop" solver backend: it splits a region into k sub-regions along MSB
// boundaries and splits each reservation's demand C_r across them, so that k
// independent sub-MIPs can be solved concurrently and recombined (see
// "Solving Large-Scale Granular Resource Allocation Problems Efficiently
// with POP", PAPERS.md).
//
// Two invariants make the recombination sound and the whole pipeline
// deterministic:
//
//   - Partitions never split an MSB. Racks are contained in MSBs, so rack
//     and MSB spread goals (expressions 2–4 of the RAS MIP) stay fully
//     inside one sub-problem, and phase-1 symmetry groups — keyed on
//     (type, MSB, current, in-use) — never straddle a partition boundary.
//   - Everything is a pure function of the snapshot: MSBs are balanced by a
//     greedy longest-processing-time assignment over sorted usable-server
//     counts, and demand shares are computed in fixed index order. No maps
//     are iterated unsorted, no randomness, no wall-clock.
package partition

import (
	"fmt"
	"hash/fnv"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// Plan is a deterministic partitioning of a region into K sub-regions along
// MSB boundaries.
type Plan struct {
	// K is the effective partition count (the requested k clamped to
	// [1, NumMSBs]).
	K int
	// PartOfMSB maps every MSB index to its partition.
	PartOfMSB []int
	// Subsets holds, per partition, the ascending server IDs it owns —
	// every server of the region (usable or not) appears in exactly one
	// subset, so merged sub-results cover the whole fleet and each sub-solve
	// sees its servers' full broker state (including failed servers that
	// must keep their return-home binding).
	Subsets [][]topology.ServerID
	// Sig fingerprints the plan (k plus the MSB→partition map). Cross-round
	// warm-start state is keyed on it: a changed signature means the
	// sub-problems were re-drawn and per-partition bases no longer apply.
	Sig uint64
}

// usable mirrors the solver's availability constraint: unplanned failures
// are excluded, planned maintenance remains usable capacity (§3.3.1).
func usable(st *broker.ServerState) bool {
	switch st.Unavail {
	case broker.Available, broker.PlannedMaintenance:
		return true
	default:
		return false
	}
}

// Split partitions the region into (at most) k sub-regions. MSBs are
// balanced across partitions by usable-server count with a greedy
// longest-processing-time rule: MSBs in descending usable-count order (ties
// by ascending MSB index) each go to the currently lightest partition (ties
// by ascending partition index). The result depends only on the snapshot.
func Split(region *topology.Region, states []broker.ServerState, k int) (*Plan, error) {
	if region == nil {
		return nil, fmt.Errorf("partition: nil region")
	}
	if len(states) != len(region.Servers) {
		return nil, fmt.Errorf("partition: %d states for %d servers", len(states), len(region.Servers))
	}
	if k < 1 {
		k = 1
	}
	// Every partition needs at least two MSBs: the embedded-buffer row
	// (expression 6, Σ − max_MSB ≥ C_r) is unsatisfiable for any positive
	// demand inside a single-MSB sub-region — its left-hand side is
	// identically zero — so a finer split would make sub-MIPs optimally
	// serve nothing and push the whole solve onto the repair pass. The floor
	// of 1 keeps a zero- or one-MSB region at K=1 rather than minting empty
	// partitions.
	maxK := region.NumMSBs / 2
	if maxK < 1 {
		maxK = 1
	}
	if k > maxK {
		k = maxK
	}

	usablePerMSB := make([]int, region.NumMSBs)
	for i := range region.Servers {
		if usable(&states[i]) {
			usablePerMSB[region.Servers[i].MSB]++
		}
	}

	// LPT: biggest MSBs first, each to the lightest partition so far.
	order := make([]int, region.NumMSBs)
	for m := range order {
		order[m] = m
	}
	// Insertion sort keeps the tie-break (ascending MSB index) explicit and
	// stable without a comparator allocation.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if usablePerMSB[a] >= usablePerMSB[b] {
				break
			}
			order[j-1], order[j] = b, a
		}
	}

	plan := &Plan{K: k, PartOfMSB: make([]int, region.NumMSBs)}
	loads := make([]int, k)
	for _, m := range order {
		best := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		plan.PartOfMSB[m] = best
		loads[best] += usablePerMSB[m]
	}

	plan.Subsets = make([][]topology.ServerID, k)
	for i := range region.Servers {
		p := plan.PartOfMSB[region.Servers[i].MSB]
		plan.Subsets[p] = append(plan.Subsets[p], topology.ServerID(i))
	}

	h := fnv.New64a()
	buf := make([]byte, 0, 4+4*len(plan.PartOfMSB))
	buf = appendUint32(buf, uint32(k))
	for _, p := range plan.PartOfMSB {
		buf = appendUint32(buf, uint32(p))
	}
	h.Write(buf) //raslint:allow errdrop hash.Hash documents that Write never returns an error
	plan.Sig = h.Sum64()
	return plan, nil
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// SplitDemands splits every reservation's demand C_r across the plan's
// partitions and returns the per-partition reservation lists (indexed by
// partition, reservations in input order).
//
// The splitting rule favours stability first, POP-style capacity
// proportionality second: a reservation that already holds usable servers
// splits proportionally to its current holdings per partition, so sub-MIPs
// mostly keep servers where they are; a fresh reservation splits
// proportionally to its eligible usable capacity per partition. Partitions
// with a zero share are skipped entirely (smaller sub-models); the last
// positive share absorbs the floating-point remainder so the shares sum to
// exactly C_r. A reservation nothing in the region can serve goes whole to
// partition 0 so the sub-solver still reports it unserviceable (§5.3).
// Elastic reservations pass through unsplit (the solver ignores them).
func SplitDemands(region *topology.Region, states []broker.ServerState,
	rsvs []reservation.Reservation, plan *Plan) [][]reservation.Reservation {

	out := make([][]reservation.Reservation, plan.K)
	for ri := range rsvs {
		r := &rsvs[ri]
		if r.Elastic {
			out[0] = append(out[0], *r)
			continue
		}
		caps := make([]float64, plan.K)
		held := make([]float64, plan.K)
		capTotal, heldTotal := 0.0, 0.0
		for i := range region.Servers {
			st := &states[i]
			if !usable(st) {
				continue
			}
			srv := &region.Servers[i]
			if r.Policy.SingleDC >= 0 && srv.DC != r.Policy.SingleDC {
				continue
			}
			v := hardware.RRU(region.Catalog.Type(srv.Type), r.Class)
			if v <= 0 || !r.Eligible(srv.Type, v) {
				continue
			}
			if r.CountBased {
				v = 1
			}
			p := plan.PartOfMSB[srv.MSB]
			caps[p] += v
			capTotal += v
			if st.Current == r.ID {
				held[p] += v
				heldTotal += v
			}
		}
		weights, total := caps, capTotal
		if heldTotal > 0 {
			weights, total = held, heldTotal
		}
		if total <= 0 {
			out[0] = append(out[0], *r)
			continue
		}
		// Fixed-order remainder accounting: every partition but the last
		// positive one gets its proportional share, the last absorbs the rest.
		last := -1
		for p := 0; p < plan.K; p++ {
			if weights[p] > 0 {
				last = p
			}
		}
		assigned := 0.0
		for p := 0; p < plan.K; p++ {
			if weights[p] <= 0 {
				continue
			}
			share := r.RRUs * weights[p] / total
			if p == last {
				share = r.RRUs - assigned
			}
			assigned += share
			sub := *r
			sub.RRUs = share
			out[p] = append(out[p], sub)
		}
	}
	return out
}
