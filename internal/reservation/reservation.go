// Package reservation defines the capacity abstraction at the heart of RAS:
// a reservation is a guaranteed amount of capacity, expressed in relative
// resource units (RRUs), that functions as a logical cluster (paper §3.1).
// The package also models the capacity-request lifecycle — create, resize,
// delete — that service owners drive through the Capacity Portal (§3.2).
package reservation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ras/internal/hardware"
)

// ID identifies a reservation.
type ID int32

// Special reservation IDs.
const (
	// Unassigned marks a server in the regional free pool.
	Unassigned ID = -1
	// SharedBuffer is the special reservation holding the shared
	// random-failure buffer (paper §3.3.1). The async solver treats it as a
	// standalone reservation sized to the expected random-failure rate.
	SharedBuffer ID = -2
)

// Policy captures a reservation's placement requirements, which the async
// solver turns into MIP constraints and objectives.
type Policy struct {
	// SpreadMSB is αF: the maximum fraction of the reservation's capacity
	// desired within a single MSB before spread penalties apply. Zero means
	// the solver default.
	SpreadMSB float64
	// SpreadRack is αK, the rack-level analogue (phase-2 goal).
	SpreadRack float64
	// DCAffinity maps datacenter index → desired fraction of capacity
	// (the A_{r,G} of expression 7). Empty means no affinity constraint.
	DCAffinity map[int]float64
	// AffinityTheta is θ, the allowed deviation from DCAffinity fractions.
	// Zero means the solver default.
	AffinityTheta float64
	// SingleDC restricts all capacity to one datacenter (high-bandwidth ML
	// workloads, paper §4.3 service 13). -1 means unrestricted.
	SingleDC int
}

// DefaultPolicy returns the policy used when a request does not specify one.
func DefaultPolicy() Policy { return Policy{SingleDC: -1} }

// Reservation is a logical cluster with guaranteed capacity.
type Reservation struct {
	ID    ID
	Name  string
	Owner string // business unit
	Class hardware.Class
	// RRUs is C_r: the requested capacity in relative resource units.
	RRUs float64
	// EligibleTypes restricts which hardware types may serve this
	// reservation (hardware type indices). Empty means every type with a
	// positive RRU value for Class.
	EligibleTypes []int
	// HostProfile names the OS configuration servers must run (Twine Host
	// Profiles, §3.1). Mover switches profiles when servers move.
	HostProfile string
	// Elastic marks an elastic reservation that receives idle buffer
	// capacity and can be revoked at any time (§3.4).
	Elastic bool
	// CountBased requests capacity in plain server counts instead of RRUs:
	// every eligible server contributes exactly one unit (§3.1, "smaller
	// services can use a simple count-based approach").
	CountBased bool
	Policy     Policy
}

// Eligible reports whether hardware type t (by index) with the given RRU
// value can serve the reservation.
func (r *Reservation) Eligible(t int, rru float64) bool {
	if rru <= 0 {
		return false
	}
	if len(r.EligibleTypes) == 0 {
		return true
	}
	for _, e := range r.EligibleTypes {
		if e == t {
			return true
		}
	}
	return false
}

// Validate reports structural problems with the reservation.
func (r *Reservation) Validate() error {
	if r.RRUs < 0 {
		return fmt.Errorf("reservation %q: negative RRUs %v", r.Name, r.RRUs)
	}
	p := r.Policy
	if p.SpreadMSB < 0 || p.SpreadMSB > 1 || p.SpreadRack < 0 || p.SpreadRack > 1 {
		return fmt.Errorf("reservation %q: spread fractions must be in [0,1]", r.Name)
	}
	total := 0.0
	for dc, f := range p.DCAffinity {
		if f < 0 || f > 1 {
			return fmt.Errorf("reservation %q: DC %d affinity %v outside [0,1]", r.Name, dc, f)
		}
		total += f
	}
	if len(p.DCAffinity) > 0 && (total < 0.999 || total > 1.001) {
		return fmt.Errorf("reservation %q: DC affinities sum to %v, want 1", r.Name, total)
	}
	return nil
}

// Store is the authoritative, concurrency-safe registry of reservations and
// the capacity-request log. It is the state behind the Capacity Portal.
type Store struct {
	mu     sync.RWMutex
	nextID ID
	byID   map[ID]*Reservation
	log    []Request
}

// RequestKind enumerates capacity-request operations.
type RequestKind int8

// Capacity-request kinds.
const (
	Create RequestKind = iota
	Resize
	Delete
)

func (k RequestKind) String() string {
	switch k {
	case Create:
		return "create"
	case Resize:
		return "resize"
	case Delete:
		return "delete"
	}
	return fmt.Sprintf("RequestKind(%d)", int8(k))
}

// Request records one capacity request for auditability (§5.3: visibility
// into optimization decisions starts with knowing what was asked).
type Request struct {
	Kind RequestKind
	Res  ID
	RRUs float64 // requested size for Create/Resize
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[ID]*Reservation)}
}

// Errors returned by Store operations.
var (
	ErrNotFound = errors.New("reservation: not found")
	ErrInvalid  = errors.New("reservation: invalid")
)

// Create validates and registers a new reservation, assigning its ID.
func (s *Store) Create(r Reservation) (ID, error) {
	if err := r.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r.ID = s.nextID
	s.nextID++
	cp := r
	s.byID[cp.ID] = &cp
	s.log = append(s.log, Request{Kind: Create, Res: cp.ID, RRUs: cp.RRUs})
	return cp.ID, nil
}

// Resize changes the requested RRUs of an existing reservation.
func (s *Store) Resize(id ID, rrus float64) error {
	if rrus < 0 {
		return fmt.Errorf("%w: negative RRUs", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	if !ok {
		return ErrNotFound
	}
	r.RRUs = rrus
	s.log = append(s.log, Request{Kind: Resize, Res: id, RRUs: rrus})
	return nil
}

// Delete removes a reservation.
func (s *Store) Delete(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return ErrNotFound
	}
	delete(s.byID, id)
	s.log = append(s.log, Request{Kind: Delete, Res: id})
	return nil
}

// Get returns a copy of the reservation with the given ID.
func (s *Store) Get(id ID) (Reservation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byID[id]
	if !ok {
		return Reservation{}, ErrNotFound
	}
	return *r, nil
}

// All returns copies of every reservation, sorted by ID. This is the solver
// input snapshot.
func (s *Store) All() []Reservation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Reservation, 0, len(s.byID))
	for _, r := range s.byID {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of live reservations.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Log returns a copy of the capacity-request log.
func (s *Store) Log() []Request {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Request(nil), s.log...)
}

// Version reports the capacity-request log length: a monotone counter that
// identifies a point in the store's history, so ChangesSince can answer
// "what was asked for since then" — the reservation-side half of the solver's
// snapshot/delta protocol.
func (s *Store) Version() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// ChangesSince returns a copy of the capacity requests logged after version
// since (a previous Version result). An out-of-range since returns the whole
// log — the conservative "everything changed" answer.
func (s *Store) ChangesSince(since int) []Request {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if since < 0 || since > len(s.log) {
		since = 0
	}
	return append([]Request(nil), s.log[since:]...)
}
