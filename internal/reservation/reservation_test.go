package reservation

import (
	"errors"
	"sync"
	"testing"

	"ras/internal/hardware"
)

func TestStoreCreateGetDelete(t *testing.T) {
	s := NewStore()
	id, err := s.Create(Reservation{Name: "web", Class: hardware.Web, RRUs: 100, Policy: DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Get(id)
	if err != nil || r.Name != "web" || r.RRUs != 100 {
		t.Fatalf("Get: %+v, %v", r, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreResize(t *testing.T) {
	s := NewStore()
	id, _ := s.Create(Reservation{Name: "a", RRUs: 10, Policy: DefaultPolicy()})
	if err := s.Resize(id, 25); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Get(id)
	if r.RRUs != 25 {
		t.Fatalf("RRUs = %v after resize", r.RRUs)
	}
	if err := s.Resize(id, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative resize: %v", err)
	}
	if err := s.Resize(999, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resize missing: %v", err)
	}
}

func TestStoreIDsIncrease(t *testing.T) {
	s := NewStore()
	a, _ := s.Create(Reservation{Name: "a", Policy: DefaultPolicy()})
	b, _ := s.Create(Reservation{Name: "b", Policy: DefaultPolicy()})
	if b <= a {
		t.Fatalf("IDs not increasing: %d then %d", a, b)
	}
	all := s.All()
	if len(all) != 2 || all[0].ID != a || all[1].ID != b {
		t.Fatalf("All() = %+v", all)
	}
}

func TestStoreLog(t *testing.T) {
	s := NewStore()
	id, _ := s.Create(Reservation{Name: "a", RRUs: 5, Policy: DefaultPolicy()})
	s.Resize(id, 7)
	s.Delete(id)
	log := s.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d entries, want 3", len(log))
	}
	kinds := []RequestKind{Create, Resize, Delete}
	for i, k := range kinds {
		if log[i].Kind != k {
			t.Fatalf("log[%d].Kind = %v, want %v", i, log[i].Kind, k)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []Reservation{
		{Name: "neg", RRUs: -1, Policy: DefaultPolicy()},
		{Name: "spread", Policy: Policy{SpreadMSB: 1.5, SingleDC: -1}},
		{Name: "aff", Policy: Policy{DCAffinity: map[int]float64{0: 0.5, 1: 0.3}, SingleDC: -1}},
		{Name: "affneg", Policy: Policy{DCAffinity: map[int]float64{0: -0.1, 1: 1.1}, SingleDC: -1}},
	}
	for _, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: expected validation error", r.Name)
		}
	}
	ok := Reservation{Name: "ok", RRUs: 10,
		Policy: Policy{DCAffinity: map[int]float64{0: 0.6, 1: 0.4}, SingleDC: -1}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid reservation rejected: %v", err)
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(Reservation{Name: "bad", RRUs: -5}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Create invalid: %v", err)
	}
}

func TestEligible(t *testing.T) {
	r := Reservation{Name: "r"}
	if !r.Eligible(3, 1.5) {
		t.Error("empty EligibleTypes must accept any positive-RRU type")
	}
	if r.Eligible(3, 0) {
		t.Error("zero RRU must be ineligible")
	}
	r.EligibleTypes = []int{1, 2}
	if r.Eligible(3, 1.5) || !r.Eligible(2, 1.5) {
		t.Error("EligibleTypes filter broken")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id, err := s.Create(Reservation{Name: "c", RRUs: 1, Policy: DefaultPolicy()})
				if err != nil {
					t.Error(err)
					return
				}
				s.Resize(id, 2)
				s.Get(id)
				s.All()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

func TestRequestKindString(t *testing.T) {
	for k, want := range map[RequestKind]string{Create: "create", Resize: "resize", Delete: "delete"} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
	if RequestKind(9).String() == "" {
		t.Error("unknown kind must stringify")
	}
}
