package hardware

import (
	"testing"
	"testing/quick"
)

func TestDefaultCatalogShape(t *testing.T) {
	c := DefaultCatalog()
	if c.Len() < 12 {
		t.Fatalf("catalog has %d types, want ≥ 12 subtypes (Figure 2)", c.Len())
	}
	cats := map[int]bool{}
	for i := 0; i < c.Len(); i++ {
		cats[c.Type(i).Category] = true
	}
	if len(cats) != 9 {
		t.Fatalf("catalog spans %d categories, want 9 (Figure 2)", len(cats))
	}
}

func TestCatalogIndexRoundTrip(t *testing.T) {
	c := DefaultCatalog()
	for i := 0; i < c.Len(); i++ {
		id := c.Type(i).ID
		if got := c.Index(id); got != i {
			t.Errorf("Index(%q) = %d, want %d", id, got, i)
		}
	}
	if c.Index("nonexistent") != -1 {
		t.Error("Index of unknown ID must be -1")
	}
	if len(c.IDs()) != c.Len() {
		t.Error("IDs length mismatch")
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	_, err := NewCatalog([]Type{{ID: "A"}, {ID: "A"}})
	if err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
	_, err = NewCatalog([]Type{{ID: ""}})
	if err == nil {
		t.Fatal("empty ID must be rejected")
	}
}

func TestRelativeValueFigure3(t *testing.T) {
	// The shape of Figure 3: Web gains 1.47× and 1.82×; DataStore is flat;
	// Feed1 gains on GenII but not GenIII; Feed2 the reverse.
	if RelativeValue(Web, GenII) != 1.47 || RelativeValue(Web, GenIII) != 1.82 {
		t.Error("Web relative values diverge from Figure 3")
	}
	if RelativeValue(DataStore, GenIII) > 1.1 {
		t.Error("DataStore must be ~flat across generations")
	}
	f1II, f1III := RelativeValue(Feed1, GenII), RelativeValue(Feed1, GenIII)
	if f1II < 1.2 || f1III-f1II > 0.1 {
		t.Error("Feed1 must gain on GenII but plateau on GenIII")
	}
	f2II, f2III := RelativeValue(Feed2, GenII), RelativeValue(Feed2, GenIII)
	if f2II > 1.2 || f2III < 1.3 {
		t.Error("Feed2 must plateau on GenII but gain on GenIII")
	}
}

func TestRelativeValueNormalization(t *testing.T) {
	for _, c := range Classes() {
		if got := RelativeValue(c, GenI); got != 1.0 {
			t.Errorf("%v GenI = %v, want 1.0 (normalized)", c, got)
		}
	}
}

func TestRelativeValueUnknown(t *testing.T) {
	if RelativeValue(Class(99), GenII) != 1.0 {
		t.Error("unknown class must default to 1.0")
	}
	if RelativeValue(Web, Generation(9)) != 1.0 {
		t.Error("unknown generation must default to 1.0")
	}
}

func TestRRUGPUGating(t *testing.T) {
	c := DefaultCatalog()
	gpu := c.Type(c.Index("C7-S2"))
	if RRU(gpu, Web) != 0 {
		t.Error("GPU hardware must not serve Web")
	}
	if RRU(gpu, BatchML) <= 0 {
		t.Error("GPU hardware must serve BatchML")
	}
}

func TestRRUMLRequiresNewGen(t *testing.T) {
	c := DefaultCatalog()
	old := c.Type(c.Index("C1")) // GenI
	if RRU(old, BatchML) != 0 {
		t.Error("GenI hardware must not serve BatchML")
	}
}

func TestRRUScalesWithCores(t *testing.T) {
	a := &Type{ID: "a", Generation: GenII, Cores: 32}
	b := &Type{ID: "b", Generation: GenII, Cores: 64}
	if RRU(b, Web) <= RRU(a, Web) {
		t.Error("more cores must yield more RRUs")
	}
}

// Property: RRU is never negative and is monotone in generation for Web.
func TestQuickRRUProperties(t *testing.T) {
	check := func(cores uint8) bool {
		n := int(cores%64) + 1
		prev := 0.0
		for g := GenI; g <= GenIII; g++ {
			ty := &Type{ID: "x", Generation: g, Cores: n}
			v := RRU(ty, Web)
			if v < 0 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEligibleTypes(t *testing.T) {
	c := DefaultCatalog()
	web := c.EligibleTypes(Web)
	ml := c.EligibleTypes(BatchML)
	if len(web) == 0 || len(ml) == 0 {
		t.Fatal("both classes must have eligible hardware")
	}
	for _, i := range web {
		if c.Type(i).GPUs > 0 {
			t.Error("Web eligibility must exclude GPU types")
		}
	}
}

func TestStrings(t *testing.T) {
	if GenII.String() != "Gen II" || Generation(9).String() == "" {
		t.Error("Generation.String")
	}
	if Web.String() != "Web" || Class(77).String() == "" {
		t.Error("Class.String")
	}
}
