// Package hardware models the heterogeneous server hardware of a region:
// hardware categories and subtypes (the <Ci-Sj> tuples of the paper's
// Figure 2), processor generations, and the Relative Value / relative
// resource unit (RRU) tables of Figures 3 and Section 3.1.
//
// An RRU abstracts "how much work a server of type T does for service class
// S". The async solver consumes RRUs as the V_{s,r} coefficients of its MIP,
// which is what lets one reservation be fulfilled by a mixture of hardware
// generations with equivalent aggregate throughput.
package hardware

import (
	"fmt"
	"sort"
)

// Generation is a processor generation. The paper evaluates three.
type Generation int

// Processor generations.
const (
	GenI Generation = iota + 1
	GenII
	GenIII
)

func (g Generation) String() string {
	switch g {
	case GenI:
		return "Gen I"
	case GenII:
		return "Gen II"
	case GenIII:
		return "Gen III"
	}
	return fmt.Sprintf("Gen(%d)", int(g))
}

// Type describes one hardware subtype, e.g. "C4-S2": compute category C4,
// subtype S2. Subtypes exist only where there is a notable performance
// difference (paper §2.2).
type Type struct {
	ID         string     // "C4-S2"
	Category   int        // 1..9
	Subtype    int        // 1..3 (0 when the category has a single subtype)
	Generation Generation // processor generation
	Cores      int        // physical cores
	MemGB      int        // main memory
	FlashTB    float64    // local flash
	GPUs       int        // accelerators
	PowerWatts float64    // nominal draw, used for the power-spread figures
}

// Class is a service class with distinct hardware affinity. These mirror the
// four large services of Figure 3 plus the fleet-average bucket.
type Class int

// Service classes.
const (
	DataStore Class = iota
	Feed1
	Feed2
	Web
	FleetAvg
	BatchML // network-heavy ML training (Fig 13 service 13, Fig 15)
	numClasses
)

var classNames = [...]string{"DataStore", "Feed1", "Feed2", "Web", "FleetAvg", "BatchML"}

func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes lists every service class.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// RelativeValue reports how much value class c gains from generation g,
// normalized to GenI = 1.0. The constants reproduce Figure 3: Web gains
// 1.47× and 1.82×, DataStore is flat, Feed1 gains on II but not III, Feed2
// the reverse, and the fleet average gains moderately per generation.
func RelativeValue(c Class, g Generation) float64 {
	table := map[Class][3]float64{
		DataStore: {1.00, 1.02, 1.03},
		Feed1:     {1.00, 1.36, 1.38},
		Feed2:     {1.00, 1.05, 1.52},
		Web:       {1.00, 1.47, 1.82},
		FleetAvg:  {1.00, 1.25, 1.45},
		BatchML:   {1.00, 1.40, 2.00},
	}
	vals, ok := table[c]
	if !ok {
		return 1.0
	}
	if g < GenI || g > GenIII {
		return 1.0
	}
	return vals[g-1]
}

// RRU reports the relative resource units one server of type t provides to a
// reservation of class c: the generation's relative value scaled by the
// server's core count against a 32-core reference. A zero return means the
// type cannot serve the class at all (e.g. GPU boxes for Web).
func RRU(t *Type, c Class) float64 {
	if t.GPUs > 0 && c != BatchML && c != FleetAvg {
		return 0 // accelerator hardware is reserved for ML-style classes
	}
	if c == BatchML && t.Generation == GenI {
		return 0 // ML stacks require newer kernels/hardware (paper §4.3)
	}
	base := RelativeValue(c, t.Generation)
	return base * float64(t.Cores) / 32.0
}

// Catalog is an immutable set of hardware types with stable indices.
type Catalog struct {
	types []Type
	byID  map[string]int
}

// NewCatalog builds a catalog from the given types. Type IDs must be unique.
func NewCatalog(types []Type) (*Catalog, error) {
	c := &Catalog{types: append([]Type(nil), types...), byID: make(map[string]int, len(types))}
	for i, t := range c.types {
		if t.ID == "" {
			return nil, fmt.Errorf("hardware: type %d has empty ID", i)
		}
		if _, dup := c.byID[t.ID]; dup {
			return nil, fmt.Errorf("hardware: duplicate type ID %q", t.ID)
		}
		c.byID[t.ID] = i
	}
	return c, nil
}

// Len reports the number of types.
func (c *Catalog) Len() int { return len(c.types) }

// Type returns the type at index i.
func (c *Catalog) Type(i int) *Type { return &c.types[i] }

// Index returns the index of the type with the given ID, or -1.
func (c *Catalog) Index(id string) int {
	if i, ok := c.byID[id]; ok {
		return i
	}
	return -1
}

// IDs lists all type IDs in index order.
func (c *Catalog) IDs() []string {
	out := make([]string, len(c.types))
	for i, t := range c.types {
		out[i] = t.ID
	}
	return out
}

// EligibleTypes returns the indices of types with RRU > 0 for class cl,
// sorted ascending.
func (c *Catalog) EligibleTypes(cl Class) []int {
	var out []int
	for i := range c.types {
		if RRU(&c.types[i], cl) > 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// DefaultCatalog reproduces the paper's Figure 2 inventory: nine hardware
// categories, twelve subtypes where performance differs, across three
// processor generations plus storage/GPU specialties.
func DefaultCatalog() *Catalog {
	types := []Type{
		{ID: "C1", Category: 1, Generation: GenI, Cores: 32, MemGB: 64, PowerWatts: 300},
		{ID: "C2-S1", Category: 2, Subtype: 1, Generation: GenI, Cores: 32, MemGB: 128, PowerWatts: 320},
		{ID: "C2-S2", Category: 2, Subtype: 2, Generation: GenII, Cores: 36, MemGB: 128, PowerWatts: 330},
		{ID: "C3", Category: 3, Generation: GenII, Cores: 48, MemGB: 96, PowerWatts: 360},
		{ID: "C4-S1", Category: 4, Subtype: 1, Generation: GenII, Cores: 48, MemGB: 192, PowerWatts: 380},
		{ID: "C4-S2", Category: 4, Subtype: 2, Generation: GenIII, Cores: 64, MemGB: 192, PowerWatts: 400},
		{ID: "C4-S3", Category: 4, Subtype: 3, Generation: GenIII, Cores: 64, MemGB: 256, PowerWatts: 420},
		{ID: "C5", Category: 5, Generation: GenI, Cores: 24, MemGB: 64, FlashTB: 8, PowerWatts: 280},
		{ID: "C6-S1", Category: 6, Subtype: 1, Generation: GenII, Cores: 32, MemGB: 64, FlashTB: 16, PowerWatts: 340},
		{ID: "C6-S2", Category: 6, Subtype: 2, Generation: GenIII, Cores: 32, MemGB: 96, FlashTB: 32, PowerWatts: 360},
		{ID: "C7-S1", Category: 7, Subtype: 1, Generation: GenII, Cores: 32, MemGB: 256, GPUs: 4, PowerWatts: 900},
		{ID: "C7-S2", Category: 7, Subtype: 2, Generation: GenIII, Cores: 48, MemGB: 384, GPUs: 8, PowerWatts: 1400},
		{ID: "C7-S3", Category: 7, Subtype: 3, Generation: GenIII, Cores: 64, MemGB: 512, GPUs: 8, PowerWatts: 1600},
		{ID: "C8", Category: 8, Generation: GenII, Cores: 40, MemGB: 768, PowerWatts: 450},
		{ID: "C9-S1", Category: 9, Subtype: 1, Generation: GenI, Cores: 16, MemGB: 32, FlashTB: 4, PowerWatts: 220},
		{ID: "C9-S2", Category: 9, Subtype: 2, Generation: GenII, Cores: 20, MemGB: 48, FlashTB: 8, PowerWatts: 240},
	}
	c, err := NewCatalog(types)
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return c
}
