package localsearch

import (
	"context"
	"testing"
	"time"
)

func TestMultiStartDeterministic(t *testing.T) {
	// Multi-start picks a winner by objective with lowest-index tie-breaks,
	// so the result must be identical run to run regardless of which
	// goroutine finishes first.
	in, _ := setup(t, 2, 3, 0.5)
	cfg := Config{MaxSteps: 300, Seed: 7, Starts: 4, TimeLimit: time.Minute}
	a, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.BestStart != b.BestStart || a.Steps != b.Steps {
		t.Fatalf("nondeterministic multi-start: obj %v/%v start %d/%d steps %d/%d",
			a.Objective, b.Objective, a.BestStart, b.BestStart, a.Steps, b.Steps)
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("targets diverge at server %d: %v vs %v", i, a.Targets[i], b.Targets[i])
		}
	}
	if a.Starts != 4 {
		t.Fatalf("Starts=%d, want 4", a.Starts)
	}
}

func TestMultiStartAtLeastAsGoodAsSingle(t *testing.T) {
	// Start 0 uses exactly the single-start seed, so the best-of-N winner
	// can never be worse than the single-start result.
	in, _ := setup(t, 5, 4, 0.6)
	single, err := Solve(context.Background(), in, Config{MaxSteps: 300, Seed: 11, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Solve(context.Background(), in, Config{MaxSteps: 300, Seed: 11, Starts: 4, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Objective > single.Objective {
		t.Fatalf("multi-start obj %v worse than single-start %v", multi.Objective, single.Objective)
	}
	if single.Starts != 1 || single.BestStart != 0 {
		t.Fatalf("single-start reported Starts=%d BestStart=%d", single.Starts, single.BestStart)
	}
}

func TestMultiStartStartZeroMatchesSingleStart(t *testing.T) {
	// When start 0 wins, its climb must be bit-identical to Starts=1.
	in, _ := setup(t, 2, 3, 0.5)
	single, err := Solve(context.Background(), in, Config{MaxSteps: 300, Seed: 7, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Solve(context.Background(), in, Config{MaxSteps: 300, Seed: 7, Starts: 3, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if multi.BestStart == 0 {
		if multi.Objective != single.Objective || multi.Steps != single.Steps {
			t.Fatalf("start 0 won but differs from single-start: obj %v/%v steps %d/%d",
				multi.Objective, single.Objective, multi.Steps, single.Steps)
		}
	} else if multi.Objective >= single.Objective {
		t.Fatalf("start %d won with obj %v, not better than start 0's %v",
			multi.BestStart, multi.Objective, single.Objective)
	}
}

func TestMultiStartCancellation(t *testing.T) {
	in, _ := setup(t, 3, 4, 0.6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every start must stop promptly
	res, err := Solve(ctx, in, Config{MaxSteps: 1 << 30, Seed: 1, Starts: 4, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatalf("expected Cancelled result")
	}
	if res.Targets == nil {
		t.Fatalf("cancelled multi-start must still return an assignment")
	}
}
