package localsearch

import (
	"context"
	"testing"
	"time"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

func setup(t testing.TB, seed int64, nres int, fill float64) (solver.Input, []reservation.Reservation) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "ls", DCs: 2, MSBsPerDC: 3, RacksPerMSB: 5, ServersPerRack: 6, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.FleetAvg}
	var rsvs []reservation.Reservation
	per := float64(len(region.Servers)) * fill / float64(nres)
	for i := 0; i < nres; i++ {
		rsvs = append(rsvs, reservation.Reservation{
			ID: reservation.ID(i), Name: "svc", Class: classes[i%len(classes)],
			RRUs: per, CountBased: true, Policy: reservation.DefaultPolicy(),
		})
	}
	b := broker.New(region)
	return solver.Input{Region: region, Reservations: rsvs, States: b.Snapshot()}, rsvs
}

func capacityMet(in solver.Input, targets []reservation.ID, r *reservation.Reservation) (total, afterWorst float64) {
	perMSB := make([]float64, in.Region.NumMSBs)
	for i := range in.Region.Servers {
		if targets[i] != r.ID {
			continue
		}
		perMSB[in.Region.Servers[i].MSB]++
		total++
	}
	worst := 0.0
	for _, v := range perMSB {
		if v > worst {
			worst = v
		}
	}
	return total, total - worst
}

func TestSolveFulfillsCapacity(t *testing.T) {
	in, rsvs := setup(t, 1, 4, 0.6)
	res, err := Solve(context.Background(), in, Config{TimeLimit: 3 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rsvs {
		_, after := capacityMet(in, res.Targets, &rsvs[i])
		if after < rsvs[i].RRUs-1e-6 {
			t.Errorf("reservation %d: %.1f surviving capacity vs %.1f requested", i, after, rsvs[i].RRUs)
		}
	}
	if res.Steps == 0 {
		t.Fatal("search made no moves from an empty assignment")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	in, _ := setup(t, 2, 3, 0.5)
	cfg := Config{MaxSteps: 500, Seed: 7, TimeLimit: time.Minute}
	a, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Steps != b.Steps {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.Objective, a.Steps, b.Objective, b.Steps)
	}
}

func TestRespectsEligibilityAndAvailability(t *testing.T) {
	in, rsvs := setup(t, 3, 3, 0.4)
	for i := 0; i < len(in.States); i += 4 {
		in.States[i].Unavail = broker.RandomFailure
	}
	res, err := Solve(context.Background(), in, Config{TimeLimit: 2 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.States {
		if in.States[i].Unavail == broker.RandomFailure && res.Targets[i] != reservation.Unassigned {
			t.Fatalf("failed server %d assigned", i)
		}
		tgt := res.Targets[i]
		if tgt >= 0 {
			ty := in.Region.Servers[i].Type
			v := hardware.RRU(in.Region.Catalog.Type(ty), rsvs[tgt].Class)
			if v <= 0 {
				t.Fatalf("ineligible server %d assigned to class %v", i, rsvs[tgt].Class)
			}
		}
	}
}

func TestStabilityFromCurrentAssignment(t *testing.T) {
	// Solve once, feed the result back as current: a second search must not
	// preempt in-use servers.
	in, _ := setup(t, 4, 3, 0.5)
	first, err := Solve(context.Background(), in, Config{TimeLimit: 2 * time.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.States {
		in.States[i].Current = first.Targets[i]
		if first.Targets[i] >= 0 {
			in.States[i].Containers = 2
		}
	}
	second, err := Solve(context.Background(), in, Config{TimeLimit: time.Second, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if second.Moves.InUse > 2 {
		t.Fatalf("re-solve preempted %d in-use servers", second.Moves.InUse)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Solve(context.Background(), solver.Input{}, Config{}); err == nil {
		t.Fatal("nil region must error")
	}
}

// TestQualityVsMIP compares the two ReBalancer backends on the same
// instance: the MIP backend should reach an equal or better objective,
// while local search must at least fulfill capacity (its niche is speed,
// not optimality — §6).
func TestQualityVsMIP(t *testing.T) {
	if testing.Short() {
		t.Skip("backend comparison in -short mode")
	}
	in, rsvs := setup(t, 6, 4, 0.6)
	ls, err := Solve(context.Background(), in, Config{TimeLimit: 2 * time.Second, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	mip, err := solver.Solve(context.Background(), in, solver.Config{
		Phase1TimeLimit: 8 * time.Second, Phase2TimeLimit: time.Second,
		MaxNodes: 100, SharedBufferFraction: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both must fulfill every reservation's guarantee.
	for i := range rsvs {
		if _, after := capacityMet(in, ls.Targets, &rsvs[i]); after < rsvs[i].RRUs-1e-6 {
			t.Errorf("local search misses capacity for reservation %d", i)
		}
		if _, after := capacityMet(in, mip.Targets, &rsvs[i]); after < rsvs[i].RRUs-1e-6 {
			t.Errorf("MIP misses capacity for reservation %d", i)
		}
	}
	// Compare spread quality: fleet max-MSB concentration.
	worstShare := func(targets []reservation.ID) float64 {
		worst := 0.0
		for i := range rsvs {
			total, after := capacityMet(in, targets, &rsvs[i])
			if total == 0 {
				continue
			}
			if share := (total - after) / total; share > worst {
				worst = share
			}
		}
		return worst
	}
	lsShare, mipShare := worstShare(ls.Targets), worstShare(mip.Targets)
	t.Logf("max-MSB share: local search %.3f vs MIP %.3f", lsShare, mipShare)
	if mipShare > lsShare*1.5+0.05 {
		t.Errorf("MIP spread (%.3f) much worse than local search (%.3f)?", mipShare, lsShare)
	}
}
