// Package localsearch implements a local-search backend for the RAS
// placement objectives. The paper (§6) describes ReBalancer, Facebook's
// common optimization library, which "can choose different backend solvers
// to solve an optimization problem": a MIP solver for RAS (quality,
// minutes-scale) and a local-search solver for Shard Manager (near-realtime,
// seconds-scale). This package is that second backend, implemented over the
// same model as internal/solver — capacity with embedded MSB buffers,
// fault-domain spread, movement costs — so the two can be compared directly
// (see the MIPvsLocalSearch ablation benchmarks).
//
// The algorithm is steepest-of-sample hill climbing over single-server
// moves: acquire from the free pool, release surplus, or reassign between
// reservations. All objective terms are maintained incrementally, so a step
// costs O(candidates) regardless of region size.
package localsearch

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ras/internal/broker"
	"ras/internal/clock"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

// Config tunes the search. Zero values select defaults matching
// solver.Config's cost structure.
type Config struct {
	// TimeLimit bounds the search. Zero means 2s.
	TimeLimit time.Duration
	// MaxSteps bounds accepted moves. Zero means 100000.
	MaxSteps int
	// Candidates is the sample size per step. Zero means 48.
	Candidates int
	// Seed drives candidate sampling. The search is deterministic given a
	// seed, a start count, and an input.
	Seed int64
	// Starts is the number of independent hill-climbing starts racing in
	// parallel; the best final assignment wins. Zero or one runs the exact
	// single-start search. Every start derives its RNG seed
	// deterministically from Seed and its start index, so results are
	// reproducible regardless of scheduling or GOMAXPROCS, and start 0
	// always equals the single-start search with the same Seed.
	Starts int

	// Cost structure (defaults mirror solver.Config).
	AlphaMSB      float64
	Beta          float64
	Tau           float64
	MoveCostInUse float64
	MoveCostIdle  float64
	SoftPenalty   float64
}

// exactZero reports whether v is exactly zero — the zero-value "knob unset"
// sentinel in Config and Policy fields. A raslint floatcmp designated
// helper.
func exactZero(v float64) bool { return v == 0 }

func (c Config) withDefaults(region *topology.Region) Config {
	if c.TimeLimit == 0 {
		c.TimeLimit = 2 * time.Second
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 100000
	}
	if c.Candidates == 0 {
		c.Candidates = 48
	}
	if exactZero(c.AlphaMSB) {
		c.AlphaMSB = clamp(1.5/float64(max(region.NumMSBs, 1)), 0.05, 1)
	}
	if exactZero(c.Beta) {
		c.Beta = 3
	}
	if exactZero(c.Tau) {
		c.Tau = 3
	}
	if exactZero(c.MoveCostInUse) {
		c.MoveCostInUse = 10
	}
	if exactZero(c.MoveCostIdle) {
		c.MoveCostIdle = 1
	}
	if exactZero(c.SoftPenalty) {
		c.SoftPenalty = 1000
	}
	return c
}

// WarmState is the cross-round reuse seam of the local-search backend: the
// previous round's final assignment. SolveWarm seeds every climb's starting
// point from it instead of the broker's current bindings, so consecutive
// rounds of the continuous-optimization loop resume where the last one left
// off. State that no longer fits — a different server count, an assignment
// to a reservation that disappeared, a server that became ineligible — is
// ignored binding by binding, falling back to the broker's view.
type WarmState struct {
	Targets []reservation.ID
}

// Result is the outcome of a search.
type Result struct {
	// Targets maps every server to its assigned reservation.
	Targets []reservation.ID
	// Objective is the final internal objective value.
	Objective float64
	// Steps is the number of accepted moves.
	Steps int
	// Evaluated is the number of candidate moves scored.
	Evaluated int
	// Elapsed is the search wall-clock time.
	Elapsed time.Duration
	Moves   solver.MoveStats
	// Cancelled reports that the solve context was cancelled before the
	// search converged or exhausted its budget; Targets hold the best
	// assignment reached (every accepted move only ever improved it).
	Cancelled bool
	// Starts is the number of independent climbs that ran; BestStart is
	// the index of the one whose assignment won (ties go to the lowest
	// index, so the winner is deterministic). Steps and Evaluated are the
	// winning climb's own counts.
	Starts    int
	BestStart int
}

// state is the incremental evaluation state.
type state struct {
	cfg    Config
	region *topology.Region
	in     solver.Input

	rsvs   []reservation.Reservation // non-elastic reservations
	resIdx map[reservation.ID]int

	assign  []reservation.ID // current assignment per server (-1 free)
	usable  []bool
	inUse   []bool
	value   [][]float64 // value[ri][server]
	loadMSB [][]float64 // loadMSB[ri][msb]
	total   []float64   // total[ri]

	moved []bool // server deviated from its original assignment
}

// Solve runs the local search and returns the assignment.
//
// ctx bounds the search together with Config.TimeLimit: the context is
// polled between steps (and during seeding), so cancellation aborts within
// one candidate-sampling round and returns the best assignment found, with
// Result.Cancelled set. A cancelled search is not an error.
func Solve(ctx context.Context, in solver.Input, cfg Config) (*Result, error) {
	return SolveWarm(ctx, in, cfg, nil)
}

// SolveWarm is Solve with a cross-round warm start: every climb begins from
// the previous round's assignment (see WarmState) instead of the broker's
// current bindings. nil warm — or warm state for a different server count —
// reproduces Solve exactly.
func SolveWarm(ctx context.Context, in solver.Input, cfg Config, warm *WarmState) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //raslint:allow ctxflow nil ctx defaults to Background at the public API boundary
	}
	if in.Region == nil {
		return nil, fmt.Errorf("localsearch: nil region")
	}
	if len(in.States) != len(in.Region.Servers) {
		return nil, fmt.Errorf("localsearch: %d states for %d servers", len(in.States), len(in.Region.Servers))
	}
	if warm != nil && len(warm.Targets) != len(in.Region.Servers) {
		warm = nil // shape drift: fall back to a cold start
	}
	cfg = cfg.withDefaults(in.Region)
	start := clock.Now()

	if cfg.Starts <= 1 {
		res := climb(ctx, in, cfg, cfg.Seed, warm)
		res.Starts = 1
		res.Elapsed = clock.Since(start)
		return res, nil
	}

	// Multi-start: independent climbs race on goroutines; each start's RNG
	// seed is a pure function of (Seed, index), so any scheduling order
	// produces the same per-start results and therefore — with the
	// lowest-index tie break below — the same winner.
	results := make([]*Result, cfg.Starts)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Start i owns results[i] exclusively; wg.Wait() orders the
			// writes before the winner scan reads them.
			//raslint:allow sharedwrite disjoint per-start slots; wg.Wait orders writes before reads
			results[i] = climb(ctx, in, cfg, startSeed(cfg.Seed, i), warm)
		}(i)
	}
	wg.Wait()
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].Objective < results[best].Objective {
			best = i
		}
	}
	res := results[best]
	res.Starts = cfg.Starts
	res.BestStart = best
	res.Elapsed = clock.Since(start)
	res.Cancelled = ctx.Err() == context.Canceled
	return res, nil
}

// startSeed derives the deterministic RNG seed of start i: a golden-ratio
// stride keeps consecutive starts' rand streams well separated, and start 0
// is the base seed itself so Starts=1 reproduces the single-start search.
func startSeed(base int64, i int) int64 {
	const stride = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	return base + int64(i)*stride
}

// climb runs one full hill-climbing search (seeding, steepest-of-sample
// loop, result assembly) with the given RNG seed. Each climb owns all of
// its state, so any number may run concurrently on one input.
func climb(ctx context.Context, in solver.Input, cfg Config, seed int64, warm *WarmState) *Result {
	start := clock.Now()
	s := newState(in, cfg)
	s.seedWarm(warm)
	rng := rand.New(rand.NewSource(seed))
	res := &Result{}

	// Greedy waterfill seeding: single-server hill climbing cannot escape
	// the plateau where a short reservation's only eligible free servers
	// sit in its own most-loaded MSB, so fill shortfalls upfront by always
	// acquiring into the least-loaded eligible MSB.
	res.Steps += s.waterfillSeed(ctx)

	deadline := start.Add(cfg.TimeLimit)
	nServers := len(in.Region.Servers)
	for res.Steps < cfg.MaxSteps {
		if ctx.Err() != nil {
			break
		}
		if clock.Now().After(deadline) {
			break
		}
		// Sample candidate moves, keep the steepest improvement.
		bestDelta := -1e-9
		bestServer, bestTo := -1, reservation.Unassigned
		for c := 0; c < cfg.Candidates; c++ {
			sid := topology.ServerID(rng.Intn(nServers))
			if !s.usable[sid] {
				continue
			}
			var to reservation.ID
			if rng.Intn(len(s.rsvs)+1) == len(s.rsvs) {
				to = reservation.Unassigned
			} else {
				to = s.rsvs[rng.Intn(len(s.rsvs))].ID
			}
			if to == s.assign[sid] {
				continue
			}
			res.Evaluated++
			if d := s.delta(sid, to); d < bestDelta {
				bestDelta, bestServer, bestTo = d, int(sid), to
			}
		}
		if bestServer < 0 {
			// Sample found nothing; occasionally that is just sampling
			// noise, so only give up after several consecutive dry rounds.
			if res.Evaluated > 0 && res.Steps == 0 && res.Evaluated > 20*cfg.Candidates {
				break
			}
			dry := true
			for c := 0; c < 4*cfg.Candidates && dry; c++ {
				sid := topology.ServerID(rng.Intn(nServers))
				if !s.usable[sid] {
					continue
				}
				for ri := range s.rsvs {
					to := s.rsvs[ri].ID
					if to != s.assign[sid] && s.delta(sid, to) < -1e-9 {
						dry = false
						break
					}
				}
			}
			if dry {
				break
			}
			continue
		}
		s.apply(topology.ServerID(bestServer), bestTo)
		res.Steps++
	}

	res.Targets = append([]reservation.ID(nil), s.assign...)
	res.Objective = s.objective()
	res.Elapsed = clock.Since(start)
	// Explicit cancellation only: a ctx deadline expiring is a time budget
	// running out, indistinguishable from Config.TimeLimit (Feasible).
	res.Cancelled = ctx.Err() == context.Canceled
	for i := range in.States {
		st := &in.States[i]
		if st.Current == res.Targets[i] || st.Current == reservation.Unassigned || !s.usable[i] {
			continue
		}
		if s.inUse[i] {
			res.Moves.InUse++
		} else {
			res.Moves.Unused++
		}
	}
	return res
}

func newState(in solver.Input, cfg Config) *state {
	s := &state{cfg: cfg, region: in.Region, in: in, resIdx: map[reservation.ID]int{}}
	for _, r := range in.Reservations {
		if r.Elastic {
			continue
		}
		s.resIdx[r.ID] = len(s.rsvs)
		s.rsvs = append(s.rsvs, r)
	}
	n := len(in.Region.Servers)
	s.assign = make([]reservation.ID, n)
	s.usable = make([]bool, n)
	s.inUse = make([]bool, n)
	s.moved = make([]bool, n)
	s.value = make([][]float64, len(s.rsvs))
	s.loadMSB = make([][]float64, len(s.rsvs))
	s.total = make([]float64, len(s.rsvs))
	for ri := range s.rsvs {
		s.value[ri] = make([]float64, n)
		s.loadMSB[ri] = make([]float64, in.Region.NumMSBs)
		for i := range in.Region.Servers {
			ty := in.Region.Servers[i].Type
			v := hardware.RRU(in.Region.Catalog.Type(ty), s.rsvs[ri].Class)
			if !s.rsvs[ri].Eligible(ty, v) {
				v = 0
			} else if s.rsvs[ri].CountBased {
				v = 1
			}
			if p := s.rsvs[ri].Policy; p.SingleDC >= 0 && in.Region.Servers[i].DC != p.SingleDC {
				v = 0
			}
			s.value[ri][i] = v
		}
	}
	for i := range in.States {
		st := &in.States[i]
		s.usable[i] = st.Unavail == broker.Available || st.Unavail == broker.PlannedMaintenance
		s.inUse[i] = st.Containers > 0 && st.LoanedTo == reservation.Unassigned
		s.assign[i] = reservation.Unassigned
		if !s.usable[i] {
			continue
		}
		if ri, ok := s.resIdx[st.Current]; ok {
			if v := s.value[ri][i]; v > 0 {
				s.assign[i] = st.Current
				s.loadMSB[ri][in.Region.Servers[i].MSB] += v
				s.total[ri] += v
			}
		}
	}
	return s
}

// seedWarm rebinds servers to the previous round's assignment (shape already
// validated by SolveWarm). Each binding is applied only where it is still
// legal — server usable, reservation still present, server still eligible —
// so arbitrary drift between rounds degrades gracefully toward the broker
// seeding of newState instead of poisoning the start point.
func (s *state) seedWarm(warm *WarmState) {
	if warm == nil {
		return
	}
	for i, want := range warm.Targets {
		sid := topology.ServerID(i)
		if !s.usable[i] || want == s.assign[sid] {
			continue
		}
		if want == reservation.Unassigned {
			s.apply(sid, want)
			continue
		}
		if ri, ok := s.resIdx[want]; ok && s.value[ri][sid] > 0 {
			s.apply(sid, want)
		}
	}
}

// waterfillSeed acquires free servers for every reservation whose
// buffer-adjusted capacity is short, always into the least-loaded MSB with
// eligible free servers, until the shortfall closes or the pool runs dry.
// Cancelling ctx stops seeding between acquisitions.
func (s *state) waterfillSeed(ctx context.Context) (acquired int) {
	// Free eligible servers per (reservation, MSB).
	freeByMSB := make([][]topology.ServerID, s.region.NumMSBs)
	for i := range s.assign {
		if s.usable[i] && s.assign[i] == reservation.Unassigned {
			msb := s.region.Servers[i].MSB
			freeByMSB[msb] = append(freeByMSB[msb], topology.ServerID(i))
		}
	}
	for ri := range s.rsvs {
		r := &s.rsvs[ri]
		for guard := 0; guard < len(s.assign); guard++ {
			if acquired&63 == 0 && ctx.Err() != nil {
				return acquired
			}
			maxMSB := 0.0
			for _, v := range s.loadMSB[ri] {
				if v > maxMSB {
					maxMSB = v
				}
			}
			if s.total[ri]-maxMSB >= r.RRUs {
				break
			}
			// Least-loaded MSB with an eligible free server.
			bestMSB, bestLoad := -1, 0.0
			var bestSrv topology.ServerID
			for msb := range freeByMSB {
				for _, sid := range freeByMSB[msb] {
					if s.value[ri][sid] <= 0 {
						continue // ineligible; keep scanning this MSB
					}
					if bestMSB == -1 || s.loadMSB[ri][msb] < bestLoad {
						bestMSB, bestLoad, bestSrv = msb, s.loadMSB[ri][msb], sid
					}
					break // first eligible server of the MSB is enough
				}
			}
			if bestMSB == -1 {
				break // pool dry for this reservation
			}
			s.apply(bestSrv, r.ID)
			acquired++
			// Drop the used server from the free index.
			lst := freeByMSB[bestMSB]
			for k, sid := range lst {
				if sid == bestSrv {
					freeByMSB[bestMSB] = append(lst[:k], lst[k+1:]...)
					break
				}
			}
		}
	}
	return acquired
}

// resObjective scores one reservation's terms from its load vector.
func (s *state) resObjective(ri int) float64 {
	r := &s.rsvs[ri]
	maxMSB := 0.0
	spread := 0.0
	alpha := r.Policy.SpreadMSB
	if exactZero(alpha) {
		alpha = s.cfg.AlphaMSB
	}
	for _, v := range s.loadMSB[ri] {
		if v > maxMSB {
			maxMSB = v
		}
		if over := v - alpha*r.RRUs; over > 0 {
			spread += over
		}
	}
	obj := s.cfg.Tau*maxMSB + s.cfg.Beta*spread
	if short := r.RRUs - (s.total[ri] - maxMSB); short > 0 {
		obj += s.cfg.SoftPenalty * short
	}
	// Shaping term: the buffer-adjusted shortfall above is blind to the
	// very first servers of a reservation (total and maxMSB rise together),
	// which strands hill climbing on a plateau. Penalizing the raw total
	// shortfall too — never larger than the real term — keeps downhill
	// gradient without changing the zero set.
	if shortT := r.RRUs - s.total[ri]; shortT > 0 {
		obj += s.cfg.SoftPenalty * shortT
	}
	return obj
}

// moveCost prices a server's deviation from its original assignment.
func (s *state) moveCost(sid topology.ServerID, to reservation.ID) float64 {
	orig := s.in.States[sid].Current
	if orig == reservation.Unassigned || orig == to {
		return 0
	}
	if s.inUse[sid] {
		return s.cfg.MoveCostInUse
	}
	return s.cfg.MoveCostIdle
}

// objective computes the full objective (used once at the end; the search
// itself uses deltas).
func (s *state) objective() float64 {
	obj := 0.0
	for ri := range s.rsvs {
		obj += s.resObjective(ri)
	}
	for i := range s.assign {
		obj += s.moveCost(topology.ServerID(i), s.assign[i])
	}
	return obj
}

// delta scores moving server sid to reservation `to` (or the free pool).
func (s *state) delta(sid topology.ServerID, to reservation.ID) float64 {
	from := s.assign[sid]
	if from == to {
		return 0
	}
	if to != reservation.Unassigned {
		ri, ok := s.resIdx[to]
		if !ok || s.value[ri][sid] <= 0 {
			return 1e18 // ineligible
		}
	}
	d := 0.0
	d -= s.moveCost(sid, from)
	d += s.moveCost(sid, to)
	msb := s.region.Servers[sid].MSB
	if from != reservation.Unassigned {
		ri := s.resIdx[from]
		before := s.resObjective(ri)
		v := s.value[ri][sid]
		s.loadMSB[ri][msb] -= v
		s.total[ri] -= v
		d += s.resObjective(ri) - before
		s.loadMSB[ri][msb] += v
		s.total[ri] += v
	}
	if to != reservation.Unassigned {
		ri := s.resIdx[to]
		before := s.resObjective(ri)
		v := s.value[ri][sid]
		s.loadMSB[ri][msb] += v
		s.total[ri] += v
		d += s.resObjective(ri) - before
		s.loadMSB[ri][msb] -= v
		s.total[ri] -= v
	}
	return d
}

// apply commits a move.
func (s *state) apply(sid topology.ServerID, to reservation.ID) {
	from := s.assign[sid]
	msb := s.region.Servers[sid].MSB
	if from != reservation.Unassigned {
		ri := s.resIdx[from]
		v := s.value[ri][sid]
		s.loadMSB[ri][msb] -= v
		s.total[ri] -= v
	}
	if to != reservation.Unassigned {
		ri := s.resIdx[to]
		v := s.value[ri][sid]
		s.loadMSB[ri][msb] += v
		s.total[ri] += v
	}
	s.assign[sid] = to
	s.moved[sid] = s.in.States[sid].Current != to
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
