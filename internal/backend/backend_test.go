package backend

import (
	"context"
	"math"
	"testing"
	"time"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/localsearch"
	"ras/internal/mip"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

// testInput builds a solve snapshot; size scales the region so cancellation
// tests can use an instance big enough that solves reliably outlive the
// cancel timer.
func testInput(t testing.TB, seed int64, nres int, racksPerMSB int) solver.Input {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "backend", DCs: 2, MSBsPerDC: 3,
		RacksPerMSB: racksPerMSB, ServersPerRack: 8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.DataStore, hardware.FleetAvg}
	var rsvs []reservation.Reservation
	per := float64(len(region.Servers)) * 0.7 / float64(nres)
	for i := 0; i < nres; i++ {
		rsvs = append(rsvs, reservation.Reservation{
			ID: reservation.ID(i), Name: "svc", Class: classes[i%len(classes)],
			RRUs: per, CountBased: true, Policy: reservation.DefaultPolicy(),
		})
	}
	return solver.Input{Region: region, Reservations: rsvs, States: broker.New(region).Snapshot()}
}

// checkTargetsShape asserts the assignment is structurally valid: one target
// per server, every target a known reservation ID. It makes no quality
// claims, so it also holds for solves aborted arbitrarily early.
func checkTargetsShape(t *testing.T, in solver.Input, res *Result) {
	t.Helper()
	if len(res.Targets) != len(in.Region.Servers) {
		t.Fatalf("got %d targets for %d servers", len(res.Targets), len(in.Region.Servers))
	}
	for i, tgt := range res.Targets {
		if tgt != reservation.Unassigned && tgt != reservation.SharedBuffer &&
			(tgt < 0 || int(tgt) >= len(in.Reservations)) {
			t.Fatalf("server %d bound to unknown reservation %d", i, tgt)
		}
	}
}

// checkTargets additionally asserts every reservation was served — the
// full-solve quality bar for uncancelled rounds.
func checkTargets(t *testing.T, in solver.Input, res *Result) {
	t.Helper()
	checkTargetsShape(t, in, res)
	perRes := map[reservation.ID]int{}
	for _, tgt := range res.Targets {
		perRes[tgt]++
	}
	for _, r := range in.Reservations {
		if perRes[r.ID] == 0 {
			t.Errorf("reservation %d (%.0f RRUs) got no servers", r.ID, r.RRUs)
		}
	}
}

// TestRegistryRoundTrip solves the same input with every registered backend
// through the registry and checks each produces a valid assignment.
func TestRegistryRoundTrip(t *testing.T) {
	in := testInput(t, 1, 4, 4)
	names := Names()
	if len(names) < 2 {
		t.Fatalf("expected at least mip and localsearch registered, got %v", names)
	}
	for _, name := range names {
		be, err := New(name, Config{
			Solver:      solver.Config{Phase1TimeLimit: 10 * time.Second, Phase2TimeLimit: 5 * time.Second},
			LocalSearch: localsearch.Config{TimeLimit: 3 * time.Second, Seed: 1},
		})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if be.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, be.Name())
		}
		res, err := be.Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Backend != name {
			t.Errorf("%s: result labelled %q", name, res.Backend)
		}
		if res.Status == StatusNoSolution || res.Status == StatusCancelled {
			t.Fatalf("%s: unexpected status %v", name, res.Status)
		}
		checkTargets(t, in, res)
	}
}

func TestNewDefaultAndUnknown(t *testing.T) {
	be, err := New("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != DefaultName {
		t.Fatalf("default backend is %q, want %q", be.Name(), DefaultName)
	}
	if _, err := New("no-such-backend", Config{}); err == nil {
		t.Fatal("unknown backend name did not error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("mip", func(Config) Backend { return nil })
}

// TestCancelMIPMidSolve cancels a branch-and-bound solve shortly after it
// starts and checks the backend returns promptly with the best incumbent and
// a context-derived status, not an error.
func TestCancelMIPMidSolve(t *testing.T) {
	in := testInput(t, 2, 8, 10) // 960 servers: a multi-second MIP solve
	be, err := New("mip", Config{Solver: solver.Config{
		Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 30 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()

	start := time.Now()
	res, err := be.Solve(ctx, in, Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled solve returned error: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v after explicit cancel (solve took %v), want %v",
			res.Status, elapsed, StatusCancelled)
	}
	// Prompt return: the solve may legitimately spend time in the
	// uncancellable model-build steps, but once cancelled the B&B must stop
	// within one node's worth of work.
	if over := elapsed - 30*time.Millisecond; over > 200*time.Millisecond {
		t.Fatalf("solve returned %v after cancellation, want < 200ms", over)
	}
	// The incumbent may be anywhere from the starting assignment (cancel
	// landed before the root LP finished) to a near-optimal one, but it is
	// always structurally valid and applicable.
	checkTargetsShape(t, in, res)
	if res.MIP == nil {
		t.Fatal("cancelled MIP solve carries no solver detail")
	}
	// The B&B abort still reports incumbent quality: once an incumbent and
	// a root bound exist, the bound/gap pair must be coherent, exactly as
	// for Feasible.
	if res.MIP.Phase1.Status == mip.Cancelled && !math.IsInf(res.Bound, -1) {
		if got := res.Objective - res.Bound; math.Abs(got-res.Gap) > 1e-9 {
			t.Errorf("gap %g inconsistent with objective %g − bound %g", res.Gap, res.Objective, res.Bound)
		}
		if res.Gap < -1e-6 {
			t.Errorf("negative gap %g: bound above incumbent", res.Gap)
		}
	}
}

// TestCancelLocalSearchMidSolve cancels a long-budget local search and checks
// it stops promptly with the incumbent assignment.
func TestCancelLocalSearchMidSolve(t *testing.T) {
	// 2304 servers with a wide candidate sample: tens of milliseconds of
	// search, so the 10ms cancel lands mid-climb.
	in := testInput(t, 3, 60, 48)
	be, err := New("localsearch", Config{
		LocalSearch: localsearch.Config{TimeLimit: 30 * time.Second, Seed: 2, Candidates: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()

	start := time.Now()
	res, err := be.Solve(ctx, in, Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled solve returned error: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v after explicit cancel (solve took %v), want %v",
			res.Status, elapsed, StatusCancelled)
	}
	if over := elapsed - 10*time.Millisecond; over > 200*time.Millisecond {
		t.Fatalf("solve returned %v after cancellation, want < 200ms", over)
	}
	if res.LocalSearch == nil {
		t.Fatal("cancelled local-search solve carries no search detail")
	}
	if len(res.Targets) != len(in.Region.Servers) {
		t.Fatalf("got %d targets for %d servers", len(res.Targets), len(in.Region.Servers))
	}
}

// TestContextDeadlineKeepsFeasible checks the semantic split: a context
// *deadline* is a time budget — hitting it is the paper's early-timeout
// path (Feasible + measured gap, Figure 9), not a cancellation.
func TestContextDeadlineKeepsFeasible(t *testing.T) {
	in := testInput(t, 4, 8, 10)
	be, err := New("mip", Config{Solver: solver.Config{
		Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 30 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := be.Solve(ctx, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusCancelled {
		t.Fatalf("deadline expiry mapped to %v; want the Feasible early-timeout path", res.Status)
	}
	checkTargetsShape(t, in, res)
}
