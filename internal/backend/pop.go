package backend

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"ras/internal/clock"
	"ras/internal/metrics"
	"ras/internal/mip"
	"ras/internal/partition"
	"ras/internal/reservation"
	"ras/internal/solver"
)

// DefaultPartitions is the pop backend's sub-region count when
// Options.Partitions is zero. Four matches the POP paper's headline
// configuration: most of the speedup with negligible allocation-quality
// loss on granular problems.
const DefaultPartitions = 4

// POPWarm is the partitioned backend's cross-round warm-start state: one
// solver.WarmState per partition, keyed to the partition plan that produced
// them. A round whose plan signature differs (topology or availability
// drift re-drew the sub-regions) solves every partition cold.
type POPWarm struct {
	// Sig is the partition.Plan signature the states belong to.
	Sig uint64
	// Parts holds each partition's solver warm state, indexed by partition.
	Parts []*solver.WarmState
}

// POPDetail is the pop backend's backend-specific result detail.
type POPDetail struct {
	// Partitions is the effective sub-region count k.
	Partitions int
	// SubWorkers is the branch-and-bound worker count each sub-solve ran
	// with, and Concurrent how many sub-solves ran at once —
	// SubWorkers×Concurrent never exceeds the Options.Workers budget.
	SubWorkers int
	Concurrent int
	// PlanSig is the partition plan signature (warm-state key).
	PlanSig uint64
	// Repair summarizes the cross-partition recombination pass.
	Repair solver.RepairStats
	// Eval is the region-wide phase-1 objective breakdown of the final
	// merged-and-repaired assignment (Result.Objective = Eval.Objective).
	Eval solver.Eval
	// Subs holds each partition's full solver result, indexed by partition.
	Subs []*solver.Result
}

// divideWorkers splits a total worker budget across k sub-solves: each
// sub-solve gets w/k branch-and-bound workers (floor 1), and enough
// sub-solves run concurrently to use the budget without oversubscribing
// (perSub×concurrent ≤ max(w, k... never above k)). Examples: (w=4, k=4) →
// 1×4; (w=1, k=4) → 1×1; (w=8, k=4) → 2×4; (w=4, k=8) → 1×4.
func divideWorkers(w, k int) (perSub, concurrent int) {
	if w < 1 {
		w = 1
	}
	if k < 1 {
		k = 1
	}
	perSub = w / k
	if perSub < 1 {
		perSub = 1
	}
	concurrent = w / perSub
	if concurrent > k {
		concurrent = k
	}
	if concurrent < 1 {
		concurrent = 1
	}
	return perSub, concurrent
}

// popBackend implements POP-style partitioned solving (PAPERS.md: "Solving
// Large-Scale Granular Resource Allocation Problems Efficiently with POP"):
// split the region into k sub-regions along MSB boundaries, solve k
// independent sub-MIPs concurrently, merge, and run a cheap cross-partition
// repair pass. Whenever each sub-solve runs serial (Workers ≤ Partitions),
// the result is bit-for-bit deterministic at every Workers value: partition
// p's sub-problem and warm state are fixed by the snapshot, so which
// goroutine solves it cannot change its answer, and the merge and repair
// are pure functions of the sub-results.
type popBackend struct {
	cfg solver.Config
}

func (b *popBackend) Name() string { return "pop" }

func (b *popBackend) Solve(ctx context.Context, in solver.Input, opts Options) (*Result, error) {
	start := clock.Now()
	k := opts.Partitions
	if k <= 0 {
		k = DefaultPartitions
	}
	plan, err := partition.Split(in.Region, in.States, k)
	if err != nil {
		return nil, err
	}
	k = plan.K
	demands := partition.SplitDemands(in.Region, in.States, in.Reservations, plan)

	cfg := b.cfg
	if opts.TimeLimit > 0 {
		// Same budget split as the mip backend; sub-solves share the
		// wall-clock window because they run concurrently.
		cfg.Phase1TimeLimit = opts.TimeLimit * 2 / 3
		cfg.Phase2TimeLimit = opts.TimeLimit / 3
	}
	perSub, concurrent := divideWorkers(opts.workers(), k)
	cfg.Workers = perSub

	// Per-partition warm states apply only when the plan they were exported
	// under is the plan we just drew.
	warms := make([]*solver.WarmState, k)
	if opts.Warm != nil && opts.Warm.POP != nil &&
		opts.Warm.POP.Sig == plan.Sig && len(opts.Warm.POP.Parts) == k {
		copy(warms, opts.Warm.POP.Parts)
	}
	for p := 0; p < k; p++ {
		if warms[p] != nil {
			metrics.Solver.PartitionWarmHits.Add(1)
		} else {
			metrics.Solver.PartitionWarmMisses.Add(1)
		}
	}

	// Solve the k sub-MIPs on `concurrent` workers pulling partition
	// indices from an atomic cursor (no channels: simple to prove
	// leak-free, and arrival order cannot influence results — each
	// partition's answer is a function of its own inputs).
	subs := make([]*solver.Result, k)
	errs := make([]error, k)
	var cursor atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < concurrent; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(cursor.Add(1)) - 1
				if p >= k {
					return
				}
				sub := solver.Input{
					Region:       in.Region,
					Reservations: demands[p],
					States:       in.States,
					Subset:       plan.Subsets[p],
				}
				// Each partition index p is claimed exactly once via the
				// atomic cursor, so workers write disjoint elements, and
				// wg.Wait() orders every write before the merge reads.
				//raslint:allow sharedwrite disjoint indices from the atomic cursor; wg.Wait orders writes before reads
				subs[p], errs[p] = solver.SolveWarm(ctx, sub, cfg, warms[p])
			}
		}()
	}
	wg.Wait()
	for p := 0; p < k; p++ {
		if errs[p] != nil {
			return nil, errs[p]
		}
	}

	// Merge: subsets are disjoint and cover the region, so each server's
	// target comes from exactly one sub-result.
	targets := make([]reservation.ID, len(in.Region.Servers))
	for i := range targets {
		targets[i] = reservation.Unassigned
	}
	cancelled := ctx.Err() == context.Canceled
	sawDemand, solvedDemand := false, false
	for p := 0; p < k; p++ {
		for _, id := range plan.Subsets[p] {
			targets[id] = subs[p].Targets[id]
		}
		if subs[p].Cancelled {
			cancelled = true
		}
		if len(demands[p]) > 0 {
			sawDemand = true
			if subs[p].Phase1.Status != mip.NoSolution {
				solvedDemand = true
			}
		}
	}
	noSolution := sawDemand && !solvedDemand

	// Repair: fix cross-partition spread/buffer violations and trim the k
	// per-partition embedded buffers down toward one region-wide envelope.
	// A cancelled round returns the raw merge — the caller asked us to stop.
	var repair solver.RepairStats
	if !cancelled {
		repair = solver.RepairTargets(in, b.cfg, targets)
	}

	metrics.Solver.Partitions.Set(int64(k))
	metrics.Solver.PartitionSolves.Add(int64(k))
	metrics.Solver.RepairMoves.Add(int64(repair.Moves()))

	ev := solver.Evaluate(in, b.cfg, targets)
	out := &Result{
		Backend:   b.Name(),
		Targets:   targets,
		Moves:     solver.CountMoves(in, targets),
		Objective: ev.Objective,
		// Recombination voids the sub-solves' optimality proofs, so no
		// region-wide bound is claimed.
		Bound:   math.Inf(-1),
		Gap:     math.Inf(1),
		Elapsed: clock.Since(start),
		POP: &POPDetail{
			Partitions: k,
			SubWorkers: perSub,
			Concurrent: concurrent,
			PlanSig:    plan.Sig,
			Repair:     repair,
			Eval:       ev,
			Subs:       subs,
		},
	}
	out.Warm = nextWarm(opts.Warm, func(w *WarmState) {
		pw := &POPWarm{Sig: plan.Sig, Parts: make([]*solver.WarmState, k)}
		for p := 0; p < k; p++ {
			pw.Parts[p] = subs[p].Warm
		}
		w.POP = pw
	})
	switch {
	case cancelled:
		out.Status = StatusCancelled
	case noSolution:
		out.Status = StatusNoSolution
	default:
		out.Status = StatusFeasible
	}
	return out, nil
}
