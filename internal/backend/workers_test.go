package backend

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"ras/internal/localsearch"
	"ras/internal/solver"
)

// TestWorkersDeterministicObjective solves a fixed synthetic region at
// Workers ∈ {1, 2, 4} and checks every run lands on the same objective
// within the solver's optimality tolerance, with a structurally valid
// assignment. The parallel engine may visit nodes in any order, but once a
// run proves optimality within gap g, objectives can differ by at most g.
func TestWorkersDeterministicObjective(t *testing.T) {
	in := testInput(t, 1, 4, 4)
	var ref float64
	for i, workers := range []int{1, 2, 4} {
		be, err := New("mip", Config{Solver: solver.Config{
			Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 30 * time.Second,
			MaxNodes: 5000,
		}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := be.Solve(context.Background(), in, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		checkTargets(t, in, res)
		if res.MIP == nil {
			t.Fatalf("workers=%d: no solver detail", workers)
		}
		if got := res.MIP.Phase1.Workers; got != workers {
			t.Fatalf("workers=%d: phase 1 reports %d workers", workers, got)
		}
		if i == 0 {
			ref = res.Objective
			continue
		}
		// MoveCostIdle defaults to 1 (AbsGap 0.9) and RelGap is 2%.
		tol := 0.9 + 0.02*math.Abs(ref) + 1e-6
		if math.Abs(res.Objective-ref) > tol {
			t.Fatalf("workers=%d: objective %v differs from serial %v by more than %v",
				workers, res.Objective, ref, tol)
		}
	}
}

// TestCancelMIPMidSolveParallel is the Workers>1 variant of
// TestCancelMIPMidSolve: cancellation must stop all workers promptly, still
// return the incumbent assignment, and leak no goroutines.
func TestCancelMIPMidSolveParallel(t *testing.T) {
	in := testInput(t, 2, 8, 10) // 960 servers: a multi-second MIP solve
	be, err := New("mip", Config{Solver: solver.Config{
		Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 30 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()

	start := time.Now()
	res, err := be.Solve(ctx, in, Options{Workers: 4})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled solve returned error: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v after explicit cancel (solve took %v), want %v",
			res.Status, elapsed, StatusCancelled)
	}
	if over := elapsed - 30*time.Millisecond; over > 500*time.Millisecond {
		t.Fatalf("solve returned %v after cancellation, want < 500ms over the cancel point", over)
	}
	checkTargetsShape(t, in, res)

	// Every worker and heuristic goroutine must have joined before Solve
	// returned. Poll briefly: unrelated runtime goroutines retire lazily.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before solve, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLocalSearchWorkersAreStarts checks the workers knob maps to multi-start
// on the local-search backend and stays deterministic.
func TestLocalSearchWorkersAreStarts(t *testing.T) {
	in := testInput(t, 5, 4, 4)
	be, err := New("localsearch", Config{
		LocalSearch: localsearch.Config{TimeLimit: 30 * time.Second, Seed: 9, MaxSteps: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := be.Solve(context.Background(), in, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := be.Solve(context.Background(), in, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkTargets(t, in, a)
	if a.Objective != b.Objective {
		t.Fatalf("local-search multi-start nondeterministic: %v vs %v", a.Objective, b.Objective)
	}
}
